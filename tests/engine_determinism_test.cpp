// The hot-path rework's safety net: the calendar queue, the SBO Action, the
// broadcast fan-out grouping, and the parallel experiment engine must all be
// invisible — a run is a pure function of its config, bit-identical across
// queue back ends and across -j. These tests pin that contract.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/action.h"
#include "common/rng.h"
#include "consensus/harness.h"
#include "exp/runner.h"
#include "fd/impl/alive_ranker.h"
#include "net/codec.h"
#include "obs/profiler.h"
#include "obs/qos.h"
#include "obs/window_qos.h"
#include "sim/scheduler.h"
#include "sim/system.h"
#include "smr/harness.h"

namespace hds {
namespace {

// ------------------------------------------------------------------ Action

TEST(Action, SmallCaptureStaysInline) {
  int hits = 0;
  Action a([&hits] { ++hits; });
  EXPECT_TRUE(a.is_inline());
  a();
  a();
  EXPECT_EQ(hits, 2);
}

TEST(Action, FanoutShapedCaptureStaysInline) {
  // The shape Network::broadcast schedules: {pointer, shared_ptr, vector}.
  auto shared = std::make_shared<int>(7);
  std::vector<std::uint32_t> tos{1, 2, 3};
  int* sink = new int(0);
  Action a([sink, shared, tos = std::move(tos)]() mutable { *sink += static_cast<int>(tos.size()) * *shared; });
  EXPECT_TRUE(a.is_inline());
  a();
  EXPECT_EQ(*sink, 21);
  delete sink;
}

TEST(Action, OversizedCaptureGoesToHeapAndStillRuns) {
  struct Big {
    char pad[96] = {};
    int* out;
  };
  int result = 0;
  Big big;
  big.out = &result;
  Action a([big] { *big.out = 42; });
  EXPECT_FALSE(a.is_inline());
  Action b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  b();
  EXPECT_EQ(result, 42);
}

TEST(Action, MoveTransfersInlineState) {
  int hits = 0;
  Action a([&hits] { ++hits; });
  Action b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  Action c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

// ------------------------------------------------- queue order equivalence

// Drives both queue back ends through the same adversarial schedule —
// same-tick FIFO runs, events scheduling into the current tick, and
// far-future times past the calendar window — and requires the identical
// execution sequence.
std::vector<std::pair<SimTime, int>> drive_schedule(QueueKind kind, std::uint64_t seed) {
  Scheduler sched(kind);
  Rng rng(seed);
  std::vector<std::pair<SimTime, int>> order;
  int tag = 0;
  // Seed events: bursts at shared ticks plus far-future outliers (beyond the
  // 1024-slot window, forcing the overflow map and window rebasing).
  for (int k = 0; k < 400; ++k) {
    const SimTime at = rng.chance(0.1) ? rng.uniform(2000, 50'000) : rng.uniform(0, 60);
    const int id = tag++;
    sched.at(at, [&order, &sched, &rng, &tag, id] {
      order.emplace_back(sched.now(), id);
      // Half the events fan out further work, some into the *current* tick
      // (exercising push-behind-cursor) and some past the window.
      if (order.size() < 3000 && rng.chance(0.5)) {
        const SimTime d = rng.chance(0.2) ? 0 : rng.uniform(1, 1500);
        const int id2 = tag++;
        sched.after(d, [&order, &sched, id2] { order.emplace_back(sched.now(), id2); });
      }
    });
  }
  sched.run_all();
  return order;
}

TEST(QueueEquivalence, CalendarMatchesHeapOrder) {
  for (const std::uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
    const auto cal = drive_schedule(QueueKind::kCalendar, seed);
    const auto heap = drive_schedule(QueueKind::kHeap, seed);
    ASSERT_GT(cal.size(), 400u);
    EXPECT_EQ(cal, heap) << "divergence at seed " << seed;
  }
}

// ------------------------------------------------------------ golden trace

// Mixed traffic: a codec-registered type (ALIVE, so the byte meter meters
// real frame sizes) plus an unregistered one (PONG, memoized to 0 bytes).
struct Pinger final : Process {
  void on_start(Env& env) override {
    env.broadcast(make_message(AliveRanker::kMsgType, AliveMsg{env.self_id()}));
    env.set_timer(3);
  }
  void on_timer(Env& env, TimerId) override {
    env.broadcast(make_message(AliveRanker::kMsgType, AliveMsg{env.self_id()}));
    env.set_timer(3);
  }
  void on_message(Env& env, const Message& m) override {
    if (m.type == AliveRanker::kMsgType && env.local_now() % 2 == 0) {
      env.broadcast(make_message("PONG", 0));
    }
  }
};

struct RunFingerprint {
  std::string trace;
  std::string metrics;
  NetworkStats stats;
};

RunFingerprint run_pinger_system(QueueKind kind, std::size_t trace_capacity = 1 << 16) {
  obs::MetricsRegistry reg;
  SystemConfig cfg;
  cfg.ids = {1, 2, 2, 3, 3, 3};
  cfg.crashes.resize(6);
  cfg.crashes[4] = CrashPlan{40, true};
  cfg.crashes[5] = CrashPlan{25, false};
  cfg.timing = std::make_unique<AsyncTiming>(1, 5);
  cfg.seed = 424242;
  cfg.trace_capacity = trace_capacity;
  cfg.metrics = &reg;
  cfg.queue = kind;
  System sys(std::move(cfg));
  for (ProcIndex i = 0; i < 6; ++i) sys.set_process(i, std::make_unique<Pinger>());
  sys.start();
  sys.run_until(120);
  RunFingerprint fp;
  fp.trace = sys.trace().dump(1 << 16);
  fp.metrics = reg.to_json();
  fp.stats = sys.net_stats();
  return fp;
}

TEST(GoldenTrace, SystemRunIsByteIdenticalAcrossQueueBackends) {
  const RunFingerprint cal = run_pinger_system(QueueKind::kCalendar);
  const RunFingerprint heap = run_pinger_system(QueueKind::kHeap);
  // The full event log, every metric series, and every network counter —
  // byte for byte.
  EXPECT_EQ(cal.trace, heap.trace);
  EXPECT_EQ(cal.metrics, heap.metrics);
  EXPECT_EQ(cal.stats.broadcasts, heap.stats.broadcasts);
  EXPECT_EQ(cal.stats.copies_sent, heap.stats.copies_sent);
  EXPECT_EQ(cal.stats.copies_delivered, heap.stats.copies_delivered);
  EXPECT_EQ(cal.stats.copies_lost_link, heap.stats.copies_lost_link);
  EXPECT_EQ(cal.stats.copies_lost_dying_sender, heap.stats.copies_lost_dying_sender);
  EXPECT_EQ(cal.stats.copies_to_dead, heap.stats.copies_to_dead);
  EXPECT_EQ(cal.stats.bytes_sent, heap.stats.bytes_sent);
  EXPECT_EQ(cal.stats.bytes_received, heap.stats.bytes_received);
  EXPECT_EQ(cal.stats.latency_sum, heap.stats.latency_sum);
  EXPECT_EQ(cal.stats.broadcasts_by_type, heap.stats.broadcasts_by_type);
  ASSERT_GT(cal.stats.copies_delivered, 0u);
  ASSERT_GT(cal.stats.bytes_sent, 0u);  // the memoized byte meter metered
}

TEST(GoldenTrace, CausalTracingOnOffLeavesScheduleMetricsAndStatsIdentical) {
  // Causal stamping must be pure instrumentation: it never touches the RNG,
  // the queue, or the byte meter, so every metric series and every network
  // counter is byte-identical with the trace ring on or off.
  const RunFingerprint on = run_pinger_system(QueueKind::kCalendar, 1 << 16);
  const RunFingerprint off = run_pinger_system(QueueKind::kCalendar, 0);
  EXPECT_FALSE(on.trace.empty());
  EXPECT_TRUE(off.trace.empty());
  EXPECT_EQ(on.metrics, off.metrics);
  EXPECT_EQ(on.stats.broadcasts, off.stats.broadcasts);
  EXPECT_EQ(on.stats.copies_sent, off.stats.copies_sent);
  EXPECT_EQ(on.stats.copies_delivered, off.stats.copies_delivered);
  EXPECT_EQ(on.stats.copies_lost_link, off.stats.copies_lost_link);
  EXPECT_EQ(on.stats.copies_lost_dying_sender, off.stats.copies_lost_dying_sender);
  EXPECT_EQ(on.stats.copies_to_dead, off.stats.copies_to_dead);
  EXPECT_EQ(on.stats.bytes_sent, off.stats.bytes_sent);
  EXPECT_EQ(on.stats.bytes_received, off.stats.bytes_received);
  EXPECT_EQ(on.stats.latency_sum, off.stats.latency_sum);
  EXPECT_EQ(on.stats.broadcasts_by_type, off.stats.broadcasts_by_type);
}

TEST(GoldenTrace, Fig6QosJsonIsIdenticalWithTracingOnOrOff) {
  // The full-stack equivalent of the pin above: detector QoS — detection
  // times, mistake intervals, leader settling — must not move when a run is
  // recorded.
  const auto fingerprint = [](std::size_t trace_capacity) {
    Fig6Params p;
    p.ids = ids_homonymous(6, 3, 5);
    p.crashes = crashes_last_k(6, 2, /*at=*/300, /*stagger=*/40);
    p.net.gst = 500;
    p.net.delta = 3;
    p.net.pre_gst_loss = 0.2;
    p.net.pre_gst_max_delay = 6;
    p.seed = 5;
    p.run_for = 2000;
    p.collect_qos = true;
    p.trace_capacity = trace_capacity;
    const Fig6Result r = run_fig6(p);
    return obs::qos_json(r.qos).dump(2);
  };
  EXPECT_EQ(fingerprint(0), fingerprint(1 << 16));
}

TEST(GoldenTrace, MemoizedByteMeterMatchesFullCodecComputation) {
  // One ALIVE broadcast from process 0 reaches all 3 peers with no loss;
  // bytes_sent must be exactly 3 full v1 frames as the unmemoized
  // encoded_frame_size computes them.
  struct OneShot final : Process {
    void on_start(Env& env) override {
      env.broadcast(make_message(AliveRanker::kMsgType, AliveMsg{env.self_id()}));
    }
    void on_message(Env&, const Message&) override {}
  };
  struct Quiet final : Process {
    void on_start(Env&) override {}
    void on_message(Env&, const Message&) override {}
  };
  SystemConfig cfg;
  cfg.ids = {41, 42, 43};
  cfg.timing = std::make_unique<AsyncTiming>(1, 1);
  cfg.seed = 3;
  System sys(std::move(cfg));
  sys.set_process(0, std::make_unique<OneShot>());
  sys.set_process(1, std::make_unique<Quiet>());
  sys.set_process(2, std::make_unique<Quiet>());
  sys.start();
  sys.run_until(10);
  const Message m = make_message(AliveRanker::kMsgType, AliveMsg{41});
  const auto frame = net::encoded_frame_size(net::builtin_codecs(), m, 0, 41);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(sys.net_stats().bytes_sent, 3 * *frame);
  EXPECT_EQ(sys.net_stats().bytes_received, 3 * *frame);
}

std::string fig6_qos_fingerprint(QueueKind kind) {
  Fig6Params p;
  p.ids = ids_homonymous(6, 3, 5);
  p.crashes = crashes_last_k(6, 2, /*at=*/300, /*stagger=*/40);
  p.net.gst = 500;
  p.net.delta = 3;
  p.net.pre_gst_loss = 0.2;
  p.net.pre_gst_max_delay = 6;
  p.seed = 5;
  p.run_for = 2000;
  p.collect_qos = true;
  p.queue = kind;
  const Fig6Result r = run_fig6(p);
  return obs::qos_json(r.qos).dump(2);
}

TEST(GoldenTrace, Fig6QosJsonIsByteIdenticalAcrossQueueBackends) {
  EXPECT_EQ(fig6_qos_fingerprint(QueueKind::kCalendar), fig6_qos_fingerprint(QueueKind::kHeap));
}

TEST(GoldenTrace, HealthPlaneOnOffLeavesScheduleMetricsAndQosIdentical) {
  // The live health plane — window-QoS listeners teed into every detector
  // plus the in-process profiler timing the hot path — is pure observation:
  // no RNG draws, no extra events, no metric the plain run would not have
  // written. A run with the whole plane attached must fingerprint exactly
  // like a bare one.
  const auto fingerprint = [](bool health_plane) {
    Fig6Params p;
    p.ids = ids_homonymous(6, 3, 5);
    p.crashes = crashes_last_k(6, 2, /*at=*/300, /*stagger=*/40);
    p.net.gst = 500;
    p.net.delta = 3;
    p.net.pre_gst_loss = 0.2;
    p.net.pre_gst_max_delay = 6;
    p.seed = 5;
    p.run_for = 2000;
    p.collect_qos = true;
    obs::MetricsRegistry reg;
    p.metrics = &reg;
    std::unique_ptr<obs::WindowQos> wq;
    if (health_plane) {
      obs::WindowQosConfig wc;
      wc.gt = ground_truth_of(p.ids, p.crashes);
      wc.crash_at.assign(6, -1);
      for (std::size_t i = 0; i < p.crashes.size(); ++i) {
        if (p.crashes[i].has_value()) wc.crash_at[i] = p.crashes[i]->at;
      }
      wc.width = 250;
      wc.windows = 8;
      // Deliberately NOT wired into `reg`: the qos_window_* gauges are the
      // plane's own series; the fingerprint compares what the run itself
      // writes, which must not change.
      wq = std::make_unique<obs::WindowQos>(wc);
      p.window_qos = wq.get();
      obs::Profiler::instance().enable();
    }
    const Fig6Result r = run_fig6(p);
    if (health_plane) {
      obs::Profiler::instance().disable();
      // The plane really was live: detector changes landed in the ring and
      // the profiler saw the event loop.
      EXPECT_GT(wq->stats().events, 0u);
      EXPECT_FALSE(obs::Profiler::instance().snapshot().empty());
      obs::Profiler::instance().reset();
    }
    return obs::qos_json(r.qos).dump(2) + "\n" + reg.to_json() + "\n" +
           std::to_string(r.stabilization_time) + ":" + std::to_string(r.broadcasts) + ":" +
           std::to_string(r.copies_delivered);
  };
  EXPECT_EQ(fingerprint(false), fingerprint(true));
}

// ----------------------------------------------- parallel experiment engine

// ----------------------------------------------------------- sharded engine

// The pinger mesh on the conservative-synchronization engine. PerLinkTiming
// with min_delay 1 is the adversarial schedule for sharding: the lookahead
// bound is as tight as it gets (one tick per window), per-link base delays
// make every cross-shard edge different, and jitter keeps messages landing
// on both sides of each barrier.
RunFingerprint run_sharded_pinger(std::size_t shards, std::size_t mailbox_capacity = 1024,
                                  ShardRunStats* stats_out = nullptr) {
  obs::MetricsRegistry reg;
  SystemConfig cfg;
  cfg.ids = {1, 2, 2, 3, 3, 3, 4, 4, 5, 5};
  cfg.crashes.resize(10);
  cfg.crashes[8] = CrashPlan{40, true};
  cfg.crashes[9] = CrashPlan{25, false};
  cfg.timing = std::make_unique<PerLinkTiming>(1, 9, 3, 77);
  cfg.seed = 424242;
  cfg.trace_capacity = 1 << 16;
  cfg.metrics = &reg;
  cfg.shards = shards;
  cfg.mailbox_capacity = mailbox_capacity;
  System sys(std::move(cfg));
  for (ProcIndex i = 0; i < 10; ++i) sys.set_process(i, std::make_unique<Pinger>());
  sys.start();
  sys.run_until(120);
  if (stats_out != nullptr) *stats_out = sys.shard_stats();
  RunFingerprint fp;
  fp.trace = sys.trace().dump(1 << 16);
  fp.metrics = reg.to_json();
  fp.stats = sys.net_stats();
  return fp;
}

TEST(ShardedEngine, GoldenTraceByteIdenticalAcrossShardCounts) {
  // The determinism contract: trace, metrics, and every net counter are
  // byte-identical at shards = 1, 2, 4 and 7 (odd on purpose — uneven
  // round-robin partitions). shards=1 takes the single-threaded fast path,
  // so this also pins sharded == existing engine.
  const RunFingerprint ref = run_sharded_pinger(1);
  ASSERT_FALSE(ref.trace.empty());
  ASSERT_GT(ref.stats.copies_delivered, 0u);
  for (const std::size_t k : {2u, 4u, 7u}) {
    ShardRunStats st;
    const RunFingerprint fp = run_sharded_pinger(k, 1024, &st);
    EXPECT_EQ(ref.trace, fp.trace) << "trace diverged at shards=" << k;
    EXPECT_EQ(ref.metrics, fp.metrics) << "metrics diverged at shards=" << k;
    EXPECT_EQ(ref.stats.broadcasts, fp.stats.broadcasts);
    EXPECT_EQ(ref.stats.copies_sent, fp.stats.copies_sent);
    EXPECT_EQ(ref.stats.copies_delivered, fp.stats.copies_delivered);
    EXPECT_EQ(ref.stats.copies_lost_link, fp.stats.copies_lost_link);
    EXPECT_EQ(ref.stats.copies_lost_dying_sender, fp.stats.copies_lost_dying_sender);
    EXPECT_EQ(ref.stats.copies_to_dead, fp.stats.copies_to_dead);
    EXPECT_EQ(ref.stats.bytes_sent, fp.stats.bytes_sent);
    EXPECT_EQ(ref.stats.bytes_received, fp.stats.bytes_received);
    EXPECT_EQ(ref.stats.latency_sum, fp.stats.latency_sum);
    EXPECT_EQ(ref.stats.latency_max, fp.stats.latency_max);
    EXPECT_EQ(ref.stats.broadcasts_by_type, fp.stats.broadcasts_by_type);
    EXPECT_GT(st.windows, 0u);
    EXPECT_GT(st.cross_groups, 0u) << "schedule never crossed shards at k=" << k;
  }
}

TEST(ShardedEngine, SmrFullStackRunIsBitIdenticalAcrossShardCounts) {
  // The replicated log over the full OHPPolling stack through the harness
  // knob — the deepest consumer of the sharded substrate. The whole
  // fingerprint (hash chains, per-op latencies, broadcast counts by type)
  // must not move with the shard count.
  auto fingerprint = [](std::size_t shards) {
    smr::SmrSimParams p;
    p.n = 3;
    p.t = 1;
    p.full_stack = true;
    p.seed = 11;
    p.run_for = 3000;
    p.max_time = 12'000;
    p.workload.clients = 8;
    p.shards = shards;
    const smr::SmrSimResult r = run_smr_sim(p);
    std::string fp = std::to_string(r.converged) + ":" + std::to_string(r.ops_total) + ":" +
                     std::to_string(r.broadcasts) + ":" + std::to_string(r.end_time);
    for (const auto& [type, count] : r.broadcasts_by_type) {
      fp += ";" + type + "=" + std::to_string(count);
    }
    for (const smr::SmrReplicaStats& st : r.replicas) {
      fp += "|" + std::to_string(st.log_hash) + ":" + std::to_string(st.state_hash);
      for (const SimTime l : st.latencies) fp += "." + std::to_string(l);
    }
    return fp;
  };
  const std::string ref = fingerprint(1);
  EXPECT_EQ(ref.rfind("1:", 0), 0u) << ref;  // converged
  EXPECT_EQ(ref, fingerprint(2));
  EXPECT_EQ(ref, fingerprint(3));
}

TEST(ShardedEngine, WindowAdvancementNeverViolatesLookahead) {
  // Property: a cross-shard group drained at a window boundary must land at
  // or after that boundary — its arrival is >= send + lookahead >= w_end.
  // The engine counts violations instead of asserting, so the property is
  // checkable from outside under every schedule we throw at it.
  for (const std::size_t k : {2u, 3u, 4u, 7u}) {
    ShardRunStats st;
    (void)run_sharded_pinger(k, 1024, &st);
    EXPECT_EQ(st.lookahead_violations, 0u) << "lookahead bound violated at shards=" << k;
  }
}

TEST(ShardedEngine, MailboxSpillPathIsByteIdentical) {
  // A 2-slot mailbox forces the overflow spill path constantly; spilled
  // groups must arrive exactly like ring-carried ones.
  const RunFingerprint ref = run_sharded_pinger(1);
  ShardRunStats st;
  const RunFingerprint tiny = run_sharded_pinger(4, 2, &st);
  EXPECT_GT(st.mailbox_spills, 0u) << "capacity 2 never spilled — not exercising the path";
  EXPECT_EQ(ref.trace, tiny.trace);
  EXPECT_EQ(ref.metrics, tiny.metrics);
  EXPECT_EQ(ref.stats.copies_delivered, tiny.stats.copies_delivered);
  EXPECT_EQ(ref.stats.latency_sum, tiny.stats.latency_sum);
}

TEST(ShardedEngine, Fig6QosJsonIsByteIdenticalAcrossShardCounts) {
  // Full detector stack (OHPPolling over PartialSyncTiming) through the
  // harness knob: the QoS JSON — detection times, mistake intervals, leader
  // settling — is byte-identical at any shard count.
  const auto fingerprint = [](std::size_t shards) {
    Fig6Params p;
    p.ids = ids_homonymous(6, 3, 5);
    p.crashes = crashes_last_k(6, 2, /*at=*/300, /*stagger=*/40);
    p.net.gst = 500;
    p.net.delta = 3;
    p.net.pre_gst_loss = 0.2;
    p.net.pre_gst_max_delay = 6;
    p.seed = 5;
    p.run_for = 2000;
    p.collect_qos = true;
    p.shards = shards;
    const Fig6Result r = run_fig6(p);
    return obs::qos_json(r.qos).dump(2);
  };
  const std::string ref = fingerprint(1);
  EXPECT_EQ(ref, fingerprint(2));
  EXPECT_EQ(ref, fingerprint(4));
}

// A heartbeat mesh sized for the ROADMAP's monitoring-overlay work: n=1024
// simulated processes, all-to-all broadcast rounds. Completing under the
// ctest budget is the point — this scenario was out of reach for scenario
// sizes near n~48 before sharding.
struct Heartbeat final : Process {
  void on_start(Env& env) override {
    env.broadcast(make_message("MESH", 0));
    env.set_timer(64);
  }
  void on_timer(Env& env, TimerId) override {
    env.broadcast(make_message("MESH", 0));
    env.set_timer(64);
  }
  void on_message(Env&, const Message&) override { ++received_; }
  std::uint64_t received_ = 0;
};

TEST(ShardedEngine, ThousandProcessHeartbeatMeshCompletes) {
  constexpr std::size_t kN = 1024;
  SystemConfig cfg;
  for (std::size_t i = 0; i < kN; ++i) cfg.ids.push_back(i + 1);
  cfg.timing = std::make_unique<AsyncTiming>(8, 16);
  cfg.seed = 9;
  cfg.shards = 4;
  System sys(std::move(cfg));
  for (ProcIndex i = 0; i < kN; ++i) sys.set_process(i, std::make_unique<Heartbeat>());
  sys.start();
  sys.run_until(100);  // rounds at t=0 and t=64: ~2M deliveries
  const NetworkStats& st = sys.net_stats();
  EXPECT_GE(st.broadcasts, 2 * kN);
  EXPECT_GT(st.copies_delivered, static_cast<std::uint64_t>(kN) * kN);
  EXPECT_EQ(sys.shard_stats().lookahead_violations, 0u);
}

TEST(ExpRunner, CollectPreservesTaskOrderForEveryJobCount) {
  auto square = [](std::size_t i) { return i * i; };
  const auto serial = exp::run_collect(37, 1, square);
  for (const std::size_t jobs : {2ul, 4ul, 8ul, 64ul}) {
    EXPECT_EQ(exp::run_collect(37, jobs, square), serial) << "jobs=" << jobs;
  }
}

TEST(ExpRunner, FullSystemTasksAreThreadCountIndependent) {
  // Each task runs its own System seeded from Rng::derived(seed, index) —
  // the whole point of the engine: -j only changes wall clock, never output.
  auto task = [](std::size_t i) {
    Rng rng = Rng::derived(99, i);
    SystemConfig cfg;
    cfg.ids = {1, 2, 2, 3};
    cfg.timing = std::make_unique<AsyncTiming>(1, 1 + rng.uniform(1, 4));
    cfg.seed = rng.engine()();
    System sys(std::move(cfg));
    for (ProcIndex p = 0; p < 4; ++p) sys.set_process(p, std::make_unique<Pinger>());
    sys.start();
    sys.run_until(80);
    return std::to_string(sys.net_stats().copies_delivered) + ":" +
           std::to_string(sys.net_stats().bytes_sent);
  };
  const auto j1 = exp::run_collect(12, 1, task);
  const auto j8 = exp::run_collect(12, 8, task);
  EXPECT_EQ(j1, j8);
}

TEST(ExpRunner, SmrRunsAreBitIdenticalAcrossJobCounts) {
  // The replicated log is the deepest consumer of the sim substrate (lease
  // fast path + nested Fig. 8 instances + closed-loop workload); its entire
  // fingerprint — applied hash chain, state hash, per-op latencies, every
  // broadcast count by type — must be a pure function of the config, for
  // every -j level of the experiment engine.
  auto task = [](std::size_t i) {
    smr::SmrSimParams p;
    p.n = 3;
    p.t = 1;
    p.seed = 1000 + i;
    p.run_for = 3000;
    p.max_time = 12'000;
    p.workload.clients = 8;
    const smr::SmrSimResult r = run_smr_sim(p);
    std::string fp = std::to_string(r.converged) + ":" + std::to_string(r.ops_total) + ":" +
                     std::to_string(r.broadcasts) + ":" + std::to_string(r.end_time);
    for (const auto& [type, count] : r.broadcasts_by_type) {
      fp += ";" + type + "=" + std::to_string(count);
    }
    for (const smr::SmrReplicaStats& st : r.replicas) {
      fp += "|" + std::to_string(st.log_hash) + ":" + std::to_string(st.state_hash) + ":" +
            std::to_string(st.applied_chain.size());
      for (const std::uint64_t h : st.applied_chain) fp += "," + std::to_string(h);
      for (const SimTime l : st.latencies) fp += "." + std::to_string(l);
    }
    return fp;
  };
  const auto j1 = exp::run_collect(6, 1, task);
  for (const std::size_t jobs : {2ul, 8ul}) {
    EXPECT_EQ(exp::run_collect(6, jobs, task), j1) << "jobs=" << jobs;
  }
  for (const std::string& fp : j1) EXPECT_EQ(fp.rfind("1:", 0), 0u) << fp;  // all converged
}

TEST(ExpRunner, FirstTaskExceptionPropagates) {
  EXPECT_THROW(exp::run_indexed(16, 4,
                                [](std::size_t i) {
                                  if (i == 5) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ExpRunner, DerivedRngIsAPureFunctionOfSeedAndStream) {
  Rng a = Rng::derived(7, 3);
  Rng b = Rng::derived(7, 3);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(a.engine()(), b.engine()());
  // Neighboring streams diverge immediately.
  Rng c = Rng::derived(7, 4);
  EXPECT_NE(Rng::derived(7, 3).engine()(), c.engine()());
}

}  // namespace
}  // namespace hds
