// Protocol-level unit tests of the Fig. 9 state machine: quorum scanning
// with homonym multiplicities, sub-round bumping, the PH2 short-circuit,
// the COORD(r+1) release, and the AAS[AΩ, HΣ] variant.
#include "consensus/quorum_homega_hsigma.h"

#include <gtest/gtest.h>

#include "support/script_env.h"

namespace hds {
namespace {

using testing::ScriptAOmega;
using testing::ScriptEnv;
using testing::ScriptHOmega;
using testing::ScriptHSigma;

constexpr Id kSelf = 1;
const Label kLx = Label::of_text("x");
const Label kLy = Label::of_text("y");

struct Fig9Fixture : ::testing::Test {
  Fig9Fixture() : env(kSelf) {
    cfg.proposal = 30;
    fd1.out = {7, 1};  // someone else leads: the fixture usually drives PH0
    // One quorum (x, {1, 2}); self carries x.
    fd2.snap.labels = {kLx};
    fd2.snap.quora.emplace(kLx, Multiset<Id>{1, 2});
  }

  QuorumConsensus make() { return QuorumConsensus(cfg, fd1, fd2); }

  // Brings a fresh machine to Phase 1 of round 1 with est1 = `est`.
  void to_phase1(QuorumConsensus& c, Value est) {
    c.on_start(env);
    c.on_message(env, make_message(kPh0Type, Ph0Msg{1, est}));
    ASSERT_EQ(env.count(kPh1QType), 1u);
  }

  void deliver_ph1q(QuorumConsensus& c, Id id, Round r, std::int64_t sr, std::set<Label> labels,
                    Value est) {
    c.on_message(env, make_message(kPh1QType, Ph1QMsg{id, r, sr, std::move(labels), est}));
  }
  void deliver_ph2q(QuorumConsensus& c, Id id, Round r, std::int64_t sr, std::set<Label> labels,
                    MaybeValue est2) {
    c.on_message(env, make_message(kPh2QType, Ph2QMsg{id, r, sr, std::move(labels), est2}));
  }

  QuorumConsensusConfig cfg;
  ScriptHOmega fd1;
  ScriptHSigma fd2;
  ScriptEnv env;
};

TEST_F(Fig9Fixture, Ph1QCarriesCurrentLabels) {
  auto c = make();
  to_phase1(c, 42);
  const auto* ph1 = env.last_body<Ph1QMsg>(kPh1QType);
  ASSERT_NE(ph1, nullptr);
  EXPECT_EQ(ph1->id, kSelf);
  EXPECT_EQ(ph1->r, 1);
  EXPECT_EQ(ph1->sr, 1);
  EXPECT_EQ(ph1->labels, (std::set<Label>{kLx}));
  EXPECT_EQ(ph1->est, 42);
}

TEST_F(Fig9Fixture, QuorumNeedsExactSenderMultiset) {
  auto c = make();
  to_phase1(c, 42);
  deliver_ph1q(c, 1, 1, 1, {kLx}, 42);
  EXPECT_EQ(env.count(kPh2QType), 0u);  // {1} != {1,2}
  deliver_ph1q(c, 2, 1, 1, {kLx}, 42);
  const auto* ph2 = env.last_body<Ph2QMsg>(kPh2QType);
  ASSERT_NE(ph2, nullptr);
  EXPECT_EQ(ph2->est2, MaybeValue{42});  // unanimous quorum
}

TEST_F(Fig9Fixture, HomonymMultiplicityIsRespected) {
  // Quorum {1, 1}: two distinct messages from identifier 1 are required.
  fd2.snap.quora.clear();
  fd2.snap.quora.emplace(kLx, Multiset<Id>{1, 1});
  auto c = make();
  to_phase1(c, 42);
  deliver_ph1q(c, 1, 1, 1, {kLx}, 42);  // only one instance so far (our own)
  EXPECT_EQ(env.count(kPh2QType), 0u);
  deliver_ph1q(c, 1, 1, 1, {kLx}, 42);  // the homonym's copy
  EXPECT_EQ(env.count(kPh2QType), 1u);
}

TEST_F(Fig9Fixture, MessagesWithoutTheLabelDoNotCount) {
  auto c = make();
  to_phase1(c, 42);
  deliver_ph1q(c, 1, 1, 1, {kLy}, 42);  // carries the wrong label
  deliver_ph1q(c, 2, 1, 1, {kLy}, 42);
  EXPECT_EQ(env.count(kPh2QType), 0u);
}

TEST_F(Fig9Fixture, MixedEstimatesInQuorumYieldBottom) {
  auto c = make();
  to_phase1(c, 42);
  deliver_ph1q(c, 1, 1, 1, {kLx}, 42);
  deliver_ph1q(c, 2, 1, 1, {kLx}, 77);
  const auto* ph2 = env.last_body<Ph2QMsg>(kPh2QType);
  ASSERT_NE(ph2, nullptr);
  EXPECT_EQ(ph2->est2, MaybeValue{});
}

TEST_F(Fig9Fixture, QuorumMembersMustShareOneSubRound) {
  auto c = make();
  to_phase1(c, 42);
  deliver_ph1q(c, 1, 1, 1, {kLx}, 42);
  deliver_ph1q(c, 2, 1, 2, {kLx}, 42);  // different sub-round: no quorum...
  // ...but observing sr=2 bumps us to sr=2 and rebroadcasts (lines 32-36).
  const auto* ph1 = env.last_body<Ph1QMsg>(kPh1QType);
  ASSERT_NE(ph1, nullptr);
  EXPECT_EQ(ph1->sr, 2);
  EXPECT_EQ(env.count(kPh2QType), 0u);
  // A matching sr=2 message from id 1 completes the sr=2 quorum.
  deliver_ph1q(c, 1, 1, 2, {kLx}, 42);
  EXPECT_EQ(env.count(kPh2QType), 1u);
}

TEST_F(Fig9Fixture, LabelChangeBumpsSubRoundOnPoll) {
  auto c = make();
  to_phase1(c, 42);
  fd2.snap.labels.insert(kLy);  // detector output changes silently
  c.on_timer(env, env.timers.front().id);
  const auto* ph1 = env.last_body<Ph1QMsg>(kPh1QType);
  ASSERT_NE(ph1, nullptr);
  EXPECT_EQ(ph1->sr, 2);
  EXPECT_TRUE(ph1->labels.contains(kLy));
}

TEST_F(Fig9Fixture, Ph2ShortCircuitsPhase1) {
  auto c = make();
  to_phase1(c, 42);
  deliver_ph2q(c, 2, 1, 1, {kLx}, MaybeValue{55});
  // Lines 23-24: adopt est2 = 55 and enter Phase 2 directly.
  const auto* ph2 = env.last_body<Ph2QMsg>(kPh2QType);
  ASSERT_NE(ph2, nullptr);
  EXPECT_EQ(ph2->id, kSelf);
  EXPECT_EQ(ph2->est2, MaybeValue{55});
}

TEST_F(Fig9Fixture, Ph2QuorumUnanimousDecides) {
  auto c = make();
  to_phase1(c, 42);
  deliver_ph1q(c, 1, 1, 1, {kLx}, 42);
  deliver_ph1q(c, 2, 1, 1, {kLx}, 42);
  deliver_ph2q(c, 1, 1, 1, {kLx}, MaybeValue{42});
  deliver_ph2q(c, 2, 1, 1, {kLx}, MaybeValue{42});
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.decision().value, 42);
  EXPECT_EQ(env.count(kDecideType), 1u);
}

TEST_F(Fig9Fixture, Ph2MixedAdoptsAndAdvances) {
  auto c = make();
  to_phase1(c, 42);
  deliver_ph1q(c, 1, 1, 1, {kLx}, 42);
  deliver_ph1q(c, 2, 1, 1, {kLx}, 77);  // est2 = bottom for us
  deliver_ph2q(c, 1, 1, 1, {kLx}, MaybeValue{});
  deliver_ph2q(c, 2, 1, 1, {kLx}, MaybeValue{77});
  EXPECT_FALSE(c.done());
  EXPECT_EQ(c.current_round(), 2);
  const auto* coord = env.last_body<CoordMsg>(kCoordType);
  ASSERT_NE(coord, nullptr);
  EXPECT_EQ(coord->r, 2);
  EXPECT_EQ(coord->est, 77);  // line 52 adopted the non-bottom value
}

TEST_F(Fig9Fixture, CoordOfNextRoundReleasesPhase2) {
  auto c = make();
  to_phase1(c, 42);
  deliver_ph1q(c, 1, 1, 1, {kLx}, 42);
  deliver_ph1q(c, 2, 1, 1, {kLx}, 42);
  ASSERT_EQ(env.count(kPh2QType), 1u);
  // No PH2 quorum ever forms; someone already opened round 2 (lines 43-44).
  c.on_message(env, make_message(kCoordType, CoordMsg{9, 2, 5}));
  EXPECT_EQ(c.current_round(), 2);
}

TEST_F(Fig9Fixture, AnonymousVariantUsesALeader) {
  ScriptAOmega aomega;
  QuorumConsensus c(cfg, aomega, fd2);
  c.on_start(env);
  // Not a leader and no PH0: parked in Phase 0 (no coordination wait).
  EXPECT_EQ(env.count(kPh1QType), 0u);
  aomega.leader = true;
  c.on_timer(env, env.timers.front().id);
  EXPECT_EQ(env.count(kPh0Type), 1u);
  EXPECT_EQ(env.count(kPh1QType), 1u);
}

TEST_F(Fig9Fixture, EmptyQuorumInDetectorIsIgnored) {
  fd2.snap.quora.emplace(kLy, Multiset<Id>{});  // a broken pair
  auto c = make();
  to_phase1(c, 42);
  // The empty multiset must not instantly satisfy the scan.
  EXPECT_EQ(env.count(kPh2QType), 0u);
}

TEST_F(Fig9Fixture, StaleRoundTrafficIsInert) {
  auto c = make();
  to_phase1(c, 42);
  // Finish round 1 with a mixed PH2 quorum: advance to round 2.
  deliver_ph1q(c, 1, 1, 1, {kLx}, 42);
  deliver_ph1q(c, 2, 1, 1, {kLx}, 77);
  deliver_ph2q(c, 1, 1, 1, {kLx}, MaybeValue{});
  deliver_ph2q(c, 2, 1, 1, {kLx}, MaybeValue{77});
  ASSERT_EQ(c.current_round(), 2);
  env.clear();
  // Late round-1 traffic must cause no broadcast and no state change.
  deliver_ph1q(c, 1, 1, 1, {kLx}, 42);
  deliver_ph2q(c, 1, 1, 1, {kLx}, MaybeValue{42});
  EXPECT_TRUE(env.sent.empty());
  EXPECT_EQ(c.current_round(), 2);
  EXPECT_FALSE(c.done());
}

TEST_F(Fig9Fixture, FutureRoundQuorumTrafficIsBuffered) {
  auto c = make();
  to_phase1(c, 42);
  // Round-2 PH1Q messages arrive early.
  deliver_ph1q(c, 1, 2, 1, {kLx}, 9);
  deliver_ph1q(c, 2, 2, 1, {kLx}, 9);
  EXPECT_EQ(c.current_round(), 1);
  // Close round 1 (mixed -> next round); buffered round-2 traffic plus our
  // own PH1Q should drive Phase 1 of round 2 the moment PH0 unblocks it.
  deliver_ph1q(c, 1, 1, 1, {kLx}, 42);
  deliver_ph1q(c, 2, 1, 1, {kLx}, 77);
  deliver_ph2q(c, 1, 1, 1, {kLx}, MaybeValue{});
  deliver_ph2q(c, 2, 1, 1, {kLx}, MaybeValue{77});
  ASSERT_EQ(c.current_round(), 2);
  c.on_message(env, make_message(kPh0Type, Ph0Msg{2, 9}));  // round-2 leader value
  // The buffered {1,2} quorum at sub-round 1 carries est 9 unanimously: we
  // must already have broadcast a PH2Q with est2 = 9 for round 2.
  const auto* ph2 = env.last_body<Ph2QMsg>(kPh2QType);
  ASSERT_NE(ph2, nullptr);
  EXPECT_EQ(ph2->r, 2);
  EXPECT_EQ(ph2->est2, MaybeValue{9});
}

TEST_F(Fig9Fixture, DecideRelayedExactlyOnce) {
  auto c = make();
  c.on_start(env);
  c.on_message(env, make_message(kDecideType, DecideMsg{5}));
  c.on_message(env, make_message(kDecideType, DecideMsg{5}));
  EXPECT_EQ(env.count(kDecideType), 1u);
  EXPECT_TRUE(c.decision().decided);
}

}  // namespace
}  // namespace hds
