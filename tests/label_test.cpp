// Unit tests for quorum labels.
#include "common/label.h"

#include <gtest/gtest.h>

namespace hds {
namespace {

TEST(Label, MultisetLabelsEqualIffMultisetsEqual) {
  Multiset<Id> a{1, 1, 2};
  Multiset<Id> b{1, 2, 1};
  Multiset<Id> c{1, 2};
  EXPECT_EQ(Label::of_multiset(a), Label::of_multiset(b));
  EXPECT_NE(Label::of_multiset(a), Label::of_multiset(c));
}

TEST(Label, DifferentProvenancesNeverCollide) {
  // A set {3} and a multiset {3} are different labels; a count of 3 too.
  EXPECT_NE(Label::of_set({3}), Label::of_multiset(Multiset<Id>{3}));
  EXPECT_NE(Label::of_count(3), Label::of_asigma(3));
  EXPECT_NE(Label::of_text("3"), Label::of_count(3));
}

TEST(Label, SetLabelIsOrderIndependent) {
  EXPECT_EQ(Label::of_set({5, 2, 9}), Label::of_set({9, 5, 2}));
}

TEST(Label, TotallyOrderedForMapKeys) {
  Label a = Label::of_count(1);
  Label b = Label::of_count(2);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(Label, DefaultIsEmptyRepr) {
  Label l;
  EXPECT_EQ(l.repr(), "");
}

}  // namespace
}  // namespace hds
