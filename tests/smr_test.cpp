// src/smr/: the repeated-consensus replicated log. Unit tests for the slot
// lifecycle (get-or-create idempotence, buffering, GC-behind-frontier), the
// deterministic KV state machine, in-order application under out-of-order
// commit knowledge, and end-to-end sim runs: stable-leader convergence with
// the one-broadcast-per-batch pin, leader churn, crash of the leader, and
// same-seed reproducibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "consensus/harness.h"
#include "fd/interfaces.h"
#include "smr/harness.h"
#include "smr/instance_manager.h"
#include "smr/kv.h"
#include "smr/replica.h"
#include "smr/types.h"
#include "smr/workload.h"

namespace hds::smr {
namespace {

// ---------------------------------------------------------------- fixtures

class FixedHOmega final : public HOmegaHandle {
 public:
  FixedHOmega(Id leader, std::size_t mult) : out_{leader, mult} {}
  [[nodiscard]] HOmegaOut h_omega() const override { return out_; }

 private:
  HOmegaOut out_;
};

class FakeEnv final : public Env {
 public:
  explicit FakeEnv(Id self) : self_(self) {}
  [[nodiscard]] Id self_id() const override { return self_; }
  void broadcast(Message m) override { sent.push_back(std::move(m)); }
  TimerId set_timer(SimTime delay) override {
    (void)delay;
    return ++next_timer_;
  }
  [[nodiscard]] SimTime local_now() const override { return now; }

  std::vector<Message> sent;
  SimTime now = 0;

 private:
  Id self_;
  TimerId next_timer_ = 0;
};

SmrBatch batch_of(std::int64_t id, std::initializer_list<SmrOp> ops) {
  SmrBatch b;
  b.id = id;
  b.ops = ops;
  return b;
}

// --------------------------------------------------------------------- kv

TEST(SmrKv, AppliesOnceAndDedupsReplays) {
  KvStateMachine kv;
  const SmrBatch b = batch_of(make_batch_id(0, 1), {{7, 1, 42, 5, {}}, {7, 2, 42, 9, {}}});
  const auto first = kv.apply(1, b);
  EXPECT_EQ(first.size(), 2u);
  // The cell is an order-sensitive accumulator: 5, then 5·prime + 9.
  EXPECT_EQ(kv.get(42), static_cast<std::int64_t>(5u * 1099511628211ULL + 9u));
  EXPECT_EQ(kv.applied_seq(7), 2);

  // A re-proposal of the same batch at a later slot is fully deduped: no
  // effective ops, cell untouched.
  const std::int64_t cell = kv.get(42);
  const auto replay = kv.apply(2, b);
  EXPECT_TRUE(replay.empty());
  EXPECT_EQ(kv.get(42), cell);
  EXPECT_EQ(kv.ops_applied(), 2u);
  EXPECT_EQ(kv.ops_deduped(), 2u);
}

TEST(SmrKv, HashIsOrderSensitive) {
  KvStateMachine a, b;
  const SmrOp op1{1, 1, 10, 100, {}};
  const SmrOp op2{2, 1, 10, 200, {}};
  a.apply(1, batch_of(5, {op1}));
  a.apply(2, batch_of(6, {op2}));
  b.apply(1, batch_of(5, {op2}));
  b.apply(2, batch_of(6, {op1}));
  // Same multiset of ops, different order: the log hash must differ and the
  // order-sensitive cell must disagree too.
  EXPECT_NE(a.log_hash(), b.log_hash());
  EXPECT_NE(a.get(10), b.get(10));
  EXPECT_NE(a.state_hash(), b.state_hash());

  KvStateMachine c;
  c.apply(1, batch_of(5, {op1}));
  c.apply(2, batch_of(6, {op2}));
  EXPECT_EQ(a.log_hash(), c.log_hash());
  EXPECT_EQ(a.state_hash(), c.state_hash());
}

// ------------------------------------------------------- instance manager

InstanceManager::Config im_cfg() {
  InstanceManager::Config c;
  c.n = 3;
  c.t = 1;
  c.max_buffered = 4;
  return c;
}

TEST(SmrInstanceManager, GetOrCreateFirstWins) {
  InstanceManager im(im_cfg());
  FixedHOmega fd(kBottomId, 0);  // never leads: engines stay in their guard
  FakeEnv env(1);

  auto* e1 = im.get_or_create(5, 111, fd, env);
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(im.engines_created(), 1u);

  // Second creation for the same slot returns the same engine; the new
  // proposal is ignored (first creation wins, so concurrent recoveries
  // cannot fork the slot).
  auto* e2 = im.get_or_create(5, 999, fd, env);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(im.engines_created(), 1u);
}

TEST(SmrInstanceManager, BufferedMessagesReplayIntoEngine) {
  InstanceManager im(im_cfg());
  FixedHOmega fd(kBottomId, 0);
  FakeEnv env(1);

  // A consensus message arriving before the engine exists is buffered...
  EXPECT_TRUE(im.buffer_message(3, make_message("PH1", 0)));
  EXPECT_EQ(im.slot(3).buffered.size(), 1u);

  // ...and consumed at creation.
  im.get_or_create(3, 42, fd, env);
  EXPECT_TRUE(im.slot(3).buffered.empty());

  // Buffer bound: beyond max_buffered the message is dropped.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(im.buffer_message(9, make_message("PH1", 0)));
  EXPECT_FALSE(im.buffer_message(9, make_message("PH1", 0)));

  // A committed slot refuses buffering — late consensus traffic is noise.
  im.slot(7).committed = true;
  EXPECT_FALSE(im.buffer_message(7, make_message("PH1", 0)));
}

TEST(SmrInstanceManager, GcNeverDropsUndecidedSlotsAboveFrontier) {
  InstanceManager im(im_cfg());
  FixedHOmega fd(kBottomId, 0);
  FakeEnv env(1);

  for (std::int64_t s = 1; s <= 10; ++s) {
    auto& rec = im.slot(s);
    rec.has_entry = true;
    rec.batch = batch_of(make_batch_id(0, s), {});
    rec.committed = s <= 6;
  }
  im.get_or_create(4, 1, fd, env);   // engine below the frontier
  im.get_or_create(8, 1, fd, env);   // undecided engine above it
  im.get_or_create(12, 1, fd, env);  // undecided slot with no entry at all

  // Frontier 6, keep 2: records 1..4 go, 5..6 stay for repair, everything
  // above 6 is untouchable no matter its state.
  const std::size_t erased = im.gc(6, 2);
  EXPECT_EQ(erased, 4u);
  EXPECT_EQ(im.records_gced(), 4u);
  for (std::int64_t s = 1; s <= 4; ++s) EXPECT_FALSE(im.contains(s));
  for (std::int64_t s = 5; s <= 10; ++s) EXPECT_TRUE(im.contains(s));
  EXPECT_TRUE(im.contains(12));

  // Engines at or below the frontier are dropped (outcome fixed), engines
  // above it survive.
  EXPECT_EQ(im.slot(5).engine, nullptr);
  EXPECT_NE(im.slot(8).engine, nullptr);
  EXPECT_NE(im.slot(12).engine, nullptr);

  // Idempotent re-run erases nothing further.
  EXPECT_EQ(im.gc(6, 2), 0u);
}

// ---------------------------------------------------------------- workload

TEST(SmrWorkload, ClosedLoopKeepsOneOpOutstanding) {
  WorkloadConfig wc;
  wc.clients = 3;
  wc.seed = 7;
  WorkloadDriver d(wc, /*replica=*/1);
  auto first = d.start(0);
  ASSERT_EQ(first.size(), 3u);
  for (const auto& op : first) EXPECT_EQ(op.seq, 1);
  // Client ids are globally unique across replicas.
  EXPECT_EQ(first[0].client, 1 * kClientStride + 0);

  // Completing (client, 1) hands back exactly that client's op 2; a foreign
  // client or a stale seq yields nothing.
  auto next = d.on_applied(first[1].client, 1, 10);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->client, first[1].client);
  EXPECT_EQ(next->seq, 2);
  EXPECT_FALSE(d.on_applied(first[1].client, 1, 11).has_value());
  EXPECT_FALSE(d.on_applied(12345, 1, 11).has_value());
  EXPECT_EQ(d.ops_done(), 1u);
  ASSERT_EQ(d.latencies().size(), 1u);
  EXPECT_EQ(d.latencies()[0], 10);

  d.stop();
  EXPECT_FALSE(d.on_applied(next->client, 2, 20).has_value());
  EXPECT_EQ(d.ops_done(), 2u);  // completion still counted after stop

  // Determinism: same (seed, replica) ⇒ identical op stream.
  WorkloadDriver d2(wc, 1);
  EXPECT_EQ(d2.start(0), first);
}

// ------------------------------------------------- replica unit behaviour

// Out-of-order commit knowledge: a replica that learns commits for slots
// 3, then 1, then 2 must apply nothing until slot 1 commits, then apply the
// contiguous prefix — never a gap.
TEST(SmrReplica, AppliesInOrderUnderOutOfOrderCommits) {
  SmrConfig sc;
  sc.n = 3;
  sc.t = 1;
  sc.replica = 2;
  FixedHOmega fd(kBottomId, 0);  // this replica never seeks the lease
  WorkloadConfig wc;
  wc.clients = 0;  // pure follower
  SmrReplica rep(sc, fd, wc);
  FakeEnv env(3);
  rep.on_start(env);

  // Epoch 3 is owned by replica 0 (3 % 3 == 0), our fake leader.
  const std::int64_t e = 3;
  auto append = [&](std::int64_t slot, std::vector<SmrCommitRec> commits) {
    SmrAppendMsg a;
    a.epoch = e;
    a.slot = slot;
    a.batch = batch_of(make_batch_id(0, slot),
                       {{static_cast<std::uint64_t>(100 + slot), 1, slot, slot * 10, {}}});
    a.commits = std::move(commits);
    rep.on_message(env, make_message(kSmrAppendType, a));
  };

  append(1, {});
  append(2, {});
  append(3, {});
  EXPECT_EQ(rep.applied_through(), 0);

  // Commit for slot 3 alone: known, but not applicable — slots 1..2 are
  // still undecided.
  append(4, {{3, make_batch_id(0, 3)}});
  EXPECT_EQ(rep.committed_through(), 0);
  EXPECT_EQ(rep.applied_through(), 0);

  // Slot 1 commits: exactly slot 1 applies.
  append(5, {{1, make_batch_id(0, 1)}});
  EXPECT_EQ(rep.applied_through(), 1);
  EXPECT_EQ(rep.kv().get(1), 10);

  // Slot 2 closes the gap: the frontier jumps over the already-known 3.
  append(6, {{2, make_batch_id(0, 2)}});
  EXPECT_EQ(rep.committed_through(), 3);
  EXPECT_EQ(rep.applied_through(), 3);
  EXPECT_EQ(rep.kv().get(3), 30);
  EXPECT_EQ(rep.applied_chain().size(), 3u);
}

// A commit record only acts on a matching body: if the logged batch differs
// from the committed id, the body is dropped and the slot waits for repair
// instead of applying the wrong batch.
TEST(SmrReplica, ConflictingCommitRecordDropsBodyAndWaits) {
  SmrConfig sc;
  sc.n = 3;
  sc.t = 1;
  sc.replica = 2;
  FixedHOmega fd(kBottomId, 0);
  WorkloadConfig wc;
  wc.clients = 0;
  SmrReplica rep(sc, fd, wc);
  FakeEnv env(3);
  rep.on_start(env);

  SmrAppendMsg a;
  a.epoch = 3;
  a.slot = 1;
  a.batch = batch_of(make_batch_id(0, 1), {{100, 1, 1, 10, {}}});
  rep.on_message(env, make_message(kSmrAppendType, a));

  // A later epoch's recovery committed a different batch at slot 1.
  SmrAckMsg k;
  k.epoch = 4;
  k.replica = 1;
  k.commits = {{1, make_batch_id(1, 9)}};
  rep.on_message(env, make_message(kSmrAckType, k));

  // Known committed, but the body we hold is wrong: nothing applied.
  EXPECT_EQ(rep.applied_through(), 0);
  EXPECT_EQ(rep.kv().get(1), 0);

  // Repair delivers the true body (carrying its own commit record): applies.
  SmrAppendMsg fix;
  fix.epoch = 4;
  fix.slot = 1;
  fix.batch = batch_of(make_batch_id(1, 9), {{200, 1, 1, 77, {}}});
  fix.commits = {{1, make_batch_id(1, 9)}};
  rep.on_message(env, make_message(kSmrAppendType, fix));
  EXPECT_EQ(rep.applied_through(), 1);
  EXPECT_EQ(rep.kv().get(1), 77);
}

// ----------------------------------------------------------- sim: end-to-end

TEST(SmrSim, StableLeaderConvergesWithOneBroadcastPerBatch) {
  SmrSimParams p;
  p.n = 3;
  p.t = 1;
  p.workload.clients = 64;
  p.run_for = 8000;
  p.max_time = 20'000;
  p.seed = 11;

  const SmrSimResult res = run_smr_sim(p);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(res.prefix_consistent);
  EXPECT_GT(res.ops_total, 500u);
  EXPECT_GT(res.latency_p99, 0.0);
  EXPECT_GE(res.latency_p99, res.latency_p50);

  // Exactly one leader for the whole run, no recovery consensus, no repair.
  std::uint64_t epochs = 0, recoveries = 0, repairs = 0, appends = 0, batches = 0;
  for (const auto& r : res.replicas) {
    epochs += r.epochs_started;
    recoveries += r.recovery_instances;
    repairs += r.repair_appends_sent;
    appends += r.appends_sent;
    batches = std::max(batches, r.batches_committed);
  }
  EXPECT_EQ(epochs, 1u);
  EXPECT_EQ(recoveries, 0u);
  EXPECT_EQ(repairs, 0u);

  // The tentpole pin: steady state is ONE broadcast per committed batch.
  ASSERT_GT(batches, 50u);
  const double append_ratio = static_cast<double>(appends) / static_cast<double>(batches);
  EXPECT_LE(append_ratio, 1.05) << appends << " appends for " << batches << " batches";
  // And the whole protocol (acks, epoch traffic included) stays within two
  // broadcasts per batch thanks to ack amortization.
  std::uint64_t smr_total = 0;
  for (const auto& [type, cnt] : res.broadcasts_by_type) {
    if (type.rfind("SMR_", 0) == 0) smr_total += cnt;
  }
  EXPECT_LE(static_cast<double>(smr_total) / static_cast<double>(batches), 2.0);
}

TEST(SmrSim, LeaderChurnBeforeStabilizationConverges) {
  SmrSimParams p;
  p.n = 3;
  p.t = 1;
  p.workload.clients = 32;
  p.fd_stabilize = 1500;
  p.noise = OracleHOmega::Noise::kRotating;
  p.run_for = 9000;
  p.max_time = 30'000;
  p.seed = 5;

  const SmrSimResult res = run_smr_sim(p);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(res.prefix_consistent);
  EXPECT_GT(res.ops_total, 0u);
  for (std::size_t a = 1; a < res.replicas.size(); ++a) {
    EXPECT_EQ(res.replicas[a].log_hash, res.replicas[0].log_hash);
    EXPECT_EQ(res.replicas[a].state_hash, res.replicas[0].state_hash);
  }
}

TEST(SmrSim, LeaderCrashFailsOverAndConverges) {
  // Full detector stack (OHPPolling) so the lease reacts to a real crash:
  // process 0 carries the smallest identifier, leads, and dies mid-run.
  SmrSimParams p;
  p.n = 3;
  p.t = 1;
  p.full_stack = true;
  p.workload.clients = 16;
  p.crashes.assign(3, std::nullopt);
  p.crashes[0] = CrashPlan{2500, false};
  p.run_for = 12'000;
  p.max_time = 60'000;
  p.seed = 3;

  const SmrSimResult res = run_smr_sim(p);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(res.prefix_consistent);
  EXPECT_GT(res.ops_total, 0u);

  std::uint64_t epochs = 0;
  for (const auto& r : res.replicas) epochs += r.epochs_started;
  EXPECT_GE(epochs, 2u);  // the fail-over minted at least one new epoch

  // The survivors' logs and states are identical.
  const auto& s1 = res.replicas[1];
  const auto& s2 = res.replicas[2];
  EXPECT_EQ(s1.log_hash, s2.log_hash);
  EXPECT_EQ(s1.state_hash, s2.state_hash);
  EXPECT_EQ(s1.applied_through, s2.applied_through);
}

TEST(SmrSim, SameSeedReproducesBitIdenticalRun) {
  SmrSimParams p;
  p.n = 3;
  p.t = 1;
  p.workload.clients = 24;
  p.fd_stabilize = 800;
  p.noise = OracleHOmega::Noise::kRotating;
  p.run_for = 6000;
  p.max_time = 20'000;
  p.seed = 42;

  const SmrSimResult a = run_smr_sim(p);
  const SmrSimResult b = run_smr_sim(p);
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  EXPECT_EQ(a.ops_total, b.ops_total);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.broadcasts, b.broadcasts);
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    EXPECT_EQ(a.replicas[i].applied_chain, b.replicas[i].applied_chain);
    EXPECT_EQ(a.replicas[i].log_hash, b.replicas[i].log_hash);
    EXPECT_EQ(a.replicas[i].latencies, b.replicas[i].latencies);
  }
}

// Exactly-once end to end: every client op completes at most once even
// though acks re-forward pending ops at-least-once.
TEST(SmrSim, DedupMakesForwardingExactlyOnce) {
  SmrSimParams p;
  p.n = 3;
  p.t = 1;
  p.workload.clients = 16;
  p.run_for = 6000;
  p.max_time = 20'000;
  p.seed = 9;

  const SmrSimResult res = run_smr_sim(p);
  ASSERT_TRUE(res.converged);
  // Each completed op was applied exactly once; the state machines agree on
  // how many ops took effect.
  std::uint64_t ops_done = 0;
  for (const auto& r : res.replicas) ops_done += r.ops_done;
  for (const auto& r : res.replicas) {
    EXPECT_EQ(r.ops_applied, res.replicas[0].ops_applied);
    // Applied ≥ completed: in-flight ops at quiesce may commit without a
    // client waiting.
    EXPECT_GE(r.ops_applied, ops_done);
  }
}

}  // namespace
}  // namespace hds::smr
