// Algebraic property tests of the multiset operations over randomized
// inputs: the HΣ machinery leans on subset/intersection laws, so they are
// pinned here rather than assumed.
#include <gtest/gtest.h>

#include "common/multiset.h"
#include "common/rng.h"
#include "common/types.h"

namespace hds {
namespace {

Multiset<Id> random_multiset(Rng& rng, std::size_t max_size, Id max_id) {
  Multiset<Id> m;
  const auto k = static_cast<std::size_t>(rng.uniform(0, static_cast<Value>(max_size)));
  for (std::size_t i = 0; i < k; ++i) {
    m.insert(static_cast<Id>(rng.uniform(1, static_cast<Value>(max_id))));
  }
  return m;
}

struct MultisetProps : ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultisetProps, UnionMaxLaws) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    auto a = random_multiset(rng, 8, 5);
    auto b = random_multiset(rng, 8, 5);
    auto c = random_multiset(rng, 8, 5);
    // Commutative, associative, idempotent; both operands are subsets.
    EXPECT_EQ(a.union_max(b), b.union_max(a));
    EXPECT_EQ(a.union_max(b).union_max(c), a.union_max(b.union_max(c)));
    EXPECT_EQ(a.union_max(a), a);
    EXPECT_TRUE(a.is_subset_of(a.union_max(b)));
    EXPECT_TRUE(b.is_subset_of(a.union_max(b)));
  }
}

TEST_P(MultisetProps, IntersectionLaws) {
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = random_multiset(rng, 8, 5);
    auto b = random_multiset(rng, 8, 5);
    EXPECT_EQ(a.intersection(b), b.intersection(a));
    EXPECT_TRUE(a.intersection(b).is_subset_of(a));
    EXPECT_TRUE(a.intersection(b).is_subset_of(b));
    // Absorption: a ∩ (a ∪ b) == a.
    EXPECT_EQ(a.intersection(a.union_max(b)), a);
    // intersects() agrees with non-emptiness of intersection().
    EXPECT_EQ(a.intersects(b), !a.intersection(b).empty());
  }
}

TEST_P(MultisetProps, SumAndSizeLaws) {
  Rng rng(GetParam() + 2);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = random_multiset(rng, 8, 5);
    auto b = random_multiset(rng, 8, 5);
    EXPECT_EQ(a.sum(b).size(), a.size() + b.size());
    EXPECT_EQ(a.sum(b), b.sum(a));
    // |union| + |intersection| == |a| + |b| (inclusion-exclusion for max/min).
    EXPECT_EQ(a.union_max(b).size() + a.intersection(b).size(), a.size() + b.size());
  }
}

TEST_P(MultisetProps, SubsetIsAPartialOrder) {
  Rng rng(GetParam() + 3);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = random_multiset(rng, 6, 4);
    auto b = random_multiset(rng, 6, 4);
    auto c = random_multiset(rng, 6, 4);
    // Antisymmetry.
    if (a.is_subset_of(b) && b.is_subset_of(a)) EXPECT_EQ(a, b);
    // Transitivity.
    if (a.is_subset_of(b) && b.is_subset_of(c)) EXPECT_TRUE(a.is_subset_of(c));
  }
}

TEST_P(MultisetProps, ToVectorRoundTrips) {
  Rng rng(GetParam() + 4);
  for (int trial = 0; trial < 100; ++trial) {
    auto a = random_multiset(rng, 10, 6);
    auto v = a.to_vector();
    Multiset<Id> back(v.begin(), v.end());
    EXPECT_EQ(back, a);
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  }
}

// ---------------------------------------------------------------------------
// Flat backend vs the std::map reference: every operation of the default
// sorted-flat-vector store must agree with MapStore, observer by observer,
// over a mirrored random workload.

// Runs identical mutations against both backends and compares every scalar
// and structural observer.
template <typename A, typename B>
void expect_equivalent(const A& flat, const B& ref) {
  ASSERT_EQ(flat.size(), ref.size());
  ASSERT_EQ(flat.empty(), ref.empty());
  ASSERT_EQ(flat.distinct_size(), ref.distinct_size());
  ASSERT_EQ(flat.to_vector(), ref.to_vector());
  ASSERT_EQ(flat.to_string(), ref.to_string());
  for (Id v = 0; v <= 8; ++v) {
    ASSERT_EQ(flat.multiplicity(v), ref.multiplicity(v)) << "value " << v;
    ASSERT_EQ(flat.contains(v), ref.contains(v)) << "value " << v;
  }
  if (!flat.empty()) ASSERT_EQ(flat.min(), ref.min());
  // counts(): different container types, identical (value, count) sequence.
  std::vector<std::pair<Id, std::size_t>> fc(flat.counts().begin(), flat.counts().end());
  std::vector<std::pair<Id, std::size_t>> rc(ref.counts().begin(), ref.counts().end());
  ASSERT_EQ(fc, rc);
}

TEST_P(MultisetProps, FlatBackendMatchesMapReference) {
  Rng rng(GetParam() + 5);
  for (int trial = 0; trial < 60; ++trial) {
    Multiset<Id> fa;
    Multiset<Id> fb;
    MapMultiset<Id> ra;
    MapMultiset<Id> rb;
    for (int op = 0; op < 40; ++op) {
      const bool on_a = rng.chance(0.5);
      Multiset<Id>& f = on_a ? fa : fb;
      MapMultiset<Id>& r = on_a ? ra : rb;
      const auto pick = rng.uniform(0, 9);
      if (pick <= 4) {
        const Id v = static_cast<Id>(rng.uniform(1, 6));
        const auto c = static_cast<std::size_t>(rng.uniform(1, 3));
        f.insert(v, c);
        r.insert(v, c);
      } else if (pick <= 7) {
        const Id v = static_cast<Id>(rng.uniform(1, 6));
        if (f.contains(v)) {
          f.erase_one(v);
          r.erase_one(v);
        } else {
          EXPECT_THROW(f.erase_one(v), std::out_of_range);
          EXPECT_THROW(r.erase_one(v), std::out_of_range);
        }
      } else if (pick == 8 && rng.chance(0.2)) {
        f.clear();
        r.clear();
      } else {
        const Id v = static_cast<Id>(rng.uniform(1, 6));
        f = Multiset<Id>::with_copies(v, 2).sum(f);
        r = MapMultiset<Id>::with_copies(v, 2).sum(r);
      }
      expect_equivalent(fa, ra);
      expect_equivalent(fb, rb);
      // Binary algebra, mirrored pair against mirrored pair.
      expect_equivalent(fa.union_max(fb), ra.union_max(rb));
      expect_equivalent(fa.sum(fb), ra.sum(rb));
      expect_equivalent(fa.intersection(fb), ra.intersection(rb));
      ASSERT_EQ(fa.is_subset_of(fb), ra.is_subset_of(rb));
      ASSERT_EQ(fb.is_subset_of(fa), rb.is_subset_of(ra));
      ASSERT_EQ(fa.intersects(fb), ra.intersects(rb));
      ASSERT_EQ(fa == fb, ra == rb);
      // Total order: the flat <=> must rank pairs exactly like the map's
      // container comparison (Fig. 7 keys maps by multiset).
      ASSERT_EQ(fa < fb, ra < rb);
      ASSERT_EQ(fa > fb, ra > rb);
      ASSERT_EQ((fa <=> fb) == 0, (ra <=> rb) == 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultisetProps, ::testing::Values<std::uint64_t>(11, 22, 33));

}  // namespace
}  // namespace hds
