// Algebraic property tests of the multiset operations over randomized
// inputs: the HΣ machinery leans on subset/intersection laws, so they are
// pinned here rather than assumed.
#include <gtest/gtest.h>

#include "common/multiset.h"
#include "common/rng.h"
#include "common/types.h"

namespace hds {
namespace {

Multiset<Id> random_multiset(Rng& rng, std::size_t max_size, Id max_id) {
  Multiset<Id> m;
  const auto k = static_cast<std::size_t>(rng.uniform(0, static_cast<Value>(max_size)));
  for (std::size_t i = 0; i < k; ++i) {
    m.insert(static_cast<Id>(rng.uniform(1, static_cast<Value>(max_id))));
  }
  return m;
}

struct MultisetProps : ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultisetProps, UnionMaxLaws) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    auto a = random_multiset(rng, 8, 5);
    auto b = random_multiset(rng, 8, 5);
    auto c = random_multiset(rng, 8, 5);
    // Commutative, associative, idempotent; both operands are subsets.
    EXPECT_EQ(a.union_max(b), b.union_max(a));
    EXPECT_EQ(a.union_max(b).union_max(c), a.union_max(b.union_max(c)));
    EXPECT_EQ(a.union_max(a), a);
    EXPECT_TRUE(a.is_subset_of(a.union_max(b)));
    EXPECT_TRUE(b.is_subset_of(a.union_max(b)));
  }
}

TEST_P(MultisetProps, IntersectionLaws) {
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = random_multiset(rng, 8, 5);
    auto b = random_multiset(rng, 8, 5);
    EXPECT_EQ(a.intersection(b), b.intersection(a));
    EXPECT_TRUE(a.intersection(b).is_subset_of(a));
    EXPECT_TRUE(a.intersection(b).is_subset_of(b));
    // Absorption: a ∩ (a ∪ b) == a.
    EXPECT_EQ(a.intersection(a.union_max(b)), a);
    // intersects() agrees with non-emptiness of intersection().
    EXPECT_EQ(a.intersects(b), !a.intersection(b).empty());
  }
}

TEST_P(MultisetProps, SumAndSizeLaws) {
  Rng rng(GetParam() + 2);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = random_multiset(rng, 8, 5);
    auto b = random_multiset(rng, 8, 5);
    EXPECT_EQ(a.sum(b).size(), a.size() + b.size());
    EXPECT_EQ(a.sum(b), b.sum(a));
    // |union| + |intersection| == |a| + |b| (inclusion-exclusion for max/min).
    EXPECT_EQ(a.union_max(b).size() + a.intersection(b).size(), a.size() + b.size());
  }
}

TEST_P(MultisetProps, SubsetIsAPartialOrder) {
  Rng rng(GetParam() + 3);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = random_multiset(rng, 6, 4);
    auto b = random_multiset(rng, 6, 4);
    auto c = random_multiset(rng, 6, 4);
    // Antisymmetry.
    if (a.is_subset_of(b) && b.is_subset_of(a)) EXPECT_EQ(a, b);
    // Transitivity.
    if (a.is_subset_of(b) && b.is_subset_of(c)) EXPECT_TRUE(a.is_subset_of(c));
  }
}

TEST_P(MultisetProps, ToVectorRoundTrips) {
  Rng rng(GetParam() + 4);
  for (int trial = 0; trial < 100; ++trial) {
    auto a = random_multiset(rng, 10, 6);
    auto v = a.to_vector();
    Multiset<Id> back(v.begin(), v.end());
    EXPECT_EQ(back, a);
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultisetProps, ::testing::Values<std::uint64_t>(11, 22, 33));

}  // namespace
}  // namespace hds
