// Test doubles for protocol-level unit tests: a recording Env and
// hand-settable failure-detector handles, so a consensus state machine can
// be driven message by message and its outputs asserted exactly.
#pragma once

#include <algorithm>
#include <vector>

#include "fd/interfaces.h"
#include "sim/process.h"

namespace hds::testing {

class ScriptEnv final : public Env {
 public:
  explicit ScriptEnv(Id self) : self_(self) {}

  [[nodiscard]] Id self_id() const override { return self_; }
  void broadcast(Message m) override { sent.push_back(std::move(m)); }
  TimerId set_timer(SimTime delay) override {
    timers.push_back({next_timer_, delay});
    return next_timer_++;
  }
  [[nodiscard]] SimTime local_now() const override { return now; }

  // --- assertion helpers -------------------------------------------------

  [[nodiscard]] std::size_t count(const std::string& type) const {
    return static_cast<std::size_t>(
        std::count_if(sent.begin(), sent.end(), [&](const Message& m) { return m.type == type; }));
  }

  // Last sent message of `type` (nullptr if none).
  [[nodiscard]] const Message* last(const std::string& type) const {
    for (auto it = sent.rbegin(); it != sent.rend(); ++it) {
      if (it->type == type) return &*it;
    }
    return nullptr;
  }

  template <typename T>
  [[nodiscard]] const T* last_body(const std::string& type) const {
    const Message* m = last(type);
    return m == nullptr ? nullptr : m->as<T>();
  }

  void clear() { sent.clear(); }

  struct Armed {
    TimerId id;
    SimTime delay;
  };

  std::vector<Message> sent;
  std::vector<Armed> timers;
  SimTime now = 0;

 private:
  Id self_;
  TimerId next_timer_ = 1;
};

class ScriptHOmega final : public HOmegaHandle {
 public:
  [[nodiscard]] HOmegaOut h_omega() const override { return out; }
  HOmegaOut out{kBottomId, 1};
};

class ScriptHSigma final : public HSigmaHandle {
 public:
  [[nodiscard]] HSigmaSnapshot snapshot() const override { return snap; }
  HSigmaSnapshot snap;
};

class ScriptAOmega final : public AOmegaHandle {
 public:
  [[nodiscard]] bool a_leader() const override { return leader; }
  bool leader = false;
};

}  // namespace hds::testing
