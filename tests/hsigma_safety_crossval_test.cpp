// Cross-validation of the polynomial HΣ-safety decision procedure
// (hsigma_pair_violable) against brute-force enumeration of all quorum
// realizations, over randomized small configurations. The polynomial
// procedure relies on per-identifier independence of the disjoint-choice
// problem; this test is the evidence that the reduction is right.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "spec/fd_checkers.h"

namespace hds {
namespace {

// All subsets Q of `candidates` with I(Q) == m, as index bitmasks.
void realizations(const std::vector<ProcIndex>& candidates, const std::vector<Id>& ids,
                  const Multiset<Id>& m, std::vector<std::uint32_t>& out) {
  const std::size_t k = candidates.size();
  for (std::uint32_t mask = 0; mask < (1u << k); ++mask) {
    Multiset<Id> got;
    for (std::size_t b = 0; b < k; ++b) {
      if (mask & (1u << b)) got.insert(ids[candidates[b]]);
    }
    if (got == m) out.push_back(mask);
  }
}

// Brute force: do disjoint realizations of (m1 over s1) and (m2 over s2)
// exist? Masks are over the global process index space for comparability.
bool brute_force_violable(const Multiset<Id>& m1, const std::vector<ProcIndex>& s1,
                          const Multiset<Id>& m2, const std::vector<ProcIndex>& s2,
                          const std::vector<Id>& ids) {
  auto to_global = [&](const std::vector<ProcIndex>& procs, std::uint32_t local_mask) {
    std::uint32_t g = 0;
    for (std::size_t b = 0; b < procs.size(); ++b) {
      if (local_mask & (1u << b)) g |= 1u << procs[b];
    }
    return g;
  };
  std::vector<std::uint32_t> r1, r2;
  realizations(s1, ids, m1, r1);
  realizations(s2, ids, m2, r2);
  for (std::uint32_t a : r1) {
    for (std::uint32_t b : r2) {
      if ((to_global(s1, a) & to_global(s2, b)) == 0) return true;
    }
  }
  return false;
}

TEST(HSigmaSafetyCrossval, PolynomialMatchesBruteForceOnRandomConfigs) {
  Rng rng(424242);
  int violable_seen = 0, safe_seen = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform(1, 7));
    const Id distinct = static_cast<Id>(rng.uniform(1, 3));
    std::vector<Id> ids(n);
    for (auto& id : ids) id = static_cast<Id>(rng.uniform(1, static_cast<Value>(distinct)));

    auto random_subset = [&](std::vector<ProcIndex>& out) {
      for (ProcIndex p = 0; p < n; ++p) {
        if (rng.chance(0.6)) out.push_back(p);
      }
    };
    std::vector<ProcIndex> s1, s2;
    random_subset(s1);
    random_subset(s2);

    auto random_multiset = [&](const std::vector<ProcIndex>& carriers) {
      // Bias toward realizable multisets: sample a sub-multiset of the
      // carriers' identifiers, occasionally perturbed.
      Multiset<Id> m;
      for (ProcIndex p : carriers) {
        if (rng.chance(0.5)) m.insert(ids[p]);
      }
      if (rng.chance(0.2)) m.insert(static_cast<Id>(rng.uniform(1, static_cast<Value>(distinct))));
      return m;
    };
    const Multiset<Id> m1 = random_multiset(s1);
    const Multiset<Id> m2 = random_multiset(s2);

    const bool fast = hsigma_pair_violable(m1, s1, m2, s2, ids);
    const bool slow = brute_force_violable(m1, s1, m2, s2, ids);
    ASSERT_EQ(fast, slow) << "trial " << trial << " n=" << n << " m1=" << m1.to_string()
                          << " m2=" << m2.to_string();
    (fast ? violable_seen : safe_seen)++;
  }
  // The sweep must exercise both outcomes to mean anything.
  EXPECT_GT(violable_seen, 100);
  EXPECT_GT(safe_seen, 100);
}

TEST(HSigmaSafetyCrossval, SymmetricInItsArguments) {
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform(1, 6));
    std::vector<Id> ids(n);
    for (auto& id : ids) id = static_cast<Id>(rng.uniform(1, 3));
    std::vector<ProcIndex> s1, s2;
    for (ProcIndex p = 0; p < n; ++p) {
      if (rng.chance(0.5)) s1.push_back(p);
      if (rng.chance(0.5)) s2.push_back(p);
    }
    Multiset<Id> m1, m2;
    for (ProcIndex p : s1) {
      if (rng.chance(0.5)) m1.insert(ids[p]);
    }
    for (ProcIndex p : s2) {
      if (rng.chance(0.5)) m2.insert(ids[p]);
    }
    EXPECT_EQ(hsigma_pair_violable(m1, s1, m2, s2, ids),
              hsigma_pair_violable(m2, s2, m1, s1, ids));
  }
}

}  // namespace
}  // namespace hds
