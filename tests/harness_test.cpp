// Contract tests of the experiment harness: parameter validation, result
// structure invariants, and the relationships between reported quantities.
#include "consensus/harness.h"

#include <gtest/gtest.h>

#include "consensus/messages.h"

namespace hds {
namespace {

TEST(Harness, ProposalSizeMismatchThrows) {
  Fig8OracleParams p;
  p.ids = ids_unique(4);
  p.t_known = 1;
  p.proposals = {1, 2};  // wrong size
  EXPECT_THROW(run_fig8_with_oracle(p), std::invalid_argument);
}

TEST(Harness, Fig6StabilizationNeverPrecedesGst) {
  Fig6Params p;
  p.ids = ids_homonymous(5, 2, 3);
  p.crashes = crashes_last_k(5, 2, 100, 9);
  p.net = {.gst = 200, .delta = 3, .pre_gst_loss = 0.4, .pre_gst_max_delay = 60};
  p.run_for = 4000;
  auto r = run_fig6(p);
  ASSERT_TRUE(r.ohp_check.ok) << r.ohp_check.detail;
  // With crashes at 100/109 and chaos until GST=200, the output cannot have
  // settled on I(Correct) before the crashes happened.
  EXPECT_GE(r.stabilization_time, 100);
  EXPECT_GT(r.broadcasts, 0u);
  EXPECT_GT(r.copies_delivered, 0u);
}

TEST(Harness, ConsensusResultAccountingIsConsistent) {
  Fig8OracleParams p;
  p.ids = ids_homonymous(6, 3, 5);
  p.t_known = 2;
  p.crashes = crashes_last_k(6, 2, 25, 9);
  p.fd_stabilize = 50;
  auto r = run_fig8_with_oracle(p);
  ASSERT_TRUE(r.check.ok) << r.check.detail;
  // Decision times never exceed the run end; rounds are positive.
  for (const auto& d : r.decisions) {
    if (d.decided) {
      EXPECT_LE(d.at, r.end_time);
      EXPECT_GE(d.round, 1);
      EXPECT_LE(d.at, r.last_decision_time);
    }
  }
  // Per-type accounting sums to the total broadcast count.
  std::uint64_t sum = 0;
  for (const auto& [type, c] : r.broadcasts_by_type) {
    (void)type;
    sum += c;
  }
  EXPECT_EQ(sum, r.broadcasts);
  // Fig. 8's phases all appear in the type map.
  for (const char* type : {kCoordType, kPh0Type, kPh1Type, kPh2Type, kDecideType}) {
    EXPECT_TRUE(r.broadcasts_by_type.contains(type)) << type;
  }
}

TEST(Harness, Fig9GuardPollIsHonoured) {
  // A coarser guard poll cannot make the run fail, only slower.
  Fig9OracleParams p;
  p.ids = ids_homonymous(5, 2, 3);
  p.crashes = crashes_last_k(5, 2, 10, 5);
  p.fd1_stabilize = 60;
  p.fd2_stabilize = 90;
  p.guard_poll = 32;
  auto coarse = run_fig9_with_oracle(p);
  ASSERT_TRUE(coarse.check.ok) << coarse.check.detail;
  const SimTime coarse_poll = p.guard_poll;
  p.guard_poll = 2;
  auto fine = run_fig9_with_oracle(p);
  ASSERT_TRUE(fine.check.ok) << fine.check.detail;
  // The poll cadence itself shifts broadcast instants and with them the
  // random delivery draws, so strict dominance is not an invariant; what the
  // coarser poll guarantees is at most one extra poll period of added
  // decision latency beyond schedule noise.
  EXPECT_LE(fine.last_decision_time, coarse.last_decision_time + coarse_poll);
}

TEST(Harness, DistinctProposalsAreDistinct) {
  auto props = distinct_proposals(7);
  std::set<Value> seen(props.begin(), props.end());
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Harness, AnonymousIdsAreAllBottom) {
  for (Id id : ids_anonymous(5)) EXPECT_EQ(id, kBottomId);
  auto unique = ids_unique(5);
  std::set<Id> s(unique.begin(), unique.end());
  EXPECT_EQ(s.size(), 5u);
}

TEST(Harness, FullStackTraceCaptureWhenRequested) {
  Fig9FullStackParams p;
  p.ids = ids_homonymous(3, 2, 3);
  p.delta = 2;
  p.trace_capacity = 50'000;
  auto r = run_fig9_full_stack(p);
  ASSERT_TRUE(r.check.ok) << r.check.detail;
  EXPECT_NE(r.trace_head.find("start"), std::string::npos);
  EXPECT_NE(r.trace_head.find("COORD"), std::string::npos);
  // Off by default.
  p.trace_capacity = 0;
  auto quiet = run_fig9_full_stack(p);
  EXPECT_TRUE(quiet.trace_head.empty());
}

TEST(Harness, SyncCrashHelperShape) {
  auto crashes = sync_crashes_last_k(5, 2, 3, 2, true);
  EXPECT_FALSE(crashes[0].has_value());
  ASSERT_TRUE(crashes[4].has_value());
  EXPECT_EQ(crashes[4]->at_step, 3u);
  EXPECT_TRUE(crashes[4]->partial_broadcast);
  ASSERT_TRUE(crashes[3].has_value());
  EXPECT_EQ(crashes[3]->at_step, 5u);
  EXPECT_THROW(sync_crashes_last_k(2, 2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hds
