// Figure 8 consensus tests (Theorem 7): Validity, Agreement and
// Termination in HAS[t < n/2, HΩ] — swept over system size, homonymy
// degree, actual crash count, detector stabilization time and seeds, with
// adversarial pre-stability detector noise.
#include "consensus/majority_homega.h"

#include <gtest/gtest.h>

#include <tuple>

#include "consensus/harness.h"

namespace hds {
namespace {

TEST(Fig8Consensus, UniqueIdsNoCrashes) {
  Fig8OracleParams p;
  p.ids = ids_unique(4);
  p.t_known = 1;
  auto r = run_fig8_with_oracle(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(Fig8Consensus, UnanimousProposalDecidesThatValue) {
  Fig8OracleParams p;
  p.ids = ids_homonymous(5, 2, 1);
  p.t_known = 2;
  p.proposals = std::vector<Value>(5, 42);
  auto r = run_fig8_with_oracle(p);
  ASSERT_TRUE(r.check.ok) << r.check.detail;
  for (const auto& d : r.decisions) {
    if (d.decided) {
      EXPECT_EQ(d.value, 42);
    }
  }
}

TEST(Fig8Consensus, AnonymousExtremeAllSameId) {
  Fig8OracleParams p;
  p.ids = ids_anonymous(5);
  p.t_known = 2;
  p.crashes = crashes_last_k(5, 2, 25);
  p.fd_stabilize = 50;
  auto r = run_fig8_with_oracle(p);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(Fig8Consensus, UniqueIdExtremeWithLateStabilization) {
  Fig8OracleParams p;
  p.ids = ids_unique(7);
  p.t_known = 3;
  p.crashes = crashes_last_k(7, 3, 10, /*stagger=*/15);
  p.fd_stabilize = 200;
  auto r = run_fig8_with_oracle(p);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(Fig8Consensus, CrashDuringBroadcastStaysSafe) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Fig8OracleParams p;
    p.ids = ids_homonymous(5, 2, 3);
    p.t_known = 2;
    p.crashes = crashes_last_k(5, 2, 15, 9, /*partial=*/true);
    p.fd_stabilize = 40;
    p.seed = seed;
    auto r = run_fig8_with_oracle(p);
    EXPECT_TRUE(r.check.ok) << "seed " << seed << ": " << r.check.detail;
  }
}

TEST(Fig8Consensus, StableDetectorFromStartDecidesQuickly) {
  Fig8OracleParams p;
  p.ids = ids_homonymous(6, 3, 2);
  p.t_known = 2;
  p.noise = OracleHOmega::Noise::kNone;
  auto r = run_fig8_with_oracle(p);
  ASSERT_TRUE(r.check.ok) << r.check.detail;
  EXPECT_LE(r.max_round, 2);
}

TEST(Fig8Consensus, RequiresMajorityParameter) {
  const HOmegaOut dummy{1, 1};
  class Fixed final : public HOmegaHandle {
   public:
    [[nodiscard]] HOmegaOut h_omega() const override { return {1, 1}; }
  };
  Fixed fd;
  (void)dummy;
  MajorityConsensusConfig cfg;
  cfg.n = 4;
  cfg.t = 2;  // not a minority
  EXPECT_THROW(MajorityHOmegaConsensus(cfg, fd), std::invalid_argument);
  cfg.n = 0;
  cfg.t = 0;
  EXPECT_THROW(MajorityHOmegaConsensus(cfg, fd), std::invalid_argument);
  cfg.n = 5;
  cfg.t = 2;
  EXPECT_NO_THROW(MajorityHOmegaConsensus(cfg, fd));
  // Footnote-5 mode ignores n/t but rejects alpha = 0.
  cfg.n = 0;
  cfg.alpha = 3;
  EXPECT_NO_THROW(MajorityHOmegaConsensus(cfg, fd));
  cfg.alpha = 0;
  EXPECT_THROW(MajorityHOmegaConsensus(cfg, fd), std::invalid_argument);
}

TEST(Fig8Consensus, DecisionRoundAndTimeAreRecorded) {
  Fig8OracleParams p;
  p.ids = ids_unique(3);
  p.t_known = 1;
  p.noise = OracleHOmega::Noise::kNone;
  auto r = run_fig8_with_oracle(p);
  ASSERT_TRUE(r.check.ok) << r.check.detail;
  for (const auto& d : r.decisions) {
    if (d.decided) {
      EXPECT_GT(d.at, 0);
      EXPECT_GE(d.round, 1);
    }
  }
  EXPECT_GT(r.broadcasts, 0u);
}

struct Fig8Sweep : ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::size_t, SimTime, std::uint64_t>> {
};

TEST_P(Fig8Sweep, Theorem7Holds) {
  auto [n, distinct, crash_k, fd_stab, seed] = GetParam();
  if (distinct > n || 2 * crash_k >= n) GTEST_SKIP();
  Fig8OracleParams p;
  p.ids = ids_homonymous(n, distinct, 7 * seed + n);
  p.t_known = crash_k;
  if (crash_k > 0) p.crashes = crashes_last_k(n, crash_k, 20, 11);
  p.fd_stabilize = fd_stab;
  p.seed = seed;
  auto r = run_fig8_with_oracle(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Fig8Sweep,
                         ::testing::Combine(::testing::Values<std::size_t>(3, 5, 8),
                                            ::testing::Values<std::size_t>(1, 2, 5),
                                            ::testing::Values<std::size_t>(0, 1, 3),
                                            ::testing::Values<SimTime>(0, 90),
                                            ::testing::Values<std::uint64_t>(1, 2)));

}  // namespace
}  // namespace hds
