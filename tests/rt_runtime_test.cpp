// Thread-runtime tests: the same Process objects under real concurrency —
// mailbox delivery, timers, crash injection, and a full consensus stack
// (Fig. 6 ▸ Corollary 2 ▸ Fig. 8) across real threads.
#include "rt/runtime.h"

#include <gtest/gtest.h>

#include <atomic>

#include "consensus/majority_homega.h"
#include "consensus/quorum_homega_hsigma.h"
#include "fd/impl/alive_ranker.h"
#include "fd/impl/ohp_polling.h"
#include "fd/oracles.h"
#include "net/codec.h"
#include "sim/stacked_process.h"

namespace hds {
namespace {

using namespace std::chrono_literals;

struct PingMsg {
  int v;
};

class Probe final : public Process {
 public:
  void on_start(Env& env) override {
    if (send_on_start) env.broadcast(make_message("PING", PingMsg{1}));
    if (timer_ms >= 0) env.set_timer(timer_ms);
  }
  void on_message(Env&, const Message& m) override {
    if (m.type == "PING") ++pings;
  }
  void on_timer(Env& env, TimerId) override {
    ++timers;
    if (send_on_timer) env.broadcast(make_message("PING", PingMsg{2}));
  }

  bool send_on_start = false;
  bool send_on_timer = false;
  SimTime timer_ms = -1;
  std::atomic<int> pings{0};   // atomics: read from the test thread
  std::atomic<int> timers{0};
};

TEST(RtSystem, BroadcastReachesAllNodesIncludingSelf) {
  RtConfig cfg;
  cfg.ids = {1, 2, 3};
  RtSystem sys(std::move(cfg));
  std::vector<Probe*> probes;
  for (ProcIndex i = 0; i < 3; ++i) {
    auto p = std::make_unique<Probe>();
    p->send_on_start = (i == 0);
    probes.push_back(p.get());
    sys.set_process(i, std::move(p));
  }
  sys.start();
  ASSERT_TRUE(sys.wait_for([&] { return probes[0]->pings >= 1 && probes[1]->pings >= 1 &&
                                        probes[2]->pings >= 1; },
                           5000ms));
  sys.stop();
  for (auto* p : probes) EXPECT_EQ(p->pings, 1);
}

TEST(RtSystem, TimersFire) {
  RtConfig cfg;
  cfg.ids = {1};
  RtSystem sys(std::move(cfg));
  auto p = std::make_unique<Probe>();
  p->timer_ms = 10;
  auto* probe = p.get();
  sys.set_process(0, std::move(p));
  sys.start();
  EXPECT_TRUE(sys.wait_for([&] { return probe->timers >= 1; }, 5000ms));
  sys.stop();
}

TEST(RtSystem, CrashedNodeStopsReceiving) {
  RtConfig cfg;
  cfg.ids = {1, 2};
  RtSystem sys(std::move(cfg));
  auto a = std::make_unique<Probe>();
  a->timer_ms = 30;       // broadcasts after node 1 has crashed
  a->send_on_timer = true;
  auto* ap = a.get();
  auto b = std::make_unique<Probe>();
  auto* bp = b.get();
  sys.set_process(0, std::move(a));
  sys.set_process(1, std::move(b));
  sys.start();
  sys.crash(1);
  EXPECT_TRUE(sys.is_crashed(1));
  EXPECT_THROW(sys.query(1, [](Process&) {}), std::runtime_error);
  // Node 0 receives its own post-crash broadcast; node 1 receives nothing.
  ASSERT_TRUE(sys.wait_for([&] { return ap->pings >= 1; }, 5000ms));
  sys.stop();
  EXPECT_EQ(bp->pings, 0);
}

TEST(RtSystem, NetStatsCountBroadcastsAndDeliveries) {
  RtConfig cfg;
  cfg.ids = {1, 2, 3};
  RtSystem sys(std::move(cfg));
  std::vector<Probe*> probes;
  for (ProcIndex i = 0; i < 3; ++i) {
    auto p = std::make_unique<Probe>();
    p->send_on_start = true;
    probes.push_back(p.get());
    sys.set_process(i, std::move(p));
  }
  sys.start();
  // Each node broadcasts once; each copy reaches all 3 nodes.
  ASSERT_TRUE(sys.wait_for(
      [&] {
        return probes[0]->pings >= 3 && probes[1]->pings >= 3 && probes[2]->pings >= 3;
      },
      5000ms));
  RtNetworkStats stats = sys.net_stats();
  EXPECT_EQ(stats.broadcasts, 3u);
  EXPECT_EQ(stats.copies_scheduled, 9u);
  EXPECT_EQ(stats.copies_delivered, 9u);
  EXPECT_EQ(stats.copies_to_crashed, 0u);
  EXPECT_EQ(stats.broadcasts_by_type["PING"], 3u);
  // "PING" has no registered wire codec, so the byte estimate is zero.
  EXPECT_EQ(stats.bytes_sent, 0u);
  EXPECT_EQ(stats.bytes_received, 0u);
  sys.stop();
}

TEST(RtSystem, ByteCountersTrackEstimatedFrameSizes) {
  // A codec-registered body is costed at its exact v1 frame size per copy,
  // so thread-runtime byte counts are comparable with the UDP substrate's.
  struct AliveOnce final : Process {
    void on_start(Env& env) override {
      env.broadcast(make_message(AliveRanker::kMsgType, AliveMsg{env.self_id()}));
    }
    void on_message(Env&, const Message& m) override {
      if (m.type == AliveRanker::kMsgType) ++alives;
    }
    std::atomic<int> alives{0};
  };
  RtConfig cfg;
  cfg.ids = {1, 2, 3};
  RtSystem sys(std::move(cfg));
  std::vector<AliveOnce*> probes;
  for (ProcIndex i = 0; i < 3; ++i) {
    auto p = std::make_unique<AliveOnce>();
    probes.push_back(p.get());
    sys.set_process(i, std::move(p));
  }
  sys.start();
  ASSERT_TRUE(sys.wait_for(
      [&] {
        return probes[0]->alives >= 3 && probes[1]->alives >= 3 && probes[2]->alives >= 3;
      },
      5000ms));
  const auto frame = net::encoded_frame_size(
      net::builtin_codecs(), make_message(AliveRanker::kMsgType, AliveMsg{1}), 0, 1);
  ASSERT_TRUE(frame.has_value());
  RtNetworkStats stats = sys.net_stats();
  EXPECT_EQ(stats.bytes_sent, 9 * *frame);
  EXPECT_EQ(stats.bytes_received, 9 * *frame);
  sys.stop();
}

TEST(RtSystem, NetStatsAccountCrashedDestinations) {
  RtConfig cfg;
  cfg.ids = {1, 2};
  RtSystem sys(std::move(cfg));
  auto a = std::make_unique<Probe>();
  a->timer_ms = 30;
  a->send_on_timer = true;
  auto* ap = a.get();
  sys.set_process(0, std::move(a));
  sys.set_process(1, std::make_unique<Probe>());
  sys.start();
  sys.crash(1);
  ASSERT_TRUE(sys.wait_for([&] { return ap->pings >= 1; }, 5000ms));
  RtNetworkStats stats = sys.net_stats();
  EXPECT_GE(stats.broadcasts, 1u);
  // Every broadcast schedules a copy for node 0 and rejects one for node 1;
  // net_stats() still reads node 1's pre-crash tally without racing.
  EXPECT_EQ(stats.copies_to_crashed, stats.broadcasts);
  EXPECT_EQ(stats.copies_scheduled, stats.broadcasts);
  sys.stop();
}

TEST(RtSystem, MetricsRegistryMirrorsNetStats) {
  obs::MetricsRegistry reg;
  RtConfig cfg;
  cfg.ids = {1, 2, 3};
  cfg.metrics = &reg;
  RtSystem sys(std::move(cfg));
  std::vector<Probe*> probes;
  for (ProcIndex i = 0; i < 3; ++i) {
    auto p = std::make_unique<Probe>();
    p->send_on_start = true;
    probes.push_back(p.get());
    sys.set_process(i, std::move(p));
  }
  sys.start();
  ASSERT_TRUE(sys.wait_for(
      [&] {
        return probes[0]->pings >= 3 && probes[1]->pings >= 3 && probes[2]->pings >= 3;
      },
      5000ms));
  RtNetworkStats stats = sys.net_stats();
  EXPECT_EQ(reg.counter_total("rt_broadcasts_total"), stats.broadcasts);
  EXPECT_EQ(reg.counter_total("rt_copies_delivered_total"), stats.copies_delivered);
  sys.stop();
}

TEST(RtSystem, ValidatesConfig) {
  RtConfig empty;
  EXPECT_THROW(RtSystem{std::move(empty)}, std::invalid_argument);
  RtConfig bad;
  bad.ids = {1};
  bad.min_delay_ms = 5;
  bad.max_delay_ms = 1;
  EXPECT_THROW(RtSystem{std::move(bad)}, std::invalid_argument);
}

TEST(RtSystem, FullConsensusStackAcrossRealThreads) {
  // Fig. 6 (◇HP̄/HΩ) + Fig. 8 consensus on 4 threads, one crash mid-run.
  const std::size_t n = 4;
  RtConfig cfg;
  cfg.ids = {1, 1, 2, 3};  // homonymous pair
  cfg.max_delay_ms = 2;
  RtSystem sys(std::move(cfg));
  std::vector<MajorityHOmegaConsensus*> cons(n);
  for (ProcIndex i = 0; i < n; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    auto* fd = stack->add(std::make_unique<OHPPolling>());
    MajorityConsensusConfig ccfg;
    ccfg.n = n;
    ccfg.t = 1;
    ccfg.proposal = static_cast<Value>(100 + i);
    ccfg.guard_poll = 5;
    cons[i] = stack->add(std::make_unique<MajorityHOmegaConsensus>(ccfg, *fd));
    sys.set_process(i, std::move(stack));
  }
  sys.start();
  std::this_thread::sleep_for(30ms);
  sys.crash(3);

  auto decided = [&](ProcIndex i) {
    return sys.query(i, [&](Process&) { return cons[i]->decision(); });
  };
  ASSERT_TRUE(sys.wait_for(
      [&] {
        for (ProcIndex i = 0; i < 3; ++i) {
          if (!decided(i).decided) return false;
        }
        return true;
      },
      20000ms, 20ms))
      << "consensus did not terminate across threads";
  const Value v = decided(0).value;
  for (ProcIndex i = 1; i < 3; ++i) EXPECT_EQ(decided(i).value, v);
  EXPECT_GE(v, 100);
  EXPECT_LE(v, 103);
  sys.stop();
}

TEST(RtSystem, QuorumConsensusWithOraclesAcrossThreads) {
  // Fig. 9 over HΩ+HΣ oracles on real threads: the oracles read wall-clock
  // milliseconds and a crash plan the test enacts via sys.crash().
  const std::size_t n = 4;
  RtConfig cfg;
  cfg.ids = {1, 1, 2, 3};
  cfg.max_delay_ms = 2;
  RtSystem sys(std::move(cfg));

  GroundTruth gt;
  gt.ids = {1, 1, 2, 3};
  gt.correct = {true, true, true, false};  // node 3 will be crashed below
  const auto epoch = std::chrono::steady_clock::now();
  ClockFn clock = [epoch] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  };
  OracleHOmega fd1(gt, clock, /*stabilize_at=*/60);
  OracleHSigma fd2(gt, clock, /*stabilize_at=*/80);

  std::vector<QuorumConsensus*> cons(n);
  for (ProcIndex i = 0; i < n; ++i) {
    QuorumConsensusConfig ccfg;
    ccfg.proposal = static_cast<Value>(500 + i);
    ccfg.guard_poll = 5;
    auto proc = std::make_unique<QuorumConsensus>(ccfg, fd1.handle(i), fd2.handle(i));
    cons[i] = proc.get();
    sys.set_process(i, std::move(proc));
  }
  sys.start();
  std::this_thread::sleep_for(25ms);
  sys.crash(3);

  auto decided = [&](ProcIndex i) {
    return sys.query(i, [&](Process&) { return cons[i]->decision(); });
  };
  ASSERT_TRUE(sys.wait_for(
      [&] {
        for (ProcIndex i = 0; i < 3; ++i) {
          if (!decided(i).decided) return false;
        }
        return true;
      },
      20000ms, 20ms))
      << "Fig. 9 did not terminate across threads";
  const Value v = decided(0).value;
  for (ProcIndex i = 1; i < 3; ++i) EXPECT_EQ(decided(i).value, v);
  EXPECT_GE(v, 500);
  EXPECT_LE(v, 503);
  sys.stop();
}

}  // namespace
}  // namespace hds
