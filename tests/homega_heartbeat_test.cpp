// Tests of the heartbeat HΩ extension: election correctness across the
// homonymy spectrum under partial synchrony and asymmetric links, lag
// adaptation, and use as the detector under Fig. 8 consensus.
#include "fd/impl/homega_heartbeat.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "consensus/harness.h"
#include "consensus/majority_homega.h"
#include "sim/stacked_process.h"
#include "spec/fd_checkers.h"

namespace hds {
namespace {

struct HbRun {
  std::unique_ptr<System> sys;
  std::vector<HOmegaHeartbeat*> fds;
};

HbRun run_hb(std::vector<Id> ids, std::vector<std::optional<CrashPlan>> crashes,
             std::unique_ptr<TimingModel> timing, std::uint64_t seed, SimTime run_for) {
  SystemConfig cfg;
  cfg.ids = std::move(ids);
  cfg.timing = std::move(timing);
  cfg.crashes = std::move(crashes);
  cfg.seed = seed;
  HbRun r;
  r.sys = std::make_unique<System>(std::move(cfg));
  for (ProcIndex i = 0; i < r.sys->n(); ++i) {
    auto fd = std::make_unique<HOmegaHeartbeat>(4);
    r.fds.push_back(fd.get());
    r.sys->set_process(i, std::move(fd));
  }
  r.sys->start();
  r.sys->run_until(run_for);
  return r;
}

CheckResult check(const HbRun& r, SimTime run_for, SimTime window) {
  std::vector<const Trajectory<HOmegaOut>*> traces;
  for (auto* fd : r.fds) traces.push_back(&fd->trace());
  return check_homega(GroundTruth::from(*r.sys), traces, run_for, window);
}

TEST(HOmegaHeartbeat, ElectsMinIdWithMultiplicityUnderPartialSynchrony) {
  auto r = run_hb({2, 2, 2, 5, 9}, crashes_last_k(5, 2, 60, 11),
                  std::make_unique<PartialSyncTiming>(PartialSyncTiming::Params{
                      .gst = 100, .delta = 3, .pre_gst_loss = 0.4, .pre_gst_max_delay = 50}),
                  3, 3000);
  auto res = check(r, 3000, 300);
  EXPECT_TRUE(res.ok) << res.detail;
  // I(Correct) = {2,2,2}: leader 2 with multiplicity 3.
  EXPECT_EQ(r.fds[0]->h_omega(), (HOmegaOut{2, 3}));
}

TEST(HOmegaHeartbeat, LagAdaptsToLargeDelta) {
  auto r = run_hb(ids_unique(3), crashes_none(3),
                  std::make_unique<PartialSyncTiming>(PartialSyncTiming::Params{
                      .gst = 0, .delta = 20, .pre_gst_loss = 0.0, .pre_gst_max_delay = 1}),
                  1, 4000);
  auto res = check(r, 4000, 300);
  EXPECT_TRUE(res.ok) << res.detail;
  // delta = 20 spans several 4-tick periods: the lag must have grown.
  EXPECT_GT(r.fds[0]->lag(), 1);
}

TEST(HOmegaHeartbeat, SurvivesAsymmetricLinks) {
  auto r = run_hb(ids_homonymous(6, 3, 5), crashes_last_k(6, 2, 40, 9),
                  std::make_unique<PerLinkTiming>(1, 9, 2, /*seed=*/17), 2, 4000);
  auto res = check(r, 4000, 300);
  EXPECT_TRUE(res.ok) << res.detail;
}

struct HbSweep : ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t, int>> {};

TEST_P(HbSweep, ElectionHoldsAcrossTheSpectrum) {
  auto [n, distinct, crash_k, seed] = GetParam();
  if (distinct > n || crash_k >= n) GTEST_SKIP();
  auto r = run_hb(ids_homonymous(n, distinct, 7 * seed + 1), crashes_last_k(n, crash_k, 50, 13),
                  std::make_unique<PartialSyncTiming>(PartialSyncTiming::Params{
                      .gst = 90, .delta = 3, .pre_gst_loss = 0.3, .pre_gst_max_delay = 30}),
                  static_cast<std::uint64_t>(seed), 4000);
  auto res = check(r, 4000, 300);
  EXPECT_TRUE(res.ok) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HbSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(3, 6),
                                            ::testing::Values<std::size_t>(1, 2, 6),
                                            ::testing::Values<std::size_t>(0, 2),
                                            ::testing::Values(1, 2)));

TEST(HOmegaHeartbeat, DrivesFig8Consensus) {
  // Full alternative stack: heartbeat HΩ under the Fig. 8 algorithm.
  const std::size_t n = 5;
  SystemConfig cfg;
  cfg.ids = ids_homonymous(n, 2, 7);
  cfg.timing = std::make_unique<PartialSyncTiming>(PartialSyncTiming::Params{
      .gst = 80, .delta = 3, .pre_gst_loss = 0.0, .pre_gst_max_delay = 30});
  cfg.crashes = crashes_last_k(n, 2, 50, 11);
  cfg.seed = 5;
  System sys(std::move(cfg));
  std::vector<MajorityHOmegaConsensus*> cons(n);
  for (ProcIndex i = 0; i < n; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    auto* fd = stack->add(std::make_unique<HOmegaHeartbeat>(4));
    MajorityConsensusConfig ccfg;
    ccfg.n = n;
    ccfg.t = 2;
    ccfg.proposal = static_cast<Value>(10 * (i + 1));
    cons[i] = stack->add(std::make_unique<MajorityHOmegaConsensus>(ccfg, *fd));
    sys.set_process(i, std::move(stack));
  }
  sys.start();
  sys.run_until(30'000);
  std::vector<DecisionRecord> decisions;
  std::vector<Value> proposals;
  for (ProcIndex i = 0; i < n; ++i) {
    decisions.push_back(cons[i]->decision());
    proposals.push_back(static_cast<Value>(10 * (i + 1)));
  }
  auto res = check_consensus(GroundTruth::from(sys), proposals, decisions);
  EXPECT_TRUE(res.ok) << res.detail;
}

}  // namespace
}  // namespace hds
