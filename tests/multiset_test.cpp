// Unit tests for the multiset algebra (the paper's I(S) / mult_I machinery).
#include "common/multiset.h"

#include <gtest/gtest.h>

#include "common/types.h"

namespace hds {
namespace {

TEST(Multiset, EmptyBasics) {
  Multiset<Id> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.distinct_size(), 0u);
  EXPECT_EQ(m.multiplicity(7), 0u);
  EXPECT_FALSE(m.contains(7));
  EXPECT_THROW((void)m.min(), std::out_of_range);
}

TEST(Multiset, InsertCountsInstances) {
  Multiset<Id> m{5, 5, 9};
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.distinct_size(), 2u);
  EXPECT_EQ(m.multiplicity(5), 2u);
  EXPECT_EQ(m.multiplicity(9), 1u);
  m.insert(9, 3);
  EXPECT_EQ(m.multiplicity(9), 4u);
  EXPECT_EQ(m.size(), 6u);
}

TEST(Multiset, SizeEqualsCardinalityOfS) {
  // |I(S)| = |S| even with homonyms — the defining property of the bag view.
  std::vector<Id> ids{1, 1, 1, 2, 2, 3};
  Multiset<Id> m(ids.begin(), ids.end());
  EXPECT_EQ(m.size(), ids.size());
}

TEST(Multiset, EraseOne) {
  Multiset<Id> m{4, 4};
  m.erase_one(4);
  EXPECT_EQ(m.multiplicity(4), 1u);
  m.erase_one(4);
  EXPECT_FALSE(m.contains(4));
  EXPECT_THROW(m.erase_one(4), std::out_of_range);
}

TEST(Multiset, MinIsSmallestElement) {
  Multiset<Id> m{42, 7, 7, 100};
  EXPECT_EQ(m.min(), 7u);
}

TEST(Multiset, SubsetRespectsMultiplicity) {
  Multiset<Id> small{1, 1};
  Multiset<Id> big{1, 1, 2};
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  Multiset<Id> three_ones{1, 1, 1};
  EXPECT_FALSE(three_ones.is_subset_of(big));  // needs multiplicity 3
  EXPECT_TRUE(Multiset<Id>{}.is_subset_of(small));
}

TEST(Multiset, SubsetIsReflexive) {
  Multiset<Id> m{1, 2, 2, 3};
  EXPECT_TRUE(m.is_subset_of(m));
}

TEST(Multiset, UnionMaxTakesPerElementMax) {
  Multiset<Id> a{1, 1, 2};
  Multiset<Id> b{1, 2, 2, 3};
  Multiset<Id> u = a.union_max(b);
  EXPECT_EQ(u.multiplicity(1), 2u);
  EXPECT_EQ(u.multiplicity(2), 2u);
  EXPECT_EQ(u.multiplicity(3), 1u);
  EXPECT_EQ(u.size(), 5u);
}

TEST(Multiset, SumAddsMultiplicities) {
  Multiset<Id> a{1, 2};
  Multiset<Id> b{1, 3};
  Multiset<Id> s = a.sum(b);
  EXPECT_EQ(s.multiplicity(1), 2u);
  EXPECT_EQ(s.size(), 4u);
}

TEST(Multiset, IntersectionTakesPerElementMin) {
  Multiset<Id> a{1, 1, 2, 4};
  Multiset<Id> b{1, 2, 2, 3};
  Multiset<Id> i = a.intersection(b);
  EXPECT_EQ(i.multiplicity(1), 1u);
  EXPECT_EQ(i.multiplicity(2), 1u);
  EXPECT_FALSE(i.contains(3));
  EXPECT_FALSE(i.contains(4));
}

TEST(Multiset, Intersects) {
  Multiset<Id> a{1, 2};
  Multiset<Id> b{2, 3};
  Multiset<Id> c{4};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_FALSE(Multiset<Id>{}.intersects(a));
}

TEST(Multiset, WithCopies) {
  auto m = Multiset<Id>::with_copies(kBottomId, 4);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_EQ(m.multiplicity(kBottomId), 4u);
  EXPECT_EQ(Multiset<Id>::with_copies(1, 0).size(), 0u);
}

TEST(Multiset, ToVectorSortedWithRepetitions) {
  Multiset<Id> m{3, 1, 3, 2};
  EXPECT_EQ(m.to_vector(), (std::vector<Id>{1, 2, 3, 3}));
}

TEST(Multiset, EqualityAndOrdering) {
  Multiset<Id> a{1, 2};
  Multiset<Id> b{1, 2};
  Multiset<Id> c{1, 2, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c || c < a);  // total order usable as map key
}

TEST(Multiset, ToStringShowsInstances) {
  Multiset<Id> m{2, 1, 2};
  EXPECT_EQ(m.to_string(), "{1,2,2}");
  EXPECT_EQ(Multiset<Id>{}.to_string(), "{}");
}

}  // namespace
}  // namespace hds
