// Figure 7 (HΣ in HSS) property tests — Theorem 6 as a machine check:
// validity, monotonicity, liveness and safety of the produced quora, under
// crash schedules including crash-during-broadcast, plus the event-engine
// lock-step adapter.
#include "fd/impl/hsigma_sync.h"

#include <gtest/gtest.h>

#include <tuple>

#include "consensus/harness.h"
#include "spec/fd_checkers.h"

namespace hds {
namespace {

TEST(HSigmaSync, QuietRunProducesTheFullQuorum) {
  Fig7Params p;
  p.ids = ids_homonymous(4, 2, 3);
  p.steps = 10;
  auto r = run_fig7(p);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
  EXPECT_EQ(r.liveness_step, 0);       // first step already certifies everyone
  EXPECT_EQ(r.max_quora_stored, 1u);   // the same multiset every step
}

TEST(HSigmaSync, CrashesCreateNestedQuora) {
  Fig7Params p;
  p.ids = ids_homonymous(6, 3, 9);
  p.crashes = sync_crashes_last_k(6, 2, 2, /*stagger=*/2);
  p.steps = 12;
  auto r = run_fig7(p);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
  EXPECT_GE(r.liveness_step, 5);       // only after the last crash step
  EXPECT_GE(r.max_quora_stored, 2u);   // shrinking multisets accumulate
}

TEST(HSigmaSync, PartialDyingBroadcastStaysSafe) {
  // A process crashing during its broadcast gives different receivers
  // different multisets in that step; safety must still hold.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Fig7Params p;
    p.ids = ids_homonymous(5, 2, 4);
    p.crashes = sync_crashes_last_k(5, 2, 1, 1, /*partial=*/true);
    p.steps = 10;
    p.seed = seed;
    auto r = run_fig7(p);
    EXPECT_TRUE(r.check.ok) << "seed " << seed << ": " << r.check.detail;
  }
}

TEST(HSigmaSync, AnonymousExtreme) {
  Fig7Params p;
  p.ids = ids_anonymous(5);
  p.crashes = sync_crashes_last_k(5, 3, 1, 1);
  p.steps = 12;
  auto r = run_fig7(p);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(HSigmaCore, EmptyStepIsIgnored) {
  HSigmaCore core;
  core.on_step_idents(0, Multiset<Id>{});
  EXPECT_TRUE(core.snapshot().labels.empty());
  EXPECT_TRUE(core.snapshot().quora.empty());
}

TEST(HSigmaCore, LabelIsTheMultisetItself) {
  HSigmaCore core;
  Multiset<Id> m{1, 1, 2};
  core.on_step_idents(0, m);
  const auto snap = core.snapshot();
  ASSERT_EQ(snap.quora.size(), 1u);
  EXPECT_EQ(snap.quora.begin()->first, Label::of_multiset(m));
  EXPECT_EQ(snap.quora.begin()->second, m);
  EXPECT_TRUE(snap.labels.contains(Label::of_multiset(m)));
}

// The event-engine adapter must produce the same detector as the lock-step
// engine when steps align with the link bound.
TEST(HSigmaComponent, EventEngineAdapterSatisfiesHSigma) {
  SystemConfig cfg;
  cfg.ids = ids_homonymous(5, 2, 6);
  cfg.timing = std::make_unique<BoundedTiming>(2);
  cfg.crashes = crashes_last_k(5, 2, 9);  // mid-run crashes
  cfg.seed = 3;
  System sys(std::move(cfg));
  std::vector<HSigmaComponent*> fds;
  for (ProcIndex i = 0; i < 5; ++i) {
    auto fd = std::make_unique<HSigmaComponent>(3);  // step_len > bound
    fds.push_back(fd.get());
    sys.set_process(i, std::move(fd));
  }
  sys.start();
  sys.run_until(300);
  const GroundTruth gt = GroundTruth::from(sys);
  std::vector<const Trajectory<HSigmaSnapshot>*> snaps;
  for (auto* fd : fds) snaps.push_back(&fd->core().trace());
  auto res = check_hsigma(gt, snaps);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(HSigmaComponent, ViolatedSynchronyBoundBreaksTheDetector) {
  // The Fig. 7 adapter's contract is step_len > link bound (the HSS model's
  // known delta). Violate it — delays up to 6 with a step length of 3 — and
  // steps observe partial sender sets, producing splittable quora that the
  // exact safety checker flags. This is why HΣ lives in HSS, not HPS.
  SystemConfig cfg;
  cfg.ids = ids_homonymous(5, 2, 6);
  cfg.timing = std::make_unique<BoundedTiming>(6);
  cfg.seed = 11;
  System sys(std::move(cfg));
  std::vector<HSigmaComponent*> fds;
  for (ProcIndex i = 0; i < 5; ++i) {
    auto fd = std::make_unique<HSigmaComponent>(3);  // < the actual bound
    fds.push_back(fd.get());
    sys.set_process(i, std::move(fd));
  }
  sys.start();
  sys.run_until(300);
  const GroundTruth gt = GroundTruth::from(sys);
  std::vector<const Trajectory<HSigmaSnapshot>*> snaps;
  for (auto* fd : fds) snaps.push_back(&fd->core().trace());
  auto res = check_hsigma_safety(gt, snaps);
  EXPECT_FALSE(res.ok);
}

struct HSigmaSweep
    : ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t, bool, int>> {};

TEST_P(HSigmaSweep, Theorem6Holds) {
  auto [n, distinct, crash_k, partial, seed] = GetParam();
  if (distinct > n || crash_k >= n) GTEST_SKIP();
  Fig7Params p;
  p.ids = ids_homonymous(n, distinct, 31 * seed + 7);
  p.crashes = sync_crashes_last_k(n, crash_k, 1, 1, partial);
  p.steps = 14;
  p.seed = static_cast<std::uint64_t>(seed);
  auto r = run_fig7(p);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
  EXPECT_GE(r.liveness_step, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HSigmaSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(2, 5, 7),
                                            ::testing::Values<std::size_t>(1, 3, 7),
                                            ::testing::Values<std::size_t>(0, 1, 4),
                                            ::testing::Bool(),
                                            ::testing::Values(1, 2)));

}  // namespace
}  // namespace hds
