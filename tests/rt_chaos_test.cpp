// Runtime fault injection on the thread substrate: interposed drops,
// delayed and duplicated mailbox deliveries, plan-scheduled crashes during
// live traffic, and the RtNetworkStats accounting invariant mirroring the
// sim substrate's split counters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>

#include "chaos/fault_plan.h"
#include "chaos/injector.h"
#include "consensus/majority_homega.h"
#include "fd/impl/ohp_polling.h"
#include "rt/runtime.h"
#include "sim/stacked_process.h"

namespace hds {
namespace {

using namespace std::chrono_literals;
using chaos::ClauseKind;
using chaos::FaultClause;
using chaos::FaultInjector;
using chaos::FaultPlan;

struct PingMsg {};

class Probe final : public Process {
 public:
  void on_start(Env& env) override {
    if (send_on_start) env.broadcast(make_message("PING", PingMsg{}));
    if (period_ms > 0) env.set_timer(period_ms);
  }
  void on_timer(Env& env, TimerId) override {
    env.broadcast(make_message("PING", PingMsg{}));
    env.set_timer(period_ms);
  }
  void on_message(Env&, const Message& m) override {
    if (m.type == "PING") ++pings;
  }

  bool send_on_start = false;
  SimTime period_ms = 0;
  std::atomic<int> pings{0};
};

TEST(RtChaos, PartitionClauseDropsCopiesAndCountsThem) {
  FaultPlan plan;
  FaultClause part;
  part.kind = ClauseKind::kPartition;
  part.links.src = {0};
  plan.clauses = {part};  // never heals: everything from node 0 is dropped
  FaultInjector inj(plan, {1, 2, 3}, 5);

  RtConfig cfg;
  cfg.ids = {1, 2, 3};
  RtSystem sys(std::move(cfg));
  std::vector<Probe*> probes;
  for (ProcIndex i = 0; i < 3; ++i) {
    auto p = std::make_unique<Probe>();
    p->send_on_start = true;
    probes.push_back(p.get());
    sys.set_process(i, std::move(p));
  }
  inj.arm(sys);
  sys.start();
  // Nodes 1 and 2 broadcast cleanly: everyone hears those two.
  ASSERT_TRUE(sys.wait_for(
      [&] { return probes[0]->pings >= 2 && probes[1]->pings >= 2 && probes[2]->pings >= 2; },
      5000ms));
  RtNetworkStats st = sys.net_stats();
  sys.stop();
  for (auto* p : probes) EXPECT_EQ(p->pings, 2);  // node 0's copies never landed
  EXPECT_EQ(st.broadcasts, 3u);
  EXPECT_EQ(st.copies_lost_link, 3u);
  EXPECT_EQ(st.copies_scheduled, 6u);
  // Accounting invariant shared with the sim substrate: every per-link copy
  // is scheduled, rejected at a crashed node, or lost to a link fault.
  EXPECT_EQ(st.copies_scheduled + st.copies_to_crashed + st.copies_lost_link,
            3u * st.broadcasts);
  EXPECT_EQ(inj.stats().copies_dropped, 3u);
}

TEST(RtChaos, DelayClauseDefersMailboxDelivery) {
  FaultPlan plan;
  FaultClause slow;
  slow.kind = ClauseKind::kDelay;
  slow.delay = 80;  // ms on this substrate
  plan.clauses = {slow};
  FaultInjector inj(plan, {1, 2}, 5);

  RtConfig cfg;
  cfg.ids = {1, 2};
  cfg.max_delay_ms = 1;
  RtSystem sys(std::move(cfg));
  auto a = std::make_unique<Probe>();
  a->send_on_start = true;
  auto b = std::make_unique<Probe>();
  auto* bp = b.get();
  sys.set_process(0, std::move(a));
  sys.set_process(1, std::move(b));
  inj.arm(sys);
  const auto t0 = std::chrono::steady_clock::now();
  sys.start();
  ASSERT_TRUE(sys.wait_for([&] { return bp->pings >= 1; }, 5000ms));
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0);
  sys.stop();
  EXPECT_GE(elapsed.count(), 80);
  EXPECT_GE(inj.stats().copies_delayed, 1u);
}

TEST(RtChaos, DuplicateClauseDeliversExtraCopies) {
  FaultPlan plan;
  FaultClause dup;
  dup.kind = ClauseKind::kDuplicate;
  dup.prob = 1.0;
  dup.count = 2;
  dup.delay = 2;
  plan.clauses = {dup};
  FaultInjector inj(plan, {1, 2}, 5);

  RtConfig cfg;
  cfg.ids = {1, 2};
  RtSystem sys(std::move(cfg));
  std::vector<Probe*> probes;
  for (ProcIndex i = 0; i < 2; ++i) {
    auto p = std::make_unique<Probe>();
    p->send_on_start = (i == 0);
    probes.push_back(p.get());
    sys.set_process(i, std::move(p));
  }
  inj.arm(sys);
  sys.start();
  // One broadcast, two links, each original copy trailed by 2 duplicates.
  ASSERT_TRUE(sys.wait_for([&] { return probes[0]->pings >= 3 && probes[1]->pings >= 3; },
                           5000ms));
  RtNetworkStats st = sys.net_stats();
  sys.stop();
  EXPECT_EQ(probes[0]->pings, 3);
  EXPECT_EQ(probes[1]->pings, 3);
  EXPECT_EQ(st.copies_scheduled, 2u);  // duplicates are counted separately
  EXPECT_EQ(st.copies_duplicated, 4u);
  EXPECT_EQ(st.copies_delivered, 6u);
}

TEST(RtChaos, PlanScheduledCrashSilencesNodeDuringTraffic) {
  FaultPlan plan;
  FaultClause cr;
  cr.kind = ClauseKind::kCrashAt;
  cr.proc = 1;
  cr.at = 60;  // ms after arm
  plan.clauses = {cr};
  FaultInjector inj(plan, {1, 2}, 5);

  RtConfig cfg;
  cfg.ids = {1, 2};
  RtSystem sys(std::move(cfg));
  auto a = std::make_unique<Probe>();
  a->period_ms = 15;  // keeps broadcasting across the crash instant
  auto b = std::make_unique<Probe>();
  auto* bp = b.get();
  sys.set_process(0, std::move(a));
  sys.set_process(1, std::move(b));
  inj.arm(sys);
  sys.start();
  ASSERT_TRUE(sys.wait_for([&] { return sys.is_crashed(1); }, 5000ms));
  EXPECT_EQ(inj.stats().crashes_injected, 1u);
  const int pings_at_crash = bp->pings;
  // Let traffic continue: the crashed node's tally must stop moving while
  // the sender keeps broadcasting into a rejecting mailbox.
  RtNetworkStats before = sys.net_stats();
  ASSERT_TRUE(sys.wait_for(
      [&] { return sys.net_stats().copies_to_crashed >= before.copies_to_crashed + 3; },
      5000ms, 20ms));
  RtNetworkStats st = sys.net_stats();
  sys.stop();
  EXPECT_EQ(bp->pings, pings_at_crash);
  EXPECT_EQ(st.copies_scheduled + st.copies_to_crashed + st.copies_lost_link,
            2u * st.broadcasts);
}

TEST(RtChaos, AdmissiblePlanConsensusStillDecidesAcrossThreads) {
  // The fig8 stack's admissible adversary (delay shaping + a crash within
  // t) on the thread substrate: consensus must still terminate and agree.
  const std::size_t n = 4;
  FaultPlan plan;
  FaultClause slow;
  slow.kind = ClauseKind::kDelay;
  slow.delay = 3;
  slow.until = 200;  // ms: transient pre-"GST" inflation
  FaultClause cr;
  cr.kind = ClauseKind::kCrashAt;
  cr.proc = 3;
  cr.at = 30;
  plan.clauses = {slow, cr};
  FaultInjector inj(plan, {1, 1, 2, 3}, 5);

  RtConfig cfg;
  cfg.ids = {1, 1, 2, 3};
  cfg.max_delay_ms = 2;
  RtSystem sys(std::move(cfg));
  std::vector<MajorityHOmegaConsensus*> cons(n);
  for (ProcIndex i = 0; i < n; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    auto* fd = stack->add(std::make_unique<OHPPolling>());
    MajorityConsensusConfig ccfg;
    ccfg.n = n;
    ccfg.t = 1;
    ccfg.proposal = static_cast<Value>(100 + i);
    ccfg.guard_poll = 5;
    cons[i] = stack->add(std::make_unique<MajorityHOmegaConsensus>(ccfg, *fd));
    sys.set_process(i, std::move(stack));
  }
  inj.arm(sys);
  sys.start();

  auto decided = [&](ProcIndex i) {
    return sys.query(i, [&](Process&) { return cons[i]->decision(); });
  };
  ASSERT_TRUE(sys.wait_for(
      [&] {
        for (ProcIndex i = 0; i < 3; ++i) {
          if (!decided(i).decided) return false;
        }
        return true;
      },
      20000ms, 20ms))
      << "consensus did not terminate under the admissible plan";
  EXPECT_TRUE(sys.is_crashed(3));
  EXPECT_EQ(inj.stats().crashes_injected, 1u);
  const Value v = decided(0).value;
  for (ProcIndex i = 1; i < 3; ++i) EXPECT_EQ(decided(i).value, v);  // agreement
  EXPECT_GE(v, 100);  // validity
  EXPECT_LE(v, 103);
  sys.stop();
}

TEST(RtChaos, RejectsInterposerInstallAfterStart) {
  RtConfig cfg;
  cfg.ids = {1};
  RtSystem sys(std::move(cfg));
  sys.set_process(0, std::make_unique<Probe>());
  sys.start();
  FaultPlan plan;
  FaultInjector inj(plan, {1}, 5);
  EXPECT_THROW(sys.set_interposer(&inj), std::logic_error);
  sys.stop();
}

}  // namespace
}  // namespace hds
