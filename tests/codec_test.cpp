// Wire codec tests: primitive round-trips, seeded random round-trips of
// every registered body type, batch envelope round-trips, and rejection of
// malformed / truncated / corrupted frames (which must throw CodecError —
// never crash or read out of bounds; the sanitizer CI config runs these).
#include "net/codec.h"

#include <gtest/gtest.h>

#include <any>

#include "common/label.h"
#include "common/rng.h"
#include "consensus/messages.h"
#include "fd/impl/alive_ranker.h"
#include "fd/impl/ap_sync.h"
#include "fd/impl/homega_heartbeat.h"
#include "fd/impl/hsigma_sync.h"
#include "fd/impl/ohp_polling.h"
#include "net/wire.h"
#include "smr/types.h"

namespace hds::net {
namespace {

// ------------------------------------------------------------ primitives

TEST(Wire, VarintRoundTripsBoundaryValues) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 (1ull << 63),
                                 ~0ull};
  for (const std::uint64_t v : cases) {
    WireWriter w;
    w.varint(v);
    WireReader r(w.data().data(), w.size());
    EXPECT_EQ(r.varint(), v);
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(Wire, SvarintRoundTripsSignedBoundaries) {
  const std::int64_t cases[] = {0,  1,  -1, 63, -64, 64, -65, (std::int64_t)1 << 62,
                                INT64_MAX, INT64_MIN};
  for (const std::int64_t v : cases) {
    WireWriter w;
    w.svarint(v);
    WireReader r(w.data().data(), w.size());
    EXPECT_EQ(r.svarint(), v);
  }
}

TEST(Wire, StringRoundTripsAndRejectsOverlongLength) {
  WireWriter w;
  w.str("quorum {1,1,2}");
  WireReader r(w.data().data(), w.size());
  EXPECT_EQ(r.str(), "quorum {1,1,2}");

  // A length prefix larger than the remaining bytes must throw, not read on.
  WireWriter bad;
  bad.varint(1000);
  bad.u8('x');
  WireReader rb(bad.data().data(), bad.size());
  EXPECT_THROW(rb.str(), CodecError);
}

TEST(Wire, TruncatedVarintThrows) {
  const std::uint8_t lone_continuation[] = {0x80};
  WireReader r(lone_continuation, 1);
  EXPECT_THROW(r.varint(), CodecError);
}

TEST(Wire, OverlongVarintThrows) {
  // 11 continuation bytes: more than a u64 can need.
  std::vector<std::uint8_t> bytes(11, 0x80);
  bytes.push_back(0x01);
  WireReader r(bytes.data(), bytes.size());
  EXPECT_THROW(r.varint(), CodecError);
}

// ------------------------------------------------- random body generation

Message random_body(const std::string& type, Rng& rng) {
  const auto rid = [&] { return static_cast<Id>(rng.uniform(0, 1 << 20)); };
  const auto rval = [&] { return static_cast<Value>(rng.uniform(-100000, 100000)); };
  const auto rround = [&] { return static_cast<Round>(rng.uniform(0, 5000)); };
  const auto rinst = [&] { return static_cast<std::int64_t>(rng.uniform(-5, 5)); };
  const auto rmaybe = [&]() -> MaybeValue {
    if (rng.chance(0.3)) return std::nullopt;
    return rval();
  };
  const auto rlabels = [&] {
    std::set<Label> out;
    const std::size_t k = rng.index(4);
    for (std::size_t i = 0; i < k; ++i) {
      Multiset<Id> m;
      const std::size_t sz = 1 + rng.index(4);
      for (std::size_t j = 0; j < sz; ++j) m.insert(rid());
      out.insert(Label::of_multiset(m));
    }
    return out;
  };

  const auto rop = [&] {
    smr::SmrOp op;
    op.client = static_cast<std::uint64_t>(rng.uniform(0, 1 << 21));
    op.seq = rng.uniform(0, 10000);
    op.key = rng.uniform(0, 256);
    op.val = rng.uniform(-100000, 100000);
    const std::size_t pad = rng.index(6);
    for (std::size_t i = 0; i < pad; ++i) {
      op.pad.push_back(static_cast<std::uint8_t>(rng.index(256)));
    }
    return op;
  };
  const auto rbatch = [&] {
    smr::SmrBatch b;
    b.id = rng.uniform(0, 1 << 20);
    const std::size_t k = rng.index(4);
    for (std::size_t i = 0; i < k; ++i) b.ops.push_back(rop());
    return b;
  };
  const auto rcommits = [&] {
    std::vector<smr::SmrCommitRec> out;
    const std::size_t k = rng.index(4);
    for (std::size_t i = 0; i < k; ++i) {
      out.push_back(smr::SmrCommitRec{rng.uniform(0, 5000), rng.uniform(0, 1 << 20)});
    }
    return out;
  };

  if (type == AliveRanker::kMsgType) return make_message(type, AliveMsg{rid()});
  if (type == APSyncProcess::kMsgType) return make_message(type, ApAliveMsg{});
  if (type == HOmegaHeartbeat::kMsgType) {
    return make_message(type, HeartbeatMsg{rid(), rng.uniform(0, 1 << 30)});
  }
  if (type == HSigmaSyncProcess::kMsgType) return make_message(type, IdentMsg{rid()});
  if (type == OHPPolling::kPollType) return make_message(type, PollingMsg{rround(), rid()});
  if (type == OHPPolling::kReplyType) {
    return make_message(type, PollReplyMsg{rround(), rround(), rid(), rid()});
  }
  if (type == kCoordType) return make_message(type, CoordMsg{rid(), rround(), rval(), rinst()});
  if (type == kPh0Type) return make_message(type, Ph0Msg{rround(), rval(), rinst()});
  if (type == kPh1Type) return make_message(type, Ph1Msg{rround(), rval(), rinst()});
  if (type == kPh2Type) return make_message(type, Ph2Msg{rround(), rmaybe(), rinst()});
  if (type == kDecideType) return make_message(type, DecideMsg{rval(), rinst()});
  if (type == kPh1QType) {
    return make_message(type,
                        Ph1QMsg{rid(), rround(), rng.uniform(0, 50), rlabels(), rval(), rinst()});
  }
  if (type == kPh2QType) {
    return make_message(type,
                        Ph2QMsg{rid(), rround(), rng.uniform(0, 50), rlabels(), rmaybe(), rinst()});
  }
  if (type == smr::kSmrAppendType) {
    return make_message(type,
                        smr::SmrAppendMsg{rng.uniform(0, 500), rng.uniform(0, 5000), rbatch(),
                                          rcommits()});
  }
  if (type == smr::kSmrAckType) {
    smr::SmrAckMsg m;
    m.epoch = rng.uniform(0, 500);
    m.replica = static_cast<std::uint64_t>(rng.uniform(0, 64));
    m.logged_through = rng.uniform(0, 5000);
    m.applied_through = rng.uniform(0, 5000);
    m.commit_frontier = rng.uniform(0, 5000);
    m.commits = rcommits();
    const std::size_t k = rng.index(4);
    for (std::size_t i = 0; i < k; ++i) m.pending.push_back(rop());
    return make_message(type, m);
  }
  if (type == smr::kSmrNewEpochType) {
    return make_message(type,
                        smr::SmrNewEpochMsg{rng.uniform(0, 500), rng.uniform(0, 5000),
                                            static_cast<std::uint64_t>(rng.uniform(0, 64))});
  }
  if (type == smr::kSmrPromiseType) {
    smr::SmrPromiseMsg m;
    m.epoch = rng.uniform(0, 500);
    m.replica = static_cast<std::uint64_t>(rng.uniform(0, 64));
    m.frontier = rng.uniform(0, 5000);
    const std::size_t k = rng.index(3);
    for (std::size_t i = 0; i < k; ++i) {
      m.entries.push_back(
          smr::SmrLogRec{rng.uniform(0, 5000), rng.uniform(0, 500), rng.chance(0.5), rbatch()});
    }
    return make_message(type, m);
  }
  if (type == smr::kSmrProposeType) {
    return make_message(type,
                        smr::SmrProposeMsg{rng.uniform(0, 500), rng.uniform(0, 5000), rbatch()});
  }
  throw std::logic_error("no generator for registered type " + type);
}

bool bodies_equal(const std::string& type, const std::any& a, const std::any& b) {
  const auto eq = [&](auto tag) {
    using T = decltype(tag);
    return *std::any_cast<T>(&a) == *std::any_cast<T>(&b);
  };
  if (type == AliveRanker::kMsgType) return eq(AliveMsg{});
  if (type == APSyncProcess::kMsgType) return eq(ApAliveMsg{});
  if (type == HOmegaHeartbeat::kMsgType) return eq(HeartbeatMsg{});
  if (type == HSigmaSyncProcess::kMsgType) return eq(IdentMsg{});
  if (type == OHPPolling::kPollType) return eq(PollingMsg{});
  if (type == OHPPolling::kReplyType) return eq(PollReplyMsg{});
  if (type == kCoordType) return eq(CoordMsg{});
  if (type == kPh0Type) return eq(Ph0Msg{});
  if (type == kPh1Type) return eq(Ph1Msg{});
  if (type == kPh2Type) return eq(Ph2Msg{});
  if (type == kDecideType) return eq(DecideMsg{});
  if (type == kPh1QType) return eq(Ph1QMsg{});
  if (type == kPh2QType) return eq(Ph2QMsg{});
  if (type == smr::kSmrAppendType) return eq(smr::SmrAppendMsg{});
  if (type == smr::kSmrAckType) return eq(smr::SmrAckMsg{});
  if (type == smr::kSmrNewEpochType) return eq(smr::SmrNewEpochMsg{});
  if (type == smr::kSmrPromiseType) return eq(smr::SmrPromiseMsg{});
  if (type == smr::kSmrProposeType) return eq(smr::SmrProposeMsg{});
  throw std::logic_error("no comparator for registered type " + type);
}

// ------------------------------------------------------ frame round-trips

TEST(Codec, EveryRegisteredTypeHasGeneratorCoverage) {
  // If a new body codec is registered without extending the fuzzer, fail
  // loudly here rather than silently fuzzing a subset.
  for (const BodyCodec* c : builtin_codecs().all()) {
    Rng rng(1);
    EXPECT_NO_THROW({ (void)random_body(c->type, rng); }) << c->type;
  }
}

TEST(Codec, SeededFuzzRoundTripsEveryBodyType) {
  Rng rng(20260805);
  for (const BodyCodec* c : builtin_codecs().all()) {
    for (int iter = 0; iter < 200; ++iter) {
      const Message m = random_body(c->type, rng);
      const ProcIndex sender = static_cast<ProcIndex>(rng.index(64));
      const Id sender_id = static_cast<Id>(rng.uniform(0, 1 << 16));
      const auto frame = encode_frame(builtin_codecs(), m, sender, sender_id);
      ASSERT_EQ(frame.size(), encoded_frame_size(builtin_codecs(), m, sender, sender_id));
      const Message back = decode_frame(builtin_codecs(), frame.data(), frame.size());
      EXPECT_EQ(back.type, m.type);
      EXPECT_EQ(back.meta_sender, sender);
      EXPECT_TRUE(bodies_equal(c->type, m.body, back.body)) << c->type << " iter " << iter;
    }
  }
}

TEST(Codec, ControlFramesRoundTripAndNeverCollideWithBodies) {
  const auto hello = encode_control_frame(kTagHello, 3, 17);
  EXPECT_EQ(peek_tag(hello.data(), hello.size()), kTagHello);
  const Message m = decode_frame(builtin_codecs(), hello.data(), hello.size());
  EXPECT_EQ(m.meta_sender, 3u);
  for (const BodyCodec* c : builtin_codecs().all()) EXPECT_LT(c->tag, kCtrlTagFirst);
}

TEST(Codec, UnregisteredMessageTypeIsReportedNotEncoded) {
  const Message m = make_message("NOT_A_REAL_TYPE", AliveMsg{1});
  EXPECT_THROW(encode_frame(builtin_codecs(), m, 0, 1), CodecError);
  EXPECT_EQ(encoded_frame_size(builtin_codecs(), m, 0, 1), std::nullopt);
}

// --------------------------------------------------- malformed rejection

std::vector<std::uint8_t> sample_frame() {
  const Message m = make_message(OHPPolling::kPollType, PollingMsg{7, 42});
  return encode_frame(builtin_codecs(), m, 2, 42);
}

TEST(Codec, EveryTruncationOfAValidFrameIsRejected) {
  const auto frame = sample_frame();
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_THROW(decode_frame(builtin_codecs(), frame.data(), len), CodecError) << "len=" << len;
  }
}

TEST(Codec, EverySingleByteCorruptionIsRejectedOrEqual) {
  // Flipping any byte must either fail the checksum/structure or decode to
  // the same value (impossible here: FNV-1a covers every byte, so any flip
  // is caught). The point is NO undefined behaviour on arbitrary input.
  const auto frame = sample_frame();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    auto bad = frame;
    bad[i] ^= 0x5A;
    EXPECT_THROW(decode_frame(builtin_codecs(), bad.data(), bad.size()), CodecError)
        << "byte " << i;
  }
}

TEST(Codec, SeededRandomGarbageNeverCrashesTheDecoder) {
  Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> junk(rng.index(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    // Valid magic sometimes, to reach the deeper validation layers.
    if (junk.size() >= 4 && rng.chance(0.5)) {
      junk[0] = kWireMagic0;
      junk[1] = kWireMagic1;
      junk[2] = kWireVersion;
    }
    try {
      (void)decode_frame(builtin_codecs(), junk.data(), junk.size());
    } catch (const CodecError&) {
      // expected for essentially all inputs
    }
  }
}

TEST(Codec, WrongVersionAndTrailingBytesAreRejected) {
  auto frame = sample_frame();
  auto wrong_version = frame;
  wrong_version[2] = kWireVersion + 1;
  EXPECT_THROW(decode_frame(builtin_codecs(), wrong_version.data(), wrong_version.size()),
               CodecError);
  auto trailing = frame;
  trailing.push_back(0);
  EXPECT_THROW(decode_frame(builtin_codecs(), trailing.data(), trailing.size()), CodecError);
}

// ------------------------------------------- trace-context extension

TEST(Codec, TracedFrameRoundTripsCausalContextAndUntracedStaysBare) {
  Message m = make_message(OHPPolling::kPollType, PollingMsg{7, 42});
  // Node index folded into the high 16 bits; values chosen to need
  // multi-byte varints.
  m.meta_causal_id = (std::uint64_t{3} << 48) | 170739;
  m.meta_causal_parent = (std::uint64_t{1} << 48) | 5;
  m.meta_causal_clock = 99'999;
  const auto traced = encode_frame(builtin_codecs(), m, 2, 42);
  EXPECT_EQ(traced[2], kWireVersion | kWireTracedFlag);
  const Message back = decode_frame(builtin_codecs(), traced.data(), traced.size());
  EXPECT_EQ(back.meta_causal_id, m.meta_causal_id);
  EXPECT_EQ(back.meta_causal_parent, m.meta_causal_parent);
  EXPECT_EQ(back.meta_causal_clock, m.meta_causal_clock);
  EXPECT_EQ(back.meta_sender, 2u);
  EXPECT_TRUE(bodies_equal(OHPPolling::kPollType, m.body, back.body));

  // The same message without a lineage id encodes the bare v1 frame: no
  // flag, no extension bytes, zeroed meta on decode.
  const Message plain = make_message(OHPPolling::kPollType, PollingMsg{7, 42});
  const auto bare = encode_frame(builtin_codecs(), plain, 2, 42);
  EXPECT_EQ(bare[2], kWireVersion);
  EXPECT_LT(bare.size(), traced.size());
  const Message pback = decode_frame(builtin_codecs(), bare.data(), bare.size());
  EXPECT_EQ(pback.meta_causal_id, 0u);
  EXPECT_EQ(pback.meta_causal_clock, 0u);

  // Byte metering deliberately ignores the extension so counters stay
  // identical with tracing on or off.
  const auto metered = encoded_frame_size(builtin_codecs(), m, 2, 42);
  ASSERT_TRUE(metered.has_value());
  EXPECT_EQ(*metered, bare.size());
}

TEST(Codec, SeededFuzzRoundTripsTracedFramesOfEveryBodyType) {
  Rng rng(20260809);
  for (const BodyCodec* c : builtin_codecs().all()) {
    for (int iter = 0; iter < 50; ++iter) {
      Message m = random_body(c->type, rng);
      m.meta_causal_id = (static_cast<std::uint64_t>(rng.index(64)) << 48) |
                         (1 + static_cast<std::uint64_t>(rng.uniform(0, 1 << 20)));
      if (rng.chance(0.7)) {
        m.meta_causal_parent = (static_cast<std::uint64_t>(rng.index(64)) << 48) |
                               static_cast<std::uint64_t>(rng.uniform(0, 1 << 20));
      }
      m.meta_causal_clock = static_cast<std::uint64_t>(rng.uniform(0, 1 << 30));
      const auto frame = encode_frame(builtin_codecs(), m, 1, 9);
      const Message back = decode_frame(builtin_codecs(), frame.data(), frame.size());
      EXPECT_EQ(back.meta_causal_id, m.meta_causal_id) << c->type << " iter " << iter;
      EXPECT_EQ(back.meta_causal_parent, m.meta_causal_parent);
      EXPECT_EQ(back.meta_causal_clock, m.meta_causal_clock);
      EXPECT_TRUE(bodies_equal(c->type, m.body, back.body)) << c->type << " iter " << iter;
    }
  }
}

std::vector<std::uint8_t> sample_traced_frame() {
  Message m = make_message(OHPPolling::kPollType, PollingMsg{7, 42});
  m.meta_causal_id = (std::uint64_t{2} << 48) | 9;
  m.meta_causal_parent = (std::uint64_t{2} << 48) | 4;
  m.meta_causal_clock = 77;
  return encode_frame(builtin_codecs(), m, 2, 42);
}

TEST(Codec, EveryTruncationOfATracedFrameIsRejected) {
  const auto frame = sample_traced_frame();
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_THROW(decode_frame(builtin_codecs(), frame.data(), len), CodecError) << "len=" << len;
  }
}

TEST(Codec, EverySingleByteCorruptionOfATracedFrameIsRejected) {
  const auto frame = sample_traced_frame();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    auto bad = frame;
    bad[i] ^= 0x5A;
    EXPECT_THROW(decode_frame(builtin_codecs(), bad.data(), bad.size()), CodecError)
        << "byte " << i;
  }
}

// ------------------------------------------------------- batch envelope

TEST(Batch, RoundTripsMultipleFrames) {
  BatchWriter w;
  EXPECT_TRUE(w.empty());
  Rng rng(7);
  std::vector<std::vector<std::uint8_t>> frames;
  for (const BodyCodec* c : builtin_codecs().all()) {
    const Message m = random_body(c->type, rng);
    frames.push_back(encode_frame(builtin_codecs(), m, 0, 9));
    w.add(frames.back());
  }
  EXPECT_EQ(w.frames(), frames.size());
  const auto datagram = w.take();
  EXPECT_TRUE(w.empty());
  const auto views = split_batch(datagram.data(), datagram.size());
  ASSERT_EQ(views.size(), frames.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    ASSERT_EQ(views[i].len, frames[i].size());
    EXPECT_EQ(std::vector<std::uint8_t>(views[i].data, views[i].data + views[i].len), frames[i]);
    // Each frame still decodes independently out of the batch.
    EXPECT_NO_THROW((void)decode_frame(builtin_codecs(), views[i].data, views[i].len));
  }
}

TEST(Batch, MalformedEnvelopesAreRejected) {
  BatchWriter w;
  w.add(sample_frame());
  const auto datagram = w.take();
  // Truncations.
  for (std::size_t len = 0; len < datagram.size(); ++len) {
    EXPECT_THROW((void)split_batch(datagram.data(), len), CodecError) << "len=" << len;
  }
  // Trailing garbage.
  auto trailing = datagram;
  trailing.push_back(0x7F);
  EXPECT_THROW((void)split_batch(trailing.data(), trailing.size()), CodecError);
  // A data frame is not a batch.
  const auto frame = sample_frame();
  EXPECT_THROW((void)split_batch(frame.data(), frame.size()), CodecError);
}

}  // namespace
}  // namespace hds::net
