// Protocol-level unit tests of the failure-detector implementations: each
// line-level behaviour of Figs. 2, 4 and 6 (and the heartbeat extension)
// driven message by message through the scripted environment.
#include <gtest/gtest.h>

#include "fd/impl/alive_ranker.h"
#include "fd/impl/homega_heartbeat.h"
#include "fd/impl/ohp_polling.h"
#include "fd/reduce/hsigma_to_sigma.h"
#include "fd/reduce/sigma_to_hsigma.h"
#include "support/script_env.h"

namespace hds {
namespace {

using testing::ScriptEnv;
using testing::ScriptHSigma;

// ----------------------------------------------------------- Fig. 6 units

struct OhpFixture : ::testing::Test {
  OhpFixture() : env(3) {}
  void start(OHPPolling& fd) { fd.on_start(env); }
  void poll(OHPPolling& fd, Round r, Id id) {
    fd.on_message(env, make_message(OHPPolling::kPollType, PollingMsg{r, id}));
  }
  void reply(OHPPolling& fd, Round lo, Round hi, Id to, Id from) {
    fd.on_message(env, make_message(OHPPolling::kReplyType, PollReplyMsg{lo, hi, to, from}));
  }
  void tick(OHPPolling& fd) { fd.on_timer(env, env.timers.back().id); }
  ScriptEnv env;
};

TEST_F(OhpFixture, StartBroadcastsRoundOnePoll) {
  OHPPolling fd;
  start(fd);
  const auto* p = env.last_body<PollingMsg>(OHPPolling::kPollType);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->r, 1);
  EXPECT_EQ(p->id, 3u);
  EXPECT_EQ(env.timers.back().delay, 1);  // initial timeout
}

TEST_F(OhpFixture, RoundEndCollectsCoveringReplies) {
  OHPPolling fd;
  start(fd);
  reply(fd, 1, 1, 3, 7);   // covers round 1
  reply(fd, 1, 1, 3, 7);   // a homonym of 7: second instance
  reply(fd, 1, 1, 3, 9);
  reply(fd, 2, 5, 3, 11);  // future rounds only: must NOT count for round 1
  tick(fd);
  EXPECT_EQ(fd.h_trusted(), (Multiset<Id>{7, 7, 9}));
  EXPECT_EQ(fd.h_omega(), (HOmegaOut{7, 2}));  // Corollary 2
  EXPECT_EQ(fd.round(), 2);
}

TEST_F(OhpFixture, RangeRepliesKeepCountingAcrossRounds) {
  OHPPolling fd;
  start(fd);
  reply(fd, 1, 4, 3, 7);  // one reply covering rounds 1..4
  tick(fd);
  tick(fd);
  tick(fd);
  EXPECT_EQ(fd.round(), 4);                      // rounds 1-3 evaluated
  EXPECT_EQ(fd.h_trusted(), (Multiset<Id>{7}));
  tick(fd);                                       // evaluates round 4: last covered
  EXPECT_EQ(fd.h_trusted(), (Multiset<Id>{7}));
  tick(fd);                                       // round 5: range exhausted
  EXPECT_TRUE(fd.h_trusted().empty());
}

TEST_F(OhpFixture, RepliesAddressedToOtherIdentifiersIgnored) {
  OHPPolling fd;
  start(fd);
  reply(fd, 1, 9, /*to=*/8, /*from=*/7);
  tick(fd);
  EXPECT_TRUE(fd.h_trusted().empty());
}

TEST_F(OhpFixture, StaleReplyGrowsTimeout) {
  OHPPolling fd;
  start(fd);
  tick(fd);  // round 1 -> 2
  EXPECT_EQ(fd.timeout(), 1);
  reply(fd, 1, 1, 3, 7);  // lo=1 < current round 2: lines 33-34
  EXPECT_EQ(fd.timeout(), 2);
  reply(fd, 2, 2, 3, 7);  // current: no growth
  EXPECT_EQ(fd.timeout(), 2);
}

TEST_F(OhpFixture, AnswersPollsWithUnservedRangeOnly) {
  OHPPolling fd;
  start(fd);
  poll(fd, 3, 9);
  const auto* r1 = env.last_body<PollReplyMsg>(OHPPolling::kReplyType);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->lo, 1);
  EXPECT_EQ(r1->hi, 3);
  EXPECT_EQ(r1->to_id, 9u);
  EXPECT_EQ(r1->from_id, 3u);
  const auto before = env.count(OHPPolling::kReplyType);
  poll(fd, 2, 9);  // already served up to 3: no new reply
  EXPECT_EQ(env.count(OHPPolling::kReplyType), before);
  poll(fd, 5, 9);  // serves exactly 4..5
  const auto* r2 = env.last_body<PollReplyMsg>(OHPPolling::kReplyType);
  EXPECT_EQ(r2->lo, 4);
  EXPECT_EQ(r2->hi, 5);
}

// ----------------------------------------------------------- Fig. 2 units

TEST(SigmaToHSigmaBcastUnits, LabelsFollowLearnedMembership) {
  class FixedSigma final : public SigmaHandle {
   public:
    [[nodiscard]] Multiset<Id> trusted() const override { return {1, 2}; }
  };
  FixedSigma sigma;
  ScriptEnv env(2);
  SigmaToHSigmaBcast red(sigma);
  red.on_start(env);
  EXPECT_EQ(env.count(SigmaToHSigmaBcast::kMsgType), 1u);
  // Before hearing itself: no labels.
  EXPECT_TRUE(red.snapshot().labels.empty());
  red.on_message(env, make_message(SigmaToHSigmaBcast::kMsgType, SigIdentMsg{2}));
  EXPECT_EQ(red.snapshot().labels, (std::set<Label>{Label::of_set({2})}));
  red.on_message(env, make_message(SigmaToHSigmaBcast::kMsgType, SigIdentMsg{5}));
  EXPECT_EQ(red.snapshot().labels.size(), 2u);  // {2}, {2,5}
  // Quora accumulated from Σ: label = support set, multiset = the output.
  EXPECT_TRUE(red.snapshot().quora.contains(Label::of_set({1, 2})));
}

// ----------------------------------------------------------- Fig. 4 units

TEST(HSigmaToSigmaUnits, PicksCandidateWithBestWorstRank) {
  ScriptHSigma hsigma;
  const Label la = Label::of_text("a"), lb = Label::of_text("b");
  hsigma.snap.quora.emplace(la, Multiset<Id>{1, 2});
  hsigma.snap.quora.emplace(lb, Multiset<Id>{3});
  class FixedRanker final : public RankerHandle {
   public:
    [[nodiscard]] std::vector<Id> alive_list() const override { return {3, 1, 2}; }
  };
  FixedRanker ranker;
  ScriptEnv env(1);
  HSigmaToSigma red(hsigma, ranker);
  red.on_start(env);  // broadcasts LABELS, no candidates known yet
  EXPECT_TRUE(red.trusted().empty());
  // Learn carriers: ids 1,2 carry a; id 3 carries b.
  red.on_message(env, make_message(HSigmaToSigma::kMsgType, LabelsMsg{1, {la}}));
  red.on_message(env, make_message(HSigmaToSigma::kMsgType, LabelsMsg{2, {la}}));
  red.on_message(env, make_message(HSigmaToSigma::kMsgType, LabelsMsg{3, {lb}}));
  red.on_timer(env, env.timers.back().id);
  // Candidate {3} has worst rank 1; candidate {1,2} has worst rank 3.
  EXPECT_EQ(red.trusted(), (Multiset<Id>{3}));
}

TEST(HSigmaToSigmaUnits, UnexplainedQuorumIsNotACandidate) {
  ScriptHSigma hsigma;
  const Label la = Label::of_text("a");
  hsigma.snap.quora.emplace(la, Multiset<Id>{1, 2});
  class EmptyRanker final : public RankerHandle {
   public:
    [[nodiscard]] std::vector<Id> alive_list() const override { return {}; }
  };
  EmptyRanker ranker;
  ScriptEnv env(1);
  HSigmaToSigma red(hsigma, ranker);
  red.on_start(env);
  red.on_message(env, make_message(HSigmaToSigma::kMsgType, LabelsMsg{1, {la}}));
  // Only id 1 known to carry `a`: the pair (a, {1,2}) is not explained.
  red.on_timer(env, env.timers.back().id);
  EXPECT_TRUE(red.trusted().empty());
}

TEST(HSigmaToSigmaUnits, MultiplicityAboveOneNeverExplainedUnderUniqueIds) {
  ScriptHSigma hsigma;
  const Label la = Label::of_text("a");
  hsigma.snap.quora.emplace(la, Multiset<Id>{1, 1});  // homonymous quorum
  class EmptyRanker final : public RankerHandle {
   public:
    [[nodiscard]] std::vector<Id> alive_list() const override { return {1}; }
  };
  EmptyRanker ranker;
  ScriptEnv env(1);
  HSigmaToSigma red(hsigma, ranker);
  red.on_start(env);
  red.on_message(env, make_message(HSigmaToSigma::kMsgType, LabelsMsg{1, {la}}));
  red.on_timer(env, env.timers.back().id);
  EXPECT_TRUE(red.trusted().empty());  // Theorem 2 assumes unique identifiers
}

// ----------------------------------------------------- heartbeat HΩ units

TEST(HeartbeatUnits, CountsHomonymCopiesAtSettledSeq) {
  ScriptEnv env(5);
  HOmegaHeartbeat fd(4);
  fd.on_start(env);
  // Two homonyms named 2 at sequences 1..3; our own heartbeats too.
  for (std::int64_t s = 1; s <= 3; ++s) {
    fd.on_message(env, make_message(HOmegaHeartbeat::kMsgType, HeartbeatMsg{2, s}));
    fd.on_message(env, make_message(HOmegaHeartbeat::kMsgType, HeartbeatMsg{2, s}));
    fd.on_message(env, make_message(HOmegaHeartbeat::kMsgType, HeartbeatMsg{5, s}));
  }
  env.now = 12;
  fd.on_timer(env, env.timers.back().id);
  EXPECT_EQ(fd.h_omega(), (HOmegaOut{2, 2}));
}

TEST(HeartbeatUnits, LateHeartbeatGrowsLag) {
  ScriptEnv env(5);
  HOmegaHeartbeat fd(4);
  fd.on_start(env);
  for (std::int64_t s = 1; s <= 5; ++s) {
    fd.on_message(env, make_message(HOmegaHeartbeat::kMsgType, HeartbeatMsg{2, s}));
  }
  EXPECT_EQ(fd.lag(), 1);
  // Sequence 3 arrives again long after 5 was seen: beyond the settled point.
  fd.on_message(env, make_message(HOmegaHeartbeat::kMsgType, HeartbeatMsg{2, 3}));
  EXPECT_EQ(fd.lag(), 2);
}

TEST(HeartbeatUnits, StaleIdentifierLosesLeadership) {
  ScriptEnv env(5);
  HOmegaHeartbeat fd(4);
  fd.on_start(env);
  env.now = 4;
  fd.on_message(env, make_message(HOmegaHeartbeat::kMsgType, HeartbeatMsg{2, 1}));
  fd.on_message(env, make_message(HOmegaHeartbeat::kMsgType, HeartbeatMsg{9, 1}));
  fd.on_timer(env, env.timers.back().id);
  EXPECT_EQ(fd.h_omega().leader, 2u);
  // Id 2 goes silent; id 9 keeps beating.
  for (std::int64_t s = 2; s <= 8; ++s) {
    env.now = 4 * s;
    fd.on_message(env, make_message(HOmegaHeartbeat::kMsgType, HeartbeatMsg{9, s}));
    fd.on_timer(env, env.timers.back().id);
  }
  EXPECT_EQ(fd.h_omega().leader, 9u);
}

// --------------------------------------------------------- ranker trivia

TEST(RankOf, AbsentIdIsInfinity) {
  EXPECT_EQ(rank_of(5, {1, 2, 3}), std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(rank_of(2, {1, 2, 3}), 2u);
  EXPECT_EQ(rank_of(1, {}), std::numeric_limits<std::size_t>::max());
}

}  // namespace
}  // namespace hds
