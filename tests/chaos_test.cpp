// Chaos sweeps: randomized configurations — system size, homonymy degree,
// crash counts/times/partiality, detector stabilization, link parameters —
// each run fully property-checked. The deterministic seeds make any
// failure replayable verbatim.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "consensus/harness.h"

namespace hds {
namespace {

struct ChaosConfig {
  std::size_t n;
  std::size_t distinct;
  std::size_t crash_k;
  SimTime crash_at;
  SimTime stagger;
  bool partial;
  SimTime stabilize;
};

ChaosConfig draw(Rng& rng, std::size_t max_crash_num, std::size_t max_crash_den) {
  ChaosConfig c;
  c.n = static_cast<std::size_t>(rng.uniform(2, 9));
  c.distinct = static_cast<std::size_t>(rng.uniform(1, static_cast<Value>(c.n)));
  const std::size_t max_k = (c.n * max_crash_num) / max_crash_den;
  c.crash_k = max_k == 0 ? 0 : static_cast<std::size_t>(rng.uniform(0, static_cast<Value>(max_k)));
  c.crash_at = rng.uniform(0, 120);
  c.stagger = rng.uniform(0, 20);
  c.partial = rng.chance(0.5);
  c.stabilize = rng.uniform(0, 150);
  return c;
}

TEST(Chaos, Fig8OracleRandomizedConfigurations) {
  Rng rng(20260706);
  for (int trial = 0; trial < 60; ++trial) {
    // Fig. 8 needs a strict minority of crashes.
    ChaosConfig c = draw(rng, 1, 2);
    if (2 * c.crash_k >= c.n) c.crash_k = (c.n - 1) / 2;
    Fig8OracleParams p;
    p.ids = ids_homonymous(c.n, c.distinct, 1000 + trial);
    p.t_known = std::max<std::size_t>(c.crash_k, (c.n - 1) / 2);
    if (2 * p.t_known >= c.n) p.t_known = (c.n - 1) / 2;
    if (c.crash_k > 0) p.crashes = crashes_last_k(c.n, c.crash_k, c.crash_at, c.stagger, c.partial);
    p.fd_stabilize = c.stabilize;
    p.seed = 5000 + static_cast<std::uint64_t>(trial);
    auto r = run_fig8_with_oracle(p);
    ASSERT_TRUE(r.all_correct_decided)
        << "trial " << trial << " n=" << c.n << " l=" << c.distinct << " k=" << c.crash_k;
    ASSERT_TRUE(r.check.ok) << "trial " << trial << ": " << r.check.detail;
  }
}

TEST(Chaos, Fig9OracleRandomizedConfigurations) {
  Rng rng(987654);
  for (int trial = 0; trial < 60; ++trial) {
    // Fig. 9 tolerates any number of crashes short of all.
    ChaosConfig c = draw(rng, 9, 10);
    if (c.crash_k >= c.n) c.crash_k = c.n - 1;
    Fig9OracleParams p;
    p.ids = ids_homonymous(c.n, c.distinct, 2000 + trial);
    if (c.crash_k > 0) p.crashes = crashes_last_k(c.n, c.crash_k, c.crash_at, c.stagger, c.partial);
    p.fd1_stabilize = c.stabilize;
    p.fd2_stabilize = c.stabilize + 40;
    p.seed = 7000 + static_cast<std::uint64_t>(trial);
    auto r = run_fig9_with_oracle(p);
    ASSERT_TRUE(r.all_correct_decided)
        << "trial " << trial << " n=" << c.n << " l=" << c.distinct << " k=" << c.crash_k;
    ASSERT_TRUE(r.check.ok) << "trial " << trial << ": " << r.check.detail;
  }
}

TEST(Chaos, Fig9FullStackRandomizedConfigurations) {
  Rng rng(13579);
  for (int trial = 0; trial < 25; ++trial) {
    ChaosConfig c = draw(rng, 3, 4);
    if (c.crash_k >= c.n) c.crash_k = c.n - 1;
    Fig9FullStackParams p;
    p.ids = ids_homonymous(c.n, c.distinct, 3000 + trial);
    if (c.crash_k > 0) p.crashes = crashes_last_k(c.n, c.crash_k, c.crash_at, c.stagger, c.partial);
    p.delta = rng.uniform(1, 4);
    p.seed = 9000 + static_cast<std::uint64_t>(trial);
    auto r = run_fig9_full_stack(p);
    ASSERT_TRUE(r.all_correct_decided)
        << "trial " << trial << " n=" << c.n << " l=" << c.distinct << " k=" << c.crash_k
        << " delta=" << p.delta;
    ASSERT_TRUE(r.check.ok) << "trial " << trial << ": " << r.check.detail;
  }
}

TEST(Chaos, SoakModeratelyLargeFullStack) {
  // One larger configuration end-to-end: 24 processes, 8 identifiers,
  // 11 crashes, full synchronous Fig. 6 + Fig. 7-adapter + Fig. 9 stack.
  Fig9FullStackParams p;
  p.ids = ids_homonymous(24, 8, 42);
  p.crashes = crashes_last_k(24, 11, 40, 6, /*partial=*/true);
  p.delta = 3;
  p.seed = 4242;
  auto r = run_fig9_full_stack(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

}  // namespace
}  // namespace hds
