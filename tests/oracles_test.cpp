// The oracles must themselves be members of the classes they claim: we
// sample their outputs over simulated time into trajectories and run the
// spec checkers on them — including during the adversarial pre-stability
// window, where the perpetual (safety) properties must already hold.
#include "fd/oracles.h"

#include <gtest/gtest.h>

#include <tuple>

#include "spec/fd_checkers.h"

namespace hds {
namespace {

struct Fixture {
  GroundTruth gt;
  SimTime now = 0;
  ClockFn clock() {
    return [this] { return now; };
  }
};

Fixture make_fixture(std::vector<Id> ids, std::vector<bool> correct) {
  Fixture f;
  f.gt.ids = std::move(ids);
  f.gt.correct = std::move(correct);
  return f;
}

constexpr SimTime kStab = 50;
constexpr SimTime kEnd = 120;
constexpr SimTime kWin = 30;

TEST(OracleHOmega, StableOutputIsMinCorrectIdWithMultiplicity) {
  auto f = make_fixture({3, 1, 1, 2}, {true, true, true, false});
  OracleHOmega o(f.gt, f.clock(), kStab);
  f.now = kStab;
  EXPECT_EQ(o.handle(0).h_omega(), (HOmegaOut{1, 2}));
  EXPECT_EQ(o.handle(3).h_omega(), (HOmegaOut{1, 2}));
}

TEST(OracleHOmega, SatisfiesElectionCheckerDespiteNoise) {
  auto f = make_fixture({3, 1, 1, 2}, {true, true, false, true});
  OracleHOmega o(f.gt, f.clock(), kStab);
  std::vector<Trajectory<HOmegaOut>> trajs(4);
  for (f.now = 0; f.now <= kEnd; ++f.now) {
    for (ProcIndex p = 0; p < 4; ++p) trajs[p].record(f.now, o.handle(p).h_omega());
  }
  std::vector<const Trajectory<HOmegaOut>*> ptrs;
  for (auto& t : trajs) ptrs.push_back(&t);
  auto res = check_homega(f.gt, ptrs, kEnd, kWin);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(OracleHOmega, NoisyPrefixReallyIsNoisy) {
  auto f = make_fixture({1, 2, 3, 4, 5, 6}, {true, true, true, true, true, true});
  OracleHOmega o(f.gt, f.clock(), 1000);
  std::set<Id> leaders_seen;
  for (f.now = 0; f.now < 100; ++f.now) leaders_seen.insert(o.handle(0).h_omega().leader);
  EXPECT_GT(leaders_seen.size(), 1u);
}

TEST(OracleHOmega, RejectsAllFaulty) {
  auto f = make_fixture({1, 2}, {false, false});
  EXPECT_THROW(OracleHOmega(f.gt, f.clock(), 0), std::invalid_argument);
}

TEST(OracleOHP, SatisfiesLivenessChecker) {
  auto f = make_fixture({2, 2, 5}, {true, false, true});
  OracleOHP o(f.gt, f.clock(), kStab);
  std::vector<Trajectory<Multiset<Id>>> trajs(3);
  for (f.now = 0; f.now <= kEnd; ++f.now) {
    for (ProcIndex p = 0; p < 3; ++p) trajs[p].record(f.now, o.handle(p).h_trusted());
  }
  std::vector<const Trajectory<Multiset<Id>>*> ptrs;
  for (auto& t : trajs) ptrs.push_back(&t);
  auto res = check_ohp(f.gt, ptrs, kEnd, kWin);
  EXPECT_TRUE(res.ok) << res.detail;
  EXPECT_EQ(trajs[0].final(), (Multiset<Id>{2, 5}));
}

TEST(OracleHSigma, SatisfiesAllFourProperties) {
  auto f = make_fixture({1, 1, 2, 3}, {true, false, true, true});
  OracleHSigma o(f.gt, f.clock(), kStab);
  std::vector<Trajectory<HSigmaSnapshot>> trajs(4);
  for (f.now = 0; f.now <= kEnd; ++f.now) {
    for (ProcIndex p = 0; p < 4; ++p) trajs[p].record(f.now, o.handle(p).snapshot());
  }
  std::vector<const Trajectory<HSigmaSnapshot>*> ptrs;
  for (auto& t : trajs) ptrs.push_back(&t);
  auto res = check_hsigma(f.gt, ptrs);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(OracleSigma, CoarseAndPivotModesPassTheChecker) {
  for (auto mode : {OracleSigma::Mode::kCoarse, OracleSigma::Mode::kPivot}) {
    auto f = make_fixture({1, 2, 3, 4, 5}, {true, true, true, false, false});
    OracleSigma o(f.gt, f.clock(), kStab, mode);
    std::vector<Trajectory<Multiset<Id>>> trajs(5);
    for (f.now = 0; f.now <= kEnd; ++f.now) {
      for (ProcIndex p = 0; p < 5; ++p) trajs[p].record(f.now, o.handle(p).trusted());
    }
    std::vector<const Trajectory<Multiset<Id>>*> ptrs;
    for (auto& t : trajs) ptrs.push_back(&t);
    auto res = check_sigma(f.gt, ptrs, kEnd, 1);
    EXPECT_TRUE(res.ok) << "mode=" << static_cast<int>(mode) << ": " << res.detail;
  }
}

TEST(OracleSigma, PivotOutputsVaryButAlwaysIntersect) {
  auto f = make_fixture({1, 2, 3, 4, 5, 6}, {true, true, true, true, true, true});
  OracleSigma o(f.gt, f.clock(), 0, OracleSigma::Mode::kPivot);
  std::set<Multiset<Id>> outputs;
  for (f.now = 0; f.now < 200; f.now += 5) {
    for (ProcIndex p = 0; p < 6; ++p) outputs.insert(o.handle(p).trusted());
  }
  EXPECT_GT(outputs.size(), 2u);
  for (const auto& a : outputs) {
    for (const auto& b : outputs) EXPECT_TRUE(a.intersects(b));
  }
}

TEST(OracleAP, UpperBoundAndConvergence) {
  auto f = make_fixture({0, 0, 0, 0}, {true, true, false, false});
  // Alive counter: 4 until time 20, 3 until 40, then 2.
  auto alive = [](SimTime t) -> std::size_t { return t < 20 ? 4 : (t < 40 ? 3 : 2); };
  OracleAP o(f.gt, f.clock(), kStab, alive);
  f.now = 10;
  EXPECT_EQ(o.handle(0).anap(), 4u);
  f.now = 30;
  EXPECT_EQ(o.handle(0).anap(), 3u);
  f.now = kStab;
  EXPECT_EQ(o.handle(0).anap(), 2u);
}

TEST(OracleASigma, PairsAreWellFormed) {
  auto f = make_fixture({0, 0, 0}, {true, true, false});
  OracleASigma o(f.gt, f.clock(), kStab);
  f.now = 0;
  auto pre = o.handle(0).a_sigma();
  ASSERT_EQ(pre.size(), 1u);
  EXPECT_EQ(pre[0].count, 3u);
  f.now = kStab;
  auto post = o.handle(0).a_sigma();
  ASSERT_EQ(post.size(), 2u);
  EXPECT_EQ(post[1].count, 2u);
  // Faulty process never gets the correct-quorum pair.
  EXPECT_EQ(o.handle(2).a_sigma().size(), 1u);
}

TEST(OracleAOmega, ExactlyOneStableLeader) {
  auto f = make_fixture({0, 0, 0, 0}, {false, true, true, true});
  OracleAOmega o(f.gt, f.clock(), kStab);
  f.now = kStab + 1;
  int leaders = 0;
  for (ProcIndex p = 0; p < 4; ++p) {
    if (o.handle(p).a_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_TRUE(o.handle(1).a_leader());  // the first correct process
}

}  // namespace
}  // namespace hds
