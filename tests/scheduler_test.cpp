// Unit tests for the discrete-event scheduler.
#include "sim/scheduler.h"

#include <gtest/gtest.h>

namespace hds {
namespace {

TEST(Scheduler, StartsAtZeroEmpty) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(10, [&] { order.push_back(1); });
  s.at(5, [&] { order.push_back(2); });
  s.at(7, [&] { order.push_back(3); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
  EXPECT_EQ(s.now(), 10);
}

TEST(Scheduler, EqualTimesRunInSchedulingOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int k = 0; k < 5; ++k) s.at(3, [&order, k] { order.push_back(k); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, AfterIsRelativeToNow) {
  Scheduler s;
  SimTime seen = -1;
  s.at(4, [&] { s.after(6, [&] { seen = s.now(); }); });
  s.run_all();
  EXPECT_EQ(seen, 10);
}

TEST(Scheduler, RejectsPastEvents) {
  Scheduler s;
  s.at(5, [] {});
  s.run_all();
  EXPECT_THROW(s.at(3, [] {}), std::invalid_argument);
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler s;
  int ran = 0;
  s.at(5, [&] { ++ran; });
  s.at(15, [&] { ++ran; });
  s.run_until(10);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), 10);
  s.run_until(20);
  EXPECT_EQ(ran, 2);
}

TEST(Scheduler, RunUntilIncludesBoundaryEvents) {
  Scheduler s;
  bool ran = false;
  s.at(10, [&] { ran = true; });
  s.run_until(10);
  EXPECT_TRUE(ran);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.after(1, chain);
  };
  s.at(0, chain);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 4);
}

TEST(Scheduler, MaxEventsCapStopsRunaway) {
  Scheduler s;
  std::function<void()> forever = [&] { s.after(1, forever); };
  s.at(0, forever);
  s.run_all(100);
  EXPECT_EQ(s.executed(), 100u);
  EXPECT_FALSE(s.empty());
}

TEST(Scheduler, PendingCountsQueuedEvents) {
  Scheduler s;
  s.at(1, [] {});
  s.at(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.step();
  EXPECT_EQ(s.pending(), 1u);
}

}  // namespace
}  // namespace hds
