// Tests for the footnote-5 alpha variant and the ablation switches — the
// executable form of "why is this piece of the algorithm there?".
#include <gtest/gtest.h>

#include <tuple>

#include "consensus/harness.h"

namespace hds {
namespace {

// ------------------------------------------------ footnote 5: alpha mode

TEST(AlphaVariant, DecidesWithoutKnowingN) {
  Fig8OracleParams p;
  p.ids = ids_homonymous(7, 3, 5);
  p.alpha = 4;  // alpha > n/2; at least alpha correct below
  p.crashes = crashes_last_k(7, 3, 25, 9);
  p.fd_stabilize = 60;
  auto r = run_fig8_with_oracle(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

struct AlphaSweep
    : ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(AlphaSweep, FootnoteFiveHolds) {
  auto [n, crash_k, seed] = GetParam();
  const std::size_t alpha = n / 2 + 1;
  if (n - crash_k < alpha) GTEST_SKIP();  // alpha correct processes required
  Fig8OracleParams p;
  p.ids = ids_homonymous(n, (n + 1) / 2, seed + 1);
  p.alpha = alpha;
  if (crash_k > 0) p.crashes = crashes_last_k(n, crash_k, 20, 7);
  p.fd_stabilize = 70;
  p.seed = seed;
  auto r = run_fig8_with_oracle(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlphaSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(4, 6, 9),
                                            ::testing::Values<std::size_t>(0, 1, 2),
                                            ::testing::Values<std::uint64_t>(1, 2)));

// ----------------------------------- ablation: Leaders' Coordination Phase

TEST(CoordinationAblation, SafetyStillHoldsWithoutThePhase) {
  // Dropping the phase can cost liveness, never safety: whatever decisions
  // occur must still satisfy validity and agreement.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Fig8OracleParams p;
    p.ids = ids_homonymous(6, 2, 3);  // heavy homonymy: many leaders
    p.t_known = 2;
    p.fd_stabilize = 50;
    p.skip_coordination_phase = true;
    p.seed = seed;
    p.max_time = 30'000;
    auto r = run_fig8_with_oracle(p);
    if (!r.all_correct_decided) continue;  // liveness loss is the expected risk
    EXPECT_TRUE(r.check.ok) << "seed " << seed << ": " << r.check.detail;
  }
}

TEST(CoordinationAblation, UniqueIdsNeverNeedThePhase) {
  // With unique identifiers there is one leader: removing the phase is
  // harmless (the paper's HΩ degenerates to Ω).
  Fig8OracleParams p;
  p.ids = ids_unique(5);
  p.t_known = 2;
  p.crashes = crashes_last_k(5, 2, 20);
  p.fd_stabilize = 50;
  p.skip_coordination_phase = true;
  auto r = run_fig8_with_oracle(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

// ------------------------------------- ablation: Fig. 6 timeout adaptation

TEST(TimeoutAblation, FrozenTimeoutFailsForLargeDelta) {
  Fig6Params p;
  p.ids = ids_unique(4);
  p.net = {.gst = 0, .delta = 12, .pre_gst_loss = 0.0, .pre_gst_max_delay = 1};
  p.fd_opts = {.initial_timeout = 2, .adaptive_timeout = false};
  p.run_for = 2500;
  p.stable_window = 250;
  auto r = run_fig6(p);
  EXPECT_FALSE(r.ohp_check.ok);  // lines 33-34 are what make Theorem 5 work
}

TEST(TimeoutAblation, FrozenButSufficientTimeoutStillConverges) {
  Fig6Params p;
  p.ids = ids_unique(4);
  p.net = {.gst = 0, .delta = 3, .pre_gst_loss = 0.0, .pre_gst_max_delay = 1};
  p.fd_opts = {.initial_timeout = 16, .adaptive_timeout = false};
  p.run_for = 2500;
  p.stable_window = 250;
  auto r = run_fig6(p);
  EXPECT_TRUE(r.ohp_check.ok) << r.ohp_check.detail;
}

// -------------------- reproduction finding: pre-GST loss vs composition

TEST(LossyComposition, PreGstLossCanStallFig8FullStack) {
  // Fig. 8 assumes reliable links (HAS) and never retransmits its phase
  // messages; its PH1/PH2 carry no sender identity, so a retransmission
  // layer could not deduplicate without changing the algorithm. Under the
  // lossy reading of HPS (pre-GST copies may be dropped) the composition
  // with Fig. 6 therefore loses liveness: with heavy early loss, this run
  // never decides. See EXPERIMENTS.md.
  Fig8FullStackParams p;
  p.ids = ids_homonymous(5, 2, 7);
  p.t_known = 2;
  p.net = {.gst = 2000, .delta = 3, .pre_gst_loss = 0.95, .pre_gst_max_delay = 20};
  p.seed = 4;
  p.max_time = 20'000;
  auto r = run_fig8_full_stack(p);
  EXPECT_FALSE(r.all_correct_decided);
  // The detector itself, by contrast, recovers from any pre-GST loss: that
  // is Theorem 5 and is covered by the Fig. 6 sweeps.
}

}  // namespace
}  // namespace hds
