// Tests for the related-work baselines: FloodMin (t+1 rounds, identifiers
// unused) and the AP-style early-stopping variant (t unknown, counting).
#include "consensus/flood_sync.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "consensus/harness.h"
#include "fd/ground_truth.h"
#include "spec/consensus_checkers.h"

namespace hds {
namespace {

template <typename P, typename Make>
struct SyncConsensusRun {
  std::unique_ptr<SyncSystem> sys;
  std::vector<P*> procs;
  std::vector<Value> proposals;

  std::vector<DecisionRecord> decisions() const {
    std::vector<DecisionRecord> out;
    for (auto* p : procs) out.push_back(p->decision());
    return out;
  }
};

template <typename P, typename Make>
SyncConsensusRun<P, Make> run_sync(std::size_t n, std::size_t crash_k, std::size_t crash_step,
                                   std::size_t stagger, bool partial, std::size_t steps,
                                   std::uint64_t seed, Make make) {
  SyncConfig cfg;
  cfg.ids = ids_anonymous(n);  // identifiers are irrelevant to both baselines
  if (crash_k > 0) cfg.crashes = sync_crashes_last_k(n, crash_k, crash_step, stagger, partial);
  cfg.seed = seed;
  SyncConsensusRun<P, Make> run;
  run.sys = std::make_unique<SyncSystem>(std::move(cfg));
  run.proposals = distinct_proposals(n);
  for (ProcIndex i = 0; i < n; ++i) {
    auto p = make(run.proposals[i]);
    run.procs.push_back(p.get());
    run.sys->set_process(i, std::move(p));
  }
  run.sys->run_steps(steps);
  return run;
}

auto make_floodmin(std::size_t t) {
  return [t](Value v) { return std::make_unique<FloodMinSync>(v, t); };
}

auto make_apstab() {
  return [](Value v) { return std::make_unique<ApStabilitySync>(v); };
}

TEST(FloodMin, DecidesMinimumAfterTPlusOneRounds) {
  auto run = run_sync<FloodMinSync>(5, 0, 0, 0, false, 6, 1, make_floodmin(2));
  auto dec = run.decisions();
  for (const auto& d : dec) {
    ASSERT_TRUE(d.decided);
    EXPECT_EQ(d.value, 100);  // the minimum proposal
    EXPECT_EQ(d.round, 3);    // t+1
  }
  auto res = check_consensus(GroundTruth::from(*run.sys), run.proposals, dec);
  EXPECT_TRUE(res.ok) << res.detail;
}

struct FloodMinSweep
    : ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, bool, std::uint64_t>> {};

TEST_P(FloodMinSweep, UniformConsensusUnderAnyCrashPattern) {
  auto [n, t, partial, seed] = GetParam();
  if (t >= n) GTEST_SKIP();
  // Adversarial pattern: one crash per step from step 0 (incl. partial
  // broadcast deliveries) — the hardest schedule for flooding.
  auto run = run_sync<FloodMinSync>(n, t, 0, 1, partial, t + 3, seed, make_floodmin(t));
  auto res = check_consensus(GroundTruth::from(*run.sys), run.proposals, run.decisions());
  EXPECT_TRUE(res.ok) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FloodMinSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(3, 5, 8),
                                            ::testing::Values<std::size_t>(0, 1, 3, 6),
                                            ::testing::Bool(),
                                            ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(ApStability, FailureFreeRunDecidesInThreeSteps) {
  // Step 0 and 1 give equal counts; decision at step 1, relay at step 2.
  auto run = run_sync<ApStabilitySync>(5, 0, 0, 0, false, 5, 1, make_apstab());
  for (auto* p : run.procs) {
    ASSERT_TRUE(p->decision().decided);
    EXPECT_EQ(p->decision().value, 100);
    EXPECT_EQ(p->steps_to_decide(), 2u);
  }
}

TEST(ApStability, ConsecutiveCrashesDelayTheStabilityWindow) {
  // With full delivery a dying sender still sends in its crash step, so the
  // count drops exactly once per crash: the adversary's best schedule is one
  // crash per step, keeping the count strictly decreasing for t steps.
  auto run = run_sync<ApStabilitySync>(8, 3, 0, 1, false, 16, 2, make_apstab());
  auto res =
      check_consensus(GroundTruth::from(*run.sys), run.proposals, run.decisions());
  EXPECT_TRUE(res.ok) << res.detail;
  std::size_t max_steps = 0;
  for (ProcIndex i = 0; i < 8; ++i) {
    if (run.sys->is_correct(i)) max_steps = std::max(max_steps, run.procs[i]->steps_to_decide());
  }
  // Counts 8,7,6,5 then stable: decision at step t+1, i.e. t+2 steps run —
  // one more than FloodMin's fixed t+1, the price of not knowing t.
  EXPECT_GE(max_steps, 5u);
}

struct ApStabilitySweep
    : ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t, std::uint64_t>> {
};

TEST_P(ApStabilitySweep, UniformUnderFullDeliveryCrashes) {
  auto [n, t, stagger, seed] = GetParam();
  if (t >= n) GTEST_SKIP();
  auto run = run_sync<ApStabilitySync>(n, t, 0, stagger, /*partial=*/false,
                                       2 * t + 8, seed, make_apstab());
  auto res = check_consensus(GroundTruth::from(*run.sys), run.proposals, run.decisions());
  EXPECT_TRUE(res.ok) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ApStabilitySweep,
                         ::testing::Combine(::testing::Values<std::size_t>(3, 6, 9),
                                            ::testing::Values<std::size_t>(0, 2, 5),
                                            ::testing::Values<std::size_t>(1, 2, 3),
                                            ::testing::Values<std::uint64_t>(1, 2)));

TEST(ApStability, PartialCrashesStillAgreeAmongCorrect) {
  // Under crash-during-broadcast the early decision is non-uniform: check
  // the relaxed property across many seeds (the strict one may fail — that
  // asymmetry is the documented caveat, and is itself asserted here).
  bool saw_uniform_violation = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto run = run_sync<ApStabilitySync>(6, 3, 0, 1, /*partial=*/true, 16, seed, make_apstab());
    const GroundTruth gt = GroundTruth::from(*run.sys);
    auto relaxed = check_consensus_correct_only(gt, run.proposals, run.decisions());
    EXPECT_TRUE(relaxed.ok) << "seed " << seed << ": " << relaxed.detail;
    if (!check_consensus(gt, run.proposals, run.decisions())) saw_uniform_violation = true;
  }
  // Not asserted: whether 20 seeds include a uniform-agreement violation is
  // schedule luck; record it for human eyes instead.
  if (saw_uniform_violation) {
    std::puts("[ note ] uniform agreement violated by a faulty early decider (expected)");
  }
}

}  // namespace
}  // namespace hds
