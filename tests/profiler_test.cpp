// In-process profiler: scoped-timer accounting keyed by the stack of open
// subsystems, thread-local buffers, collapsed-stack export, metrics emit.
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "obs/metrics.h"

namespace hds::obs {
namespace {

// The profiler is process-global; every test starts from a clean, disabled
// slate so ordering cannot leak state between cases.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().disable();
    Profiler::instance().reset();
  }
  void TearDown() override {
    Profiler::instance().disable();
    Profiler::instance().reset();
  }
};

void spin_ns(std::int64_t ns) {
  const auto until = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST_F(ProfilerTest, DisabledScopesRecordNothing) {
  {
    HDS_PROF_SCOPE(ProfSubsystem::kEventQueue);
    HDS_PROF_SCOPE(ProfSubsystem::kFdStep);
    spin_ns(1000);
  }
  EXPECT_TRUE(Profiler::instance().snapshot().empty());
}

TEST_F(ProfilerTest, RecordsNestedPathsWithSelfAndTotalTime) {
  Profiler::instance().enable();
  for (int i = 0; i < 3; ++i) {
    HDS_PROF_SCOPE(ProfSubsystem::kEventQueue);
    spin_ns(20000);
    {
      HDS_PROF_SCOPE(ProfSubsystem::kCodecEncode);
      spin_ns(20000);
    }
  }
  Profiler::instance().disable();
  const std::vector<ProfPath> paths = Profiler::instance().snapshot();
  ASSERT_EQ(paths.size(), 2u);
  const ProfPath* outer = nullptr;
  const ProfPath* inner = nullptr;
  for (const ProfPath& p : paths) {
    if (p.stack.size() == 1) outer = &p;
    if (p.stack.size() == 2) inner = &p;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->stack[0], ProfSubsystem::kEventQueue);
  EXPECT_EQ(inner->stack[0], ProfSubsystem::kEventQueue);
  EXPECT_EQ(inner->stack[1], ProfSubsystem::kCodecEncode);
  EXPECT_EQ(outer->calls, 3u);
  EXPECT_EQ(inner->calls, 3u);
  // Self time excludes the child; total includes it.
  EXPECT_GE(outer->total_ns, outer->self_ns + inner->total_ns);
  EXPECT_GT(inner->self_ns, 0u);
  EXPECT_GT(outer->self_ns, 0u);
}

TEST_F(ProfilerTest, CollapsedStacksFollowTheFlamegraphConvention) {
  Profiler::instance().enable();
  {
    HDS_PROF_SCOPE(ProfSubsystem::kUdpRecv);
    spin_ns(5000);
    {
      HDS_PROF_SCOPE(ProfSubsystem::kCodecDecode);
      spin_ns(5000);
    }
  }
  Profiler::instance().disable();
  const std::string text = Profiler::instance().collapsed_stacks("hds");
  // One "root;frames count" line per path, lexicographically sorted.
  std::istringstream in(text);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("hds;udp_recv ", 0), 0u);
  EXPECT_EQ(lines[1].rfind("hds;udp_recv;codec_decode ", 0), 0u);
  for (const std::string& line : lines) {
    const std::uint64_t count = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GT(count, 0u);
  }
}

TEST_F(ProfilerTest, ThreadBuffersRetireIntoTheSnapshot) {
  Profiler::instance().enable();
  std::thread worker([] {
    HDS_PROF_SCOPE(ProfSubsystem::kMonitor);
    spin_ns(5000);
  });
  worker.join();  // thread exit retires its buffer into the singleton
  {
    HDS_PROF_SCOPE(ProfSubsystem::kMonitor);
    spin_ns(5000);
  }
  Profiler::instance().disable();
  const std::vector<ProfPath> paths = Profiler::instance().snapshot();
  ASSERT_EQ(paths.size(), 1u);
  // Same path from two threads merges: retired + live.
  EXPECT_EQ(paths[0].calls, 2u);
}

TEST_F(ProfilerTest, EmitProjectsIntoLabeledCounters) {
  Profiler::instance().enable();
  {
    HDS_PROF_SCOPE(ProfSubsystem::kAdmin);
    spin_ns(5000);
  }
  Profiler::instance().disable();
  MetricsRegistry reg;
  Profiler::instance().emit(&reg);
  const MetricsSnapshot snap = reg.snapshot();
  const Labels admin_labels{{"subsys", "admin"}};
  bool saw_ns = false;
  bool saw_calls = false;
  for (const auto& c : snap.counters) {
    if (c.name == "prof_self_ns_total" && c.labels == admin_labels) {
      saw_ns = true;
      EXPECT_GT(c.value, 0u);
    }
    if (c.name == "prof_calls_total" && c.labels == admin_labels) {
      saw_calls = true;
      EXPECT_EQ(c.value, 1u);
    }
  }
  EXPECT_TRUE(saw_ns);
  EXPECT_TRUE(saw_calls);
  // Null registry is a documented no-op.
  Profiler::instance().emit(nullptr);
}

TEST_F(ProfilerTest, ResetDropsAccumulatedSamples) {
  Profiler::instance().enable();
  {
    HDS_PROF_SCOPE(ProfSubsystem::kFdStep);
    spin_ns(1000);
  }
  ASSERT_FALSE(Profiler::instance().snapshot().empty());
  Profiler::instance().reset();
  EXPECT_TRUE(Profiler::instance().snapshot().empty());
  EXPECT_EQ(Profiler::instance().collapsed_stacks(), "");
}

TEST_F(ProfilerTest, ScopeCapturesTheGateAtConstruction) {
  // A scope that begins disabled must stay inert even if the profiler is
  // enabled while it is open — otherwise begin/end would unbalance.
  {
    HDS_PROF_SCOPE(ProfSubsystem::kEventQueue);
    Profiler::instance().enable();
    {
      HDS_PROF_SCOPE(ProfSubsystem::kFdStep);
      spin_ns(1000);
    }
    Profiler::instance().disable();
  }
  const std::vector<ProfPath> paths = Profiler::instance().snapshot();
  ASSERT_EQ(paths.size(), 1u);
  // The inner scope recorded at depth 0: the outer scope never registered.
  EXPECT_EQ(paths[0].stack.size(), 1u);
  EXPECT_EQ(paths[0].stack[0], ProfSubsystem::kFdStep);
}

TEST_F(ProfilerTest, SubsystemNamesAreStable) {
  EXPECT_STREQ(prof_subsystem_name(ProfSubsystem::kEventQueue), "event_queue");
  EXPECT_STREQ(prof_subsystem_name(ProfSubsystem::kCodecEncode), "codec_encode");
  EXPECT_STREQ(prof_subsystem_name(ProfSubsystem::kTraceStamp), "trace_stamp");
  EXPECT_STREQ(prof_subsystem_name(ProfSubsystem::kAdmin), "admin");
}

}  // namespace
}  // namespace hds::obs
