// Unit tests for the deterministic random source.
#include "common/rng.h"

#include <gtest/gtest.h>

namespace hds {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int k = 0; k < 100; ++k) {
    if (a.uniform(0, 1'000'000) == b.uniform(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int k = 0; k < 1000; ++k) {
    auto v = r.uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng r(7);
  EXPECT_EQ(r.uniform(4, 4), 4);
}

TEST(Rng, UniformRejectsEmptyRange) {
  Rng r(7);
  EXPECT_THROW(r.uniform(5, 4), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng r(7);
  for (int k = 0; k < 50; ++k) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(7);
  int hits = 0;
  for (int k = 0; k < 10000; ++k) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 3000, 300);
}

TEST(Rng, IndexBoundsAndRejectsEmpty) {
  Rng r(7);
  for (int k = 0; k < 200; ++k) EXPECT_LT(r.index(7), 7u);
  EXPECT_THROW(r.index(0), std::invalid_argument);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(9), b(9);
  Rng fa = a.fork();
  Rng fb = b.fork();
  EXPECT_EQ(fa.uniform(0, 1 << 30), fb.uniform(0, 1 << 30));
}

}  // namespace
}  // namespace hds
