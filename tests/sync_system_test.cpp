// Tests of the lock-step synchronous engine (the HSS model).
#include "sim/sync_system.h"

#include <gtest/gtest.h>

#include <memory>

namespace hds {
namespace {

struct StepMsg {
  Id from;
  std::size_t step;
};

class Echo final : public SyncProcess {
 public:
  explicit Echo(Id id) : id_(id) {}
  std::vector<Message> step_send(std::size_t step) override {
    sends.push_back(step);
    return {make_message("STEP", StepMsg{id_, step})};
  }
  void step_recv(std::size_t step, const std::vector<Message>& delivered) override {
    std::vector<Id> froms;
    for (const Message& m : delivered) {
      if (const auto* b = m.as<StepMsg>()) {
        EXPECT_EQ(b->step, step);  // only this step's messages are delivered
        froms.push_back(b->from);
      }
    }
    recvs.push_back(froms);
  }
  Id id_;
  std::vector<std::size_t> sends;
  std::vector<std::vector<Id>> recvs;
};

SyncConfig base_config(std::size_t n) {
  SyncConfig cfg;
  for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
  cfg.seed = 5;
  return cfg;
}

TEST(SyncSystem, EveryStepDeliversAllAliveSenders) {
  SyncSystem sys(base_config(3));
  std::vector<Echo*> procs;
  for (ProcIndex i = 0; i < 3; ++i) {
    auto p = std::make_unique<Echo>(sys.id_of(i));
    procs.push_back(p.get());
    sys.set_process(i, std::move(p));
  }
  sys.run_steps(4);
  EXPECT_EQ(sys.steps_run(), 4u);
  for (auto* p : procs) {
    ASSERT_EQ(p->recvs.size(), 4u);
    for (const auto& froms : p->recvs) EXPECT_EQ(froms.size(), 3u);
  }
}

TEST(SyncSystem, CrashedProcessSendsInItsLastStepThenVanishes) {
  auto cfg = base_config(3);
  cfg.crashes = {std::nullopt, SyncCrashPlan{1, false}, std::nullopt};
  SyncSystem sys(std::move(cfg));
  std::vector<Echo*> procs;
  for (ProcIndex i = 0; i < 3; ++i) {
    auto p = std::make_unique<Echo>(sys.id_of(i));
    procs.push_back(p.get());
    sys.set_process(i, std::move(p));
  }
  sys.run_steps(3);
  // The crasher sent in steps 0 and 1 only, and never received in step 1+.
  EXPECT_EQ(procs[1]->sends, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(procs[1]->recvs.size(), 1u);
  // Survivors saw 3 senders in steps 0 and 1, then 2.
  EXPECT_EQ(procs[0]->recvs[0].size(), 3u);
  EXPECT_EQ(procs[0]->recvs[1].size(), 3u);
  EXPECT_EQ(procs[0]->recvs[2].size(), 2u);
}

TEST(SyncSystem, PartialBroadcastOnCrashDropsPerDestination) {
  int delivered = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    auto cfg = base_config(5);
    cfg.seed = 200 + trial;
    cfg.crashes.resize(5);
    cfg.crashes[0] = SyncCrashPlan{0, /*partial_broadcast=*/true};
    cfg.dying_copy_delivery_prob = 0.5;
    SyncSystem sys(std::move(cfg));
    std::vector<Echo*> procs;
    for (ProcIndex i = 0; i < 5; ++i) {
      auto p = std::make_unique<Echo>(sys.id_of(i));
      procs.push_back(p.get());
      sys.set_process(i, std::move(p));
    }
    sys.run_steps(1);
    for (ProcIndex i = 1; i < 5; ++i) {
      for (Id from : procs[i]->recvs[0]) {
        if (from == 1) ++delivered;  // the dying sender's id
      }
    }
  }
  const int max_possible = trials * 4;
  EXPECT_GT(delivered, max_possible / 5);
  EXPECT_LT(delivered, max_possible * 4 / 5);
}

TEST(SyncSystem, GroundTruth) {
  auto cfg = base_config(4);
  cfg.crashes = {std::nullopt, SyncCrashPlan{2, false}, std::nullopt, std::nullopt};
  SyncSystem sys(std::move(cfg));
  EXPECT_FALSE(sys.is_correct(1));
  EXPECT_TRUE(sys.alive_in_step(1, 2));   // sends in its crash step
  EXPECT_FALSE(sys.alive_in_step(1, 3));
  EXPECT_EQ(sys.correct_ids(), (Multiset<Id>{1, 3, 4}));
  EXPECT_EQ(sys.alive_count_in_step(0), 4u);
  EXPECT_EQ(sys.alive_count_in_step(3), 3u);
}

TEST(SyncSystem, CountsMessages) {
  SyncSystem sys(base_config(2));
  for (ProcIndex i = 0; i < 2; ++i) sys.set_process(i, std::make_unique<Echo>(sys.id_of(i)));
  sys.run_steps(5);
  EXPECT_EQ(sys.messages_sent(), 10u);
}

TEST(SyncSystem, ValidatesConfig) {
  SyncConfig empty;
  EXPECT_THROW(SyncSystem{std::move(empty)}, std::invalid_argument);
  auto cfg = base_config(2);
  cfg.crashes.resize(1);
  EXPECT_THROW(SyncSystem{std::move(cfg)}, std::invalid_argument);
}

}  // namespace
}  // namespace hds
