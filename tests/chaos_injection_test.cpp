// Fault injection on the simulator substrate: link clauses through the
// Network interposer seam, the split loss accounting, per-link pre-GST
// timing overrides, dynamic crash injection, and the event-triggered crash
// listeners.
#include "chaos/injector.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chaos/fault_plan.h"
#include "obs/metrics.h"
#include "sim/system.h"

namespace hds {
namespace {

using chaos::ClauseKind;
using chaos::FaultClause;
using chaos::FaultInjector;
using chaos::FaultPlan;

struct PingMsg {};

// Broadcasts PING at `send_times` and records each arrival instant.
class Pinger final : public Process {
 public:
  void on_start(Env& env) override {
    for (SimTime t : send_times) {
      if (t == 0) {
        env.broadcast(make_message("PING", PingMsg{}));
      } else {
        env.set_timer(t);
      }
    }
  }
  void on_timer(Env& env, TimerId) override { env.broadcast(make_message("PING", PingMsg{})); }
  void on_message(Env& env, const Message& m) override {
    if (m.type == "PING") arrivals.push_back(env.local_now());
  }

  std::vector<SimTime> send_times;
  std::vector<SimTime> arrivals;
};

struct Fixture {
  explicit Fixture(SystemConfig cfg) : sys(std::move(cfg)) {}
  System sys;
  std::vector<Pinger*> probes;
};

std::unique_ptr<Fixture> make_fixture(FaultInjector* inj, std::size_t n,
                                      std::unique_ptr<TimingModel> timing,
                                      std::vector<std::optional<CrashPlan>> crashes = {},
                                      obs::MetricsRegistry* metrics = nullptr,
                                      double dying_prob = 0.5) {
  SystemConfig cfg;
  for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(static_cast<Id>(i + 1));
  cfg.timing = std::move(timing);
  cfg.crashes = std::move(crashes);
  cfg.seed = 11;
  cfg.metrics = metrics;
  cfg.dying_copy_delivery_prob = dying_prob;
  auto fx = std::make_unique<Fixture>(std::move(cfg));
  for (ProcIndex i = 0; i < n; ++i) {
    auto p = std::make_unique<Pinger>();
    fx->probes.push_back(p.get());
    fx->sys.set_process(i, std::move(p));
  }
  if (inj != nullptr) inj->arm(fx->sys);
  return fx;
}

TEST(ChaosInjection, PartitionDropsMatchingCopiesUntilHeal) {
  FaultPlan plan;
  FaultClause part;
  part.kind = ClauseKind::kPartition;
  part.links.src = {0};
  part.links.dst = {1};
  part.until = 50;
  plan.clauses = {part};
  FaultInjector inj(plan, {1, 2}, 7);

  auto fx = make_fixture(&inj, 2, std::make_unique<AsyncTiming>(1, 1));
  fx->probes[0]->send_times = {0, 100};  // one inside the window, one after heal
  fx->sys.start();
  fx->sys.run_until(200);

  // The t=0 copy on 0 -> 1 was dropped; the t=100 one got through. Self
  // delivery (0 -> 0) never matched the selector.
  EXPECT_EQ(fx->probes[1]->arrivals.size(), 1u);
  EXPECT_EQ(fx->probes[0]->arrivals.size(), 2u);
  EXPECT_EQ(fx->sys.net_stats().copies_lost_link, 1u);
  EXPECT_EQ(fx->sys.net_stats().copies_lost_dying_sender, 0u);
  EXPECT_EQ(inj.stats().copies_dropped, 1u);
}

TEST(ChaosInjection, DelayClauseInflatesDeliveryAsymmetrically) {
  FaultPlan plan;
  FaultClause slow;
  slow.kind = ClauseKind::kDelay;
  slow.links.src = {0};
  slow.links.dst = {1};
  slow.delay = 10;
  plan.clauses = {slow};
  FaultInjector inj(plan, {1, 2}, 7);

  auto fx = make_fixture(&inj, 2, std::make_unique<AsyncTiming>(1, 1));
  fx->probes[0]->send_times = {0};
  fx->probes[1]->send_times = {0};
  fx->sys.start();
  fx->sys.run_until(100);

  // 0 -> 1 takes base 1 + injected 10; the reverse link keeps base latency.
  ASSERT_EQ(fx->probes[1]->arrivals.size(), 2u);  // own copy + slowed copy
  EXPECT_EQ(fx->probes[1]->arrivals.back(), 11);
  ASSERT_EQ(fx->probes[0]->arrivals.size(), 2u);
  EXPECT_EQ(fx->probes[0]->arrivals.back(), 1);
  EXPECT_EQ(inj.stats().copies_delayed, 1u);
}

TEST(ChaosInjection, DuplicateClauseInjectsTrailingCopies) {
  obs::MetricsRegistry reg;
  FaultPlan plan;
  FaultClause dup;
  dup.kind = ClauseKind::kDuplicate;
  dup.prob = 1.0;
  dup.count = 2;
  dup.delay = 3;  // trailing spread
  plan.clauses = {dup};
  FaultInjector inj(plan, {1, 2}, 7);

  auto fx = make_fixture(&inj, 2, std::make_unique<AsyncTiming>(1, 1), {}, &reg);
  fx->probes[0]->send_times = {0};
  fx->sys.start();
  fx->sys.run_until(100);

  // One broadcast, two links, each copy followed by 2 duplicates.
  EXPECT_EQ(fx->probes[0]->arrivals.size(), 3u);
  EXPECT_EQ(fx->probes[1]->arrivals.size(), 3u);
  const NetworkStats& st = fx->sys.net_stats();
  EXPECT_EQ(st.copies_sent, 2u);
  EXPECT_EQ(st.copies_duplicated, 4u);
  EXPECT_EQ(st.copies_delivered, 6u);
  EXPECT_EQ(reg.counter_total("net_copies_duplicated_total"), 4u);
}

TEST(ChaosInjection, DyingSenderLossIsAccountedSeparatelyFromLinkLoss) {
  obs::MetricsRegistry reg;
  // Process 0 crashes at t=0 while broadcasting; with delivery probability 0
  // every copy of that dying broadcast is lost on the sender side.
  std::vector<std::optional<CrashPlan>> crashes = {CrashPlan{0, /*partial_broadcast=*/true},
                                                   std::nullopt, std::nullopt};
  auto fx = make_fixture(nullptr, 3, std::make_unique<AsyncTiming>(1, 1), std::move(crashes),
                         &reg, /*dying_prob=*/0.0);
  fx->probes[0]->send_times = {0};
  fx->probes[1]->send_times = {0};
  fx->sys.start();
  fx->sys.run_until(100);

  const NetworkStats& st = fx->sys.net_stats();
  EXPECT_EQ(st.copies_lost_dying_sender, 3u);
  EXPECT_EQ(st.copies_lost_link, 0u);
  EXPECT_EQ(st.copies_lost(), 3u);
  EXPECT_EQ(reg.counter_total("net_copies_lost_dying_total"), 3u);
  EXPECT_EQ(reg.counter_total("net_copies_lost_link_total"), 0u);
  // Process 1's healthy broadcast still reached the two alive processes.
  EXPECT_EQ(fx->probes[1]->arrivals.size(), 1u);
  EXPECT_EQ(fx->probes[2]->arrivals.size(), 1u);
}

TEST(ChaosInjection, PerLinkPreGstLossOverride) {
  PartialSyncTiming::Params net;
  net.gst = 100;
  net.delta = 1;
  net.pre_gst_loss = 0.0;  // uniform default: lossless
  net.pre_gst_max_delay = 2;
  net.pre_gst_links[{0, 1}] = {.pre_gst_loss = 1.0, .pre_gst_max_delay = 0};

  auto fx = make_fixture(nullptr, 2, std::make_unique<PartialSyncTiming>(net));
  fx->probes[0]->send_times = {0, 150};  // pre-GST and post-GST broadcasts
  fx->sys.start();
  fx->sys.run_until(300);

  // Pre-GST the overridden link drops everything; after GST it recovers.
  EXPECT_EQ(fx->probes[1]->arrivals.size(), 1u);
  EXPECT_GE(fx->probes[1]->arrivals.front(), 150);
  // The self link 0 -> 0 kept the lossless default.
  EXPECT_EQ(fx->probes[0]->arrivals.size(), 2u);
  EXPECT_EQ(fx->sys.net_stats().copies_lost_link, 1u);
}

TEST(ChaosInjection, PerLinkPreGstDelayOverride) {
  PartialSyncTiming::Params net;
  net.gst = 100;
  net.delta = 1;
  net.pre_gst_max_delay = 2;
  net.pre_gst_links[{0, 1}] = {.pre_gst_loss = 0.0, .pre_gst_max_delay = 40};

  auto fx = make_fixture(nullptr, 2, std::make_unique<PartialSyncTiming>(net));
  fx->probes[0]->send_times = {0};
  fx->sys.start();
  fx->sys.run_until(300);

  ASSERT_EQ(fx->probes[1]->arrivals.size(), 1u);
  EXPECT_GE(fx->probes[1]->arrivals.front(), 1);
  EXPECT_LE(fx->probes[1]->arrivals.front(), 40);
  // The un-overridden self copy respected the uniform 2-tick bound.
  ASSERT_EQ(fx->probes[0]->arrivals.size(), 1u);
  EXPECT_LE(fx->probes[0]->arrivals.front(), 2);
}

TEST(ChaosInjection, PerLinkOverridesAreValidated) {
  PartialSyncTiming::Params bad;
  bad.gst = 10;
  bad.delta = 1;
  bad.pre_gst_links[{0, 1}] = {.pre_gst_loss = 1.5, .pre_gst_max_delay = 0};
  EXPECT_THROW(PartialSyncTiming{bad}, std::invalid_argument);

  PartialSyncTiming::Params neg;
  neg.gst = 10;
  neg.delta = 1;
  neg.pre_gst_links[{0, 1}] = {.pre_gst_loss = 0.1, .pre_gst_max_delay = -4};
  EXPECT_THROW(PartialSyncTiming{neg}, std::invalid_argument);
}

TEST(ChaosInjection, InjectCrashSilencesTheProcess) {
  auto fx = make_fixture(nullptr, 2, std::make_unique<AsyncTiming>(1, 1));
  fx->probes[0]->send_times = {0, 50};
  fx->sys.start();
  fx->sys.run_until(10);
  EXPECT_TRUE(fx->sys.is_correct(1));
  fx->sys.inject_crash(1, "test");
  EXPECT_FALSE(fx->sys.is_correct(1));
  fx->sys.run_until(200);
  // Process 1 saw the t=0 ping but not the t=50 one.
  EXPECT_EQ(fx->probes[1]->arrivals.size(), 1u);
  // Idempotent on an already-crashed process.
  fx->sys.inject_crash(1, "again");
  EXPECT_FALSE(fx->sys.is_correct(1));
}

// Inner listener recording what the chain forwarded to it.
class RecordingListener final : public FdOutputListener {
 public:
  void on_homega_change(SimTime, const HOmegaOut& out) override { seen.push_back(out); }
  std::vector<HOmegaOut> seen;
};

TEST(ChaosInjection, LeaderChangeTriggerCrashesCarrierAndForwardsToInner) {
  FaultPlan plan;
  FaultClause trig;
  trig.kind = ClauseKind::kCrashOnLeaderChange;
  trig.count = 2;
  plan.clauses = {trig};
  FaultInjector inj(plan, {1, 1, 2}, 7);

  auto fx = make_fixture(&inj, 3, std::make_unique<AsyncTiming>(1, 1));
  RecordingListener inner;
  FdOutputListener* l = inj.trigger_listener(0, &inner);
  ASSERT_NE(l, nullptr);
  ASSERT_NE(l, static_cast<FdOutputListener*>(&inner));  // a chain was built
  fx->sys.start();
  fx->sys.run_until(5);

  // A new leader with id 2 is elected: its lowest alive carrier (index 2)
  // is crashed, and the inner listener still observed the event.
  l->on_homega_change(5, HOmegaOut{2, 1});
  EXPECT_FALSE(fx->sys.is_correct(2));
  EXPECT_EQ(inj.stats().crashes_injected, 1u);
  ASSERT_EQ(inner.seen.size(), 1u);
  EXPECT_EQ(inner.seen[0].leader, 2);

  // The same leader re-announced does not consume more budget.
  l->on_homega_change(6, HOmegaOut{2, 1});
  EXPECT_EQ(inj.stats().crashes_injected, 1u);

  // A different leader does; id 1's lowest alive carrier is index 0.
  l->on_homega_change(7, HOmegaOut{1, 2});
  EXPECT_EQ(inj.stats().crashes_injected, 2u);
  EXPECT_FALSE(fx->sys.is_correct(0));

  // Budget exhausted: further changes crash nobody.
  l->on_homega_change(8, HOmegaOut{3, 1});
  EXPECT_EQ(inj.stats().crashes_injected, 2u);
}

TEST(ChaosInjection, NoTriggersReturnsInnerListenerUnchanged) {
  FaultPlan plan;  // empty
  FaultInjector inj(plan, {1, 2}, 7);
  RecordingListener inner;
  EXPECT_EQ(inj.trigger_listener(0, &inner), static_cast<FdOutputListener*>(&inner));
  EXPECT_EQ(inj.trigger_listener(1, nullptr), nullptr);
}

TEST(ChaosInjection, EmptyPlanLeavesCopiesUntouched) {
  FaultPlan plan;
  FaultInjector inj(plan, {1, 2}, 7);
  const CopyVerdict v = inj.on_copy(10, 0, 1, "PING");
  EXPECT_FALSE(v.drop);
  EXPECT_EQ(v.extra_delay, 0);
  EXPECT_EQ(v.duplicates, 0u);
  EXPECT_EQ(inj.stats().copies_dropped, 0u);
}

}  // namespace
}  // namespace hds
