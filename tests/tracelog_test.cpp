// Tests of the structured event log: recorded kinds, ordering, filters,
// capacity behaviour, and zero overhead when disabled.
#include "sim/tracelog.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/system.h"

namespace hds {
namespace {

struct EchoMsg {};

class Chatter final : public Process {
 public:
  void on_start(Env& env) override {
    env.broadcast(make_message("CHAT", EchoMsg{}));
    env.set_timer(5);
  }
  void on_timer(Env&, TimerId) override { ++timer_fires; }
  int timer_fires = 0;
};

std::unique_ptr<System> make_system(std::size_t trace_capacity) {
  SystemConfig cfg;
  cfg.ids = {1, 2, 3};
  cfg.timing = std::make_unique<AsyncTiming>(1, 2);
  cfg.crashes = {std::nullopt, CrashPlan{3}, std::nullopt};
  cfg.seed = 4;
  cfg.trace_capacity = trace_capacity;
  auto sys = std::make_unique<System>(std::move(cfg));
  for (ProcIndex i = 0; i < 3; ++i) sys->set_process(i, std::make_unique<Chatter>());
  return sys;
}

TEST(TraceLog, DisabledByDefaultRecordsNothing) {
  auto sys_ptr = make_system(0);
  System& sys = *sys_ptr;
  sys.start();
  sys.run_until(20);
  EXPECT_FALSE(sys.trace().enabled());
  EXPECT_TRUE(sys.trace().events().empty());
}

TEST(TraceLog, RecordsStartsBroadcastsDeliveriesTimersCrashes) {
  auto sys_ptr = make_system(10'000);
  System& sys = *sys_ptr;
  sys.start();
  sys.run_until(20);
  const TraceLog& log = sys.trace();
  ASSERT_TRUE(log.enabled());
  std::map<TraceEvent::Kind, std::size_t> kinds;
  for (const auto& e : log.events()) ++kinds[e.kind];
  EXPECT_EQ(kinds[TraceEvent::Kind::kStart], 3u);
  EXPECT_EQ(kinds[TraceEvent::Kind::kBroadcast], 3u);  // one CHAT each
  EXPECT_EQ(kinds[TraceEvent::Kind::kCrash], 1u);
  EXPECT_GE(kinds[TraceEvent::Kind::kTimer], 2u);  // the crashed one may miss
  // 9 copies: some to the process crashed at t=3 may arrive late.
  EXPECT_EQ(kinds[TraceEvent::Kind::kDeliver] + kinds[TraceEvent::Kind::kToDead], 9u);
}

TEST(TraceLog, EventsAreTimeOrdered) {
  auto sys_ptr = make_system(10'000);
  System& sys = *sys_ptr;
  sys.start();
  sys.run_until(20);
  const auto& evs = sys.trace().events();
  for (std::size_t k = 1; k < evs.size(); ++k) EXPECT_LE(evs[k - 1].at, evs[k].at);
}

TEST(TraceLog, Filters) {
  auto sys_ptr = make_system(10'000);
  System& sys = *sys_ptr;
  sys.start();
  sys.run_until(20);
  const TraceLog& log = sys.trace();
  for (const auto& e : log.by_proc(0)) EXPECT_EQ(e.proc, 0u);
  for (const auto& e : log.by_type("CHAT")) EXPECT_EQ(e.msg_type, "CHAT");
  auto counts = log.counts_by_type(TraceEvent::Kind::kBroadcast);
  EXPECT_EQ(counts["CHAT"], 3u);
}

TEST(TraceLog, CapacityTruncates) {
  auto sys_ptr = make_system(4);
  System& sys = *sys_ptr;
  sys.start();
  sys.run_until(20);
  EXPECT_EQ(sys.trace().events().size(), 4u);
  EXPECT_TRUE(sys.trace().truncated());
}

TEST(TraceLog, RingKeepsLatestAndCountsDropped) {
  // Run the same workload with an unbounded log and a tiny ring; the ring
  // must hold exactly the LAST `capacity` events of the full sequence, and
  // dropped() must account for every evicted event.
  auto full_ptr = make_system(10'000);
  full_ptr->start();
  full_ptr->run_until(20);
  const auto all = full_ptr->trace().events();
  ASSERT_GT(all.size(), 4u);

  auto ring_ptr = make_system(4);
  ring_ptr->start();
  ring_ptr->run_until(20);
  const TraceLog& ring = ring_ptr->trace();
  EXPECT_EQ(ring.dropped(), all.size() - 4u);
  EXPECT_EQ(ring.recorded(), all.size());
  const auto kept = ring.events();
  ASSERT_EQ(kept.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    const auto& want = all[all.size() - 4 + k];
    EXPECT_EQ(kept[k].at, want.at);
    EXPECT_EQ(kept[k].kind, want.kind);
    EXPECT_EQ(kept[k].proc, want.proc);
  }
}

TEST(TraceLog, UntruncatedRingDropsNothing) {
  auto sys_ptr = make_system(10'000);
  sys_ptr->start();
  sys_ptr->run_until(20);
  EXPECT_EQ(sys_ptr->trace().dropped(), 0u);
  EXPECT_FALSE(sys_ptr->trace().truncated());
  EXPECT_EQ(sys_ptr->trace().recorded(), sys_ptr->trace().events().size());
}

TEST(TraceLog, DumpMentionsDroppedEvents) {
  auto sys_ptr = make_system(4);
  sys_ptr->start();
  sys_ptr->run_until(20);
  const std::string dump = sys_ptr->trace().dump(10);
  EXPECT_NE(dump.find("ring dropped"), std::string::npos);
}

TEST(TraceLog, DumpIsReadable) {
  auto sys_ptr = make_system(10'000);
  System& sys = *sys_ptr;
  sys.start();
  sys.run_until(20);
  const std::string dump = sys.trace().dump(5);
  EXPECT_NE(dump.find("t0 p0 start"), std::string::npos);
  EXPECT_NE(dump.find("more)"), std::string::npos);  // elided tail marker
}

TEST(TraceLog, KindNamesCoverAllKinds) {
  using K = TraceEvent::Kind;
  for (K k : {K::kStart, K::kBroadcast, K::kDeliver, K::kLost, K::kLostDying, K::kDuplicate,
              K::kToDead, K::kTimer, K::kCrash}) {
    EXPECT_STRNE(TraceEvent::kind_name(k), "?");
  }
}

TEST(TraceLog, LossyLinksRecordLostCopies) {
  SystemConfig cfg;
  cfg.ids = {1, 2};
  cfg.timing = std::make_unique<PartialSyncTiming>(PartialSyncTiming::Params{
      .gst = 1000, .delta = 1, .pre_gst_loss = 1.0, .pre_gst_max_delay = 1});
  cfg.seed = 1;
  cfg.trace_capacity = 1000;
  System sys(std::move(cfg));
  for (ProcIndex i = 0; i < 2; ++i) sys.set_process(i, std::make_unique<Chatter>());
  sys.start();
  sys.run_until(10);
  std::size_t lost = 0;
  for (const auto& e : sys.trace().events()) {
    if (e.kind == TraceEvent::Kind::kLost) ++lost;
  }
  EXPECT_EQ(lost, 4u);  // both CHAT broadcasts fully dropped pre-GST
}

}  // namespace
}  // namespace hds
