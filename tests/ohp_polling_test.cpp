// Figure 6 (◇HP̄ in HPS) property tests — the paper's Theorem 5 and
// Corollary 2 as machine checks: after GST the detector converges to
// I(Correct) permanently, and the HΩ extraction elects a common correct
// leader identifier with its exact multiplicity. Swept over system size,
// homonymy degree, GST, delta, pre-GST loss and crash patterns.
#include "fd/impl/ohp_polling.h"

#include <gtest/gtest.h>

#include <tuple>

#include "consensus/harness.h"
#include "spec/fd_checkers.h"

namespace hds {
namespace {

TEST(OHPPolling, ConvergesInFullySynchronousRun) {
  Fig6Params p;
  p.ids = ids_unique(4);
  p.net = {.gst = 0, .delta = 2, .pre_gst_loss = 0.0, .pre_gst_max_delay = 1};
  p.run_for = 800;
  p.stable_window = 100;
  auto r = run_fig6(p);
  EXPECT_TRUE(r.ohp_check.ok) << r.ohp_check.detail;
  EXPECT_TRUE(r.homega_check.ok) << r.homega_check.detail;
  EXPECT_GE(r.stabilization_time, 0);
}

TEST(OHPPolling, SurvivesLossyChaoticPreGstPeriod) {
  Fig6Params p;
  p.ids = ids_homonymous(6, 3, 5);
  p.crashes = crashes_last_k(6, 2, 70);
  p.net = {.gst = 150, .delta = 4, .pre_gst_loss = 0.5, .pre_gst_max_delay = 60};
  p.run_for = 4000;
  p.stable_window = 400;
  auto r = run_fig6(p);
  EXPECT_TRUE(r.ohp_check.ok) << r.ohp_check.detail;
  EXPECT_TRUE(r.homega_check.ok) << r.homega_check.detail;
  EXPECT_GE(r.stabilization_time, 0);
}

TEST(OHPPolling, TimeoutAdaptsUpward) {
  // With delta = 8 the initial timeout of 1 is too small; stale replies
  // must have pushed it up by the end of the run.
  Fig6Params p;
  p.ids = ids_unique(3);
  p.net = {.gst = 0, .delta = 8, .pre_gst_loss = 0.0, .pre_gst_max_delay = 1};
  p.run_for = 3000;
  p.stable_window = 300;
  auto r = run_fig6(p);
  EXPECT_TRUE(r.ohp_check.ok) << r.ohp_check.detail;
  EXPECT_GT(r.max_final_timeout, 1);
}

TEST(OHPPolling, AnonymousExtremeCountsAliveBottoms) {
  // All processes share the bottom identifier: h_trusted must become the
  // multiset of |Correct| bottoms.
  Fig6Params p;
  p.ids = ids_anonymous(5);
  p.crashes = crashes_last_k(5, 2, 50);
  p.net = {.gst = 80, .delta = 3, .pre_gst_loss = 0.2, .pre_gst_max_delay = 30};
  p.run_for = 3000;
  p.stable_window = 300;
  auto r = run_fig6(p);
  EXPECT_TRUE(r.ohp_check.ok) << r.ohp_check.detail;
}

TEST(OHPPolling, HOmegaFallbackBeforeFirstRoundIsSelf) {
  OHPPolling fd;
  SystemConfig cfg;
  cfg.ids = {9};
  cfg.timing = std::make_unique<AsyncTiming>(1, 1);
  System sys(std::move(cfg));
  fd.on_start(sys.env(0));
  EXPECT_EQ(fd.h_omega().leader, 9u);
  EXPECT_EQ(fd.h_omega().multiplicity, 1u);
}

TEST(OHPPolling, RepliesOnlyOncePerPollerRound) {
  // Protocol-level: receiving the same POLLING(r, id) twice (two homonymous
  // pollers at the same round) triggers exactly one P_REPLY.
  SystemConfig cfg;
  cfg.ids = {1, 2};
  cfg.timing = std::make_unique<AsyncTiming>(1, 1);
  System sys(std::move(cfg));
  sys.set_process(0, std::make_unique<OHPPolling>());
  sys.set_process(1, std::make_unique<OHPPolling>());
  sys.start();
  sys.run_until(0);  // deliver on_start only
  auto& fd = static_cast<OHPPolling&>(sys.process(0));
  const auto before = sys.net_stats().broadcasts_by_type;
  fd.on_message(sys.env(0), make_message(OHPPolling::kPollType, PollingMsg{3, Id{7}}));
  fd.on_message(sys.env(0), make_message(OHPPolling::kPollType, PollingMsg{3, Id{7}}));
  auto after = sys.net_stats().broadcasts_by_type;
  auto replies = [&](const std::map<std::string, std::uint64_t>& m) {
    auto it = m.find(OHPPolling::kReplyType);
    return it == m.end() ? 0ULL : it->second;
  };
  EXPECT_EQ(replies(after) - replies(before), 1u);
}

TEST(OHPPolling, ReplyRangesCoverMissedRounds) {
  // A poller that jumps from round 2 to round 9 gets one reply covering
  // (3..9): the piggybacking of lines 28-30.
  SystemConfig cfg;
  cfg.ids = {1};
  cfg.timing = std::make_unique<AsyncTiming>(1, 1);
  System sys(std::move(cfg));
  sys.set_process(0, std::make_unique<OHPPolling>());
  sys.start();
  sys.run_until(0);
  auto& fd = static_cast<OHPPolling&>(sys.process(0));
  fd.on_message(sys.env(0), make_message(OHPPolling::kPollType, PollingMsg{2, Id{7}}));
  fd.on_message(sys.env(0), make_message(OHPPolling::kPollType, PollingMsg{9, Id{7}}));
  sys.run_until(10);  // let the replies deliver (self link)
  // Now verify by acting as the poller with id 7: simulate that the replies
  // would cover rounds 3..9 — we check via the network stats that exactly 2
  // replies were sent (one for round <=2, one for 3..9).
  auto it = sys.net_stats().broadcasts_by_type.find(OHPPolling::kReplyType);
  ASSERT_NE(it, sys.net_stats().broadcasts_by_type.end());
  // Our own polling loop also broadcasts replies to id 1; count only >= 2.
  EXPECT_GE(it->second, 2u);
}

TEST(OHPPolling, ConvergesOverAsymmetricLinks) {
  // Permanently slow directed links (PerLinkTiming) still satisfy the HPS
  // axioms (bounded from time 0): Fig. 6 must absorb the asymmetry through
  // its timeout, exactly as it absorbs a uniform delta.
  SystemConfig cfg;
  cfg.ids = ids_homonymous(6, 3, 9);
  cfg.timing = std::make_unique<PerLinkTiming>(1, 8, 2, /*seed=*/23);
  cfg.crashes = crashes_last_k(6, 2, 40, 9);
  cfg.seed = 3;
  System sys(std::move(cfg));
  std::vector<OHPPolling*> fds;
  for (ProcIndex i = 0; i < 6; ++i) {
    auto fd = std::make_unique<OHPPolling>();
    fds.push_back(fd.get());
    sys.set_process(i, std::move(fd));
  }
  sys.start();
  sys.run_until(4000);
  const GroundTruth gt = GroundTruth::from(sys);
  std::vector<const Trajectory<Multiset<Id>>*> trusted;
  for (auto* fd : fds) trusted.push_back(&fd->trusted_trace());
  auto res = check_ohp(gt, trusted, 4000, 400);
  EXPECT_TRUE(res.ok) << res.detail;
}

struct OhpSweep
    : ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t, SimTime, int>> {};

TEST_P(OhpSweep, Theorem5AndCorollary2Hold) {
  auto [n, distinct, crash_k, gst, seed] = GetParam();
  if (distinct > n || crash_k >= n) GTEST_SKIP();
  Fig6Params p;
  p.ids = ids_homonymous(n, distinct, 17 * seed + 1);
  p.crashes = crashes_last_k(n, crash_k, gst / 2, /*stagger=*/7);
  p.net = {.gst = gst, .delta = 3, .pre_gst_loss = 0.3, .pre_gst_max_delay = 25};
  p.seed = static_cast<std::uint64_t>(seed);
  p.run_for = 4000;
  p.stable_window = 400;
  auto r = run_fig6(p);
  EXPECT_TRUE(r.ohp_check.ok) << r.ohp_check.detail;
  EXPECT_TRUE(r.homega_check.ok) << r.homega_check.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OhpSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(3, 6),
                                            ::testing::Values<std::size_t>(1, 2, 6),
                                            ::testing::Values<std::size_t>(0, 2),
                                            ::testing::Values<SimTime>(0, 120),
                                            ::testing::Values(1, 2)));

}  // namespace
}  // namespace hds
