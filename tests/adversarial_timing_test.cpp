// Adversarial, phase-aware delivery schedules: the TypeBiasedTiming model
// stalls chosen message types and staggers deliveries per destination, so
// different processes observe the phases of the same round in different
// orders and at very different times. Consensus safety and termination must
// be schedule-independent.
#include <gtest/gtest.h>

#include <memory>

#include "consensus/harness.h"
#include "consensus/majority_homega.h"
#include "consensus/messages.h"
#include "consensus/quorum_homega_hsigma.h"
#include "fd/oracles.h"
#include "sim/system.h"

namespace hds {
namespace {

ConsensusRunResult run_fig8_with_timing(std::unique_ptr<TimingModel> timing, std::uint64_t seed) {
  const std::size_t n = 5;
  SystemConfig cfg;
  cfg.ids = ids_homonymous(n, 2, 7);
  cfg.timing = std::move(timing);
  cfg.crashes = crashes_last_k(n, 2, 30, 11);
  cfg.seed = seed;
  System sys(std::move(cfg));
  OracleHOmega fd(GroundTruth::from(sys), [&sys] { return sys.now(); }, 50);
  const auto proposals = distinct_proposals(n);
  std::vector<MajorityHOmegaConsensus*> cons(n);
  for (ProcIndex i = 0; i < n; ++i) {
    MajorityConsensusConfig ccfg;
    ccfg.n = n;
    ccfg.t = 2;
    ccfg.proposal = proposals[i];
    auto proc = std::make_unique<MajorityHOmegaConsensus>(ccfg, fd.handle(i));
    cons[i] = proc.get();
    sys.set_process(i, std::move(proc));
  }
  sys.start();
  sys.run_until(100'000);
  ConsensusRunResult res;
  res.proposals = proposals;
  for (ProcIndex i = 0; i < n; ++i) res.decisions.push_back(cons[i]->decision());
  res.check = check_consensus(GroundTruth::from(sys), proposals, res.decisions);
  return res;
}

TEST(AdversarialTiming, StalledPh2StillSafeAndLive) {
  // PH2 crawls (40 ticks) while everything else flies: Phase 2 quorums form
  // from wildly skewed snapshots.
  TypeBiasedTiming::Params p;
  p.default_delay = 1;
  p.delay_by_type = {{kPh2Type, 40}};
  auto r = run_fig8_with_timing(std::make_unique<TypeBiasedTiming>(p), 1);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(AdversarialTiming, StalledDecideCannotBreakAgreement) {
  // DECIDE relays crawl: laggards must reach the same value through the
  // normal phases long before the relay arrives.
  TypeBiasedTiming::Params p;
  p.default_delay = 2;
  p.delay_by_type = {{kDecideType, 120}};
  auto r = run_fig8_with_timing(std::make_unique<TypeBiasedTiming>(p), 2);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(AdversarialTiming, PerDestinationStaggerSkewsObservationOrder) {
  // Process k receives everything k*7 ticks later than process 0: rounds
  // overlap heavily across the system.
  TypeBiasedTiming::Params p;
  p.default_delay = 1;
  p.per_destination_stagger = 7;
  auto r = run_fig8_with_timing(std::make_unique<TypeBiasedTiming>(p), 3);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(AdversarialTiming, Fig9UnderStalledPh1Q) {
  const std::size_t n = 5;
  SystemConfig cfg;
  cfg.ids = ids_homonymous(n, 2, 3);
  TypeBiasedTiming::Params tp;
  tp.default_delay = 1;
  tp.delay_by_type = {{kPh1QType, 25}};
  tp.per_destination_stagger = 3;
  cfg.timing = std::make_unique<TypeBiasedTiming>(tp);
  cfg.crashes = crashes_last_k(n, 3, 20, 9);
  cfg.seed = 4;
  System sys(std::move(cfg));
  auto clock = [&sys] { return sys.now(); };
  OracleHOmega fd1(GroundTruth::from(sys), clock, 50);
  OracleHSigma fd2(GroundTruth::from(sys), clock, 70);
  const auto proposals = distinct_proposals(n);
  std::vector<QuorumConsensus*> cons(n);
  for (ProcIndex i = 0; i < n; ++i) {
    auto proc = std::make_unique<QuorumConsensus>(QuorumConsensusConfig{proposals[i], 4},
                                                  fd1.handle(i), fd2.handle(i));
    cons[i] = proc.get();
    sys.set_process(i, std::move(proc));
  }
  sys.start();
  sys.run_until(100'000);
  std::vector<DecisionRecord> decisions;
  for (ProcIndex i = 0; i < n; ++i) decisions.push_back(cons[i]->decision());
  auto res = check_consensus(GroundTruth::from(sys), proposals, decisions);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AdversarialTiming, ModelValidatesParameters) {
  TypeBiasedTiming::Params zero;
  zero.default_delay = 0;
  EXPECT_THROW(TypeBiasedTiming{zero}, std::invalid_argument);
  TypeBiasedTiming::Params bad;
  bad.delay_by_type = {{"X", 0}};
  EXPECT_THROW(TypeBiasedTiming{bad}, std::invalid_argument);
  TypeBiasedTiming::Params stagger_bad;
  stagger_bad.per_destination_stagger = -1;
  EXPECT_THROW(TypeBiasedTiming{stagger_bad}, std::invalid_argument);
}

TEST(AdversarialTiming, DeliverySemantics) {
  TypeBiasedTiming::Params p;
  p.default_delay = 5;
  p.delay_by_type = {{"SLOW", 50}};
  p.per_destination_stagger = 2;
  TypeBiasedTiming t(p);
  Rng rng(1);
  EXPECT_EQ(t.delivery_at(10, 0, 0, "FAST", rng), 15);
  EXPECT_EQ(t.delivery_at(10, 0, 3, "FAST", rng), 21);  // + 3*2 stagger
  EXPECT_EQ(t.delivery_at(10, 0, 1, "SLOW", rng), 62);
}

}  // namespace
}  // namespace hds
