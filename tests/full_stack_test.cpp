// Full-stack integration tests: the paper's headline compositions, with
// the failure detectors implemented by real message-passing algorithms
// rather than oracles.
//
//  - Fig. 6 ▸ Corollary 2 ▸ Fig. 8 in HPS with a majority of correct
//    processes ("consensus with partial synchrony in homonymous systems").
//    Note: pre-GST message *loss* is disabled here. Fig. 8 is an HAS
//    algorithm — reliable links — and never retransmits its phase messages
//    (retransmission could not be deduplicated: PH1/PH2 carry no sender
//    identity by design). The composition therefore requires the lossless
//    reading of "eventually timely": arbitrary finite pre-GST delays.
//    EXPERIMENTS.md discusses this reproduction finding.
//  - Fig. 6 + the Fig. 7 adapter ▸ Fig. 9 under synchrony, any number of
//    crashes, no knowledge of n, t or membership.
//  - AP ▸ Lemmas 2+3 ▸ Observation 1 ▸ Fig. 9 in an anonymous synchronous
//    system (the paper's relaxation for anonymous consensus).
#include <gtest/gtest.h>

#include <tuple>

#include "consensus/harness.h"

namespace hds {
namespace {

TEST(FullStackFig8, PartialSynchronyMajorityCorrect) {
  Fig8FullStackParams p;
  p.ids = ids_homonymous(5, 2, 7);
  p.t_known = 2;
  p.crashes = crashes_last_k(5, 2, 60, 13);
  p.net = {.gst = 100, .delta = 3, .pre_gst_loss = 0.0, .pre_gst_max_delay = 40};
  p.seed = 2;
  auto r = run_fig8_full_stack(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(FullStackFig8, ImmediateSynchronyDecidesFast) {
  Fig8FullStackParams p;
  p.ids = ids_unique(4);
  p.t_known = 1;
  p.net = {.gst = 0, .delta = 2, .pre_gst_loss = 0.0, .pre_gst_max_delay = 1};
  auto r = run_fig8_full_stack(p);
  ASSERT_TRUE(r.check.ok) << r.check.detail;
  EXPECT_LT(r.last_decision_time, 1500);
}

struct Fig8StackSweep
    : ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(Fig8StackSweep, ConsensusUnderHPS) {
  auto [n, distinct, crash_k, seed] = GetParam();
  if (distinct > n || 2 * crash_k >= n) GTEST_SKIP();
  Fig8FullStackParams p;
  p.ids = ids_homonymous(n, distinct, seed + 3);
  p.t_known = crash_k;
  if (crash_k > 0) p.crashes = crashes_last_k(n, crash_k, 50, 17);
  p.net = {.gst = 90, .delta = 3, .pre_gst_loss = 0.0, .pre_gst_max_delay = 30};
  p.seed = seed;
  auto r = run_fig8_full_stack(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Fig8StackSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(3, 5),
                                            ::testing::Values<std::size_t>(1, 2, 5),
                                            ::testing::Values<std::size_t>(0, 2),
                                            ::testing::Values<std::uint64_t>(1, 2)));

TEST(FullStackFig9, SynchronousAnyNumberOfCrashes) {
  Fig9FullStackParams p;
  p.ids = ids_homonymous(5, 2, 7);
  p.crashes = crashes_last_k(5, 3, 37, 11);
  p.delta = 3;
  p.seed = 8;
  auto r = run_fig9_full_stack(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(FullStackFig9, SingleSurvivorStillDecides) {
  Fig9FullStackParams p;
  p.ids = ids_homonymous(4, 2, 5);
  p.crashes = crashes_last_k(4, 3, 25, 9);
  p.delta = 2;
  p.seed = 3;
  auto r = run_fig9_full_stack(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(FullStackFig9Anonymous, ApDerivedDetectorsCarryConsensus) {
  Fig9FullStackParams p;
  p.ids = ids_anonymous(6);
  p.crashes = crashes_last_k(6, 4, 29, 7);
  p.delta = 2;
  p.seed = 13;
  p.anonymous_ap_stack = true;
  auto r = run_fig9_full_stack(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

struct Fig9StackSweep
    : ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, bool, std::uint64_t>> {};

TEST_P(Fig9StackSweep, ConsensusUnderSynchrony) {
  auto [n, crash_k, anonymous, seed] = GetParam();
  if (crash_k >= n) GTEST_SKIP();
  Fig9FullStackParams p;
  p.ids = anonymous ? ids_anonymous(n) : ids_homonymous(n, (n + 1) / 2, seed + 1);
  if (crash_k > 0) p.crashes = crashes_last_k(n, crash_k, 31, 13);
  p.delta = 2;
  p.seed = seed;
  p.anonymous_ap_stack = anonymous;
  auto r = run_fig9_full_stack(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Fig9StackSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(3, 5),
                                            ::testing::Values<std::size_t>(0, 2, 4),
                                            ::testing::Bool(),
                                            ::testing::Values<std::uint64_t>(1, 2)));

}  // namespace
}  // namespace hds
