// Figure 9 consensus tests (Theorem 8): consensus in HAS[HΩ, HΣ] for ANY
// number of crash failures, without n, t or membership knowledge — plus
// the Section 5.3 closing remark (AAS[AΩ, HΣ] variant).
#include "consensus/quorum_homega_hsigma.h"

#include <gtest/gtest.h>

#include <tuple>

#include "consensus/harness.h"

namespace hds {
namespace {

TEST(Fig9Consensus, UniqueIdsNoCrashes) {
  Fig9OracleParams p;
  p.ids = ids_unique(4);
  auto r = run_fig9_with_oracle(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(Fig9Consensus, ToleratesAllButOneCrashing) {
  // t = n-1: far beyond any majority assumption.
  Fig9OracleParams p;
  p.ids = ids_homonymous(6, 3, 5);
  p.crashes = crashes_last_k(6, 5, 15, 7);
  p.fd1_stabilize = 90;
  p.fd2_stabilize = 120;
  auto r = run_fig9_with_oracle(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(Fig9Consensus, UnanimousProposalSticks) {
  Fig9OracleParams p;
  p.ids = ids_homonymous(5, 2, 2);
  p.proposals = std::vector<Value>(5, 7);
  auto r = run_fig9_with_oracle(p);
  ASSERT_TRUE(r.check.ok) << r.check.detail;
  for (const auto& d : r.decisions) {
    if (d.decided) {
      EXPECT_EQ(d.value, 7);
    }
  }
}

TEST(Fig9Consensus, LateHSigmaStabilizationForcesSubRounds) {
  // With crashes before the HΣ oracle stabilizes, the only usable quorum
  // changes mid-phase: processes must bump sub-rounds and rebroadcast.
  Fig9OracleParams p;
  p.ids = ids_homonymous(5, 2, 4);
  p.crashes = crashes_last_k(5, 2, 5);
  p.fd1_stabilize = 30;
  p.fd2_stabilize = 150;
  auto r = run_fig9_with_oracle(p);
  ASSERT_TRUE(r.check.ok) << r.check.detail;
  EXPECT_GE(r.max_sub_round, 2);
}

TEST(Fig9Consensus, CrashDuringBroadcastStaysSafe) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Fig9OracleParams p;
    p.ids = ids_homonymous(5, 2, 9);
    p.crashes = crashes_last_k(5, 3, 12, 8, /*partial=*/true);
    p.fd1_stabilize = 60;
    p.fd2_stabilize = 80;
    p.seed = seed;
    auto r = run_fig9_with_oracle(p);
    EXPECT_TRUE(r.check.ok) << "seed " << seed << ": " << r.check.detail;
  }
}

TEST(Fig9Consensus, AnonymousAOmegaVariantDecides) {
  Fig9AnonOmegaParams p;
  p.n = 5;
  p.crashes = crashes_last_k(5, 3, 18, 6);
  p.aomega_stabilize = 70;
  p.fd2_stabilize = 90;
  auto r = run_fig9_anon_aomega(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

TEST(Fig9Consensus, AnonymousAOmegaVariantNoCrashes) {
  Fig9AnonOmegaParams p;
  p.n = 3;
  auto r = run_fig9_anon_aomega(p);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

struct Fig9Sweep : ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::size_t, SimTime, std::uint64_t>> {
};

TEST_P(Fig9Sweep, Theorem8Holds) {
  auto [n, distinct, crash_k, fd_stab, seed] = GetParam();
  if (distinct > n || crash_k >= n) GTEST_SKIP();
  Fig9OracleParams p;
  p.ids = ids_homonymous(n, distinct, 13 * seed + n);
  if (crash_k > 0) p.crashes = crashes_last_k(n, crash_k, 20, 9);
  p.fd1_stabilize = fd_stab;
  p.fd2_stabilize = fd_stab + 30;
  p.seed = seed;
  auto r = run_fig9_with_oracle(p);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Fig9Sweep,
                         ::testing::Combine(::testing::Values<std::size_t>(2, 4, 7),
                                            ::testing::Values<std::size_t>(1, 2, 4),
                                            ::testing::Values<std::size_t>(0, 2, 6),
                                            ::testing::Values<SimTime>(0, 100),
                                            ::testing::Values<std::uint64_t>(1, 2)));

}  // namespace
}  // namespace hds
