// ARQ layer (net/reliable.h): wire-extension round-trips, the channel's
// exactly-once in-order delivery under scripted loss/duplication/reordering
// (virtual time — the channel never reads a clock, so these are fully
// deterministic), crash-restart epoch semantics, bounded-degradation via the
// lost floor, and the sim-side ReliableLinkEmulator.
#include "net/reliable.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "fd/impl/ohp_polling.h"
#include "net/codec.h"

namespace hds::net {
namespace {

RelTime at(SimTime ms) { return RelTime{} + std::chrono::milliseconds(ms); }

Message poll(Round r, Id id) { return make_message(OHPPolling::kPollType, PollingMsg{r, id}); }

std::vector<std::uint8_t> frame_of(const Message& m, ProcIndex sender, Id id) {
  return encode_frame(builtin_codecs(), m, sender, id);
}

// ------------------------------------------------------------ wire layer

TEST(RelWire, WrapRoundTripsHeaderAndBodySurvivesDecode) {
  const Message m = poll(7, 42);
  const auto inner = frame_of(m, 2, 42);
  RelHeader h;
  h.epoch = 3;
  h.seq = 1'000'000;  // multi-byte varints on purpose
  h.lost_floor = 999'999;
  h.ack_epoch = 2;
  h.ack_cum = 130;
  h.ack_bits = 0x8000'0000'0000'0001ull;
  const auto wrapped = rel_wrap(inner, h);
  EXPECT_EQ(wrapped[2], kWireVersion | kWireRelFlag);

  const auto back = rel_peek(wrapped.data(), wrapped.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch, h.epoch);
  EXPECT_EQ(back->seq, h.seq);
  EXPECT_EQ(back->lost_floor, h.lost_floor);
  EXPECT_EQ(back->ack_epoch, h.ack_epoch);
  EXPECT_EQ(back->ack_cum, h.ack_cum);
  EXPECT_EQ(back->ack_bits, h.ack_bits);

  // The wrapped frame still decodes (checksum recomputed, body untouched).
  const Message dm = decode_frame(builtin_codecs(), wrapped.data(), wrapped.size());
  EXPECT_EQ(dm.type, m.type);
  EXPECT_EQ(dm.meta_sender, 2u);
  ASSERT_NE(dm.as<PollingMsg>(), nullptr);
  EXPECT_EQ(*dm.as<PollingMsg>(), (PollingMsg{7, 42}));
}

TEST(RelWire, PlainFrameCarriesNoFlagAndPeekDeclines) {
  const auto bare = frame_of(poll(1, 5), 0, 5);
  EXPECT_EQ(bare[2], kWireVersion);  // reliability off: byte-identical v1
  EXPECT_FALSE(rel_peek(bare.data(), bare.size()).has_value());
}

TEST(RelWire, AckAndRejoinBodiesRoundTripAndRejectTruncation) {
  const RelAckBody a{5, (1ull << 40) + 3, ~0ull};
  const auto ab = rel_ack_body(a);
  const auto pa = parse_rel_ack_body(ab.data(), ab.size());
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(pa->ack_epoch, a.ack_epoch);
  EXPECT_EQ(pa->ack_cum, a.ack_cum);
  EXPECT_EQ(pa->ack_bits, a.ack_bits);
  for (std::size_t len = 0; len < ab.size(); ++len) {
    EXPECT_FALSE(parse_rel_ack_body(ab.data(), len).has_value()) << "len=" << len;
  }

  const auto rb = rejoin_body(1'234'567);
  const auto pr = parse_rejoin_body(rb.data(), rb.size());
  ASSERT_TRUE(pr.has_value());
  EXPECT_EQ(*pr, 1'234'567u);
  EXPECT_FALSE(parse_rejoin_body(rb.data(), 0).has_value());
}

TEST(RelWire, ControlFrameCarriesAckBodyThroughPeek) {
  const auto body = rel_ack_body(RelAckBody{0, 9, 0b101});
  const auto frame = encode_control_frame(kTagRelAck, 1, 17, body);
  EXPECT_EQ(peek_tag(frame.data(), frame.size()), kTagRelAck);
  // The envelope validates like any frame...
  EXPECT_NO_THROW(decode_frame(builtin_codecs(), frame.data(), frame.size()));
  // ...and the raw body comes back out for the reliable layer to parse.
  const auto view = peek_control_body(frame.data(), frame.size());
  ASSERT_TRUE(view.has_value());
  const auto back = parse_rel_ack_body(view->data, view->len);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ack_cum, 9u);
}

// ------------------------------------------------------- channel harness

// Feeds one arrived datagram into a channel exactly the way the transport
// does: standalone acks via on_ack, data frames via note_peer_epoch ->
// on_ack -> on_data. Returns the messages delivered up the stack; any
// epoch-flush requeues are appended to *flushed.
std::vector<Message> receive(ReliableChannel& ch, ProcIndex from,
                             const std::vector<std::uint8_t>& frame, RelTime now,
                             std::vector<RelSend>* flushed = nullptr) {
  const auto tag = peek_tag(frame.data(), frame.size());
  if (tag.has_value() && *tag == kTagRelAck) {
    const auto view = peek_control_body(frame.data(), frame.size());
    if (!view) return {};
    const auto ack = parse_rel_ack_body(view->data, view->len);
    if (ack) ch.on_ack(from, ack->ack_epoch, ack->ack_cum, ack->ack_bits, now);
    return {};
  }
  const auto h = rel_peek(frame.data(), frame.size());
  if (!h) return {};
  Message m = decode_frame(builtin_codecs(), frame.data(), frame.size());
  std::vector<RelSend> requeued = ch.note_peer_epoch(from, h->epoch, now);
  if (flushed != nullptr) {
    for (RelSend& s : requeued) flushed->push_back(std::move(s));
  }
  ch.on_ack(from, h->ack_epoch, h->ack_cum, h->ack_bits, now);
  return ch.on_data(from, *h, std::move(m), now);
}

// The property test: full-duplex traffic through a medium that drops 30% of
// datagrams, duplicates 10%, and delivers the rest with up to 25 ms of
// jitter (reordering). Every message must come out the far side exactly
// once, in order, with a bounded number of retransmissions and no
// window-drop degradation. Virtual time; the seeded Rng scripts the faults,
// so the run (and every counter) is reproducible.
TEST(RelChannel, LossDupReorderStillYieldsExactlyOnceInOrderBothWays) {
  constexpr int kN = 120;
  RelConfig cfg;
  cfg.enabled = true;
  cfg.rto_initial_ms = 60;
  cfg.ack_delay_ms = 10;
  cfg.seed = 7;
  ReliableChannel a(cfg, 0, 11, 2, 0, nullptr);
  ReliableChannel b(cfg, 1, 22, 2, 0, nullptr);

  Rng medium(20260809);
  std::multimap<SimTime, std::pair<ProcIndex, std::vector<std::uint8_t>>> wires;
  const auto post = [&](SimTime t, ProcIndex to, std::vector<std::uint8_t> f) {
    if (medium.chance(0.30)) return;  // loss
    const SimTime jitter = 1 + medium.uniform(0, 25);
    if (medium.chance(0.10)) {
      wires.emplace(t + 1 + medium.uniform(0, 25), std::pair{to, f});  // duplicate
    }
    wires.emplace(t + jitter, std::pair{to, std::move(f)});
  };

  std::vector<Round> got_a, got_b;
  int sent = 0;
  SimTime t = 0;
  for (; t <= 120'000 && (got_a.size() < kN || got_b.size() < kN); ++t) {
    const RelTime now = at(t);
    if (sent < kN && t % 3 == 0) {
      ++sent;
      const Round r = static_cast<Round>(sent);
      post(t, 1, a.wrap_data(1, OHPPolling::kPollType, frame_of(poll(r, 11), 0, 11), now));
      post(t, 0, b.wrap_data(0, OHPPolling::kPollType, frame_of(poll(r, 22), 1, 22), now));
    }
    while (!wires.empty() && wires.begin()->first <= t) {
      auto [to, frame] = std::move(wires.begin()->second);
      wires.erase(wires.begin());
      ReliableChannel& ch = to == 0 ? a : b;
      for (const Message& m : receive(ch, to == 0 ? 1 : 0, frame, now)) {
        ASSERT_NE(m.as<PollingMsg>(), nullptr);
        (to == 0 ? got_a : got_b).push_back(m.as<PollingMsg>()->r);
      }
    }
    for (RelSend& s : a.tick(now)) post(t, s.to, std::move(s.frame));
    for (RelSend& s : b.tick(now)) post(t, s.to, std::move(s.frame));
  }

  // Exactly once, in order, both directions.
  ASSERT_EQ(got_a.size(), static_cast<std::size_t>(kN));
  ASSERT_EQ(got_b.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(got_a[i], static_cast<Round>(i + 1)) << "a[" << i << "]";
    EXPECT_EQ(got_b[i], static_cast<Round>(i + 1)) << "b[" << i << "]";
  }

  const RelStats sa = a.stats();
  const RelStats sb = b.stats();
  // 30% loss forces recovery, but well within the retry budget: nothing was
  // abandoned, so delivery was lossless above the layer.
  EXPECT_GT(sa.retransmits, 0u);
  EXPECT_EQ(sa.window_drops, 0u);
  EXPECT_EQ(sb.window_drops, 0u);
  EXPECT_EQ(sa.skipped_lost, 0u);
  EXPECT_EQ(sb.delivered, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(sa.delivered, static_cast<std::uint64_t>(kN));
  // Bounded: the deterministic run needs a small constant factor of resends,
  // nowhere near kN * max_retransmits.
  EXPECT_LE(sa.retransmits + sb.retransmits, static_cast<std::uint64_t>(kN) * 10);
  // The medium's duplicates (and retransmit crossings) were suppressed, and
  // jitter parked frames out of order.
  EXPECT_GT(sa.dup_frames + sb.dup_frames, 0u);
  EXPECT_GT(sa.out_of_order + sb.out_of_order, 0u);
  EXPECT_GT(sa.acks_received, 0u);
  EXPECT_GT(sb.acks_received, 0u);
}

// A link that blackholes long enough to exhaust a tiny retry budget must
// degrade by advancing the lost floor — and the receiver must skip the
// abandoned sequence numbers and keep delivering, not wedge forever on the
// gap.
TEST(RelChannel, RetryExhaustionAdvancesLostFloorInsteadOfWedging) {
  RelConfig cfg;
  cfg.enabled = true;
  cfg.window = 4;
  cfg.max_retransmits = 3;
  cfg.rto_initial_ms = 20;
  cfg.rto_max_ms = 40;
  cfg.seed = 3;
  ReliableChannel a(cfg, 0, 11, 2, 0, nullptr);
  ReliableChannel b(cfg, 1, 22, 2, 0, nullptr);

  // 12 sends into a black hole: window overflow (drop-oldest) plus retry
  // exhaustion abandon everything.
  SimTime t = 0;
  for (int i = 1; i <= 12; ++i) {
    (void)a.wrap_data(1, OHPPolling::kPollType, frame_of(poll(static_cast<Round>(i), 11), 0, 11),
                      at(t));
  }
  for (; t <= 2'000; t += 5) (void)a.tick(at(t));  // frames vanish
  const RelStats mid = a.stats();
  EXPECT_GT(mid.window_drops, 0u);

  // Heal the link; one more message must arrive even though its sequence
  // number sits far past everything the receiver ever saw.
  std::vector<Round> got;
  const auto deliver_now = [&](const std::vector<std::uint8_t>& f) {
    for (const Message& m : receive(b, 0, f, at(t))) got.push_back(m.as<PollingMsg>()->r);
  };
  deliver_now(a.wrap_data(1, OHPPolling::kPollType, frame_of(poll(99, 11), 0, 11), at(t)));
  ASSERT_EQ(got.size(), 1u) << "receiver wedged on abandoned sequence numbers";
  EXPECT_EQ(got[0], 99);
  EXPECT_GT(b.stats().skipped_lost, 0u);
}

// Crash-restart: the peer's new incarnation must receive what its
// predecessor never acknowledged (re-queued under fresh sequence numbers),
// and frames from the dead incarnation must be discarded, not delivered.
TEST(RelChannel, EpochBumpRequeuesUnackedAndDropsStaleIncarnation) {
  RelConfig cfg;
  cfg.enabled = true;
  cfg.seed = 5;
  ReliableChannel a(cfg, 0, 11, 2, /*self_epoch=*/0, nullptr);
  ReliableChannel b1(cfg, 1, 22, 2, /*self_epoch=*/0, nullptr);

  // Five payloads reach the first incarnation, but every ack is lost.
  for (int i = 1; i <= 5; ++i) {
    const auto f =
        a.wrap_data(1, OHPPolling::kPollType, frame_of(poll(static_cast<Round>(i), 11), 0, 11),
                    at(10 * i));
    (void)receive(b1, 0, f, at(10 * i));
  }
  EXPECT_EQ(b1.stats().delivered, 5u);

  // The supervisor respawns peer 1 with epoch 1; a REJOIN announcement
  // flushes the link and returns the unacked backlog for retransmission.
  std::vector<RelSend> requeued = a.note_peer_epoch(1, 1, at(100));
  ASSERT_EQ(requeued.size(), 5u);
  const RelStats sa = a.stats();
  EXPECT_GE(sa.epoch_flushes, 1u);
  EXPECT_EQ(sa.requeued, 5u);

  // The new incarnation (tracking peer epochs afresh) gets all five, in
  // order, exactly once.
  ReliableChannel b2(cfg, 1, 22, 2, /*self_epoch=*/1, nullptr);
  std::vector<Round> got;
  for (const RelSend& s : requeued) {
    EXPECT_EQ(s.to, 1u);
    EXPECT_EQ(s.type, OHPPolling::kPollType);
    for (const Message& m : receive(b2, 0, s.frame, at(110))) {
      got.push_back(m.as<PollingMsg>()->r);
    }
  }
  EXPECT_EQ(got, (std::vector<Round>{1, 2, 3, 4, 5}));

  // Receiver-side staleness: a channel that has seen the peer's epoch-1
  // incarnation discards a lingering epoch-0 frame outright.
  ReliableChannel c(cfg, 0, 11, 2, 0, nullptr);
  ReliableChannel a0(cfg, 1, 22, 2, /*self_epoch=*/0, nullptr);
  ReliableChannel a1(cfg, 1, 22, 2, /*self_epoch=*/1, nullptr);
  const auto old_frame =
      a0.wrap_data(0, OHPPolling::kPollType, frame_of(poll(1, 22), 1, 22), at(0));
  const auto new_frame =
      a1.wrap_data(0, OHPPolling::kPollType, frame_of(poll(2, 22), 1, 22), at(1));
  EXPECT_EQ(receive(c, 1, new_frame, at(2)).size(), 1u);
  EXPECT_TRUE(receive(c, 1, old_frame, at(3)).empty());  // delayed pre-restart frame
  EXPECT_GE(c.stats().stale_epoch_drops, 1u);
}

// Identical config + identical fault script => identical counters. The
// channel's only nondeterminism would be a real clock; it has none.
TEST(RelChannel, VirtualTimeRunsAreReproducible) {
  const auto run = [] {
    RelConfig cfg;
    cfg.enabled = true;
    cfg.rto_initial_ms = 40;
    cfg.seed = 9;
    ReliableChannel a(cfg, 0, 1, 2, 0, nullptr);
    ReliableChannel b(cfg, 1, 2, 2, 0, nullptr);
    Rng medium(4242);
    std::multimap<SimTime, std::vector<std::uint8_t>> wires;
    for (SimTime t = 0; t <= 3'000; ++t) {
      if (t < 300 && t % 10 == 0) {
        auto f = a.wrap_data(1, OHPPolling::kPollType,
                             frame_of(poll(static_cast<Round>(t), 1), 0, 1), at(t));
        if (!medium.chance(0.5)) wires.emplace(t + 1 + medium.uniform(0, 10), std::move(f));
      }
      while (!wires.empty() && wires.begin()->first <= t) {
        (void)receive(b, 0, wires.begin()->second, at(t));
        wires.erase(wires.begin());
      }
      for (RelSend& s : a.tick(at(t))) {
        if (!medium.chance(0.5)) wires.emplace(t + 1 + medium.uniform(0, 10), std::move(s.frame));
      }
      for (RelSend& s : b.tick(at(t))) {
        if (s.to == 0 && !medium.chance(0.5)) {
          std::vector<RelSend> none;
          (void)receive(a, 1, s.frame, at(t), &none);
        }
      }
    }
    const RelStats sa = a.stats();
    const RelStats sb = b.stats();
    return std::vector<std::uint64_t>{sa.data_sent, sa.retransmits, sa.acked,  sa.window_drops,
                                      sb.delivered, sb.dup_frames,  sb.out_of_order};
  };
  EXPECT_EQ(run(), run());
}

// ------------------------------------------------- sim-side emulator

// Inner interposer scripting pre-GST loss: every copy before `heal` drops
// (and is duplicated, to exercise suppression); afterwards the link is
// clean.
class HealAt final : public LinkInterposer {
 public:
  explicit HealAt(SimTime heal) : heal_(heal) {}
  CopyVerdict on_copy(SimTime now, ProcIndex, ProcIndex, const std::string&) override {
    ++calls_;
    CopyVerdict v;
    v.drop = now < heal_;
    v.duplicates = 1;
    return v;
  }
  int calls() const { return calls_; }

 private:
  SimTime heal_;
  int calls_ = 0;
};

TEST(RelEmulator, RecoversDroppedCopyAtFirstPostHealRetry) {
  HealAt inner(100);
  ReliableLinkEmulator rel(inner);  // rto 8 ms doubling, so retries at
                                    // +8, +24, +56, +120, ...
  const CopyVerdict v = rel.on_copy(0, 0, 1, "POLLING");
  EXPECT_FALSE(v.drop);
  EXPECT_EQ(v.extra_delay, 120);  // first retry instant at or past heal=100
  EXPECT_EQ(v.duplicates, 0u);    // injected duplicates suppressed...
  EXPECT_GT(rel.dedup_suppressed(), 0u);  // ...and accounted
  EXPECT_EQ(rel.recovered(), 1u);
  EXPECT_EQ(rel.given_up(), 0u);

  // Post-heal copies pass straight through with no added delay.
  const CopyVerdict clean = rel.on_copy(500, 0, 1, "POLLING");
  EXPECT_FALSE(clean.drop);
  EXPECT_EQ(clean.extra_delay, 0);
}

TEST(RelEmulator, PermanentBlackholeGivesUpAfterBoundedAttempts) {
  HealAt inner(std::numeric_limits<SimTime>::max());
  ReliableLinkEmulator::Config cfg;
  cfg.max_attempts = 5;
  ReliableLinkEmulator rel(inner, cfg);
  const CopyVerdict v = rel.on_copy(0, 0, 1, "POLLING");
  EXPECT_TRUE(v.drop);
  EXPECT_EQ(rel.given_up(), 1u);
  EXPECT_EQ(inner.calls(), 5);  // the retry budget, no more
}

}  // namespace
}  // namespace hds::net
