// Causal tracing and the cluster telemetry plane: lineage-id layout,
// backwards chain extraction over recorded event logs, the
// hds-telemetry-v1 delta codec + chunking, the cross-process merger
// (clock alignment, loss accounting, cluster QoS), and the merged
// Chrome-trace exporter's flow arrows.
#include "obs/causal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/telemetry.h"
#include "obs/trace_export.h"
#include "sim/tracelog.h"

namespace hds::obs {
namespace {

using K = TraceEvent::Kind;

TraceEvent ev(SimTime at, K kind, ProcIndex proc, std::string type = {}, std::uint64_t id = 0,
              std::uint64_t parent = 0) {
  TraceEvent e;
  e.at = at;
  e.kind = kind;
  e.proc = proc;
  e.msg_type = std::move(type);
  e.causal_id = id;
  e.causal_parent = parent;
  return e;
}

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// ------------------------------------------------------------ lineage ids

TEST(Causal, IdLayoutFoldsNodeIntoHighBits) {
  const std::uint64_t id = causal_node_base(7) | 42;
  EXPECT_EQ(causal_node_of(id), 7u);
  EXPECT_EQ(causal_seq_of(id), 42u);
  EXPECT_EQ(causal_id_str(id), "7:42");
}

TEST(Causal, SessionMintsMonotoneIdsAndFollowsLamportRules) {
  CausalSession s;
  s.base = causal_node_base(3);
  const std::uint64_t a = s.fresh();
  const std::uint64_t b = s.fresh();
  EXPECT_EQ(causal_node_of(a), 3u);
  EXPECT_LT(causal_seq_of(a), causal_seq_of(b));
  EXPECT_EQ(s.tick(), 1u);
  EXPECT_EQ(s.tick(), 2u);
  s.merge(10);  // remote ahead: jump past it
  EXPECT_EQ(s.clock, 11u);
  s.merge(4);  // remote behind: still advances locally
  EXPECT_EQ(s.clock, 12u);
}

// --------------------------------------------------------- chain walking

TEST(Causal, ChainWalksParentsOldestFirst) {
  // start(1) -> broadcast(2) -> deliver on p1 -> broadcast(3) by p1.
  const std::uint64_t root = causal_node_base(0) | 1;
  const std::uint64_t send1 = causal_node_base(0) | 2;
  const std::uint64_t send2 = causal_node_base(0) | 3;
  const std::vector<TraceEvent> log = {
      ev(0, K::kStart, 0, {}, root),
      ev(0, K::kBroadcast, 0, "A", send1, root),
      ev(2, K::kDeliver, 1, "A", send1, root),
      ev(2, K::kBroadcast, 1, "B", send2, send1),
      ev(4, K::kDeliver, 0, "B", send2, send1),
  };
  const auto chain = causal_chain(log, send2);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].kind, K::kStart);
  EXPECT_EQ(chain[1].causal_id, send1);
  EXPECT_EQ(chain[2].causal_id, send2);
  EXPECT_EQ(chain[2].msg_type, "B");
}

TEST(Causal, ChainTruncatesWhereTheRingEvictedTheCreator) {
  const std::uint64_t lost = causal_node_base(0) | 1;  // creator not in the log
  const std::uint64_t kept = causal_node_base(0) | 2;
  const std::vector<TraceEvent> log = {
      ev(5, K::kBroadcast, 0, "A", kept, lost),
      ev(7, K::kDeliver, 1, "A", kept, lost),
  };
  const auto chain = causal_chain(log, kept);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].causal_id, kept);
}

TEST(Causal, ConsecutiveTimerRearmsCountAsOneLink) {
  // A guard poll spinning: 10 same-process timer links, then the broadcast
  // that armed the first one. max_links=2 must still reach the broadcast.
  std::vector<TraceEvent> log;
  const std::uint64_t send = causal_node_base(0) | 1;
  log.push_back(ev(0, K::kBroadcast, 2, "A", send));
  std::uint64_t prev = send;
  for (int k = 0; k < 10; ++k) {
    const std::uint64_t tid = causal_node_base(0) | (10 + static_cast<std::uint64_t>(k));
    log.push_back(ev(1 + k, K::kTimer, 2, {}, tid, prev));
    prev = tid;
  }
  const auto chain = causal_chain(log, prev, /*max_links=*/2);
  ASSERT_EQ(chain.size(), 11u);  // every event retained...
  EXPECT_EQ(chain.front().kind, K::kBroadcast);  // ...and the spin escaped
  // The formatter collapses the spin to a single line.
  const std::string text = format_causal_chain(chain);
  EXPECT_EQ(count_of(text, "timer"), 1u);
  EXPECT_NE(text.find("x10"), std::string::npos);
}

TEST(Causal, ChainTargetPrefersViolationThenDeliverThenTimer) {
  const std::uint64_t d = causal_node_base(0) | 2;
  const std::uint64_t t = causal_node_base(0) | 3;
  const std::uint64_t v = causal_node_base(0) | 1;
  std::vector<TraceEvent> log = {
      ev(1, K::kDeliver, 0, "A", d),
      ev(2, K::kTimer, 0, {}, t),
  };
  EXPECT_EQ(causal_chain_target(log), d);  // deliver beats the later timer
  log.push_back(ev(3, K::kMonitorViolation, 0, "leader-flap", v));
  EXPECT_EQ(causal_chain_target(log), v);
  EXPECT_EQ(causal_chain_target({ev(2, K::kTimer, 0, {}, t)}), t);
  EXPECT_EQ(causal_chain_target({ev(0, K::kStart, 0)}), 0u);
}

// ------------------------------------------------------ telemetry codec

TelemetryDelta sample_delta() {
  TelemetryDelta d;
  d.node = 1;
  d.id = 7;
  d.seq = 3;
  d.epoch_wall_us = 1'700'000'000'000'000;
  d.hello_done_ms = 12;
  d.dropped = 5;
  // Node index 40 pushes the raw id past 2^53: the JSON string form must
  // survive where a double could not.
  d.events = {
      ev(10, K::kBroadcast, 1, "POLLING", causal_node_base(40) | 9, causal_node_base(40) | 2),
      ev(11, K::kDeliver, 1, "P_REPLY", causal_node_base(2) | 4),
      ev(12, K::kTimer, 1),
  };
  d.metrics_json = "{\"counters\":{}}";
  d.final_flush = true;
  return d;
}

TEST(Telemetry, DeltaRoundTripsThroughJson) {
  const TelemetryDelta d = sample_delta();
  const TelemetryDelta back = telemetry_delta_from_json(telemetry_delta_to_json(d));
  EXPECT_EQ(back.node, d.node);
  EXPECT_EQ(back.id, d.id);
  EXPECT_EQ(back.seq, d.seq);
  EXPECT_EQ(back.final_flush, d.final_flush);
  EXPECT_EQ(back.epoch_wall_us, d.epoch_wall_us);
  EXPECT_EQ(back.hello_done_ms, d.hello_done_ms);
  EXPECT_EQ(back.dropped, d.dropped);
  EXPECT_EQ(back.metrics_json, d.metrics_json);
  ASSERT_EQ(back.events.size(), d.events.size());
  for (std::size_t i = 0; i < d.events.size(); ++i) {
    EXPECT_EQ(back.events[i].at, d.events[i].at);
    EXPECT_EQ(back.events[i].kind, d.events[i].kind);
    EXPECT_EQ(back.events[i].proc, d.events[i].proc);
    EXPECT_EQ(back.events[i].msg_type, d.events[i].msg_type);
    EXPECT_EQ(back.events[i].causal_id, d.events[i].causal_id) << i;
    EXPECT_EQ(back.events[i].causal_parent, d.events[i].causal_parent) << i;
  }
}

TEST(Telemetry, SchemaMismatchAndBadKindsAreRejected) {
  Json j = telemetry_delta_to_json(sample_delta());
  j["schema"] = "not-telemetry";
  EXPECT_THROW((void)telemetry_delta_from_json(j), std::runtime_error);
  Json ok = telemetry_delta_to_json(sample_delta());
  Json bad_ev = Json::object();
  bad_ev["at"] = 1;
  bad_ev["k"] = "no-such-kind";
  Json evs = Json::array();
  evs.push_back(std::move(bad_ev));
  ok["events"] = std::move(evs);
  EXPECT_THROW((void)telemetry_delta_from_json(ok), std::runtime_error);
}

TEST(Telemetry, ChunkingRenumbersSeqAndKeepsFinalOnLastChunkOnly) {
  TelemetryDelta d = sample_delta();  // 3 events, seq 3, final, with metrics
  const auto chunks = chunk_telemetry_delta(d, /*max_events=*/2);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].seq, 3u);
  EXPECT_EQ(chunks[1].seq, 4u);
  EXPECT_EQ(chunks[0].events.size(), 2u);
  EXPECT_EQ(chunks[1].events.size(), 1u);
  EXPECT_FALSE(chunks[0].final_flush);
  EXPECT_TRUE(chunks[1].final_flush);
  EXPECT_TRUE(chunks[0].metrics_json.empty());
  EXPECT_EQ(chunks[1].metrics_json, d.metrics_json);
  // An empty window still announces itself as one chunk.
  d.events.clear();
  const auto empty = chunk_telemetry_delta(d, 2);
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_TRUE(empty[0].final_flush);
}

// ------------------------------------------------------------- merging

TEST(Telemetry, MergerAlignsClocksAndComputesClusterQos) {
  // Node 0's clock epoch is 2000µs earlier than node 1's. A broadcast on
  // node 0 at local t=10ms is delivered on node 1 at local t=9ms — which is
  // 2000 + 9000 - 10000 = 1000µs = 1ms of aligned end-to-end latency.
  const std::uint64_t mid = causal_node_base(0) | 5;
  TelemetryMerger merger;
  TelemetryDelta a;
  a.node = 0;
  a.id = 7;
  a.epoch_wall_us = 10'000;
  a.events = {ev(10, K::kBroadcast, 0, "POLLING", mid)};
  TelemetryDelta b;
  b.node = 1;
  b.id = 7;
  b.seq = 0;
  b.epoch_wall_us = 12'000;
  b.events = {ev(9, K::kDeliver, 1, "POLLING", mid)};
  merger.ingest(a);
  merger.ingest(b);
  EXPECT_EQ(merger.node_count(), 2u);
  const ClusterQos q = merger.cluster_qos();
  EXPECT_EQ(q.broadcasts, 1u);
  EXPECT_EQ(q.deliveries_matched, 1u);
  EXPECT_DOUBLE_EQ(q.latency_ms_mean, 1.0);
  EXPECT_DOUBLE_EQ(q.latency_ms_max, 1.0);
}

TEST(Telemetry, MergerAccountsSequenceGapsAndFinals) {
  TelemetryMerger merger;
  TelemetryDelta d;
  d.node = 2;
  d.seq = 0;
  merger.ingest(d);
  d.seq = 4;  // 1..3 lost in flight
  d.final_flush = true;
  d.dropped = 9;
  merger.ingest(d);
  EXPECT_TRUE(merger.node_final(2));
  EXPECT_FALSE(merger.node_final(0));
  const Json s = merger.summary();
  const Json* node = s.find("nodes")->find("2");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->number_or("deltas", 0), 2.0);
  EXPECT_EQ(node->number_or("lost_deltas", 0), 3.0);
  EXPECT_EQ(node->number_or("trace_dropped", 0), 9.0);
  EXPECT_NE(s.find("cluster_qos"), nullptr);
}

TEST(Telemetry, MergerIgnoresDuplicateDeltasButCountsThem) {
  // A replayed datagram (same sequence number) must not double-append its
  // events, and — crucially — must not count as a fresh delta: before the
  // distinct-sequence accounting, one duplicate could mask one real loss.
  TelemetryMerger merger;
  TelemetryDelta d;
  d.node = 1;
  d.seq = 0;
  d.events = {ev(5, K::kBroadcast, 1, "POLLING", causal_node_base(1) | 1)};
  merger.ingest(d);
  merger.ingest(d);  // duplicate
  d.seq = 2;         // seq 1 lost
  d.events = {ev(8, K::kTimer, 1)};
  merger.ingest(d);
  merger.ingest(d);  // duplicate again

  const auto traces = merger.node_traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].events.size(), 2u);  // one per distinct delta

  const Json s = merger.summary();
  const Json* node = s.find("nodes")->find("1");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->number_or("deltas", 0), 2.0);
  EXPECT_EQ(node->number_or("dup_deltas", 0), 2.0);
  EXPECT_EQ(node->number_or("lost_deltas", 0), 1.0);
  EXPECT_EQ(node->number_or("events", 0), 2.0);
}

TEST(Telemetry, MergerToleratesReorderedDeltas) {
  // Arrival order 2, 0, 1: no gap once all three distinct deltas land, and
  // final/metrics stick no matter which chunk carried them.
  TelemetryMerger merger;
  TelemetryDelta d;
  d.node = 0;
  d.seq = 2;
  d.final_flush = true;
  d.metrics_json = "{}";
  merger.ingest(d);
  d = TelemetryDelta{};
  d.node = 0;
  d.seq = 0;
  merger.ingest(d);
  d.seq = 1;
  merger.ingest(d);
  EXPECT_TRUE(merger.node_final(0));
  const Json* node = merger.summary().find("nodes")->find("0");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->number_or("deltas", 0), 3.0);
  EXPECT_EQ(node->number_or("lost_deltas", 0), 0.0);
  EXPECT_EQ(node->number_or("dup_deltas", 0), 0.0);
}

TEST(Telemetry, AdminPortRidesDeltasAndSurvivesZeroUpdates) {
  TelemetryMerger merger;
  TelemetryDelta d;
  d.node = 3;
  d.seq = 0;
  d.admin_port = 9301;
  // The announcement survives the JSON codec...
  const TelemetryDelta decoded = telemetry_delta_from_json(telemetry_delta_to_json(d));
  EXPECT_EQ(decoded.admin_port, 9301);
  merger.ingest(decoded);
  EXPECT_EQ(merger.node_admin_port(3), 9301);
  // ...and a later delta without the field does not erase it.
  d.seq = 1;
  d.admin_port = 0;
  merger.ingest(d);
  EXPECT_EQ(merger.node_admin_port(3), 9301);
  EXPECT_EQ(merger.node_admin_port(7), 0);  // unseen node
  const Json* node = merger.summary().find("nodes")->find("3");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->number_or("admin_port", 0), 9301.0);
}

// --------------------------------------------------------- merged export

TEST(MergedTrace, EmitsOnePidPerNodeWithCrossProcessFlowArrows) {
  const std::uint64_t mid = causal_node_base(0) | 3;
  NodeTrace n0;
  n0.node = 0;
  n0.id = 7;
  n0.epoch_wall_us = 1000;
  n0.dropped = 2;
  n0.events = {ev(0, K::kStart, 0), ev(5, K::kBroadcast, 0, "POLLING", mid)};
  NodeTrace n1;
  n1.node = 1;
  n1.id = 7;
  n1.epoch_wall_us = 3000;
  n1.events = {ev(4, K::kDeliver, 1, "POLLING", mid)};
  const std::string j = merged_chrome_trace_json({n0, n1}, "unit");
  // Process lanes: metadata names both nodes, events carry their node's pid.
  EXPECT_EQ(count_of(j, "\"process_name\""), 2u);
  EXPECT_NE(j.find("node 0 id=7"), std::string::npos);
  EXPECT_NE(j.find("node 1 id=7"), std::string::npos);
  // The broadcast→deliver pair crosses pids as a flow arrow keyed by the
  // string lineage id.
  EXPECT_EQ(count_of(j, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(count_of(j, "\"ph\":\"f\""), 1u);
  EXPECT_GE(count_of(j, "\"id\":\"0:3\""), 2u);
  // Dropped accounting reaches otherData.
  EXPECT_NE(j.find("\"dropped_events\":2"), std::string::npos);
}

TEST(MergedTrace, RebasesLocalClocksOntoTheSharedTimeline) {
  NodeTrace n0;
  n0.node = 0;
  n0.epoch_wall_us = 500;
  n0.events = {ev(1, K::kStart, 0)};
  NodeTrace n1;
  n1.node = 1;
  n1.epoch_wall_us = 2500;
  n1.events = {ev(1, K::kStart, 1)};
  const std::string j = merged_chrome_trace_json({n0, n1}, "rebase");
  // min epoch is the origin: node 0's t=1ms lands at 1000µs, node 1's at
  // 2000 + 1000 = 3000µs.
  EXPECT_NE(j.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(j.find("\"ts\":3000"), std::string::npos);
}

}  // namespace
}  // namespace hds::obs
