// Multi-instance consensus: several independent slots share one node and
// one network, isolated by the instance tag — the building block of the
// replicated-log example.
#include <gtest/gtest.h>

#include <memory>

#include "consensus/harness.h"
#include "consensus/majority_homega.h"
#include "consensus/quorum_homega_hsigma.h"
#include "fd/oracles.h"
#include "sim/stacked_process.h"

namespace hds {
namespace {

TEST(MultiInstance, ThreeFig8SlotsDecideIndependently) {
  constexpr std::size_t kN = 5;
  constexpr int kSlots = 3;
  SystemConfig cfg;
  cfg.ids = ids_homonymous(kN, 2, 7);
  cfg.timing = std::make_unique<AsyncTiming>(1, 6);
  cfg.crashes = crashes_last_k(kN, 2, 40, 9);
  cfg.seed = 3;
  System sys(std::move(cfg));
  OracleHOmega fd(GroundTruth::from(sys), [&sys] { return sys.now(); }, 60);

  // cons[slot][proc]; slot s at proc i proposes 100*(s+1) + i.
  std::vector<std::vector<MajorityHOmegaConsensus*>> cons(kSlots,
                                                          std::vector<MajorityHOmegaConsensus*>(kN));
  for (ProcIndex i = 0; i < kN; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    for (int s = 0; s < kSlots; ++s) {
      MajorityConsensusConfig ccfg;
      ccfg.n = kN;
      ccfg.t = 2;
      ccfg.proposal = static_cast<Value>(100 * (s + 1) + static_cast<Value>(i));
      ccfg.instance = s;
      cons[s][i] = stack->add(std::make_unique<MajorityHOmegaConsensus>(ccfg, fd.handle(i)));
    }
    sys.set_process(i, std::move(stack));
  }
  sys.start();
  sys.run_until(30'000);

  const GroundTruth gt = GroundTruth::from(sys);
  for (int s = 0; s < kSlots; ++s) {
    std::vector<Value> proposals;
    std::vector<DecisionRecord> decisions;
    for (ProcIndex i = 0; i < kN; ++i) {
      proposals.push_back(static_cast<Value>(100 * (s + 1) + static_cast<Value>(i)));
      decisions.push_back(cons[s][i]->decision());
    }
    auto res = check_consensus(gt, proposals, decisions);
    EXPECT_TRUE(res.ok) << "slot " << s << ": " << res.detail;
    // Isolation: the decided value belongs to this slot's proposal band.
    for (const auto& d : decisions) {
      if (d.decided) {
        EXPECT_GE(d.value, 100 * (s + 1));
        EXPECT_LT(d.value, 100 * (s + 2));
      }
    }
  }
}

TEST(MultiInstance, Fig9SlotsAreIsolatedToo) {
  constexpr std::size_t kN = 4;
  constexpr int kSlots = 2;
  SystemConfig cfg;
  cfg.ids = ids_homonymous(kN, 2, 5);
  cfg.timing = std::make_unique<AsyncTiming>(1, 5);
  cfg.crashes = crashes_last_k(kN, 2, 30, 7);
  cfg.seed = 9;
  System sys(std::move(cfg));
  auto clock = [&sys] { return sys.now(); };
  OracleHOmega fd1(GroundTruth::from(sys), clock, 50);
  OracleHSigma fd2(GroundTruth::from(sys), clock, 70);

  std::vector<std::vector<QuorumConsensus*>> cons(kSlots, std::vector<QuorumConsensus*>(kN));
  for (ProcIndex i = 0; i < kN; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    for (int s = 0; s < kSlots; ++s) {
      QuorumConsensusConfig ccfg;
      ccfg.proposal = static_cast<Value>(1000 * (s + 1) + static_cast<Value>(i));
      ccfg.instance = s;
      cons[s][i] = stack->add(std::make_unique<QuorumConsensus>(ccfg, fd1.handle(i), fd2.handle(i)));
    }
    sys.set_process(i, std::move(stack));
  }
  sys.start();
  sys.run_until(30'000);

  const GroundTruth gt = GroundTruth::from(sys);
  for (int s = 0; s < kSlots; ++s) {
    std::vector<Value> proposals;
    std::vector<DecisionRecord> decisions;
    for (ProcIndex i = 0; i < kN; ++i) {
      proposals.push_back(static_cast<Value>(1000 * (s + 1) + static_cast<Value>(i)));
      decisions.push_back(cons[s][i]->decision());
    }
    auto res = check_consensus(gt, proposals, decisions);
    EXPECT_TRUE(res.ok) << "slot " << s << ": " << res.detail;
  }
}

TEST(MultiInstance, HarnessInstanceTagIsPureNamespacing) {
  // The repeated-consensus entry point: Fig8OracleParams.instance stamps the
  // slot number on every engine and message of the run. The tag must be
  // invisible to the protocol — same seed, different slot numbers, identical
  // decisions — so a replicated log can replay any single slot in isolation.
  const auto run_slot = [](std::int64_t slot) {
    Fig8OracleParams p;
    p.ids = ids_homonymous(5, 3, 11);
    p.t_known = 2;
    p.crashes = crashes_last_k(5, 1, 50);
    p.fd_stabilize = 80;
    p.seed = 21;
    p.max_time = 60'000;
    p.instance = slot;
    return run_fig8_with_oracle(p);
  };
  const ConsensusRunResult a = run_slot(0);
  const ConsensusRunResult b = run_slot(7);
  EXPECT_TRUE(a.check.ok) << a.check.detail;
  EXPECT_TRUE(b.check.ok) << b.check.detail;
  ASSERT_TRUE(a.all_correct_decided);
  ASSERT_TRUE(b.all_correct_decided);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].decided, b.decisions[i].decided) << "proc " << i;
    if (a.decisions[i].decided && b.decisions[i].decided) {
      EXPECT_EQ(a.decisions[i].value, b.decisions[i].value) << "proc " << i;
    }
  }
  EXPECT_EQ(a.broadcasts, b.broadcasts);
}

TEST(MultiInstance, ForeignInstanceDecideIsIgnored) {
  // A DECIDE tagged for another instance must not decide this one.
  class FixedOmega final : public HOmegaHandle {
   public:
    [[nodiscard]] HOmegaOut h_omega() const override { return {9, 1}; }
  };
  FixedOmega fd;
  MajorityConsensusConfig ccfg;
  ccfg.n = 3;
  ccfg.t = 1;
  ccfg.proposal = 1;
  ccfg.instance = 2;
  MajorityHOmegaConsensus c(ccfg, fd);
  SystemConfig scfg;
  scfg.ids = {1};
  scfg.timing = std::make_unique<AsyncTiming>(1, 1);
  System sys(std::move(scfg));
  c.on_start(sys.env(0));
  c.on_message(sys.env(0), make_message(kDecideType, DecideMsg{42, /*instance=*/1}));
  EXPECT_FALSE(c.decision().decided);
  c.on_message(sys.env(0), make_message(kDecideType, DecideMsg{42, /*instance=*/2}));
  EXPECT_TRUE(c.decision().decided);
}

}  // namespace
}  // namespace hds
