// Tests of protocol stacking: message fan-out to all components, timer
// routing to the arming component.
#include "sim/stacked_process.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/system.h"

namespace hds {
namespace {

struct Tick {};

class Component final : public Process {
 public:
  explicit Component(SimTime delay) : delay_(delay) {}
  void on_start(Env& env) override { env.set_timer(delay_); }
  void on_message(Env&, const Message& m) override { seen.push_back(m.type); }
  void on_timer(Env& env, TimerId) override {
    ++timer_count;
    timer_at = env.local_now();
  }
  SimTime delay_;
  std::vector<std::string> seen;
  int timer_count = 0;
  SimTime timer_at = -1;
};

class Sender final : public Process {
 public:
  void on_start(Env& env) override { env.broadcast(make_message("TICK", Tick{})); }
};

TEST(StackedProcess, MessagesReachEveryComponentTimersOnlyTheirOwner) {
  SystemConfig cfg;
  cfg.ids = {1, 2};
  cfg.timing = std::make_unique<AsyncTiming>(1, 1);
  System sys(std::move(cfg));

  auto stack = std::make_unique<StackedProcess>();
  auto* a = stack->add(std::make_unique<Component>(5));
  auto* b = stack->add(std::make_unique<Component>(9));
  sys.set_process(0, std::move(stack));
  sys.set_process(1, std::make_unique<Sender>());
  sys.start();
  sys.run_until(20);

  EXPECT_EQ(a->seen, std::vector<std::string>{"TICK"});
  EXPECT_EQ(b->seen, std::vector<std::string>{"TICK"});
  EXPECT_EQ(a->timer_count, 1);
  EXPECT_EQ(b->timer_count, 1);
  EXPECT_EQ(a->timer_at, 5);
  EXPECT_EQ(b->timer_at, 9);
}

TEST(StackedProcess, ComponentsShareTheNodeIdentity) {
  class IdProbe final : public Process {
   public:
    void on_start(Env& env) override { seen_id = env.self_id(); }
    Id seen_id = 0;
  };
  SystemConfig cfg;
  cfg.ids = {42};
  cfg.timing = std::make_unique<AsyncTiming>(1, 1);
  System sys(std::move(cfg));
  auto stack = std::make_unique<StackedProcess>();
  auto* p1 = stack->add(std::make_unique<IdProbe>());
  auto* p2 = stack->add(std::make_unique<IdProbe>());
  sys.set_process(0, std::move(stack));
  sys.start();
  sys.run_until(1);
  EXPECT_EQ(p1->seen_id, 42u);
  EXPECT_EQ(p2->seen_id, 42u);
}

TEST(StackedProcess, RepeatingTimersKeepRouting) {
  class Repeater final : public Process {
   public:
    void on_start(Env& env) override { env.set_timer(2); }
    void on_timer(Env& env, TimerId) override {
      ++count;
      if (count < 5) env.set_timer(2);
    }
    int count = 0;
  };
  SystemConfig cfg;
  cfg.ids = {1};
  cfg.timing = std::make_unique<AsyncTiming>(1, 1);
  System sys(std::move(cfg));
  auto stack = std::make_unique<StackedProcess>();
  auto* r = stack->add(std::make_unique<Repeater>());
  auto* other = stack->add(std::make_unique<Component>(100));
  sys.set_process(0, std::move(stack));
  sys.start();
  sys.run_until(50);
  EXPECT_EQ(r->count, 5);
  EXPECT_EQ(other->timer_count, 0);  // its 100-tick timer hasn't fired
}

}  // namespace
}  // namespace hds
