// AP (anonymous perfect detector) property tests: anap over-approximates
// the alive count at all times and converges to |Correct| — in the
// lock-step engine and through the event-engine adapter.
#include "fd/impl/ap_sync.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "consensus/harness.h"
#include "spec/fd_checkers.h"

namespace hds {
namespace {

struct SyncRun {
  std::unique_ptr<SyncSystem> sys;
  std::vector<APSyncProcess*> fds;
};

SyncRun run_ap(std::size_t n, std::size_t crash_k, std::size_t crash_step, bool partial,
               std::size_t steps, std::uint64_t seed) {
  SyncConfig cfg;
  cfg.ids = ids_anonymous(n);
  if (crash_k > 0) cfg.crashes = sync_crashes_last_k(n, crash_k, crash_step, 1, partial);
  cfg.seed = seed;
  SyncRun r;
  r.sys = std::make_unique<SyncSystem>(std::move(cfg));
  for (ProcIndex i = 0; i < n; ++i) {
    auto fd = std::make_unique<APSyncProcess>();
    r.fds.push_back(fd.get());
    r.sys->set_process(i, std::move(fd));
  }
  r.sys->run_steps(steps);
  return r;
}

TEST(APSync, NoCrashesCountsN) {
  auto r = run_ap(6, 0, 0, false, 5, 1);
  for (auto* fd : r.fds) EXPECT_EQ(fd->anap(), 6u);
}

TEST(APSync, BootstrapValueIsInfinity) {
  APSyncProcess fd;
  EXPECT_EQ(fd.anap(), std::numeric_limits<std::size_t>::max());
}

TEST(APSync, ConvergesToCorrectCountAfterCrashes) {
  auto r = run_ap(6, 3, 1, false, 10, 2);
  for (ProcIndex i = 0; i < 6; ++i) {
    if (r.sys->is_correct(i)) {
      EXPECT_EQ(r.fds[i]->anap(), 3u);
    }
  }
}

struct ApSweep : ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, bool, int>> {};

TEST_P(ApSweep, SafetyAndLiveness) {
  auto [n, crash_k, partial, seed] = GetParam();
  if (crash_k >= n) GTEST_SKIP();
  const std::size_t steps = 12;
  auto r = run_ap(n, crash_k, 1, partial, steps, static_cast<std::uint64_t>(seed));
  const GroundTruth gt = GroundTruth::from(*r.sys);
  std::vector<const Trajectory<std::size_t>*> traces;
  for (auto* fd : r.fds) traces.push_back(&fd->core().trace());
  auto alive = [&](SimTime t) {
    return r.sys->alive_count_in_step(static_cast<std::size_t>(std::max<SimTime>(t, 0)));
  };
  auto res = check_ap(gt, traces, alive, static_cast<SimTime>(steps), 2);
  EXPECT_TRUE(res.ok) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ApSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(2, 5, 8),
                                            ::testing::Values<std::size_t>(0, 1, 4),
                                            ::testing::Bool(), ::testing::Values(1, 2, 3)));

TEST(APComponent, EventEngineAdapterConverges) {
  SystemConfig cfg;
  cfg.ids = ids_anonymous(5);
  cfg.timing = std::make_unique<BoundedTiming>(2);
  cfg.crashes = crashes_last_k(5, 2, 10);
  cfg.seed = 4;
  System sys(std::move(cfg));
  std::vector<APComponent*> fds;
  for (ProcIndex i = 0; i < 5; ++i) {
    auto fd = std::make_unique<APComponent>(3);
    fds.push_back(fd.get());
    sys.set_process(i, std::move(fd));
  }
  sys.start();
  sys.run_until(200);
  for (ProcIndex i = 0; i < 5; ++i) {
    if (sys.is_correct(i)) {
      EXPECT_EQ(fds[i]->anap(), 3u);
    }
  }
  // Safety at every recorded point, against the event clock.
  const GroundTruth gt = GroundTruth::from(sys);
  std::vector<const Trajectory<std::size_t>*> traces;
  for (auto* fd : fds) traces.push_back(&fd->core().trace());
  auto res = check_ap(gt, traces, [&](SimTime t) { return sys.alive_count_at(t); }, 200, 20);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(APComponent, PartialSynchronyBreaksSafety) {
  // The paper (Section 1/3): AP is implementable in anonymous *synchronous*
  // systems but "it is easy to show that it cannot be implemented in most of
  // partially synchronous systems". Executable evidence: run the counting
  // construction under pre-GST message loss — step counts undershoot the
  // true alive count and the AP safety checker flags it.
  SystemConfig cfg;
  cfg.ids = ids_anonymous(6);
  cfg.timing = std::make_unique<PartialSyncTiming>(PartialSyncTiming::Params{
      .gst = 300, .delta = 2, .pre_gst_loss = 0.6, .pre_gst_max_delay = 2});
  cfg.seed = 5;
  System sys(std::move(cfg));
  std::vector<APComponent*> fds;
  for (ProcIndex i = 0; i < 6; ++i) {
    auto fd = std::make_unique<APComponent>(3);
    fds.push_back(fd.get());
    sys.set_process(i, std::move(fd));
  }
  sys.start();
  sys.run_until(400);
  const GroundTruth gt = GroundTruth::from(sys);
  std::vector<const Trajectory<std::size_t>*> traces;
  for (auto* fd : fds) traces.push_back(&fd->core().trace());
  auto res = check_ap(gt, traces, [&](SimTime t) { return sys.alive_count_at(t); }, 400, 40);
  EXPECT_FALSE(res.ok);  // safety (anap >= alive) violated before GST
}

}  // namespace
}  // namespace hds
