// Tests of the metrics layer: instrument semantics, registry identity and
// lookup, bucket layouts, JSON snapshot shape, and the null-safe helpers
// that make disabled observability free.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sim/system.h"

namespace hds {
namespace {

using obs::Labels;

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndSetMax) {
  obs::Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.set_max(3);  // lower value must not win
  EXPECT_EQ(g.value(), 7);
  g.set_max(19);
  EXPECT_EQ(g.value(), 19);
  g.set(-5);  // plain set always wins
  EXPECT_EQ(g.value(), -5);
}

TEST(Histogram, PlacesValuesInInclusiveUpperBoundBuckets) {
  obs::Histogram h({1, 2, 4});
  h.observe(0);   // <= 1
  h.observe(1);   // <= 1
  h.observe(2);   // <= 2
  h.observe(3);   // <= 4
  h.observe(4);   // <= 4
  h.observe(99);  // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 4 + 99);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum()) / 6.0);
}

TEST(Histogram, QuantileInterpolatesInsideTheBucket) {
  obs::Histogram h({10, 20, 40});
  for (int i = 0; i < 10; ++i) h.observe(5);  // all land in the first bucket
  // First bucket interpolates from 0 toward its bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);

  obs::Histogram h2({10, 20, 40});
  for (int i = 0; i < 5; ++i) h2.observe(5);    // bucket <=10
  for (int i = 0; i < 5; ++i) h2.observe(15);   // bucket <=20
  // Rank 0.75 lands halfway through the second bucket: 10 + 0.5 * (20-10).
  EXPECT_DOUBLE_EQ(h2.quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h2.quantile(0.25), 5.0);
}

TEST(Histogram, QuantileClampsOverflowAndHandlesEmpty) {
  obs::Histogram h({10, 20, 40});
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);  // empty
  h.observe(1000);                          // overflow bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 40.0);  // clamps to the last bound
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 40.0);
}

TEST(Histogram, TailQuantilesOnSaturatedOverflowBucket) {
  // The saturated-layout edge: the overflow bucket dominates, so every tail
  // quantile that ranks into it must clamp to the last bound — never
  // extrapolate past the layout, never NaN, never fall back to 0. Pins the
  // behavior the window-QoS gauges and summarize() rely on when a latency
  // series outgrows its buckets.
  obs::Histogram h({10, 20, 40});
  for (int i = 0; i < 10; ++i) h.observe(5);       // 1% in-range
  for (int i = 0; i < 990; ++i) h.observe(10000);  // 99% overflow
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 40.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 40.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 40.0);
  // The p0.01 rank exactly exhausts the first bucket; the boundary rank
  // belongs to the lower bucket (cumulative >= rank), giving its bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.01), 10.0);
  // Out-of-range q clamps instead of reading past the bucket array.
  EXPECT_DOUBLE_EQ(h.quantile(1.5), 40.0);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));

  // Fully saturated: a single overflow observation at every rank.
  obs::Histogram all_over({10, 20, 40});
  for (int i = 0; i < 3; ++i) all_over.observe(1 << 20);
  const obs::HistogramSummary s = obs::summarize(all_over);
  EXPECT_DOUBLE_EQ(s.p50, 40.0);
  EXPECT_DOUBLE_EQ(s.p95, 40.0);
  EXPECT_DOUBLE_EQ(s.p99, 40.0);
  EXPECT_DOUBLE_EQ(all_over.quantile(0.0), 40.0);
}

TEST(Histogram, SummarizeDigestsCountSumAndPercentiles) {
  obs::Histogram h({10, 20, 40});
  for (int i = 0; i < 100; ++i) h.observe(5);
  const obs::HistogramSummary s = obs::summarize(h);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 500);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
  EXPECT_DOUBLE_EQ(s.p95, 9.5);
  EXPECT_DOUBLE_EQ(s.p99, 9.9);
}

TEST(Buckets, LatencyLayoutIsPowersOfTwoPlusMidpoints) {
  const std::vector<std::int64_t>& b = obs::latency_buckets();
  EXPECT_EQ(b.front(), 1);
  EXPECT_EQ(b.back(), 1 << 20);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  for (std::int64_t v : {3, 6, 12, 24, 48, 96}) {
    EXPECT_NE(std::find(b.begin(), b.end(), v), b.end()) << "missing midpoint " << v;
  }
}

TEST(Buckets, ExpAndLinearLayouts) {
  EXPECT_EQ(obs::exp_buckets(1, 8), (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(obs::exp_buckets(1, 5), (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(obs::linear_buckets(1, 1, 4), (std::vector<std::int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(obs::time_buckets().front(), 1);
  EXPECT_EQ(obs::time_buckets().back(), 65536);
  EXPECT_EQ(obs::size_buckets().front(), 1);
  EXPECT_EQ(obs::size_buckets().back(), 64);
}

TEST(MetricsRegistry, SameNameAndLabelsReturnsSameInstrument) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x", {{"proc", "0"}});
  obs::Counter& b = reg.counter("x", {{"proc", "0"}});
  obs::Counter& c = reg.counter("x", {{"proc", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(3);
  c.inc(4);
  EXPECT_EQ(reg.counter_total("x"), 7u);
  EXPECT_EQ(reg.counter_total("missing"), 0u);
}

TEST(MetricsRegistry, FindWithoutCreating) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("c"), nullptr);
  reg.counter("c").inc();
  ASSERT_NE(reg.find_counter("c"), nullptr);
  EXPECT_EQ(reg.find_counter("c")->value(), 1u);
  EXPECT_EQ(reg.find_gauge("g"), nullptr);
  reg.gauge("g").set(5);
  ASSERT_NE(reg.find_gauge("g"), nullptr);
  EXPECT_EQ(reg.find_histogram("h"), nullptr);
  reg.histogram("h", obs::size_buckets()).observe(2);
  ASSERT_NE(reg.find_histogram("h"), nullptr);
  EXPECT_EQ(reg.series_count(), 3u);
}

TEST(MetricsRegistry, HistogramLayoutFixedOnFirstCreation) {
  obs::MetricsRegistry reg;
  obs::Histogram& h1 = reg.histogram("lat", {1, 2});
  obs::Histogram& h2 = reg.histogram("lat", {10, 20, 30});  // layout ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<std::int64_t>{1, 2}));
}

TEST(MetricsRegistry, ToJsonCarriesEverySeries) {
  obs::MetricsRegistry reg;
  reg.counter("msgs", {{"type", "PH1"}}).inc(5);
  reg.gauge("decide_at").set(120);
  reg.histogram("quorum", {1, 2}).observe(2);
  const std::string j = reg.to_json();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"msgs\""), std::string::npos);
  EXPECT_NE(j.find("\"type\":\"PH1\""), std::string::npos);
  EXPECT_NE(j.find("\"value\":5"), std::string::npos);
  EXPECT_NE(j.find("\"decide_at\""), std::string::npos);
  EXPECT_NE(j.find("\"le\":null"), std::string::npos);  // overflow bucket
}

TEST(NullSafeHelpers, NoOpOnNullptr) {
  obs::inc(nullptr);
  obs::inc(nullptr, 10);
  obs::set(nullptr, 1);
  obs::set_max(nullptr, 1);
  obs::observe(nullptr, 1);
  obs::Counter c;
  obs::inc(&c, 2);
  EXPECT_EQ(c.value(), 2u);
}

// End-to-end: a simulated run with a registry attached populates the
// substrate series; the same run without one works identically.
struct Chatter final : Process {
  void on_start(Env& env) override {
    env.broadcast(make_message("CHAT", 0));
    env.set_timer(5);
  }
  void on_timer(Env&, TimerId) override {}
  void on_message(Env&, const Message&) override {}
};

TEST(MetricsRegistry, SimSystemPopulatesNetworkSeries) {
  obs::MetricsRegistry reg;
  SystemConfig cfg;
  cfg.ids = {1, 2, 3};
  cfg.timing = std::make_unique<AsyncTiming>(1, 2);
  cfg.seed = 4;
  cfg.metrics = &reg;
  System sys(std::move(cfg));
  for (ProcIndex i = 0; i < 3; ++i) sys.set_process(i, std::make_unique<Chatter>());
  sys.start();
  sys.run_until(20);
  const auto stats = sys.net_stats();
  EXPECT_EQ(reg.counter_total("net_broadcasts_total"), stats.broadcasts);
  EXPECT_EQ(reg.counter_total("net_copies_delivered_total"), stats.copies_delivered);
  ASSERT_NE(reg.find_counter("net_broadcasts_total", {{"type", "CHAT"}}), nullptr);
  EXPECT_EQ(reg.find_counter("net_broadcasts_total", {{"type", "CHAT"}})->value(), 3u);
  ASSERT_NE(reg.find_counter("sim_timer_fires_total"), nullptr);
  EXPECT_GT(reg.find_counter("sim_timer_fires_total")->value(), 0u);
  const obs::Histogram* lat = reg.find_histogram("net_delivery_latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), stats.copies_delivered);
}

}  // namespace
}  // namespace hds
