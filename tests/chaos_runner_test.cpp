// Chaos runner tests: the admissibility envelopes, clean runs of admissible
// plans per stack, the deliberate violation demo, the shrinker, and the
// repro JSON round trip + deterministic replay.
#include "chaos/runner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/shrink.h"
#include "common/rng.h"
#include "obs/json.h"

namespace hds::chaos {
namespace {

ChaosCase base_case(StackKind stack) {
  ChaosCase c;
  c.stack = stack;
  c.n = 5;
  c.distinct = 3;
  c.gst = 150;
  c.delta = 3;
  c.seed = 42;
  return c;
}

FaultClause healed_partition(SimTime until) {
  FaultClause cl;
  cl.kind = ClauseKind::kPartition;
  cl.links.src = {0};
  cl.links.dst = {1};
  cl.until = until;
  return cl;
}

TEST(ChaosAdmissibility, Fig6AcceptsHealedLinkFaultsRejectsUnhealed) {
  ChaosCase c = base_case(StackKind::kFig6);
  EXPECT_TRUE(admissible(c));  // empty plan
  c.plan.clauses = {healed_partition(100)};
  EXPECT_TRUE(admissible(c));
  c.plan.clauses = {healed_partition(c.gst + 1)};  // heals after GST
  EXPECT_FALSE(admissible(c));
  c.plan.clauses = {healed_partition(-1)};  // never heals
  EXPECT_FALSE(admissible(c));
}

TEST(ChaosAdmissibility, Fig6BoundsCrashes) {
  ChaosCase c = base_case(StackKind::kFig6);
  c.crash_k = c.n - 2;
  c.crash_at = 100;
  EXPECT_TRUE(admissible(c));
  c.crash_k = c.n - 1;  // fewer than 2 survivors
  EXPECT_FALSE(admissible(c));
  c.crash_k = 1;
  c.crash_at = c.run_for;  // too late for the convergence tail
  EXPECT_FALSE(admissible(c));
}

TEST(ChaosAdmissibility, Fig8RejectsLossPartitionAndDuplication) {
  // Fig. 8 inherits HAS reliable links: only delay/reorder shaping is
  // admissible; loss, partition and duplication clauses are findings.
  ChaosCase c = base_case(StackKind::kFig8);
  EXPECT_TRUE(admissible(c));
  FaultClause cl;
  cl.until = 100;
  for (ClauseKind bad : {ClauseKind::kLoss, ClauseKind::kPartition, ClauseKind::kDuplicate}) {
    cl.kind = bad;
    c.plan.clauses = {cl};
    EXPECT_FALSE(admissible(c)) << kind_name(bad);
  }
  cl.kind = ClauseKind::kDelay;
  cl.delay = 2;
  c.plan.clauses = {cl};
  EXPECT_TRUE(admissible(c));
  c.plan.clauses[0].until = c.gst + 50;  // must heal by GST
  EXPECT_FALSE(admissible(c));
}

TEST(ChaosAdmissibility, Fig8ReliableAdmitsLossAndDuplicationButNeverPartition) {
  // Behind the ARQ emulator the HAS reliable-link assumption is restored by
  // retransmission/dedup, so pre-GST loss and duplication re-enter the
  // envelope. A total partition is a different model and stays a finding.
  ChaosCase c = base_case(StackKind::kFig8);
  c.reliable = true;
  EXPECT_TRUE(admissible(c));
  FaultClause cl;
  cl.until = 100;
  for (ClauseKind kind : {ClauseKind::kLoss, ClauseKind::kDuplicate}) {
    cl.kind = kind;
    cl.prob = 0.5;
    c.plan.clauses = {cl};
    EXPECT_TRUE(admissible(c)) << kind_name(kind);
    c.plan.clauses[0].until = c.gst + 50;  // still must heal by GST
    EXPECT_FALSE(admissible(c)) << kind_name(kind);
    c.plan.clauses[0].until = 100;
  }
  cl.kind = ClauseKind::kPartition;
  c.plan.clauses = {cl};
  EXPECT_FALSE(admissible(c));
}

TEST(ChaosAdmissibility, Fig8BoundsCrashBudgetByT) {
  ChaosCase c = base_case(StackKind::kFig8);  // n=5, t=2
  c.crash_k = 2;
  c.crash_at = 500;
  EXPECT_TRUE(admissible(c));
  FaultClause trig;
  trig.kind = ClauseKind::kCrashOnLeaderChange;
  trig.count = 1;
  c.plan.clauses = {trig};  // total budget 3 > t
  EXPECT_FALSE(admissible(c));
}

TEST(ChaosAdmissibility, SmrInheritsFig8LinkRulesAndBoundsCrashesToLoadWindow) {
  // The replicated log settles contested slots through Fig. 8 instances, so
  // its link envelope is fig8's: delay/reorder healing by GST; loss and
  // duplication only behind the ARQ emulator; partitions never.
  ChaosCase c = base_case(StackKind::kSmr);
  EXPECT_TRUE(admissible(c));
  FaultClause cl;
  cl.until = 100;
  for (ClauseKind bad : {ClauseKind::kLoss, ClauseKind::kPartition, ClauseKind::kDuplicate}) {
    cl.kind = bad;
    c.plan.clauses = {cl};
    EXPECT_FALSE(admissible(c)) << kind_name(bad);
  }
  c.reliable = true;
  cl.kind = ClauseKind::kLoss;
  cl.prob = 0.4;
  c.plan.clauses = {cl};
  EXPECT_TRUE(admissible(c));
  cl.kind = ClauseKind::kPartition;
  c.plan.clauses = {cl};
  EXPECT_FALSE(admissible(c));  // a total cut is a different model, ARQ or not
  c.plan.clauses.clear();
  c.crash_k = 2;  // t = (5-1)/2 = 2
  c.crash_at = c.run_for / 2;
  EXPECT_TRUE(admissible(c));
  c.crash_k = 3;  // beyond t
  EXPECT_FALSE(admissible(c));
  c.crash_k = 1;
  c.crash_at = c.run_for;  // after the load window: no convergence tail
  EXPECT_FALSE(admissible(c));
  c.crash_at = 100;
  c.max_time = c.run_for;  // no linger headroom
  EXPECT_FALSE(admissible(c));
}

TEST(ChaosAdmissibility, Fig9RejectsAllLinkClausesAllowsManyCrashes) {
  ChaosCase c = base_case(StackKind::kFig9);
  c.crash_k = c.n - 2;  // beyond any majority bound; fine for Fig. 9
  c.crash_at = 500;
  EXPECT_TRUE(admissible(c));
  FaultClause cl;
  cl.kind = ClauseKind::kDelay;
  cl.delay = 1;
  cl.until = 10;
  c.plan.clauses = {cl};
  EXPECT_FALSE(admissible(c));  // synchronous model: no link shaping at all
}

TEST(ChaosRunner, RandomCasesAreAdmissible) {
  Rng rng(99);
  for (StackKind s : {StackKind::kFig6, StackKind::kFig8, StackKind::kFig9, StackKind::kSmr}) {
    for (int k = 0; k < 25; ++k) {
      const ChaosCase c = random_admissible_case(rng, s);
      EXPECT_TRUE(admissible(c)) << stack_name(s) << " draw " << k;
    }
  }
}

TEST(ChaosRunner, AdmissibleFig6PlanPassesAllChecks) {
  ChaosCase c = base_case(StackKind::kFig6);
  c.plan.clauses = {healed_partition(120)};
  FaultClause jitter;
  jitter.kind = ClauseKind::kReorder;
  jitter.delay = 4;
  jitter.until = 140;
  c.plan.clauses.push_back(jitter);
  ASSERT_TRUE(admissible(c));
  const ChaosOutcome out = run_chaos_case(c);
  EXPECT_TRUE(out.ok) << (out.violations.empty() ? "" : out.violations.front());
}

TEST(ChaosRunner, AdmissibleFig9CrashStormPassesAllChecks) {
  ChaosCase c = base_case(StackKind::kFig9);
  c.crash_k = 2;
  c.crash_at = 400;
  FaultClause trig;
  trig.kind = ClauseKind::kCrashOnQuorum;
  trig.count = 1;
  trig.until = c.max_time / 2;
  c.plan.clauses = {trig};
  ASSERT_TRUE(admissible(c));
  const ChaosOutcome out = run_chaos_case(c);
  EXPECT_TRUE(out.ok) << (out.violations.empty() ? "" : out.violations.front());
}

TEST(ChaosRunner, ReliableFig8SurvivesTheLossPlanThatWedgesBareFig8) {
  // The exact parameters of tests/repros/fig8_loss_wedge.json — the fuzzer
  // finding that permanently wedged bare Fig. 8 (no retransmission, so
  // ~56% pre-GST loss starves phase quora). With the ARQ emulator the same
  // adversarial plan must decide cleanly.
  ChaosCase c;
  c.stack = StackKind::kFig8;
  c.n = 6;
  c.distinct = 5;
  c.gst = 206;
  c.delta = 3;
  c.seed = 428144;
  c.reliable = true;
  FaultClause loss;
  loss.kind = ClauseKind::kLoss;
  loss.prob = 0.56092635828853066;
  loss.until = 145;
  loss.from = 39;
  c.plan.clauses = {loss};
  ASSERT_TRUE(admissible(c));
  const ChaosOutcome out = run_chaos_case(c);
  EXPECT_TRUE(out.ok) << (out.violations.empty() ? "" : out.violations.front());
  EXPECT_GT(out.copies_dropped, 0u);  // the injector really did fire
}

TEST(ChaosRunner, SmrLeaderChangeDuringBatchConverges) {
  // The exact parameters of tests/repros/smr_leader_change.json: the serving
  // leader is crashed by the leader-change trigger while client batches are
  // in flight, forcing epoch recovery mid-stream. Survivors must still
  // converge on one log (liveness) without ever forking a slot (prefix).
  ChaosCase c = base_case(StackKind::kSmr);
  FaultClause trig;
  trig.kind = ClauseKind::kCrashOnLeaderChange;
  trig.count = 1;
  trig.until = c.run_for / 2;
  c.plan.clauses = {trig};
  ASSERT_TRUE(admissible(c));
  const ChaosOutcome out = run_chaos_case(c);
  EXPECT_EQ(out.injected_crashes, 1u);
  EXPECT_TRUE(out.ok) << (out.violations.empty() ? "" : out.violations.front());
}

TEST(ChaosRunner, EventTriggeredLeaderCrashFiresInsideFig6Run) {
  ChaosCase c = base_case(StackKind::kFig6);
  FaultClause trig;
  trig.kind = ClauseKind::kCrashOnLeaderChange;
  trig.count = 1;
  trig.until = c.run_for / 2;
  c.plan.clauses = {trig};
  ASSERT_TRUE(admissible(c));
  const ChaosOutcome out = run_chaos_case(c);
  // The first HΩ election trips the trigger; the detector properties must
  // still hold against the post-crash ground truth.
  EXPECT_EQ(out.injected_crashes, 1u);
  EXPECT_TRUE(out.ok) << (out.violations.empty() ? "" : out.violations.front());
}

TEST(ChaosRunner, DemoViolationIsCaughtAndShrinksSmall) {
  const ChaosCase demo = violation_demo_case();
  EXPECT_FALSE(admissible(demo));
  const ChaosOutcome out = run_chaos_case(demo);
  ASSERT_FALSE(out.ok);
  const std::vector<std::string> tags = out.violation_tags();
  EXPECT_NE(std::find(tags.begin(), tags.end(), "consensus"), tags.end());

  const ShrinkResult sh = shrink_case(demo);
  EXPECT_LE(sh.reduced.plan.clauses.size(), 3u);
  EXPECT_LT(sh.reduced.plan.clauses.size(), demo.plan.clauses.size());
  ASSERT_FALSE(sh.outcome.ok);
  // The shrunken case fails for an overlapping reason.
  const std::vector<std::string> shrunk_tags = sh.outcome.violation_tags();
  bool overlap = false;
  for (const std::string& t : shrunk_tags) {
    overlap = overlap || std::find(tags.begin(), tags.end(), t) != tags.end();
  }
  EXPECT_TRUE(overlap);
}

TEST(ChaosRunner, ShrinkRejectsPassingCase) {
  const ChaosCase c = base_case(StackKind::kFig6);
  EXPECT_THROW(shrink_case(c), std::invalid_argument);
}

TEST(ChaosRunner, CaseJsonRoundTrip) {
  ChaosCase c = base_case(StackKind::kFig8);
  c.crash_k = 1;
  c.crash_at = 300;
  FaultClause slow;
  slow.kind = ClauseKind::kDelay;
  slow.delay = 2;
  slow.until = 90;
  c.plan.clauses = {slow};
  EXPECT_EQ(ChaosCase::from_json(c.to_json()), c);
  EXPECT_EQ(ChaosCase::from_json(obs::Json::parse(c.to_json().dump(2))), c);

  // `reliable` round-trips, and is serialized only when set — existing
  // repro files (and their byte-exact expectations) never see the key.
  EXPECT_EQ(c.to_json().find("reliable"), nullptr);
  c.reliable = true;
  const ChaosCase back = ChaosCase::from_json(obs::Json::parse(c.to_json().dump(2)));
  EXPECT_TRUE(back.reliable);
  EXPECT_EQ(back, c);
}

TEST(ChaosRunner, ReproRoundTripAndDeterministicReplay) {
  const ChaosCase demo = violation_demo_case();
  const ChaosOutcome out = run_chaos_case(demo);
  ASSERT_FALSE(out.ok);

  const obs::Json j = repro_to_json(demo, out);
  const Repro r = parse_repro(obs::Json::parse(j.dump(2)));
  EXPECT_EQ(r.c, demo);
  EXPECT_TRUE(r.violated);
  EXPECT_EQ(r.tags, out.violation_tags());

  const ReplayResult rep = replay_repro(r);
  EXPECT_TRUE(rep.match);
  EXPECT_EQ(rep.outcome.violation_tags(), r.tags);
}

TEST(ChaosRunner, ReplayDetectsTagMismatch) {
  const ChaosCase demo = violation_demo_case();
  const ChaosOutcome out = run_chaos_case(demo);
  Repro r = parse_repro(repro_to_json(demo, out));
  r.tags.push_back("zz-not-a-real-tag");
  EXPECT_FALSE(replay_repro(r).match);
}

TEST(ChaosRunner, ParseReproRejectsWrongSchema) {
  const ChaosCase demo = violation_demo_case();
  const ChaosOutcome out = run_chaos_case(demo);
  obs::Json j = repro_to_json(demo, out);
  j["schema"] = obs::Json("hds-chaos-repro-v999");
  EXPECT_THROW(parse_repro(j), std::invalid_argument);
}

}  // namespace
}  // namespace hds::chaos
