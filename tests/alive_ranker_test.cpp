// Figure 3 (class S) property tests: eventually the correct identifiers
// permanently occupy the prefix of every correct process's alive list.
#include "fd/impl/alive_ranker.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "fd/ground_truth.h"
#include "sim/system.h"
#include "spec/fd_checkers.h"

namespace hds {
namespace {

struct Run {
  std::unique_ptr<System> sys;
  std::vector<AliveRanker*> fds;
};

Run run_ranker(std::size_t n, std::size_t crash_k, SimTime crash_at, std::uint64_t seed,
               SimTime run_for) {
  SystemConfig cfg;
  for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
  cfg.timing = std::make_unique<AsyncTiming>(1, 6);
  cfg.crashes.resize(n);
  for (std::size_t j = 0; j < crash_k; ++j) cfg.crashes[n - 1 - j] = CrashPlan{crash_at};
  cfg.seed = seed;
  Run r;
  r.sys = std::make_unique<System>(std::move(cfg));
  for (ProcIndex i = 0; i < n; ++i) {
    auto fd = std::make_unique<AliveRanker>(5);
    r.fds.push_back(fd.get());
    r.sys->set_process(i, std::move(fd));
  }
  r.sys->start();
  r.sys->run_until(run_for);
  return r;
}

TEST(AliveRanker, NoCrashesEveryoneListsEveryone) {
  auto r = run_ranker(5, 0, 0, 1, 300);
  for (auto* fd : r.fds) {
    auto list = fd->alive_list();
    EXPECT_EQ(list.size(), 5u);
  }
}

TEST(AliveRanker, CrashedIdsSinkBelowCorrectOnes) {
  auto r = run_ranker(6, 2, 40, 2, 1000);
  const GroundTruth gt = GroundTruth::from(*r.sys);
  std::vector<const Trajectory<std::vector<Id>>*> traces;
  for (auto* fd : r.fds) traces.push_back(&fd->trace());
  auto res = check_ranker(gt, traces, 1000, 100);
  EXPECT_TRUE(res.ok) << res.detail;
  // Crashed ids are still listed (never removed), just outranked.
  for (ProcIndex i : r.sys->correct_set()) {
    EXPECT_EQ(r.fds[i]->alive_list().size(), 6u);
  }
}

TEST(AliveRanker, MoveToFrontOnEachAliveMessage) {
  // Direct protocol-level check: delivering ALIVE(i) puts i at rank 1.
  auto r = run_ranker(3, 0, 0, 3, 100);
  auto* fd = r.fds[0];
  auto list = fd->alive_list();
  ASSERT_EQ(list.size(), 3u);
  // Feed a message directly.
  fd->on_message(r.sys->env(0), make_message(AliveRanker::kMsgType, AliveMsg{list.back()}));
  EXPECT_EQ(fd->alive_list().front(), list.back());
  EXPECT_EQ(fd->alive_list().size(), 3u);  // moved, not duplicated
}

TEST(AliveRanker, IgnoresForeignMessageTypes) {
  AliveRanker fd(5);
  // No Env needed for the negative path: unknown type is dropped before use.
  SystemConfig cfg;
  cfg.ids = {1};
  cfg.timing = std::make_unique<AsyncTiming>(1, 1);
  System sys(std::move(cfg));
  fd.on_message(sys.env(0), make_message("OTHER", 42));
  EXPECT_TRUE(fd.alive_list().empty());
}

struct RankerSweep : ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(RankerSweep, DefinitionOneHolds) {
  auto [n, crash_k, seed] = GetParam();
  if (crash_k >= n) GTEST_SKIP();
  auto r = run_ranker(n, crash_k, 30, seed, 1200);
  const GroundTruth gt = GroundTruth::from(*r.sys);
  std::vector<const Trajectory<std::vector<Id>>*> traces;
  for (auto* fd : r.fds) traces.push_back(&fd->trace());
  auto res = check_ranker(gt, traces, 1200, 150);
  EXPECT_TRUE(res.ok) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RankerSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(2, 4, 7),
                                            ::testing::Values<std::size_t>(0, 1, 3),
                                            ::testing::Values<std::uint64_t>(1, 2, 3)));

}  // namespace
}  // namespace hds
