// Tests of the QoS analyzer: hand-built trajectories with known
// detection/mistake/leader/quorum behaviour, the metrics projection, the
// JSON projection, and an end-to-end harness run with collect_qos.
#include "obs/qos.h"

#include <gtest/gtest.h>

#include "consensus/harness.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace hds {
namespace {

using obs::Json;
using obs::QosInput;
using obs::QosReport;

// Three homonyms of identifier 7; the last two crash at 10 and 20.
QosInput homonym_input() {
  QosInput in;
  in.gt.ids = {7, 7, 7};
  in.gt.correct = {true, false, false};
  in.crash_at = {-1, 10, 20};
  in.gst = 0;
  in.run_end = 100;
  return in;
}

TEST(QosDetection, PermanentMultiplicityDropsPerCrashOfALabel) {
  QosInput in = homonym_input();
  // Observer 0 drops 7's multiplicity 3 -> 2 at t=18 and 2 -> 1 at t=33:
  // the 1st crash of label 7 (at 10) is detected with latency 8, the 2nd
  // (at 20) with latency 13.
  Trajectory<Multiset<Id>> tr;
  tr.record(0, Multiset<Id>{7, 7, 7});
  tr.record(18, Multiset<Id>{7, 7});
  tr.record(33, Multiset<Id>{7});
  in.trusted = {&tr, nullptr, nullptr};

  const QosReport r = obs::analyze_qos(in);
  ASSERT_EQ(r.detections.size(), 2u);
  EXPECT_EQ(r.detections[0].label, 7);
  EXPECT_EQ(r.detections[0].kth, 1u);
  EXPECT_EQ(r.detections[0].crash_time, 10);
  EXPECT_EQ(r.detections[0].latency, 8);
  EXPECT_EQ(r.detections[1].kth, 2u);
  EXPECT_EQ(r.detections[1].latency, 13);
  EXPECT_EQ(r.detection_time_max, 13);
  EXPECT_DOUBLE_EQ(r.detection_time_mean, 10.5);
  EXPECT_EQ(r.undetected, 0u);
}

TEST(QosDetection, TransientDropIsNotADetection) {
  QosInput in = homonym_input();
  // The multiplicity dips to 1 at t=15 but recovers to 2 at t=25 and stays
  // there: the 1st crash is detected only by the *permanent* drop (t=25,
  // wait — 2 <= 3-1 holds from t=15 on... the recovery to 2 keeps the 1st
  // crash detected but un-detects the 2nd), so crash 2 ends undetected only
  // if the final multiplicity stays above its threshold.
  Trajectory<Multiset<Id>> tr;
  tr.record(0, Multiset<Id>{7, 7, 7});
  tr.record(15, Multiset<Id>{7});      // momentarily suspects both
  tr.record(25, Multiset<Id>{7, 7});   // one comes back; stays forever
  in.trusted = {&tr, nullptr, nullptr};

  const QosReport r = obs::analyze_qos(in);
  ASSERT_EQ(r.detections.size(), 2u);
  // 1st crash (threshold 2): permanently <= 2 from t=15 on -> latency 5.
  EXPECT_EQ(r.detections[0].latency, 5);
  // 2nd crash (threshold 1): mult is 2 at run end -> never detected.
  EXPECT_EQ(r.detections[1].latency, -1);
  EXPECT_EQ(r.undetected, 1u);
  EXPECT_EQ(r.detection_time_max, 5);
}

TEST(QosMistakes, IntervalsWhereACorrectInstanceIsMissing) {
  QosInput in;
  in.gt.ids = {1, 2, 3};
  in.gt.correct = {true, true, true};
  in.crash_at = {-1, -1, -1};
  in.gst = 50;
  in.run_end = 100;
  // Observer 0 wrongly drops id 2 during [60, 75) and again [90, 100).
  Trajectory<Multiset<Id>> tr;
  tr.record(0, Multiset<Id>{1, 2, 3});
  tr.record(60, Multiset<Id>{1, 3});
  tr.record(75, Multiset<Id>{1, 2, 3});
  tr.record(90, Multiset<Id>{1, 3});
  in.trusted = {&tr, nullptr, nullptr};

  const QosReport r = obs::analyze_qos(in);
  ASSERT_EQ(r.mistakes.size(), 1u);
  EXPECT_EQ(r.mistakes[0].intervals, 2u);
  EXPECT_EQ(r.mistakes[0].total_duration, 15 + 10);
  EXPECT_EQ(r.mistakes[0].max_duration, 15);
  EXPECT_EQ(r.mistake_intervals, 2u);
  EXPECT_EQ(r.mistake_duration_max, 15);
  // No crashes: no detection records at all.
  EXPECT_TRUE(r.detections.empty());
  EXPECT_EQ(r.detection_time_max, -1);
}

TEST(QosLeader, FlapsSettleAndConvergence) {
  QosInput in;
  in.gt.ids = {1, 2};
  in.gt.correct = {true, true};
  in.crash_at = {-1, -1};
  in.gst = 100;
  in.run_end = 1000;
  Trajectory<HOmegaOut> a;  // settles on (1,1) after two post-GST flaps
  a.record(0, HOmegaOut{2, 1});
  a.record(150, HOmegaOut{2, 2});  // flap 1 (post-GST)
  a.record(180, HOmegaOut{1, 1});  // flap 2
  Trajectory<HOmegaOut> b;  // settled on (1,1) before GST
  b.record(0, HOmegaOut{1, 1});
  in.homega = {&a, &b};

  const QosReport r = obs::analyze_qos(in);
  ASSERT_EQ(r.leaders.size(), 2u);
  EXPECT_EQ(r.leaders[0].flaps_post_gst, 2u);
  EXPECT_EQ(r.leaders[0].settle_time, 80);  // 180 - gst
  EXPECT_EQ(r.leaders[1].flaps_post_gst, 0u);
  EXPECT_EQ(r.leaders[1].settle_time, 0);
  EXPECT_EQ(r.leader_flaps, 2u);
  EXPECT_EQ(r.leader_settle_max, 80);
  EXPECT_TRUE(r.converged);  // both end on (1,1), and 1 is correct
}

TEST(QosLeader, DisagreeingOrDeadFinalLeaderIsNotConverged) {
  QosInput in;
  in.gt.ids = {1, 2};
  in.gt.correct = {true, false};
  in.crash_at = {-1, 5};
  in.gst = 0;
  in.run_end = 100;
  Trajectory<HOmegaOut> a;
  a.record(0, HOmegaOut{2, 1});  // final leader is the crashed identifier
  in.homega = {&a, nullptr};

  const QosReport r = obs::analyze_qos(in);
  EXPECT_FALSE(r.converged);
}

TEST(QosQuorums, MarginsIncludeSelfPairsAndLivenessWaits) {
  QosInput in;
  in.gt.ids = {1, 2, 3};
  in.gt.correct = {true, true, false};
  in.crash_at = {-1, -1, 10};
  in.gst = 0;
  in.run_end = 50;
  // Observer 0 first holds {1,2,3} (contains the crashed id 3 -> not live),
  // then {1,2} at t=20 (live). Observer 1 holds {2,3} from t=5 on — never
  // within I(Correct) = {1,2}.
  HSigmaSnapshot s0a;
  s0a.quora[Label::of_count(1)] = Multiset<Id>{1, 2, 3};
  HSigmaSnapshot s0b = s0a;
  s0b.quora[Label::of_count(2)] = Multiset<Id>{1, 2};
  Trajectory<HSigmaSnapshot> t0;
  t0.record(0, s0a);
  t0.record(20, s0b);
  HSigmaSnapshot s1;
  s1.quora[Label::of_count(3)] = Multiset<Id>{2, 3};
  Trajectory<HSigmaSnapshot> t1;
  t1.record(5, s1);
  in.hsigma = {&t0, &t1, nullptr};

  const QosReport r = obs::analyze_qos(in);
  // Final quora: observer 0 holds {1,2,3} and {1,2}; observer 1 holds {2,3}.
  // Distinct realized quora: 3. Minimum pairwise margin: |{1,2} ∩ {2,3}| = 1.
  EXPECT_EQ(r.quora_distinct, 3u);
  EXPECT_EQ(r.quorum_margin_min, 1);
  ASSERT_EQ(r.liveness_waits.size(), 2u);  // one per correct observer
  EXPECT_EQ(r.liveness_waits[0], 20);
  EXPECT_EQ(r.liveness_waits[1], -1);
  EXPECT_EQ(r.liveness_wait_max, -1);  // observer 1 never live
  EXPECT_FALSE(r.quorum_margins.empty());
}

TEST(QosEmit, ProjectsIntoRegistrySeries) {
  QosInput in = homonym_input();
  Trajectory<Multiset<Id>> tr;
  tr.record(0, Multiset<Id>{7, 7, 7});
  tr.record(18, Multiset<Id>{7, 7});
  tr.record(33, Multiset<Id>{7});
  in.trusted = {&tr, nullptr, nullptr};
  const QosReport r = obs::analyze_qos(in);

  obs::MetricsRegistry reg;
  obs::emit_qos(r, &reg);
  const obs::Histogram* det = reg.find_histogram("qos_detection_time");
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->count(), 2u);
  EXPECT_EQ(det->sum(), 8 + 13);
  ASSERT_NE(reg.find_counter("qos_detection_undetected_total"), nullptr);
  // No HΩ/HΣ family in the input: their series are not created.
  EXPECT_EQ(reg.find_gauge("qos_converged"), nullptr);
  obs::emit_qos(r, nullptr);  // null registry is a no-op
}

TEST(QosJson, RoundTripsThroughTheParser) {
  QosInput in = homonym_input();
  Trajectory<Multiset<Id>> tr;
  tr.record(0, Multiset<Id>{7, 7, 7});
  tr.record(18, Multiset<Id>{7, 7});
  in.trusted = {&tr, nullptr, nullptr};
  const QosReport r = obs::analyze_qos(in);

  const Json j = obs::qos_json(r);
  const Json back = Json::parse(j.dump(2));
  EXPECT_EQ(back, j);
  const Json* det = back.find("detection");
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->find("records")->items().size(), 2u);
  EXPECT_EQ(back.find("run_end")->number(), 100.0);
}

TEST(QosEndToEnd, Fig6RunProducesDetectionAndLeaderRecords) {
  Fig6Params p;
  p.ids = ids_unique(4);
  p.crashes = crashes_last_k(4, 1, /*at=*/800);
  p.net.gst = 1000;
  p.seed = 3;
  p.run_for = 4000;
  obs::MetricsRegistry reg;
  p.metrics = &reg;
  p.collect_qos = true;
  const Fig6Result r = run_fig6(p);

  EXPECT_TRUE(r.qos.has_trusted);
  EXPECT_TRUE(r.qos.has_homega);
  EXPECT_FALSE(r.qos.detections.empty());
  EXPECT_FALSE(r.qos.leaders.empty());
  // The one crash is eventually detected by every correct observer.
  EXPECT_EQ(r.qos.undetected, 0u);
  EXPECT_GE(r.qos.detection_time_max, 0);
  EXPECT_TRUE(r.qos.converged);
  const obs::Histogram* det = reg.find_histogram("qos_detection_time");
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->count(), 3u);  // 3 correct observers x 1 crash
}

TEST(QosEndToEnd, Fig7RunProducesQuorumMargins) {
  Fig7Params p;
  p.ids = ids_homonymous(5, 2, 1);
  p.crashes = sync_crashes_last_k(5, 2, /*at_step=*/10, /*stagger=*/2);
  p.steps = 30;
  p.seed = 1;
  p.collect_qos = true;
  const Fig7Result r = run_fig7(p);

  EXPECT_TRUE(r.qos.has_hsigma);
  EXPECT_FALSE(r.qos.quorum_margins.empty());
  // HΣ safety: realized quora intersect.
  EXPECT_GT(r.qos.quorum_margin_min, 0);
  EXPECT_GE(r.qos.liveness_wait_max, 0);  // every correct observer went live
}

}  // namespace
}  // namespace hds
