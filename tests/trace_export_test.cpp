// Tests of the trace exporters: Chrome trace-event JSON shape, the JSONL
// stream, and end-to-end propagation through the full-stack harness runs
// (trace events + the metrics snapshot the paper's figures need).
#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "consensus/harness.h"
#include "obs/metrics.h"

namespace hds {
namespace {

std::vector<TraceEvent> sample_events() {
  return {
      {.at = 0, .kind = TraceEvent::Kind::kStart, .proc = 0, .msg_type = ""},
      {.at = 3, .kind = TraceEvent::Kind::kBroadcast, .proc = 0, .msg_type = "PH1"},
      {.at = 7, .kind = TraceEvent::Kind::kDeliver, .proc = 1, .msg_type = "PH1"},
      {.at = 9, .kind = TraceEvent::Kind::kCrash, .proc = 1, .msg_type = ""},
  };
}

obs::TraceExportMeta sample_meta() {
  obs::TraceExportMeta meta;
  meta.ids = {10, 10, 42};
  meta.dropped = 5;
  meta.label = "unit \"quoted\" run";
  return meta;
}

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ChromeTrace, CarriesEventsMetadataAndDropCount) {
  const std::string j = obs::chrome_trace_json(sample_events(), sample_meta());
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  // One instant event per trace record.
  EXPECT_EQ(count_of(j, "\"ph\":\"i\""), 4u);
  EXPECT_NE(j.find("\"ts\":3"), std::string::npos);
  EXPECT_NE(j.find("broadcast PH1"), std::string::npos);
  // Thread metadata names each process with its homonymous identifier.
  EXPECT_GE(count_of(j, "\"ph\":\"M\""), 3u);
  EXPECT_NE(j.find("\"dropped_events\":5"), std::string::npos);
  EXPECT_NE(j.find("\"event_count\":4"), std::string::npos);
  // Label quotes must be escaped for the document to stay valid JSON.
  EXPECT_NE(j.find("unit \\\"quoted\\\" run"), std::string::npos);
  EXPECT_EQ(j.find("unit \"quoted\" run"), std::string::npos);
}

TEST(ChromeTrace, EmptyEventListIsStillADocument) {
  const std::string j = obs::chrome_trace_json({}, {});
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"event_count\":0"), std::string::npos);
}

TEST(TraceJsonl, OneLinePerEventPlusMetaHeader) {
  const std::string j = obs::trace_jsonl(sample_events(), sample_meta());
  EXPECT_EQ(count_of(j, "\n"), 5u);  // meta line + 4 events, each newline-terminated
  EXPECT_NE(j.find("\"meta\""), std::string::npos);
  EXPECT_NE(j.find("\"dropped_events\":5"), std::string::npos);
  EXPECT_NE(j.find("\"kind\":\"deliver\""), std::string::npos);
  EXPECT_NE(j.find("\"at\":9"), std::string::npos);
  // Every line is an object: as many '{' openers at line starts as lines.
  EXPECT_EQ(j.front(), '{');
}

TEST(FullStackRun, ExportsTraceEventsAndAcceptanceMetrics) {
  obs::MetricsRegistry reg;
  Fig8FullStackParams p;
  p.ids = ids_unique(5);
  p.t_known = 1;
  p.crashes = crashes_last_k(5, 1, 60);
  p.seed = 1;
  p.trace_capacity = 20'000;
  p.metrics = &reg;
  const ConsensusRunResult res = run_fig8_full_stack(p);
  ASSERT_TRUE(res.check.ok) << res.check.detail;
  ASSERT_TRUE(res.all_correct_decided);

  // Trace events propagated out of the System into the result.
  ASSERT_FALSE(res.trace_events.empty());
  EXPECT_EQ(res.trace_dropped, 0u);
  const std::string chrome = obs::chrome_trace_json(res.trace_events, {.ids = p.ids});
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);

  // The acceptance-criteria series for a Fig. 8 full-stack run.
  EXPECT_GT(reg.counter_total("fd_leader_changes_total"), 0u);
  const obs::Gauge* stab = reg.find_gauge("fd_stabilization_time");
  ASSERT_NE(stab, nullptr);
  EXPECT_GT(stab->value(), 0);
  const obs::Histogram* quorum = reg.find_histogram("fd_quorum_size", {{"proc", "0"}});
  ASSERT_NE(quorum, nullptr);
  EXPECT_GT(quorum->count(), 0u);
  EXPECT_GT(reg.counter_total("net_broadcasts_total"), 0u);
  EXPECT_EQ(reg.counter_total("net_broadcasts_total"), res.broadcasts);
  EXPECT_GT(reg.counter_total("consensus_rounds_total"), 0u);
  const obs::Gauge* decide = reg.find_gauge("consensus_decide_at", {{"proc", "0"}});
  ASSERT_NE(decide, nullptr);
  EXPECT_GT(decide->value(), 0);
  // The snapshot serializes every series.
  const std::string snapshot = reg.to_json();
  EXPECT_NE(snapshot.find("fd_leader_changes_total"), std::string::npos);
  EXPECT_NE(snapshot.find("fd_stabilization_time"), std::string::npos);
  EXPECT_NE(snapshot.find("fd_quorum_size"), std::string::npos);
  EXPECT_NE(snapshot.find("net_broadcasts_total"), std::string::npos);
}

TEST(FullStackRun, TinyRingPropagatesDropCount) {
  Fig9FullStackParams p;
  p.ids = ids_unique(4);
  p.crashes = crashes_none(4);
  p.seed = 2;
  p.trace_capacity = 8;
  const ConsensusRunResult res = run_fig9_full_stack(p);
  ASSERT_TRUE(res.check.ok) << res.check.detail;
  EXPECT_EQ(res.trace_events.size(), 8u);
  EXPECT_GT(res.trace_dropped, 0u);
  obs::TraceExportMeta meta;
  meta.dropped = res.trace_dropped;
  const std::string j = obs::chrome_trace_json(res.trace_events, meta);
  EXPECT_NE(j.find("\"dropped_events\":" + std::to_string(res.trace_dropped)),
            std::string::npos);
}

}  // namespace
}  // namespace hds
