// Tests of the spec layer itself — including negative tests: deliberately
// broken detectors must be flagged, otherwise the property sweeps elsewhere
// prove nothing.
#include "spec/fd_checkers.h"

#include <gtest/gtest.h>

#include "spec/consensus_checkers.h"

namespace hds {
namespace {

GroundTruth gt_of(std::vector<Id> ids, std::vector<bool> correct) {
  return GroundTruth{std::move(ids), std::move(correct)};
}

// ------------------------------------------------------------- pair_violable

TEST(HSigmaPairViolable, DisjointCarrierSetsViolate) {
  // Quorum {1} carried by process 0 and quorum {2} carried by process 1:
  // realizable disjointly — a violation.
  std::vector<Id> ids{1, 2};
  EXPECT_TRUE(hsigma_pair_violable(Multiset<Id>{1}, {0}, Multiset<Id>{2}, {1}, ids));
}

TEST(HSigmaPairViolable, SharedMandatoryProcessCannotBeSplit) {
  // Both quora need the only process with id 1: never disjoint.
  std::vector<Id> ids{1, 2};
  EXPECT_FALSE(hsigma_pair_violable(Multiset<Id>{1}, {0, 1}, Multiset<Id>{1}, {0, 1}, ids));
}

TEST(HSigmaPairViolable, HomonymsAllowSplitOnlyWithEnoughCarriers) {
  // Two processes share id 7; each quorum needs one "7".
  std::vector<Id> ids{7, 7};
  // Both carriers available to both labels: can pick disjointly — violation.
  EXPECT_TRUE(hsigma_pair_violable(Multiset<Id>{7}, {0, 1}, Multiset<Id>{7}, {0, 1}, ids));
  // Only one carrier each, the same process: no split.
  EXPECT_FALSE(hsigma_pair_violable(Multiset<Id>{7}, {0}, Multiset<Id>{7}, {0}, ids));
}

TEST(HSigmaPairViolable, MultiplicityTwoForcesOverlap) {
  // Three homonyms; each quorum needs two of them: 2+2 > 3, must overlap.
  std::vector<Id> ids{5, 5, 5};
  EXPECT_FALSE(hsigma_pair_violable(Multiset<Id>{5, 5}, {0, 1, 2}, Multiset<Id>{5, 5}, {0, 1, 2},
                                    ids));
  // With four homonyms, 2+2 fit disjointly — a violation.
  std::vector<Id> ids4{5, 5, 5, 5};
  EXPECT_TRUE(hsigma_pair_violable(Multiset<Id>{5, 5}, {0, 1, 2, 3}, Multiset<Id>{5, 5},
                                   {0, 1, 2, 3}, ids4));
}

TEST(HSigmaPairViolable, UnrealizableQuorumIsVacuouslySafe) {
  // The quorum needs two instances of id 1 but only one carrier exists.
  std::vector<Id> ids{1, 2};
  EXPECT_FALSE(hsigma_pair_violable(Multiset<Id>{1, 1}, {0}, Multiset<Id>{2}, {1}, ids));
}

TEST(HSigmaPairViolable, EmptyQuorumViolatesAgainstAnything) {
  std::vector<Id> ids{1, 2};
  EXPECT_TRUE(hsigma_pair_violable(Multiset<Id>{}, {}, Multiset<Id>{2}, {1}, ids));
}

// ------------------------------------------------------- negative detectors

Trajectory<HSigmaSnapshot> snap_traj(std::initializer_list<std::pair<SimTime, HSigmaSnapshot>> pts) {
  Trajectory<HSigmaSnapshot> t;
  for (auto& [at, v] : pts) t.record(at, v);
  return t;
}

HSigmaSnapshot snap(std::set<Label> labels,
                    std::initializer_list<std::pair<Label, Multiset<Id>>> quora) {
  HSigmaSnapshot s;
  s.labels = std::move(labels);
  for (auto& [x, m] : quora) s.quora.emplace(x, m);
  return s;
}

TEST(HSigmaChecker, FlagsNonIntersectingQuora) {
  // Two processes with different ids each certify a singleton quorum of
  // themselves under different labels: classic split brain.
  GroundTruth gt = gt_of({1, 2}, {true, true});
  Label la = Label::of_text("a"), lb = Label::of_text("b");
  auto t0 = snap_traj({{0, snap({la}, {{la, Multiset<Id>{1}}})}});
  auto t1 = snap_traj({{0, snap({lb}, {{lb, Multiset<Id>{2}}})}});
  auto res = check_hsigma_safety(gt, {&t0, &t1});
  EXPECT_FALSE(res.ok);
}

TEST(HSigmaChecker, FlagsShrinkingLabels) {
  GroundTruth gt = gt_of({1}, {true});
  Label la = Label::of_text("a");
  auto t0 = snap_traj({{0, snap({la}, {})}, {1, snap({}, {})}});
  auto res = check_hsigma_monotonicity({&t0});
  EXPECT_FALSE(res.ok);
}

TEST(HSigmaChecker, FlagsGrowingQuorumMultiset) {
  GroundTruth gt = gt_of({1}, {true});
  Label la = Label::of_text("a");
  auto t0 = snap_traj({{0, snap({la}, {{la, Multiset<Id>{1}}})},
                       {1, snap({la}, {{la, Multiset<Id>{1, 1}}})}});
  auto res = check_hsigma_monotonicity({&t0});
  EXPECT_FALSE(res.ok);
}

TEST(HSigmaChecker, FlagsMissingLiveQuorum) {
  // The only pair references a faulty-only quorum: liveness fails.
  GroundTruth gt = gt_of({1, 2}, {true, false});
  Label la = Label::of_text("a");
  // S(a) = {1 (faulty? no: process 0 has id 1 and is correct)} — make the
  // quorum require id 2, whose only carrier is faulty.
  auto t0 = snap_traj({{0, snap({la}, {{la, Multiset<Id>{2}}})}});
  auto t1 = snap_traj({{0, snap({la}, {})}});
  auto res = check_hsigma_liveness(gt, {&t0, &t1});
  EXPECT_FALSE(res.ok);
}

TEST(SigmaChecker, FlagsDisjointOutputs) {
  GroundTruth gt = gt_of({1, 2}, {true, true});
  Trajectory<Multiset<Id>> t0, t1;
  t0.record(0, Multiset<Id>{1});
  t1.record(0, Multiset<Id>{2});
  auto res = check_sigma(gt, {&t0, &t1}, 100, 10);
  EXPECT_FALSE(res.ok);
}

TEST(SigmaChecker, FlagsFaultyIdInFinalOutput) {
  GroundTruth gt = gt_of({1, 2}, {true, false});
  Trajectory<Multiset<Id>> t0, t1;
  t0.record(0, Multiset<Id>{1, 2});  // keeps trusting the crashed id 2
  t1.record(0, Multiset<Id>{1, 2});
  auto res = check_sigma(gt, {&t0, &t1}, 100, 10);
  EXPECT_FALSE(res.ok);
}

TEST(OhpChecker, FlagsWrongFinalMultiset) {
  GroundTruth gt = gt_of({1, 1, 2}, {true, true, false});
  Trajectory<Multiset<Id>> t0, t1, t2;
  t0.record(0, Multiset<Id>{1, 1});      // correct: I(Correct) = {1,1}
  t1.record(0, Multiset<Id>{1, 1, 2});   // stale: still includes the crashed 2
  t2.record(0, Multiset<Id>{});
  auto res = check_ohp(gt, {&t0, &t1, &t2}, 100, 10);
  EXPECT_FALSE(res.ok);
}

TEST(OhpChecker, FlagsLateChurn) {
  GroundTruth gt = gt_of({1}, {true});
  Trajectory<Multiset<Id>> t0;
  t0.record(0, Multiset<Id>{});
  t0.record(95, Multiset<Id>{1});  // changed within the stability window
  auto res = check_ohp(gt, {&t0}, 100, 10);
  EXPECT_FALSE(res.ok);
}

TEST(HOmegaChecker, FlagsDisagreeingLeaders) {
  GroundTruth gt = gt_of({1, 2}, {true, true});
  Trajectory<HOmegaOut> t0, t1;
  t0.record(0, HOmegaOut{1, 1});
  t1.record(0, HOmegaOut{2, 1});
  auto res = check_homega(gt, {&t0, &t1}, 100, 10);
  EXPECT_FALSE(res.ok);
}

TEST(HOmegaChecker, FlagsWrongMultiplicity) {
  GroundTruth gt = gt_of({1, 1, 2}, {true, true, true});
  Trajectory<HOmegaOut> t0, t1, t2;
  for (auto* t : {&t0, &t1, &t2}) t->record(0, HOmegaOut{1, 1});  // mult should be 2
  auto res = check_homega(gt, {&t0, &t1, &t2}, 100, 10);
  EXPECT_FALSE(res.ok);
}

TEST(HOmegaChecker, FlagsFaultyLeader) {
  GroundTruth gt = gt_of({1, 2}, {false, true});
  Trajectory<HOmegaOut> t0, t1;
  t0.record(0, HOmegaOut{1, 1});
  t1.record(0, HOmegaOut{1, 1});
  auto res = check_homega(gt, {&t0, &t1}, 100, 10);
  EXPECT_FALSE(res.ok);
}

TEST(RankerChecker, FlagsCorrectIdBelowPrefix) {
  GroundTruth gt = gt_of({1, 2, 3}, {true, true, false});
  Trajectory<std::vector<Id>> t0, t1, t2;
  // Process 0 lists the crashed id 3 above correct id 2: rank(2) = 3 > 2.
  t0.record(0, std::vector<Id>{1, 3, 2});
  t1.record(0, std::vector<Id>{1, 2, 3});
  t2.record(0, std::vector<Id>{1, 2, 3});
  auto res = check_ranker(gt, {&t0, &t1, &t2}, 100, 10);
  EXPECT_FALSE(res.ok);
}

TEST(ApChecker, FlagsUndercount) {
  GroundTruth gt = gt_of({0, 0, 0}, {true, true, true});
  Trajectory<std::size_t> t0, t1, t2;
  t0.record(0, std::size_t{2});  // 3 alive at time 0
  t1.record(0, std::size_t{3});
  t2.record(0, std::size_t{3});
  auto res = check_ap(gt, {&t0, &t1, &t2}, [](SimTime) { return std::size_t{3}; }, 100, 10);
  EXPECT_FALSE(res.ok);
}

// ----------------------------------------------------------- edge shapes

TEST(CheckerEdges, EmptyTrajectoryOfACorrectProcessFails) {
  GroundTruth gt = gt_of({1, 2}, {true, true});
  Trajectory<Multiset<Id>> t0, t1;
  t0.record(0, Multiset<Id>{1, 2});
  // t1 never recorded anything.
  auto res = check_ohp(gt, {&t0, &t1}, 100, 10);
  EXPECT_FALSE(res.ok);
}

TEST(CheckerEdges, FaultyProcessTrajectoriesAreExemptFromLiveness) {
  GroundTruth gt = gt_of({1, 2}, {true, false});
  Trajectory<Multiset<Id>> t0, t1;
  t0.record(0, Multiset<Id>{1});
  t1.record(0, Multiset<Id>{2, 2, 2});  // garbage from the faulty process
  auto res = check_ohp(gt, {&t0, &t1}, 100, 10);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(CheckerEdges, TrajectoryCountMismatchIsAnError) {
  GroundTruth gt = gt_of({1, 2}, {true, true});
  Trajectory<Multiset<Id>> t0;
  t0.record(0, Multiset<Id>{1, 2});
  auto res = check_ohp(gt, {&t0}, 100, 10);
  EXPECT_FALSE(res.ok);
}

TEST(CheckerEdges, HSigmaSafetyOnEmptyTracesPasses) {
  GroundTruth gt = gt_of({1}, {true});
  Trajectory<HSigmaSnapshot> t0;
  EXPECT_TRUE(check_hsigma_safety(gt, {&t0}).ok);
  EXPECT_TRUE(check_hsigma_monotonicity({&t0}).ok);
  EXPECT_FALSE(check_hsigma_liveness(gt, {&t0}).ok);  // but liveness needs output
}

TEST(CheckerEdges, ConsensusRecordCountMismatch) {
  GroundTruth gt = gt_of({1, 2}, {true, true});
  EXPECT_FALSE(check_consensus(gt, {10}, {{}, {}}).ok);
  EXPECT_FALSE(check_consensus(gt, {10, 20}, {{}}).ok);
}

// --------------------------------------------------------------- consensus

TEST(ConsensusChecker, PassesOnCleanRun) {
  GroundTruth gt = gt_of({1, 2, 3}, {true, true, false});
  std::vector<Value> props{10, 20, 30};
  std::vector<DecisionRecord> dec(3);
  dec[0] = {true, 5, 20, 1};
  dec[1] = {true, 7, 20, 1};
  auto res = check_consensus(gt, props, dec);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(ConsensusChecker, FlagsInventedValue) {
  GroundTruth gt = gt_of({1}, {true});
  std::vector<DecisionRecord> dec{{true, 1, 999, 1}};
  EXPECT_FALSE(check_consensus(gt, {10}, dec).ok);
}

TEST(ConsensusChecker, FlagsDisagreement) {
  GroundTruth gt = gt_of({1, 2}, {true, true});
  std::vector<DecisionRecord> dec{{true, 1, 10, 1}, {true, 1, 20, 1}};
  EXPECT_FALSE(check_consensus(gt, {10, 20}, dec).ok);
}

TEST(ConsensusChecker, FlagsNonTermination) {
  GroundTruth gt = gt_of({1, 2}, {true, true});
  std::vector<DecisionRecord> dec{{true, 1, 10, 1}, {}};
  EXPECT_FALSE(check_consensus(gt, {10, 20}, dec).ok);
}

TEST(ConsensusChecker, FaultyProcessMayDecideOrNot) {
  GroundTruth gt = gt_of({1, 2}, {true, false});
  std::vector<DecisionRecord> dec{{true, 1, 10, 1}, {}};
  EXPECT_TRUE(check_consensus(gt, {10, 20}, dec).ok);
  dec[1] = {true, 1, 10, 1};
  EXPECT_TRUE(check_consensus(gt, {10, 20}, dec).ok);
  dec[1] = {true, 1, 20, 1};  // but a faulty decision still must agree
  EXPECT_FALSE(check_consensus(gt, {10, 20}, dec).ok);
}

}  // namespace
}  // namespace hds
