// NetSystem integration tests: several NetSystem instances in ONE process,
// each with its own UDP socket on an ephemeral loopback port, exchanging
// real datagrams. This covers the substrate (codec + batching + demux +
// barrier + interposer seam) without fork/exec; the multi-process path is
// exercised by the net_cluster_fig8 ctest entry (tools/hds_cluster).
#include "net/net_system.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/link_fault.h"
#include "consensus/majority_homega.h"
#include "fd/impl/alive_ranker.h"
#include "fd/impl/ohp_polling.h"
#include "net/codec.h"
#include "net/udp.h"
#include "obs/metrics.h"
#include "sim/stacked_process.h"

namespace hds::net {
namespace {

using namespace std::chrono_literals;

// Broadcasts one ALIVE on start (a registered wire type, so it crosses the
// codec unchanged); counts received copies and remembers the last metadata.
class PingProcess : public Process {
 public:
  void on_start(Env& env) override {
    env.broadcast(make_message(AliveRanker::kMsgType, AliveMsg{env.self_id()}));
  }
  void on_message(Env&, const Message& m) override {
    if (m.type != AliveRanker::kMsgType) return;
    ++pings;
    last_wire_bytes = m.meta_wire_bytes;
  }

  int pings = 0;
  std::size_t last_wire_bytes = 0;
};

struct Cluster {
  std::vector<std::unique_ptr<NetSystem>> sys;

  explicit Cluster(std::size_t n, std::uint64_t seed = 1, bool batching = true,
                   obs::MetricsRegistry* metrics = nullptr, bool reliable = false) {
    std::vector<NetPeer> peers(n);
    for (std::size_t i = 0; i < n; ++i) peers[i].id = static_cast<Id>(i + 1);
    for (std::size_t i = 0; i < n; ++i) {
      NetConfig cfg;
      cfg.self = i;
      cfg.peers = peers;  // ports resolved below, once every socket is bound
      cfg.seed = seed + i;
      cfg.batching = batching;
      cfg.reliability.enabled = reliable;
      if (i == 0) cfg.metrics = metrics;
      sys.push_back(std::make_unique<NetSystem>(std::move(cfg)));
    }
    for (auto& s : sys) {
      for (std::size_t j = 0; j < n; ++j) {
        if (j == s->self()) continue;  // own endpoint was fixed at bind time
        s->set_peer_endpoint(j, UdpEndpoint{"127.0.0.1", sys[j]->local_port()});
      }
    }
  }

  bool barrier() {
    bool ok = true;
    for (auto& s : sys) ok = s->await_peers(5s) && ok;
    return ok;
  }

  void start_all() {
    for (auto& s : sys) s->start();
  }

  ~Cluster() {
    for (auto& s : sys) s->stop();
  }
};

TEST(NetSystem, DeliversBroadcastsAcrossRealSockets) {
  constexpr std::size_t kN = 3;
  Cluster c(kN);
  std::vector<PingProcess*> procs;
  for (auto& s : c.sys) {
    auto p = std::make_unique<PingProcess>();
    procs.push_back(p.get());
    s->set_process(std::move(p));
  }
  ASSERT_TRUE(c.barrier());
  c.start_all();
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_TRUE(c.sys[i]->wait_for(
        [&] {
          return c.sys[i]->query([&](Process&) { return procs[i]->pings; }) ==
                 static_cast<int>(kN);
        },
        5s))
        << "node " << i;
  }
  // The ALIVE frame really crossed the wire: size metadata matches the codec.
  const Message sample = make_message(AliveRanker::kMsgType, AliveMsg{1});
  const auto expect_bytes = encoded_frame_size(builtin_codecs(), sample, 0, 1);
  ASSERT_TRUE(expect_bytes.has_value());
  EXPECT_EQ(c.sys[0]->query([&](Process&) { return procs[0]->last_wire_bytes; }), *expect_bytes);

  const NetNetworkStats s0 = c.sys[0]->net_stats();
  EXPECT_EQ(s0.broadcasts, 1u);
  EXPECT_EQ(s0.copies_sent, kN);
  EXPECT_EQ(s0.copies_delivered, kN);  // one from each peer + self
  EXPECT_EQ(s0.copies_lost_link, 0u);
  EXPECT_EQ(s0.decode_errors, 0u);
  EXPECT_GT(s0.bytes_sent, 0u);
  EXPECT_GT(s0.bytes_received, 0u);
  EXPECT_GT(s0.packets_sent, 0u);
  EXPECT_GT(s0.packets_received, 0u);
}

TEST(NetSystem, Fig8StackDecidesOverLoopbackUdp) {
  constexpr std::size_t kN = 3;
  obs::MetricsRegistry metrics;
  Cluster c(kN, /*seed=*/7, /*batching=*/true, &metrics);
  std::vector<MajorityHOmegaConsensus*> cons(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    auto* fd = stack->add(std::make_unique<OHPPolling>());
    MajorityConsensusConfig ccfg;
    ccfg.n = kN;
    ccfg.t = 1;
    ccfg.proposal = static_cast<Value>(100 + i);
    ccfg.guard_poll = 5;
    cons[i] = stack->add(std::make_unique<MajorityHOmegaConsensus>(ccfg, *fd));
    c.sys[i]->set_process(std::move(stack));
  }
  ASSERT_TRUE(c.barrier());
  c.start_all();
  std::vector<Value> values;
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(c.sys[i]->wait_for(
        [&] {
          return c.sys[i]->query([&](Process&) { return cons[i]->decision(); }).decided;
        },
        30s))
        << "node " << i << " did not decide";
    values.push_back(c.sys[i]->query([&](Process&) { return cons[i]->decision(); }).value);
  }
  for (const Value v : values) {
    EXPECT_EQ(v, values.front());  // agreement
    EXPECT_GE(v, 100);             // validity: someone proposed it
    EXPECT_LT(v, static_cast<Value>(100 + kN));
  }
  // The registry observed real traffic, including batch occupancy.
  const std::string dump = metrics.to_json();
  EXPECT_NE(dump.find("udp_batch_frames"), std::string::npos);
  EXPECT_NE(dump.find("udp_bytes_sent_total"), std::string::npos);
}

// Drops every ALIVE copy from node 0 to node 1; node 1 must still hear
// the others, and node 0's stats must attribute the loss to the link.
class DropInterposer : public LinkInterposer {
 public:
  CopyVerdict on_copy(SimTime, ProcIndex from, ProcIndex to, const std::string& type) override {
    CopyVerdict v;
    if (from == 0 && to == 1 && type == AliveRanker::kMsgType) {
      v.drop = true;
      ++dropped;
    }
    return v;
  }
  std::atomic<int> dropped{0};
};

TEST(NetSystem, InterposerDropsAreCountedAndNotDelivered) {
  constexpr std::size_t kN = 3;
  Cluster c(kN);
  DropInterposer drop;
  c.sys[0]->set_interposer(&drop);
  std::vector<PingProcess*> procs;
  for (auto& s : c.sys) {
    auto p = std::make_unique<PingProcess>();
    procs.push_back(p.get());
    s->set_process(std::move(p));
  }
  ASSERT_TRUE(c.barrier());
  c.start_all();
  // Node 2 hears everyone; node 1 must end one short (node 0's copy dropped).
  EXPECT_TRUE(c.sys[2]->wait_for(
      [&] {
        return c.sys[2]->query([&](Process&) { return procs[2]->pings; }) ==
               static_cast<int>(kN);
      },
      5s));
  EXPECT_TRUE(c.sys[1]->wait_for(
      [&] {
        return c.sys[1]->query([&](Process&) { return procs[1]->pings; }) ==
               static_cast<int>(kN) - 1;
      },
      5s));
  std::this_thread::sleep_for(100ms);  // would-be late arrival window
  EXPECT_EQ(c.sys[1]->query([&](Process&) { return procs[1]->pings; }), static_cast<int>(kN) - 1);
  EXPECT_EQ(drop.dropped.load(), 1);
  EXPECT_EQ(c.sys[0]->net_stats().copies_lost_link, 1u);
}

// Drops the FIRST transmission attempt of every ALIVE copy on every link.
// Without the ARQ layer the broadcast would arrive nowhere; with it every
// retransmission passes and delivery must be exactly-once anyway.
class DropFirstAttempt : public LinkInterposer {
 public:
  CopyVerdict on_copy(SimTime, ProcIndex from, ProcIndex to, const std::string& type) override {
    CopyVerdict v;
    if (type != AliveRanker::kMsgType) return v;
    std::lock_guard lk(mu_);
    v.drop = seen_.insert({from, to}).second;  // newly seen link -> drop
    if (v.drop) ++dropped_;
    return v;
  }
  int dropped() const {
    std::lock_guard lk(mu_);
    return dropped_;
  }

 private:
  mutable std::mutex mu_;
  std::set<std::pair<ProcIndex, ProcIndex>> seen_;
  int dropped_ = 0;
};

TEST(NetSystem, ReliabilityRecoversDroppedCopiesExactlyOnce) {
  constexpr std::size_t kN = 3;
  Cluster c(kN, /*seed=*/11, /*batching=*/true, /*metrics=*/nullptr, /*reliable=*/true);
  std::vector<DropFirstAttempt> drops(kN);
  std::vector<PingProcess*> procs;
  for (std::size_t i = 0; i < kN; ++i) {
    c.sys[i]->set_interposer(&drops[i]);
    auto p = std::make_unique<PingProcess>();
    procs.push_back(p.get());
    c.sys[i]->set_process(std::move(p));
  }
  ASSERT_TRUE(c.barrier());
  c.start_all();
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_TRUE(c.sys[i]->wait_for(
        [&] {
          return c.sys[i]->query([&](Process&) { return procs[i]->pings; }) ==
                 static_cast<int>(kN);
        },
        10s))
        << "node " << i << " did not recover the dropped copies";
  }
  // Exactly-once above the layer: late retransmit crossings are deduped.
  std::this_thread::sleep_for(200ms);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(c.sys[i]->query([&](Process&) { return procs[i]->pings; }),
              static_cast<int>(kN));
    EXPECT_TRUE(c.sys[i]->reliable());
  }
  // Every first attempt really was dropped (kN outgoing links per node —
  // the loopback self copy is judged like any other) and the ARQ timer
  // re-sent it.
  const RelStats s0 = c.sys[0]->rel_stats();
  EXPECT_EQ(drops[0].dropped(), static_cast<int>(kN));
  EXPECT_GT(s0.retransmits, 0u);
  EXPECT_GE(s0.delivered, static_cast<std::uint64_t>(kN) - 1);
  EXPECT_EQ(c.sys[0]->net_stats().copies_lost_link, static_cast<std::uint64_t>(kN));
}

TEST(NetSystem, GarbageDatagramsCountAsDecodeErrorsNotCrashes) {
  Cluster c(2);
  for (auto& s : c.sys) s->set_process(std::make_unique<PingProcess>());
  ASSERT_TRUE(c.barrier());
  c.start_all();

  UdpSocket attacker;
  attacker.open(UdpEndpoint{"127.0.0.1", 0});
  const UdpEndpoint victim{"127.0.0.1", c.sys[0]->local_port()};
  const std::uint8_t junk[] = {'H', 'B', 9, 9, 9, 9};  // bad envelope version
  const std::uint8_t noise[] = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(attacker.send_to(victim, junk, sizeof junk));
  ASSERT_TRUE(attacker.send_to(victim, noise, sizeof noise));
  EXPECT_TRUE(c.sys[0]->wait_for([&] { return c.sys[0]->net_stats().decode_errors >= 2; }, 5s));
  // The substrate shrugged it off: normal traffic still flows.
  EXPECT_TRUE(c.sys[0]->wait_for([&] { return c.sys[0]->net_stats().copies_delivered >= 1; }, 5s));
}

TEST(NetSystem, UnbatchedModeStillDelivers) {
  constexpr std::size_t kN = 2;
  Cluster c(kN, /*seed=*/3, /*batching=*/false);
  std::vector<PingProcess*> procs;
  for (auto& s : c.sys) {
    auto p = std::make_unique<PingProcess>();
    procs.push_back(p.get());
    s->set_process(std::move(p));
  }
  ASSERT_TRUE(c.barrier());
  c.start_all();
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_TRUE(c.sys[i]->wait_for(
        [&] {
          return c.sys[i]->query([&](Process&) { return procs[i]->pings; }) ==
                 static_cast<int>(kN);
        },
        5s));
  }
}

}  // namespace
}  // namespace hds::net
