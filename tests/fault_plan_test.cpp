// FaultPlan DSL tests: clause kinds, selector matching, plan aggregates,
// and the JSON round trip the repro files depend on.
#include "chaos/fault_plan.h"

#include <gtest/gtest.h>

#include "obs/json.h"

namespace hds::chaos {
namespace {

TEST(FaultPlan, KindNamesRoundTrip) {
  for (ClauseKind k : {ClauseKind::kPartition, ClauseKind::kLoss, ClauseKind::kDelay,
                       ClauseKind::kReorder, ClauseKind::kDuplicate, ClauseKind::kCrashAt,
                       ClauseKind::kCrashOnLeaderChange, ClauseKind::kCrashOnQuorum}) {
    EXPECT_EQ(kind_from_name(kind_name(k)), k);
  }
  EXPECT_THROW((void)kind_from_name("frobnicate"), std::invalid_argument);
}

TEST(FaultPlan, KindPredicates) {
  EXPECT_TRUE(is_link_kind(ClauseKind::kPartition));
  EXPECT_TRUE(is_link_kind(ClauseKind::kDuplicate));
  EXPECT_FALSE(is_link_kind(ClauseKind::kCrashAt));
  EXPECT_FALSE(is_trigger_kind(ClauseKind::kCrashAt));
  EXPECT_TRUE(is_trigger_kind(ClauseKind::kCrashOnLeaderChange));
  EXPECT_TRUE(is_trigger_kind(ClauseKind::kCrashOnQuorum));
}

TEST(FaultPlan, SelectorWildcardsAndLists) {
  const std::vector<Id> ids = {1, 1, 2, 3};
  LinkSelector any;
  EXPECT_TRUE(any.matches(0, 3, ids));

  LinkSelector s;
  s.src = {0, 1};
  s.dst = {2};
  EXPECT_TRUE(s.matches(0, 2, ids));
  EXPECT_TRUE(s.matches(1, 2, ids));
  EXPECT_FALSE(s.matches(2, 2, ids));  // src not listed
  EXPECT_FALSE(s.matches(0, 3, ids));  // dst not listed
}

TEST(FaultPlan, SelectorTargetsLabelClass) {
  // dst_id selects every receiver carrying the identifier, regardless of
  // index — the "targeted loss against a label class" selector.
  const std::vector<Id> ids = {1, 1, 2, 3};
  LinkSelector s;
  s.dst_id = 1;
  EXPECT_TRUE(s.matches(2, 0, ids));
  EXPECT_TRUE(s.matches(2, 1, ids));
  EXPECT_FALSE(s.matches(2, 2, ids));
  EXPECT_FALSE(s.matches(2, 3, ids));
}

TEST(FaultPlan, ActiveWindow) {
  FaultClause c;
  c.from = 10;
  c.until = 20;
  EXPECT_FALSE(c.active_at(9));
  EXPECT_TRUE(c.active_at(10));
  EXPECT_TRUE(c.active_at(19));
  EXPECT_FALSE(c.active_at(20));
  c.until = -1;  // never heals
  EXPECT_TRUE(c.active_at(1'000'000));
}

TEST(FaultPlan, PlanAggregates) {
  FaultPlan p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.crash_budget(), 0u);
  EXPECT_EQ(p.link_faults_end(), 0);  // no link clauses

  FaultClause part;
  part.kind = ClauseKind::kPartition;
  part.until = 150;
  FaultClause loss;
  loss.kind = ClauseKind::kLoss;
  loss.until = 80;
  FaultClause crash;
  crash.kind = ClauseKind::kCrashAt;
  FaultClause trig;
  trig.kind = ClauseKind::kCrashOnLeaderChange;
  trig.count = 2;
  p.clauses = {part, loss, crash, trig};

  EXPECT_TRUE(p.has_crashes());
  EXPECT_TRUE(p.has_triggers());
  EXPECT_EQ(p.crash_budget(), 3u);      // 1 (kCrashAt) + 2 (trigger budget)
  EXPECT_EQ(p.link_faults_end(), 150);  // max heal time across link clauses

  p.clauses[0].until = -1;
  EXPECT_EQ(p.link_faults_end(), -1);  // one clause never heals
}

TEST(FaultPlan, JsonRoundTrip) {
  FaultPlan p;
  FaultClause loss;
  loss.kind = ClauseKind::kLoss;
  loss.from = 5;
  loss.until = 90;
  loss.prob = 0.25;
  loss.links.src = {0};
  loss.links.dst_id = 7;
  FaultClause dup;
  dup.kind = ClauseKind::kDuplicate;
  dup.prob = 0.5;
  dup.count = 3;
  dup.delay = 4;
  FaultClause trig;
  trig.kind = ClauseKind::kCrashOnQuorum;
  trig.count = 2;
  trig.until = 400;
  p.clauses = {loss, dup, trig};

  const obs::Json j = p.to_json();
  EXPECT_EQ(FaultPlan::from_json(j), p);
  // Serialized text parses back identically too (what repro files do).
  EXPECT_EQ(FaultPlan::from_json(obs::Json::parse(j.dump(2))), p);
}

TEST(FaultPlan, JsonOmitsDefaultFields) {
  FaultClause c;
  c.kind = ClauseKind::kPartition;
  const std::string text = c.to_json().dump(0);
  EXPECT_NE(text.find("partition"), std::string::npos);
  EXPECT_EQ(text.find("prob"), std::string::npos);
  EXPECT_EQ(text.find("count"), std::string::npos);
  EXPECT_EQ(text.find("links"), std::string::npos);
}

TEST(FaultPlan, JsonValidatesFields) {
  EXPECT_THROW(FaultClause::from_json(obs::Json::parse(R"({"kind":"loss","prob":1.5})")),
               std::invalid_argument);
  EXPECT_THROW(FaultClause::from_json(obs::Json::parse(R"({"kind":"loss","prob":-0.1})")),
               std::invalid_argument);
  EXPECT_THROW(FaultClause::from_json(obs::Json::parse(R"({"kind":"delay","delay":-3})")),
               std::invalid_argument);
  EXPECT_THROW(FaultClause::from_json(obs::Json::parse(R"({"kind":"nonsense"})")),
               std::invalid_argument);
}

}  // namespace
}  // namespace hds::chaos
