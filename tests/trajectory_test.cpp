// Unit tests for the time-indexed value history.
#include "common/trajectory.h"

#include <gtest/gtest.h>

namespace hds {
namespace {

TEST(Trajectory, EmptyThrowsOnAccess) {
  Trajectory<int> tr;
  EXPECT_TRUE(tr.empty());
  EXPECT_THROW((void)tr.final(), std::out_of_range);
  EXPECT_THROW((void)tr.last_change(), std::out_of_range);
  EXPECT_THROW((void)tr.at(0), std::out_of_range);
}

TEST(Trajectory, RecordsAndReadsBack) {
  Trajectory<int> tr;
  tr.record(1, 10);
  tr.record(5, 20);
  EXPECT_EQ(tr.final(), 20);
  EXPECT_EQ(tr.last_change(), 5);
  EXPECT_EQ(tr.at(1), 10);
  EXPECT_EQ(tr.at(4), 10);
  EXPECT_EQ(tr.at(5), 20);
  EXPECT_EQ(tr.at(100), 20);
}

TEST(Trajectory, AtBeforeFirstRecordThrows) {
  Trajectory<int> tr;
  tr.record(5, 1);
  EXPECT_THROW((void)tr.at(4), std::out_of_range);
}

TEST(Trajectory, CoalescesEqualValues) {
  Trajectory<int> tr;
  tr.record(1, 7);
  tr.record(3, 7);
  tr.record(9, 7);
  EXPECT_EQ(tr.points().size(), 1u);
  EXPECT_EQ(tr.last_change(), 1);  // never actually changed
}

TEST(Trajectory, RejectsTimeGoingBackwards) {
  Trajectory<int> tr;
  tr.record(5, 1);
  EXPECT_THROW(tr.record(4, 2), std::invalid_argument);
}

TEST(Trajectory, SameTimeOverwriteAllowedForNewValue) {
  // Two records at the same instant keep both points (last one is final).
  Trajectory<int> tr;
  tr.record(5, 1);
  tr.record(5, 2);
  EXPECT_EQ(tr.final(), 2);
}

using Seg = Trajectory<int>::Segment;

TEST(TrajectorySegments, ClipsRunsToTheWindow) {
  Trajectory<int> tr;
  tr.record(0, 10);
  tr.record(5, 20);
  tr.record(12, 30);
  EXPECT_EQ(tr.segments(3, 8), (std::vector<Seg>{{3, 5, 10}, {5, 8, 20}}));
  // Window past the last record: the final value extends to `to`.
  EXPECT_EQ(tr.segments(10, 20), (std::vector<Seg>{{10, 12, 20}, {12, 20, 30}}));
  // Whole history.
  EXPECT_EQ(tr.segments(0, 15), (std::vector<Seg>{{0, 5, 10}, {5, 12, 20}, {12, 15, 30}}));
}

TEST(TrajectorySegments, UndefinedBeforeFirstRecord) {
  Trajectory<int> tr;
  tr.record(10, 1);
  // Entirely before the first record: no value existed yet.
  EXPECT_TRUE(tr.segments(0, 10).empty());
  // Straddling: the view starts at the first record, not at `from`.
  EXPECT_EQ(tr.segments(0, 15), (std::vector<Seg>{{10, 15, 1}}));
}

TEST(TrajectorySegments, DegenerateWindowsAndEmptyTrajectory) {
  Trajectory<int> tr;
  EXPECT_TRUE(tr.segments(0, 100).empty());
  tr.record(1, 5);
  EXPECT_TRUE(tr.segments(7, 7).empty());
  EXPECT_TRUE(tr.segments(9, 3).empty());
}

TEST(TrajectorySegments, CoalescedRunIsOneSegment) {
  Trajectory<int> tr;
  tr.record(1, 7);
  tr.record(3, 7);
  tr.record(9, 7);
  EXPECT_EQ(tr.segments(0, 20), (std::vector<Seg>{{1, 20, 7}}));
}

TEST(TrajectorySegments, SameTimeOverwriteDropsZeroLengthPiece) {
  Trajectory<int> tr;
  tr.record(2, 1);
  tr.record(5, 2);
  tr.record(5, 3);  // supersedes value 2 within the same instant
  EXPECT_EQ(tr.segments(0, 10), (std::vector<Seg>{{2, 5, 1}, {5, 10, 3}}));
}

TEST(TrajectorySegments, ExclusiveEndBoundary) {
  Trajectory<int> tr;
  tr.record(0, 1);
  tr.record(5, 2);
  // to == change time: the new value's zero-or-negative-length piece is cut.
  EXPECT_EQ(tr.segments(0, 5), (std::vector<Seg>{{0, 5, 1}}));
  // from == change time: the old value contributes nothing.
  EXPECT_EQ(tr.segments(5, 9), (std::vector<Seg>{{5, 9, 2}}));
}

}  // namespace
}  // namespace hds
