// Unit tests for the time-indexed value history.
#include "common/trajectory.h"

#include <gtest/gtest.h>

namespace hds {
namespace {

TEST(Trajectory, EmptyThrowsOnAccess) {
  Trajectory<int> tr;
  EXPECT_TRUE(tr.empty());
  EXPECT_THROW((void)tr.final(), std::out_of_range);
  EXPECT_THROW((void)tr.last_change(), std::out_of_range);
  EXPECT_THROW((void)tr.at(0), std::out_of_range);
}

TEST(Trajectory, RecordsAndReadsBack) {
  Trajectory<int> tr;
  tr.record(1, 10);
  tr.record(5, 20);
  EXPECT_EQ(tr.final(), 20);
  EXPECT_EQ(tr.last_change(), 5);
  EXPECT_EQ(tr.at(1), 10);
  EXPECT_EQ(tr.at(4), 10);
  EXPECT_EQ(tr.at(5), 20);
  EXPECT_EQ(tr.at(100), 20);
}

TEST(Trajectory, AtBeforeFirstRecordThrows) {
  Trajectory<int> tr;
  tr.record(5, 1);
  EXPECT_THROW((void)tr.at(4), std::out_of_range);
}

TEST(Trajectory, CoalescesEqualValues) {
  Trajectory<int> tr;
  tr.record(1, 7);
  tr.record(3, 7);
  tr.record(9, 7);
  EXPECT_EQ(tr.points().size(), 1u);
  EXPECT_EQ(tr.last_change(), 1);  // never actually changed
}

TEST(Trajectory, RejectsTimeGoingBackwards) {
  Trajectory<int> tr;
  tr.record(5, 1);
  EXPECT_THROW(tr.record(4, 2), std::invalid_argument);
}

TEST(Trajectory, SameTimeOverwriteAllowedForNewValue) {
  // Two records at the same instant keep both points (last one is final).
  Trajectory<int> tr;
  tr.record(5, 1);
  tr.record(5, 2);
  EXPECT_EQ(tr.final(), 2);
}

}  // namespace
}  // namespace hds
