// The unique-identifier corner: HΩ ≡ Ω and ◇HP̄ ≡ ◇P̄ under unique ids
// (Section 3.2's remark made executable, both directions), including a
// round trip through the real Fig. 6 implementation.
#include "fd/reduce/classical_corner.h"

#include <gtest/gtest.h>

#include "consensus/harness.h"
#include "fd/impl/ohp_polling.h"
#include "fd/oracles.h"
#include "sim/system.h"
#include "spec/fd_checkers.h"

namespace hds {
namespace {

TEST(ClassicalCorner, HOmegaToOmegaOverOracle) {
  GroundTruth gt{{1, 2, 3, 4}, {true, true, false, true}};
  SimTime now = 0;
  OracleHOmega src(gt, [&now] { return now; }, 40);
  std::vector<HOmegaToOmega> reds;
  for (ProcIndex p = 0; p < 4; ++p) reds.emplace_back(src.handle(p));
  std::vector<Trajectory<Id>> trajs(4);
  for (now = 0; now <= 120; ++now) {
    for (ProcIndex p = 0; p < 4; ++p) trajs[p].record(now, reds[p].leader());
  }
  std::vector<const Trajectory<Id>*> ptrs;
  for (auto& t : trajs) ptrs.push_back(&t);
  auto res = check_omega(gt, ptrs, 120, 30);
  EXPECT_TRUE(res.ok) << res.detail;
  EXPECT_EQ(trajs[0].final(), 1u);
}

TEST(ClassicalCorner, OmegaRoundTripPreservesLeader) {
  class FixedOmega final : public OmegaHandle {
   public:
    [[nodiscard]] Id leader() const override { return 5; }
  };
  FixedOmega omega;
  OmegaToHOmega up(omega);
  EXPECT_EQ(up.h_omega(), (HOmegaOut{5, 1}));
  HOmegaToOmega down(up);
  EXPECT_EQ(down.leader(), 5u);
}

TEST(ClassicalCorner, OhpToOPbarOverRealFig6) {
  // Full pipeline: Fig. 6 in HPS with unique ids, its ◇HP̄ output adapted to
  // a classical ◇P̄, checked against the ◇P̄ class definition.
  SystemConfig cfg;
  cfg.ids = ids_unique(5);
  cfg.timing = std::make_unique<PartialSyncTiming>(PartialSyncTiming::Params{
      .gst = 60, .delta = 3, .pre_gst_loss = 0.3, .pre_gst_max_delay = 25});
  cfg.crashes = crashes_last_k(5, 2, 30, 7);
  cfg.seed = 6;
  System sys(std::move(cfg));
  std::vector<OHPPolling*> fds;
  for (ProcIndex i = 0; i < 5; ++i) {
    auto fd = std::make_unique<OHPPolling>();
    fds.push_back(fd.get());
    sys.set_process(i, std::move(fd));
  }
  sys.start();
  // Sample the adapter as the run progresses.
  std::vector<OhpToOPbar> adapters;
  for (auto* fd : fds) adapters.emplace_back(*fd);
  std::vector<Trajectory<std::set<Id>>> trajs(5);
  const SimTime end = 2500;
  for (SimTime t = 0; t <= end; t += 10) {
    sys.run_until(t);
    for (ProcIndex i = 0; i < 5; ++i) {
      if (sys.is_alive(i)) trajs[i].record(t, adapters[i].trusted_set());
    }
  }
  std::vector<const Trajectory<std::set<Id>>*> ptrs;
  for (auto& t : trajs) ptrs.push_back(&t);
  auto res = check_opbar(GroundTruth::from(sys), ptrs, end, 250);
  EXPECT_TRUE(res.ok) << res.detail;
  EXPECT_EQ(trajs[0].final(), (std::set<Id>{1, 2, 3}));
}

TEST(ClassicalCorner, OPbarToOhpLiftsToMultiset) {
  class FixedOPbar final : public OPbarHandle {
   public:
    [[nodiscard]] std::set<Id> trusted_set() const override { return {2, 4, 6}; }
  };
  FixedOPbar src;
  OPbarToOhp up(src);
  EXPECT_EQ(up.h_trusted(), (Multiset<Id>{2, 4, 6}));
  EXPECT_EQ(up.h_trusted().multiplicity(4), 1u);
}

TEST(ClassicalCorner, OmegaCheckerFlagsSplitLeadership) {
  GroundTruth gt{{1, 2}, {true, true}};
  Trajectory<Id> t0, t1;
  t0.record(0, Id{1});
  t1.record(0, Id{2});
  auto res = check_omega(gt, {&t0, &t1}, 100, 10);
  EXPECT_FALSE(res.ok);
}

TEST(ClassicalCorner, OPbarCheckerFlagsStaleSet) {
  GroundTruth gt{{1, 2}, {true, false}};
  Trajectory<std::set<Id>> t0, t1;
  t0.record(0, std::set<Id>{1, 2});  // keeps the crashed id
  t1.record(0, std::set<Id>{1});
  auto res = check_opbar(gt, {&t0, &t1}, 100, 10);
  EXPECT_FALSE(res.ok);
}

}  // namespace
}  // namespace hds
