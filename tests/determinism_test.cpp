// Reproducibility: a run is a pure function of its configuration — same
// seed, same schedule, same decisions, bit for bit. This is what makes
// every failing sweep case replayable.
#include <gtest/gtest.h>

#include "consensus/harness.h"

namespace hds {
namespace {

Fig8OracleParams fig8_params(std::uint64_t seed) {
  Fig8OracleParams p;
  p.ids = ids_homonymous(7, 3, 11);
  p.t_known = 3;
  p.crashes = crashes_last_k(7, 3, 20, 9, /*partial=*/true);
  p.fd_stabilize = 70;
  p.seed = seed;
  return p;
}

TEST(Determinism, IdenticalSeedsGiveIdenticalFig8Runs) {
  auto a = run_fig8_with_oracle(fig8_params(5));
  auto b = run_fig8_with_oracle(fig8_params(5));
  ASSERT_TRUE(a.check.ok) << a.check.detail;
  EXPECT_EQ(a.last_decision_time, b.last_decision_time);
  EXPECT_EQ(a.max_round, b.max_round);
  EXPECT_EQ(a.broadcasts, b.broadcasts);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].decided, b.decisions[i].decided);
    if (a.decisions[i].decided) {
      EXPECT_EQ(a.decisions[i].value, b.decisions[i].value);
      EXPECT_EQ(a.decisions[i].at, b.decisions[i].at);
      EXPECT_EQ(a.decisions[i].round, b.decisions[i].round);
    }
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  auto a = run_fig8_with_oracle(fig8_params(5));
  auto b = run_fig8_with_oracle(fig8_params(6));
  // Message schedules differ; the broadcast count almost surely differs.
  EXPECT_TRUE(a.broadcasts != b.broadcasts || a.last_decision_time != b.last_decision_time);
}

TEST(Determinism, Fig9FullStackIsReproducible) {
  auto run = [] {
    Fig9FullStackParams p;
    p.ids = ids_homonymous(5, 2, 7);
    p.crashes = crashes_last_k(5, 3, 37, 11);
    p.delta = 3;
    p.seed = 8;
    return run_fig9_full_stack(p);
  };
  auto a = run();
  auto b = run();
  ASSERT_TRUE(a.check.ok) << a.check.detail;
  EXPECT_EQ(a.last_decision_time, b.last_decision_time);
  EXPECT_EQ(a.broadcasts, b.broadcasts);
  EXPECT_EQ(a.max_sub_round, b.max_sub_round);
}

TEST(Determinism, WorkloadGeneratorsArePure) {
  EXPECT_EQ(ids_homonymous(10, 4, 3), ids_homonymous(10, 4, 3));
  EXPECT_NE(ids_homonymous(10, 4, 3), ids_homonymous(10, 4, 4));
  // Every one of the `distinct` identifiers is actually used.
  auto ids = ids_homonymous(12, 5, 9);
  std::set<Id> seen(ids.begin(), ids.end());
  EXPECT_EQ(seen.size(), 5u);
  for (Id i : ids) {
    EXPECT_GE(i, 1u);
    EXPECT_LE(i, 5u);
  }
}

TEST(Determinism, CrashScheduleShape) {
  auto crashes = crashes_last_k(6, 2, 30, 5);
  EXPECT_FALSE(crashes[0].has_value());
  EXPECT_FALSE(crashes[3].has_value());
  ASSERT_TRUE(crashes[5].has_value());
  ASSERT_TRUE(crashes[4].has_value());
  EXPECT_EQ(crashes[5]->at, 30);
  EXPECT_EQ(crashes[4]->at, 35);
  EXPECT_THROW(crashes_last_k(3, 3, 1), std::invalid_argument);
  EXPECT_THROW(ids_homonymous(3, 0, 1), std::invalid_argument);
  EXPECT_THROW(ids_homonymous(3, 4, 1), std::invalid_argument);
}

}  // namespace
}  // namespace hds
