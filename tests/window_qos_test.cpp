// Streaming window-QoS estimator: O(1)-per-event sliding-window versions of
// the post-hoc QoS metrics, fed from FdOutputListener change sites.
#include "obs/window_qos.h"

#include <gtest/gtest.h>

#include "fd/output_hooks.h"
#include "obs/metrics.h"

namespace hds::obs {
namespace {

Multiset<Id> ms(std::initializer_list<Id> ids) {
  Multiset<Id> m;
  for (const Id id : ids) m.insert(id);
  return m;
}

WindowQosConfig base_cfg(std::vector<Id> ids, std::vector<bool> correct,
                         std::vector<SimTime> crash_at = {}) {
  WindowQosConfig cfg;
  cfg.gt.ids = std::move(ids);
  cfg.gt.correct = std::move(correct);
  cfg.crash_at = std::move(crash_at);
  cfg.width = 100;
  cfg.windows = 4;
  return cfg;
}

TEST(WindowQos, DetectionLatencyFromFirstDrop) {
  WindowQos wq(base_cfg({1, 2, 3}, {true, false, true}, {-1, 100, -1}));
  // Before the crash instant nothing is detectable.
  wq.listener(0)->on_trusted_change(50, ms({1, 2, 3}));
  EXPECT_EQ(wq.stats().detections, 0u);
  // First output missing the crashed identifier after its crash = detection.
  wq.listener(0)->on_trusted_change(150, ms({1, 3}));
  const WindowQosStats s = wq.stats();
  EXPECT_EQ(s.detections, 1u);
  EXPECT_DOUBLE_EQ(s.detection_latency_mean, 50.0);
  EXPECT_EQ(s.detection_latency_max, 50);
  // Re-reporting the same deficit is not a second detection.
  wq.listener(0)->on_trusted_change(200, ms({1, 3}));
  EXPECT_EQ(wq.stats().detections, 1u);
}

TEST(WindowQos, HomonymousDeficitCapsDetections) {
  // Two processes share identifier 1; one crashes. As long as the observer
  // still trusts two copies there is no observable deficit — homonymy hides
  // the crash until a copy actually drops.
  WindowQos wq(base_cfg({1, 1, 2}, {true, false, true}, {-1, 100, -1}));
  wq.listener(0)->on_trusted_change(150, ms({1, 1, 2}));
  EXPECT_EQ(wq.stats().detections, 0u);
  wq.listener(0)->on_trusted_change(200, ms({1, 2}));
  const WindowQosStats s = wq.stats();
  EXPECT_EQ(s.detections, 1u);
  EXPECT_EQ(s.detection_latency_max, 100);
}

TEST(WindowQos, MistakeIntervalOpensAndCloses) {
  WindowQos wq(base_cfg({1, 2, 3}, {true, true, true}));
  wq.listener(0)->on_trusted_change(100, ms({1, 3}));  // drops correct id 2
  WindowQosStats s = wq.stats();
  EXPECT_EQ(s.mistake_intervals, 1u);
  EXPECT_EQ(s.mistakes_open, 1u);
  EXPECT_EQ(s.mistake_time, 0);
  wq.listener(0)->on_trusted_change(180, ms({1, 2, 3}));
  s = wq.stats();
  EXPECT_EQ(s.mistake_intervals, 1u);
  EXPECT_EQ(s.mistakes_open, 0u);
  EXPECT_EQ(s.mistake_time, 80);
}

TEST(WindowQos, SigmaOutputSharesTheMistakeRule) {
  WindowQos wq(base_cfg({1, 2}, {true, true}));
  wq.listener(1)->on_sigma_change(40, ms({1}));
  EXPECT_EQ(wq.stats().mistakes_open, 1u);
}

TEST(WindowQos, HomegaFlapsCountChangesAfterFirstOutput) {
  WindowQos wq(base_cfg({1, 2}, {true, true}));
  FdOutputListener* l = wq.listener(0);
  l->on_homega_change(10, HOmegaOut{1, 1});  // first output: not a flap
  l->on_homega_change(20, HOmegaOut{2, 1});  // flap
  l->on_homega_change(30, HOmegaOut{2, 1});  // unchanged: not a flap
  l->on_homega_change(40, HOmegaOut{2, 2});  // multiplicity change: flap
  EXPECT_EQ(wq.stats().homega_flaps, 2u);
}

TEST(WindowQos, QuorumMarginTracksMinPairwiseIntersection) {
  WindowQos wq(base_cfg({1, 2, 3}, {true, true, true}));
  HSigmaSnapshot snap;
  snap.quora[Label::of_text("a")] = ms({1, 2});
  wq.listener(0)->on_hsigma_change(10, snap);
  // Lone quorum: the self-pair margin is its own size.
  EXPECT_EQ(wq.stats().quorum_margin_min, 2);
  HSigmaSnapshot snap2;
  snap2.quora[Label::of_text("b")] = ms({2, 3});
  wq.listener(1)->on_hsigma_change(20, snap2);
  // {1,2} vs {2,3} share only one element.
  EXPECT_EQ(wq.stats().quorum_margin_min, 1);
  // Re-announcing an already-seen quorum changes nothing.
  wq.listener(2)->on_hsigma_change(30, snap2);
  EXPECT_EQ(wq.stats().quorum_margin_min, 1);
}

TEST(WindowQos, RingAgesOutOldSubWindows) {
  WindowQos wq(base_cfg({1, 2}, {true, true}));  // width 100, 4 windows
  wq.listener(0)->on_homega_change(50, HOmegaOut{1, 1});
  EXPECT_EQ(wq.stats().events, 1u);
  // A jump past the whole covered span recycles every sub-window.
  wq.listener(0)->on_homega_change(1000, HOmegaOut{2, 1});
  const WindowQosStats s = wq.stats();
  EXPECT_EQ(s.events, 1u);
  // The flap survives: flap state is per-observer, not per-window.
  EXPECT_EQ(s.homega_flaps, 1u);
  EXPECT_EQ(s.window_end, 1100);
}

TEST(WindowQos, StragglerClampsIntoOldestLiveSubWindow) {
  WindowQos wq(base_cfg({1, 2}, {true, true}));
  wq.listener(0)->on_homega_change(950, HOmegaOut{1, 1});  // sub-window 9
  // A timestamp far in the past (thread-runtime skew) must neither crash
  // nor resurrect a recycled slot; it lands in the oldest live sub-window.
  wq.listener(1)->on_homega_change(100, HOmegaOut{1, 1});
  const WindowQosStats s = wq.stats();
  EXPECT_EQ(s.events, 2u);
  EXPECT_EQ(s.window_end, 1000);
  const Json j = wq.json();
  ASSERT_EQ(j.find("events")->items().size(), 4u);
  EXPECT_EQ(j.find("events")->items()[0].integer(), 1);  // clamped straggler
  EXPECT_EQ(j.find("events")->items()[3].integer(), 1);
}

TEST(WindowQos, JsonSeriesRunOldestFirst) {
  WindowQos wq(base_cfg({1, 2}, {true, true}));
  wq.listener(0)->on_homega_change(50, HOmegaOut{1, 1});
  wq.listener(0)->on_homega_change(150, HOmegaOut{2, 1});
  wq.listener(0)->on_homega_change(160, HOmegaOut{1, 1});
  const Json j = wq.json();
  EXPECT_EQ(j.number_or("window_end", 0), 200.0);
  ASSERT_EQ(j.find("events")->items().size(), 2u);
  EXPECT_EQ(j.find("events")->items()[0].integer(), 1);
  EXPECT_EQ(j.find("events")->items()[1].integer(), 2);
  EXPECT_EQ(j.find("flaps")->items()[1].integer(), 2);
}

TEST(WindowQos, GaugesLandInTheRegistryOnStats) {
  MetricsRegistry reg;
  WindowQosConfig cfg = base_cfg({1, 2}, {true, true});
  cfg.metrics = &reg;
  WindowQos wq(cfg);
  wq.listener(0)->on_homega_change(10, HOmegaOut{1, 1});
  wq.listener(0)->on_homega_change(20, HOmegaOut{2, 1});
  (void)wq.stats();
  const MetricsSnapshot snap = reg.snapshot();
  bool saw_events = false;
  bool saw_flaps = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "qos_window_events") {
      saw_events = true;
      EXPECT_EQ(g.value, 2);
    }
    if (g.name == "qos_window_homega_flaps") {
      saw_flaps = true;
      EXPECT_EQ(g.value, 1);
    }
  }
  EXPECT_TRUE(saw_events);
  EXPECT_TRUE(saw_flaps);
}

TEST(WindowQos, TeeFansOutToMonitorAndEstimator) {
  // The harness shares one listener slot between the monitor and the
  // estimator via FdOutputTee; both sides must see every change.
  WindowQos a(base_cfg({1, 2}, {true, true}));
  WindowQos b(base_cfg({1, 2}, {true, true}));
  FdOutputTee tee(a.listener(0), b.listener(0));
  tee.on_homega_change(10, HOmegaOut{1, 1});
  tee.on_trusted_change(20, ms({1, 2}));
  EXPECT_EQ(a.stats().events, 2u);
  EXPECT_EQ(b.stats().events, 2u);
}

TEST(WindowQos, RejectsDegenerateConfig) {
  WindowQosConfig cfg = base_cfg({1}, {true});
  cfg.width = 0;
  EXPECT_THROW(WindowQos{cfg}, std::invalid_argument);
  WindowQosConfig cfg2 = base_cfg({1}, {true});
  cfg2.windows = 0;
  EXPECT_THROW(WindowQos{cfg2}, std::invalid_argument);
  WindowQos wq(base_cfg({1}, {true}));
  EXPECT_THROW(wq.listener(1), std::out_of_range);
}

}  // namespace
}  // namespace hds::obs
