// Golden wire-format fixtures: freezes the v1 frame layout.
//
// Each registered body type has one fixed sample message; its encoded frame
// is compared byte-for-byte against the committed tests/wire/<type>.bin.
// If any of these fail, the change is wire-incompatible: a v1 hds_node can
// no longer talk to the new build. Either revert the layout change or bump
// kWireVersion and regenerate the fixtures with:
//
//   HDS_REGEN_WIRE=1 ./wire_golden_test
//
// (then commit the new tests/wire/*.bin alongside the version bump).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/label.h"
#include "common/multiset.h"
#include "consensus/messages.h"
#include "fd/impl/alive_ranker.h"
#include "fd/impl/ap_sync.h"
#include "fd/impl/homega_heartbeat.h"
#include "fd/impl/hsigma_sync.h"
#include "fd/impl/ohp_polling.h"
#include "net/codec.h"
#include "net/reliable.h"
#include "smr/types.h"
#include "smr/workload.h"

namespace hds::net {
namespace {

std::set<Label> sample_labels() {
  Multiset<Id> a;
  a.insert(1);
  a.insert(1);
  a.insert(2);
  Multiset<Id> b;
  b.insert(3);
  return {Label::of_multiset(a), Label::of_multiset(b)};
}

// One deterministic sample per registered type, sent by index 2 / id 7.
// Values are arbitrary but varied enough to exercise multi-byte varints,
// negative zigzags, and the optional/absent MaybeValue arm.
std::map<std::string, Message> sample_messages() {
  std::map<std::string, Message> out;
  const auto put = [&](Message m) { out[m.type] = std::move(m); };
  put(make_message(AliveRanker::kMsgType, AliveMsg{300}));
  put(make_message(APSyncProcess::kMsgType, ApAliveMsg{}));
  put(make_message(HOmegaHeartbeat::kMsgType, HeartbeatMsg{9, 12345}));
  put(make_message(HSigmaSyncProcess::kMsgType, IdentMsg{130}));
  put(make_message(OHPPolling::kPollType, PollingMsg{17, 42}));
  put(make_message(OHPPolling::kReplyType, PollReplyMsg{3, 17, 42, 7}));
  put(make_message(kCoordType, CoordMsg{7, 4, -250, 1}));
  put(make_message(kPh0Type, Ph0Msg{2, 101, 0}));
  put(make_message(kPh1Type, Ph1Msg{5, -3, 2}));
  put(make_message(kPh2Type, Ph2Msg{6, std::nullopt, 0}));
  put(make_message(kDecideType, DecideMsg{102, 3}));
  put(make_message(kPh1QType, Ph1QMsg{7, 8, 6, sample_labels(), 103, 1}));
  put(make_message(kPh2QType, Ph2QMsg{7, 9, 7, sample_labels(), MaybeValue{104}, -1}));
  // SMR bodies: ops with and without padding, nested batches, commit
  // records, a multi-entry promise.
  const smr::SmrOp op1{smr::kClientStride + 3, 11, 42, -5, {}};
  const smr::SmrOp op2{2 * smr::kClientStride, 1, 300, 77, {0xAB, 0xCD}};
  const smr::SmrBatch batch{smr::make_batch_id(1, 9), {op1, op2}};
  put(make_message(smr::kSmrAppendType,
                   smr::SmrAppendMsg{5, 12, batch, {{10, smr::make_batch_id(0, 4)}, {11, 0}}}));
  put(make_message(smr::kSmrAckType,
                   smr::SmrAckMsg{5, 2, 12, 10, 11, {{11, smr::make_batch_id(2, 1)}}, {op1}}));
  put(make_message(smr::kSmrNewEpochType, smr::SmrNewEpochMsg{8, 13, 2}));
  put(make_message(smr::kSmrPromiseType,
                   smr::SmrPromiseMsg{8,
                                      1,
                                      10,
                                      {{11, 5, true, batch},
                                       {12, 5, false, smr::SmrBatch{smr::kNoopBatchId, {}}}}}));
  put(make_message(smr::kSmrProposeType, smr::SmrProposeMsg{8, 12, batch}));
  return out;
}

std::string fixture_path(const BodyCodec& c) {
  return std::string(HDS_WIRE_DIR) + "/tag" + (c.tag < 10 ? "0" : "") + std::to_string(c.tag) +
         "_" + c.type + ".bin";
}

std::vector<std::uint8_t> read_bin(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "missing fixture " << path << " (run with HDS_REGEN_WIRE=1)";
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(WireGolden, V1FrameLayoutIsFrozen) {
  const bool regen = std::getenv("HDS_REGEN_WIRE") != nullptr;
  auto samples = sample_messages();
  for (const BodyCodec* c : builtin_codecs().all()) {
    ASSERT_TRUE(samples.count(c->type)) << "no golden sample for registered type " << c->type;
    const auto frame = encode_frame(builtin_codecs(), samples.at(c->type), /*sender_index=*/2,
                                    /*sender_id=*/7);
    const std::string path = fixture_path(*c);
    if (regen) {
      std::ofstream out(path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(frame.data()),
                static_cast<std::streamsize>(frame.size()));
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      continue;
    }
    EXPECT_EQ(frame, read_bin(path))
        << c->type << ": encoded frame diverges from the committed v1 fixture";
  }
  // No stale fixtures for since-unregistered types: count must match.
  ASSERT_EQ(samples.size(), builtin_codecs().all().size());
}

TEST(WireGolden, FixturesStillDecodeToTheSampleValues) {
  if (std::getenv("HDS_REGEN_WIRE") != nullptr) GTEST_SKIP() << "regen run";
  auto samples = sample_messages();
  for (const BodyCodec* c : builtin_codecs().all()) {
    const auto bytes = read_bin(fixture_path(*c));
    ASSERT_FALSE(bytes.empty());
    const Message m = decode_frame(builtin_codecs(), bytes.data(), bytes.size());
    EXPECT_EQ(m.type, c->type);
    EXPECT_EQ(m.meta_sender, 2u);
  }
}

TEST(WireGolden, TraceContextExtensionLayoutIsFrozen) {
  // The optional causal extension (version byte OR kWireTracedFlag, then
  // lineage id / parent / Lamport clock varints between the sender id and
  // the body length). One fixture pins its layout; the per-type fixtures
  // above pin that untraced frames carry none of it.
  Message m = sample_messages().at(OHPPolling::kPollType);
  m.meta_causal_id = (std::uint64_t{2} << 48) | 9;
  m.meta_causal_parent = (std::uint64_t{2} << 48) | 4;
  m.meta_causal_clock = 77;
  const auto frame = encode_frame(builtin_codecs(), m, /*sender_index=*/2, /*sender_id=*/7);
  ASSERT_EQ(frame[2], kWireVersion | kWireTracedFlag);
  const std::string path = std::string(HDS_WIRE_DIR) + "/ext_trace_context.bin";
  if (std::getenv("HDS_REGEN_WIRE") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    return;
  }
  EXPECT_EQ(frame, read_bin(path)) << "traced frame diverges from the committed fixture";
  const Message back = decode_frame(builtin_codecs(), frame.data(), frame.size());
  EXPECT_EQ(back.meta_causal_id, m.meta_causal_id);
  EXPECT_EQ(back.meta_causal_parent, m.meta_causal_parent);
  EXPECT_EQ(back.meta_causal_clock, m.meta_causal_clock);
}

TEST(WireGolden, RelHeaderExtensionLayoutIsFrozen) {
  // The optional ARQ extension (version byte OR kWireRelFlag, then the six
  // epoch/seq/floor/ack varints right before the body length). One fixture
  // pins its layout; the per-type fixtures above pin that reliability-off
  // frames stay byte-identical to plain v1.
  const auto inner = encode_frame(builtin_codecs(), sample_messages().at(OHPPolling::kPollType),
                                  /*sender_index=*/2, /*sender_id=*/7);
  RelHeader h;
  h.epoch = 1;
  h.seq = 300;  // multi-byte varint
  h.lost_floor = 2;
  h.ack_epoch = 1;
  h.ack_cum = 129;
  h.ack_bits = 0b1011;
  const auto frame = rel_wrap(inner, h);
  ASSERT_EQ(frame[2], kWireVersion | kWireRelFlag);
  const std::string path = std::string(HDS_WIRE_DIR) + "/ext_rel_header.bin";
  if (std::getenv("HDS_REGEN_WIRE") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    return;
  }
  EXPECT_EQ(frame, read_bin(path)) << "ARQ-wrapped frame diverges from the committed fixture";
  const auto back = rel_peek(frame.data(), frame.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, h.seq);
  EXPECT_EQ(back->ack_cum, h.ack_cum);
  EXPECT_NO_THROW(decode_frame(builtin_codecs(), frame.data(), frame.size()));
}

TEST(WireGolden, ControlFrameLayoutIsFrozen) {
  // Control frames never cross versions (they only exist inside one
  // cluster), but the HELLO bytes are still pinned so a layout slip shows
  // up here instead of as a silent peer-barrier hang between builds.
  const auto hello = encode_control_frame(kTagHello, 2, 7);
  const std::vector<std::uint8_t> expected = {
      'H', 'S', 1, 0xF0, 2, 7, 0,              // header, empty body
      hello[7], hello[8], hello[9], hello[10],  // checksum (covered below)
  };
  ASSERT_EQ(hello.size(), 11u);
  EXPECT_EQ(hello, expected);
  EXPECT_EQ(fnv1a(hello.data(), 7), static_cast<std::uint32_t>(hello[7]) |
                                        (static_cast<std::uint32_t>(hello[8]) << 8) |
                                        (static_cast<std::uint32_t>(hello[9]) << 16) |
                                        (static_cast<std::uint32_t>(hello[10]) << 24));
}

}  // namespace
}  // namespace hds::net
