// Tests of every reduction arrow in the paper's Figure 5 relation diagram:
//   Theorem 1  — Σ → HΣ (Fig. 1 with membership, Fig. 2 without)
//   Theorem 2  — HΣ → Σ (Fig. 4, using a class-S ranker)
//   Theorem 3  — AΣ → HΣ (no communication)
//   Lemma 2    — AP → ◇HP̄ (no communication)
//   Lemma 3    — AP → HΣ (no communication)
//   Observation 1 — ◇HP̄ → HΩ (no communication)
// Each reduction runs against an oracle source (and, where meaningful, a
// real implementation source), and the output trace is validated against
// the target class's checker.
#include <gtest/gtest.h>

#include <memory>

#include "consensus/harness.h"
#include "fd/impl/alive_ranker.h"
#include "fd/impl/ap_sync.h"
#include "fd/impl/hsigma_sync.h"
#include "fd/oracles.h"
#include "fd/reduce/ap_to_hsigma.h"
#include "fd/reduce/ap_to_asigma.h"
#include "fd/reduce/ap_to_ohp.h"
#include "fd/reduce/asigma_to_hsigma.h"
#include "fd/reduce/hsigma_to_sigma.h"
#include "fd/reduce/ohp_to_homega.h"
#include "fd/reduce/sigma_to_hsigma.h"
#include "sim/stacked_process.h"
#include "sim/system.h"
#include "spec/fd_checkers.h"

namespace hds {
namespace {

// --------------------------------------------------- Theorem 1 (Figs. 1-2)

struct Theorem1Run {
  std::unique_ptr<System> sys;
  std::unique_ptr<OracleSigma> sigma;
  std::vector<const Trajectory<HSigmaSnapshot>*> traces;
  GroundTruth gt;
};

Theorem1Run run_theorem1(bool with_membership, OracleSigma::Mode mode, std::size_t n,
                         std::size_t crash_k, std::uint64_t seed) {
  Theorem1Run run;
  SystemConfig cfg;
  for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);  // unique ids
  cfg.timing = std::make_unique<AsyncTiming>(1, 5);
  cfg.crashes.resize(n);
  for (std::size_t j = 0; j < crash_k; ++j) cfg.crashes[n - 1 - j] = CrashPlan{20};
  cfg.seed = seed;
  run.sys = std::make_unique<System>(std::move(cfg));
  auto& sys = *run.sys;
  run.sigma = std::make_unique<OracleSigma>(GroundTruth::from(sys), [&sys] { return sys.now(); },
                                            100, mode);
  std::set<Id> membership;
  for (ProcIndex i = 0; i < n; ++i) membership.insert(sys.id_of(i));
  for (ProcIndex i = 0; i < n; ++i) {
    if (with_membership) {
      auto red = std::make_unique<SigmaToHSigmaLocal>(run.sigma->handle(i), sys.id_of(i),
                                                      membership);
      run.traces.push_back(&red->trace());
      sys.set_process(i, std::move(red));
    } else {
      auto red = std::make_unique<SigmaToHSigmaBcast>(run.sigma->handle(i));
      run.traces.push_back(&red->trace());
      sys.set_process(i, std::move(red));
    }
  }
  sys.start();
  sys.run_until(400);
  run.gt = GroundTruth::from(sys);
  return run;
}

TEST(Theorem1, Fig1WithMembershipYieldsHSigma) {
  auto run = run_theorem1(true, OracleSigma::Mode::kCoarse, 4, 1, 1);
  auto res = check_hsigma(run.gt, run.traces);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(Theorem1, Fig2WithoutMembershipYieldsHSigma) {
  auto run = run_theorem1(false, OracleSigma::Mode::kCoarse, 4, 1, 2);
  auto res = check_hsigma(run.gt, run.traces);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(Theorem1, SurvivesChurningPivotSigma) {
  for (bool with_membership : {true, false}) {
    auto run = run_theorem1(with_membership, OracleSigma::Mode::kPivot, 5, 2, 3);
    auto res = check_hsigma(run.gt, run.traces);
    EXPECT_TRUE(res.ok) << "membership=" << with_membership << ": " << res.detail;
  }
}

TEST(Theorem1, LabelUniverseIsAllSubsetsContainingSelf) {
  auto labels = labels_of_membership({1, 2, 3}, 2);
  EXPECT_EQ(labels.size(), 4u);  // {2}, {1,2}, {2,3}, {1,2,3}
  EXPECT_TRUE(labels.contains(Label::of_set({2})));
  EXPECT_TRUE(labels.contains(Label::of_set({1, 2, 3})));
  EXPECT_FALSE(labels.contains(Label::of_set({1, 3})));
  // Unknown self: no labels yet (Fig. 2 before receiving own IDENT).
  EXPECT_TRUE(labels_of_membership({1, 3}, 2).empty());
  // Size guard: the universe is exponential by construction.
  std::set<Id> big;
  for (Id i = 1; i <= kMaxMembershipForLabels + 1; ++i) big.insert(i);
  EXPECT_THROW(labels_of_membership(big, 1), std::invalid_argument);
}

// --------------------------------------------------- Theorem 2 (Fig. 4)

TEST(Theorem2, Fig4OverOracleHSigmaYieldsSigma) {
  const std::size_t n = 5;
  SystemConfig cfg;
  for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
  cfg.timing = std::make_unique<AsyncTiming>(1, 5);
  cfg.crashes = {std::nullopt, std::nullopt, std::nullopt, CrashPlan{30}, CrashPlan{40}};
  cfg.seed = 7;
  System sys(std::move(cfg));
  OracleHSigma hsigma(GroundTruth::from(sys), [&sys] { return sys.now(); }, 120);
  std::vector<const Trajectory<Multiset<Id>>*> traces;
  for (ProcIndex i = 0; i < n; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    auto* ranker = stack->add(std::make_unique<AliveRanker>(4));
    auto* red = stack->add(std::make_unique<HSigmaToSigma>(hsigma.handle(i), *ranker));
    traces.push_back(&red->trace());
    sys.set_process(i, std::move(stack));
  }
  sys.start();
  sys.run_until(800);
  auto res = check_sigma(GroundTruth::from(sys), traces, 800, 80);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(Theorem2, Fig4OverRealFig7DetectorYieldsSigma) {
  // Corollary 1 round trip with a real source: HΣ built by the Fig. 7
  // adapter feeds the Fig. 4 transformation, all in one stack.
  const std::size_t n = 4;
  SystemConfig cfg;
  for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
  cfg.timing = std::make_unique<BoundedTiming>(2);
  cfg.crashes = crashes_none(n);
  cfg.crashes[n - 1] = CrashPlan{25};
  cfg.seed = 9;
  System sys(std::move(cfg));
  std::vector<const Trajectory<Multiset<Id>>*> traces;
  for (ProcIndex i = 0; i < n; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    auto* src = stack->add(std::make_unique<HSigmaComponent>(3));
    auto* ranker = stack->add(std::make_unique<AliveRanker>(4));
    auto* red = stack->add(std::make_unique<HSigmaToSigma>(*src, *ranker));
    traces.push_back(&red->trace());
    sys.set_process(i, std::move(stack));
  }
  sys.start();
  sys.run_until(800);
  auto res = check_sigma(GroundTruth::from(sys), traces, 800, 80);
  EXPECT_TRUE(res.ok) << res.detail;
}

// --------------------------------------------------- Theorem 3 (AΣ → HΣ)

TEST(Theorem3, ASigmaToHSigmaOverOracle) {
  GroundTruth gt;
  gt.ids = {kBottomId, kBottomId, kBottomId, kBottomId};
  gt.correct = {true, true, false, true};
  SimTime now = 0;
  OracleASigma src(gt, [&now] { return now; }, 60);
  std::vector<ASigmaToHSigma> reds;
  for (ProcIndex p = 0; p < 4; ++p) reds.emplace_back(src.handle(p));
  std::vector<Trajectory<HSigmaSnapshot>> trajs(4);
  for (now = 0; now <= 150; ++now) {
    for (ProcIndex p = 0; p < 4; ++p) trajs[p].record(now, reds[p].snapshot());
  }
  std::vector<const Trajectory<HSigmaSnapshot>*> ptrs;
  for (auto& t : trajs) ptrs.push_back(&t);
  auto res = check_hsigma(gt, ptrs);
  EXPECT_TRUE(res.ok) << res.detail;
  // The pair (x, bottom^y) shape: counts become multisets of bottoms.
  const auto fin = trajs[0].final();
  ASSERT_FALSE(fin.quora.empty());
  for (const auto& [x, m] : fin.quora) {
    (void)x;
    EXPECT_EQ(m.multiplicity(kBottomId), m.size());
  }
}

// --------------------------------------------------- Lemmas 2-3 (AP → …)

TEST(Lemma2, ApToOhpOverOracle) {
  GroundTruth gt;
  gt.ids = {kBottomId, kBottomId, kBottomId};
  gt.correct = {true, true, false};
  SimTime now = 0;
  OracleAP src(gt, [&now] { return now; }, 40);
  std::vector<ApToOhp> reds;
  for (ProcIndex p = 0; p < 3; ++p) reds.emplace_back(src.handle(p));
  std::vector<Trajectory<Multiset<Id>>> trajs(3);
  for (now = 0; now <= 100; ++now) {
    for (ProcIndex p = 0; p < 3; ++p) trajs[p].record(now, reds[p].h_trusted());
  }
  std::vector<const Trajectory<Multiset<Id>>*> ptrs;
  for (auto& t : trajs) ptrs.push_back(&t);
  auto res = check_ohp(gt, ptrs, 100, 20);
  EXPECT_TRUE(res.ok) << res.detail;
  EXPECT_EQ(trajs[0].final(), Multiset<Id>::with_copies(kBottomId, 2));
}

TEST(Lemma2, BootstrapInfinityMapsToEmpty) {
  APSyncProcess ap;  // anap = infinity before the first step
  ApToOhp red(ap);
  EXPECT_TRUE(red.h_trusted().empty());
}

TEST(Lemma3, ApToHSigmaOverRealApImplementation) {
  // Full anonymous synchronous pipeline: AP implementation in the lock-step
  // engine, Lemma 3 adapter sampled once per step, HΣ checker on the trace.
  const std::size_t n = 5;
  SyncConfig cfg;
  cfg.ids = ids_anonymous(n);
  cfg.crashes.resize(n);
  cfg.crashes[3] = SyncCrashPlan{2, false};
  cfg.crashes[4] = SyncCrashPlan{4, true};
  cfg.seed = 3;
  SyncSystem sys(std::move(cfg));
  std::vector<APSyncProcess*> aps;
  for (ProcIndex i = 0; i < n; ++i) {
    auto ap = std::make_unique<APSyncProcess>();
    aps.push_back(ap.get());
    sys.set_process(i, std::move(ap));
  }
  std::vector<std::unique_ptr<ApToHSigma>> reds;
  for (ProcIndex i = 0; i < n; ++i) reds.push_back(std::make_unique<ApToHSigma>(*aps[i]));
  std::vector<Trajectory<HSigmaSnapshot>> trajs(n);
  for (std::size_t step = 0; step < 12; ++step) {
    sys.run_steps(1);
    for (ProcIndex i = 0; i < n; ++i) {
      if (sys.alive_in_step(i, step + 1)) {
        trajs[i].record(static_cast<SimTime>(step + 1), reds[i]->snapshot());
      }
    }
  }
  std::vector<const Trajectory<HSigmaSnapshot>*> ptrs;
  for (auto& t : trajs) ptrs.push_back(&t);
  auto res = check_hsigma(GroundTruth::from(sys), ptrs);
  EXPECT_TRUE(res.ok) << res.detail;
}

// ------------------------------------- AP → AΣ (Fig. 5 solid arrow, [6])

TEST(ApToASigmaArrow, ComposedWithTheorem3SatisfiesHSigma) {
  // Validate AP → AΣ by composing it with Theorem 3 (AΣ → HΣ) and running
  // the full HΣ property checker over the composite — the checker stack
  // validating a reduction stack.
  const std::size_t n = 5;
  SyncConfig cfg;
  cfg.ids = ids_anonymous(n);
  cfg.crashes = sync_crashes_last_k(n, 2, 2, 2, false);
  cfg.seed = 6;
  SyncSystem sys(std::move(cfg));
  std::vector<APSyncProcess*> aps;
  for (ProcIndex i = 0; i < n; ++i) {
    auto ap = std::make_unique<APSyncProcess>();
    aps.push_back(ap.get());
    sys.set_process(i, std::move(ap));
  }
  std::vector<std::unique_ptr<ApToASigma>> to_asigma;
  std::vector<std::unique_ptr<ASigmaToHSigma>> to_hsigma;
  for (ProcIndex i = 0; i < n; ++i) {
    to_asigma.push_back(std::make_unique<ApToASigma>(*aps[i]));
    to_hsigma.push_back(std::make_unique<ASigmaToHSigma>(*to_asigma[i]));
  }
  std::vector<Trajectory<HSigmaSnapshot>> trajs(n);
  for (std::size_t step = 0; step < 12; ++step) {
    sys.run_steps(1);
    for (ProcIndex i = 0; i < n; ++i) {
      if (sys.alive_in_step(i, step + 1)) {
        trajs[i].record(static_cast<SimTime>(step + 1), to_hsigma[i]->snapshot());
      }
    }
  }
  std::vector<const Trajectory<HSigmaSnapshot>*> ptrs;
  for (auto& t : trajs) ptrs.push_back(&t);
  auto res = check_hsigma(GroundTruth::from(sys), ptrs);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(ApToASigmaArrow, PairsAccumulateMonotonically) {
  class FixedAp final : public APHandle {
   public:
    [[nodiscard]] std::size_t anap() const override { return value; }
    std::size_t value = std::numeric_limits<std::size_t>::max();
  };
  FixedAp ap;
  ApToASigma red(ap);
  EXPECT_TRUE(red.a_sigma().empty());  // bootstrap infinity: nothing yet
  ap.value = 5;
  EXPECT_EQ(red.a_sigma().size(), 1u);
  ap.value = 3;
  auto pairs = red.a_sigma();
  ASSERT_EQ(pairs.size(), 2u);  // the old pair survives (AΣ monotonicity)
  EXPECT_EQ(pairs[0], (ASigmaPair{3, 3}));
  EXPECT_EQ(pairs[1], (ASigmaPair{5, 5}));
}

// ------------------------------------------- Observation 1 (◇HP̄ → HΩ)

TEST(Observation1, OhpToHOmegaOverOracle) {
  GroundTruth gt;
  gt.ids = {4, 2, 2, 9};
  gt.correct = {true, true, true, false};
  SimTime now = 0;
  OracleOHP src(gt, [&now] { return now; }, 30);
  std::vector<OhpToHOmega> reds;
  for (ProcIndex p = 0; p < 4; ++p) reds.emplace_back(src.handle(p), gt.ids[p]);
  std::vector<Trajectory<HOmegaOut>> trajs(4);
  for (now = 0; now <= 100; ++now) {
    for (ProcIndex p = 0; p < 4; ++p) trajs[p].record(now, reds[p].h_omega());
  }
  std::vector<const Trajectory<HOmegaOut>*> ptrs;
  for (auto& t : trajs) ptrs.push_back(&t);
  auto res = check_homega(gt, ptrs, 100, 20);
  EXPECT_TRUE(res.ok) << res.detail;
  EXPECT_EQ(trajs[0].final(), (HOmegaOut{2, 2}));
}

TEST(Observation1, EmptyTrustedFallsBackToSelf) {
  class EmptyOhp final : public OHPHandle {
   public:
    [[nodiscard]] Multiset<Id> h_trusted() const override { return {}; }
  };
  EmptyOhp src;
  OhpToHOmega red(src, 77);
  EXPECT_EQ(red.h_omega(), (HOmegaOut{77, 1}));
}

}  // namespace
}  // namespace hds
