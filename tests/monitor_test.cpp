// Tests of the online property monitors: per-rule classification driven
// directly through the listener interface, silence on clean runs, an
// adversarial simulated schedule triggering the expected rules, TraceLog /
// metrics mirroring, and a thread-runtime smoke test.
#include "obs/monitor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "consensus/harness.h"
#include "fd/impl/homega_heartbeat.h"
#include "rt/runtime.h"
#include "sim/tracelog.h"

namespace hds {
namespace {

using obs::MonitorConfig;
using obs::MonitorEvent;
using obs::OnlineMonitor;

// ids {1,2,3}; process 2 (id 3) crashed. I(Correct) = {1,2}.
MonitorConfig base_config(SimTime watch_from = 100) {
  MonitorConfig cfg;
  cfg.gt.ids = {1, 2, 3};
  cfg.gt.correct = {true, true, false};
  cfg.watch_from = watch_from;
  return cfg;
}

TEST(Monitor, SuspectCorrectVsLateChange) {
  OnlineMonitor mon(base_config());
  // Missing the correct id 2: a wrong suspicion.
  mon.listener(0)->on_trusted_change(150, Multiset<Id>{1, 3});
  // Covers every correct instance: churn, but only a warning.
  mon.listener(1)->on_trusted_change(160, Multiset<Id>{1, 2, 3});

  const auto evs = mon.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].severity, MonitorEvent::Severity::kViolation);
  EXPECT_EQ(evs[0].rule, "suspect-correct");
  EXPECT_EQ(evs[0].at, 150);
  EXPECT_EQ(evs[0].proc, 0u);
  EXPECT_EQ(evs[1].severity, MonitorEvent::Severity::kWarning);
  EXPECT_EQ(evs[1].rule, "late-change");
  EXPECT_EQ(mon.violation_count(), 1u);
  EXPECT_EQ(mon.warning_count(), 1u);
}

TEST(Monitor, EventualRulesAreGatedByWatchFrom) {
  OnlineMonitor mon(base_config(100));
  mon.listener(0)->on_trusted_change(99, Multiset<Id>{3});           // pre-window
  mon.listener(0)->on_homega_change(99, HOmegaOut{3, 1});            // pre-window
  mon.listener(0)->on_sigma_change(99, Multiset<Id>{3});             // pre-window
  EXPECT_TRUE(mon.events().empty());
  // At the boundary the window is open (at >= watch_from).
  mon.listener(0)->on_trusted_change(100, Multiset<Id>{3});
  EXPECT_EQ(mon.events().size(), 1u);
}

TEST(Monitor, LeaderFlapAndDeadLeader) {
  OnlineMonitor mon(base_config());
  // Any post-window change flaps; a leader no correct process carries also
  // warns.
  mon.listener(2)->on_homega_change(200, HOmegaOut{3, 1});
  auto by_rule = mon.counts_by_rule();
  EXPECT_EQ(by_rule["leader-flap"], 1u);
  EXPECT_EQ(by_rule["dead-leader"], 1u);
  // A correct leader only flaps.
  mon.listener(2)->on_homega_change(210, HOmegaOut{1, 1});
  by_rule = mon.counts_by_rule();
  EXPECT_EQ(by_rule["leader-flap"], 2u);
  EXPECT_EQ(by_rule["dead-leader"], 1u);
}

TEST(Monitor, QuorumSafetyRulesIgnoreTheGate) {
  MonitorConfig cfg = base_config(1'000'000);  // gate far in the future
  cfg.quorum_margin_warn = 1;
  OnlineMonitor mon(cfg);

  const auto snap_with = [](std::size_t tag, Multiset<Id> q) {
    HSigmaSnapshot s;
    s.quora[Label::of_count(tag)] = std::move(q);
    return s;
  };
  // First quorum: only its self-pair (margin 3) — silent.
  mon.listener(0)->on_hsigma_change(10, snap_with(1, Multiset<Id>{1, 2, 3}));
  EXPECT_TRUE(mon.events().empty());
  // Intersects the first in exactly one instance: margin warning.
  mon.listener(1)->on_hsigma_change(20, snap_with(2, Multiset<Id>{3, 4}));
  // Disjoint from the first: an HΣ safety violation.
  mon.listener(1)->on_hsigma_change(30, snap_with(3, Multiset<Id>{5, 6}));

  const auto evs = mon.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].rule, "quorum-margin");
  EXPECT_EQ(evs[0].severity, MonitorEvent::Severity::kWarning);
  EXPECT_EQ(evs[1].rule, "quorum-disjoint");
  EXPECT_EQ(evs[1].severity, MonitorEvent::Severity::kViolation);
  // A quorum already seen is not re-judged.
  mon.listener(2)->on_hsigma_change(40, snap_with(4, Multiset<Id>{5, 6}));
  EXPECT_EQ(mon.events().size(), 2u);
}

TEST(Monitor, SigmaTrustCrashed) {
  OnlineMonitor mon(base_config());
  mon.listener(1)->on_sigma_change(150, Multiset<Id>{1, 2});  // within Correct
  EXPECT_TRUE(mon.events().empty());
  mon.listener(1)->on_sigma_change(160, Multiset<Id>{1, 3});  // trusts crashed 3
  const auto evs = mon.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].rule, "sigma-trust-crashed");
  EXPECT_EQ(evs[0].severity, MonitorEvent::Severity::kViolation);
}

TEST(Monitor, BadListenerIndexThrows) {
  OnlineMonitor mon(base_config());
  EXPECT_NE(mon.listener(2), nullptr);
  EXPECT_THROW((void)mon.listener(3), std::out_of_range);
}

TEST(Monitor, MirrorsIntoTraceLogAndMetrics) {
  TraceLog trace(16);
  obs::MetricsRegistry reg;
  MonitorConfig cfg = base_config();
  cfg.trace = &trace;
  cfg.metrics = &reg;
  OnlineMonitor mon(cfg);
  mon.listener(0)->on_trusted_change(150, Multiset<Id>{1, 3});
  mon.listener(0)->on_trusted_change(160, Multiset<Id>{1, 2, 3});

  const auto evs = trace.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].kind, TraceEvent::Kind::kMonitorViolation);
  EXPECT_EQ(evs[0].at, 150);
  EXPECT_EQ(evs[0].msg_type.rfind("suspect-correct: ", 0), 0u);
  EXPECT_EQ(evs[1].kind, TraceEvent::Kind::kMonitorWarn);
  EXPECT_STREQ(TraceEvent::kind_name(evs[0].kind), "monitor-violation");
  EXPECT_STREQ(TraceEvent::kind_name(evs[1].kind), "monitor-warn");

  const auto* v = reg.find_counter("monitor_events_total",
                                   {{"rule", "suspect-correct"}, {"severity", "violation"}});
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value(), 1u);
  EXPECT_EQ(reg.counter_total("monitor_events_total"), 2u);
}

TEST(Monitor, SilentOnACleanRun) {
  // No crashes, benign network: everything settles long before watch_from,
  // so a correctly gated monitor reports nothing at all.
  Fig6Params p;
  p.ids = ids_unique(3);
  p.net.gst = 0;
  p.net.pre_gst_loss = 0.0;
  p.net.pre_gst_max_delay = 1;
  p.seed = 7;
  p.run_for = 3000;
  obs::MonitorConfig mc;
  mc.gt = ground_truth_of(p.ids, p.crashes);
  mc.watch_from = 1500;
  OnlineMonitor mon(mc);
  p.monitor = &mon;
  const Fig6Result r = run_fig6(p);
  ASSERT_TRUE(r.ohp_check.ok) << r.ohp_check.detail;
  EXPECT_EQ(mon.violation_count(), 0u);
  EXPECT_EQ(mon.warning_count(), 0u);
  EXPECT_TRUE(mon.events().empty());
}

TEST(Monitor, AdversarialScheduleTriggersTheExpectedRules) {
  // Watch from t = 0 over a lossy pre-GST network with two crashes: the
  // pre-stabilization churn is fully visible to the monitor.
  Fig6Params p;
  p.ids = ids_unique(5);
  p.crashes = crashes_last_k(5, 2, /*at=*/800, /*stagger=*/50);
  p.net.gst = 2500;
  p.net.pre_gst_loss = 0.5;
  p.net.pre_gst_max_delay = 40;
  p.seed = 11;
  p.run_for = 6000;
  obs::MonitorConfig mc;
  mc.gt = ground_truth_of(p.ids, p.crashes);
  mc.watch_from = 0;
  OnlineMonitor mon(mc);
  p.monitor = &mon;
  const Fig6Result r = run_fig6(p);
  ASSERT_TRUE(r.ohp_check.ok) << r.ohp_check.detail;

  const auto by_rule = mon.counts_by_rule();
  // The heavy pre-GST loss makes every correct observer wrongly suspect
  // somebody at least once, and the leader must move at least once (initial
  // election plus crash of high ids).
  EXPECT_GT(by_rule.count("suspect-correct"), 0u);
  EXPECT_GT(mon.counts_by_rule()["leader-flap"], 0u);
  // The crashes shrink h_trusted without wrong suspicion: late-change churn.
  EXPECT_GT(by_rule.count("late-change"), 0u);
  EXPECT_GT(mon.violation_count(), 0u);
  // Every event carries a proc index within range and a non-empty detail.
  for (const MonitorEvent& e : mon.events()) {
    EXPECT_LT(e.proc, 5u);
    EXPECT_FALSE(e.detail.empty());
  }
  EXPECT_EQ(mon.dropped(), 0u);
}

TEST(Monitor, WorksAcrossThreadsOnTheRtRuntime) {
  using namespace std::chrono_literals;
  // Three heartbeat HΩ nodes on the thread runtime, a monitor with
  // watch_from = 0: electing id 1 is an output change at the two nodes that
  // did not start as leader (node 1 starts with itself and never changes),
  // delivered from the runtime's threads through the same listener API.
  RtConfig cfg;
  cfg.ids = {1, 2, 3};
  obs::MonitorConfig mc;
  mc.gt.ids = {1, 2, 3};
  mc.gt.correct = {true, true, true};
  mc.watch_from = 0;
  OnlineMonitor mon(mc);
  RtSystem sys(std::move(cfg));
  for (ProcIndex i = 0; i < 3; ++i) {
    auto fd = std::make_unique<HOmegaHeartbeat>(/*period=*/5);
    fd->set_output_listener(mon.listener(i));
    sys.set_process(i, std::move(fd));
  }
  sys.start();
  ASSERT_TRUE(sys.wait_for([&] { return mon.violation_count() >= 2; }, 5000ms));
  sys.stop();
  const auto by_rule = mon.counts_by_rule();
  EXPECT_GE(by_rule.at("leader-flap"), 2u);
}

}  // namespace
}  // namespace hds
