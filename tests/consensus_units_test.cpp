// Protocol-level unit tests of the Fig. 8 state machine: each guard and
// transition of the pseudocode exercised message by message through a
// scripted environment and a hand-settable HΩ handle.
#include "consensus/majority_homega.h"

#include <gtest/gtest.h>

#include "support/script_env.h"

namespace hds {
namespace {

using testing::ScriptEnv;
using testing::ScriptHOmega;

constexpr Id kSelf = 3;

struct Fig8Fixture : ::testing::Test {
  Fig8Fixture() : env(kSelf) {
    cfg.n = 5;
    cfg.t = 2;
    cfg.proposal = 30;
  }

  MajorityHOmegaConsensus make() { return MajorityHOmegaConsensus(cfg, fd); }

  void deliver_coord(MajorityHOmegaConsensus& c, Id id, Round r, Value est) {
    c.on_message(env, make_message(kCoordType, CoordMsg{id, r, est}));
  }
  void deliver_ph0(MajorityHOmegaConsensus& c, Round r, Value est) {
    c.on_message(env, make_message(kPh0Type, Ph0Msg{r, est}));
  }
  void deliver_ph1(MajorityHOmegaConsensus& c, Round r, Value est) {
    c.on_message(env, make_message(kPh1Type, Ph1Msg{r, est}));
  }
  void deliver_ph2(MajorityHOmegaConsensus& c, Round r, MaybeValue est2) {
    c.on_message(env, make_message(kPh2Type, Ph2Msg{r, est2}));
  }

  MajorityConsensusConfig cfg;
  ScriptHOmega fd;
  ScriptEnv env;
};

TEST_F(Fig8Fixture, OnStartOpensRoundOneWithCoord) {
  fd.out = {kSelf, 2};  // leader: blocks in the coordination phase
  auto c = make();
  c.on_start(env);
  ASSERT_EQ(env.count(kCoordType), 1u);
  const auto* coord = env.last_body<CoordMsg>(kCoordType);
  ASSERT_NE(coord, nullptr);
  EXPECT_EQ(coord->id, kSelf);
  EXPECT_EQ(coord->r, 1);
  EXPECT_EQ(coord->est, 30);
  EXPECT_EQ(c.current_round(), 1);
  EXPECT_EQ(env.count(kPh0Type), 0u);  // still waiting for homonym COORDs
  EXPECT_FALSE(env.timers.empty());    // guard poll armed
}

TEST_F(Fig8Fixture, LeaderWaitsForExactlyMultiplicityCoords) {
  fd.out = {kSelf, 2};
  auto c = make();
  c.on_start(env);
  deliver_coord(c, kSelf, 1, 25);  // first homonym (could be our own echo)
  EXPECT_EQ(env.count(kPh1Type), 0u);
  deliver_coord(c, kSelf, 1, 40);  // second: the wait of lines 10-11 opens
  // Leader passes Phase 0 directly and broadcasts PH0 + PH1 with the MIN
  // estimate among its homonyms (lines 12-14): min(25, 40) = 25.
  const auto* ph0 = env.last_body<Ph0Msg>(kPh0Type);
  ASSERT_NE(ph0, nullptr);
  EXPECT_EQ(ph0->est, 25);
  const auto* ph1 = env.last_body<Ph1Msg>(kPh1Type);
  ASSERT_NE(ph1, nullptr);
  EXPECT_EQ(ph1->est, 25);
}

TEST_F(Fig8Fixture, ForeignCoordsDoNotUnblockLeader) {
  fd.out = {kSelf, 2};
  auto c = make();
  c.on_start(env);
  deliver_coord(c, 9, 1, 1);  // different identifier
  deliver_coord(c, 9, 1, 2);
  EXPECT_EQ(env.count(kPh0Type), 0u);
}

TEST_F(Fig8Fixture, NonLeaderWaitsForPh0AndAdoptsIt) {
  fd.out = {7, 1};  // someone else leads
  auto c = make();
  c.on_start(env);
  EXPECT_EQ(env.count(kPh1Type), 0u);  // blocked at line 16
  deliver_ph0(c, 1, 77);
  const auto* ph1 = env.last_body<Ph1Msg>(kPh1Type);
  ASSERT_NE(ph1, nullptr);
  EXPECT_EQ(ph1->est, 77);  // line 17: est1 <- v
}

TEST_F(Fig8Fixture, PhaseOneMajorityBecomesEst2) {
  fd.out = {7, 1};
  auto c = make();
  c.on_start(env);
  deliver_ph0(c, 1, 50);
  // n - t = 3 messages; value 50 from 3 > n/2 senders.
  deliver_ph1(c, 1, 50);
  deliver_ph1(c, 1, 50);
  EXPECT_EQ(env.count(kPh2Type), 0u);  // only 2 so far
  deliver_ph1(c, 1, 50);
  const auto* ph2 = env.last_body<Ph2Msg>(kPh2Type);
  ASSERT_NE(ph2, nullptr);
  EXPECT_EQ(ph2->est2, MaybeValue{50});
}

TEST_F(Fig8Fixture, PhaseOneSplitYieldsBottom) {
  fd.out = {7, 1};
  auto c = make();
  c.on_start(env);
  deliver_ph0(c, 1, 50);
  deliver_ph1(c, 1, 50);
  deliver_ph1(c, 1, 60);
  deliver_ph1(c, 1, 70);  // no value reaches > n/2 = 2.5 support
  const auto* ph2 = env.last_body<Ph2Msg>(kPh2Type);
  ASSERT_NE(ph2, nullptr);
  EXPECT_EQ(ph2->est2, MaybeValue{});
}

TEST_F(Fig8Fixture, PhaseTwoUnanimousDecidesAndBroadcastsDecide) {
  fd.out = {7, 1};
  auto c = make();
  c.on_start(env);
  deliver_ph0(c, 1, 50);
  for (int k = 0; k < 3; ++k) deliver_ph1(c, 1, 50);
  for (int k = 0; k < 3; ++k) deliver_ph2(c, 1, MaybeValue{50});
  EXPECT_TRUE(c.done());
  EXPECT_TRUE(c.decision().decided);
  EXPECT_EQ(c.decision().value, 50);
  EXPECT_EQ(c.decision().round, 1);
  EXPECT_EQ(env.count(kDecideType), 1u);
}

TEST_F(Fig8Fixture, PhaseTwoMixedAdoptsValueAndEntersNextRound) {
  fd.out = {7, 1};
  auto c = make();
  c.on_start(env);
  deliver_ph0(c, 1, 50);
  for (int k = 0; k < 3; ++k) deliver_ph1(c, 1, static_cast<Value>(50 + 10 * k));  // -> bottom
  deliver_ph2(c, 1, MaybeValue{60});
  deliver_ph2(c, 1, MaybeValue{});
  deliver_ph2(c, 1, MaybeValue{});
  EXPECT_FALSE(c.done());
  EXPECT_EQ(c.current_round(), 2);
  // Line 33 adopted 60: the round-2 COORD must carry it.
  const auto* coord = env.last_body<CoordMsg>(kCoordType);
  ASSERT_NE(coord, nullptr);
  EXPECT_EQ(coord->r, 2);
  EXPECT_EQ(coord->est, 60);
}

TEST_F(Fig8Fixture, PhaseTwoAllBottomKeepsEstimate) {
  fd.out = {7, 1};
  auto c = make();
  c.on_start(env);
  deliver_ph0(c, 1, 50);
  for (int k = 0; k < 3; ++k) deliver_ph1(c, 1, static_cast<Value>(50 + 10 * k));
  for (int k = 0; k < 3; ++k) deliver_ph2(c, 1, MaybeValue{});
  EXPECT_EQ(c.current_round(), 2);
  const auto* coord = env.last_body<CoordMsg>(kCoordType);
  ASSERT_NE(coord, nullptr);
  EXPECT_EQ(coord->est, 50);  // line 34: skip
}

TEST_F(Fig8Fixture, DecideMessageShortCircuitsEverything) {
  fd.out = {kSelf, 5};  // absurd multiplicity: would block forever
  auto c = make();
  c.on_start(env);
  c.on_message(env, make_message(kDecideType, DecideMsg{99}));
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.decision().value, 99);
  EXPECT_EQ(env.count(kDecideType), 1u);  // relayed exactly once
  c.on_message(env, make_message(kDecideType, DecideMsg{99}));
  EXPECT_EQ(env.count(kDecideType), 1u);  // not re-relayed
}

TEST_F(Fig8Fixture, FutureRoundMessagesAreBufferedNotLost) {
  fd.out = {7, 1};
  auto c = make();
  c.on_start(env);
  // Round-2 traffic arrives while we are still in round 1.
  deliver_ph0(c, 2, 88);
  for (int k = 0; k < 3; ++k) deliver_ph1(c, 2, 88);
  EXPECT_EQ(c.current_round(), 1);
  // Finish round 1 with all-bottom Phase 2.
  deliver_ph0(c, 1, 50);
  for (int k = 0; k < 3; ++k) deliver_ph1(c, 1, static_cast<Value>(50 + 10 * k));
  for (int k = 0; k < 3; ++k) deliver_ph2(c, 1, MaybeValue{});
  // Round 2 opens and the buffered PH0/PH1 immediately carry it through
  // Phase 1: a PH2 for round 2 must already be out, with the buffered 88.
  EXPECT_EQ(c.current_round(), 2);
  const auto* ph2 = env.last_body<Ph2Msg>(kPh2Type);
  ASSERT_NE(ph2, nullptr);
  EXPECT_EQ(ph2->r, 2);
  EXPECT_EQ(ph2->est2, MaybeValue{88});
}

TEST_F(Fig8Fixture, StaleRoundMessagesAreIgnored) {
  fd.out = {7, 1};
  auto c = make();
  c.on_start(env);
  deliver_ph0(c, 1, 50);
  for (int k = 0; k < 3; ++k) deliver_ph1(c, 1, static_cast<Value>(50 + 10 * k));
  for (int k = 0; k < 3; ++k) deliver_ph2(c, 1, MaybeValue{});
  ASSERT_EQ(c.current_round(), 2);
  env.clear();
  // Late round-1 traffic must not produce any new broadcast.
  deliver_ph1(c, 1, 50);
  deliver_ph2(c, 1, MaybeValue{50});
  EXPECT_TRUE(env.sent.empty());
}

TEST_F(Fig8Fixture, GuardPollTimerReevaluatesFdGates) {
  fd.out = {7, 1};  // not leader, no PH0 yet: blocked
  auto c = make();
  c.on_start(env);
  EXPECT_EQ(env.count(kPh1Type), 0u);
  fd.out = {kSelf, 1};  // the detector now names us leader
  c.on_timer(env, env.timers.front().id);
  EXPECT_EQ(env.count(kPh1Type), 1u);  // unblocked with no message arriving
}

TEST_F(Fig8Fixture, AlphaModeUsesAlphaThresholds) {
  cfg.n = 0;  // unknown in footnote-5 mode
  cfg.t = 0;
  cfg.alpha = 2;
  fd.out = {7, 1};
  auto c = make();
  c.on_start(env);
  deliver_ph0(c, 1, 50);
  deliver_ph1(c, 1, 50);
  EXPECT_EQ(env.count(kPh2Type), 0u);
  deliver_ph1(c, 1, 50);  // alpha = 2 reached, and 2 supporters >= alpha
  const auto* ph2 = env.last_body<Ph2Msg>(kPh2Type);
  ASSERT_NE(ph2, nullptr);
  EXPECT_EQ(ph2->est2, MaybeValue{50});
  deliver_ph2(c, 1, MaybeValue{50});
  deliver_ph2(c, 1, MaybeValue{50});
  EXPECT_TRUE(c.done());
}

TEST_F(Fig8Fixture, SkipCoordinationAblationGoesStraightToPhaseZero) {
  cfg.skip_coordination_phase = true;
  fd.out = {kSelf, 99};  // would block forever in the coordination phase
  auto c = make();
  c.on_start(env);
  EXPECT_EQ(env.count(kPh1Type), 1u);  // leader reached Phase 0 and moved on
}

}  // namespace
}  // namespace hds
