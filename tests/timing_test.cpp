// Unit tests for the link timing models (the synchrony axioms).
#include "sim/timing.h"

#include <gtest/gtest.h>

namespace hds {
namespace {

TEST(AsyncTiming, DeliversWithinConfiguredRangeNeverLoses) {
  AsyncTiming t(2, 9);
  Rng rng(1);
  for (int k = 0; k < 2000; ++k) {
    auto when = t.delivery_at(100, 0, 1, "", rng);
    ASSERT_TRUE(when.has_value());
    EXPECT_GE(*when, 102);
    EXPECT_LE(*when, 109);
  }
}

TEST(AsyncTiming, RejectsBadRanges) {
  EXPECT_THROW(AsyncTiming(0, 5), std::invalid_argument);
  EXPECT_THROW(AsyncTiming(5, 4), std::invalid_argument);
}

TEST(PartialSyncTiming, PostGstWithinDelta) {
  PartialSyncTiming t({.gst = 50, .delta = 4, .pre_gst_loss = 1.0, .pre_gst_max_delay = 100});
  Rng rng(1);
  for (int k = 0; k < 2000; ++k) {
    auto when = t.delivery_at(50, 0, 1, "", rng);  // sent exactly at GST counts as post
    ASSERT_TRUE(when.has_value());
    EXPECT_GE(*when, 51);
    EXPECT_LE(*when, 54);
  }
}

TEST(PartialSyncTiming, PreGstCanLose) {
  PartialSyncTiming t({.gst = 50, .delta = 4, .pre_gst_loss = 0.5, .pre_gst_max_delay = 10});
  Rng rng(1);
  int lost = 0;
  for (int k = 0; k < 2000; ++k) {
    if (!t.delivery_at(10, 0, 1, "", rng)) ++lost;
  }
  EXPECT_NEAR(lost, 1000, 120);
}

TEST(PartialSyncTiming, PreGstSurvivorsAreFinitelyDelayed) {
  PartialSyncTiming t({.gst = 50, .delta = 1, .pre_gst_loss = 0.0, .pre_gst_max_delay = 30});
  Rng rng(1);
  for (int k = 0; k < 2000; ++k) {
    auto when = t.delivery_at(10, 0, 1, "", rng);
    ASSERT_TRUE(when.has_value());
    EXPECT_GE(*when, 11);
    EXPECT_LE(*when, 40);  // may land after GST — allowed by the model
  }
}

TEST(PartialSyncTiming, NoLossAfterGstEvenWithFullPreLoss) {
  PartialSyncTiming t({.gst = 0, .delta = 3, .pre_gst_loss = 1.0, .pre_gst_max_delay = 1});
  Rng rng(1);
  for (int k = 0; k < 500; ++k) EXPECT_TRUE(t.delivery_at(k, 0, 1, "", rng).has_value());
}

TEST(PartialSyncTiming, ValidatesParameters) {
  EXPECT_THROW(PartialSyncTiming({.gst = 0, .delta = 0}), std::invalid_argument);
  EXPECT_THROW(PartialSyncTiming({.gst = -1, .delta = 1}), std::invalid_argument);
  EXPECT_THROW(PartialSyncTiming({.gst = 0, .delta = 1, .pre_gst_loss = 1.5}),
               std::invalid_argument);
}

TEST(BoundedTiming, AlwaysWithinKnownBound) {
  BoundedTiming t(5);
  Rng rng(3);
  for (int k = 0; k < 2000; ++k) {
    auto when = t.delivery_at(7, 0, 1, "", rng);
    ASSERT_TRUE(when.has_value());
    EXPECT_GE(*when, 8);
    EXPECT_LE(*when, 12);
  }
}

TEST(BoundedTiming, RejectsNonPositiveBound) { EXPECT_THROW(BoundedTiming(0), std::invalid_argument); }

TEST(PerLinkTiming, BaseDelayIsDeterministicPerDirectedLink) {
  PerLinkTiming t(2, 9, 0, 42);
  EXPECT_EQ(t.base_delay(0, 1), t.base_delay(0, 1));
  PerLinkTiming same(2, 9, 0, 42);
  EXPECT_EQ(t.base_delay(3, 4), same.base_delay(3, 4));
  // Directions are independent links.
  bool any_asymmetric = false;
  for (ProcIndex a = 0; a < 6; ++a) {
    for (ProcIndex b = 0; b < 6; ++b) {
      if (t.base_delay(a, b) != t.base_delay(b, a)) any_asymmetric = true;
      EXPECT_GE(t.base_delay(a, b), 2);
      EXPECT_LE(t.base_delay(a, b), 9);
    }
  }
  EXPECT_TRUE(any_asymmetric);
}

TEST(PerLinkTiming, DeliveryWithinBasePlusJitterNeverLost) {
  PerLinkTiming t(1, 5, 3, 7);
  Rng rng(1);
  for (int k = 0; k < 1000; ++k) {
    auto when = t.delivery_at(50, 2, 3, "", rng);
    ASSERT_TRUE(when.has_value());
    EXPECT_GE(*when, 50 + t.base_delay(2, 3));
    EXPECT_LE(*when, 50 + t.base_delay(2, 3) + 3);
  }
}

TEST(PerLinkTiming, ValidatesParameters) {
  EXPECT_THROW(PerLinkTiming(0, 5, 0, 1), std::invalid_argument);
  EXPECT_THROW(PerLinkTiming(5, 4, 0, 1), std::invalid_argument);
  EXPECT_THROW(PerLinkTiming(1, 5, -1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace hds
