// Prometheus text exposition: renderer + strict parser, with the round-trip
// guarantee the admin STATS verb relies on — parse(render(snap)) == snap.
#include "obs/prom.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace hds::obs {
namespace {

void populate(MetricsRegistry& reg) {
  reg.counter("requests_total").inc(41);
  reg.counter("requests_total", {{"verb", "STATS"}}).inc(7);
  reg.counter("requests_total", {{"verb", "STATUS"}}).inc(2);
  reg.gauge("qos_window_quorum_margin_min").set(-1);
  reg.gauge("uptime_ms", {{"node", "0"}}).set(12345);
  Histogram& h = reg.histogram("latency_ms", {1, 2, 4, 8});
  h.observe(1);
  h.observe(3);
  h.observe(3);
  h.observe(100);  // overflow bucket
}

TEST(Prom, RoundTripsAFullRegistrySnapshot) {
  MetricsRegistry reg;
  populate(reg);
  const MetricsSnapshot snap = reg.snapshot();
  const std::string text = prometheus_text(snap);
  const MetricsSnapshot parsed = prometheus_parse(text);
  EXPECT_EQ(parsed, snap);
  // And the fixed point holds: rendering the parse reproduces the text.
  EXPECT_EQ(prometheus_text(parsed), text);
}

TEST(Prom, RendersCumulativeBucketsWithInfAndTypeLines) {
  MetricsRegistry reg;
  populate(reg);
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("requests_total{verb=\"STATS\"} 7"), std::string::npos);
  // Cumulative: le="4" covers the two 3s and the 1.
  EXPECT_NE(text.find("latency_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"4\"} 3"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"+Inf\"} 4"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_count 4"), std::string::npos);
  EXPECT_NE(text.find("qos_window_quorum_margin_min -1"), std::string::npos);
}

TEST(Prom, EscapedLabelValuesSurviveTheRoundTrip) {
  MetricsRegistry reg;
  reg.counter("odd_total", {{"path", "a\\b\"c\nd"}}).inc(3);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot parsed = prometheus_parse(prometheus_text(snap));
  EXPECT_EQ(parsed, snap);
  ASSERT_EQ(parsed.counters.size(), 1u);
  EXPECT_EQ(parsed.counters[0].labels.at("path"), "a\\b\"c\nd");
}

TEST(Prom, EmptySnapshotRoundTrips) {
  const MetricsSnapshot empty;
  EXPECT_EQ(prometheus_parse(prometheus_text(empty)), empty);
}

TEST(Prom, ParserRejectsUntypedSeries) {
  EXPECT_THROW(prometheus_parse("foo_total 3\n"), PromParseError);
}

TEST(Prom, ParserRejectsNonIntegerValues) {
  // The dialect is integer-only by design: that is what makes the strict
  // round-trip equality possible.
  EXPECT_THROW(prometheus_parse("# TYPE x gauge\nx 1.5\n"), PromParseError);
  EXPECT_THROW(prometheus_parse("# TYPE x gauge\nx NaN\n"), PromParseError);
  EXPECT_THROW(prometheus_parse("# TYPE x gauge\nx 1e3\n"), PromParseError);
}

TEST(Prom, ParserRejectsDuplicateScalarSeries) {
  EXPECT_THROW(prometheus_parse("# TYPE x counter\nx 1\nx 2\n"), PromParseError);
}

TEST(Prom, ParserRejectsMalformedHistograms) {
  // No +Inf bucket.
  EXPECT_THROW(prometheus_parse("# TYPE h histogram\n"
                                "h_bucket{le=\"1\"} 1\n"
                                "h_sum 1\n"
                                "h_count 1\n"),
               PromParseError);
  // Cumulative counts must be monotone.
  EXPECT_THROW(prometheus_parse("# TYPE h histogram\n"
                                "h_bucket{le=\"1\"} 2\n"
                                "h_bucket{le=\"+Inf\"} 1\n"
                                "h_sum 1\n"
                                "h_count 1\n"),
               PromParseError);
  // _count must match the +Inf bucket.
  EXPECT_THROW(prometheus_parse("# TYPE h histogram\n"
                                "h_bucket{le=\"1\"} 1\n"
                                "h_bucket{le=\"+Inf\"} 2\n"
                                "h_sum 1\n"
                                "h_count 3\n"),
               PromParseError);
}

TEST(Prom, ParseErrorsCarryTheLineNumber) {
  try {
    (void)prometheus_parse("# TYPE a counter\na 1\nbogus line here\n");
    FAIL() << "expected PromParseError";
  } catch (const PromParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

}  // namespace
}  // namespace hds::obs
