// hds-admin-v1 request/response channel: chunking, loopback server/client,
// error envelopes, timeout behavior.
#include "net/admin.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"

namespace hds::net {
namespace {

TEST(AdminProto, EmptyPayloadStillYieldsOneChunk) {
  const std::vector<std::string> frames = admin_response_datagrams(7, "");
  ASSERT_EQ(frames.size(), 1u);
  const obs::Json j = obs::Json::parse(frames[0]);
  EXPECT_EQ(j.string_or("schema", ""), kAdminSchema);
  EXPECT_EQ(j.number_or("req", 0), 7.0);
  EXPECT_EQ(j.number_or("chunks", 0), 1.0);
  EXPECT_EQ(j.string_or("body", "x"), "");
}

TEST(AdminProto, LargePayloadSplitsAndConcatenatesInChunkOrder) {
  std::string payload;
  for (std::size_t i = 0; payload.size() < kAdminChunkBytes * 2 + 100; ++i) {
    payload += "line " + std::to_string(i) + "\n";
  }
  const std::vector<std::string> frames = admin_response_datagrams(3, payload);
  ASSERT_EQ(frames.size(), 3u);
  std::string rebuilt;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const obs::Json j = obs::Json::parse(frames[i]);
    EXPECT_EQ(j.number_or("chunk", 99), static_cast<double>(i));
    EXPECT_EQ(j.number_or("chunks", 0), 3.0);
    rebuilt += j.string_or("body", "");
  }
  EXPECT_EQ(rebuilt, payload);
}

TEST(AdminLoopback, ServerAnswersAndClientReassembles) {
  AdminServer server;
  server.start(UdpEndpoint{"127.0.0.1", 0},
               [](const std::string& verb, const obs::Json& req) {
                 // Echo enough to prove both arguments arrive intact.
                 return verb + ":" + std::to_string(static_cast<int>(req.number_or("req", -1) > 0));
               });
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  AdminClient client;
  const auto body = client.request(UdpEndpoint{"127.0.0.1", server.port()}, "STATUS", 3000);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(*body, "STATUS:1");
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(AdminLoopback, MultiChunkPayloadRoundTrips) {
  std::string big;
  while (big.size() < kAdminChunkBytes * 2 + 17) big += "0123456789abcdef";
  AdminServer server;
  server.start(UdpEndpoint{"127.0.0.1", 0},
               [&](const std::string&, const obs::Json&) { return big; });
  AdminClient client;
  const auto body = client.request(UdpEndpoint{"127.0.0.1", server.port()}, "STATS", 5000);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(*body, big);
}

TEST(AdminLoopback, HandlerExceptionBecomesAnErrorResponse) {
  AdminServer server;
  server.start(UdpEndpoint{"127.0.0.1", 0}, [](const std::string& verb, const obs::Json&) {
    throw std::runtime_error("unknown verb " + verb);
    return std::string{};
  });
  AdminClient client;
  const auto body = client.request(UdpEndpoint{"127.0.0.1", server.port()}, "NOPE", 3000);
  EXPECT_FALSE(body.has_value());
  EXPECT_NE(client.last_error().find("unknown verb NOPE"), std::string::npos);
}

TEST(AdminLoopback, SequentialRequestsReuseOneClient) {
  AdminServer server;
  server.start(UdpEndpoint{"127.0.0.1", 0}, [](const std::string& verb, const obs::Json&) {
    return "ok:" + verb;
  });
  AdminClient client;
  const UdpEndpoint ep{"127.0.0.1", server.port()};
  for (int i = 0; i < 5; ++i) {
    const auto body = client.request(ep, "V" + std::to_string(i), 3000);
    ASSERT_TRUE(body.has_value());
    EXPECT_EQ(*body, "ok:V" + std::to_string(i));
  }
}

TEST(AdminLoopback, TimeoutOnSilentEndpointReturnsNullopt) {
  // Bind a socket that never answers, so the port is taken but mute.
  UdpSocket silent;
  silent.open(UdpEndpoint{"127.0.0.1", 0});
  AdminClient client;
  const auto body =
      client.request(UdpEndpoint{"127.0.0.1", silent.local_port()}, "STATUS", 300, 100);
  EXPECT_FALSE(body.has_value());
  EXPECT_FALSE(client.last_error().empty());
}

}  // namespace
}  // namespace hds::net
