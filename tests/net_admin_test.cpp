// hds-admin-v1 request/response channel: chunking, loopback server/client,
// error envelopes, timeout behavior.
#include "net/admin.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "obs/json.h"

namespace hds::net {
namespace {

TEST(AdminProto, EmptyPayloadStillYieldsOneChunk) {
  const std::vector<std::string> frames = admin_response_datagrams(7, "");
  ASSERT_EQ(frames.size(), 1u);
  const obs::Json j = obs::Json::parse(frames[0]);
  EXPECT_EQ(j.string_or("schema", ""), kAdminSchema);
  EXPECT_EQ(j.number_or("req", 0), 7.0);
  EXPECT_EQ(j.number_or("chunks", 0), 1.0);
  EXPECT_EQ(j.string_or("body", "x"), "");
}

TEST(AdminProto, LargePayloadSplitsAndConcatenatesInChunkOrder) {
  std::string payload;
  for (std::size_t i = 0; payload.size() < kAdminChunkBytes * 2 + 100; ++i) {
    payload += "line " + std::to_string(i) + "\n";
  }
  const std::vector<std::string> frames = admin_response_datagrams(3, payload);
  ASSERT_EQ(frames.size(), 3u);
  std::string rebuilt;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const obs::Json j = obs::Json::parse(frames[i]);
    EXPECT_EQ(j.number_or("chunk", 99), static_cast<double>(i));
    EXPECT_EQ(j.number_or("chunks", 0), 3.0);
    rebuilt += j.string_or("body", "");
  }
  EXPECT_EQ(rebuilt, payload);
}

TEST(AdminLoopback, ServerAnswersAndClientReassembles) {
  AdminServer server;
  server.start(UdpEndpoint{"127.0.0.1", 0},
               [](const std::string& verb, const obs::Json& req) {
                 // Echo enough to prove both arguments arrive intact.
                 return verb + ":" + std::to_string(static_cast<int>(req.number_or("req", -1) > 0));
               });
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  AdminClient client;
  const auto body = client.request(UdpEndpoint{"127.0.0.1", server.port()}, "STATUS", 3000);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(*body, "STATUS:1");
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(AdminLoopback, MultiChunkPayloadRoundTrips) {
  std::string big;
  while (big.size() < kAdminChunkBytes * 2 + 17) big += "0123456789abcdef";
  AdminServer server;
  server.start(UdpEndpoint{"127.0.0.1", 0},
               [&](const std::string&, const obs::Json&) { return big; });
  AdminClient client;
  const auto body = client.request(UdpEndpoint{"127.0.0.1", server.port()}, "STATS", 5000);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(*body, big);
}

TEST(AdminLoopback, HandlerExceptionBecomesAnErrorResponse) {
  AdminServer server;
  server.start(UdpEndpoint{"127.0.0.1", 0}, [](const std::string& verb, const obs::Json&) {
    throw std::runtime_error("unknown verb " + verb);
    return std::string{};
  });
  AdminClient client;
  const auto body = client.request(UdpEndpoint{"127.0.0.1", server.port()}, "NOPE", 3000);
  EXPECT_FALSE(body.has_value());
  EXPECT_NE(client.last_error().find("unknown verb NOPE"), std::string::npos);
}

TEST(AdminLoopback, SequentialRequestsReuseOneClient) {
  AdminServer server;
  server.start(UdpEndpoint{"127.0.0.1", 0}, [](const std::string& verb, const obs::Json&) {
    return "ok:" + verb;
  });
  AdminClient client;
  const UdpEndpoint ep{"127.0.0.1", server.port()};
  for (int i = 0; i < 5; ++i) {
    const auto body = client.request(ep, "V" + std::to_string(i), 3000);
    ASSERT_TRUE(body.has_value());
    EXPECT_EQ(*body, "ok:V" + std::to_string(i));
  }
}

// Chunk-loss hardening: the first transmission of every chunk is dropped by
// a deterministic hook, so the client only completes via retransmits. The
// response cache must answer the re-asks with IDENTICAL chunks — the
// handler deliberately returns a different payload every call, so any
// re-invocation would change the chunk count and wedge (or tear) the
// client's cross-retry accumulation.
TEST(AdminLoopback, ChunkLossConvergesViaRetriesWithoutRerunningHandler) {
  std::string big;
  while (big.size() < kAdminChunkBytes * 2 + 1) big += "payload-slice ";
  std::atomic<int> calls{0};
  AdminServer server;
  // Drop the first time each (req, chunk index) goes out; retransmitted
  // datagrams (second ask onward) pass.
  std::mutex mu;
  std::set<std::pair<std::uint64_t, std::size_t>> sent_once;
  server.set_drop_hook([&](std::uint64_t req, std::size_t index) {
    std::lock_guard lk(mu);
    return sent_once.insert({req, index}).second;  // newly seen -> drop
  });
  server.start(UdpEndpoint{"127.0.0.1", 0}, [&](const std::string& verb, const obs::Json&) {
    // A moving payload, like live STATS: every invocation differs in size.
    const int c = calls.fetch_add(1) + 1;
    return verb + "#" + std::to_string(c) + ":" + big + std::string(static_cast<size_t>(c), 'x');
  });
  AdminClient client;
  const UdpEndpoint ep{"127.0.0.1", server.port()};
  for (const char* verb : {"STATUS", "STATS"}) {
    const int before = calls.load();
    const auto body = client.request(ep, verb, 8000, 150);
    ASSERT_TRUE(body.has_value()) << verb << ": " << client.last_error();
    // Reassembly is the cached incarnation, untorn.
    EXPECT_EQ(*body, std::string(verb) + "#" + std::to_string(before + 1) + ":" + big +
                         std::string(static_cast<size_t>(before + 1), 'x'));
    EXPECT_EQ(calls.load(), before + 1) << "re-asks must hit the response cache";
  }
  EXPECT_EQ(server.handler_calls(), 2u);
}

// Loss on the request path too: every datagram of the first two complete
// responses vanishes, and only the third ask is answered. The client keeps
// retransmitting inside its deadline and still converges.
TEST(AdminLoopback, FullResponseLossRecoversOnLaterRetry) {
  std::atomic<int> asks{0};
  AdminServer server;
  server.set_drop_hook([&](std::uint64_t, std::size_t index) {
    if (index == 0) ++asks;          // first datagram marks one full answer
    return asks.load() <= 2;         // swallow the first two answers whole
  });
  server.start(UdpEndpoint{"127.0.0.1", 0},
               [](const std::string&, const obs::Json&) { return std::string("stable"); });
  AdminClient client;
  const auto body = client.request(UdpEndpoint{"127.0.0.1", server.port()}, "STATUS", 8000, 100);
  ASSERT_TRUE(body.has_value()) << client.last_error();
  EXPECT_EQ(*body, "stable");
  EXPECT_GE(asks.load(), 3);
  EXPECT_EQ(server.handler_calls(), 1u) << "retries served from cache";
}

TEST(AdminLoopback, TimeoutOnSilentEndpointReturnsNullopt) {
  // Bind a socket that never answers, so the port is taken but mute.
  UdpSocket silent;
  silent.open(UdpEndpoint{"127.0.0.1", 0});
  AdminClient client;
  const auto body =
      client.request(UdpEndpoint{"127.0.0.1", silent.local_port()}, "STATUS", 300, 100);
  EXPECT_FALSE(body.has_value());
  EXPECT_FALSE(client.last_error().empty());
}

}  // namespace
}  // namespace hds::net
