// Tests of the event-driven system: broadcast semantics, timers, crash
// injection (including crash-during-broadcast partial delivery).
#include "sim/system.h"

#include <gtest/gtest.h>

#include <memory>

#include "fd/impl/alive_ranker.h"
#include "net/codec.h"

namespace hds {
namespace {

struct PingMsg {
  int payload;
};

// Records everything it sees; can be scripted to broadcast on start/timer.
class Recorder final : public Process {
 public:
  void on_start(Env& env) override {
    started_at = env.local_now();
    self = env.self_id();
    if (broadcast_on_start) env.broadcast(make_message("PING", PingMsg{7}));
    if (timer_delay >= 0) env.set_timer(timer_delay);
  }
  void on_message(Env&, const Message& m) override {
    if (const auto* b = m.as<PingMsg>()) received.push_back(b->payload);
  }
  void on_timer(Env& env, TimerId) override {
    ++timers_fired;
    if (broadcast_on_timer) env.broadcast(make_message("PING", PingMsg{9}));
  }

  bool broadcast_on_start = false;
  bool broadcast_on_timer = false;
  SimTime timer_delay = -1;
  SimTime started_at = -1;
  Id self = 0;
  int timers_fired = 0;
  std::vector<int> received;
};

SystemConfig base_config(std::size_t n) {
  SystemConfig cfg;
  for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
  cfg.timing = std::make_unique<AsyncTiming>(1, 3);
  cfg.seed = 11;
  return cfg;
}

TEST(System, StartsEveryProcessAtTimeZero) {
  System sys(base_config(3));
  std::vector<Recorder*> recs;
  for (ProcIndex i = 0; i < 3; ++i) {
    auto r = std::make_unique<Recorder>();
    recs.push_back(r.get());
    sys.set_process(i, std::move(r));
  }
  sys.start();
  sys.run_until(10);
  for (auto* r : recs) EXPECT_EQ(r->started_at, 0);
  EXPECT_EQ(recs[0]->self, 1u);
  EXPECT_EQ(recs[2]->self, 3u);
}

TEST(System, BroadcastReachesEveryoneIncludingSelf) {
  System sys(base_config(4));
  std::vector<Recorder*> recs;
  for (ProcIndex i = 0; i < 4; ++i) {
    auto r = std::make_unique<Recorder>();
    r->broadcast_on_start = (i == 0);
    recs.push_back(r.get());
    sys.set_process(i, std::move(r));
  }
  sys.start();
  sys.run_until(20);
  for (auto* r : recs) EXPECT_EQ(r->received, std::vector<int>{7});
  EXPECT_EQ(sys.net_stats().broadcasts, 1u);
  EXPECT_EQ(sys.net_stats().copies_sent, 4u);
  EXPECT_EQ(sys.net_stats().copies_delivered, 4u);
  // "PING" has no registered wire codec, so the byte estimate is zero.
  EXPECT_EQ(sys.net_stats().bytes_sent, 0u);
  EXPECT_EQ(sys.net_stats().bytes_received, 0u);
}

TEST(System, ByteCountersTrackEstimatedFrameSizes) {
  // A codec-registered body is costed at its exact v1 frame size per copy,
  // so simulated byte counts are comparable with the UDP substrate's.
  struct AliveOnce final : Process {
    void on_start(Env& env) override {
      env.broadcast(make_message(AliveRanker::kMsgType, AliveMsg{env.self_id()}));
    }
  };
  System sys(base_config(3));
  sys.set_process(0, std::make_unique<AliveOnce>());
  for (ProcIndex i = 1; i < 3; ++i) sys.set_process(i, std::make_unique<Recorder>());
  sys.start();
  sys.run_until(50);
  const auto frame = net::encoded_frame_size(
      net::builtin_codecs(), make_message(AliveRanker::kMsgType, AliveMsg{1}), 0, 1);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(sys.net_stats().bytes_sent, 3 * *frame);
  EXPECT_EQ(sys.net_stats().bytes_received, 3 * *frame);
}

TEST(System, TimersFireAfterDelay) {
  System sys(base_config(1));
  auto r = std::make_unique<Recorder>();
  r->timer_delay = 15;
  auto* rp = r.get();
  sys.set_process(0, std::move(r));
  sys.start();
  sys.run_until(14);
  EXPECT_EQ(rp->timers_fired, 0);
  sys.run_until(15);
  EXPECT_EQ(rp->timers_fired, 1);
}

TEST(System, CrashedProcessReceivesNothing) {
  auto cfg = base_config(3);
  cfg.crashes = {std::nullopt, CrashPlan{5}, std::nullopt};
  System sys(std::move(cfg));
  std::vector<Recorder*> recs;
  for (ProcIndex i = 0; i < 3; ++i) {
    auto r = std::make_unique<Recorder>();
    // Process 0 broadcasts at t=30 via a timer, after 1's crash.
    if (i == 0) {
      r->timer_delay = 30;
      r->broadcast_on_timer = true;
    }
    recs.push_back(r.get());
    sys.set_process(i, std::move(r));
  }
  sys.start();
  sys.run_until(60);
  EXPECT_TRUE(recs[1]->received.empty());
  EXPECT_EQ(recs[0]->received, std::vector<int>{9});
  EXPECT_EQ(recs[2]->received, std::vector<int>{9});
  EXPECT_EQ(sys.net_stats().copies_to_dead, 1u);
}

TEST(System, CrashedProcessStopsBroadcasting) {
  auto cfg = base_config(2);
  cfg.crashes = {CrashPlan{10}, std::nullopt};
  System sys(std::move(cfg));
  auto r0 = std::make_unique<Recorder>();
  r0->timer_delay = 20;  // fires after its own crash — must be suppressed
  r0->broadcast_on_timer = true;
  auto* r0p = r0.get();
  auto r1 = std::make_unique<Recorder>();
  auto* r1p = r1.get();
  sys.set_process(0, std::move(r0));
  sys.set_process(1, std::move(r1));
  sys.start();
  sys.run_until(60);
  EXPECT_EQ(r0p->timers_fired, 0);
  EXPECT_TRUE(r1p->received.empty());
}

TEST(System, DyingBroadcastReachesArbitrarySubset) {
  // A broadcast issued exactly at the crash instant delivers each copy with
  // the configured probability; over many trials some but not all copies
  // survive.
  int delivered_total = 0;
  const int trials = 40;
  const std::size_t n = 6;
  for (int trial = 0; trial < trials; ++trial) {
    SystemConfig cfg;
    for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
    cfg.timing = std::make_unique<AsyncTiming>(1, 2);
    cfg.seed = 100 + trial;
    cfg.crashes.resize(n);
    cfg.crashes[0] = CrashPlan{10, /*partial_broadcast=*/true};
    cfg.dying_copy_delivery_prob = 0.5;
    System sys(std::move(cfg));
    std::vector<Recorder*> recs;
    for (ProcIndex i = 0; i < n; ++i) {
      auto r = std::make_unique<Recorder>();
      if (i == 0) {
        r->timer_delay = 10;  // broadcast exactly at the crash instant
        r->broadcast_on_timer = true;
      }
      recs.push_back(r.get());
      sys.set_process(i, std::move(r));
    }
    sys.start();
    sys.run_until(30);
    for (ProcIndex i = 1; i < n; ++i) delivered_total += recs[i]->received.size();
  }
  const int max_possible = trials * (static_cast<int>(n) - 1);
  EXPECT_GT(delivered_total, max_possible / 5);
  EXPECT_LT(delivered_total, max_possible * 4 / 5);
}

TEST(System, DeliveryLatencyAccounting) {
  SystemConfig cfg;
  cfg.ids = {1, 2, 3};
  cfg.timing = std::make_unique<AsyncTiming>(2, 2);  // fixed latency 2
  System sys(std::move(cfg));
  std::vector<Recorder*> recs;
  for (ProcIndex i = 0; i < 3; ++i) {
    auto r = std::make_unique<Recorder>();
    r->broadcast_on_start = (i == 0);
    recs.push_back(r.get());
    sys.set_process(i, std::move(r));
  }
  sys.start();
  sys.run_until(10);
  const NetworkStats& stats = sys.net_stats();
  EXPECT_EQ(stats.copies_delivered, 3u);
  EXPECT_EQ(stats.latency_max, 2);
  EXPECT_DOUBLE_EQ(stats.mean_latency(), 2.0);
}

TEST(System, GroundTruthAccessors) {
  auto cfg = base_config(4);
  cfg.crashes = {std::nullopt, CrashPlan{5}, std::nullopt, CrashPlan{8}};
  System sys(std::move(cfg));
  EXPECT_TRUE(sys.is_correct(0));
  EXPECT_FALSE(sys.is_correct(1));
  EXPECT_EQ(sys.correct_set(), (std::vector<ProcIndex>{0, 2}));
  EXPECT_EQ(sys.correct_ids(), (Multiset<Id>{1, 3}));
  EXPECT_EQ(sys.all_ids().size(), 4u);
  EXPECT_EQ(sys.alive_count_at(0), 4u);
  EXPECT_EQ(sys.alive_count_at(5), 4u);  // alive through the crash instant
  EXPECT_EQ(sys.alive_count_at(6), 3u);
  EXPECT_EQ(sys.alive_count_at(9), 2u);
}

TEST(System, ValidatesConfiguration) {
  SystemConfig empty;
  empty.timing = std::make_unique<AsyncTiming>(1, 1);
  EXPECT_THROW(System{std::move(empty)}, std::invalid_argument);

  SystemConfig no_timing;
  no_timing.ids = {1};
  EXPECT_THROW(System{std::move(no_timing)}, std::invalid_argument);

  SystemConfig bad_crashes;
  bad_crashes.ids = {1, 2};
  bad_crashes.timing = std::make_unique<AsyncTiming>(1, 1);
  bad_crashes.crashes = {std::nullopt};
  EXPECT_THROW(System{std::move(bad_crashes)}, std::invalid_argument);
}

TEST(System, StartRequiresAllProcessesInstalled) {
  System sys(base_config(2));
  sys.set_process(0, std::make_unique<Recorder>());
  EXPECT_THROW(sys.start(), std::logic_error);
}

}  // namespace
}  // namespace hds
