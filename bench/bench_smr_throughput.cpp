// Replicated-log throughput anchor: the closed-loop client workload driven
// through the SMR fast path on the sim substrate.
//
// Two groups:
//   - BM_Smr_ClosedLoopThroughput is the CI-gated series: n=3 under the
//     stable HΩ oracle, measuring how fast the simulator pushes committed
//     client ops end to end (items_per_second = committed ops / wall
//     second). The sim-domain outcomes ride along as counters — ops_total,
//     ops_per_ktick, commit-latency p50/p99 in ticks, appends per committed
//     batch — and are a pure function of the seed, so CI can also bound
//     them exactly (see the SMR gate in ci.yml).
//   - BM_Smr_LeaderCrashRecovery prices the slow path: the lease holder
//     crashes mid-stream and the run must still converge through epoch
//     recovery + per-slot Fig. 8 instances. Not gated; the counters
//     (epochs, recovery instances) document the failover bill.
//
// Every run must converge with a consistent prefix — a benchmark never
// reports numbers from a broken run (hds::bench::require).
#include "bench_util.h"
#include "smr/harness.h"

namespace {

using namespace hds;

// Arg 0: replica count n (t = (n-1)/2).
void BM_Smr_ClosedLoopThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  smr::SmrSimResult r;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    smr::SmrSimParams p;
    p.n = n;
    p.t = (n - 1) / 2;
    p.seed = 11;
    p.run_for = 8000;
    p.max_time = 32'000;
    p.workload.clients = 64;
    p.metrics = bench::metrics_sink();
    r = run_smr_sim(p);
    ops += r.ops_total;
  }
  bench::require(state, r.converged, "replicas did not converge");
  bench::require(state, r.prefix_consistent, "applied prefixes diverged");
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.counters["ops_total"] = static_cast<double>(r.ops_total);
  state.counters["ops_per_ktick"] = r.ops_per_ktick;
  state.counters["latency_p50"] = r.latency_p50;
  state.counters["latency_p99"] = r.latency_p99;
  double appends = 0;
  double batches = 0;
  for (const smr::SmrReplicaStats& st : r.replicas) {
    appends += static_cast<double>(st.appends_sent + st.repair_appends_sent);
    batches = std::max(batches, static_cast<double>(st.batches_committed));
  }
  state.counters["appends_per_batch"] = batches > 0 ? appends / batches : 0;
}
BENCHMARK(BM_Smr_ClosedLoopThroughput)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_Smr_LeaderCrashRecovery(benchmark::State& state) {
  smr::SmrSimResult r;
  for (auto _ : state) {
    smr::SmrSimParams p;
    p.n = 5;
    p.t = 2;
    p.seed = 23;
    p.run_for = 8000;
    p.max_time = 60'000;
    p.workload.clients = 32;
    p.full_stack = true;
    p.net.gst = 150;
    p.net.delta = 3;
    p.crashes.resize(5);
    p.crashes[0] = CrashPlan{2500, false};  // whoever leads first (lowest index wins HΩ)
    p.metrics = bench::metrics_sink();
    r = run_smr_sim(p);
  }
  bench::require(state, r.converged, "survivors did not converge after failover");
  bench::require(state, r.prefix_consistent, "applied prefixes diverged");
  state.counters["ops_total"] = static_cast<double>(r.ops_total);
  state.counters["latency_p99"] = r.latency_p99;
  double epochs = 0;
  double recoveries = 0;
  for (const smr::SmrReplicaStats& st : r.replicas) {
    epochs = std::max(epochs, static_cast<double>(st.epochs_started));
    recoveries += static_cast<double>(st.recovery_instances);
  }
  state.counters["epochs"] = epochs;
  state.counters["recovery_instances"] = recoveries;
}
BENCHMARK(BM_Smr_LeaderCrashRecovery)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

HDS_BENCH_MAIN()
