// Figure 8 benchmark: consensus in HAS[t < n/2, HΩ].
//
// Series: decision latency / rounds / message volume vs n, vs homonymy
// degree l, vs actual crash count, vs detector stabilization time (the
// dominant factor — expect decision ≈ stabilization + O(rounds)); and the
// full Fig. 6 ▸ Fig. 8 stack vs GST under partial synchrony.
#include "bench_util.h"
#include "consensus/messages.h"

namespace {

using namespace hds;

void set_counters(benchmark::State& state, const ConsensusRunResult& r) {
  state.counters["decision_time"] = static_cast<double>(r.last_decision_time);
  state.counters["rounds"] = static_cast<double>(r.max_round);
  state.counters["broadcasts"] = static_cast<double>(r.broadcasts);
  state.counters["copies"] = static_cast<double>(r.copies_delivered);
  // Per-phase accounting: the Leaders' Coordination Phase is the part of
  // the algorithm that exists because of homonymy.
  auto of = [&](const char* type) {
    auto it = r.broadcasts_by_type.find(type);
    return it == r.broadcasts_by_type.end() ? 0.0 : static_cast<double>(it->second);
  };
  state.counters["coord_msgs"] = of(kCoordType);
  state.counters["ph1_msgs"] = of(kPh1Type);
}

void BM_Fig8_ScaleVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig8OracleParams p;
    p.ids = ids_homonymous(n, (n + 1) / 2, 5);
    p.t_known = (n - 1) / 2;
    if (n > 2) p.crashes = crashes_last_k(n, (n - 1) / 2, 20, 9);
    p.fd_stabilize = 60;
    p.seed = 1;
    p.metrics = hds::bench::metrics_sink();
    r = run_fig8_with_oracle(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  set_counters(state, r);
}
BENCHMARK(BM_Fig8_ScaleVsN)->Arg(3)->Arg(5)->Arg(9)->Arg(17)->Arg(33)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig8_HomonymyDegree(benchmark::State& state) {
  const auto distinct = static_cast<std::size_t>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig8OracleParams p;
    p.ids = ids_homonymous(9, distinct, 7);
    p.t_known = 4;
    p.crashes = crashes_last_k(9, 3, 25, 9);
    p.fd_stabilize = 60;
    p.seed = 2;
    p.metrics = hds::bench::metrics_sink();
    r = run_fig8_with_oracle(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  set_counters(state, r);
}
BENCHMARK(BM_Fig8_HomonymyDegree)->Arg(1)->Arg(2)->Arg(4)->Arg(9)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig8_VsFdStabilization(benchmark::State& state) {
  const auto stab = static_cast<SimTime>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig8OracleParams p;
    p.ids = ids_homonymous(7, 3, 3);
    p.t_known = 3;
    p.crashes = crashes_last_k(7, 2, 15, 9);
    p.fd_stabilize = stab;
    p.seed = 3;
    p.metrics = hds::bench::metrics_sink();
    r = run_fig8_with_oracle(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  set_counters(state, r);
  state.counters["decision_minus_stab"] =
      static_cast<double>(r.last_decision_time - stab);
}
BENCHMARK(BM_Fig8_VsFdStabilization)->Arg(0)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig8_VsCrashCount(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig8OracleParams p;
    p.ids = ids_homonymous(11, 5, 9);
    p.t_known = 5;
    if (k > 0) p.crashes = crashes_last_k(11, k, 15, 11);
    p.fd_stabilize = 60;
    p.seed = 4;
    p.metrics = hds::bench::metrics_sink();
    r = run_fig8_with_oracle(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  set_counters(state, r);
}
BENCHMARK(BM_Fig8_VsCrashCount)->Arg(0)->Arg(1)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig8_FullStackVsGst(benchmark::State& state) {
  const auto gst = static_cast<SimTime>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig8FullStackParams p;
    p.ids = ids_homonymous(5, 2, 7);
    p.t_known = 2;
    p.crashes = crashes_last_k(5, 2, gst / 2 + 5, 13);
    p.net = {.gst = gst, .delta = 3, .pre_gst_loss = 0.0, .pre_gst_max_delay = 40};
    p.seed = 2;
    p.metrics = hds::bench::metrics_sink();
    r = run_fig8_full_stack(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  set_counters(state, r);
  state.counters["decision_minus_gst"] = static_cast<double>(r.last_decision_time - gst);
}
BENCHMARK(BM_Fig8_FullStackVsGst)->Arg(0)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

HDS_BENCH_MAIN();
