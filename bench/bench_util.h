// Shared helpers for the per-figure benchmark binaries.
//
// Paper-shape reporting convention: every benchmark sets google-benchmark
// counters carrying the *simulated* quantities the paper reasons about
// (stabilization time, rounds to decision, sub-rounds, message counts);
// wall time measures the simulator cost itself. EXPERIMENTS.md maps each
// counter series back to the paper's qualitative claims.
#pragma once

#include <benchmark/benchmark.h>

#include "consensus/harness.h"

namespace hds::bench {

// Aborts the benchmark loudly if a run violated its checked property —
// a benchmark must never quietly report numbers from a broken run.
inline void require(benchmark::State& state, bool ok, const std::string& what) {
  if (!ok) state.SkipWithError(("property violated: " + what).c_str());
}

}  // namespace hds::bench
