// Shared helpers for the per-figure benchmark binaries.
//
// Paper-shape reporting convention: every benchmark sets google-benchmark
// counters carrying the *simulated* quantities the paper reasons about
// (stabilization time, rounds to decision, sub-rounds, message counts);
// wall time measures the simulator cost itself. EXPERIMENTS.md maps each
// counter series back to the paper's qualitative claims.
//
// Observability hook: every bench binary is built with HDS_BENCH_MAIN(),
// which consumes `--metrics-json=PATH` before google-benchmark parses the
// command line. When the flag is present, metrics_sink() returns a live
// registry that the benchmarks thread into their harness params, and the
// accumulated snapshot is written to PATH at exit. Without the flag,
// metrics_sink() is null and the instruments cost nothing.
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>

#include "consensus/harness.h"
#include "obs/metrics.h"

namespace hds::bench {

// Aborts the benchmark loudly if a run violated its checked property —
// a benchmark must never quietly report numbers from a broken run.
inline void require(benchmark::State& state, bool ok, const std::string& what) {
  if (!ok) state.SkipWithError(("property violated: " + what).c_str());
}

inline obs::MetricsRegistry& metrics() {
  static obs::MetricsRegistry reg;
  return reg;
}

inline std::string& metrics_json_path() {
  static std::string path;
  return path;
}

// The registry to thread into harness params: live when --metrics-json was
// given, null otherwise (so default runs measure the uninstrumented path).
inline obs::MetricsRegistry* metrics_sink() {
  return metrics_json_path().empty() ? nullptr : &metrics();
}

// Strips --metrics-json=PATH from argv; must run before
// benchmark::Initialize, which rejects flags it does not know.
inline void consume_metrics_flag(int& argc, char** argv) {
  const std::string prefix = "--metrics-json=";
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string a = argv[r];
    if (a.rfind(prefix, 0) == 0) {
      metrics_json_path() = a.substr(prefix.size());
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
}

inline void dump_metrics() {
  if (metrics_json_path().empty()) return;
  std::ofstream out(metrics_json_path());
  if (!out) {
    std::cerr << "bench: cannot open " << metrics_json_path() << "\n";
    return;
  }
  out << metrics().to_json();
}

}  // namespace hds::bench

// Drop-in replacement for BENCHMARK_MAIN() with the --metrics-json hook.
#define HDS_BENCH_MAIN()                                                     \
  int main(int argc, char** argv) {                                          \
    hds::bench::consume_metrics_flag(argc, argv);                            \
    benchmark::Initialize(&argc, argv);                                      \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;        \
    benchmark::RunSpecifiedBenchmarks();                                     \
    benchmark::Shutdown();                                                   \
    hds::bench::dump_metrics();                                              \
    return 0;                                                                \
  }
