// Figure 9 benchmark: consensus in HAS[HΩ, HΣ] — any number of crashes,
// no n/t/membership knowledge.
//
// Series: decision latency / rounds / sub-rounds vs crash count all the
// way to n-1 (the property Fig. 8 cannot offer), vs homonymy degree, vs
// HΣ stabilization (late quorum changes force sub-round churn); the full
// synchronous stack (Fig. 6 + Fig. 7-adapter) and the anonymous AP-derived
// stack.
#include "bench_util.h"
#include "consensus/messages.h"

namespace {

using namespace hds;

void set_counters(benchmark::State& state, const ConsensusRunResult& r) {
  state.counters["decision_time"] = static_cast<double>(r.last_decision_time);
  state.counters["rounds"] = static_cast<double>(r.max_round);
  state.counters["sub_rounds"] = static_cast<double>(r.max_sub_round);
  state.counters["broadcasts"] = static_cast<double>(r.broadcasts);
  auto of = [&](const char* type) {
    auto it = r.broadcasts_by_type.find(type);
    return it == r.broadcasts_by_type.end() ? 0.0 : static_cast<double>(it->second);
  };
  // Sub-round churn shows up as extra PH1Q/PH2Q rebroadcasts.
  state.counters["ph1q_msgs"] = of(kPh1QType);
  state.counters["ph2q_msgs"] = of(kPh2QType);
}

void BM_Fig9_VsCrashCountUpToAllButOne(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig9OracleParams p;
    p.ids = ids_homonymous(8, 4, 3);
    if (k > 0) p.crashes = crashes_last_k(8, k, 15, 9);
    p.fd1_stabilize = 60;
    p.fd2_stabilize = 90;
    p.seed = 1;
    p.metrics = hds::bench::metrics_sink();
    r = run_fig9_with_oracle(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  set_counters(state, r);
}
BENCHMARK(BM_Fig9_VsCrashCountUpToAllButOne)->Arg(0)->Arg(2)->Arg(4)->Arg(7)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig9_ScaleVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig9OracleParams p;
    p.ids = ids_homonymous(n, (n + 1) / 2, 5);
    p.crashes = crashes_last_k(n, n / 2, 20, 7);
    p.fd1_stabilize = 60;
    p.fd2_stabilize = 80;
    p.seed = 2;
    p.metrics = hds::bench::metrics_sink();
    r = run_fig9_with_oracle(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  set_counters(state, r);
}
BENCHMARK(BM_Fig9_ScaleVsN)->Arg(3)->Arg(5)->Arg(9)->Arg(17)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig9_VsHSigmaStabilization(benchmark::State& state) {
  const auto stab = static_cast<SimTime>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig9OracleParams p;
    p.ids = ids_homonymous(6, 3, 9);
    p.crashes = crashes_last_k(6, 3, 10, 5);
    p.fd1_stabilize = 30;
    p.fd2_stabilize = stab;
    p.seed = 3;
    p.metrics = hds::bench::metrics_sink();
    r = run_fig9_with_oracle(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  set_counters(state, r);
  state.counters["decision_minus_stab"] =
      static_cast<double>(r.last_decision_time - stab);
}
BENCHMARK(BM_Fig9_VsHSigmaStabilization)->Arg(0)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig9_FullSyncStack(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig9FullStackParams p;
    p.ids = ids_homonymous(n, (n + 1) / 2, 7);
    p.crashes = crashes_last_k(n, n - 2, 37, 11);
    p.delta = 3;
    p.seed = 8;
    p.metrics = hds::bench::metrics_sink();
    r = run_fig9_full_stack(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  set_counters(state, r);
}
BENCHMARK(BM_Fig9_FullSyncStack)->Arg(3)->Arg(5)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig9_AnonymousApStack(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig9FullStackParams p;
    p.ids = ids_anonymous(n);
    p.crashes = crashes_last_k(n, n / 2, 29, 7);
    p.delta = 2;
    p.seed = 13;
    p.anonymous_ap_stack = true;
    p.metrics = hds::bench::metrics_sink();
    r = run_fig9_full_stack(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  set_counters(state, r);
}
BENCHMARK(BM_Fig9_AnonymousApStack)->Arg(3)->Arg(6)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

HDS_BENCH_MAIN();
