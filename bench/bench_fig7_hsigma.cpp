// Figure 7 benchmark: HΣ implementation in HSS.
//
// Series: steps until every correct process holds a live quorum (expect:
// the step after the last crash), stored quora growth under crash
// cascades, and message volume per step (n per step, n^2 copies).
#include "bench_util.h"

namespace {

using namespace hds;

Fig7Result run(std::size_t n, std::size_t distinct, std::size_t crash_k, std::size_t stagger,
               std::uint64_t seed) {
  Fig7Params p;
  p.ids = ids_homonymous(n, distinct, seed + 29);
  if (crash_k > 0) p.crashes = sync_crashes_last_k(n, crash_k, 1, stagger, true);
  p.steps = 10 + crash_k * stagger + 5;
  p.seed = seed;
  p.metrics = hds::bench::metrics_sink();
  return run_fig7(p);
}

void BM_Fig7_LivenessStepVsCrashes(benchmark::State& state) {
  const auto crash_k = static_cast<std::size_t>(state.range(0));
  Fig7Result r;
  for (auto _ : state) r = run(10, 5, crash_k, 2, 1);
  hds::bench::require(state, r.check.ok, r.check.detail);
  state.counters["liveness_step"] = static_cast<double>(r.liveness_step);
  state.counters["quora_stored"] = static_cast<double>(r.max_quora_stored);
}
BENCHMARK(BM_Fig7_LivenessStepVsCrashes)->Arg(0)->Arg(2)->Arg(5)->Arg(9)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig7_ScaleVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fig7Result r;
  for (auto _ : state) r = run(n, (n + 1) / 2, n / 3, 1, 2);
  hds::bench::require(state, r.check.ok, r.check.detail);
  state.counters["messages"] = static_cast<double>(r.messages);
  state.counters["liveness_step"] = static_cast<double>(r.liveness_step);
}
BENCHMARK(BM_Fig7_ScaleVsN)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig7_HomonymyDegree(benchmark::State& state) {
  const auto distinct = static_cast<std::size_t>(state.range(0));
  Fig7Result r;
  for (auto _ : state) r = run(12, distinct, 4, 1, 3);
  hds::bench::require(state, r.check.ok, r.check.detail);
  state.counters["liveness_step"] = static_cast<double>(r.liveness_step);
  state.counters["quora_stored"] = static_cast<double>(r.max_quora_stored);
}
BENCHMARK(BM_Fig7_HomonymyDegree)->Arg(1)->Arg(3)->Arg(6)->Arg(12)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

HDS_BENCH_MAIN();
