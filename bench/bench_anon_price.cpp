// "Price of anonymity" benchmark (Section 1 discussion): the paper recalls
// that consensus with P needs t+1 rounds while anonymous consensus with AP
// needs 2t+1, and motivates homonymy as the middle ground. We measure how
// our two algorithms behave across the homonymy spectrum l = 1 (anonymous)
// … l = n (unique ids): decision rounds, sub-rounds, coordination traffic.
// Expect Fig. 8/9 round counts to be flat in l (the algorithms pay in the
// Leaders' Coordination Phase, not in rounds), with COORD convergence work
// growing as homonyms multiply.
#include <memory>

#include "bench_util.h"
#include "consensus/flood_sync.h"
#include "fd/ground_truth.h"

namespace {

using namespace hds;

// Round counts of the two synchronous baselines under the adversarial
// one-crash-per-step schedule: FloodMin always pays its fixed t+1 (t must be
// known); the AP-style early stopper pays 2 when nothing fails and ~t+2 in
// the worst case without ever knowing t.
template <typename P, typename Make>
std::pair<std::size_t, bool> run_sync_baseline(std::size_t n, std::size_t crash_k,
                                               std::size_t steps, std::uint64_t seed,
                                               Make make) {
  SyncConfig cfg;
  cfg.ids = ids_anonymous(n);
  if (crash_k > 0) cfg.crashes = sync_crashes_last_k(n, crash_k, 0, 1, false);
  cfg.seed = seed;
  SyncSystem sys(std::move(cfg));
  const auto proposals = distinct_proposals(n);
  std::vector<P*> procs;
  for (ProcIndex i = 0; i < n; ++i) {
    auto p = make(proposals[i]);
    procs.push_back(p.get());
    sys.set_process(i, std::move(p));
  }
  sys.run_steps(steps);
  std::vector<DecisionRecord> decisions;
  for (auto* p : procs) decisions.push_back(p->decision());
  const bool ok = check_consensus(GroundTruth::from(sys), proposals, decisions).ok;
  std::size_t max_round = 0;
  for (ProcIndex i = 0; i < n; ++i) {
    if (sys.is_correct(i)) {
      max_round = std::max(max_round, static_cast<std::size_t>(decisions[i].round));
    }
  }
  return {max_round, ok};
}

void BM_AnonPrice_SyncBaselinesVsT(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 10;
  std::pair<std::size_t, bool> flood, apstab;
  for (auto _ : state) {
    flood = run_sync_baseline<FloodMinSync>(
        n, t, t + 4, 1, [&](Value v) { return std::make_unique<FloodMinSync>(v, t); });
    apstab = run_sync_baseline<ApStabilitySync>(
        n, t, 2 * t + 8, 1, [&](Value v) { return std::make_unique<ApStabilitySync>(v); });
  }
  hds::bench::require(state, flood.second, "FloodMin consensus check");
  hds::bench::require(state, apstab.second, "ApStability consensus check");
  state.counters["floodmin_rounds"] = static_cast<double>(flood.first);
  state.counters["apstab_rounds"] = static_cast<double>(apstab.first);
}
BENCHMARK(BM_AnonPrice_SyncBaselinesVsT)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_AnonPrice_Fig8Spectrum(benchmark::State& state) {
  const auto distinct = static_cast<std::size_t>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig8OracleParams p;
    p.ids = distinct == 0 ? ids_anonymous(9) : ids_homonymous(9, distinct, 3);
    p.t_known = 4;
    p.crashes = crashes_last_k(9, 4, 20, 9);
    p.fd_stabilize = 80;
    p.seed = 1;
    r = run_fig8_with_oracle(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  state.counters["rounds"] = static_cast<double>(r.max_round);
  state.counters["decision_time"] = static_cast<double>(r.last_decision_time);
  state.counters["broadcasts"] = static_cast<double>(r.broadcasts);
}
BENCHMARK(BM_AnonPrice_Fig8Spectrum)->Arg(0)->Arg(2)->Arg(4)->Arg(9)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_AnonPrice_Fig9Spectrum(benchmark::State& state) {
  const auto distinct = static_cast<std::size_t>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig9OracleParams p;
    p.ids = distinct == 0 ? ids_anonymous(9) : ids_homonymous(9, distinct, 3);
    p.crashes = crashes_last_k(9, 6, 20, 9);  // beyond any majority
    p.fd1_stabilize = 80;
    p.fd2_stabilize = 110;
    p.seed = 1;
    r = run_fig9_with_oracle(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  state.counters["rounds"] = static_cast<double>(r.max_round);
  state.counters["sub_rounds"] = static_cast<double>(r.max_sub_round);
  state.counters["decision_time"] = static_cast<double>(r.last_decision_time);
}
BENCHMARK(BM_AnonPrice_Fig9Spectrum)->Arg(0)->Arg(2)->Arg(4)->Arg(9)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_AnonPrice_AnonAOmegaVariant(benchmark::State& state) {
  // The AAS[AΩ, HΣ] specialization (coordination phase removed): its
  // decision latency vs the homonymous general algorithm at l = 1.
  const auto n = static_cast<std::size_t>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig9AnonOmegaParams p;
    p.n = n;
    p.crashes = crashes_last_k(n, n / 2, 20, 9);
    p.aomega_stabilize = 80;
    p.fd2_stabilize = 110;
    p.seed = 1;
    r = run_fig9_anon_aomega(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  state.counters["rounds"] = static_cast<double>(r.max_round);
  state.counters["decision_time"] = static_cast<double>(r.last_decision_time);
}
BENCHMARK(BM_AnonPrice_AnonAOmegaVariant)->Arg(5)->Arg(9)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

HDS_BENCH_MAIN();
