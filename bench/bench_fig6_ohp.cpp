// Figure 6 benchmark: ◇HP̄ / HΩ implementation in HPS.
//
// Series reproduced (the paper proves Theorem 5 qualitatively; we measure
// the shape):
//   - stabilization time of h_trusted == I(Correct) vs the post-GST link
//     bound delta (timeout adaptation must absorb delta: expect roughly
//     linear growth),
//   - stabilization time vs GST (expect stab ≈ GST + adaptation tail),
//   - stabilization time and message volume vs n (quadratic copies),
//   - invariance of stabilization under the homonymy degree l (the
//     algorithm never distinguishes homonyms: expect a flat series).
#include "bench_util.h"
#include "fd/impl/homega_heartbeat.h"
#include "fd/impl/ohp_polling.h"
#include "spec/fd_checkers.h"

namespace {

using namespace hds;

Fig6Result run(std::size_t n, std::size_t distinct, SimTime gst, SimTime delta,
               std::size_t crash_k, std::uint64_t seed) {
  Fig6Params p;
  p.ids = ids_homonymous(n, distinct, seed + 17);
  if (crash_k > 0) p.crashes = crashes_last_k(n, crash_k, gst / 2 + 10, 7);
  p.net = {.gst = gst, .delta = delta, .pre_gst_loss = 0.3, .pre_gst_max_delay = 40};
  p.seed = seed;
  p.run_for = 4000 + 40 * static_cast<SimTime>(n) + 60 * delta;
  p.stable_window = 300;
  p.metrics = hds::bench::metrics_sink();
  return run_fig6(p);
}

void BM_Fig6_StabilizationVsDelta(benchmark::State& state) {
  const auto delta = static_cast<SimTime>(state.range(0));
  Fig6Result r;
  for (auto _ : state) r = run(6, 3, 100, delta, 2, 1);
  hds::bench::require(state, r.ohp_check.ok, r.ohp_check.detail);
  state.counters["stab_time"] = static_cast<double>(r.stabilization_time);
  state.counters["final_timeout"] = static_cast<double>(r.max_final_timeout);
  state.counters["broadcasts"] = static_cast<double>(r.broadcasts);
}
BENCHMARK(BM_Fig6_StabilizationVsDelta)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig6_StabilizationVsGst(benchmark::State& state) {
  const auto gst = static_cast<SimTime>(state.range(0));
  Fig6Result r;
  for (auto _ : state) r = run(6, 3, gst, 3, 2, 2);
  hds::bench::require(state, r.ohp_check.ok, r.ohp_check.detail);
  state.counters["stab_time"] = static_cast<double>(r.stabilization_time);
  state.counters["stab_minus_gst"] = static_cast<double>(r.stabilization_time - gst);
}
BENCHMARK(BM_Fig6_StabilizationVsGst)->Arg(0)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig6_ScaleVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fig6Result r;
  for (auto _ : state) r = run(n, (n + 1) / 2, 80, 3, n / 4, 3);
  hds::bench::require(state, r.ohp_check.ok, r.ohp_check.detail);
  state.counters["stab_time"] = static_cast<double>(r.stabilization_time);
  state.counters["broadcasts"] = static_cast<double>(r.broadcasts);
  state.counters["copies_delivered"] = static_cast<double>(r.copies_delivered);
}
BENCHMARK(BM_Fig6_ScaleVsN)->Arg(3)->Arg(6)->Arg(12)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig6_HomonymyDegree(benchmark::State& state) {
  // l distinct identifiers among 12 processes; expect a flat stab series.
  const auto distinct = static_cast<std::size_t>(state.range(0));
  Fig6Result r;
  for (auto _ : state) r = run(12, distinct, 80, 3, 3, 4);
  hds::bench::require(state, r.ohp_check.ok, r.ohp_check.detail);
  state.counters["stab_time"] = static_cast<double>(r.stabilization_time);
  state.counters["homega_ok"] = r.homega_check.ok ? 1 : 0;
}
BENCHMARK(BM_Fig6_HomonymyDegree)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// Extension comparison: HΩ via Fig. 6's polling vs the heartbeat scheme
// (fd/impl/homega_heartbeat). Same convergence criterion (stable HΩ
// election), message cost compared. Measured finding: although polling
// costs n + up-to-n² broadcasts per round against the heartbeat's n per
// period, Fig. 6's adaptive timeout stretches its rounds as it converges —
// it self-throttles — while a fixed-period heartbeat keeps paying n per
// period forever. At equal detection latency the heartbeat sends *more*
// total broadcasts over a long run; its advantage is the O(n) rate bound,
// not the total volume.
void BM_Fig6_VsHeartbeatCost(benchmark::State& state) {
  const bool heartbeat = state.range(0) != 0;
  const auto n = static_cast<std::size_t>(state.range(1));
  const SimTime run_for = 2500;
  std::uint64_t broadcasts = 0;
  bool ok = false;
  std::string detail;
  for (auto _ : state) {
    SystemConfig cfg;
    cfg.ids = ids_homonymous(n, (n + 1) / 2, 7);
    cfg.timing = std::make_unique<PartialSyncTiming>(PartialSyncTiming::Params{
        .gst = 80, .delta = 3, .pre_gst_loss = 0.2, .pre_gst_max_delay = 30});
    cfg.crashes = crashes_last_k(n, n / 4, 50, 9);
    cfg.seed = 3;
    System sys(std::move(cfg));
    std::vector<const Trajectory<HOmegaOut>*> traces;
    std::vector<OHPPolling*> polls;
    std::vector<HOmegaHeartbeat*> beats;
    for (ProcIndex i = 0; i < n; ++i) {
      if (heartbeat) {
        auto fd = std::make_unique<HOmegaHeartbeat>(4);
        beats.push_back(fd.get());
        sys.set_process(i, std::move(fd));
      } else {
        auto fd = std::make_unique<OHPPolling>();
        polls.push_back(fd.get());
        sys.set_process(i, std::move(fd));
      }
    }
    sys.start();
    sys.run_until(run_for);
    for (ProcIndex i = 0; i < n; ++i) {
      traces.push_back(heartbeat ? &beats[i]->trace() : &polls[i]->homega_trace());
    }
    auto res = check_homega(GroundTruth::from(sys), traces, run_for, 250);
    ok = res.ok;
    detail = res.detail;
    broadcasts = sys.net_stats().broadcasts;
  }
  hds::bench::require(state, ok, detail);
  state.counters["broadcasts"] = static_cast<double>(broadcasts);
}
BENCHMARK(BM_Fig6_VsHeartbeatCost)
    ->Args({0, 6})->Args({1, 6})->Args({0, 12})->Args({1, 12})->Args({0, 24})->Args({1, 24})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

HDS_BENCH_MAIN();
