// Substrate benchmark: raw throughput of the discrete-event engine, so the
// sim-time numbers in every other binary are anchored to reproducible
// wall-clock costs.
#include <memory>

#include "bench_util.h"
#include "sim/scheduler.h"
#include "sim/system.h"

namespace {

using namespace hds;

void BM_Scheduler_EventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Scheduler sched;
    std::uint64_t fired = 0;
    for (int k = 0; k < 10000; ++k) {
      sched.at(k % 97, [&fired] { ++fired; });
    }
    state.ResumeTiming();
    sched.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_Scheduler_EventThroughput);

struct Flooder final : Process {
  explicit Flooder(SimTime period) : period_(period) {}
  void on_start(Env& env) override {
    env.broadcast(make_message("FLOOD", 0));
    env.set_timer(period_);
  }
  void on_timer(Env& env, TimerId) override {
    env.broadcast(make_message("FLOOD", 0));
    env.set_timer(period_);
  }
  void on_message(Env&, const Message&) override { ++received_; }
  SimTime period_;
  std::uint64_t received_ = 0;
};

void BM_System_BroadcastFloodThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    SystemConfig cfg;
    for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
    cfg.timing = std::make_unique<AsyncTiming>(1, 4);
    cfg.seed = 1;
    System sys(std::move(cfg));
    for (ProcIndex i = 0; i < n; ++i) sys.set_process(i, std::make_unique<Flooder>(2));
    sys.start();
    sys.run_until(200);
    delivered = sys.net_stats().copies_delivered;
  }
  state.counters["copies_delivered"] = static_cast<double>(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_System_BroadcastFloodThroughput)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Observability overhead: the same flood with the metrics registry detached
// (instrument pointers null, the default) vs attached. The arg toggles the
// registry; compare the two series to confirm the detached path costs
// nothing measurable.
void BM_System_FloodMetricsOverhead(benchmark::State& state) {
  const bool instrumented = state.range(0) != 0;
  const std::size_t n = 16;
  obs::MetricsRegistry reg;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    SystemConfig cfg;
    for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
    cfg.timing = std::make_unique<AsyncTiming>(1, 4);
    cfg.seed = 1;
    if (instrumented) cfg.metrics = &reg;
    System sys(std::move(cfg));
    for (ProcIndex i = 0; i < n; ++i) sys.set_process(i, std::make_unique<Flooder>(2));
    sys.start();
    sys.run_until(200);
    delivered = sys.net_stats().copies_delivered;
  }
  state.counters["copies_delivered"] = static_cast<double>(delivered);
  if (instrumented) {
    state.counters["metric_series"] = static_cast<double>(reg.series_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_System_FloodMetricsOverhead)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

HDS_BENCH_MAIN();
