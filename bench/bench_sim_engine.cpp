// Substrate benchmark: raw throughput of the discrete-event engine, so the
// sim-time numbers in every other binary are anchored to reproducible
// wall-clock costs.
//
// Timing discipline: the scheduler benchmarks use manual timing around the
// drain only — the old Pause/ResumeTiming pattern charged the pause
// bookkeeping to the measured region, under-reporting events/sec by a large
// constant. Fill cost is reported separately. The binary also overrides
// global operator new/delete with a counting pass-through, so every series
// reports allocations per event — the SBO Action and the fan-out grouping
// claim "no per-event allocation in steady state", and this is where that
// claim is measured.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>

#include "bench_util.h"
#include "obs/profiler.h"
#include "sim/scheduler.h"
#include "sim/system.h"

// ------------------------------------------------------- counting allocator
// Process-wide pass-through allocator; the relaxed counter costs ~1ns per
// call, which is noise next to malloc itself.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace hds;

constexpr int kEvents = 10000;

QueueKind kind_of(std::int64_t arg) { return arg == 0 ? QueueKind::kCalendar : QueueKind::kHeap; }

// Fill-then-drain: 10k events spread over 97 ticks, drain timed manually.
void BM_Scheduler_EventThroughput(benchmark::State& state) {
  const QueueKind kind = kind_of(state.range(0));
  // Summed across repetitions: keeping only the last drain's count made the
  // reported ratio a single-sample value under UseManualTime.
  std::uint64_t drain_allocs = 0;
  for (auto _ : state) {
    Scheduler sched(kind);
    std::uint64_t fired = 0;
    for (int k = 0; k < kEvents; ++k) {
      sched.at(k % 97, [&fired] { ++fired; });
    }
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    sched.run_all();
    const auto t1 = std::chrono::steady_clock::now();
    drain_allocs += g_allocs.load(std::memory_order_relaxed) - a0;
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    benchmark::DoNotOptimize(fired);
  }
  state.counters["allocs_per_event"] =
      static_cast<double>(drain_allocs) /
      static_cast<double>(state.iterations() * static_cast<std::uint64_t>(kEvents));
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_Scheduler_EventThroughput)->Arg(0)->Arg(1)->UseManualTime();

// Steady-state churn: 64 self-rescheduling chains (the DES shape every timer
// and heartbeat loop produces), so the queue never drains and the window
// rotates continuously.
void BM_Scheduler_SelfReschedulingChurn(benchmark::State& state) {
  const QueueKind kind = kind_of(state.range(0));
  constexpr int kChains = 64;
  constexpr SimTime kHorizon = 4000;
  // Summed across repetitions, as in BM_Scheduler_EventThroughput.
  std::uint64_t churn_allocs = 0;
  std::uint64_t total_fired = 0;
  for (auto _ : state) {
    Scheduler sched(kind);
    std::uint64_t fired = 0;
    std::function<void(SimTime, int)> arm = [&](SimTime at, int chain) {
      sched.at(at, [&, at, chain] {
        ++fired;
        const SimTime next = at + 1 + (chain % 7);
        if (next < kHorizon) arm(next, chain);
      });
    };
    for (int c = 0; c < kChains; ++c) arm(c % 13, c);
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    sched.run_all();
    const auto t1 = std::chrono::steady_clock::now();
    churn_allocs += g_allocs.load(std::memory_order_relaxed) - a0;
    total_fired += fired;
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
  }
  state.counters["allocs_per_event"] =
      total_fired == 0 ? 0.0
                       : static_cast<double>(churn_allocs) / static_cast<double>(total_fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(total_fired));
}
BENCHMARK(BM_Scheduler_SelfReschedulingChurn)->Arg(0)->Arg(1)->UseManualTime();

struct Flooder final : Process {
  explicit Flooder(SimTime period) : period_(period) {}
  void on_start(Env& env) override {
    env.broadcast(make_message("FLOOD", 0));
    env.set_timer(period_);
  }
  void on_timer(Env& env, TimerId) override {
    env.broadcast(make_message("FLOOD", 0));
    env.set_timer(period_);
  }
  void on_message(Env&, const Message&) override { ++received_; }
  SimTime period_;
  std::uint64_t received_ = 0;
};

void BM_System_BroadcastFloodThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t delivered = 0;
  std::uint64_t run_allocs = 0;
  for (auto _ : state) {
    SystemConfig cfg;
    for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
    cfg.timing = std::make_unique<AsyncTiming>(1, 4);
    cfg.seed = 1;
    System sys(std::move(cfg));
    for (ProcIndex i = 0; i < n; ++i) sys.set_process(i, std::make_unique<Flooder>(2));
    sys.start();
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    sys.run_until(200);
    run_allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    delivered = sys.net_stats().copies_delivered;
  }
  state.counters["copies_delivered"] = static_cast<double>(delivered);
  state.counters["allocs_per_copy"] =
      delivered == 0 ? 0.0 : static_cast<double>(run_allocs) / static_cast<double>(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_System_BroadcastFloodThroughput)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// One broadcast flood on the conservative-synchronization engine at a given
// shard count. AsyncTiming(16, 32) gives the engine a lookahead of 16
// ticks, so each window batches thousands of deliveries between barriers —
// the regime sharding is for. Returns the run's wall-clock seconds.
double sharded_flood_once(std::size_t n, std::size_t shards, std::uint64_t& delivered,
                          std::uint64_t& windows) {
  SystemConfig cfg;
  for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
  cfg.timing = std::make_unique<AsyncTiming>(16, 32);
  cfg.seed = 1;
  cfg.shards = shards;
  System sys(std::move(cfg));
  for (ProcIndex i = 0; i < n; ++i) sys.set_process(i, std::make_unique<Flooder>(2));
  sys.start();
  const auto t0 = std::chrono::steady_clock::now();
  sys.run_until(400);
  const auto t1 = std::chrono::steady_clock::now();
  delivered = sys.net_stats().copies_delivered;
  windows = sys.shard_stats().windows;
  return std::chrono::duration<double>(t1 - t0).count();
}

// Sharded flood rows (the CI speedup gate compares the /4 row against the
// /1 row of the same run). scale_eff is the measured parallel efficiency:
// single-shard wall-clock over (shards x sharded wall-clock) for the
// byte-identical scenario; speedup is the same ratio without the divisor.
void BM_System_ShardedFloodThroughput(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 64;
  std::uint64_t ref_delivered = 0;
  std::uint64_t ref_windows = 0;
  const double t_ref = sharded_flood_once(n, 1, ref_delivered, ref_windows);
  std::uint64_t delivered = 0;
  std::uint64_t windows = 0;
  double total = 0;
  for (auto _ : state) {
    const double tk = sharded_flood_once(n, shards, delivered, windows);
    total += tk;
    state.SetIterationTime(tk);
  }
  if (delivered != ref_delivered) {
    state.SkipWithError("sharded run diverged from the single-shard reference");
    return;
  }
  const double mean_tk =
      state.iterations() == 0 ? 0.0 : total / static_cast<double>(state.iterations());
  const double speedup = mean_tk <= 0 ? 0.0 : t_ref / mean_tk;
  state.counters["copies_delivered"] = static_cast<double>(delivered);
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["speedup_vs_1shard"] = speedup;
  state.counters["scale_eff"] = speedup / static_cast<double>(shards);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_System_ShardedFloodThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

// Observability overhead: the same flood with the metrics registry detached
// (instrument pointers null, the default) vs attached. The arg toggles the
// registry; compare the two series to confirm the detached path costs
// nothing measurable.
void BM_System_FloodMetricsOverhead(benchmark::State& state) {
  const bool instrumented = state.range(0) != 0;
  const std::size_t n = 16;
  obs::MetricsRegistry reg;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    SystemConfig cfg;
    for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
    cfg.timing = std::make_unique<AsyncTiming>(1, 4);
    cfg.seed = 1;
    if (instrumented) cfg.metrics = &reg;
    System sys(std::move(cfg));
    for (ProcIndex i = 0; i < n; ++i) sys.set_process(i, std::make_unique<Flooder>(2));
    sys.start();
    sys.run_until(200);
    delivered = sys.net_stats().copies_delivered;
  }
  state.counters["copies_delivered"] = static_cast<double>(delivered);
  if (instrumented) {
    state.counters["metric_series"] = static_cast<double>(reg.series_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_System_FloodMetricsOverhead)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Causal-tracing overhead: the same flood with the trace ring (and its
// lineage stamping) off vs on. The off series is the CI-gated one: tracing
// disabled must stay allocation-free per event and within noise of the
// baseline flood; the on series prices the flight recorder.
void BM_System_FloodTraceOverhead(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  const std::size_t n = 16;
  std::uint64_t delivered = 0;
  std::uint64_t run_allocs = 0;
  std::uint64_t trace_recorded = 0;
  for (auto _ : state) {
    SystemConfig cfg;
    for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
    cfg.timing = std::make_unique<AsyncTiming>(1, 4);
    cfg.seed = 1;
    if (traced) cfg.trace_capacity = std::size_t{1} << 16;
    System sys(std::move(cfg));
    for (ProcIndex i = 0; i < n; ++i) sys.set_process(i, std::make_unique<Flooder>(2));
    sys.start();
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    sys.run_until(200);
    run_allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    delivered = sys.net_stats().copies_delivered;
    if (traced) trace_recorded = sys.trace().recorded();
  }
  state.counters["copies_delivered"] = static_cast<double>(delivered);
  state.counters["allocs_per_copy"] =
      delivered == 0 ? 0.0 : static_cast<double>(run_allocs) / static_cast<double>(delivered);
  if (traced) state.counters["trace_recorded"] = static_cast<double>(trace_recorded);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_System_FloodTraceOverhead)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// In-process profiler overhead: the same flood with the scoped timers off
// vs on. Off is the gated series — a disabled scope is one relaxed load and
// must stay within noise of the plain flood; the on series prices full
// per-event path accounting (two steady_clock reads per scope).
void BM_System_FloodProfilerOverhead(benchmark::State& state) {
  const bool profiled = state.range(0) != 0;
  const std::size_t n = 16;
  std::uint64_t delivered = 0;
  std::uint64_t run_allocs = 0;
  if (profiled) obs::Profiler::instance().enable();
  for (auto _ : state) {
    SystemConfig cfg;
    for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
    cfg.timing = std::make_unique<AsyncTiming>(1, 4);
    cfg.seed = 1;
    System sys(std::move(cfg));
    for (ProcIndex i = 0; i < n; ++i) sys.set_process(i, std::make_unique<Flooder>(2));
    sys.start();
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    sys.run_until(200);
    run_allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    delivered = sys.net_stats().copies_delivered;
  }
  if (profiled) {
    state.counters["prof_paths"] =
        static_cast<double>(obs::Profiler::instance().snapshot().size());
    obs::Profiler::instance().disable();
    obs::Profiler::instance().reset();
  }
  state.counters["copies_delivered"] = static_cast<double>(delivered);
  state.counters["allocs_per_copy"] =
      delivered == 0 ? 0.0 : static_cast<double>(run_allocs) / static_cast<double>(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_System_FloodProfilerOverhead)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

HDS_BENCH_MAIN();
