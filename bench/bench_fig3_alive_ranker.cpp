// Figure 3 benchmark: class-S detector (alive lists, move-to-front).
//
// Series: time until the correct prefix stabilizes after crashes vs n and
// vs the resend period, plus a pure data-structure microbenchmark of the
// move-to-front operation at large list sizes.
#include <algorithm>

#include "bench_util.h"
#include "fd/impl/alive_ranker.h"
#include "sim/system.h"
#include "spec/fd_checkers.h"

namespace {

using namespace hds;

struct RankerOut {
  bool ok = false;
  std::string detail;
  SimTime settle_time = -1;  // last time any correct process's list changed ranks
  std::uint64_t broadcasts = 0;
};

RankerOut run(std::size_t n, std::size_t crash_k, SimTime period, std::uint64_t seed) {
  SystemConfig cfg;
  for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
  cfg.timing = std::make_unique<AsyncTiming>(1, 6);
  cfg.crashes.resize(n);
  for (std::size_t j = 0; j < crash_k; ++j) cfg.crashes[n - 1 - j] = CrashPlan{40};
  cfg.seed = seed;
  System sys(std::move(cfg));
  std::vector<AliveRanker*> fds;
  for (ProcIndex i = 0; i < n; ++i) {
    auto fd = std::make_unique<AliveRanker>(period);
    fds.push_back(fd.get());
    sys.set_process(i, std::move(fd));
  }
  sys.start();
  const SimTime run_for = 1500 + 20 * static_cast<SimTime>(n);
  sys.run_until(run_for);
  const GroundTruth gt = GroundTruth::from(sys);
  std::vector<const Trajectory<std::vector<Id>>*> traces;
  for (auto* fd : fds) traces.push_back(&fd->trace());
  auto res = check_ranker(gt, traces, run_for, 100);
  RankerOut out;
  out.ok = res.ok;
  out.detail = res.detail;
  out.broadcasts = sys.net_stats().broadcasts;
  // Settle time: the first moment from which every correct process's
  // correct-prefix property holds at every later recorded point.
  SimTime settle = 0;
  const std::size_t bound = gt.correct_count();
  const Multiset<Id> correct = gt.correct_ids();
  for (ProcIndex i = 0; i < n; ++i) {
    if (!sys.is_correct(i)) continue;
    SimTime bad_until = 0;
    for (const auto& [t, list] : traces[i]->points()) {
      for (const auto& [id, c] : correct.counts()) {
        (void)c;
        if (rank_of(id, list) > bound) bad_until = t;
      }
    }
    settle = std::max(settle, bad_until);
  }
  out.settle_time = settle;
  return out;
}

void BM_Fig3_SettleVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RankerOut r;
  for (auto _ : state) r = run(n, n / 3, 5, 1);
  hds::bench::require(state, r.ok, r.detail);
  state.counters["settle_time"] = static_cast<double>(r.settle_time);
  state.counters["broadcasts"] = static_cast<double>(r.broadcasts);
}
BENCHMARK(BM_Fig3_SettleVsN)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig3_SettleVsResendPeriod(benchmark::State& state) {
  const auto period = static_cast<SimTime>(state.range(0));
  RankerOut r;
  for (auto _ : state) r = run(8, 3, period, 2);
  hds::bench::require(state, r.ok, r.detail);
  state.counters["settle_time"] = static_cast<double>(r.settle_time);
  state.counters["broadcasts"] = static_cast<double>(r.broadcasts);
}
BENCHMARK(BM_Fig3_SettleVsResendPeriod)->Arg(2)->Arg(5)->Arg(10)->Arg(25)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig3_MoveToFrontThroughput(benchmark::State& state) {
  // Data-structure cost: one ALIVE handling at list size n.
  const auto n = static_cast<std::size_t>(state.range(0));
  AliveRanker fd(1000000);
  SystemConfig cfg;
  cfg.ids = {1};
  cfg.timing = std::make_unique<AsyncTiming>(1, 1);
  System sys(std::move(cfg));
  for (std::size_t i = 0; i < n; ++i) {
    fd.on_message(sys.env(0), make_message(AliveRanker::kMsgType, AliveMsg{static_cast<Id>(i)}));
  }
  Id next = 0;
  for (auto _ : state) {
    fd.on_message(sys.env(0), make_message(AliveRanker::kMsgType, AliveMsg{next}));
    next = (next + 1) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
// Iterations capped: the detector's built-in trajectory records every list
// change, so unbounded iteration would grow memory without bound.
BENCHMARK(BM_Fig3_MoveToFrontThroughput)->Arg(16)->Arg(256)->Arg(4096)->Iterations(5000);

}  // namespace

HDS_BENCH_MAIN();
