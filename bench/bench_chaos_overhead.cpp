// Chaos interposer overhead: the broadcast-flood workload with (0) no
// interposer installed — the single null check every un-chaosed run pays —
// (1) a FaultInjector carrying an *empty* plan, and (2) a dense 4-clause
// always-active plan consulted on every copy. Series 0 and 1 should sit
// within noise of each other; series 2 prices a realistic adversary. A
// second group runs the same sweep over the real Fig. 6 detector stack.
#include <memory>

#include "bench_util.h"
#include "chaos/fault_plan.h"
#include "chaos/injector.h"
#include "consensus/harness.h"
#include "sim/system.h"

namespace {

using namespace hds;

chaos::FaultPlan empty_plan() { return {}; }

chaos::FaultPlan dense_plan() {
  using chaos::ClauseKind;
  chaos::FaultPlan plan;
  chaos::FaultClause slow;
  slow.kind = ClauseKind::kDelay;
  slow.delay = 1;
  chaos::FaultClause jitter;
  jitter.kind = ClauseKind::kReorder;
  jitter.delay = 2;
  chaos::FaultClause loss;
  loss.kind = ClauseKind::kLoss;
  loss.prob = 0.01;
  chaos::FaultClause dup;
  dup.kind = ClauseKind::kDuplicate;
  dup.prob = 0.05;
  dup.count = 1;
  dup.delay = 2;
  plan.clauses = {slow, jitter, loss, dup};  // all active forever
  return plan;
}

struct Flooder final : Process {
  explicit Flooder(SimTime period) : period_(period) {}
  void on_start(Env& env) override {
    env.broadcast(make_message("FLOOD", 0));
    env.set_timer(period_);
  }
  void on_timer(Env& env, TimerId) override {
    env.broadcast(make_message("FLOOD", 0));
    env.set_timer(period_);
  }
  void on_message(Env&, const Message&) override { ++received_; }
  SimTime period_;
  std::uint64_t received_ = 0;
};

// Arg: 0 = no interposer, 1 = empty plan, 2 = dense plan.
void BM_Flood_InterposerOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const std::size_t n = 16;
  std::vector<Id> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back(static_cast<Id>(i + 1));
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    chaos::FaultInjector inj(mode == 2 ? dense_plan() : empty_plan(), ids, 7);
    SystemConfig cfg;
    cfg.ids = ids;
    cfg.timing = std::make_unique<AsyncTiming>(1, 4);
    cfg.seed = 1;
    System sys(std::move(cfg));
    for (ProcIndex i = 0; i < n; ++i) sys.set_process(i, std::make_unique<Flooder>(2));
    if (mode > 0) inj.arm(sys);
    sys.start();
    sys.run_until(200);
    delivered = sys.net_stats().copies_delivered;
  }
  state.counters["copies_delivered"] = static_cast<double>(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_Flood_InterposerOverhead)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// The same three modes over the Fig. 6 detector stack in HPS: prices the
// interposer on a realistic protocol mix (polls, replies, timer traffic).
void BM_Fig6_InterposerOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const std::size_t n = 8;
  const std::vector<Id> ids = ids_homonymous(n, 4, 3);
  SimTime stabilization = -1;
  for (auto _ : state) {
    chaos::FaultInjector inj(mode == 2 ? dense_plan() : empty_plan(), ids, 7);
    Fig6Params p;
    p.ids = ids;
    p.net.gst = 200;
    p.net.delta = 3;
    p.net.pre_gst_loss = 0.05;
    p.net.pre_gst_max_delay = 9;
    p.seed = 5;
    p.run_for = 4000;
    p.metrics = hds::bench::metrics_sink();
    if (mode > 0) p.chaos = &inj;
    const Fig6Result res = run_fig6(p);
    stabilization = res.stabilization_time;
    benchmark::DoNotOptimize(res.broadcasts);
  }
  state.counters["stabilization_time"] = static_cast<double>(stabilization);
}
BENCHMARK(BM_Fig6_InterposerOverhead)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

HDS_BENCH_MAIN();
