// Ablation benchmark: the design choices DESIGN.md calls out, measured.
//
//  - Leaders' Coordination Phase on/off across the homonymy spectrum:
//    without it, homonymous leaders push diverging estimates and liveness
//    degrades (decided=0 rows); with unique ids it is free.
//  - Fig. 6 timeout adaptation on/off vs delta: the frozen-timeout variant
//    stops converging once delta exceeds the initial timeout.
//  - Guard-poll period: how often the event-driven translation re-evaluates
//    detector-driven guards, trading timer traffic for decision latency.
//  - Footnote-5 alpha thresholds vs exact n-t thresholds.
#include "bench_util.h"

namespace {

using namespace hds;

void BM_Ablation_CoordinationPhase(benchmark::State& state) {
  const bool skip = state.range(0) != 0;
  const auto distinct = static_cast<std::size_t>(state.range(1));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig8OracleParams p;
    p.ids = ids_homonymous(6, distinct, 3);
    p.t_known = 2;
    p.fd_stabilize = 50;
    p.skip_coordination_phase = skip;
    p.seed = 7;
    p.max_time = 40'000;
    r = run_fig8_with_oracle(p);
  }
  // Liveness may legitimately fail in the ablated configuration: report it
  // instead of requiring it.
  state.counters["decided"] = r.all_correct_decided ? 1 : 0;
  state.counters["rounds"] = static_cast<double>(r.max_round);
  state.counters["decision_time"] = static_cast<double>(r.last_decision_time);
  if (r.all_correct_decided) {
    hds::bench::require(state, r.check.ok, r.check.detail);  // safety must hold
  }
}
BENCHMARK(BM_Ablation_CoordinationPhase)
    ->Args({0, 1})->Args({1, 1})->Args({0, 2})->Args({1, 2})->Args({0, 6})->Args({1, 6})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Ablation_TimeoutAdaptation(benchmark::State& state) {
  const bool adaptive = state.range(0) != 0;
  const auto delta = static_cast<SimTime>(state.range(1));
  Fig6Result r;
  for (auto _ : state) {
    Fig6Params p;
    p.ids = ids_unique(4);
    p.net = {.gst = 0, .delta = delta, .pre_gst_loss = 0.0, .pre_gst_max_delay = 1};
    p.fd_opts = {.initial_timeout = 2, .adaptive_timeout = adaptive};
    p.run_for = 8000;  // long enough for the adaptive variant to absorb delta = 16
    p.stable_window = 400;
    r = run_fig6(p);
  }
  state.counters["converged"] = r.ohp_check.ok ? 1 : 0;
  state.counters["stab_time"] = static_cast<double>(r.stabilization_time);
  state.counters["final_timeout"] = static_cast<double>(r.max_final_timeout);
}
BENCHMARK(BM_Ablation_TimeoutAdaptation)
    ->Args({1, 2})->Args({0, 2})->Args({1, 8})->Args({0, 8})->Args({1, 16})->Args({0, 16})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Ablation_GuardPollPeriod(benchmark::State& state) {
  // The guard poll is how the event-driven translation notices failure-
  // detector output changes with no message in flight: a coarse period
  // delays exactly the FD-gated transitions (visible when the detectors
  // stabilize late), a fine one costs timer events.
  const auto poll = static_cast<SimTime>(state.range(0));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig9OracleParams p;
    p.ids = ids_homonymous(6, 3, 5);
    p.crashes = crashes_last_k(6, 3, 10, 5);
    p.fd1_stabilize = 60;
    p.fd2_stabilize = 90;
    p.seed = 2;
    p.guard_poll = poll;
    r = run_fig9_with_oracle(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  state.counters["decision_time"] = static_cast<double>(r.last_decision_time);
  state.counters["broadcasts"] = static_cast<double>(r.broadcasts);
}
BENCHMARK(BM_Ablation_GuardPollPeriod)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Ablation_AlphaVsExactN(benchmark::State& state) {
  const bool use_alpha = state.range(0) != 0;
  const auto n = static_cast<std::size_t>(state.range(1));
  ConsensusRunResult r;
  for (auto _ : state) {
    Fig8OracleParams p;
    p.ids = ids_homonymous(n, (n + 1) / 2, 5);
    if (use_alpha) {
      p.alpha = n / 2 + 1;
    } else {
      p.t_known = (n - 1) / 2;
    }
    p.crashes = crashes_last_k(n, (n - 1) / 2, 20, 7);
    p.fd_stabilize = 60;
    p.seed = 3;
    r = run_fig8_with_oracle(p);
  }
  hds::bench::require(state, r.check.ok, r.check.detail);
  state.counters["decision_time"] = static_cast<double>(r.last_decision_time);
  state.counters["rounds"] = static_cast<double>(r.max_round);
}
BENCHMARK(BM_Ablation_AlphaVsExactN)
    ->Args({0, 5})->Args({1, 5})->Args({0, 9})->Args({1, 9})->Args({0, 17})->Args({1, 17})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

HDS_BENCH_MAIN();
