// Figure 4 benchmark (Theorem 2): HΣ → Σ through a class-S ranker.
//
// Series: time until trusted ⊆ I(Correct) through the full real pipeline
// (Fig. 7 adapter as the HΣ source ▸ Fig. 3 ranker ▸ Fig. 4 transformer)
// vs n and vs crash count, plus the LABELS gossip volume.
#include <memory>

#include "bench_util.h"
#include "fd/impl/alive_ranker.h"
#include "fd/impl/hsigma_sync.h"
#include "fd/reduce/hsigma_to_sigma.h"
#include "sim/stacked_process.h"
#include "sim/system.h"
#include "spec/fd_checkers.h"

namespace {

using namespace hds;

struct T2Out {
  bool ok = false;
  std::string detail;
  SimTime converge_time = -1;  // first time all correct outputs are within I(Correct) for good
  std::uint64_t broadcasts = 0;
};

T2Out run(std::size_t n, std::size_t crash_k, std::uint64_t seed) {
  SystemConfig cfg;
  for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
  cfg.timing = std::make_unique<BoundedTiming>(2);
  cfg.crashes.resize(n);
  for (std::size_t j = 0; j < crash_k; ++j) cfg.crashes[n - 1 - j] = CrashPlan{25 + 7 * static_cast<SimTime>(j)};
  cfg.seed = seed;
  System sys(std::move(cfg));
  std::vector<const Trajectory<Multiset<Id>>*> traces;
  for (ProcIndex i = 0; i < n; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    auto* src = stack->add(std::make_unique<HSigmaComponent>(3));
    auto* ranker = stack->add(std::make_unique<AliveRanker>(4));
    auto* red = stack->add(std::make_unique<HSigmaToSigma>(*src, *ranker));
    traces.push_back(&red->trace());
    sys.set_process(i, std::move(stack));
  }
  sys.start();
  const SimTime run_for = 1000 + 30 * static_cast<SimTime>(n);
  sys.run_until(run_for);
  const GroundTruth gt = GroundTruth::from(sys);
  auto res = check_sigma(gt, traces, run_for, 100);
  T2Out out;
  out.ok = res.ok;
  out.detail = res.detail;
  out.broadcasts = sys.net_stats().broadcasts;
  SimTime all = 0;
  for (ProcIndex i = 0; i < n; ++i) {
    if (!sys.is_correct(i)) continue;
    SimTime bad_until = 0;
    for (const auto& [t, v] : traces[i]->points()) {
      if (!v.is_subset_of(gt.correct_ids())) bad_until = t;
    }
    all = std::max(all, bad_until);
  }
  out.converge_time = all;
  return out;
}

void BM_Fig4_ConvergeVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  T2Out r;
  for (auto _ : state) r = run(n, n / 3, 1);
  hds::bench::require(state, r.ok, r.detail);
  state.counters["converge_time"] = static_cast<double>(r.converge_time);
  state.counters["broadcasts"] = static_cast<double>(r.broadcasts);
}
BENCHMARK(BM_Fig4_ConvergeVsN)->Arg(3)->Arg(5)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig4_ConvergeVsCrashes(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  T2Out r;
  for (auto _ : state) r = run(8, k, 2);
  hds::bench::require(state, r.ok, r.detail);
  state.counters["converge_time"] = static_cast<double>(r.converge_time);
}
BENCHMARK(BM_Fig4_ConvergeVsCrashes)->Arg(0)->Arg(2)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

HDS_BENCH_MAIN();
