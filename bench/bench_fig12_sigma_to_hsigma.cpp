// Figures 1-2 benchmark (Theorem 1): Σ → HΣ transformers.
//
// Series: time until a correct-only quorum appears in h_quora, with
// membership knowledge (Fig. 1) vs learned membership (Fig. 2); the
// communication cost difference (Fig. 1 sends nothing); and the label
// universe blow-up — the construction's 2^(n-1) labels made tangible.
#include <memory>

#include "bench_util.h"
#include "fd/oracles.h"
#include "fd/reduce/sigma_to_hsigma.h"
#include "sim/system.h"
#include "spec/fd_checkers.h"

namespace {

using namespace hds;

struct T1Out {
  bool ok = false;
  std::string detail;
  SimTime live_time = -1;  // first time every correct process holds a correct-only quorum
  std::uint64_t broadcasts = 0;
};

T1Out run(bool with_membership, std::size_t n, std::size_t crash_k, std::uint64_t seed) {
  SystemConfig cfg;
  for (std::size_t i = 0; i < n; ++i) cfg.ids.push_back(i + 1);
  cfg.timing = std::make_unique<AsyncTiming>(1, 5);
  cfg.crashes.resize(n);
  for (std::size_t j = 0; j < crash_k; ++j) cfg.crashes[n - 1 - j] = CrashPlan{20};
  cfg.seed = seed;
  System sys(std::move(cfg));
  OracleSigma sigma(GroundTruth::from(sys), [&sys] { return sys.now(); }, 100,
                    OracleSigma::Mode::kCoarse);
  std::set<Id> membership;
  for (ProcIndex i = 0; i < n; ++i) membership.insert(sys.id_of(i));
  std::vector<const Trajectory<HSigmaSnapshot>*> traces;
  for (ProcIndex i = 0; i < n; ++i) {
    if (with_membership) {
      auto red =
          std::make_unique<SigmaToHSigmaLocal>(sigma.handle(i), sys.id_of(i), membership);
      traces.push_back(&red->trace());
      sys.set_process(i, std::move(red));
    } else {
      auto red = std::make_unique<SigmaToHSigmaBcast>(sigma.handle(i));
      traces.push_back(&red->trace());
      sys.set_process(i, std::move(red));
    }
  }
  sys.start();
  sys.run_until(500);
  const GroundTruth gt = GroundTruth::from(sys);
  auto res = check_hsigma(gt, traces);
  T1Out out;
  out.ok = res.ok;
  out.detail = res.detail;
  out.broadcasts = sys.net_stats().broadcasts;
  SimTime all = -1;
  for (ProcIndex i = 0; i < n; ++i) {
    if (!sys.is_correct(i)) continue;
    SimTime mine = -1;
    for (const auto& [t, snap] : traces[i]->points()) {
      for (const auto& [x, m] : snap.quora) {
        (void)x;
        if (m.is_subset_of(gt.correct_ids())) {
          mine = t;
          break;
        }
      }
      if (mine >= 0) break;
    }
    if (mine < 0) return out;  // not live: live_time stays -1
    all = std::max(all, mine);
  }
  out.live_time = all;
  return out;
}

void BM_Fig1_WithMembership(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  T1Out r;
  for (auto _ : state) r = run(true, n, n / 3, 1);
  hds::bench::require(state, r.ok, r.detail);
  state.counters["live_time"] = static_cast<double>(r.live_time);
  state.counters["broadcasts"] = static_cast<double>(r.broadcasts);  // expect 0
}
BENCHMARK(BM_Fig1_WithMembership)->Arg(3)->Arg(6)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fig2_WithoutMembership(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  T1Out r;
  for (auto _ : state) r = run(false, n, n / 3, 1);
  hds::bench::require(state, r.ok, r.detail);
  state.counters["live_time"] = static_cast<double>(r.live_time);
  state.counters["broadcasts"] = static_cast<double>(r.broadcasts);  // IDENT traffic
}
BENCHMARK(BM_Fig2_WithoutMembership)->Arg(3)->Arg(6)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Theorem1_LabelUniverseBlowup(benchmark::State& state) {
  // Cost of materializing {s ⊆ I(Pi) : id ∈ s}: 2^(n-1) labels.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::set<Id> membership;
  for (Id i = 1; i <= n; ++i) membership.insert(i);
  std::size_t labels = 0;
  for (auto _ : state) {
    auto out = labels_of_membership(membership, 1);
    labels = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["labels"] = static_cast<double>(labels);
}
BENCHMARK(BM_Theorem1_LabelUniverseBlowup)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

HDS_BENCH_MAIN();
