// Figure 5 benchmark: the relation diagram between failure detector
// classes. Every communication-free arrow we implement is exercised as a
// query-path microbenchmark (the cost a consumer pays per detector read
// through the adapter), with a correctness counter asserting the arrow's
// target property held in a reference run.
//
// Arrows measured: AP→◇HP̄ (Lemma 2), AP→HΣ (Lemma 3), AΣ→HΣ
// (Theorem 3), ◇HP̄→HΩ (Observation 1). The communication arrows
// (Theorems 1-2) have their own binaries (bench_fig12, bench_fig4).
#include "bench_util.h"
#include "fd/oracles.h"
#include "fd/reduce/ap_to_hsigma.h"
#include "fd/reduce/ap_to_ohp.h"
#include "fd/reduce/asigma_to_hsigma.h"
#include "fd/reduce/ohp_to_homega.h"

namespace {

using namespace hds;

struct Fixture {
  GroundTruth gt;
  SimTime now = 1000;  // past stabilization

  Fixture(std::size_t n, std::size_t correct) {
    gt.ids.assign(n, kBottomId);
    gt.correct.assign(n, false);
    for (std::size_t i = 0; i < correct; ++i) gt.correct[i] = true;
  }
  ClockFn clock() {
    return [this] { return now; };
  }
};

void BM_Lemma2_ApToOhpQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f(n, n - n / 3);
  OracleAP ap(f.gt, f.clock(), 0);
  ApToOhp red(ap.handle(0));
  std::size_t size = 0;
  for (auto _ : state) {
    auto m = red.h_trusted();
    size = m.size();
    benchmark::DoNotOptimize(m);
  }
  state.counters["trusted_size"] = static_cast<double>(size);
  hds::bench::require(state, size == f.gt.correct_count(), "Lemma 2 output size");
}
BENCHMARK(BM_Lemma2_ApToOhpQuery)->Arg(8)->Arg(64)->Arg(512);

void BM_Lemma3_ApToHSigmaQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f(n, n - n / 3);
  OracleAP ap(f.gt, f.clock(), 0);
  ApToHSigma red(ap.handle(0));
  std::size_t quora = 0;
  for (auto _ : state) {
    auto s = red.snapshot();
    quora = s.quora.size();
    benchmark::DoNotOptimize(s);
  }
  state.counters["quora"] = static_cast<double>(quora);
}
BENCHMARK(BM_Lemma3_ApToHSigmaQuery)->Arg(8)->Arg(64)->Arg(512);

void BM_Theorem3_ASigmaToHSigmaQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f(n, n - n / 3);
  OracleASigma src(f.gt, f.clock(), 0);
  ASigmaToHSigma red(src.handle(0));
  std::size_t quora = 0;
  for (auto _ : state) {
    auto s = red.snapshot();
    quora = s.quora.size();
    benchmark::DoNotOptimize(s);
  }
  state.counters["quora"] = static_cast<double>(quora);
}
BENCHMARK(BM_Theorem3_ASigmaToHSigmaQuery)->Arg(8)->Arg(64)->Arg(512);

void BM_Observation1_OhpToHOmegaQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // Homonymous ground truth with many distinct ids: min extraction scans
  // the multiset head only, but building the multiset dominates.
  Fixture f(n, n);
  for (std::size_t i = 0; i < n; ++i) f.gt.ids[i] = static_cast<Id>(i % 7 + 1);
  OracleOHP src(f.gt, f.clock(), 0);
  OhpToHOmega red(src.handle(0), f.gt.ids[0]);
  HOmegaOut out;
  for (auto _ : state) {
    out = red.h_omega();
    benchmark::DoNotOptimize(out);
  }
  state.counters["leader"] = static_cast<double>(out.leader);
  state.counters["multiplicity"] = static_cast<double>(out.multiplicity);
}
BENCHMARK(BM_Observation1_OhpToHOmegaQuery)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

HDS_BENCH_MAIN();
