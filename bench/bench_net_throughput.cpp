// UDP substrate throughput anchor: what does a real socket hop cost, and
// what does send batching buy back?
//
// Two groups:
//   - BM_Codec_RoundTrip prices the serialization layer alone
//     (encode_frame + decode_frame, no sockets) for a small body (ALIVE)
//     and the largest one (PH1Q with a label multiset).
//   - BM_Net_Burst drives two NetSystem nodes over loopback UDP: the
//     sender bursts HB broadcasts, the bench waits until the receiver has
//     delivered them all. Arg 0 = batching off (one datagram per copy),
//     arg 1 = batching on (frames coalesced per destination).
//
// Reported counters: bytes_per_msg (datagram payload bytes per copy — the
// batching win shows up here as amortized envelope overhead) and
// frames_per_pkt (mean batch occupancy). With --metrics-json=PATH the
// sender's registry snapshot lands in PATH, including the
// udp_batch_frames / udp_batch_bytes histograms and the udp_bytes_*
// counter series EXPERIMENTS.md cites.
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/label.h"
#include "common/multiset.h"
#include "consensus/messages.h"
#include "fd/impl/alive_ranker.h"
#include "fd/impl/homega_heartbeat.h"
#include "net/codec.h"
#include "net/net_system.h"

namespace {

using namespace hds;
using namespace std::chrono_literals;

Message small_body() { return make_message(AliveRanker::kMsgType, AliveMsg{42}); }

Message large_body() {
  Multiset<Id> a;
  a.insert(1);
  a.insert(1);
  a.insert(2);
  Multiset<Id> b;
  b.insert(3);
  b.insert(4);
  return make_message(kPh1QType,
                      Ph1QMsg{7, 12, 6, {Label::of_multiset(a), Label::of_multiset(b)}, 103, 1});
}

// Arg: 0 = ALIVE (smallest registered body), 1 = PH1Q (largest).
void BM_Codec_RoundTrip(benchmark::State& state) {
  const Message m = state.range(0) == 0 ? small_body() : large_body();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto frame = net::encode_frame(net::builtin_codecs(), m, 2, 7);
    const Message back = net::decode_frame(net::builtin_codecs(), frame.data(), frame.size());
    benchmark::DoNotOptimize(back.type.data());
    bytes += frame.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Codec_RoundTrip)->Arg(0)->Arg(1);

// Broadcasts on demand from the node thread (send_burst runs via query, so
// it may use the Env captured at on_start); counts deliveries.
struct BurstProcess final : Process {
  void on_start(Env& env) override { env_ = &env; }
  void on_message(Env&, const Message& m) override {
    if (m.type == HOmegaHeartbeat::kMsgType) ++received;
  }
  void send_burst(std::size_t k) {
    for (std::size_t i = 0; i < k; ++i) {
      env_->broadcast(make_message(HOmegaHeartbeat::kMsgType, HeartbeatMsg{1, ++seq}));
    }
  }
  Env* env_ = nullptr;
  std::int64_t seq = 0;
  std::int64_t received = 0;
};

// Args: {batching off/on, ARQ reliability off/on}. The off/off and on/off
// rows price the plain substrate; on/on prices the reliable-delivery layer
// (sequence wrap + ack processing + retransmit timers) on a loss-free link,
// i.e. its pure overhead. The CI gate holds BM_Net_Burst/1/0 within 5% of
// the committed baseline: the reliability seam must cost nothing when off.
void BM_Net_Burst(benchmark::State& state) {
  constexpr std::size_t kBurst = 256;
  std::vector<net::NetPeer> peers(2);
  peers[0].id = 1;
  peers[1].id = 2;
  std::vector<std::unique_ptr<net::NetSystem>> sys;
  for (std::size_t i = 0; i < 2; ++i) {
    net::NetConfig cfg;
    cfg.self = i;
    cfg.peers = peers;
    cfg.seed = 1 + i;
    cfg.batching = state.range(0) == 1;
    cfg.reliability.enabled = state.range(1) == 1;
    if (i == 0) cfg.metrics = hds::bench::metrics_sink();
    sys.push_back(std::make_unique<net::NetSystem>(std::move(cfg)));
  }
  sys[0]->set_peer_endpoint(1, net::UdpEndpoint{"127.0.0.1", sys[1]->local_port()});
  sys[1]->set_peer_endpoint(0, net::UdpEndpoint{"127.0.0.1", sys[0]->local_port()});
  std::vector<BurstProcess*> procs;
  for (auto& s : sys) {
    auto p = std::make_unique<BurstProcess>();
    procs.push_back(p.get());
    s->set_process(std::move(p));
  }
  for (auto& s : sys) {
    hds::bench::require(state, s->await_peers(5s), "peer barrier");
    if (state.error_occurred()) return;
  }
  for (auto& s : sys) s->start();

  std::int64_t sent = 0;
  for (auto _ : state) {
    sys[0]->query([&](Process&) {
      procs[0]->send_burst(kBurst);
      return 0;
    });
    sent += static_cast<std::int64_t>(kBurst);
    // UDP has no retransmission: a dropped burst (kernel buffer overflow)
    // would hang the wait, so fail loudly instead of reporting a lie.
    const bool ok = sys[1]->wait_for(
        [&] { return sys[1]->query([&](Process&) { return procs[1]->received; }) >= sent; }, 10s,
        1ms);
    hds::bench::require(state, ok, "burst fully delivered");
    if (state.error_occurred()) break;
  }

  const net::NetNetworkStats st = sys[0]->net_stats();
  for (auto& s : sys) s->stop();
  state.SetItemsProcessed(sent);
  if (st.copies_sent > 0) {
    state.counters["bytes_per_msg"] =
        static_cast<double>(st.bytes_sent) / static_cast<double>(st.copies_sent);
  }
  if (st.packets_sent > 0) {
    state.counters["frames_per_pkt"] =
        static_cast<double>(st.copies_sent) / static_cast<double>(st.packets_sent);
  }
  state.counters["decode_errors"] = static_cast<double>(st.decode_errors);
  if (state.range(1) == 1) {
    const net::RelStats rs = sys[0]->rel_stats();
    state.counters["rel_retransmits"] = static_cast<double>(rs.retransmits);
    state.counters["rel_acks_sent"] = static_cast<double>(rs.acks_sent);
    state.counters["rel_dup_frames"] = static_cast<double>(rs.dup_frames);
  }
}
BENCHMARK(BM_Net_Burst)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

HDS_BENCH_MAIN()
