// Synchronous consensus baselines from the paper's related-work discussion
// (Section 1): the t+1-round bound for crash consensus versus the ~2t+1
// rounds paid when only the anonymous detector AP is available [Bonnet &
// Raynal, "The price of anonymity"].
//
//  - FloodMinSync: classic FloodMin. Every step broadcast the current
//    minimum estimate; decide after exactly t+1 steps (t known). Uses no
//    identifiers at all, so it runs unchanged across the whole homonymy
//    spectrum. Tolerates crash-during-broadcast: t+1 steps contain a clean
//    step, after which every alive estimate is equal.
//
//  - ApStabilitySync: t is NOT known. Estimates flood as above while the
//    process counts alive senders per step (the AP construction); it
//    decides once the count is stable across two consecutive steps — no
//    crash was observed, so the flooding converged — and relays a DECIDE
//    for one further step. One crash per step keeps the count strictly
//    decreasing for t steps, so the adversary forces t+2 steps where
//    FloodMin pays a fixed t+1 — and, measured the other way, failure-free
//    runs decide in 2 steps where FloodMin still pays t+1.
//
//    Caveat (documented, tested): with crash-during-broadcast partial
//    deliveries the early decision is only agreement-among-correct (a
//    process may decide on a count that looks stable to it alone, then
//    crash). Under full-delivery crashes it is uniform. This asymmetry is
//    the qualitative content of the "price of anonymity" discussion: with
//    counting instead of identities, early stopping costs either rounds or
//    uniformity.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "sim/message.h"
#include "sim/sync_system.h"
#include "spec/consensus_checkers.h"

namespace hds {

struct FloodEstMsg {
  Value est;
};

struct FloodDecideMsg {
  Value v;
};

inline constexpr const char* kFloodEstType = "FLOOD_EST";
inline constexpr const char* kFloodDecideType = "FLOOD_DEC";

class FloodMinSync final : public SyncProcess {
 public:
  FloodMinSync(Value proposal, std::size_t t) : est_(proposal), t_(t) {}

  std::vector<Message> step_send(std::size_t step) override;
  void step_recv(std::size_t step, const std::vector<Message>& delivered) override;

  [[nodiscard]] const DecisionRecord& decision() const { return decision_; }

 private:
  Value est_;
  std::size_t t_;
  DecisionRecord decision_;
};

class ApStabilitySync final : public SyncProcess {
 public:
  explicit ApStabilitySync(Value proposal) : est_(proposal) {}

  std::vector<Message> step_send(std::size_t step) override;
  void step_recv(std::size_t step, const std::vector<Message>& delivered) override;

  [[nodiscard]] const DecisionRecord& decision() const { return decision_; }
  // Steps the process actually ran before deciding (the measured "rounds").
  [[nodiscard]] std::size_t steps_to_decide() const { return steps_to_decide_; }

 private:
  Value est_;
  std::optional<std::size_t> last_count_;
  std::optional<Value> pending_decision_;  // decided; still relaying DECIDE
  bool relayed_ = false;
  DecisionRecord decision_;
  std::size_t steps_to_decide_ = 0;
};

}  // namespace hds
