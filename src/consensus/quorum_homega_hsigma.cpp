#include "consensus/quorum_homega_hsigma.h"

#include <algorithm>

namespace hds {

QuorumConsensus::QuorumConsensus(QuorumConsensusConfig cfg, const HOmegaHandle& fd1,
                                 const HSigmaHandle& fd2)
    : cfg_(cfg), fd1_(&fd1), fd2_(&fd2) {
  est1_ = cfg_.proposal;
}

QuorumConsensus::QuorumConsensus(QuorumConsensusConfig cfg, const AOmegaHandle& aomega,
                                 const HSigmaHandle& fd2)
    : cfg_(cfg), aomega_(&aomega), fd2_(&fd2) {
  est1_ = cfg_.proposal;
}

const char* QuorumConsensus::phase_name(int phase) {
  switch (static_cast<Phase>(phase)) {
    case Phase::kCoord: return "coord";
    case Phase::kPh0: return "ph0";
    case Phase::kPh1: return "ph1";
    case Phase::kPh2: return "ph2";
    case Phase::kDone: return "done";
  }
  return "?";
}

void QuorumConsensus::attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels) {
  if (reg == nullptr) {
    m_rounds_ = nullptr;
    m_sub_rounds_ = nullptr;
    m_decide_at_ = nullptr;
    m_phase_latency_.fill(nullptr);
    return;
  }
  m_rounds_ = &reg->counter("consensus_rounds_total", labels);
  m_sub_rounds_ = &reg->counter("consensus_sub_rounds_total", labels);
  m_decide_at_ = &reg->gauge("consensus_decide_at", labels);
  for (int p = 0; p < 4; ++p) {
    obs::Labels l = labels;
    l.emplace("phase", phase_name(p));
    m_phase_latency_[static_cast<std::size_t>(p)] =
        &reg->histogram("consensus_phase_latency", obs::time_buckets(), l);
  }
}

// Records the phase transition and the latency of the phase being left.
void QuorumConsensus::set_phase(Env& env, Phase next) {
  const SimTime now = env.local_now();
  if (phase_timing_started_ && phase_ != Phase::kDone) {
    obs::observe(m_phase_latency_[static_cast<std::size_t>(phase_)], now - phase_entered_at_);
  }
  phase_timing_started_ = true;
  phase_ = next;
  phase_entered_at_ = now;
  phase_trace_.record(now, static_cast<int>(next));
}

void QuorumConsensus::bump_sub_round() {
  ++sr_;
  obs::inc(m_sub_rounds_);
}

void QuorumConsensus::on_start(Env& env) {
  enter_round(env, 1);
  env.set_timer(cfg_.guard_poll);
  advance(env);
}

void QuorumConsensus::enter_round(Env& env, Round r) {
  r_ = r;
  est2_.reset();
  set_phase(env, Phase::kCoord);
  obs::inc(m_rounds_);
  env.broadcast(make_message(kCoordType, CoordMsg{env.self_id(), r_, est1_, cfg_.instance}));  // line 9
}

void QuorumConsensus::on_timer(Env& env, TimerId) {
  if (phase_ == Phase::kDone) return;
  env.set_timer(cfg_.guard_poll);
  advance(env);
}

void QuorumConsensus::on_message(Env& env, const Message& m) {
  if (phase_ == Phase::kDone) return;
  if (m.type == kCoordType) {
    if (const auto* b = m.as<CoordMsg>();
        b != nullptr && b->instance == cfg_.instance && b->r >= r_) {
      bufs_[b->r].coord.push_back(*b);
    }
  } else if (m.type == kPh0Type) {
    if (const auto* b = m.as<Ph0Msg>();
        b != nullptr && b->instance == cfg_.instance && b->r >= r_) {
      bufs_[b->r].ph0.push_back(b->est);
    }
  } else if (m.type == kPh1QType) {
    if (const auto* b = m.as<Ph1QMsg>();
        b != nullptr && b->instance == cfg_.instance && b->r >= r_) {
      bufs_[b->r].ph1.push_back(*b);
      if (b->r == r_) max_sr_seen_ = std::max(max_sr_seen_, b->sr);
    }
  } else if (m.type == kPh2QType) {
    if (const auto* b = m.as<Ph2QMsg>();
        b != nullptr && b->instance == cfg_.instance && b->r >= r_) {
      bufs_[b->r].ph2.push_back(*b);
      if (b->r == r_) max_sr_seen_ = std::max(max_sr_seen_, b->sr);
    }
  } else if (m.type == kDecideType) {
    if (const auto* b = m.as<DecideMsg>(); b != nullptr && b->instance == cfg_.instance) {
      decide(env, b->v);
    }
    return;
  } else {
    return;  // other protocols' traffic
  }
  advance(env);
}

void QuorumConsensus::decide(Env& env, Value v) {
  env.broadcast(make_message(kDecideType, DecideMsg{v, cfg_.instance}));
  decision_ = DecisionRecord{true, env.local_now(), v, r_};
  set_phase(env, Phase::kDone);
  obs::set(m_decide_at_, env.local_now());
  bufs_.clear();
}

void QuorumConsensus::advance(Env& env) {
  while (phase_ != Phase::kDone && try_advance_once(env)) {
  }
}

void QuorumConsensus::enter_ph1(Env& env) {
  // Lines 20-21.
  sr_ = 1;
  current_labels_ = fd2_->snapshot().labels;
  set_phase(env, Phase::kPh1);
  env.broadcast(make_message(
      kPh1QType, Ph1QMsg{env.self_id(), r_, sr_, current_labels_, est1_, cfg_.instance}));
}

void QuorumConsensus::enter_ph2(Env& env) {
  // Lines 40-41.
  sr_ = 1;
  current_labels_ = fd2_->snapshot().labels;
  set_phase(env, Phase::kPh2);
  env.broadcast(make_message(
      kPh2QType, Ph2QMsg{env.self_id(), r_, sr_, current_labels_, est2_, cfg_.instance}));
}

template <typename M>
QuorumConsensus::QuorumScan<M> QuorumConsensus::scan_quorum(const std::vector<M>& msgs,
                                                            const HSigmaSnapshot& snap) const {
  // Group this round's messages by sub-round.
  std::map<std::int64_t, std::vector<const M*>> by_sr;
  for (const M& m : msgs) {
    if (m.r == r_) by_sr[m.sr].push_back(&m);
  }
  QuorumScan<M> out;
  for (const auto& [x, mset] : snap.quora) {
    if (mset.empty()) continue;  // a safe HΣ detector never emits an empty quorum
    for (const auto& [sr, group] : by_sr) {
      (void)sr;
      std::map<Id, std::vector<const M*>> by_id;
      for (const M* m : group) {
        if (m->labels.contains(x)) by_id[m->id].push_back(m);
      }
      bool ok = true;
      for (const auto& [i, c] : mset.counts()) {
        auto it = by_id.find(i);
        if (it == by_id.end() || it->second.size() < c) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      // M: the first mult(i) matching messages per identifier — any exact
      // realization satisfies the pseudocode's existential condition.
      for (const auto& [i, c] : mset.counts()) {
        const auto& cand = by_id[i];
        out.quorum.insert(out.quorum.end(), cand.begin(), cand.begin() + static_cast<long>(c));
      }
      out.found = true;
      return out;
    }
  }
  return out;
}

bool QuorumConsensus::try_advance_once(Env& env) {
  RoundBuf& buf = bufs_[r_];
  const Id self = env.self_id();

  switch (phase_) {
    case Phase::kCoord: {
      if (aomega_ != nullptr) {
        // AAS[AΩ, HΣ] variant: no leaders' coordination.
        set_phase(env, Phase::kPh0);
        return true;
      }
      const HOmegaOut fd = fd1_->h_omega();
      // Lines 10-11.
      std::size_t own = 0;
      for (const CoordMsg& c : buf.coord) {
        if (c.id == self && c.r == r_) ++own;
      }
      if (fd.leader == self && own < fd.multiplicity) return false;
      // Lines 12-14.
      bool any = false;
      Value min_est = est1_;
      for (const CoordMsg& c : buf.coord) {
        if (c.id != self || c.r != r_) continue;
        min_est = any ? std::min(min_est, c.est) : c.est;
        any = true;
      }
      if (any) est1_ = min_est;
      set_phase(env, Phase::kPh0);
      return true;
    }

    case Phase::kPh0: {
      // Lines 16-18 (anonymous variant: a_leader replaces h_leader = id(p)).
      const bool is_leader =
          aomega_ != nullptr ? aomega_->a_leader() : fd1_->h_omega().leader == self;
      if (!is_leader && buf.ph0.empty()) return false;
      if (!buf.ph0.empty()) est1_ = buf.ph0.front();
      env.broadcast(make_message(kPh0Type, Ph0Msg{r_, est1_, cfg_.instance}));
      enter_ph1(env);
      return true;
    }

    case Phase::kPh1: {
      // Lines 23-24: any PH2 of this round short-circuits the phase.
      if (!buf.ph2.empty()) {
        est2_ = buf.ph2.front().est2;
        enter_ph2(env);
        return true;
      }
      const HSigmaSnapshot snap = fd2_->snapshot();
      // Lines 25-31: quorum detection.
      auto scan = scan_quorum(buf.ph1, snap);
      if (scan.found) {
        bool same = true;
        for (const Ph1QMsg* m : scan.quorum) {
          if (m->est != scan.quorum.front()->est) same = false;
        }
        est2_ = same ? MaybeValue{scan.quorum.front()->est} : MaybeValue{};
        enter_ph2(env);
        return true;
      }
      // Lines 32-36: label change or higher sub-round observed.
      bool higher = false;
      for (const Ph1QMsg& m : buf.ph1) {
        if (m.r == r_ && m.sr > sr_) higher = true;
      }
      if (current_labels_ != snap.labels || higher) {
        bump_sub_round();
        current_labels_ = snap.labels;
        env.broadcast(make_message(
            kPh1QType, Ph1QMsg{self, r_, sr_, current_labels_, est1_, cfg_.instance}));
        return true;
      }
      return false;
    }

    case Phase::kPh2: {
      // Lines 43-44: a COORD of the next round releases the phase.
      auto next_it = bufs_.find(r_ + 1);
      if (next_it != bufs_.end() && !next_it->second.coord.empty()) {
        bufs_.erase(bufs_.begin(), bufs_.upper_bound(r_));
        enter_round(env, r_ + 1);
        return true;
      }
      const HSigmaSnapshot snap = fd2_->snapshot();
      // Lines 45-54.
      auto scan = scan_quorum(buf.ph2, snap);
      if (scan.found) {
        std::set<MaybeValue> rec;
        for (const Ph2QMsg* m : scan.quorum) rec.insert(m->est2);
        MaybeValue non_bottom;
        for (const MaybeValue& e : rec) {
          if (e) non_bottom = non_bottom ? std::min(*non_bottom, *e) : *e;
        }
        if (rec.size() == 1 && non_bottom) {  // lines 50-51
          decide(env, *non_bottom);
          return false;
        }
        if (non_bottom) est1_ = *non_bottom;  // line 52
        bufs_.erase(bufs_.begin(), bufs_.upper_bound(r_));
        enter_round(env, r_ + 1);
        return true;
      }
      // Lines 55-59.
      bool higher = false;
      for (const Ph2QMsg& m : buf.ph2) {
        if (m.r == r_ && m.sr > sr_) higher = true;
      }
      if (current_labels_ != snap.labels || higher) {
        bump_sub_round();
        current_labels_ = snap.labels;
        env.broadcast(make_message(
            kPh2QType, Ph2QMsg{self, r_, sr_, current_labels_, est2_, cfg_.instance}));
        return true;
      }
      return false;
    }

    case Phase::kDone:
      return false;
  }
  return false;
}

}  // namespace hds
