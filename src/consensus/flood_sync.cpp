#include "consensus/flood_sync.h"

#include <algorithm>

namespace hds {

std::vector<Message> FloodMinSync::step_send(std::size_t step) {
  if (decision_.decided || step > t_) return {};
  return {make_message(kFloodEstType, FloodEstMsg{est_})};
}

void FloodMinSync::step_recv(std::size_t step, const std::vector<Message>& delivered) {
  if (decision_.decided) return;
  for (const Message& m : delivered) {
    if (const auto* b = m.as<FloodEstMsg>()) est_ = std::min(est_, b->est);
  }
  // Steps 0..t flood; at the end of step t, t+1 exchanges have happened.
  if (step >= t_) {
    decision_ = DecisionRecord{true, static_cast<SimTime>(step), est_,
                               static_cast<Round>(step + 1)};
  }
}

std::vector<Message> ApStabilitySync::step_send(std::size_t) {
  if (decision_.decided && relayed_) return {};
  std::vector<Message> out;
  if (pending_decision_) {
    // One relay step: convey the decision before going quiet.
    out.push_back(make_message(kFloodDecideType, FloodDecideMsg{*pending_decision_}));
    relayed_ = true;
    return out;
  }
  out.push_back(make_message(kFloodEstType, FloodEstMsg{est_}));
  return out;
}

void ApStabilitySync::step_recv(std::size_t step, const std::vector<Message>& delivered) {
  if (decision_.decided) return;
  std::size_t count = 0;
  for (const Message& m : delivered) {
    if (const auto* b = m.as<FloodEstMsg>()) {
      est_ = std::min(est_, b->est);
      ++count;
    } else if (const auto* d = m.as<FloodDecideMsg>()) {
      // Adopt a conveyed decision immediately (and relay it next step).
      est_ = d->v;
      pending_decision_ = d->v;
    }
  }
  if (!pending_decision_) {
    // Early-stopping rule: two consecutive steps with the same alive-sender
    // count mean no crash interfered — the flood converged.
    if (last_count_ && *last_count_ == count) pending_decision_ = est_;
    last_count_ = count;
  }
  if (pending_decision_) {
    decision_ = DecisionRecord{true, static_cast<SimTime>(step), *pending_decision_,
                               static_cast<Round>(step + 1)};
    steps_to_decide_ = step + 1;
  }
}

}  // namespace hds
