// Figure 8: consensus in HAS[t < n/2, HΩ] — homonymous asynchronous
// system, reliable links, a majority of correct processes, enriched with an
// HΩ failure detector. n and t are known; membership is not.
//
// The paper's blocking pseudocode is realized as an event-driven state
// machine: every `wait until` becomes a guard re-evaluated after each
// message delivery and on a periodic poll timer (the poll covers guard
// flips caused purely by the failure detector's output changing, which in
// the pseudocode would unblock a wait with no message arriving).
//
// Round structure (per the paper):
//   Leaders' Coordination Phase — processes that consider themselves
//     leaders (h_leader = own id) wait for COORD from h_multiplicity
//     homonyms and adopt the minimum estimate, so that all (eventual)
//     leaders push the same value;
//   Phase 0 — leaders broadcast the estimate, non-leaders adopt it;
//   Phase 1 — wait for n-t PH1; a value seen from a majority becomes est2,
//     otherwise est2 = bottom;
//   Phase 2 — wait for n-t PH2; unanimous non-bottom decides (via reliable
//     DECIDE rebroadcast), a mixed set adopts the value, all-bottom skips.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <vector>

#include "common/trajectory.h"
#include "consensus/messages.h"
#include "fd/interfaces.h"
#include "obs/metrics.h"
#include "sim/process.h"
#include "spec/consensus_checkers.h"

namespace hds {

struct MajorityConsensusConfig {
  std::size_t n = 0;      // known system size
  std::size_t t = 0;      // known bound on faulty processes, t < n/2
  Value proposal = 0;     // v_p
  SimTime guard_poll = 4; // period of the FD re-evaluation timer

  // The paper's footnote 5: knowledge of n can be replaced by a parameter
  // alpha with alpha > n/2 such that at least alpha processes are correct
  // in every execution. When set, both phase thresholds become alpha (wait
  // for alpha messages; a value supported by alpha senders wins) and n/t
  // are ignored — the caller is responsible for alpha > n/2.
  std::optional<std::size_t> alpha;

  // Instance tag: messages of other instances are ignored, letting several
  // independent consensus slots share one node (see messages.h).
  std::int64_t instance = 0;

  // Ablation switch (not in the paper): drop the Leaders' Coordination
  // Phase. With homonymous leaders this removes the mechanism that makes
  // leaders converge on one estimate — used by the ablation benchmark to
  // show why the phase exists.
  bool skip_coordination_phase = false;

  // Task T2 under crash-RESTART (beyond the paper's crash-stop model): when
  // > 0, a decided process keeps re-broadcasting DECIDE at this period, so
  // a supervised respawn that missed the decision instant still terminates
  // once the reliable layer delivers one rebroadcast. 0 (the default)
  // re-broadcasts only at the decide itself, keeping the sim's
  // deterministic schedules byte-identical to before this knob existed.
  SimTime redecide_interval_ms = 0;
};

class MajorityHOmegaConsensus final : public Process {
 public:
  MajorityHOmegaConsensus(MajorityConsensusConfig cfg, const HOmegaHandle& fd);

  [[nodiscard]] const DecisionRecord& decision() const { return decision_; }
  [[nodiscard]] Round current_round() const { return r_; }
  [[nodiscard]] bool done() const { return phase_ == Phase::kDone; }

  // Phase transitions as a time-indexed trace; values index phase_name().
  [[nodiscard]] const Trajectory<int>& phase_trace() const { return phase_trace_; }
  static const char* phase_name(int phase);

  // Consensus instruments: rounds started, per-phase latency (one histogram
  // per phase, under phase=<name>), and the decide instant. Call before the
  // system starts; null detaches.
  void attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels = {});

  void on_start(Env& env) override;
  void on_message(Env& env, const Message& m) override;
  void on_timer(Env& env, TimerId id) override;

 private:
  enum class Phase { kCoord, kPh0, kPh1, kPh2, kDone };

  struct RoundBuf {
    std::vector<CoordMsg> coord;     // all COORD(_, r, _) received
    std::vector<Value> ph0;          // estimates from PH0(r, v)
    std::vector<Value> ph1;          // estimates from PH1(r, v), one per sender
    std::vector<MaybeValue> ph2;     // estimates from PH2(r, e2)
  };

  void enter_round(Env& env, Round r);
  void advance(Env& env);            // run guards until no transition fires
  bool try_advance_once(Env& env);
  void decide(Env& env, Value v);
  void set_phase(Env& env, Phase next);
  [[nodiscard]] std::size_t wait_threshold() const;
  [[nodiscard]] bool is_quorum(std::size_t count) const;

  MajorityConsensusConfig cfg_;
  const HOmegaHandle* fd_;

  Phase phase_ = Phase::kCoord;
  Round r_ = 0;
  Value est1_ = 0;
  MaybeValue est2_;
  std::map<Round, RoundBuf> bufs_;   // future rounds buffer here too
  DecisionRecord decision_;

  TimerId redecide_timer_ = 0;  // periodic DECIDE rebroadcast, armed at decide()

  Trajectory<int> phase_trace_;
  SimTime phase_entered_at_ = 0;
  bool phase_timing_started_ = false;
  obs::Counter* m_rounds_ = nullptr;
  obs::Gauge* m_decide_at_ = nullptr;
  std::array<obs::Histogram*, 4> m_phase_latency_{};  // coord, ph0, ph1, ph2
};

}  // namespace hds
