// Figure 9: consensus in HAS[HΩ, HΣ] — homonymous asynchronous system,
// reliable links, enriched with HΩ and HΣ. Works for ANY number of crash
// failures; neither n nor t nor the membership is known.
//
// Rounds have the same Leaders' Coordination Phase and Phase 0 as Fig. 8.
// Phases 1 and 2 replace the counted waits by HΣ quorums: a process
// broadcasts (id, r, sr, current_labels, est) and exits the phase once, for
// some pair (x, mset) of its h_quora and some sub-round sr', it holds a set
// M of messages all carrying x in their label sets whose sender-identity
// multiset is exactly mset. When the process's own h_labels changes, or a
// higher sub-round is observed, it bumps sr and rebroadcasts with the fresh
// labels (sub-rounds let quorums form after detector outputs settle).
// Phase 1 may be short-circuited by any PH2 of the round (adopting its
// estimate); Phase 2 by any COORD of the next round.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/trajectory.h"
#include "consensus/messages.h"
#include "fd/interfaces.h"
#include "obs/metrics.h"
#include "sim/process.h"
#include "spec/consensus_checkers.h"

namespace hds {

struct QuorumConsensusConfig {
  Value proposal = 0;
  SimTime guard_poll = 4;  // FD re-evaluation period
  // Instance tag: messages of other instances are ignored, letting several
  // independent consensus slots share one node (see messages.h).
  std::int64_t instance = 0;
};

class QuorumConsensus final : public Process {
 public:
  QuorumConsensus(QuorumConsensusConfig cfg, const HOmegaHandle& fd1, const HSigmaHandle& fd2);

  // The paper's closing remark of Section 5.3: the same algorithm solves
  // consensus in AAS[AΩ, HΣ] by dropping the Leaders' Coordination wait and
  // letting Phase 0 test D3.a_leader instead of h_leader = id(p). The COORD
  // broadcast is kept: Phase 2 uses it as the next-round signal.
  QuorumConsensus(QuorumConsensusConfig cfg, const AOmegaHandle& aomega,
                  const HSigmaHandle& fd2);

  [[nodiscard]] const DecisionRecord& decision() const { return decision_; }
  [[nodiscard]] Round current_round() const { return r_; }
  [[nodiscard]] std::int64_t current_sub_round() const { return sr_; }
  [[nodiscard]] std::int64_t max_sub_round_seen() const { return max_sr_seen_; }
  [[nodiscard]] bool done() const { return phase_ == Phase::kDone; }

  // Phase transitions as a time-indexed trace; values index phase_name().
  [[nodiscard]] const Trajectory<int>& phase_trace() const { return phase_trace_; }
  static const char* phase_name(int phase);

  // Consensus instruments: rounds started, sub-round bumps, per-phase
  // latency (under phase=<name>), and the decide instant. Call before the
  // system starts; null detaches.
  void attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels = {});

  void on_start(Env& env) override;
  void on_message(Env& env, const Message& m) override;
  void on_timer(Env& env, TimerId id) override;

 private:
  enum class Phase { kCoord, kPh0, kPh1, kPh2, kDone };

  template <typename M>
  struct QuorumScan {
    std::vector<const M*> quorum;  // the chosen message set M
    bool found = false;
  };

  struct RoundBuf {
    std::vector<CoordMsg> coord;
    std::vector<Value> ph0;
    std::vector<Ph1QMsg> ph1;
    std::vector<Ph2QMsg> ph2;
  };

  void enter_round(Env& env, Round r);
  void advance(Env& env);
  bool try_advance_once(Env& env);
  void decide(Env& env, Value v);
  void enter_ph1(Env& env);
  void enter_ph2(Env& env);
  void set_phase(Env& env, Phase next);
  void bump_sub_round();

  // Lines 25-28 / 45-48: find (x, mset) in h_quora and a sub-round sr such
  // that the messages of round r_ at sr carrying x realize mset exactly.
  template <typename M>
  QuorumScan<M> scan_quorum(const std::vector<M>& msgs, const HSigmaSnapshot& snap) const;

  QuorumConsensusConfig cfg_;
  const HOmegaHandle* fd1_ = nullptr;    // homonymous mode
  const AOmegaHandle* aomega_ = nullptr; // anonymous mode (AAS[AΩ, HΣ])
  const HSigmaHandle* fd2_;

  Phase phase_ = Phase::kCoord;
  Round r_ = 0;
  std::int64_t sr_ = 1;
  std::int64_t max_sr_seen_ = 1;
  std::set<Label> current_labels_;
  Value est1_ = 0;
  MaybeValue est2_;
  std::map<Round, RoundBuf> bufs_;
  DecisionRecord decision_;

  Trajectory<int> phase_trace_;
  SimTime phase_entered_at_ = 0;
  bool phase_timing_started_ = false;
  obs::Counter* m_rounds_ = nullptr;
  obs::Counter* m_sub_rounds_ = nullptr;
  obs::Gauge* m_decide_at_ = nullptr;
  std::array<obs::Histogram*, 4> m_phase_latency_{};  // coord, ph0, ph1, ph2
};

}  // namespace hds
