#include "consensus/messages.h"

// Message bodies are plain aggregates; this translation unit exists to give
// the header a home in the library target.
