// Message bodies of the two consensus algorithms (Figs. 8 and 9). Exactly
// the fields the pseudocode carries: in particular PH0/PH1/PH2 of Fig. 8
// carry *no* sender identity — correctness must not depend on telling
// homonymous senders apart.
//
// Each body additionally carries an `instance` tag (default 0) so several
// independent consensus instances — e.g. consecutive slots of a replicated
// log — can share one node and one network without cross-talk. The tag is
// orthogonal to the algorithms: a single-instance deployment never sees it.
#pragma once

#include <set>

#include "common/label.h"
#include "common/types.h"

namespace hds {

struct CoordMsg {
  Id id;  // id(p): leaders coordinate among their homonyms
  Round r;
  Value est;
  std::int64_t instance = 0;
  friend bool operator==(const CoordMsg&, const CoordMsg&) = default;
};

struct Ph0Msg {
  Round r;
  Value est;
  std::int64_t instance = 0;
  friend bool operator==(const Ph0Msg&, const Ph0Msg&) = default;
};

struct Ph1Msg {
  Round r;
  Value est;
  std::int64_t instance = 0;
  friend bool operator==(const Ph1Msg&, const Ph1Msg&) = default;
};

struct Ph2Msg {
  Round r;
  MaybeValue est2;  // nullopt is the paper's bottom
  std::int64_t instance = 0;
  friend bool operator==(const Ph2Msg&, const Ph2Msg&) = default;
};

struct DecideMsg {
  Value v;
  std::int64_t instance = 0;
  friend bool operator==(const DecideMsg&, const DecideMsg&) = default;
};

// Fig. 9's quorum-based phases carry the sender identity, the sub-round and
// the sender's current HΣ label set.
struct Ph1QMsg {
  Id id;
  Round r;
  std::int64_t sr;
  std::set<Label> labels;
  Value est;
  std::int64_t instance = 0;
  friend bool operator==(const Ph1QMsg&, const Ph1QMsg&) = default;
};

struct Ph2QMsg {
  Id id;
  Round r;
  std::int64_t sr;
  std::set<Label> labels;
  MaybeValue est2;
  std::int64_t instance = 0;
  friend bool operator==(const Ph2QMsg&, const Ph2QMsg&) = default;
};

inline constexpr const char* kCoordType = "COORD";
inline constexpr const char* kPh0Type = "PH0";
inline constexpr const char* kPh1Type = "PH1";
inline constexpr const char* kPh2Type = "PH2";
inline constexpr const char* kDecideType = "DECIDE";
inline constexpr const char* kPh1QType = "PH1Q";
inline constexpr const char* kPh2QType = "PH2Q";

}  // namespace hds
