// Experiment harness: assembles complete runs — identity patterns, crash
// schedules, detectors (oracle or real), consensus stacks — and returns the
// measurements the benchmarks report and the properties the tests check.
//
// Stacks provided:
//  - Fig. 8 over an HΩ oracle (HAS[t < n/2, HΩ], the paper's Theorem 7);
//  - Fig. 9 over HΩ+HΣ oracles (HAS[HΩ, HΣ], Theorem 8);
//  - Fig. 6 alone in HPS (Theorem 5 / Corollary 2);
//  - Fig. 7 alone in HSS (Theorem 6);
//  - full stack Fig. 6 ▸ Corollary 2 ▸ Fig. 8 under partial synchrony (the
//    paper's headline: consensus in HPS with majority correct);
//  - full stack Fig. 6 + Fig. 7-adapter ▸ Fig. 9 under synchrony (consensus
//    for any number of crashes, no knowledge of t/n/membership);
//  - anonymous full stack AP ▸ Lemmas 2+3 ▸ Observation 1 ▸ Fig. 9.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "fd/impl/ohp_polling.h"
#include "fd/oracles.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/qos.h"
#include "obs/window_qos.h"
#include "sim/sync_system.h"
#include "sim/system.h"
#include "sim/timing.h"
#include "spec/consensus_checkers.h"
#include "spec/fd_checkers.h"

namespace hds {

namespace chaos {
class FaultInjector;
}  // namespace chaos

// ---------------------------------------------------------------- workloads

// Identifiers 1..n (the classical AS extreme of homonymy).
std::vector<Id> ids_unique(std::size_t n);
// Every process carries kBottomId (the anonymous AAS extreme).
std::vector<Id> ids_anonymous(std::size_t n);
// `distinct` identifiers spread over n processes (each identifier used at
// least once; remainder assigned pseudo-randomly by `seed`).
std::vector<Id> ids_homonymous(std::size_t n, std::size_t distinct, std::uint64_t seed);

std::vector<std::optional<CrashPlan>> crashes_none(std::size_t n);
// Processes n-1, n-2, ..., n-k crash at `at` (keeping process 0 and the
// small identifiers alive); `stagger` spaces them out.
std::vector<std::optional<CrashPlan>> crashes_last_k(std::size_t n, std::size_t k, SimTime at,
                                                     SimTime stagger = 0, bool partial = false);
std::vector<std::optional<SyncCrashPlan>> sync_crashes_last_k(std::size_t n, std::size_t k,
                                                              std::size_t at_step,
                                                              std::size_t stagger = 0,
                                                              bool partial = false);

std::vector<Value> distinct_proposals(std::size_t n);

// The ground truth a (planned) run will have, before the System exists —
// what an obs::OnlineMonitor needs at construction time.
GroundTruth ground_truth_of(const std::vector<Id>& ids,
                            const std::vector<std::optional<CrashPlan>>& crashes);
GroundTruth ground_truth_of(const std::vector<Id>& ids,
                            const std::vector<std::optional<SyncCrashPlan>>& crashes);

// ------------------------------------------------------------- FD runs

struct Fig6Params {
  std::vector<Id> ids;
  std::vector<std::optional<CrashPlan>> crashes;  // empty = none
  PartialSyncTiming::Params net;
  OHPPolling::Options fd_opts;  // ablation: freeze the timeout
  std::uint64_t seed = 1;
  SimTime run_for = 4000;
  SimTime stable_window = 400;
  // Observability sink shared by the network and the detectors (per-process
  // series under proc=<index>); null disables collection.
  obs::MetricsRegistry* metrics = nullptr;
  // Run the QoS analyzer over the detector trajectories (result.qos; also
  // emitted into `metrics` when both are set).
  bool collect_qos = false;
  // Online property monitor; its per-process listeners are attached to every
  // detector before the run starts. Null disables.
  obs::OnlineMonitor* monitor = nullptr;
  // Streaming window-QoS estimator; teed into the same listener chain as the
  // monitor and refreshed (gauges included) when the run ends. Null disables.
  obs::WindowQos* window_qos = nullptr;
  // Fault-injection adversary; armed on the system before start and chained
  // in front of the monitor listeners. Null disables.
  chaos::FaultInjector* chaos = nullptr;
  // Event-queue back end (determinism cross-checks swap in the reference
  // heap; results are bit-identical either way).
  QueueKind queue = QueueKind::kCalendar;
  // Shard count for the conservative-synchronization engine; results are
  // bit-identical at any value. Forced back to 1 when chaos / monitor /
  // window_qos are present — those seams assume a single execution thread.
  std::size_t shards = 1;
  // > 0: record the structured event log (with causal lineage) into the
  // result, as in Fig8FullStackParams.
  std::size_t trace_capacity = 0;
};

struct Fig6Result {
  CheckResult ohp_check;
  CheckResult homega_check;
  // Latest time any correct process last changed h_trusted (== the global
  // stabilization moment of the detector output), -1 if not converged.
  SimTime stabilization_time = -1;
  SimTime max_final_timeout = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t copies_delivered = 0;
  obs::QosReport qos;  // populated when collect_qos was set
  // Retained event log + ring evictions, when trace_capacity > 0 (see
  // ConsensusRunResult for the consensus-stack equivalents).
  std::vector<TraceEvent> trace_events;
  std::uint64_t trace_dropped = 0;
};

Fig6Result run_fig6(const Fig6Params& p);

struct Fig7Params {
  std::vector<Id> ids;
  std::vector<std::optional<SyncCrashPlan>> crashes;
  std::size_t steps = 30;
  std::uint64_t seed = 1;
  obs::MetricsRegistry* metrics = nullptr;  // per-process series; null disables
  bool collect_qos = false;                 // as in Fig6Params
  obs::OnlineMonitor* monitor = nullptr;    // as in Fig6Params
  obs::WindowQos* window_qos = nullptr;     // as in Fig6Params
};

struct Fig7Result {
  CheckResult check;
  // First step at which every correct process holds a live quorum
  // (m ⊆ I(S(x) ∩ Correct)); -1 if never.
  SimTime liveness_step = -1;
  std::size_t max_quora_stored = 0;
  std::uint64_t messages = 0;
  obs::QosReport qos;  // populated when collect_qos was set
};

Fig7Result run_fig7(const Fig7Params& p);

// --------------------------------------------------------- consensus runs

struct ConsensusRunResult {
  bool all_correct_decided = false;
  CheckResult check;
  std::vector<Value> proposals;
  std::vector<DecisionRecord> decisions;
  SimTime last_decision_time = -1;
  Round max_round = 0;
  std::int64_t max_sub_round = 0;  // Fig. 9 stacks only
  std::uint64_t broadcasts = 0;
  std::uint64_t copies_delivered = 0;
  std::map<std::string, std::uint64_t> broadcasts_by_type;  // per-phase accounting
  SimTime end_time = 0;
  // First lines of the structured event log, when the run was configured
  // with trace_capacity > 0 (replay debugging; see sim/tracelog.h).
  std::string trace_head;
  // The retained events themselves (chronological) and the count evicted
  // from the ring — feed obs::write_chrome_trace / write_trace_jsonl.
  std::vector<TraceEvent> trace_events;
  std::uint64_t trace_dropped = 0;
  obs::QosReport qos;  // populated by stacks run with collect_qos
  // Populated by run_fig9_full_stack when check_hsigma_safety is set:
  // perpetual HΣ properties (safety + monotonicity) over the run — the
  // checks that stay meaningful under an adversarial (crash-heavy,
  // convergence-free) schedule.
  CheckResult hsigma_safety_check;
};

struct Fig8OracleParams {
  std::vector<Id> ids;
  std::size_t t_known = 0;  // the algorithm's t parameter (crashes <= t)
  std::vector<std::optional<CrashPlan>> crashes;
  std::vector<Value> proposals;  // empty = distinct per process
  SimTime fd_stabilize = 0;
  OracleHOmega::Noise noise = OracleHOmega::Noise::kRotating;
  SimTime async_min = 1, async_max = 8;
  std::uint64_t seed = 1;
  SimTime max_time = 500'000;
  std::optional<std::size_t> alpha;     // footnote-5 mode (n/t ignored)
  bool skip_coordination_phase = false; // ablation
  SimTime guard_poll = 4;               // FD guard re-evaluation period
  // Instance tag stamped on every engine and message of this run — the
  // repeated-consensus entry point: a caller running one decision per log
  // slot passes the slot number here (engines ignore foreign instances).
  std::int64_t instance = 0;
  obs::MetricsRegistry* metrics = nullptr;  // per-process series; null disables
};

ConsensusRunResult run_fig8_with_oracle(const Fig8OracleParams& p);

struct Fig9OracleParams {
  std::vector<Id> ids;
  std::vector<std::optional<CrashPlan>> crashes;
  std::vector<Value> proposals;
  SimTime fd1_stabilize = 0;  // HΩ
  SimTime fd2_stabilize = 0;  // HΣ
  OracleHOmega::Noise noise = OracleHOmega::Noise::kRotating;
  SimTime async_min = 1, async_max = 8;
  std::uint64_t seed = 1;
  SimTime max_time = 500'000;
  SimTime guard_poll = 4;  // FD guard re-evaluation period
  obs::MetricsRegistry* metrics = nullptr;  // per-process series; null disables
};

ConsensusRunResult run_fig9_with_oracle(const Fig9OracleParams& p);

struct Fig8FullStackParams {
  std::vector<Id> ids;
  std::size_t t_known = 0;
  std::vector<std::optional<CrashPlan>> crashes;
  std::vector<Value> proposals;
  PartialSyncTiming::Params net;
  std::uint64_t seed = 1;
  SimTime max_time = 500'000;
  std::size_t trace_capacity = 0;  // > 0: record the event log into the result
  // Observability sink threaded through the network, the Fig. 6 detectors
  // and the consensus layer; after the run it additionally carries
  // fd_stabilization_time (latest trusted-output change among correct
  // processes). Null disables collection.
  obs::MetricsRegistry* metrics = nullptr;
  bool collect_qos = false;               // as in Fig6Params
  obs::OnlineMonitor* monitor = nullptr;  // as in Fig6Params
  obs::WindowQos* window_qos = nullptr;   // as in Fig6Params
  chaos::FaultInjector* chaos = nullptr;  // as in Fig6Params
  // Installed as the substrate's link interposer AFTER chaos->arm(sys) (which
  // installs the injector itself). Lets a wrapper — e.g. the chaos runner's
  // net::ReliableLinkEmulator around the injector — own the link seam while
  // `chaos` keeps its other roles (crash effectors, trigger listeners).
  LinkInterposer* link_interposer = nullptr;
  QueueKind queue = QueueKind::kCalendar;  // as in Fig6Params
  // As in Fig6Params; additionally forced to 1 by `link_interposer`.
  std::size_t shards = 1;
};

// Fig. 6 ▸ Corollary 2 ▸ Fig. 8 in HPS[t < n/2].
ConsensusRunResult run_fig8_full_stack(const Fig8FullStackParams& p);

struct Fig9FullStackParams {
  std::vector<Id> ids;
  std::vector<std::optional<CrashPlan>> crashes;
  std::vector<Value> proposals;
  SimTime delta = 3;  // known synchronous link bound
  std::uint64_t seed = 1;
  SimTime max_time = 500'000;
  bool anonymous_ap_stack = false;  // true: AP ▸ Lemmas 2/3 instead of Fig. 6/7
  std::size_t trace_capacity = 0;   // > 0: record the event log into the result
  obs::MetricsRegistry* metrics = nullptr;  // as in Fig8FullStackParams
  // QoS / monitoring of the Fig. 6 + Fig. 7-adapter detectors; ignored by
  // the anonymous AP stack (its adapters are pull-through views with no
  // change events of their own).
  bool collect_qos = false;
  obs::OnlineMonitor* monitor = nullptr;
  obs::WindowQos* window_qos = nullptr;   // as in Fig6Params
  chaos::FaultInjector* chaos = nullptr;  // as in Fig6Params
  // Evaluate the perpetual HΣ checks (safety + monotonicity) over the
  // HSigmaComponent traces into result.hsigma_safety_check. Off by default;
  // the chaos runner turns it on. Ignored by the anonymous AP stack.
  bool check_hsigma_safety = false;
  std::size_t shards = 1;  // as in Fig6Params
};

// Synchronous full stack for Fig. 9: OHPPolling (HΩ) + HSigmaComponent (HΣ)
// under a known link bound; or, with anonymous_ap_stack, the AP-based
// anonymous derivation of both detectors.
ConsensusRunResult run_fig9_full_stack(const Fig9FullStackParams& p);

struct Fig9AnonOmegaParams {
  std::size_t n = 0;  // anonymous: every identifier is kBottomId
  std::vector<std::optional<CrashPlan>> crashes;
  std::vector<Value> proposals;
  SimTime aomega_stabilize = 0;
  SimTime fd2_stabilize = 0;
  SimTime async_min = 1, async_max = 8;
  std::uint64_t seed = 1;
  SimTime max_time = 500'000;
  obs::MetricsRegistry* metrics = nullptr;  // per-process series; null disables
};

// The Section 5.3 closing remark: Fig. 9 adapted to AAS[AΩ, HΣ] (leaders'
// coordination removed, Phase 0 driven by a_leader), over oracles.
ConsensusRunResult run_fig9_anon_aomega(const Fig9AnonOmegaParams& p);

}  // namespace hds
