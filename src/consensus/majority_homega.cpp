#include "consensus/majority_homega.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace hds {

MajorityHOmegaConsensus::MajorityHOmegaConsensus(MajorityConsensusConfig cfg,
                                                 const HOmegaHandle& fd)
    : cfg_(cfg), fd_(&fd) {
  if (cfg_.alpha) {
    if (*cfg_.alpha == 0) throw std::invalid_argument("MajorityHOmegaConsensus: alpha == 0");
  } else if (cfg_.n == 0 || cfg_.t * 2 >= cfg_.n) {
    throw std::invalid_argument("MajorityHOmegaConsensus: requires t < n/2");
  }
  est1_ = cfg_.proposal;
}

const char* MajorityHOmegaConsensus::phase_name(int phase) {
  switch (static_cast<Phase>(phase)) {
    case Phase::kCoord: return "coord";
    case Phase::kPh0: return "ph0";
    case Phase::kPh1: return "ph1";
    case Phase::kPh2: return "ph2";
    case Phase::kDone: return "done";
  }
  return "?";
}

void MajorityHOmegaConsensus::attach_metrics(obs::MetricsRegistry* reg,
                                             const obs::Labels& labels) {
  if (reg == nullptr) {
    m_rounds_ = nullptr;
    m_decide_at_ = nullptr;
    m_phase_latency_.fill(nullptr);
    return;
  }
  m_rounds_ = &reg->counter("consensus_rounds_total", labels);
  m_decide_at_ = &reg->gauge("consensus_decide_at", labels);
  for (int p = 0; p < 4; ++p) {
    obs::Labels l = labels;
    l.emplace("phase", phase_name(p));
    m_phase_latency_[static_cast<std::size_t>(p)] =
        &reg->histogram("consensus_phase_latency", obs::time_buckets(), l);
  }
}

// Records the phase transition and the latency of the phase being left.
void MajorityHOmegaConsensus::set_phase(Env& env, Phase next) {
  const SimTime now = env.local_now();
  if (phase_timing_started_ && phase_ != Phase::kDone) {
    obs::observe(m_phase_latency_[static_cast<std::size_t>(phase_)], now - phase_entered_at_);
  }
  phase_timing_started_ = true;
  phase_ = next;
  phase_entered_at_ = now;
  phase_trace_.record(now, static_cast<int>(next));
}

// Messages to wait for in Phases 1 and 2: n - t, or alpha in footnote-5
// mode (n unknown, alpha > n/2 correct processes guaranteed).
std::size_t MajorityHOmegaConsensus::wait_threshold() const {
  return cfg_.alpha ? *cfg_.alpha : cfg_.n - cfg_.t;
}

// Quorum support needed to adopt a value in Phase 1: a majority of n, or
// alpha senders (any two alpha-sets intersect because alpha > n/2).
bool MajorityHOmegaConsensus::is_quorum(std::size_t count) const {
  return cfg_.alpha ? count >= *cfg_.alpha : 2 * count > cfg_.n;
}

void MajorityHOmegaConsensus::on_start(Env& env) {
  enter_round(env, 1);
  env.set_timer(cfg_.guard_poll);
  advance(env);
}

void MajorityHOmegaConsensus::enter_round(Env& env, Round r) {
  r_ = r;
  est2_.reset();
  set_phase(env, Phase::kCoord);
  obs::inc(m_rounds_);
  // Line 9: open the Leaders' Coordination Phase of round r.
  env.broadcast(make_message(kCoordType, CoordMsg{env.self_id(), r_, est1_, cfg_.instance}));
}

void MajorityHOmegaConsensus::on_timer(Env& env, TimerId id) {
  if (phase_ == Phase::kDone) {
    // Stale guard-poll timers die here; only the dedicated redecide timer
    // keeps Task T2's DECIDE propagation alive for late (re)joiners.
    if (cfg_.redecide_interval_ms > 0 && decision_.decided && id == redecide_timer_) {
      env.broadcast(make_message(kDecideType, DecideMsg{decision_.value, cfg_.instance}));
      redecide_timer_ = env.set_timer(cfg_.redecide_interval_ms);
    }
    return;
  }
  // The FD output may have changed with no message arriving; re-arm and
  // re-evaluate the guards.
  env.set_timer(cfg_.guard_poll);
  advance(env);
}

void MajorityHOmegaConsensus::on_message(Env& env, const Message& m) {
  if (phase_ == Phase::kDone) return;
  if (m.type == kCoordType) {
    if (const auto* b = m.as<CoordMsg>();
        b != nullptr && b->instance == cfg_.instance && b->r >= r_) {
      bufs_[b->r].coord.push_back(*b);
    }
  } else if (m.type == kPh0Type) {
    if (const auto* b = m.as<Ph0Msg>();
        b != nullptr && b->instance == cfg_.instance && b->r >= r_) {
      bufs_[b->r].ph0.push_back(b->est);
    }
  } else if (m.type == kPh1Type) {
    if (const auto* b = m.as<Ph1Msg>();
        b != nullptr && b->instance == cfg_.instance && b->r >= r_) {
      bufs_[b->r].ph1.push_back(b->est);
    }
  } else if (m.type == kPh2Type) {
    if (const auto* b = m.as<Ph2Msg>();
        b != nullptr && b->instance == cfg_.instance && b->r >= r_) {
      bufs_[b->r].ph2.push_back(b->est2);
    }
  } else if (m.type == kDecideType) {
    // Task T2: reliable propagation, then decide.
    if (const auto* b = m.as<DecideMsg>(); b != nullptr && b->instance == cfg_.instance) {
      decide(env, b->v);
    }
    return;
  } else {
    return;  // other protocols' traffic (stacked deployments)
  }
  advance(env);
}

void MajorityHOmegaConsensus::decide(Env& env, Value v) {
  env.broadcast(make_message(kDecideType, DecideMsg{v, cfg_.instance}));
  decision_ = DecisionRecord{true, env.local_now(), v, r_};
  set_phase(env, Phase::kDone);
  obs::set(m_decide_at_, env.local_now());
  bufs_.clear();
  if (cfg_.redecide_interval_ms > 0) redecide_timer_ = env.set_timer(cfg_.redecide_interval_ms);
}

void MajorityHOmegaConsensus::advance(Env& env) {
  while (phase_ != Phase::kDone && try_advance_once(env)) {
  }
}

bool MajorityHOmegaConsensus::try_advance_once(Env& env) {
  RoundBuf& buf = bufs_[r_];
  const HOmegaOut fd = fd_->h_omega();
  const Id self = env.self_id();

  switch (phase_) {
    case Phase::kCoord: {
      if (cfg_.skip_coordination_phase) {  // ablation only
        set_phase(env, Phase::kPh0);
        return true;
      }
      // Lines 10-11: leaders wait for COORD from h_multiplicity homonyms.
      std::size_t own = 0;
      for (const CoordMsg& c : buf.coord) {
        if (c.id == self && c.r == r_) ++own;
      }
      if (fd.leader == self && own < fd.multiplicity) return false;
      // Lines 12-14: adopt the minimum estimate among the homonyms heard.
      bool any = false;
      Value min_est = est1_;
      for (const CoordMsg& c : buf.coord) {
        if (c.id != self || c.r != r_) continue;
        min_est = any ? std::min(min_est, c.est) : c.est;
        any = true;
      }
      if (any) est1_ = min_est;
      set_phase(env, Phase::kPh0);
      return true;
    }

    case Phase::kPh0: {
      // Line 16: leaders proceed; others wait for a PH0 of this round.
      if (fd.leader != self && buf.ph0.empty()) return false;
      if (!buf.ph0.empty()) est1_ = buf.ph0.front();  // line 17
      env.broadcast(make_message(kPh0Type, Ph0Msg{r_, est1_, cfg_.instance}));   // line 18
      env.broadcast(make_message(kPh1Type, Ph1Msg{r_, est1_, cfg_.instance}));   // line 20
      set_phase(env, Phase::kPh1);
      return true;
    }

    case Phase::kPh1: {
      // Line 21: n - t PH1 messages (senders are indistinguishable; each
      // process broadcasts exactly one PH1 per round, so messages = senders).
      if (buf.ph1.size() < wait_threshold()) return false;
      // Lines 22-26: a value from a majority of processes becomes est2.
      std::map<Value, std::size_t> tally;
      for (Value v : buf.ph1) ++tally[v];
      est2_.reset();
      for (const auto& [v, c] : tally) {
        if (is_quorum(c)) est2_ = v;
      }
      env.broadcast(make_message(kPh2Type, Ph2Msg{r_, est2_, cfg_.instance}));  // line 28
      set_phase(env, Phase::kPh2);
      return true;
    }

    case Phase::kPh2: {
      if (buf.ph2.size() < wait_threshold()) return false;  // line 29
      // Line 30: rec = the set of estimates received.
      std::set<MaybeValue> rec(buf.ph2.begin(), buf.ph2.end());
      MaybeValue non_bottom;
      for (const MaybeValue& e : rec) {
        if (e) non_bottom = non_bottom ? std::min(*non_bottom, *e) : *e;
      }
      if (rec.size() == 1 && non_bottom) {  // lines 31-32: rec = {v}
        decide(env, *non_bottom);
        return false;
      }
      if (non_bottom) est1_ = *non_bottom;  // line 33: rec = {v, bottom}
      // line 34: rec = {bottom} — keep est1.
      bufs_.erase(bufs_.begin(), bufs_.upper_bound(r_));
      enter_round(env, r_ + 1);
      return true;
    }

    case Phase::kDone:
      return false;
  }
  return false;
}

}  // namespace hds
