#include "consensus/harness.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "chaos/injector.h"
#include "common/rng.h"
#include "consensus/majority_homega.h"
#include "consensus/quorum_homega_hsigma.h"
#include "fd/impl/ap_sync.h"
#include "fd/impl/hsigma_sync.h"
#include "fd/impl/ohp_polling.h"
#include "fd/reduce/ap_to_hsigma.h"
#include "fd/reduce/ap_to_ohp.h"
#include "fd/reduce/ohp_to_homega.h"
#include "sim/stacked_process.h"

namespace hds {

// ---------------------------------------------------------------- workloads

std::vector<Id> ids_unique(std::size_t n) {
  std::vector<Id> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i + 1;
  return out;
}

std::vector<Id> ids_anonymous(std::size_t n) { return std::vector<Id>(n, kBottomId); }

std::vector<Id> ids_homonymous(std::size_t n, std::size_t distinct, std::uint64_t seed) {
  if (distinct == 0 || distinct > n) {
    throw std::invalid_argument("ids_homonymous: need 1 <= distinct <= n");
  }
  Rng rng(seed);
  std::vector<Id> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    // The first `distinct` processes pin one instance of each identifier;
    // the rest collide pseudo-randomly.
    out[i] = i < distinct ? i + 1 : static_cast<Id>(rng.uniform(1, static_cast<Value>(distinct)));
  }
  return out;
}

std::vector<std::optional<CrashPlan>> crashes_none(std::size_t n) {
  return std::vector<std::optional<CrashPlan>>(n);
}

std::vector<std::optional<CrashPlan>> crashes_last_k(std::size_t n, std::size_t k, SimTime at,
                                                     SimTime stagger, bool partial) {
  if (k >= n) throw std::invalid_argument("crashes_last_k: would crash everyone");
  auto out = crashes_none(n);
  for (std::size_t j = 0; j < k; ++j) {
    out[n - 1 - j] = CrashPlan{at + stagger * static_cast<SimTime>(j), partial};
  }
  return out;
}

std::vector<std::optional<SyncCrashPlan>> sync_crashes_last_k(std::size_t n, std::size_t k,
                                                              std::size_t at_step,
                                                              std::size_t stagger, bool partial) {
  if (k >= n) throw std::invalid_argument("sync_crashes_last_k: would crash everyone");
  std::vector<std::optional<SyncCrashPlan>> out(n);
  for (std::size_t j = 0; j < k; ++j) {
    out[n - 1 - j] = SyncCrashPlan{at_step + stagger * j, partial};
  }
  return out;
}

std::vector<Value> distinct_proposals(std::size_t n) {
  std::vector<Value> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<Value>(100 + i);
  return out;
}

GroundTruth ground_truth_of(const std::vector<Id>& ids,
                            const std::vector<std::optional<CrashPlan>>& crashes) {
  GroundTruth gt;
  gt.ids = ids;
  gt.correct.resize(ids.size(), true);
  for (std::size_t i = 0; i < ids.size() && i < crashes.size(); ++i) {
    gt.correct[i] = !crashes[i].has_value();
  }
  return gt;
}

GroundTruth ground_truth_of(const std::vector<Id>& ids,
                            const std::vector<std::optional<SyncCrashPlan>>& crashes) {
  GroundTruth gt;
  gt.ids = ids;
  gt.correct.resize(ids.size(), true);
  for (std::size_t i = 0; i < ids.size() && i < crashes.size(); ++i) {
    gt.correct[i] = !crashes[i].has_value();
  }
  return gt;
}

namespace {

obs::Labels proc_labels(ProcIndex i) { return {{"proc", std::to_string(i)}}; }

std::vector<SimTime> crash_instants(const std::vector<std::optional<CrashPlan>>& crashes,
                                    std::size_t n) {
  std::vector<SimTime> out(n, -1);
  for (std::size_t i = 0; i < n && i < crashes.size(); ++i) {
    if (crashes[i]) out[i] = crashes[i]->at;
  }
  return out;
}

std::vector<SimTime> crash_instants(const std::vector<std::optional<SyncCrashPlan>>& crashes,
                                    std::size_t n) {
  std::vector<SimTime> out(n, -1);
  for (std::size_t i = 0; i < n && i < crashes.size(); ++i) {
    if (crashes[i]) out[i] = static_cast<SimTime>(crashes[i]->at_step);
  }
  return out;
}

// Composes the observer chain for process i: the monitor's listener (if
// any), teed with the streaming window-QoS listener (if any), wrapped by
// the injector's trigger evaluation (if the plan has trigger clauses). Tees
// created along the way land in `tees`, which must outlive the run. Null
// when no observer is present.
FdOutputListener* chained_listener(ProcIndex i, obs::OnlineMonitor* monitor,
                                   obs::WindowQos* window_qos, chaos::FaultInjector* chaos,
                                   std::vector<std::unique_ptr<FdOutputTee>>& tees) {
  FdOutputListener* l = monitor != nullptr ? monitor->listener(i) : nullptr;
  if (window_qos != nullptr) {
    FdOutputListener* w = window_qos->listener(i);
    if (l == nullptr) {
      l = w;
    } else {
      tees.push_back(std::make_unique<FdOutputTee>(l, w));
      l = tees.back().get();
    }
  }
  if (chaos != nullptr) l = chaos->trigger_listener(i, l);
  return l;
}

// Observer seams that assume a single execution thread force the run back
// onto one shard: chaos arms raw scheduler hooks, monitor / window-QoS
// listeners fire from process dispatch without synchronization, and a link
// interposer sits on every send path. Results are bit-identical either way,
// so this only costs the parallelism, never the outcome.
std::size_t effective_shards(std::size_t requested, const void* monitor, const void* window_qos,
                             const void* chaos, const void* interposer = nullptr) {
  if (monitor != nullptr || window_qos != nullptr || chaos != nullptr || interposer != nullptr) {
    return 1;
  }
  return requested == 0 ? 1 : requested;
}

}  // namespace

// ------------------------------------------------------------- FD runs

Fig6Result run_fig6(const Fig6Params& p) {
  std::vector<std::unique_ptr<FdOutputTee>> tees;  // outlives the system
  SystemConfig cfg;
  cfg.ids = p.ids;
  cfg.timing = std::make_unique<PartialSyncTiming>(p.net);
  cfg.crashes = p.crashes;
  cfg.seed = p.seed;
  cfg.metrics = p.metrics;
  cfg.queue = p.queue;
  cfg.shards = effective_shards(p.shards, p.monitor, p.window_qos, p.chaos);
  cfg.trace_capacity = p.trace_capacity;
  System sys(std::move(cfg));
  if (p.chaos != nullptr) p.chaos->arm(sys);
  if (p.monitor != nullptr && sys.trace().enabled()) {
    p.monitor->set_causal(&sys.causal_session());
  }
  for (ProcIndex i = 0; i < sys.n(); ++i) {
    auto fd = std::make_unique<OHPPolling>(p.fd_opts);
    fd->attach_metrics(p.metrics, proc_labels(i));
    if (FdOutputListener* l = chained_listener(i, p.monitor, p.window_qos, p.chaos, tees)) {
      fd->set_output_listener(l);
    }
    sys.set_process(i, std::move(fd));
  }
  sys.start();
  sys.run_until(p.run_for);
  if (p.window_qos != nullptr) (void)p.window_qos->stats();  // refresh the gauges

  const GroundTruth gt = GroundTruth::from(sys);
  std::vector<const Trajectory<Multiset<Id>>*> trusted;
  std::vector<const Trajectory<HOmegaOut>*> homega;
  Fig6Result res;
  for (ProcIndex i = 0; i < sys.n(); ++i) {
    auto& fd = static_cast<OHPPolling&>(sys.process(i));
    trusted.push_back(&fd.trusted_trace());
    homega.push_back(&fd.homega_trace());
    if (sys.is_correct(i)) {
      res.max_final_timeout = std::max(res.max_final_timeout, fd.timeout());
    }
  }
  res.ohp_check = check_ohp(gt, trusted, p.run_for, p.stable_window);
  res.homega_check = check_homega(gt, homega, p.run_for, p.stable_window);
  if (res.ohp_check) {
    for (ProcIndex i = 0; i < sys.n(); ++i) {
      if (sys.is_correct(i)) {
        res.stabilization_time = std::max(res.stabilization_time, trusted[i]->last_change());
      }
    }
  }
  res.broadcasts = sys.net_stats().broadcasts;
  res.copies_delivered = sys.net_stats().copies_delivered;
  if (p.metrics != nullptr && res.stabilization_time >= 0) {
    p.metrics->gauge("fd_stabilization_time").set(res.stabilization_time);
  }
  if (p.collect_qos) {
    obs::QosInput in;
    in.gt = gt;
    in.crash_at = crash_instants(p.crashes, sys.n());
    in.gst = p.net.gst;
    in.run_end = p.run_for;
    in.trusted = trusted;
    in.homega = homega;
    res.qos = obs::analyze_qos(in);
    obs::emit_qos(res.qos, p.metrics);
  }
  if (sys.trace().enabled()) {
    res.trace_events = sys.trace().events();
    res.trace_dropped = sys.trace().dropped();
  }
  return res;
}

Fig7Result run_fig7(const Fig7Params& p) {
  std::vector<std::unique_ptr<FdOutputTee>> tees;  // outlives the system
  SyncConfig cfg;
  cfg.ids = p.ids;
  cfg.crashes = p.crashes;
  cfg.seed = p.seed;
  SyncSystem sys(std::move(cfg));
  for (ProcIndex i = 0; i < sys.n(); ++i) {
    auto fd = std::make_unique<HSigmaSyncProcess>(sys.id_of(i));
    fd->attach_metrics(p.metrics, proc_labels(i));
    if (FdOutputListener* l = chained_listener(i, p.monitor, p.window_qos, nullptr, tees)) {
      fd->set_output_listener(l);
    }
    sys.set_process(i, std::move(fd));
  }
  sys.run_steps(p.steps);
  if (p.window_qos != nullptr) (void)p.window_qos->stats();  // refresh the gauges

  const GroundTruth gt = GroundTruth::from(sys);
  std::vector<const Trajectory<HSigmaSnapshot>*> snaps;
  Fig7Result res;
  for (ProcIndex i = 0; i < sys.n(); ++i) {
    const auto& fd = static_cast<HSigmaSyncProcess&>(sys.process(i));
    snaps.push_back(&fd.core().trace());
    if (sys.is_correct(i) && !fd.core().trace().empty()) {
      res.max_quora_stored =
          std::max(res.max_quora_stored, fd.core().trace().final().quora.size());
    }
  }
  res.check = check_hsigma(gt, snaps);
  // First step from which every correct process holds a live quorum. With
  // carriers fixed by the whole trace, the predicate is monotone in time.
  if (res.check) {
    SimTime all_live = -1;
    for (ProcIndex i = 0; i < sys.n(); ++i) {
      if (!sys.is_correct(i)) continue;
      SimTime mine = -1;
      for (const auto& [t, snap] : snaps[i]->points()) {
        // A quorum whose multiset is within I(Correct) suffices here: in
        // Fig. 7, S(m) ⊇ the senders observed, and the liveness pair is
        // exactly (I(Correct), I(Correct)).
        for (const auto& [x, m] : snap.quora) {
          (void)x;
          if (m.is_subset_of(gt.correct_ids())) {
            mine = t;
            break;
          }
        }
        if (mine >= 0) break;
      }
      if (mine < 0) {
        all_live = -1;
        break;
      }
      all_live = std::max(all_live, mine);
    }
    res.liveness_step = all_live;
  }
  res.messages = sys.messages_sent();
  if (p.collect_qos) {
    obs::QosInput in;
    in.gt = gt;
    in.crash_at = crash_instants(p.crashes, sys.n());
    in.gst = 0;  // synchronous: no stabilization delay to forgive
    in.run_end = static_cast<SimTime>(p.steps);
    in.hsigma = snaps;
    res.qos = obs::analyze_qos(in);
    obs::emit_qos(res.qos, p.metrics);
  }
  return res;
}

// --------------------------------------------------------- consensus runs

namespace {

struct RunLoopOut {
  bool all_decided = false;
  SimTime end_time = 0;
};

// Runs the system in slices until every correct process reports a decision
// (or max_time elapses).
RunLoopOut run_until_decided(System& sys, const std::function<bool()>& all_decided,
                             SimTime max_time) {
  const SimTime slice = 250;
  RunLoopOut out;
  while (sys.now() < max_time) {
    sys.run_until(std::min(max_time, sys.now() + slice));
    if (all_decided()) {
      out.all_decided = true;
      break;
    }
  }
  out.end_time = sys.now();
  return out;
}

ConsensusRunResult finish_result(System& sys, const std::vector<Value>& proposals,
                                 const std::vector<DecisionRecord>& decisions,
                                 const RunLoopOut& loop, std::int64_t max_sub_round,
                                 Round max_round) {
  ConsensusRunResult res;
  res.all_correct_decided = loop.all_decided;
  res.proposals = proposals;
  res.decisions = decisions;
  res.max_round = max_round;
  res.max_sub_round = max_sub_round;
  for (ProcIndex i = 0; i < sys.n(); ++i) {
    if (decisions[i].decided) {
      res.last_decision_time = std::max(res.last_decision_time, decisions[i].at);
    }
  }
  res.check = check_consensus(GroundTruth::from(sys), proposals, decisions);
  res.broadcasts = sys.net_stats().broadcasts;
  res.copies_delivered = sys.net_stats().copies_delivered;
  res.broadcasts_by_type = sys.net_stats().broadcasts_by_type;
  res.end_time = loop.end_time;
  if (sys.trace().enabled()) {
    res.trace_head = sys.trace().dump(400);
    res.trace_events = sys.trace().events();
    res.trace_dropped = sys.trace().dropped();
  }
  return res;
}

std::vector<Value> ensure_proposals(const std::vector<Value>& given, std::size_t n) {
  if (given.empty()) return distinct_proposals(n);
  if (given.size() != n) throw std::invalid_argument("proposals size != n");
  return given;
}

}  // namespace

ConsensusRunResult run_fig8_with_oracle(const Fig8OracleParams& p) {
  const std::size_t n = p.ids.size();
  const std::vector<Value> proposals = ensure_proposals(p.proposals, n);

  SystemConfig cfg;
  cfg.ids = p.ids;
  cfg.timing = std::make_unique<AsyncTiming>(p.async_min, p.async_max);
  cfg.crashes = p.crashes;
  cfg.seed = p.seed;
  cfg.metrics = p.metrics;
  System sys(std::move(cfg));

  OracleHOmega oracle(GroundTruth::from(sys), [&sys] { return sys.now(); }, p.fd_stabilize,
                      p.noise);
  std::vector<MajorityHOmegaConsensus*> procs(n);
  for (ProcIndex i = 0; i < n; ++i) {
    MajorityConsensusConfig cons_cfg;
    cons_cfg.n = n;
    cons_cfg.t = p.t_known;
    cons_cfg.proposal = proposals[i];
    cons_cfg.alpha = p.alpha;
    cons_cfg.skip_coordination_phase = p.skip_coordination_phase;
    cons_cfg.guard_poll = p.guard_poll;
    cons_cfg.instance = p.instance;
    auto proc = std::make_unique<MajorityHOmegaConsensus>(cons_cfg, oracle.handle(i));
    proc->attach_metrics(p.metrics, proc_labels(i));
    procs[i] = proc.get();
    sys.set_process(i, std::move(proc));
  }
  sys.start();
  auto loop = run_until_decided(
      sys,
      [&] {
        for (ProcIndex i = 0; i < n; ++i) {
          if (sys.is_correct(i) && !procs[i]->decision().decided) return false;
        }
        return true;
      },
      p.max_time);

  std::vector<DecisionRecord> decisions(n);
  Round max_round = 0;
  for (ProcIndex i = 0; i < n; ++i) {
    decisions[i] = procs[i]->decision();
    if (sys.is_correct(i)) max_round = std::max(max_round, procs[i]->current_round());
  }
  return finish_result(sys, proposals, decisions, loop, 0, max_round);
}

ConsensusRunResult run_fig9_with_oracle(const Fig9OracleParams& p) {
  const std::size_t n = p.ids.size();
  const std::vector<Value> proposals = ensure_proposals(p.proposals, n);

  SystemConfig cfg;
  cfg.ids = p.ids;
  cfg.timing = std::make_unique<AsyncTiming>(p.async_min, p.async_max);
  cfg.crashes = p.crashes;
  cfg.seed = p.seed;
  cfg.metrics = p.metrics;
  System sys(std::move(cfg));

  auto clock = [&sys] { return sys.now(); };
  OracleHOmega fd1(GroundTruth::from(sys), clock, p.fd1_stabilize, p.noise);
  OracleHSigma fd2(GroundTruth::from(sys), clock, p.fd2_stabilize);
  std::vector<QuorumConsensus*> procs(n);
  for (ProcIndex i = 0; i < n; ++i) {
    auto proc = std::make_unique<QuorumConsensus>(QuorumConsensusConfig{proposals[i], p.guard_poll},
                                                  fd1.handle(i), fd2.handle(i));
    proc->attach_metrics(p.metrics, proc_labels(i));
    procs[i] = proc.get();
    sys.set_process(i, std::move(proc));
  }
  sys.start();
  auto loop = run_until_decided(
      sys,
      [&] {
        for (ProcIndex i = 0; i < n; ++i) {
          if (sys.is_correct(i) && !procs[i]->decision().decided) return false;
        }
        return true;
      },
      p.max_time);

  std::vector<DecisionRecord> decisions(n);
  Round max_round = 0;
  std::int64_t max_sr = 0;
  for (ProcIndex i = 0; i < n; ++i) {
    decisions[i] = procs[i]->decision();
    if (sys.is_correct(i)) {
      max_round = std::max(max_round, procs[i]->current_round());
      max_sr = std::max(max_sr, procs[i]->max_sub_round_seen());
    }
  }
  return finish_result(sys, proposals, decisions, loop, max_sr, max_round);
}

ConsensusRunResult run_fig9_anon_aomega(const Fig9AnonOmegaParams& p) {
  const std::size_t n = p.n;
  const std::vector<Value> proposals = ensure_proposals(p.proposals, n);

  SystemConfig cfg;
  cfg.ids = ids_anonymous(n);
  cfg.timing = std::make_unique<AsyncTiming>(p.async_min, p.async_max);
  cfg.crashes = p.crashes;
  cfg.seed = p.seed;
  cfg.metrics = p.metrics;
  System sys(std::move(cfg));

  auto clock = [&sys] { return sys.now(); };
  OracleAOmega fd3(GroundTruth::from(sys), clock, p.aomega_stabilize);
  OracleHSigma fd2(GroundTruth::from(sys), clock, p.fd2_stabilize);
  std::vector<QuorumConsensus*> procs(n);
  for (ProcIndex i = 0; i < n; ++i) {
    auto proc = std::make_unique<QuorumConsensus>(QuorumConsensusConfig{proposals[i], 4},
                                                  fd3.handle(i), fd2.handle(i));
    proc->attach_metrics(p.metrics, proc_labels(i));
    procs[i] = proc.get();
    sys.set_process(i, std::move(proc));
  }
  sys.start();
  auto loop = run_until_decided(
      sys,
      [&] {
        for (ProcIndex i = 0; i < n; ++i) {
          if (sys.is_correct(i) && !procs[i]->decision().decided) return false;
        }
        return true;
      },
      p.max_time);

  std::vector<DecisionRecord> decisions(n);
  Round max_round = 0;
  std::int64_t max_sr = 0;
  for (ProcIndex i = 0; i < n; ++i) {
    decisions[i] = procs[i]->decision();
    if (sys.is_correct(i)) {
      max_round = std::max(max_round, procs[i]->current_round());
      max_sr = std::max(max_sr, procs[i]->max_sub_round_seen());
    }
  }
  return finish_result(sys, proposals, decisions, loop, max_sr, max_round);
}

ConsensusRunResult run_fig8_full_stack(const Fig8FullStackParams& p) {
  const std::size_t n = p.ids.size();
  const std::vector<Value> proposals = ensure_proposals(p.proposals, n);

  std::vector<std::unique_ptr<FdOutputTee>> tees;  // outlives the system
  SystemConfig cfg;
  cfg.ids = p.ids;
  cfg.timing = std::make_unique<PartialSyncTiming>(p.net);
  cfg.crashes = p.crashes;
  cfg.seed = p.seed;
  cfg.trace_capacity = p.trace_capacity;
  cfg.metrics = p.metrics;
  cfg.queue = p.queue;
  cfg.shards = effective_shards(p.shards, p.monitor, p.window_qos, p.chaos, p.link_interposer);
  System sys(std::move(cfg));
  if (p.chaos != nullptr) p.chaos->arm(sys);
  // arm() installed the injector as the interposer; an explicit override
  // (typically a reliability emulator wrapping that same injector) wins.
  if (p.link_interposer != nullptr) sys.set_interposer(p.link_interposer);
  if (p.monitor != nullptr && sys.trace().enabled()) {
    p.monitor->set_causal(&sys.causal_session());
  }

  std::vector<MajorityHOmegaConsensus*> procs(n);
  std::vector<OHPPolling*> fds(n);
  for (ProcIndex i = 0; i < n; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    auto* fd = stack->add(std::make_unique<OHPPolling>());
    fd->attach_metrics(p.metrics, proc_labels(i));
    if (FdOutputListener* l = chained_listener(i, p.monitor, p.window_qos, p.chaos, tees)) {
      fd->set_output_listener(l);
    }
    fds[i] = fd;
    MajorityConsensusConfig cons_cfg;
    cons_cfg.n = n;
    cons_cfg.t = p.t_known;
    cons_cfg.proposal = proposals[i];
    auto cons = std::make_unique<MajorityHOmegaConsensus>(cons_cfg, *fd);
    cons->attach_metrics(p.metrics, proc_labels(i));
    procs[i] = stack->add(std::move(cons));
    sys.set_process(i, std::move(stack));
  }
  sys.start();
  auto loop = run_until_decided(
      sys,
      [&] {
        for (ProcIndex i = 0; i < n; ++i) {
          if (sys.is_correct(i) && !procs[i]->decision().decided) return false;
        }
        return true;
      },
      p.max_time);

  if (p.window_qos != nullptr) (void)p.window_qos->stats();  // refresh the gauges
  std::vector<DecisionRecord> decisions(n);
  Round max_round = 0;
  for (ProcIndex i = 0; i < n; ++i) {
    decisions[i] = procs[i]->decision();
    if (sys.is_correct(i)) max_round = std::max(max_round, procs[i]->current_round());
  }
  if (p.metrics != nullptr) {
    // Latest trusted-output change among correct processes — the detector
    // stack's global stabilization instant for this run.
    SimTime stab = -1;
    for (ProcIndex i = 0; i < n; ++i) {
      if (sys.is_correct(i)) stab = std::max(stab, fds[i]->trusted_trace().last_change());
    }
    if (stab >= 0) p.metrics->gauge("fd_stabilization_time").set(stab);
  }
  ConsensusRunResult res = finish_result(sys, proposals, decisions, loop, 0, max_round);
  if (p.collect_qos) {
    obs::QosInput in;
    in.gt = GroundTruth::from(sys);
    in.crash_at = crash_instants(p.crashes, n);
    in.gst = p.net.gst;
    in.run_end = loop.end_time;
    for (ProcIndex i = 0; i < n; ++i) {
      in.trusted.push_back(&fds[i]->trusted_trace());
      in.homega.push_back(&fds[i]->homega_trace());
    }
    res.qos = obs::analyze_qos(in);
    obs::emit_qos(res.qos, p.metrics);
  }
  return res;
}

ConsensusRunResult run_fig9_full_stack(const Fig9FullStackParams& p) {
  const std::size_t n = p.ids.size();
  const std::vector<Value> proposals = ensure_proposals(p.proposals, n);

  std::vector<std::unique_ptr<FdOutputTee>> tees;  // outlives the system
  SystemConfig cfg;
  cfg.ids = p.ids;
  // A synchronous system: every copy delivered within the known bound.
  cfg.timing = std::make_unique<BoundedTiming>(p.delta);
  cfg.crashes = p.crashes;
  cfg.seed = p.seed;
  cfg.trace_capacity = p.trace_capacity;
  cfg.metrics = p.metrics;
  cfg.shards = effective_shards(p.shards, p.monitor, p.window_qos, p.chaos);
  System sys(std::move(cfg));
  if (p.chaos != nullptr) p.chaos->arm(sys);
  if (p.monitor != nullptr && sys.trace().enabled()) {
    p.monitor->set_causal(&sys.causal_session());
  }

  // Adapters owned per node; kept alive alongside the system.
  std::vector<std::unique_ptr<ApToOhp>> ap_ohp(n);
  std::vector<std::unique_ptr<ApToHSigma>> ap_hsig(n);
  std::vector<std::unique_ptr<OhpToHOmega>> ohp_homega(n);
  std::vector<QuorumConsensus*> procs(n);
  std::vector<OHPPolling*> fds(n, nullptr);
  std::vector<HSigmaComponent*> hsigs(n, nullptr);

  for (ProcIndex i = 0; i < n; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    const HOmegaHandle* fd1 = nullptr;
    const HSigmaHandle* fd2 = nullptr;
    if (p.anonymous_ap_stack) {
      // AP ▸ Lemma 2 ▸ Observation 1 gives HΩ; AP ▸ Lemma 3 gives HΣ.
      auto* ap = stack->add(std::make_unique<APComponent>(p.delta + 1));
      ap_ohp[i] = std::make_unique<ApToOhp>(*ap);
      ohp_homega[i] = std::make_unique<OhpToHOmega>(*ap_ohp[i], sys.id_of(i));
      ap_hsig[i] = std::make_unique<ApToHSigma>(*ap);
      fd1 = ohp_homega[i].get();
      fd2 = ap_hsig[i].get();
    } else {
      // Fig. 6 gives HΩ (Corollary 2); the Fig. 7 adapter gives HΣ.
      auto* ohp = stack->add(std::make_unique<OHPPolling>());
      auto* hsig = stack->add(std::make_unique<HSigmaComponent>(p.delta + 1));
      ohp->attach_metrics(p.metrics, proc_labels(i));
      hsig->attach_metrics(p.metrics, proc_labels(i));
      if (FdOutputListener* l = chained_listener(i, p.monitor, p.window_qos, p.chaos, tees)) {
        ohp->set_output_listener(l);
        hsig->set_output_listener(l);
      }
      fds[i] = ohp;
      hsigs[i] = hsig;
      fd1 = ohp;
      fd2 = hsig;
    }
    auto cons = std::make_unique<QuorumConsensus>(QuorumConsensusConfig{proposals[i], 4}, *fd1,
                                                  *fd2);
    cons->attach_metrics(p.metrics, proc_labels(i));
    procs[i] = stack->add(std::move(cons));
    sys.set_process(i, std::move(stack));
  }
  sys.start();
  auto loop = run_until_decided(
      sys,
      [&] {
        for (ProcIndex i = 0; i < n; ++i) {
          if (sys.is_correct(i) && !procs[i]->decision().decided) return false;
        }
        return true;
      },
      p.max_time);
  if (p.window_qos != nullptr) (void)p.window_qos->stats();  // refresh the gauges

  std::vector<DecisionRecord> decisions(n);
  Round max_round = 0;
  std::int64_t max_sr = 0;
  for (ProcIndex i = 0; i < n; ++i) {
    decisions[i] = procs[i]->decision();
    if (sys.is_correct(i)) {
      max_round = std::max(max_round, procs[i]->current_round());
      max_sr = std::max(max_sr, procs[i]->max_sub_round_seen());
    }
  }
  if (p.metrics != nullptr && !p.anonymous_ap_stack) {
    SimTime stab = -1;
    for (ProcIndex i = 0; i < n; ++i) {
      if (sys.is_correct(i)) stab = std::max(stab, fds[i]->trusted_trace().last_change());
    }
    if (stab >= 0) p.metrics->gauge("fd_stabilization_time").set(stab);
  }
  ConsensusRunResult res = finish_result(sys, proposals, decisions, loop, max_sr, max_round);
  if (p.check_hsigma_safety && !p.anonymous_ap_stack) {
    // Perpetual HΣ properties only: they hold at every instant of every
    // admissible run, so they stay meaningful even when a chaos schedule
    // prevents the eventual properties from converging within the run.
    const GroundTruth gt = GroundTruth::from(sys);
    std::vector<const Trajectory<HSigmaSnapshot>*> snaps;
    for (ProcIndex i = 0; i < n; ++i) snaps.push_back(&hsigs[i]->core().trace());
    res.hsigma_safety_check = check_hsigma_safety(gt, snaps);
    if (res.hsigma_safety_check) {
      res.hsigma_safety_check = check_hsigma_monotonicity(snaps);
    }
  }
  if (p.collect_qos && !p.anonymous_ap_stack) {
    obs::QosInput in;
    in.gt = GroundTruth::from(sys);
    in.crash_at = crash_instants(p.crashes, n);
    in.gst = 0;  // synchronous: converge from the start
    in.run_end = loop.end_time;
    for (ProcIndex i = 0; i < n; ++i) {
      in.trusted.push_back(&fds[i]->trusted_trace());
      in.homega.push_back(&fds[i]->homega_trace());
      in.hsigma.push_back(&hsigs[i]->core().trace());
    }
    res.qos = obs::analyze_qos(in);
    obs::emit_qos(res.qos, p.metrics);
  }
  return res;
}

}  // namespace hds
