// Broadcast network: fans a message out along the n directed links (one per
// destination, self included), asking the timing model for each copy's fate.
//
// Hot-path design: one broadcast schedules ONE event per distinct delivery
// time (grouping every same-time copy into a fan-out list) instead of one
// closure per directed link, message types are interned to small-int slots
// (the string-keyed map lookup happens once per distinct type, not once per
// broadcast), and the destination buffers recycle through a pool so the
// steady state allocates nothing per broadcast.
//
// Sharding: the owning System instantiates one Network per shard, sharing
// the per-process RNG rows, broadcast counters and causal sessions (each
// row is only ever touched by the shard that owns its process). Every
// delivery event carries the canonical lane (kDeliver, sender, sender's
// broadcast count) — see sim/lane.h — so the same schedule materializes
// whatever the shard count, and the draws all come from the sender's own
// RNG row, so they are a function of the sender's dispatch order alone.
// Fan-out groups whose destinations live on another shard are handed to the
// cross-send hook instead of the local scheduler; the System routes them
// through SPSC mailboxes and re-injects them at a window barrier.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/link_fault.h"
#include "common/rng.h"
#include "obs/causal.h"
#include "obs/metrics.h"
#include "sim/message.h"
#include "sim/scheduler.h"
#include "sim/timing.h"
#include "sim/trace_sink.h"

namespace hds {

struct NetworkStats {
  std::uint64_t broadcasts = 0;        // broadcast() invocations
  std::uint64_t copies_sent = 0;       // per-link copies put on the wire
  std::uint64_t copies_delivered = 0;  // copies handed to an alive process
  // Loss split by cause: the link itself (timing-model pre-GST loss or an
  // injected link fault) vs the "crash during broadcast" subset semantics
  // on the sender side.
  std::uint64_t copies_lost_link = 0;
  std::uint64_t copies_lost_dying_sender = 0;
  std::uint64_t copies_duplicated = 0;  // extra copies injected by a fault plan
  std::uint64_t copies_to_dead = 0;     // arrived after the destination crashed
  // Estimated wire bytes (v1 codec frame size per copy; 0 for message types
  // with no registered codec). Sent counts every copy put on the wire —
  // including copies the timing model later loses — mirroring what a socket
  // substrate pays; received counts copies handed to an alive process.
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  // String-keyed view of the interned per-type broadcast counts, rebuilt by
  // Network::stats() for JSON snapshots and assertions (the live counters
  // are slot-indexed).
  std::map<std::string, std::uint64_t> broadcasts_by_type;

  [[nodiscard]] std::uint64_t copies_lost() const {
    return copies_lost_link + copies_lost_dying_sender;
  }

  // Delivery latency aggregate over copies handed to alive processes.
  SimTime latency_sum = 0;
  SimTime latency_max = 0;

  [[nodiscard]] double mean_latency() const {
    return copies_delivered == 0 ? 0.0
                                 : static_cast<double>(latency_sum) /
                                       static_cast<double>(copies_delivered);
  }
};

class Network {
 public:
  // `deliver` runs at each copy's delivery time; it must decide whether the
  // destination is still alive (and count copies_to_dead via the setters).
  using Deliver = std::function<void(ProcIndex to, const std::shared_ptr<const Message>&)>;

  // One same-time fan-out group whose destinations live on another shard,
  // handed to the owning System for mailbox routing.
  struct CrossGroup {
    std::size_t dest_shard = 0;
    SimTime at = 0;
    Lane lane = 0;
    std::shared_ptr<const Message> msg;
    std::vector<ProcIndex> tos;
  };
  using CrossSend = std::function<void(CrossGroup)>;

  // `rngs` and `bcast_seq` are the per-process rows owned by the System;
  // broadcast(from, ...) draws from and advances row `from` only. `sink`
  // and `metrics` may be null (that observability surface disabled).
  // `shards`/`shard_index` configure cross-shard routing (1/0 = everything
  // local, the single-queue engine).
  Network(Scheduler& sched, TimingModel& timing, std::vector<Rng>& rngs,
          std::vector<std::uint64_t>& bcast_seq, std::size_t n, Deliver deliver,
          TraceSink* sink = nullptr, obs::MetricsRegistry* metrics = nullptr,
          std::size_t shards = 1, std::size_t shard_index = 0);

  // Sends one copy to every process. If `dying_delivery_prob` < 1 the sender
  // is crashing during this broadcast: each copy independently survives with
  // that probability (the model's "received by an arbitrary subset").
  void broadcast(ProcIndex from, Message m, double dying_delivery_prob = 1.0);

  // Schedules one fan-out group on the local scheduler: at time `at`, lane
  // `lane`, deliver `msg` to every destination in `tos` (ascending). Also
  // the re-injection point for cross-shard groups drained from mailboxes.
  void schedule_fanout(SimTime at, Lane lane, std::shared_ptr<const Message> msg,
                       std::vector<ProcIndex> tos);

  // Installs a fault-plan interposer on every link (null detaches). The
  // pointer is consulted per copy; install before traffic starts.
  void set_interposer(LinkInterposer* li) { interposer_ = li; }

  // Wire-size estimator (net/codec.h via the owning System, which knows the
  // sender identifiers); evaluated once per broadcast, result stamped into
  // meta_wire_bytes. Null disables byte accounting (bytes_* stay 0).
  using ByteMeter = std::function<std::size_t(const Message& m, ProcIndex from)>;
  void set_byte_meter(ByteMeter bm) { byte_meter_ = std::move(bm); }

  // Per-process causal-tracing sessions owned by the System (null = tracing
  // off). When set, every broadcast mints a lineage id from the *sender's*
  // session, stamps its current dispatch parent, and advances its Lamport
  // clock — without consuming any RNG row or changing any schedule, so runs
  // are identical with tracing on or off.
  void set_causal(std::vector<obs::CausalSession>* c) { causal_ = c; }

  // Destination hook for cross-shard fan-out groups (sharded mode only).
  void set_cross_send(CrossSend cs) { cross_send_ = std::move(cs); }

  // Synchronizes the string-keyed by-type view from the interned slots; the
  // result stays valid until the next broadcast of a brand-new type.
  [[nodiscard]] const NetworkStats& stats();
  void note_copy_to_dead() {
    ++stats_.copies_to_dead;
    obs::inc(m_copies_to_dead_);
  }
  void note_delivered(SimTime latency, std::size_t wire_bytes) {
    ++stats_.copies_delivered;
    stats_.latency_sum += latency;
    stats_.latency_max = std::max(stats_.latency_max, latency);
    stats_.bytes_received += wire_bytes;
    obs::inc(m_copies_delivered_);
    obs::inc(m_bytes_received_, wire_bytes);
    obs::observe(m_latency_, latency);
  }

 private:
  // Interned per-message-type state: one slot per distinct type string,
  // resolved once, then addressed by index.
  struct TypeSlot {
    std::string name;
    std::uint64_t broadcasts = 0;
    obs::Counter* counter = nullptr;  // null when metrics are detached
  };

  // A fan-out group: every destination whose copy of the current broadcast
  // arrives at the same instant ON THE SAME SHARD, delivered by a single
  // scheduled event (local) or one mailbox push (cross-shard).
  struct Fanout {
    SimTime at = 0;
    std::size_t dshard = 0;
    std::vector<ProcIndex> tos;
  };

  std::size_t slot_of(const std::string& type);
  std::vector<ProcIndex> take_tos_buffer();
  void add_to_fanout(SimTime at, ProcIndex to);

  Scheduler& sched_;
  TimingModel& timing_;
  std::vector<Rng>& rngs_;
  std::vector<std::uint64_t>& bcast_seq_;
  std::size_t n_;
  Deliver deliver_;
  TraceSink* sink_;
  obs::MetricsRegistry* metrics_;
  std::size_t shards_;
  std::size_t shard_index_;
  LinkInterposer* interposer_ = nullptr;
  std::vector<obs::CausalSession>* causal_ = nullptr;
  ByteMeter byte_meter_;
  CrossSend cross_send_;
  NetworkStats stats_;

  std::vector<TypeSlot> slots_;
  std::size_t last_slot_ = SIZE_MAX;  // fast path: consecutive same-type broadcasts

  std::vector<Fanout> fanout_;     // groups of the in-flight broadcast (reused)
  std::size_t fanout_used_ = 0;    // live prefix of fanout_
  std::vector<std::vector<ProcIndex>> tos_pool_;  // recycled destination buffers

  // Cached instruments; all null when metrics_ is null.
  obs::Counter* m_copies_delivered_ = nullptr;
  obs::Counter* m_copies_lost_link_ = nullptr;
  obs::Counter* m_copies_lost_dying_ = nullptr;
  obs::Counter* m_copies_duplicated_ = nullptr;
  obs::Counter* m_copies_to_dead_ = nullptr;
  obs::Counter* m_bytes_sent_ = nullptr;
  obs::Counter* m_bytes_received_ = nullptr;
  obs::Histogram* m_latency_ = nullptr;
};

}  // namespace hds
