// Transport-level message.
//
// Fidelity note: the paper's model says "the receiving process cannot
// identify the link through which a message was received", and several
// messages (e.g. PH0/PH1/PH2 in Fig. 8) deliberately carry no sender
// identity. The transport therefore exposes nothing about the sender to
// algorithms: whatever identity information an algorithm needs must be part
// of the body, exactly as in the pseudocode. `meta_sender` exists only for
// instrumentation (network statistics, trace debugging) and must never be
// read by protocol code.
#pragma once

#include <any>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace hds {

struct Message {
  std::string type;  // e.g. "COORD", "POLLING"; used for routing and stats
  std::any body;     // algorithm-defined value struct

  // Instrumentation only (see header comment). Filled in by the network.
  ProcIndex meta_sender = 0;
  SimTime meta_sent_at = 0;
  // Estimated v1 wire-frame size of this message (net/codec.h); 0 when the
  // type has no registered codec. Filled in by the substrate so sim/rt/net
  // report comparable byte costs. Instrumentation only, like meta_sender.
  // Deliberately excludes the optional causal-context frame extension so
  // byte accounting is identical with tracing on or off.
  std::size_t meta_wire_bytes = 0;

  // Causal-tracing context (obs/causal.h), stamped by the substrate at the
  // send site when tracing is enabled; all-zero otherwise. Crosses process
  // boundaries via the v1 codec's optional trace-context frame extension.
  // Instrumentation only, like meta_sender.
  std::uint64_t meta_causal_id = 0;      // lineage id minted for this send
  std::uint64_t meta_causal_parent = 0;  // lineage id of the causing event
  std::uint64_t meta_causal_clock = 0;   // Lamport clock at the send

  template <typename T>
  [[nodiscard]] const T* as() const {
    return std::any_cast<T>(&body);
  }
};

template <typename T>
Message make_message(std::string type, T body) {
  return Message{std::move(type), std::move(body), 0};
}

}  // namespace hds
