// Event queues for the discrete-event scheduler.
//
// Both back ends realize the same deterministic total order — events pop in
// (time, lane) order, where the lane is a provenance key (sim/lane.h) that
// is a pure function of the configuration rather than of push order. That
// is what lets a sharded run (sim/system.h with shards > 1) reproduce the
// single-queue order exactly: every shard sorts its own subsequence by the
// same global key. The golden-trace test pins bit-identity across back ends
// and shard counts.
//
//  - CalendarQueue (default): a bucketed calendar / bucket queue. A ring of
//    kSlots buckets covers the time window [base, base + kSlots); each
//    in-window tick maps to exactly one bucket holding {lane, action} items.
//    Items append in push order and the bucket lazily sorts by lane the
//    first time the tick is drained (appends in ascending lane — the common
//    monotone-counter case — keep the sorted flag and skip the sort).
//    Events beyond the window park in a sorted overflow map and migrate
//    into the ring when the window advances. push/pop stay O(1) amortized
//    for the near-future events that dominate simulation workloads, and the
//    bucket vectors recycle their capacity, so the steady state allocates
//    nothing.
//  - BinaryHeapQueue: the original std::priority_queue back end, kept as
//    the executable reference for determinism cross-checks and the speedup
//    benchmark. Orders by (time, lane, push seq) — the push seq only breaks
//    ties between identical lanes, which the lane scheme never produces
//    within one queue.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "common/action.h"
#include "common/types.h"
#include "sim/lane.h"

namespace hds {

class CalendarQueue {
 public:
  // Ring width: covers all short-horizon scheduling (link delays, heartbeat
  // periods, consensus phase timers) without overflow traffic. Power of two
  // so the slot index is a mask.
  static constexpr std::size_t kSlots = 1024;

  CalendarQueue() : ring_(kSlots) {}

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  // Pushes an event at absolute time t with canonical lane `lane`. Caller
  // (the scheduler) guarantees t >= the time of the most recently popped
  // event, and that a push into the currently draining tick carries a lane
  // strictly greater than the lane being executed (see sim/lane.h).
  void push(SimTime t, Lane lane, Action fn) {
    if (t < window_end_ && t >= base_) {
      Bucket& b = ring_[slot_of(t)];
      if (b.sorted && !bucket_empty(b) && lane < b.items.back().lane) b.sorted = false;
      b.items.push_back(Item{lane, std::move(fn)});
      ++window_count_;
      // A peek may have walked the cursor past an empty tick that is now
      // being filled; pull it back so the scan revisits it.
      if (t < cursor_) cursor_ = t;
    } else {
      overflow_[t].push_back(Item{lane, std::move(fn)});
    }
    ++size_;
  }

  // Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() {
    if (window_count_ > 0) {
      advance_cursor();
      return cursor_;
    }
    return overflow_.begin()->first;
  }

  // Pops the earliest event (minimum lane within a tick); sets t and lane.
  // Precondition: !empty().
  Action pop(SimTime& t, Lane& lane) {
    if (window_count_ == 0) advance_window_to(overflow_.begin()->first);
    advance_cursor();
    t = cursor_;
    Bucket& b = ring_[slot_of(cursor_)];
    if (!b.sorted) {
      std::sort(b.items.begin() + static_cast<std::ptrdiff_t>(b.head), b.items.end(),
                [](const Item& x, const Item& y) { return x.lane < y.lane; });
      b.sorted = true;
    }
    Item& it = b.items[b.head++];
    lane = it.lane;
    Action out = std::move(it.fn);
    if (b.head == b.items.size()) {
      b.items.clear();
      b.head = 0;
      b.sorted = true;
    }
    --window_count_;
    --size_;
    return out;
  }

 private:
  struct Item {
    Lane lane;
    Action fn;
  };
  struct Bucket {
    std::vector<Item> items;  // consumed from head; lane-sorted tail once draining
    std::size_t head = 0;
    bool sorted = true;  // [head, end) is in ascending lane order
  };

  [[nodiscard]] std::size_t slot_of(SimTime t) const {
    return static_cast<std::size_t>(t) & (kSlots - 1);
  }

  [[nodiscard]] bool bucket_empty(const Bucket& b) const { return b.head == b.items.size(); }

  // Walks the cursor to the first non-empty in-window bucket.
  // Precondition: window_count_ > 0.
  void advance_cursor() {
    while (bucket_empty(ring_[slot_of(cursor_)])) ++cursor_;
  }

  // Re-bases the (fully drained) window so it starts at `t` and migrates
  // every overflow entry that now falls inside it. Migrated vectors arrive
  // in push order and later direct pushes append after them; the lazy
  // per-tick sort restores the canonical lane order either way.
  void advance_window_to(SimTime t) {
    base_ = t;
    window_end_ = t + static_cast<SimTime>(kSlots);
    cursor_ = t;
    auto it = overflow_.begin();
    while (it != overflow_.end() && it->first < window_end_) {
      Bucket& b = ring_[slot_of(it->first)];
      b.items = std::move(it->second);
      b.head = 0;
      b.sorted = false;
      window_count_ += b.items.size();
      it = overflow_.erase(it);
    }
  }

  std::vector<Bucket> ring_;
  std::map<SimTime, std::vector<Item>> overflow_;  // events with t >= window_end_
  SimTime base_ = 0;
  SimTime window_end_ = static_cast<SimTime>(kSlots);
  SimTime cursor_ = 0;          // current scan position (absolute time)
  std::size_t window_count_ = 0;  // pending events inside the window
  std::size_t size_ = 0;
};

// Reference back end: binary heap over (time, lane, push seq).
class BinaryHeapQueue {
 public:
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }

  void push(SimTime t, Lane lane, Action fn) {
    queue_.push(Ev{t, lane, next_seq_++, std::move(fn)});
  }

  [[nodiscard]] SimTime next_time() const { return queue_.top().at; }

  Action pop(SimTime& t, Lane& lane) {
    // priority_queue::top() is const; the action is move-only, so cast away
    // const for the extraction (the element is popped immediately after).
    Ev& top = const_cast<Ev&>(queue_.top());
    t = top.at;
    lane = top.lane;
    Action out = std::move(top.fn);
    queue_.pop();
    return out;
  }

 private:
  struct Ev {
    SimTime at;
    Lane lane;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.lane != b.lane) return a.lane > b.lane;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hds
