// Event queues for the discrete-event scheduler.
//
// Both back ends realize the same deterministic total order — events pop in
// (time, scheduling order) — so a run is bit-identical whichever one drives
// it (the golden-trace test pins this).
//
//  - CalendarQueue (default): a bucketed calendar / bucket queue. A ring of
//    kSlots buckets covers the time window [base, base + kSlots); each
//    in-window tick maps to exactly one bucket, which is a FIFO vector of
//    actions. Events beyond the window park in a sorted overflow map and
//    migrate into the ring when the window advances. push/pop are O(1) for
//    the near-future events that dominate simulation workloads (heartbeat
//    periods, link delays), versus O(log n) heap churn per event — and the
//    bucket vectors recycle their capacity, so the steady state allocates
//    nothing.
//  - BinaryHeapQueue: the original std::priority_queue back end, kept as
//    the executable reference for determinism cross-checks and the speedup
//    benchmark.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "common/action.h"
#include "common/types.h"

namespace hds {

class CalendarQueue {
 public:
  // Ring width: covers all short-horizon scheduling (link delays, heartbeat
  // periods, consensus phase timers) without overflow traffic. Power of two
  // so the slot index is a mask.
  static constexpr std::size_t kSlots = 1024;

  CalendarQueue() : ring_(kSlots) {}

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  // Pushes an event at absolute time t. Caller (the scheduler) guarantees
  // t >= the time of the most recently popped event.
  void push(SimTime t, Action fn) {
    if (t < window_end_ && t >= base_) {
      ring_[slot_of(t)].items.push_back(std::move(fn));
      ++window_count_;
      // A peek may have walked the cursor past an empty tick that is now
      // being filled; pull it back so the scan revisits it.
      if (t < cursor_) cursor_ = t;
    } else {
      overflow_[t].push_back(std::move(fn));
    }
    ++size_;
  }

  // Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() {
    if (window_count_ > 0) {
      advance_cursor();
      return cursor_;
    }
    return overflow_.begin()->first;
  }

  // Pops the earliest event (FIFO within a tick); sets t to its time.
  // Precondition: !empty().
  Action pop(SimTime& t) {
    if (window_count_ == 0) advance_window_to(overflow_.begin()->first);
    advance_cursor();
    t = cursor_;
    Bucket& b = ring_[slot_of(cursor_)];
    Action out = std::move(b.items[b.head++]);
    if (b.head == b.items.size()) {
      b.items.clear();
      b.head = 0;
    }
    --window_count_;
    --size_;
    return out;
  }

 private:
  struct Bucket {
    std::vector<Action> items;  // FIFO: consumed from head, appended at back
    std::size_t head = 0;
  };

  [[nodiscard]] std::size_t slot_of(SimTime t) const {
    return static_cast<std::size_t>(t) & (kSlots - 1);
  }

  [[nodiscard]] bool bucket_empty(const Bucket& b) const { return b.head == b.items.size(); }

  // Walks the cursor to the first non-empty in-window bucket.
  // Precondition: window_count_ > 0.
  void advance_cursor() {
    while (bucket_empty(ring_[slot_of(cursor_)])) ++cursor_;
  }

  // Re-bases the (fully drained) window so it starts at `t` and migrates
  // every overflow entry that now falls inside it. The migrated vectors are
  // in push order, and later direct pushes append after them, so the
  // FIFO-within-tick order is preserved across the window boundary.
  void advance_window_to(SimTime t) {
    base_ = t;
    window_end_ = t + static_cast<SimTime>(kSlots);
    cursor_ = t;
    auto it = overflow_.begin();
    while (it != overflow_.end() && it->first < window_end_) {
      Bucket& b = ring_[slot_of(it->first)];
      b.items = std::move(it->second);
      b.head = 0;
      window_count_ += b.items.size();
      it = overflow_.erase(it);
    }
  }

  std::vector<Bucket> ring_;
  std::map<SimTime, std::vector<Action>> overflow_;  // events with t >= window_end_
  SimTime base_ = 0;
  SimTime window_end_ = static_cast<SimTime>(kSlots);
  SimTime cursor_ = 0;          // current scan position (absolute time)
  std::size_t window_count_ = 0;  // pending events inside the window
  std::size_t size_ = 0;
};

// Reference back end: the pre-calendar binary heap over (time, seq).
class BinaryHeapQueue {
 public:
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }

  void push(SimTime t, Action fn) { queue_.push(Ev{t, next_seq_++, std::move(fn)}); }

  [[nodiscard]] SimTime next_time() const { return queue_.top().at; }

  Action pop(SimTime& t) {
    // priority_queue::top() is const; the action is move-only, so cast away
    // const for the extraction (the element is popped immediately after).
    Ev& top = const_cast<Ev&>(queue_.top());
    t = top.at;
    Action out = std::move(top.fn);
    queue_.pop();
    return out;
  }

 private:
  struct Ev {
    SimTime at;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hds
