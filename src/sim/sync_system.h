// Lock-step synchronous engine: the HSS[...] model.
//
// Each step s has two phases. First every process alive at step s produces
// its broadcasts (step_send). Then every message broadcast in step s is
// delivered to every process still alive (step_recv) — "wait for the
// messages sent in this synchronous step". A process whose crash is
// scheduled at step s executes step_send(s), each copy of its messages
// survives independently with dying_copy_delivery_prob (crash during
// broadcast), and it never executes step_recv again.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/multiset.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/message.h"

namespace hds {

class SyncProcess {
 public:
  virtual ~SyncProcess() = default;
  virtual std::vector<Message> step_send(std::size_t step) = 0;
  virtual void step_recv(std::size_t step, const std::vector<Message>& delivered) = 0;
};

struct SyncCrashPlan {
  std::size_t at_step = 0;
  bool partial_broadcast = false;
};

struct SyncConfig {
  std::vector<Id> ids;
  std::vector<std::optional<SyncCrashPlan>> crashes;  // empty, or size n
  std::uint64_t seed = 1;
  double dying_copy_delivery_prob = 0.5;
};

class SyncSystem {
 public:
  explicit SyncSystem(SyncConfig cfg);

  void set_process(ProcIndex i, std::unique_ptr<SyncProcess> p);

  // Runs `count` further synchronous steps.
  void run_steps(std::size_t count);

  [[nodiscard]] std::size_t steps_run() const { return step_; }
  [[nodiscard]] std::size_t n() const { return ids_.size(); }
  [[nodiscard]] Id id_of(ProcIndex i) const { return ids_.at(i); }

  [[nodiscard]] bool is_correct(ProcIndex i) const { return !crashes_.at(i).has_value(); }
  // Alive during step s: has not crashed at an earlier step (a process
  // crashing at step s is still alive while sending in s).
  [[nodiscard]] bool alive_in_step(ProcIndex i, std::size_t s) const {
    return !crashes_.at(i) || s <= crashes_.at(i)->at_step;
  }
  [[nodiscard]] std::vector<ProcIndex> correct_set() const;
  [[nodiscard]] Multiset<Id> correct_ids() const;
  [[nodiscard]] Multiset<Id> all_ids() const { return Multiset<Id>(ids_.begin(), ids_.end()); }
  [[nodiscard]] std::size_t alive_count_in_step(std::size_t s) const;

  [[nodiscard]] SyncProcess& process(ProcIndex i) { return *procs_.at(i); }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  std::vector<Id> ids_;
  std::vector<std::optional<SyncCrashPlan>> crashes_;
  double dying_copy_delivery_prob_;
  Rng rng_;
  std::vector<std::unique_ptr<SyncProcess>> procs_;
  std::size_t step_ = 0;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace hds
