// Per-shard trace sink: records TraceEvents either directly into the run's
// TraceLog ring (single-shard mode — zero overhead over the old engine) or
// into a per-shard keyed buffer that System merges into the ring at window
// barriers (sharded mode).
//
// The merge key is (at, lane, sub, j):
//  - `at`, `lane`: the (time, lane) of the event being dispatched when the
//    record happened — i.e. the event's position in the canonical total
//    order that shards=1 executes literally.
//  - `sub`: disambiguates records made *inside* one dispatched event, e.g.
//    a broadcast fan-out delivering to several same-tick destinations —
//    Network sets it to the destination being handled (destinations ascend
//    within a fan-out group), 0 otherwise.
//  - `j`: arrival counter within one (at, lane, sub) cell, for events that
//    record several entries for the same destination (e.g. a delivery plus
//    chaos duplicates); buffer order within a cell is recording order.
// Sorting the merged buffers by this key reproduces the exact sequence a
// single-shard run feeds the ring — including ring eviction and dropped
// counts, which is why the merge goes through TraceLog::record and not a
// bulk copy.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/lane.h"
#include "sim/tracelog.h"

namespace hds {

class TraceSink {
 public:
  struct Keyed {
    SimTime at = 0;
    Lane lane = 0;
    ProcIndex sub = 0;
    std::uint32_t j = 0;
    TraceEvent ev;
  };

  // Direct mode: writes go straight to `log` (may be a disabled log).
  explicit TraceSink(TraceLog* log) : log_(log) {}

  [[nodiscard]] bool enabled() const { return log_ != nullptr && log_->enabled(); }

  // Switches to buffered (sharded) mode: records accumulate locally.
  void set_buffered(bool buffered) { buffered_ = buffered; }

  // Sub-key for subsequent records within the current dispatch; Network
  // sets this to each fan-out destination before recording for it.
  void set_sub(ProcIndex sub) { sub_ = sub; }

  void record(SimTime at, Lane lane, TraceEvent::Kind kind, ProcIndex proc,
              std::string msg_type = {}, std::uint64_t causal_id = 0,
              std::uint64_t causal_parent = 0) {
    if (!enabled()) return;
    if (!buffered_) {
      log_->record(at, kind, proc, std::move(msg_type), causal_id, causal_parent);
      return;
    }
    // Self-contained j reset: consecutive records in the same (at, lane,
    // sub) cell count up; any key change resets. Two different dispatched
    // events always differ in (at, lane), so a stale sub never collides.
    std::uint32_t j = 0;
    if (!buf_.empty()) {
      const Keyed& p = buf_.back();
      if (p.at == at && p.lane == lane && p.sub == sub_) j = p.j + 1;
    }
    buf_.push_back(Keyed{at, lane, sub_, j,
                         TraceEvent{at, kind, proc, std::move(msg_type), causal_id, causal_parent}});
  }

  [[nodiscard]] std::vector<Keyed>& buffer() { return buf_; }

 private:
  TraceLog* log_;
  bool buffered_ = false;
  ProcIndex sub_ = 0;
  std::vector<Keyed> buf_;
};

}  // namespace hds
