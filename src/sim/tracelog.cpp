#include "sim/tracelog.h"

#include <sstream>

namespace hds {

const char* TraceEvent::kind_name(Kind k) {
  switch (k) {
    case Kind::kStart:
      return "start";
    case Kind::kBroadcast:
      return "broadcast";
    case Kind::kDeliver:
      return "deliver";
    case Kind::kLost:
      return "lost";
    case Kind::kLostDying:
      return "lost-dying";
    case Kind::kDuplicate:
      return "duplicate";
    case Kind::kToDead:
      return "to-dead";
    case Kind::kTimer:
      return "timer";
    case Kind::kCrash:
      return "crash";
    case Kind::kMonitorWarn:
      return "monitor-warn";
    case Kind::kMonitorViolation:
      return "monitor-violation";
  }
  return "?";
}

void TraceLog::record(SimTime at, TraceEvent::Kind kind, ProcIndex proc, std::string msg_type,
                      std::uint64_t causal_id, std::uint64_t causal_parent) {
  if (!enabled()) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(TraceEvent{at, kind, proc, std::move(msg_type), causal_id, causal_parent});
    return;
  }
  ring_[next_] = TraceEvent{at, kind, proc, std::move(msg_type), causal_id, causal_parent};
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceLog::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for_each([&out](const TraceEvent& e) { out.push_back(e); });
  return out;
}

std::vector<TraceEvent> TraceLog::drain_since(std::uint64_t& cursor) const {
  const std::uint64_t total = recorded();
  std::vector<TraceEvent> out;
  if (cursor >= total) {
    cursor = total;
    return out;
  }
  // The ring retains events [dropped_, total); anything older than the
  // cursor but already evicted is unrecoverable (counted in dropped()).
  const std::uint64_t first = cursor > dropped_ ? cursor : dropped_;
  out.reserve(static_cast<std::size_t>(total - first));
  std::uint64_t seq = dropped_;
  for_each([&](const TraceEvent& e) {
    if (seq++ >= first) out.push_back(e);
  });
  cursor = total;
  return out;
}

std::vector<TraceEvent> TraceLog::by_proc(ProcIndex p) const {
  std::vector<TraceEvent> out;
  for_each([&](const TraceEvent& e) {
    if (e.proc == p) out.push_back(e);
  });
  return out;
}

std::vector<TraceEvent> TraceLog::by_type(const std::string& msg_type) const {
  std::vector<TraceEvent> out;
  for_each([&](const TraceEvent& e) {
    if (e.msg_type == msg_type) out.push_back(e);
  });
  return out;
}

std::map<std::string, std::size_t> TraceLog::counts_by_type(TraceEvent::Kind kind) const {
  std::map<std::string, std::size_t> out;
  for_each([&](const TraceEvent& e) {
    if (e.kind == kind) ++out[e.msg_type];
  });
  return out;
}

std::string TraceLog::dump(std::size_t max_lines) const {
  std::ostringstream os;
  if (dropped_ > 0) os << "[ring dropped " << dropped_ << " earlier events]\n";
  std::size_t lines = 0;
  bool elided = false;
  for_each([&](const TraceEvent& e) {
    if (elided) return;
    if (lines++ >= max_lines) {
      os << "... (" << ring_.size() - max_lines << " more)\n";
      elided = true;
      return;
    }
    os << 't' << e.at << " p" << e.proc << ' ' << TraceEvent::kind_name(e.kind);
    if (!e.msg_type.empty()) os << ' ' << e.msg_type;
    if (e.causal_id != 0) {
      // Lineage as node:seq (the obs/causal.h id layout), plus the parent.
      os << " ~" << (e.causal_id >> 48) << ':' << (e.causal_id & 0xFFFFFFFFFFFFull);
      if (e.causal_parent != 0) {
        os << "<-" << (e.causal_parent >> 48) << ':' << (e.causal_parent & 0xFFFFFFFFFFFFull);
      }
    }
    os << '\n';
  });
  return os.str();
}

}  // namespace hds
