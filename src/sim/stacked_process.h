// StackedProcess multiplexes several protocol components on one node.
//
// A real node runs its failure-detector implementation and the consensus
// algorithm side by side over the same broadcast primitive. Components are
// ordinary Process objects; every message is offered to every component
// (each ignores types it does not own), while timers are routed to the
// component that armed them.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "sim/process.h"

namespace hds {

class StackedProcess final : public Process {
 public:
  // Returns a non-owning pointer so callers can wire components together
  // (e.g. hand the consensus component a handle into the FD component).
  template <typename T>
  T* add(std::unique_ptr<T> component) {
    T* raw = component.get();
    components_.push_back(std::move(component));
    return raw;
  }

  void on_start(Env& env) override;
  void on_message(Env& env, const Message& m) override;
  void on_timer(Env& env, TimerId id) override;

 private:
  class RoutingEnv;

  std::vector<std::unique_ptr<Process>> components_;
  std::map<TimerId, std::size_t> timer_owner_;
};

}  // namespace hds
