#include "sim/network.h"

namespace hds {

void Network::broadcast(ProcIndex from, Message m, double dying_delivery_prob) {
  ++stats_.broadcasts;
  ++stats_.broadcasts_by_type[m.type];
  m.meta_sender = from;
  m.meta_sent_at = sched_.now();
  auto shared = std::make_shared<const Message>(std::move(m));
  const SimTime sent = sched_.now();
  if (trace_ != nullptr) trace_->record(sent, TraceEvent::Kind::kBroadcast, from, shared->type);
  for (ProcIndex to = 0; to < n_; ++to) {
    ++stats_.copies_sent;
    if (dying_delivery_prob < 1.0 && !rng_.chance(dying_delivery_prob)) {
      ++stats_.copies_lost;
      if (trace_ != nullptr) trace_->record(sent, TraceEvent::Kind::kLost, to, shared->type);
      continue;
    }
    auto when = timing_.delivery_at(sent, from, to, shared->type, rng_);
    if (!when) {
      ++stats_.copies_lost;
      if (trace_ != nullptr) trace_->record(sent, TraceEvent::Kind::kLost, to, shared->type);
      continue;
    }
    sched_.at(*when, [this, to, shared] { deliver_(to, shared); });
  }
}

}  // namespace hds
