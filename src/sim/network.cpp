#include "sim/network.h"

namespace hds {

Network::Network(Scheduler& sched, TimingModel& timing, std::vector<Rng>& rngs,
                 std::vector<std::uint64_t>& bcast_seq, std::size_t n, Deliver deliver,
                 TraceSink* sink, obs::MetricsRegistry* metrics, std::size_t shards,
                 std::size_t shard_index)
    : sched_(sched),
      timing_(timing),
      rngs_(rngs),
      bcast_seq_(bcast_seq),
      n_(n),
      deliver_(std::move(deliver)),
      sink_(sink),
      metrics_(metrics),
      shards_(shards),
      shard_index_(shard_index) {
  if (metrics_ != nullptr) {
    m_copies_delivered_ = &metrics_->counter("net_copies_delivered_total");
    m_copies_lost_link_ = &metrics_->counter("net_copies_lost_link_total");
    m_copies_lost_dying_ = &metrics_->counter("net_copies_lost_dying_total");
    m_copies_duplicated_ = &metrics_->counter("net_copies_duplicated_total");
    m_copies_to_dead_ = &metrics_->counter("net_copies_to_dead_total");
    m_bytes_sent_ = &metrics_->counter("net_bytes_sent_total");
    m_bytes_received_ = &metrics_->counter("net_bytes_received_total");
    m_latency_ = &metrics_->histogram("net_delivery_latency", obs::time_buckets());
  }
}

std::size_t Network::slot_of(const std::string& type) {
  if (last_slot_ != SIZE_MAX && slots_[last_slot_].name == type) return last_slot_;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].name == type) {
      last_slot_ = s;
      return s;
    }
  }
  TypeSlot slot;
  slot.name = type;
  if (metrics_ != nullptr) {
    slot.counter = &metrics_->counter("net_broadcasts_total", {{"type", type}});
  }
  slots_.push_back(std::move(slot));
  last_slot_ = slots_.size() - 1;
  return last_slot_;
}

std::vector<ProcIndex> Network::take_tos_buffer() {
  if (tos_pool_.empty()) return {};
  std::vector<ProcIndex> buf = std::move(tos_pool_.back());
  tos_pool_.pop_back();
  buf.clear();
  return buf;
}

void Network::add_to_fanout(SimTime at, ProcIndex to) {
  // Destinations iterate in ascending order, so groups fill in ascending
  // destination order too — the canonical sub-order the trace merge keys on.
  // Distinct (time, shard) groups per broadcast are few (bounded by the
  // timing model's delay spread times the shard count), so a linear scan
  // beats any map.
  const std::size_t dshard = shards_ > 1 ? static_cast<std::size_t>(to) % shards_ : 0;
  for (std::size_t g = 0; g < fanout_used_; ++g) {
    if (fanout_[g].at == at && fanout_[g].dshard == dshard) {
      fanout_[g].tos.push_back(to);
      return;
    }
  }
  if (fanout_used_ == fanout_.size()) fanout_.emplace_back();
  Fanout& f = fanout_[fanout_used_++];
  f.at = at;
  f.dshard = dshard;
  f.tos = take_tos_buffer();
  f.tos.push_back(to);
}

void Network::schedule_fanout(SimTime at, Lane lane, std::shared_ptr<const Message> msg,
                              std::vector<ProcIndex> tos) {
  // One scheduled event delivers every same-time copy in destination order
  // and recycles its destination buffer. The closure is exactly the Action
  // inline-capture budget; the lane travels via the scheduler, not the
  // capture (see Scheduler::current_lane).
  sched_.at_lane(at, lane, [this, msg = std::move(msg), tos = std::move(tos)]() mutable {
    for (const ProcIndex to : tos) {
      if (sink_ != nullptr) sink_->set_sub(to);
      deliver_(to, msg);
    }
    tos.clear();
    tos_pool_.push_back(std::move(tos));
  });
}

void Network::broadcast(ProcIndex from, Message m, double dying_delivery_prob) {
  ++stats_.broadcasts;
  {
    TypeSlot& slot = slots_[slot_of(m.type)];
    ++slot.broadcasts;
    if (slot.counter != nullptr) slot.counter->inc();
  }
  m.meta_sender = from;
  m.meta_sent_at = sched_.now();
  if (byte_meter_) m.meta_wire_bytes = byte_meter_(m, from);
  if (causal_ != nullptr) {
    obs::CausalSession& cs = (*causal_)[from];
    m.meta_causal_parent = cs.parent;
    m.meta_causal_id = cs.fresh();
    m.meta_causal_clock = cs.tick();
  }
  // Canonical lane of every delivery of this broadcast: the sender's own
  // broadcast count, advanced in the sender's dispatch order — which is
  // itself a pure function of the (time, lane) total order, so the lane is
  // identical at any shard count.
  const Lane lane = make_lane(LaneClass::kDeliver, from, bcast_seq_[from]++);
  auto shared = std::make_shared<const Message>(std::move(m));
  const SimTime sent = sched_.now();
  const bool traced = sink_ != nullptr && sink_->enabled();
  if (traced) {
    sink_->record(sent, sched_.current_lane(), TraceEvent::Kind::kBroadcast, from, shared->type,
                  shared->meta_causal_id, shared->meta_causal_parent);
  }
  Rng& rng = rngs_[from];
  fanout_used_ = 0;
  for (ProcIndex to = 0; to < n_; ++to) {
    ++stats_.copies_sent;
    if (dying_delivery_prob < 1.0 && !rng.chance(dying_delivery_prob)) {
      ++stats_.copies_lost_dying_sender;
      obs::inc(m_copies_lost_dying_);
      if (traced) {
        sink_->record(sent, sched_.current_lane(), TraceEvent::Kind::kLostDying, to, shared->type,
                      shared->meta_causal_id, shared->meta_causal_parent);
      }
      continue;
    }
    CopyVerdict verdict;
    if (interposer_ != nullptr) verdict = interposer_->on_copy(sent, from, to, shared->type);
    if (verdict.drop) {
      ++stats_.copies_lost_link;
      obs::inc(m_copies_lost_link_);
      if (traced) {
        sink_->record(sent, sched_.current_lane(), TraceEvent::Kind::kLost, to, shared->type,
                      shared->meta_causal_id, shared->meta_causal_parent);
      }
      continue;
    }
    stats_.bytes_sent += shared->meta_wire_bytes;
    obs::inc(m_bytes_sent_, shared->meta_wire_bytes);
    auto when = timing_.delivery_at(sent, from, to, shared->type, rng);
    if (!when) {
      ++stats_.copies_lost_link;
      obs::inc(m_copies_lost_link_);
      if (traced) {
        sink_->record(sent, sched_.current_lane(), TraceEvent::Kind::kLost, to, shared->type,
                      shared->meta_causal_id, shared->meta_causal_parent);
      }
      continue;
    }
    const SimTime arrive = *when + verdict.extra_delay;
    add_to_fanout(arrive, to);
    for (std::size_t d = 0; d < verdict.duplicates; ++d) {
      ++stats_.copies_duplicated;
      stats_.bytes_sent += shared->meta_wire_bytes;
      obs::inc(m_copies_duplicated_);
      obs::inc(m_bytes_sent_, shared->meta_wire_bytes);
      if (traced) {
        sink_->record(sent, sched_.current_lane(), TraceEvent::Kind::kDuplicate, to, shared->type,
                      shared->meta_causal_id, shared->meta_causal_parent);
      }
      const SimTime trail =
          verdict.duplicate_spread > 0 ? rng.uniform(1, verdict.duplicate_spread) : 1;
      add_to_fanout(arrive + trail, to);
    }
  }
  for (std::size_t g = 0; g < fanout_used_; ++g) {
    Fanout& f = fanout_[g];
    if (f.dshard == shard_index_) {
      schedule_fanout(f.at, lane, shared, std::move(f.tos));
    } else {
      cross_send_(CrossGroup{f.dshard, f.at, lane, shared, std::move(f.tos)});
    }
  }
}

const NetworkStats& Network::stats() {
  for (const TypeSlot& slot : slots_) stats_.broadcasts_by_type[slot.name] = slot.broadcasts;
  return stats_;
}

}  // namespace hds
