#include "sim/network.h"

namespace hds {

Network::Network(Scheduler& sched, TimingModel& timing, Rng& rng, std::size_t n, Deliver deliver,
                 TraceLog* trace, obs::MetricsRegistry* metrics)
    : sched_(sched),
      timing_(timing),
      rng_(rng),
      n_(n),
      deliver_(std::move(deliver)),
      trace_(trace),
      metrics_(metrics) {
  if (metrics_ != nullptr) {
    m_copies_delivered_ = &metrics_->counter("net_copies_delivered_total");
    m_copies_lost_link_ = &metrics_->counter("net_copies_lost_link_total");
    m_copies_lost_dying_ = &metrics_->counter("net_copies_lost_dying_total");
    m_copies_duplicated_ = &metrics_->counter("net_copies_duplicated_total");
    m_copies_to_dead_ = &metrics_->counter("net_copies_to_dead_total");
    m_bytes_sent_ = &metrics_->counter("net_bytes_sent_total");
    m_bytes_received_ = &metrics_->counter("net_bytes_received_total");
    m_latency_ = &metrics_->histogram("net_delivery_latency", obs::time_buckets());
  }
}

std::size_t Network::slot_of(const std::string& type) {
  if (last_slot_ != SIZE_MAX && slots_[last_slot_].name == type) return last_slot_;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].name == type) {
      last_slot_ = s;
      return s;
    }
  }
  TypeSlot slot;
  slot.name = type;
  if (metrics_ != nullptr) {
    slot.counter = &metrics_->counter("net_broadcasts_total", {{"type", type}});
  }
  slots_.push_back(std::move(slot));
  last_slot_ = slots_.size() - 1;
  return last_slot_;
}

std::vector<ProcIndex> Network::take_tos_buffer() {
  if (tos_pool_.empty()) return {};
  std::vector<ProcIndex> buf = std::move(tos_pool_.back());
  tos_pool_.pop_back();
  buf.clear();
  return buf;
}

void Network::add_to_fanout(SimTime at, ProcIndex to) {
  // Distinct delivery times per broadcast are few (bounded by the timing
  // model's delay spread), so a linear scan beats any map. Groups are kept
  // in first-copy order, which is exactly the old per-link seq order.
  for (std::size_t g = 0; g < fanout_used_; ++g) {
    if (fanout_[g].at == at) {
      fanout_[g].tos.push_back(to);
      return;
    }
  }
  if (fanout_used_ == fanout_.size()) fanout_.emplace_back();
  Fanout& f = fanout_[fanout_used_++];
  f.at = at;
  f.tos = take_tos_buffer();
  f.tos.push_back(to);
}

void Network::broadcast(ProcIndex from, Message m, double dying_delivery_prob) {
  ++stats_.broadcasts;
  {
    TypeSlot& slot = slots_[slot_of(m.type)];
    ++slot.broadcasts;
    if (slot.counter != nullptr) slot.counter->inc();
  }
  m.meta_sender = from;
  m.meta_sent_at = sched_.now();
  if (byte_meter_) m.meta_wire_bytes = byte_meter_(m, from);
  if (causal_ != nullptr) {
    m.meta_causal_parent = causal_->parent;
    m.meta_causal_id = causal_->fresh();
    m.meta_causal_clock = causal_->tick();
  }
  auto shared = std::make_shared<const Message>(std::move(m));
  const SimTime sent = sched_.now();
  if (trace_ != nullptr) {
    trace_->record(sent, TraceEvent::Kind::kBroadcast, from, shared->type,
                   shared->meta_causal_id, shared->meta_causal_parent);
  }
  fanout_used_ = 0;
  for (ProcIndex to = 0; to < n_; ++to) {
    ++stats_.copies_sent;
    if (dying_delivery_prob < 1.0 && !rng_.chance(dying_delivery_prob)) {
      ++stats_.copies_lost_dying_sender;
      obs::inc(m_copies_lost_dying_);
      if (trace_ != nullptr) {
        trace_->record(sent, TraceEvent::Kind::kLostDying, to, shared->type,
                       shared->meta_causal_id, shared->meta_causal_parent);
      }
      continue;
    }
    CopyVerdict verdict;
    if (interposer_ != nullptr) verdict = interposer_->on_copy(sent, from, to, shared->type);
    if (verdict.drop) {
      ++stats_.copies_lost_link;
      obs::inc(m_copies_lost_link_);
      if (trace_ != nullptr) {
        trace_->record(sent, TraceEvent::Kind::kLost, to, shared->type,
                       shared->meta_causal_id, shared->meta_causal_parent);
      }
      continue;
    }
    stats_.bytes_sent += shared->meta_wire_bytes;
    obs::inc(m_bytes_sent_, shared->meta_wire_bytes);
    auto when = timing_.delivery_at(sent, from, to, shared->type, rng_);
    if (!when) {
      ++stats_.copies_lost_link;
      obs::inc(m_copies_lost_link_);
      if (trace_ != nullptr) {
        trace_->record(sent, TraceEvent::Kind::kLost, to, shared->type,
                       shared->meta_causal_id, shared->meta_causal_parent);
      }
      continue;
    }
    const SimTime arrive = *when + verdict.extra_delay;
    add_to_fanout(arrive, to);
    for (std::size_t d = 0; d < verdict.duplicates; ++d) {
      ++stats_.copies_duplicated;
      stats_.bytes_sent += shared->meta_wire_bytes;
      obs::inc(m_copies_duplicated_);
      obs::inc(m_bytes_sent_, shared->meta_wire_bytes);
      if (trace_ != nullptr) {
        trace_->record(sent, TraceEvent::Kind::kDuplicate, to, shared->type,
                       shared->meta_causal_id, shared->meta_causal_parent);
      }
      const SimTime trail =
          verdict.duplicate_spread > 0 ? rng_.uniform(1, verdict.duplicate_spread) : 1;
      add_to_fanout(arrive + trail, to);
    }
  }
  // One scheduled event per distinct delivery time; the event delivers every
  // same-time copy in link order and recycles its destination buffer.
  for (std::size_t g = 0; g < fanout_used_; ++g) {
    Fanout& f = fanout_[g];
    sched_.at(f.at, [this, shared, tos = std::move(f.tos)]() mutable {
      for (const ProcIndex to : tos) deliver_(to, shared);
      tos.clear();
      tos_pool_.push_back(std::move(tos));
    });
  }
}

const NetworkStats& Network::stats() {
  for (const TypeSlot& slot : slots_) stats_.broadcasts_by_type[slot.name] = slot.broadcasts;
  return stats_;
}

}  // namespace hds
