#include "sim/network.h"

namespace hds {

Network::Network(Scheduler& sched, TimingModel& timing, Rng& rng, std::size_t n, Deliver deliver,
                 TraceLog* trace, obs::MetricsRegistry* metrics)
    : sched_(sched),
      timing_(timing),
      rng_(rng),
      n_(n),
      deliver_(std::move(deliver)),
      trace_(trace),
      metrics_(metrics) {
  if (metrics_ != nullptr) {
    m_copies_delivered_ = &metrics_->counter("net_copies_delivered_total");
    m_copies_lost_link_ = &metrics_->counter("net_copies_lost_link_total");
    m_copies_lost_dying_ = &metrics_->counter("net_copies_lost_dying_total");
    m_copies_duplicated_ = &metrics_->counter("net_copies_duplicated_total");
    m_copies_to_dead_ = &metrics_->counter("net_copies_to_dead_total");
    m_bytes_sent_ = &metrics_->counter("net_bytes_sent_total");
    m_bytes_received_ = &metrics_->counter("net_bytes_received_total");
    m_latency_ = &metrics_->histogram("net_delivery_latency", obs::time_buckets());
  }
}

void Network::broadcast(ProcIndex from, Message m, double dying_delivery_prob) {
  ++stats_.broadcasts;
  ++stats_.broadcasts_by_type[m.type];
  if (metrics_ != nullptr) {
    auto [it, inserted] = m_bcast_by_type_.try_emplace(m.type, nullptr);
    if (inserted) it->second = &metrics_->counter("net_broadcasts_total", {{"type", m.type}});
    it->second->inc();
  }
  m.meta_sender = from;
  m.meta_sent_at = sched_.now();
  if (byte_meter_) m.meta_wire_bytes = byte_meter_(m, from);
  auto shared = std::make_shared<const Message>(std::move(m));
  const SimTime sent = sched_.now();
  if (trace_ != nullptr) trace_->record(sent, TraceEvent::Kind::kBroadcast, from, shared->type);
  for (ProcIndex to = 0; to < n_; ++to) {
    ++stats_.copies_sent;
    if (dying_delivery_prob < 1.0 && !rng_.chance(dying_delivery_prob)) {
      ++stats_.copies_lost_dying_sender;
      obs::inc(m_copies_lost_dying_);
      if (trace_ != nullptr) trace_->record(sent, TraceEvent::Kind::kLostDying, to, shared->type);
      continue;
    }
    CopyVerdict verdict;
    if (interposer_ != nullptr) verdict = interposer_->on_copy(sent, from, to, shared->type);
    if (verdict.drop) {
      ++stats_.copies_lost_link;
      obs::inc(m_copies_lost_link_);
      if (trace_ != nullptr) trace_->record(sent, TraceEvent::Kind::kLost, to, shared->type);
      continue;
    }
    stats_.bytes_sent += shared->meta_wire_bytes;
    obs::inc(m_bytes_sent_, shared->meta_wire_bytes);
    auto when = timing_.delivery_at(sent, from, to, shared->type, rng_);
    if (!when) {
      ++stats_.copies_lost_link;
      obs::inc(m_copies_lost_link_);
      if (trace_ != nullptr) trace_->record(sent, TraceEvent::Kind::kLost, to, shared->type);
      continue;
    }
    const SimTime arrive = *when + verdict.extra_delay;
    sched_.at(arrive, [this, to, shared] { deliver_(to, shared); });
    for (std::size_t d = 0; d < verdict.duplicates; ++d) {
      ++stats_.copies_duplicated;
      stats_.bytes_sent += shared->meta_wire_bytes;
      obs::inc(m_copies_duplicated_);
      obs::inc(m_bytes_sent_, shared->meta_wire_bytes);
      if (trace_ != nullptr) trace_->record(sent, TraceEvent::Kind::kDuplicate, to, shared->type);
      const SimTime trail =
          verdict.duplicate_spread > 0 ? rng_.uniform(1, verdict.duplicate_spread) : 1;
      sched_.at(arrive + trail, [this, to, shared] { deliver_(to, shared); });
    }
  }
}

}  // namespace hds
