// Discrete-event scheduler: the simulator's global clock and event queue.
//
// Events at equal times run in scheduling order (a deterministic total
// order), so a run is a pure function of the configuration seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace hds {

class Scheduler {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  // Schedules `fn` at absolute time t (>= now).
  void at(SimTime t, Action fn);

  // Schedules `fn` after `delay` time units.
  void after(SimTime delay, Action fn) { at(now_ + delay, std::move(fn)); }

  // Runs the next event; returns false if the queue is empty.
  bool step();

  // Runs every event with time <= t, then advances the clock to t.
  void run_until(SimTime t);

  // Runs until the queue drains or `max_events` have executed.
  void run_all(std::uint64_t max_events = UINT64_MAX);

 private:
  struct Ev {
    SimTime at;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hds
