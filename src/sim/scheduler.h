// Discrete-event scheduler: the simulator's global clock and event queue.
//
// Events at equal times run in scheduling order (a deterministic total
// order), so a run is a pure function of the configuration seed.
//
// The queue is a bucketed calendar queue by default (see event_queue.h);
// the original binary-heap back end stays available behind QueueKind so
// determinism tests and the engine benchmark can cross-check the two —
// both realize the identical event order.
#pragma once

#include <cstdint>

#include "common/action.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace hds {

enum class QueueKind : std::uint8_t {
  kCalendar,  // bucketed calendar queue (default)
  kHeap,      // reference std::priority_queue back end
};

class Scheduler {
 public:
  using Action = hds::Action;

  explicit Scheduler(QueueKind kind = QueueKind::kCalendar) : kind_(kind) {}

  [[nodiscard]] QueueKind queue_kind() const { return kind_; }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const {
    return kind_ == QueueKind::kCalendar ? calendar_.empty() : heap_.empty();
  }
  [[nodiscard]] std::size_t pending() const {
    return kind_ == QueueKind::kCalendar ? calendar_.size() : heap_.size();
  }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  // Schedules `fn` at absolute time t (>= now).
  void at(SimTime t, Action fn);

  // Schedules `fn` after `delay` time units.
  void after(SimTime delay, Action fn) { at(now_ + delay, std::move(fn)); }

  // Runs the next event; returns false if the queue is empty.
  bool step();

  // Runs every event with time <= t, then advances the clock to t.
  void run_until(SimTime t);

  // Runs until the queue drains or `max_events` have executed.
  void run_all(std::uint64_t max_events = UINT64_MAX);

 private:
  [[nodiscard]] SimTime next_time() {
    return kind_ == QueueKind::kCalendar ? calendar_.next_time() : heap_.next_time();
  }

  QueueKind kind_;
  CalendarQueue calendar_;
  BinaryHeapQueue heap_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hds
