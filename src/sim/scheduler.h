// Discrete-event scheduler: the simulator's clock and event queue.
//
// Events run in (time, lane) order — the lane (sim/lane.h) is a provenance
// key derived from what caused the event, not from push order, so the total
// order is a pure function of the configuration seed AND reconstructible by
// a sharded run: each shard executes its own subsequence of the same global
// order. Legacy `at`/`after` callers get an external lane with a per-
// scheduler FIFO counter, which preserves the old same-tick scheduling-order
// semantics exactly.
//
// The queue is a bucketed calendar queue by default (see event_queue.h);
// the original binary-heap back end stays available behind QueueKind so
// determinism tests and the engine benchmark can cross-check the two —
// both realize the identical event order.
#pragma once

#include <cstdint>

#include "common/action.h"
#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/lane.h"

namespace hds {

enum class QueueKind : std::uint8_t {
  kCalendar,  // bucketed calendar queue (default)
  kHeap,      // reference std::priority_queue back end
};

class Scheduler {
 public:
  using Action = hds::Action;

  explicit Scheduler(QueueKind kind = QueueKind::kCalendar) : kind_(kind) {}

  [[nodiscard]] QueueKind queue_kind() const { return kind_; }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const {
    return kind_ == QueueKind::kCalendar ? calendar_.empty() : heap_.empty();
  }
  [[nodiscard]] std::size_t pending() const {
    return kind_ == QueueKind::kCalendar ? calendar_.size() : heap_.size();
  }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  // Lane of the event currently executing (valid during a step() dispatch).
  // Fan-out actions read this instead of capturing the lane: the capture
  // would push the closure past the Action small-buffer budget.
  [[nodiscard]] Lane current_lane() const { return current_lane_; }

  // Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() {
    return kind_ == QueueKind::kCalendar ? calendar_.next_time() : heap_.next_time();
  }

  // Schedules `fn` at absolute time t (>= now) on an external FIFO lane.
  void at(SimTime t, Action fn);

  // Schedules `fn` at absolute time t (>= now) with an explicit canonical
  // lane. The engine (System/Network) uses this for every internal event.
  void at_lane(SimTime t, Lane lane, Action fn);

  // Schedules `fn` after `delay` time units.
  void after(SimTime delay, Action fn) { at(now_ + delay, std::move(fn)); }

  // Runs the next event; returns false if the queue is empty.
  bool step();

  // Runs every event with time <= t, then advances the clock to t.
  void run_until(SimTime t);

  // Runs every event with time < end; does NOT advance the clock past the
  // last executed event. Used by the sharded engine to execute one
  // conservative window [now, end) before a barrier.
  void run_before(SimTime end);

  // Advances the clock to t without running anything (t >= now). The
  // sharded engine uses this to align shard clocks at window barriers.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

  // Runs until the queue drains or `max_events` have executed.
  void run_all(std::uint64_t max_events = UINT64_MAX);

 private:
  QueueKind kind_;
  CalendarQueue calendar_;
  BinaryHeapQueue heap_;
  SimTime now_ = 0;
  Lane current_lane_ = 0;
  std::uint64_t ext_seq_ = 0;  // FIFO sequencer for external-lane events
  std::uint64_t executed_ = 0;
};

}  // namespace hds
