// The event-driven homonymous system: n processes, a broadcast network with
// a pluggable timing model, and a crash schedule.
//
// Processes see only the Env interface (own id, broadcast, timers, local
// clock). Ground-truth accessors — I(Pi), I(Correct), aliveness — exist for
// oracles, checkers and benchmarks only, mirroring the paper's stance that
// Pi is a formalization device the processes do not know.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/multiset.h"
#include "common/rng.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "sim/network.h"
#include "sim/process.h"
#include "sim/scheduler.h"
#include "sim/timing.h"
#include "sim/tracelog.h"

namespace hds {

namespace net {
struct BodyCodec;  // net/codec.h
}

struct CrashPlan {
  SimTime at = 0;
  // When true, a broadcast issued exactly at the crash instant reaches an
  // arbitrary subset of processes ("if a process crashes while broadcasting
  // a message, the message is received by an arbitrary subset").
  bool partial_broadcast = false;
};

struct SystemConfig {
  std::vector<Id> ids;                            // ids[i] = identity of process i; size n
  std::unique_ptr<TimingModel> timing;            // shared by all links
  std::vector<std::optional<CrashPlan>> crashes;  // empty, or size n
  std::uint64_t seed = 1;
  double dying_copy_delivery_prob = 0.5;  // per-copy survival of a dying broadcast
  std::size_t trace_capacity = 0;         // > 0 enables the structured event log
  // Observability sink; null disables metric collection entirely (the
  // network and the node environments then never touch an instrument).
  obs::MetricsRegistry* metrics = nullptr;
  // Event-queue back end. kCalendar is the fast default; kHeap is the
  // reference implementation kept for determinism cross-checks (both give
  // bit-identical runs — see the golden-trace test).
  QueueKind queue = QueueKind::kCalendar;
};

class System {
 public:
  explicit System(SystemConfig cfg);
  ~System();  // defined where NodeEnv is complete

  // Installs the algorithm at node i. Must happen before start().
  void set_process(ProcIndex i, std::unique_ptr<Process> p);

  // Schedules every process's on_start at time 0.
  void start();

  // Installs a fault-plan interposer on the broadcast network (chaos
  // subsystem; null detaches). Install before start().
  void set_interposer(LinkInterposer* li);

  // Dynamic crash injection — the chaos adversary's effector. The process
  // is alive through the current instant and participates in no event
  // afterwards; ground-truth accessors reflect it immediately. A process
  // already down (or crashing this instant) is left untouched; a *future*
  // planned crash is advanced to now. `why` tags the trace event.
  void inject_crash(ProcIndex i, const std::string& why = {});

  void run_until(SimTime t) { sched_.run_until(t); }
  // Runs until the event queue drains (or the safety caps hit). Returns true
  // if the queue drained.
  bool run_all(std::uint64_t max_events = 50'000'000);

  [[nodiscard]] SimTime now() const { return sched_.now(); }
  [[nodiscard]] std::size_t n() const { return ids_.size(); }
  [[nodiscard]] Id id_of(ProcIndex i) const { return ids_.at(i); }
  [[nodiscard]] const std::vector<Id>& ids() const { return ids_; }

  // Ground truth (checkers/oracles only).
  [[nodiscard]] bool is_correct(ProcIndex i) const { return !crashes_.at(i).has_value(); }
  [[nodiscard]] bool is_alive_at(ProcIndex i, SimTime t) const {
    return !crashes_.at(i) || t <= crashes_.at(i)->at;
  }
  [[nodiscard]] bool is_alive(ProcIndex i) const { return is_alive_at(i, now()); }
  [[nodiscard]] std::vector<ProcIndex> correct_set() const;
  [[nodiscard]] Multiset<Id> correct_ids() const;  // I(Correct)
  [[nodiscard]] Multiset<Id> all_ids() const;      // I(Pi)
  [[nodiscard]] std::size_t alive_count_at(SimTime t) const;

  [[nodiscard]] Process& process(ProcIndex i) { return *procs_.at(i); }
  [[nodiscard]] Env& env(ProcIndex i);
  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const NetworkStats& net_stats() const { return net_->stats(); }
  [[nodiscard]] const TraceLog& trace() const { return trace_; }
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }
  // Dispatch-loop causal state (obs/causal.h); only advanced while the
  // trace is enabled. Monitors wire it into MonitorConfig::causal so
  // mirrored violations carry the lineage of the event that tripped them.
  [[nodiscard]] const obs::CausalSession& causal_session() const { return causal_; }

 private:
  class NodeEnv;

  void deliver(ProcIndex to, const std::shared_ptr<const Message>& m);

  // Memoized byte-meter state: the per-sender frame envelope is constant,
  // and the codec resolution is per distinct message type; only the body is
  // (counting-)encoded per broadcast, so metered sizes stay exact. A null
  // codec entry memoizes "type not registered" (meters to 0).
  struct MeterCacheEntry {
    std::string type;
    const net::BodyCodec* codec = nullptr;
  };
  [[nodiscard]] const net::BodyCodec* meter_codec_of(const std::string& type);

  std::vector<Id> ids_;
  std::vector<std::optional<CrashPlan>> crashes_;
  double dying_copy_delivery_prob_;
  Rng rng_;
  Scheduler sched_;
  std::vector<std::size_t> frame_overhead_by_sender_;
  std::vector<MeterCacheEntry> meter_cache_;
  std::size_t meter_last_ = SIZE_MAX;  // fast path: same-type broadcast runs
  TraceLog trace_{0};
  obs::CausalSession causal_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_timer_fires_ = nullptr;
  std::unique_ptr<TimingModel> timing_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<std::unique_ptr<NodeEnv>> envs_;
  bool started_ = false;
};

}  // namespace hds
