// The event-driven homonymous system: n processes, a broadcast network with
// a pluggable timing model, and a crash schedule.
//
// Processes see only the Env interface (own id, broadcast, timers, local
// clock). Ground-truth accessors — I(Pi), I(Correct), aliveness — exist for
// oracles, checkers and benchmarks only, mirroring the paper's stance that
// Pi is a formalization device the processes do not know.
//
// Sharding (SystemConfig::shards > 1): one run is partitioned across a pool
// of worker threads — processes round-robin by dense index, one scheduler +
// network per shard — using conservative synchronization: the lookahead is
// the timing model's min link delay, and shards advance in lock-step time
// windows [tmin, tmin + lookahead) separated by barriers, so a cross-shard
// send (routed through an SPSC mailbox, drained at the barrier) can never
// land inside the window that produced it. Because every event carries a
// provenance lane (sim/lane.h) and every random draw comes from its
// process's own RNG row, the executed schedule — and with it the trace, the
// metrics, the QoS numbers and the net counters — is byte-identical at any
// shard count, including shards=1, which runs the plain single-queue
// engine with zero added overhead.
//
// Out of scope at shards > 1 (these force or require a single shard):
// chaos interposers/injectors, online monitors, mid-run observers that read
// System state between events. scheduler() and set_interposer() throw.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/multiset.h"
#include "common/rng.h"
#include "common/spsc.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "sim/network.h"
#include "sim/process.h"
#include "sim/scheduler.h"
#include "sim/timing.h"
#include "sim/trace_sink.h"
#include "sim/tracelog.h"

namespace hds {

namespace net {
struct BodyCodec;  // net/codec.h
}
namespace exp {
class ShardPool;  // exp/pool.h
}

struct CrashPlan {
  SimTime at = 0;
  // When true, a broadcast issued exactly at the crash instant reaches an
  // arbitrary subset of processes ("if a process crashes while broadcasting
  // a message, the message is received by an arbitrary subset").
  bool partial_broadcast = false;
};

struct SystemConfig {
  std::vector<Id> ids;                            // ids[i] = identity of process i; size n
  std::unique_ptr<TimingModel> timing;            // shared by all links
  std::vector<std::optional<CrashPlan>> crashes;  // empty, or size n
  std::uint64_t seed = 1;
  double dying_copy_delivery_prob = 0.5;  // per-copy survival of a dying broadcast
  std::size_t trace_capacity = 0;         // > 0 enables the structured event log
  // Observability sink; null disables metric collection entirely (the
  // network and the node environments then never touch an instrument).
  obs::MetricsRegistry* metrics = nullptr;
  // Event-queue back end. kCalendar is the fast default; kHeap is the
  // reference implementation kept for determinism cross-checks (both give
  // bit-identical runs — see the golden-trace test).
  QueueKind queue = QueueKind::kCalendar;
  // Worker shards the run is partitioned across (clamped to [1, n]). Any
  // value produces the same bytes; > 1 adds parallelism.
  std::size_t shards = 1;
  // Ring capacity of each cross-shard SPSC mailbox; overflow spills to a
  // mutex-guarded side vector (counted in ShardRunStats, never dropped).
  std::size_t mailbox_capacity = 1024;
};

// Bookkeeping of a sharded run (all zero when shards == 1).
struct ShardRunStats {
  std::uint64_t windows = 0;               // conservative windows executed
  std::uint64_t cross_groups = 0;          // fan-out groups routed via mailboxes
  std::uint64_t lookahead_violations = 0;  // cross arrivals inside their own window; must be 0
  std::uint64_t mailbox_spills = 0;        // pushes that missed the SPSC ring
  std::uint64_t events_executed = 0;       // sum over shard schedulers
};

class System {
 public:
  explicit System(SystemConfig cfg);
  ~System();  // defined where NodeEnv is complete

  // Installs the algorithm at node i. Must happen before start().
  void set_process(ProcIndex i, std::unique_ptr<Process> p);

  // Schedules every process's on_start at time 0.
  void start();

  // Installs a fault-plan interposer on the broadcast network (chaos
  // subsystem; null detaches). Install before start(). Requires shards == 1.
  void set_interposer(LinkInterposer* li);

  // Dynamic crash injection — the chaos adversary's effector. The process
  // is alive through the current instant and participates in no event
  // afterwards; ground-truth accessors reflect it immediately. A process
  // already down (or crashing this instant) is left untouched; a *future*
  // planned crash is advanced to now. `why` tags the trace event.
  void inject_crash(ProcIndex i, const std::string& why = {});

  void run_until(SimTime t);
  // Runs until the event queue drains (or the safety caps hit). Returns true
  // if the queue drained.
  bool run_all(std::uint64_t max_events = 50'000'000);

  [[nodiscard]] SimTime now() const { return shards_vec_[0]->sched.now(); }
  [[nodiscard]] std::size_t n() const { return ids_.size(); }
  [[nodiscard]] Id id_of(ProcIndex i) const { return ids_.at(i); }
  [[nodiscard]] const std::vector<Id>& ids() const { return ids_; }

  // Ground truth (checkers/oracles only).
  [[nodiscard]] bool is_correct(ProcIndex i) const { return !crashes_.at(i).has_value(); }
  [[nodiscard]] bool is_alive_at(ProcIndex i, SimTime t) const {
    return !crashes_.at(i) || t <= crashes_.at(i)->at;
  }
  [[nodiscard]] bool is_alive(ProcIndex i) const { return is_alive_at(i, now()); }
  [[nodiscard]] std::vector<ProcIndex> correct_set() const;
  [[nodiscard]] Multiset<Id> correct_ids() const;  // I(Correct)
  [[nodiscard]] Multiset<Id> all_ids() const;      // I(Pi)
  [[nodiscard]] std::size_t alive_count_at(SimTime t) const;

  [[nodiscard]] Process& process(ProcIndex i) { return *procs_.at(i); }
  [[nodiscard]] Env& env(ProcIndex i);
  // The run's scheduler. Only meaningful on an unsharded system (the chaos
  // injector and tests push raw events through it); throws at shards > 1.
  [[nodiscard]] Scheduler& scheduler();
  // Per-shard network statistics merged into one view (a plain reference to
  // the single network's stats when shards == 1 would be identical — the
  // merge is associative and commutative).
  [[nodiscard]] const NetworkStats& net_stats() const;
  [[nodiscard]] const TraceLog& trace() const { return trace_; }
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }
  [[nodiscard]] std::size_t shards() const { return shards_; }
  [[nodiscard]] ShardRunStats shard_stats() const;
  // Dispatch-loop causal state (obs/causal.h); only advanced while the
  // trace is enabled AND shards == 1 (monitors — the only consumer — run
  // single-shard). Monitors wire it into MonitorConfig::causal so mirrored
  // violations carry the lineage of the event that tripped them.
  [[nodiscard]] const obs::CausalSession& causal_session() const { return causal_obs_; }

 private:
  class NodeEnv;

  // Memoized byte-meter state: the per-sender frame envelope is constant,
  // and the codec resolution is per distinct message type; only the body is
  // (counting-)encoded per broadcast, so metered sizes stay exact. A null
  // codec entry memoizes "type not registered" (meters to 0). One cache per
  // shard (concurrent lookups).
  struct MeterCacheEntry {
    std::string type;
    const net::BodyCodec* codec = nullptr;
  };

  // Per-shard engine state: its own scheduler, network facade, trace sink
  // and byte-meter cache; everything a worker touches without locks.
  struct ShardState {
    Scheduler sched;
    TraceSink sink;
    std::unique_ptr<Network> net;
    std::vector<MeterCacheEntry> meter_cache;
    std::size_t meter_last = SIZE_MAX;  // fast path: same-type broadcast runs
    ShardState(QueueKind kind, TraceLog* log) : sched(kind), sink(log) {}
  };

  void deliver(std::size_t shard, ProcIndex to, const std::shared_ptr<const Message>& m);
  void run_windows(SimTime t_limit, std::uint64_t max_events);
  void drain_mailboxes();
  void merge_trace();
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] SpscMailbox<Network::CrossGroup>& mail(std::size_t from_shard,
                                                       std::size_t to_shard) {
    return *mail_[from_shard * shards_ + to_shard];
  }

  [[nodiscard]] const net::BodyCodec* meter_codec_of(ShardState& sh, const std::string& type);

  std::vector<Id> ids_;
  std::vector<std::optional<CrashPlan>> crashes_;
  double dying_copy_delivery_prob_;
  std::size_t shards_ = 1;
  SimTime lookahead_ = 1;
  // Per-process rows: each is read and advanced only during its owner's
  // dispatches, i.e. only by the shard that owns the process.
  std::vector<Rng> rngs_;
  std::vector<std::uint64_t> bcast_seq_;
  std::vector<obs::CausalSession> sessions_;
  obs::CausalSession causal_obs_;  // current-dispatch mirror for monitors
  std::vector<std::size_t> frame_overhead_by_sender_;
  TraceLog trace_{0};
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_timer_fires_ = nullptr;
  std::unique_ptr<TimingModel> timing_;
  std::vector<std::unique_ptr<ShardState>> shards_vec_;
  std::vector<std::unique_ptr<SpscMailbox<Network::CrossGroup>>> mail_;  // [from * k + to]
  std::unique_ptr<exp::ShardPool> pool_;
  std::vector<Network::CrossGroup> drain_buf_;
  std::vector<TraceSink::Keyed> merge_buf_;
  ShardRunStats run_stats_;
  SimTime last_window_end_ = 0;
  mutable NetworkStats merged_stats_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<std::unique_ptr<NodeEnv>> envs_;
  bool started_ = false;
};

}  // namespace hds
