// Structured event log of a simulated run: starts, broadcasts, deliveries,
// losses, timer firings and crashes, in global time order. Disabled by
// default (SystemConfig::trace_capacity = 0); when enabled it is the
// debugging view of a run — filter by process or message type, or dump a
// readable transcript.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace hds {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kStart,      // process began executing
    kBroadcast,  // process invoked broadcast(m)
    kDeliver,    // one copy handed to an alive process
    kLost,       // copy dropped by the link (pre-GST loss / dying broadcast)
    kToDead,     // copy arrived after the destination crashed
    kTimer,      // timer fired at the process
    kCrash,      // the process's crash instant passed
  };

  SimTime at = 0;
  Kind kind = Kind::kStart;
  ProcIndex proc = 0;        // the acting/receiving process
  std::string msg_type;      // empty for non-message events

  [[nodiscard]] static const char* kind_name(Kind k);
};

class TraceLog {
 public:
  // capacity == 0 disables recording entirely.
  explicit TraceLog(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }
  // True once events were discarded because the capacity was reached.
  [[nodiscard]] bool truncated() const { return truncated_; }

  void record(SimTime at, TraceEvent::Kind kind, ProcIndex proc, std::string msg_type = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }

  [[nodiscard]] std::vector<TraceEvent> by_proc(ProcIndex p) const;
  [[nodiscard]] std::vector<TraceEvent> by_type(const std::string& msg_type) const;
  [[nodiscard]] std::map<std::string, std::size_t> counts_by_type(TraceEvent::Kind kind) const;

  // Human-readable transcript (at most max_lines lines).
  [[nodiscard]] std::string dump(std::size_t max_lines = 200) const;

 private:
  std::size_t capacity_;
  bool truncated_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace hds
