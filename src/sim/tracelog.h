// Structured event log of a simulated run: starts, broadcasts, deliveries,
// losses, timer firings and crashes, in global time order. Disabled by
// default (SystemConfig::trace_capacity = 0); when enabled it is the
// debugging view of a run — filter by process or message type, dump a
// readable transcript, or export it (obs/trace_export.h) as Chrome-trace
// JSON / JSONL.
//
// Capacity is a flight-recorder ring: once full, recording a new event
// evicts the oldest retained one, so the log always holds the *latest*
// `capacity` events — the window that matters when diagnosing why a long
// run stalled. dropped() counts the evictions; truncated() stays true once
// any event has been dropped.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace hds {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kStart,      // process began executing
    kBroadcast,  // process invoked broadcast(m)
    kDeliver,    // one copy handed to an alive process
    kLost,       // copy dropped by the link (pre-GST loss / injected link fault)
    kLostDying,  // copy dropped because the sender crashed while broadcasting
    kDuplicate,  // extra copy injected by a fault plan (chaos duplication)
    kToDead,     // copy arrived after the destination crashed
    kTimer,      // timer fired at the process
    kCrash,      // the process's crash instant passed
    // Observer events from the online property monitors (obs/monitor.h);
    // msg_type carries "rule: detail". Never emitted by the engine itself.
    kMonitorWarn,       // suspicious but not property-violating
    kMonitorViolation,  // an FD class property was violated after watch_from
  };

  SimTime at = 0;
  Kind kind = Kind::kStart;
  ProcIndex proc = 0;        // the acting/receiving process
  std::string msg_type;      // empty for non-message events

  // Causal-tracing lineage (obs/causal.h): the id minted by (kStart /
  // kBroadcast / kTimer) or carried by (kDeliver and monitor events) this
  // event, and the id of its causing event. 0 = unstamped.
  std::uint64_t causal_id = 0;
  std::uint64_t causal_parent = 0;

  [[nodiscard]] static const char* kind_name(Kind k);
};

class TraceLog {
 public:
  // capacity == 0 disables recording entirely.
  explicit TraceLog(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }
  // True once events were discarded because the capacity was reached.
  [[nodiscard]] bool truncated() const { return dropped_ > 0; }
  // Number of (oldest) events evicted by the ring.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  // Total events ever recorded, retained or not.
  [[nodiscard]] std::uint64_t recorded() const { return dropped_ + ring_.size(); }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }

  void record(SimTime at, TraceEvent::Kind kind, ProcIndex proc, std::string msg_type = {},
              std::uint64_t causal_id = 0, std::uint64_t causal_parent = 0);

  // Retained events in chronological order (materialized from the ring).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  // Events recorded since the last drain_since() call, for incremental
  // telemetry streaming. `cursor` is caller state (start at 0); on return
  // it holds the new recorded() watermark. Events that were evicted before
  // being drained are simply absent — dropped() accounts for them.
  [[nodiscard]] std::vector<TraceEvent> drain_since(std::uint64_t& cursor) const;

  [[nodiscard]] std::vector<TraceEvent> by_proc(ProcIndex p) const;
  [[nodiscard]] std::vector<TraceEvent> by_type(const std::string& msg_type) const;
  [[nodiscard]] std::map<std::string, std::size_t> counts_by_type(TraceEvent::Kind kind) const;

  // Human-readable transcript (at most max_lines lines).
  [[nodiscard]] std::string dump(std::size_t max_lines = 200) const;

 private:
  // Calls f on each retained event, oldest first.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t k = 0; k < ring_.size(); ++k) {
      f(ring_[(next_ + k) % ring_.size()]);
    }
  }

  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> ring_;  // grows to capacity_, then recycles
  std::size_t next_ = 0;          // oldest slot == next overwrite target, once full
};

}  // namespace hds
