#include "sim/timing.h"

#include <stdexcept>

namespace hds {

AsyncTiming::AsyncTiming(SimTime min_delay, SimTime max_delay)
    : min_delay_(min_delay), max_delay_(max_delay) {
  if (min_delay < 1 || max_delay < min_delay) {
    throw std::invalid_argument("AsyncTiming: need 1 <= min_delay <= max_delay");
  }
}

std::optional<SimTime> AsyncTiming::delivery_at(SimTime sent, ProcIndex, ProcIndex,
                                                const std::string&, Rng& rng) {
  return sent + rng.uniform(min_delay_, max_delay_);
}

PartialSyncTiming::PartialSyncTiming(Params p) : params_(p) {
  if (p.delta < 1 || p.pre_gst_max_delay < 1 || p.gst < 0) {
    throw std::invalid_argument("PartialSyncTiming: bad parameters");
  }
  if (p.pre_gst_loss < 0.0 || p.pre_gst_loss > 1.0) {
    throw std::invalid_argument("PartialSyncTiming: loss probability out of range");
  }
  for (const auto& [link, ov] : p.pre_gst_links) {
    (void)link;
    if (ov.pre_gst_loss < 0.0 || ov.pre_gst_loss > 1.0 || ov.pre_gst_max_delay < 0) {
      throw std::invalid_argument("PartialSyncTiming: bad link override");
    }
  }
}

std::optional<SimTime> PartialSyncTiming::delivery_at(SimTime sent, ProcIndex from, ProcIndex to,
                                                      const std::string&, Rng& rng) {
  if (sent >= params_.gst) return sent + rng.uniform(1, params_.delta);
  double loss = params_.pre_gst_loss;
  SimTime max_delay = params_.pre_gst_max_delay;
  if (!params_.pre_gst_links.empty()) {
    auto it = params_.pre_gst_links.find({from, to});
    if (it != params_.pre_gst_links.end()) {
      loss = it->second.pre_gst_loss;
      if (it->second.pre_gst_max_delay > 0) max_delay = it->second.pre_gst_max_delay;
    }
  }
  if (rng.chance(loss)) return std::nullopt;
  return sent + rng.uniform(1, max_delay);
}

BoundedTiming::BoundedTiming(SimTime bound) : bound_(bound) {
  if (bound < 1) throw std::invalid_argument("BoundedTiming: bound must be >= 1");
}

std::optional<SimTime> BoundedTiming::delivery_at(SimTime sent, ProcIndex, ProcIndex,
                                                  const std::string&, Rng& rng) {
  return sent + rng.uniform(1, bound_);
}

TypeBiasedTiming::TypeBiasedTiming(Params p) : params_(std::move(p)) {
  if (params_.default_delay < 1 || params_.per_destination_stagger < 0) {
    throw std::invalid_argument("TypeBiasedTiming: bad parameters");
  }
  for (const auto& [type, d] : params_.delay_by_type) {
    (void)type;
    if (d < 1) throw std::invalid_argument("TypeBiasedTiming: per-type delay must be >= 1");
  }
}

SimTime TypeBiasedTiming::min_delay() const {
  SimTime m = params_.default_delay;
  for (const auto& [type, d] : params_.delay_by_type) {
    (void)type;
    if (d < m) m = d;
  }
  return m;
}

std::optional<SimTime> TypeBiasedTiming::delivery_at(SimTime sent, ProcIndex, ProcIndex to,
                                                     const std::string& type, Rng&) {
  auto it = params_.delay_by_type.find(type);
  const SimTime base = it == params_.delay_by_type.end() ? params_.default_delay : it->second;
  return sent + base + params_.per_destination_stagger * static_cast<SimTime>(to);
}

PerLinkTiming::PerLinkTiming(SimTime min_delay, SimTime max_delay, SimTime jitter,
                             std::uint64_t seed)
    : min_delay_(min_delay), max_delay_(max_delay), jitter_(jitter), seed_(seed) {
  if (min_delay < 1 || max_delay < min_delay || jitter < 0) {
    throw std::invalid_argument("PerLinkTiming: bad parameters");
  }
}

SimTime PerLinkTiming::base_delay(ProcIndex from, ProcIndex to) const {
  // Deterministic per-link mix: the same pair always gets the same base.
  std::uint64_t x = seed_ * 0x9e3779b97f4a7c15ULL + from * 0xbf58476d1ce4e5b9ULL +
                    to * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  x *= 0xd6e8feb86659fd93ULL;
  x ^= x >> 29;
  const auto span = static_cast<std::uint64_t>(max_delay_ - min_delay_ + 1);
  return min_delay_ + static_cast<SimTime>(x % span);
}

std::optional<SimTime> PerLinkTiming::delivery_at(SimTime sent, ProcIndex from, ProcIndex to,
                                                  const std::string&, Rng& rng) {
  const SimTime j = jitter_ > 0 ? rng.uniform(0, jitter_) : 0;
  return sent + base_delay(from, to) + j;
}

}  // namespace hds
