// Canonical event lanes: the provenance-derived tiebreak that makes the
// simulator's total order reconstructible by any number of shards.
//
// The engine executes events in (time, lane) order. A lane is a 64-bit key
// computed from WHAT an event is (who caused it and that causer's own
// program order), never from WHEN it happened to be pushed into a queue —
// push order depends on the global execution interleaving, which a sharded
// run does not reproduce, while provenance is a pure function of the
// configuration. Two facts make the order well-defined and executable:
//
//  1. Lanes are unique per (time, queue): every class embeds a monotone
//     per-origin sequence number.
//  2. An event can only spawn same-tick work in a strictly larger lane
//     (deliveries < timers, and timer seqs grow per process; message delays
//     are >= 1 so deliveries always land in a later tick), so executing the
//     pending minimum never steps behind an event that already ran.
//
// Layout: [class:2][proc:26][seq:36].
#pragma once

#include <cstdint>

#include "common/types.h"

namespace hds {

using Lane = std::uint64_t;

enum class LaneClass : std::uint64_t {
  // Pre-run control events: process starts (seq 0) and planned-crash trace
  // markers (seq 1), keyed by process. Scheduled before execution begins.
  kControl = 0,
  // Broadcast fan-out delivery events, keyed by (sender, sender's own
  // broadcast count). A sender's dispatch order — and therefore its
  // broadcast count — is itself a pure function of the (time, lane) order,
  // so the key is interleaving-independent.
  kDeliver = 1,
  // Timer firings, keyed by (owner, owner's timer-arm count).
  kTimer = 2,
  // External schedulings through the legacy Scheduler::at/after surface
  // (tests, tools, the chaos injector's arm-time pushes), keyed by a
  // per-scheduler counter — same-tick FIFO, exactly the old behavior.
  kExternal = 3,
};

inline constexpr unsigned kLaneSeqBits = 36;
inline constexpr unsigned kLaneProcBits = 26;
inline constexpr std::uint64_t kLaneSeqMask = (std::uint64_t{1} << kLaneSeqBits) - 1;
inline constexpr std::uint64_t kLaneProcMask = (std::uint64_t{1} << kLaneProcBits) - 1;

[[nodiscard]] constexpr Lane make_lane(LaneClass c, std::uint64_t proc, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(c) << (kLaneProcBits + kLaneSeqBits)) |
         ((proc & kLaneProcMask) << kLaneSeqBits) | (seq & kLaneSeqMask);
}

[[nodiscard]] constexpr LaneClass lane_class(Lane lane) {
  return static_cast<LaneClass>(lane >> (kLaneProcBits + kLaneSeqBits));
}

}  // namespace hds
