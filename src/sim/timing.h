// Link timing models realizing the paper's synchrony assumptions.
//
//  - AsyncTiming     : HAS[...] — reliable links, arbitrary finite delays.
//  - PartialSyncTiming: HPS[...] — before the (unknown to processes) global
//    stabilization time GST a message may be lost or arbitrarily delayed;
//    a message sent at or after GST is delivered within delta. delta also
//    absorbs the bounded processing time of partially synchronous processes.
//  - BoundedTiming   : HSS-like links inside the event engine — every message
//    is delivered within a known bound (used by the lock-step adapters of
//    the synchronous algorithms).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.h"
#include "common/types.h"

namespace hds {

class TimingModel {
 public:
  virtual ~TimingModel() = default;

  // Delivery time of one copy of a message of `type` sent at `sent` from
  // `from` to `to`; std::nullopt means the copy is lost (only allowed
  // before GST in the partially synchronous model; never in the others).
  // Most models ignore `type`; the adversarial TypeBiasedTiming keys on it.
  virtual std::optional<SimTime> delivery_at(SimTime sent, ProcIndex from, ProcIndex to,
                                             const std::string& type, Rng& rng) = 0;

  // Lower bound on the delivery delay of any copy on any link: every
  // surviving copy arrives at or after sent + min_delay(). The sharded
  // engine uses this as the conservative-synchronization lookahead — a
  // cross-shard send issued inside a window can never land inside that
  // window. Every model's constructor enforces delays >= 1, so 1 is a
  // universally safe default.
  [[nodiscard]] virtual SimTime min_delay() const { return 1; }
};

// Arbitrary finite delays in [min_delay, max_delay], no loss.
class AsyncTiming final : public TimingModel {
 public:
  AsyncTiming(SimTime min_delay, SimTime max_delay);
  std::optional<SimTime> delivery_at(SimTime sent, ProcIndex from, ProcIndex to,
                                     const std::string& type, Rng& rng) override;
  [[nodiscard]] SimTime min_delay() const override { return min_delay_; }

 private:
  SimTime min_delay_;
  SimTime max_delay_;
};

// HPS: eventually timely links.
class PartialSyncTiming final : public TimingModel {
 public:
  // Pre-GST behaviour of one directed link, overriding the uniform
  // parameters. Overrides can express static partitions ("(1,3) loses
  // everything until GST") and asymmetric lossy/slow prefixes while keeping
  // GST semantics intact: a copy sent at or after GST is always delivered
  // within delta, whatever the override says.
  struct LinkOverride {
    double pre_gst_loss = 0.0;
    SimTime pre_gst_max_delay = 0;  // 0 = inherit the uniform pre_gst_max_delay
  };

  struct Params {
    SimTime gst = 0;            // global stabilization time
    SimTime delta = 1;          // post-GST latency bound (unknown to processes)
    double pre_gst_loss = 0.0;  // per-copy loss probability before GST
    SimTime pre_gst_max_delay = 1;  // max (finite) delay of surviving pre-GST copies
    // Per-directed-link pre-GST overrides, keyed (from, to).
    std::map<std::pair<ProcIndex, ProcIndex>, LinkOverride> pre_gst_links;
  };
  explicit PartialSyncTiming(Params p);
  std::optional<SimTime> delivery_at(SimTime sent, ProcIndex from, ProcIndex to,
                                     const std::string& type, Rng& rng) override;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
};

// Every copy delivered within [1, bound]; reliable. Processes may rely on
// `bound` being known (synchronous model).
class BoundedTiming final : public TimingModel {
 public:
  explicit BoundedTiming(SimTime bound);
  std::optional<SimTime> delivery_at(SimTime sent, ProcIndex from, ProcIndex to,
                                     const std::string& type, Rng& rng) override;

 private:
  SimTime bound_;
};

// Adversarial, message-type-aware scheduling: each message type can be given
// its own fixed delay, optionally staggered per destination (so different
// receivers observe the same phase traffic in different orders). Reliable,
// delays bounded by the largest configured value — still an HAS link, but
// one that attacks a protocol's phase structure (e.g. stall every PH2 by 40
// ticks while PH1 flies). Used by the adversarial consensus tests.
class TypeBiasedTiming final : public TimingModel {
 public:
  struct Params {
    SimTime default_delay = 1;
    std::map<std::string, SimTime> delay_by_type;  // overrides per type
    SimTime per_destination_stagger = 0;           // adds to * stagger
  };
  explicit TypeBiasedTiming(Params p);
  std::optional<SimTime> delivery_at(SimTime sent, ProcIndex from, ProcIndex to,
                                     const std::string& type, Rng& rng) override;
  [[nodiscard]] SimTime min_delay() const override;

 private:
  Params params_;
};

// Asymmetric links: each directed link (from, to) has its own fixed base
// latency, drawn deterministically from `seed` within [min_delay,
// max_delay], plus per-copy jitter in [0, jitter]. Reliable. Models
// heterogeneous topologies (near/far nodes) that the uniform models cannot:
// a slow link slows one direction of one pair permanently. The effective
// global bound is max_delay + jitter.
class PerLinkTiming final : public TimingModel {
 public:
  PerLinkTiming(SimTime min_delay, SimTime max_delay, SimTime jitter, std::uint64_t seed);
  std::optional<SimTime> delivery_at(SimTime sent, ProcIndex from, ProcIndex to,
                                     const std::string& type, Rng& rng) override;

  [[nodiscard]] SimTime base_delay(ProcIndex from, ProcIndex to) const;
  [[nodiscard]] SimTime min_delay() const override { return min_delay_; }

 private:
  SimTime min_delay_;
  SimTime max_delay_;
  SimTime jitter_;
  std::uint64_t seed_;
};

}  // namespace hds
