// Process-side API: what an algorithm running at one node may do and observe.
//
// A process initially knows only its own identifier (no membership, no n,
// no t — unless an algorithm is explicitly given them, as Fig. 8 is given n
// and t). Both the discrete-event simulator (sim::System) and the thread
// runtime (rt::RtSystem) implement Env and drive Process objects, so every
// algorithm in this library runs unchanged on either engine.
#pragma once

#include "common/types.h"
#include "sim/message.h"

namespace hds {

class Env {
 public:
  virtual ~Env() = default;

  // The identity of this process (shared with its homonyms).
  [[nodiscard]] virtual Id self_id() const = 0;

  // Sends one copy of m along the link to every process, itself included.
  virtual void broadcast(Message m) = 0;

  // Arms a fresh one-shot timer that fires after `delay` local time units.
  // Returns its id; ids are never reused within a process.
  virtual TimerId set_timer(SimTime delay) = 0;

  // Local clock, for timeout arithmetic only. In the partially synchronous
  // model processes may measure durations but know no global time.
  [[nodiscard]] virtual SimTime local_now() const = 0;
};

class Process {
 public:
  virtual ~Process() = default;
  virtual void on_start(Env&) {}
  virtual void on_message(Env&, const Message&) {}
  virtual void on_timer(Env&, TimerId) {}
};

}  // namespace hds
