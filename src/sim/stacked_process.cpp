#include "sim/stacked_process.h"

namespace hds {

// Wraps the node Env so that timers armed by component k are recorded as
// owned by k.
class StackedProcess::RoutingEnv final : public Env {
 public:
  RoutingEnv(Env& inner, StackedProcess& stack, std::size_t component)
      : inner_(inner), stack_(stack), component_(component) {}

  [[nodiscard]] Id self_id() const override { return inner_.self_id(); }
  void broadcast(Message m) override { inner_.broadcast(std::move(m)); }
  [[nodiscard]] SimTime local_now() const override { return inner_.local_now(); }

  TimerId set_timer(SimTime delay) override {
    TimerId id = inner_.set_timer(delay);
    stack_.timer_owner_[id] = component_;
    return id;
  }

 private:
  Env& inner_;
  StackedProcess& stack_;
  std::size_t component_;
};

void StackedProcess::on_start(Env& env) {
  for (std::size_t k = 0; k < components_.size(); ++k) {
    RoutingEnv renv(env, *this, k);
    components_[k]->on_start(renv);
  }
}

void StackedProcess::on_message(Env& env, const Message& m) {
  for (std::size_t k = 0; k < components_.size(); ++k) {
    RoutingEnv renv(env, *this, k);
    components_[k]->on_message(renv, m);
  }
}

void StackedProcess::on_timer(Env& env, TimerId id) {
  auto it = timer_owner_.find(id);
  if (it == timer_owner_.end()) return;
  const std::size_t k = it->second;
  timer_owner_.erase(it);
  RoutingEnv renv(env, *this, k);
  components_[k]->on_timer(renv, id);
}

}  // namespace hds
