#include "sim/scheduler.h"

#include <stdexcept>

namespace hds {

void Scheduler::at(SimTime t, Action fn) {
  if (t < now_) throw std::invalid_argument("Scheduler::at: time in the past");
  queue_.push(Ev{t, next_seq_++, std::move(fn)});
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  Ev ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  ev.fn();
  return true;
}

void Scheduler::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().at <= t) step();
  if (now_ < t) now_ = t;
}

void Scheduler::run_all(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events && step(); ++i) {
  }
}

}  // namespace hds
