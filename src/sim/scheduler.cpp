#include "sim/scheduler.h"

#include <stdexcept>

#include "obs/profiler.h"

namespace hds {

void Scheduler::at(SimTime t, Action fn) {
  if (t < now_) throw std::invalid_argument("Scheduler::at: time in the past");
  if (kind_ == QueueKind::kCalendar) {
    calendar_.push(t, std::move(fn));
  } else {
    heap_.push(t, std::move(fn));
  }
}

bool Scheduler::step() {
  if (empty()) return false;
  HDS_PROF_SCOPE(obs::ProfSubsystem::kEventQueue);
  SimTime t = 0;
  Action fn = kind_ == QueueKind::kCalendar ? calendar_.pop(t) : heap_.pop(t);
  now_ = t;
  ++executed_;
  fn();
  return true;
}

void Scheduler::run_until(SimTime t) {
  while (!empty() && next_time() <= t) step();
  if (now_ < t) now_ = t;
}

void Scheduler::run_all(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events && step(); ++i) {
  }
}

}  // namespace hds
