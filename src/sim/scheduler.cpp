#include "sim/scheduler.h"

#include <stdexcept>

#include "obs/profiler.h"

namespace hds {

void Scheduler::at(SimTime t, Action fn) {
  at_lane(t, make_lane(LaneClass::kExternal, 0, ext_seq_++), std::move(fn));
}

void Scheduler::at_lane(SimTime t, Lane lane, Action fn) {
  if (t < now_) throw std::invalid_argument("Scheduler::at: time in the past");
  if (kind_ == QueueKind::kCalendar) {
    calendar_.push(t, lane, std::move(fn));
  } else {
    heap_.push(t, lane, std::move(fn));
  }
}

bool Scheduler::step() {
  if (empty()) return false;
  HDS_PROF_SCOPE(obs::ProfSubsystem::kEventQueue);
  SimTime t = 0;
  Lane lane = 0;
  Action fn = kind_ == QueueKind::kCalendar ? calendar_.pop(t, lane) : heap_.pop(t, lane);
  now_ = t;
  current_lane_ = lane;
  ++executed_;
  fn();
  return true;
}

void Scheduler::run_until(SimTime t) {
  while (!empty() && next_time() <= t) step();
  if (now_ < t) now_ = t;
}

void Scheduler::run_before(SimTime end) {
  while (!empty() && next_time() < end) step();
}

void Scheduler::run_all(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events && step(); ++i) {
  }
}

}  // namespace hds
