#include "sim/sync_system.h"

#include <stdexcept>

namespace hds {

SyncSystem::SyncSystem(SyncConfig cfg)
    : ids_(std::move(cfg.ids)),
      crashes_(std::move(cfg.crashes)),
      dying_copy_delivery_prob_(cfg.dying_copy_delivery_prob),
      rng_(cfg.seed) {
  if (ids_.empty()) throw std::invalid_argument("SyncSystem: need at least one process");
  if (crashes_.empty()) crashes_.resize(ids_.size());
  if (crashes_.size() != ids_.size()) {
    throw std::invalid_argument("SyncSystem: crash plan size != n");
  }
  procs_.resize(ids_.size());
}

void SyncSystem::set_process(ProcIndex i, std::unique_ptr<SyncProcess> p) {
  procs_.at(i) = std::move(p);
}

void SyncSystem::run_steps(std::size_t count) {
  for (ProcIndex i = 0; i < procs_.size(); ++i) {
    if (!procs_[i]) throw std::logic_error("SyncSystem: process not installed");
  }
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t s = step_++;
    // Per-destination inboxes: a dying sender's copies are dropped
    // independently per destination, so destinations see different subsets.
    std::vector<std::vector<Message>> inbox(n());
    for (ProcIndex i = 0; i < n(); ++i) {
      if (!alive_in_step(i, s)) continue;
      const bool dying = crashes_[i] && crashes_[i]->at_step == s;
      const bool partial = dying && crashes_[i]->partial_broadcast;
      for (Message& m : procs_[i]->step_send(s)) {
        m.meta_sender = i;
        ++messages_sent_;
        for (ProcIndex to = 0; to < n(); ++to) {
          if (partial && !rng_.chance(dying_copy_delivery_prob_)) continue;
          inbox[to].push_back(m);
        }
      }
    }
    for (ProcIndex i = 0; i < n(); ++i) {
      const bool dying = crashes_[i] && crashes_[i]->at_step == s;
      if (!alive_in_step(i, s) || dying) continue;
      procs_[i]->step_recv(s, inbox[i]);
    }
  }
}

std::vector<ProcIndex> SyncSystem::correct_set() const {
  std::vector<ProcIndex> out;
  for (ProcIndex i = 0; i < ids_.size(); ++i) {
    if (is_correct(i)) out.push_back(i);
  }
  return out;
}

Multiset<Id> SyncSystem::correct_ids() const {
  Multiset<Id> out;
  for (ProcIndex i : correct_set()) out.insert(ids_[i]);
  return out;
}

std::size_t SyncSystem::alive_count_in_step(std::size_t s) const {
  std::size_t c = 0;
  for (ProcIndex i = 0; i < ids_.size(); ++i) {
    if (alive_in_step(i, s)) ++c;
  }
  return c;
}

}  // namespace hds
