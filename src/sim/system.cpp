#include "sim/system.h"

#include <stdexcept>

#include "net/codec.h"
#include "obs/profiler.h"

namespace hds {

class System::NodeEnv final : public Env {
 public:
  NodeEnv(System& sys, ProcIndex idx) : sys_(sys), idx_(idx) {}

  [[nodiscard]] Id self_id() const override { return sys_.ids_.at(idx_); }

  void broadcast(Message m) override {
    if (!sys_.is_alive(idx_)) return;
    double p = 1.0;
    const auto& plan = sys_.crashes_.at(idx_);
    if (plan && plan->partial_broadcast && sys_.now() == plan->at) {
      p = sys_.dying_copy_delivery_prob_;
    }
    sys_.net_->broadcast(idx_, std::move(m), p);
  }

  TimerId set_timer(SimTime delay) override {
    if (delay < 0) throw std::invalid_argument("set_timer: negative delay");
    TimerId id = next_timer_++;
    // The arming event's lineage, captured so the fire can point back at it.
    // Always 0 with tracing off; the extra u64 still fits Action's inline
    // capture budget, so the hot path allocates nothing either way.
    const std::uint64_t tparent = sys_.causal_.parent;
    sys_.sched_.after(delay, [this, id, tparent] {
      if (!sys_.is_alive(idx_)) return;
      if (sys_.trace_.enabled()) {
        const std::uint64_t tid = sys_.causal_.fresh();
        sys_.causal_.parent = tid;
        sys_.causal_.tick();
        sys_.trace_.record(sys_.now(), TraceEvent::Kind::kTimer, idx_, {}, tid, tparent);
      }
      obs::inc(sys_.m_timer_fires_);
      HDS_PROF_SCOPE(obs::ProfSubsystem::kFdStep);
      sys_.procs_.at(idx_)->on_timer(*this, id);
    });
    return id;
  }

  [[nodiscard]] SimTime local_now() const override { return sys_.sched_.now(); }

 private:
  System& sys_;
  ProcIndex idx_;
  TimerId next_timer_ = 1;
};

System::~System() = default;

System::System(SystemConfig cfg)
    : ids_(std::move(cfg.ids)),
      crashes_(std::move(cfg.crashes)),
      dying_copy_delivery_prob_(cfg.dying_copy_delivery_prob),
      rng_(cfg.seed),
      sched_(cfg.queue),
      trace_(cfg.trace_capacity),
      metrics_(cfg.metrics),
      timing_(std::move(cfg.timing)) {
  if (ids_.empty()) throw std::invalid_argument("System: need at least one process");
  if (!timing_) throw std::invalid_argument("System: timing model required");
  if (crashes_.empty()) crashes_.resize(ids_.size());
  if (crashes_.size() != ids_.size()) throw std::invalid_argument("System: crash plan size != n");
  procs_.resize(ids_.size());
  envs_.reserve(ids_.size());
  for (ProcIndex i = 0; i < ids_.size(); ++i) {
    envs_.push_back(std::make_unique<NodeEnv>(*this, i));
  }
  net_ = std::make_unique<Network>(
      sched_, *timing_, rng_, ids_.size(),
      [this](ProcIndex to, const std::shared_ptr<const Message>& m) { deliver(to, m); },
      trace_.enabled() ? &trace_ : nullptr, metrics_);
  // Causal stamping rides the trace switch: with tracing off the session is
  // never touched and every meta_causal_* field stays 0.
  net_->set_causal(trace_.enabled() ? &causal_ : nullptr);
  // Byte accounting: estimate each broadcast's frame size with the v1 wire
  // codec, so sim runs report costs comparable with the socket substrate.
  // The per-sender envelope and the per-type codec lookup are memoized; only
  // the body is counting-encoded per broadcast, so sizes stay exact even for
  // bodies whose varint-encoded length varies run to run.
  frame_overhead_by_sender_.reserve(ids_.size());
  for (ProcIndex i = 0; i < ids_.size(); ++i) {
    frame_overhead_by_sender_.push_back(net::frame_overhead(i, ids_[i]));
  }
  net_->set_byte_meter([this](const Message& m, ProcIndex from) -> std::size_t {
    HDS_PROF_SCOPE(obs::ProfSubsystem::kCodecEncode);
    const net::BodyCodec* c = meter_codec_of(m.type);
    if (c == nullptr) return 0;
    const std::size_t body = net::encoded_body_size(*c, m);
    return frame_overhead_by_sender_[from] + net::varint_size(body) + body;
  });
  if (metrics_ != nullptr) m_timer_fires_ = &metrics_->counter("sim_timer_fires_total");
}

void System::set_process(ProcIndex i, std::unique_ptr<Process> p) {
  if (started_) throw std::logic_error("System: set_process after start");
  procs_.at(i) = std::move(p);
}

void System::start() {
  if (started_) throw std::logic_error("System: started twice");
  for (ProcIndex i = 0; i < procs_.size(); ++i) {
    if (!procs_[i]) throw std::logic_error("System: process not installed at index " +
                                           std::to_string(i));
  }
  started_ = true;
  for (ProcIndex i = 0; i < procs_.size(); ++i) {
    sched_.at(0, [this, i] {
      if (!is_alive(i)) return;
      if (trace_.enabled()) {
        // Each start is a lineage root: everything the process does from
        // here chains back to this id.
        const std::uint64_t sid = causal_.fresh();
        causal_.parent = sid;
        trace_.record(0, TraceEvent::Kind::kStart, i, {}, sid, 0);
      }
      HDS_PROF_SCOPE(obs::ProfSubsystem::kFdStep);
      procs_[i]->on_start(*envs_[i]);
    });
    if (trace_.enabled() && crashes_[i]) {
      const SimTime when = crashes_[i]->at;
      // Guarded: an injected crash may have superseded the planned one by
      // the time this event fires (inject_crash records its own event).
      sched_.at(when, [this, i, when] {
        if (crashes_[i] && crashes_[i]->at == when) {
          trace_.record(when, TraceEvent::Kind::kCrash, i);
        }
      });
    }
  }
}

const net::BodyCodec* System::meter_codec_of(const std::string& type) {
  if (meter_last_ != SIZE_MAX && meter_cache_[meter_last_].type == type) {
    return meter_cache_[meter_last_].codec;
  }
  for (std::size_t s = 0; s < meter_cache_.size(); ++s) {
    if (meter_cache_[s].type == type) {
      meter_last_ = s;
      return meter_cache_[s].codec;
    }
  }
  meter_cache_.push_back(MeterCacheEntry{type, net::builtin_codecs().by_type(type)});
  meter_last_ = meter_cache_.size() - 1;
  return meter_cache_[meter_last_].codec;
}

void System::set_interposer(LinkInterposer* li) { net_->set_interposer(li); }

void System::inject_crash(ProcIndex i, const std::string& why) {
  const SimTime t = now();
  auto& plan = crashes_.at(i);
  if (plan && plan->at <= t) return;  // already down, or going down this instant
  plan = CrashPlan{t, false};
  // An injected crash happens inside some dispatch; its parent is whatever
  // event the effector was reacting to.
  trace_.record(t, TraceEvent::Kind::kCrash, i, why, 0, causal_.parent);
}

bool System::run_all(std::uint64_t max_events) {
  sched_.run_all(max_events);
  return sched_.empty();
}

void System::deliver(ProcIndex to, const std::shared_ptr<const Message>& m) {
  if (!is_alive(to)) {
    net_->note_copy_to_dead();
    trace_.record(now(), TraceEvent::Kind::kToDead, to, m->type, m->meta_causal_id,
                  m->meta_causal_parent);
    return;
  }
  net_->note_delivered(now() - m->meta_sent_at, m->meta_wire_bytes);
  if (trace_.enabled()) {
    // Everything the handler sends is caused by this delivery; Lamport
    // receive rule on the carried clock.
    causal_.parent = m->meta_causal_id;
    causal_.merge(m->meta_causal_clock);
    trace_.record(now(), TraceEvent::Kind::kDeliver, to, m->type, m->meta_causal_id,
                  m->meta_causal_parent);
  }
  HDS_PROF_SCOPE(obs::ProfSubsystem::kFdStep);
  procs_.at(to)->on_message(*envs_.at(to), *m);
}

Env& System::env(ProcIndex i) { return *envs_.at(i); }

std::vector<ProcIndex> System::correct_set() const {
  std::vector<ProcIndex> out;
  for (ProcIndex i = 0; i < ids_.size(); ++i) {
    if (is_correct(i)) out.push_back(i);
  }
  return out;
}

Multiset<Id> System::correct_ids() const {
  Multiset<Id> out;
  for (ProcIndex i : correct_set()) out.insert(ids_[i]);
  return out;
}

Multiset<Id> System::all_ids() const { return Multiset<Id>(ids_.begin(), ids_.end()); }

std::size_t System::alive_count_at(SimTime t) const {
  std::size_t c = 0;
  for (ProcIndex i = 0; i < ids_.size(); ++i) {
    if (is_alive_at(i, t)) ++c;
  }
  return c;
}

}  // namespace hds
