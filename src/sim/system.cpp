#include "sim/system.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "exp/pool.h"
#include "net/codec.h"
#include "obs/profiler.h"

namespace hds {

class System::NodeEnv final : public Env {
 public:
  NodeEnv(System& sys, ProcIndex idx, ShardState& shard) : sys_(sys), idx_(idx), shard_(shard) {}

  [[nodiscard]] Id self_id() const override { return sys_.ids_.at(idx_); }

  void broadcast(Message m) override {
    // Aliveness against the owning shard's clock: under sharding the other
    // shards' clocks (and therefore System::now()) are mid-window.
    const SimTime now = shard_.sched.now();
    if (!sys_.is_alive_at(idx_, now)) return;
    double p = 1.0;
    const auto& plan = sys_.crashes_.at(idx_);
    if (plan && plan->partial_broadcast && now == plan->at) {
      p = sys_.dying_copy_delivery_prob_;
    }
    shard_.net->broadcast(idx_, std::move(m), p);
  }

  TimerId set_timer(SimTime delay) override {
    if (delay < 0) throw std::invalid_argument("set_timer: negative delay");
    TimerId id = next_timer_++;
    // The arming event's lineage, captured so the fire can point back at it.
    // Always 0 with tracing off; the extra u64 still fits Action's inline
    // capture budget, so the hot path allocates nothing either way.
    const std::uint64_t tparent = sys_.sessions_[idx_].parent;
    // The timer-arm count doubles as the lane sequence: per-owner monotone,
    // advanced only during the owner's own dispatches.
    shard_.sched.at_lane(shard_.sched.now() + delay, make_lane(LaneClass::kTimer, idx_, id),
                         [this, id, tparent] {
                           if (!sys_.is_alive_at(idx_, shard_.sched.now())) return;
                           if (sys_.trace_.enabled()) {
                             obs::CausalSession& cs = sys_.sessions_[idx_];
                             const std::uint64_t tid = cs.fresh();
                             cs.parent = tid;
                             cs.tick();
                             if (sys_.shards_ == 1) sys_.causal_obs_.parent = tid;
                             shard_.sink.record(shard_.sched.now(), shard_.sched.current_lane(),
                                                TraceEvent::Kind::kTimer, idx_, {}, tid, tparent);
                           }
                           obs::inc(sys_.m_timer_fires_);
                           HDS_PROF_SCOPE(obs::ProfSubsystem::kFdStep);
                           sys_.procs_.at(idx_)->on_timer(*this, id);
                         });
    return id;
  }

  [[nodiscard]] SimTime local_now() const override { return shard_.sched.now(); }

 private:
  System& sys_;
  ProcIndex idx_;
  ShardState& shard_;
  TimerId next_timer_ = 1;
};

System::~System() = default;

System::System(SystemConfig cfg)
    : ids_(std::move(cfg.ids)),
      crashes_(std::move(cfg.crashes)),
      dying_copy_delivery_prob_(cfg.dying_copy_delivery_prob),
      trace_(cfg.trace_capacity),
      metrics_(cfg.metrics),
      timing_(std::move(cfg.timing)) {
  if (ids_.empty()) throw std::invalid_argument("System: need at least one process");
  if (!timing_) throw std::invalid_argument("System: timing model required");
  if (crashes_.empty()) crashes_.resize(ids_.size());
  if (crashes_.size() != ids_.size()) throw std::invalid_argument("System: crash plan size != n");
  const std::size_t n = ids_.size();
  shards_ = cfg.shards == 0 ? 1 : std::min(cfg.shards, n);
  lookahead_ = timing_->min_delay();
  if (lookahead_ < 1) throw std::logic_error("System: timing model min_delay < 1");

  // Per-process rows. RNG row i is Rng::derived(seed, i): a sender's draws
  // depend only on its own dispatch sequence, which is a shard-count-
  // invariant subsequence of the canonical (time, lane) order — the reason
  // random schedules survive resharding bit-for-bit.
  rngs_.reserve(n);
  for (ProcIndex i = 0; i < n; ++i) rngs_.push_back(Rng::derived(cfg.seed, i));
  bcast_seq_.assign(n, 0);
  // Per-process causal sessions: folding the process index into the id's
  // node field keeps ids minted by different processes distinct, which the
  // lineage DAG needs now that minting is no longer serialized through one
  // session. (Node field is 16 bits; indexes wrap above 65535, which only
  // weakens dump readability, never ordering.)
  sessions_.reserve(n);
  for (ProcIndex i = 0; i < n; ++i) {
    sessions_.push_back(obs::CausalSession{obs::causal_node_base(i & 0xffff)});
  }

  procs_.resize(n);

  // Shards, their networks, and the cross-shard mailboxes.
  shards_vec_.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    shards_vec_.push_back(std::make_unique<ShardState>(cfg.queue, &trace_));
  }
  if (shards_ > 1) {
    for (std::size_t i = 0; i < shards_ * shards_; ++i) {
      mail_.push_back(std::make_unique<SpscMailbox<Network::CrossGroup>>(cfg.mailbox_capacity));
    }
    pool_ = std::make_unique<exp::ShardPool>(shards_);
  }
  frame_overhead_by_sender_.reserve(n);
  for (ProcIndex i = 0; i < n; ++i) {
    frame_overhead_by_sender_.push_back(net::frame_overhead(i, ids_[i]));
  }
  for (std::size_t s = 0; s < shards_; ++s) {
    ShardState& sh = *shards_vec_[s];
    sh.sink.set_buffered(shards_ > 1);
    sh.net = std::make_unique<Network>(
        sh.sched, *timing_, rngs_, bcast_seq_, n,
        [this, s](ProcIndex to, const std::shared_ptr<const Message>& m) { deliver(s, to, m); },
        &sh.sink, metrics_, shards_, s);
    // Causal stamping rides the trace switch: with tracing off the sessions
    // are never touched and every meta_causal_* field stays 0.
    sh.net->set_causal(trace_.enabled() ? &sessions_ : nullptr);
    // Byte accounting: estimate each broadcast's frame size with the v1 wire
    // codec, so sim runs report costs comparable with the socket substrate.
    // The per-sender envelope and the per-type codec lookup are memoized;
    // only the body is counting-encoded per broadcast, so sizes stay exact
    // even for bodies whose varint-encoded length varies run to run.
    sh.net->set_byte_meter([this, s](const Message& m, ProcIndex from) -> std::size_t {
      HDS_PROF_SCOPE(obs::ProfSubsystem::kCodecEncode);
      const net::BodyCodec* c = meter_codec_of(*shards_vec_[s], m.type);
      if (c == nullptr) return 0;
      const std::size_t body = net::encoded_body_size(*c, m);
      return frame_overhead_by_sender_[from] + net::varint_size(body) + body;
    });
    if (shards_ > 1) {
      sh.net->set_cross_send(
          [this, s](Network::CrossGroup g) { mail(s, g.dest_shard).push(std::move(g)); });
    }
  }
  envs_.reserve(n);
  for (ProcIndex i = 0; i < n; ++i) {
    envs_.push_back(std::make_unique<NodeEnv>(*this, i, *shards_vec_[i % shards_]));
  }
  if (metrics_ != nullptr) m_timer_fires_ = &metrics_->counter("sim_timer_fires_total");
}

void System::set_process(ProcIndex i, std::unique_ptr<Process> p) {
  if (started_) throw std::logic_error("System: set_process after start");
  procs_.at(i) = std::move(p);
}

void System::start() {
  if (started_) throw std::logic_error("System: started twice");
  for (ProcIndex i = 0; i < procs_.size(); ++i) {
    if (!procs_[i]) throw std::logic_error("System: process not installed at index " +
                                           std::to_string(i));
  }
  started_ = true;
  for (ProcIndex i = 0; i < procs_.size(); ++i) {
    ShardState& sh = *shards_vec_[i % shards_];
    sh.sched.at_lane(0, make_lane(LaneClass::kControl, i, 0), [this, i] {
      ShardState& sh2 = *shards_vec_[i % shards_];
      if (!is_alive_at(i, sh2.sched.now())) return;
      if (trace_.enabled()) {
        // Each start is a lineage root: everything the process does from
        // here chains back to this id.
        obs::CausalSession& cs = sessions_[i];
        const std::uint64_t sid = cs.fresh();
        cs.parent = sid;
        if (shards_ == 1) causal_obs_.parent = sid;
        sh2.sink.record(0, sh2.sched.current_lane(), TraceEvent::Kind::kStart, i, {}, sid, 0);
      }
      HDS_PROF_SCOPE(obs::ProfSubsystem::kFdStep);
      procs_[i]->on_start(*envs_[i]);
    });
    if (trace_.enabled() && crashes_[i]) {
      const SimTime when = crashes_[i]->at;
      // Guarded: an injected crash may have superseded the planned one by
      // the time this event fires (inject_crash records its own event).
      sh.sched.at_lane(when, make_lane(LaneClass::kControl, i, 1), [this, i, when] {
        if (crashes_[i] && crashes_[i]->at == when) {
          ShardState& sh2 = *shards_vec_[i % shards_];
          sh2.sink.record(when, sh2.sched.current_lane(), TraceEvent::Kind::kCrash, i);
        }
      });
    }
  }
}

const net::BodyCodec* System::meter_codec_of(ShardState& sh, const std::string& type) {
  if (sh.meter_last != SIZE_MAX && sh.meter_cache[sh.meter_last].type == type) {
    return sh.meter_cache[sh.meter_last].codec;
  }
  for (std::size_t s = 0; s < sh.meter_cache.size(); ++s) {
    if (sh.meter_cache[s].type == type) {
      sh.meter_last = s;
      return sh.meter_cache[s].codec;
    }
  }
  sh.meter_cache.push_back(MeterCacheEntry{type, net::builtin_codecs().by_type(type)});
  sh.meter_last = sh.meter_cache.size() - 1;
  return sh.meter_cache[sh.meter_last].codec;
}

Scheduler& System::scheduler() {
  if (shards_ > 1) {
    throw std::logic_error("System::scheduler: raw scheduler access requires shards == 1");
  }
  return shards_vec_[0]->sched;
}

void System::set_interposer(LinkInterposer* li) {
  if (shards_ > 1) {
    throw std::logic_error("System::set_interposer: chaos interposers require shards == 1");
  }
  shards_vec_[0]->net->set_interposer(li);
}

void System::inject_crash(ProcIndex i, const std::string& why) {
  const SimTime t = now();
  auto& plan = crashes_.at(i);
  if (plan && plan->at <= t) return;  // already down, or going down this instant
  plan = CrashPlan{t, false};
  // An injected crash happens inside some dispatch; its parent is whatever
  // event the effector was reacting to.
  ShardState& sh = *shards_vec_[i % shards_];
  sh.sink.record(t, sh.sched.current_lane(), TraceEvent::Kind::kCrash, i, why, 0,
                 causal_obs_.parent);
}

void System::run_until(SimTime t) {
  if (shards_ == 1) {
    shards_vec_[0]->sched.run_until(t);
    return;
  }
  run_windows(t, UINT64_MAX);
  for (auto& sh : shards_vec_) sh->sched.advance_to(t);
  merge_trace();
}

bool System::run_all(std::uint64_t max_events) {
  if (shards_ == 1) {
    shards_vec_[0]->sched.run_all(max_events);
    return shards_vec_[0]->sched.empty();
  }
  run_windows(kSimTimeMax - lookahead_ - 1, max_events);
  merge_trace();
  for (const auto& sh : shards_vec_) {
    if (!sh->sched.empty()) return false;
  }
  return true;
}

void System::run_windows(SimTime t_limit, std::uint64_t max_events) {
  for (;;) {
    drain_mailboxes();
    bool any = false;
    SimTime tmin = 0;
    for (auto& sh : shards_vec_) {
      if (sh->sched.empty()) continue;
      const SimTime nt = sh->sched.next_time();
      if (!any || nt < tmin) tmin = nt;
      any = true;
    }
    if (!any || tmin > t_limit) break;
    if (events_executed() >= max_events) break;
    // Conservative window [tmin, w_end): every cross-shard send issued by
    // an event at time >= tmin arrives at >= tmin + lookahead >= w_end, so
    // the window's event set is closed before it starts executing.
    SimTime w_end = tmin + lookahead_;
    if (w_end > t_limit + 1) w_end = t_limit + 1;
    last_window_end_ = w_end;
    ++run_stats_.windows;
    pool_->run([this, w_end](std::size_t s) { shards_vec_[s]->sched.run_before(w_end); });
  }
}

void System::drain_mailboxes() {
  for (std::size_t d = 0; d < shards_; ++d) {
    for (std::size_t s = 0; s < shards_; ++s) {
      if (s == d) continue;
      drain_buf_.clear();
      mail(s, d).drain_into(drain_buf_);
      for (Network::CrossGroup& g : drain_buf_) {
        ++run_stats_.cross_groups;
        if (g.at < last_window_end_) ++run_stats_.lookahead_violations;
        shards_vec_[d]->net->schedule_fanout(g.at, g.lane, std::move(g.msg), std::move(g.tos));
      }
    }
  }
}

void System::merge_trace() {
  if (!trace_.enabled()) return;
  merge_buf_.clear();
  for (auto& sh : shards_vec_) {
    auto& b = sh->sink.buffer();
    merge_buf_.insert(merge_buf_.end(), std::make_move_iterator(b.begin()),
                      std::make_move_iterator(b.end()));
    b.clear();
  }
  // (at, lane, sub, j) is the canonical record order — the exact sequence a
  // single-shard run feeds the ring. Feeding the merged batch through
  // record() reproduces ring eviction and dropped counts byte-for-byte.
  std::sort(merge_buf_.begin(), merge_buf_.end(),
            [](const TraceSink::Keyed& x, const TraceSink::Keyed& y) {
              return std::tie(x.at, x.lane, x.sub, x.j) < std::tie(y.at, y.lane, y.sub, y.j);
            });
  for (TraceSink::Keyed& k : merge_buf_) {
    trace_.record(k.ev.at, k.ev.kind, k.ev.proc, std::move(k.ev.msg_type), k.ev.causal_id,
                  k.ev.causal_parent);
  }
  merge_buf_.clear();
}

std::uint64_t System::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_vec_) total += sh->sched.executed();
  return total;
}

ShardRunStats System::shard_stats() const {
  ShardRunStats out = run_stats_;
  out.events_executed = events_executed();
  for (const auto& mb : mail_) out.mailbox_spills += mb->spills();
  return out;
}

const NetworkStats& System::net_stats() const {
  merged_stats_ = NetworkStats{};
  for (const auto& sh : shards_vec_) {
    const NetworkStats& s = sh->net->stats();
    merged_stats_.broadcasts += s.broadcasts;
    merged_stats_.copies_sent += s.copies_sent;
    merged_stats_.copies_delivered += s.copies_delivered;
    merged_stats_.copies_lost_link += s.copies_lost_link;
    merged_stats_.copies_lost_dying_sender += s.copies_lost_dying_sender;
    merged_stats_.copies_duplicated += s.copies_duplicated;
    merged_stats_.copies_to_dead += s.copies_to_dead;
    merged_stats_.bytes_sent += s.bytes_sent;
    merged_stats_.bytes_received += s.bytes_received;
    merged_stats_.latency_sum += s.latency_sum;
    merged_stats_.latency_max = std::max(merged_stats_.latency_max, s.latency_max);
    for (const auto& [type, count] : s.broadcasts_by_type) {
      merged_stats_.broadcasts_by_type[type] += count;
    }
  }
  return merged_stats_;
}

void System::deliver(std::size_t shard, ProcIndex to, const std::shared_ptr<const Message>& m) {
  ShardState& sh = *shards_vec_[shard];
  const SimTime now = sh.sched.now();
  if (!is_alive_at(to, now)) {
    sh.net->note_copy_to_dead();
    sh.sink.record(now, sh.sched.current_lane(), TraceEvent::Kind::kToDead, to, m->type,
                   m->meta_causal_id, m->meta_causal_parent);
    return;
  }
  sh.net->note_delivered(now - m->meta_sent_at, m->meta_wire_bytes);
  if (trace_.enabled()) {
    // Everything the handler sends is caused by this delivery; Lamport
    // receive rule on the carried clock.
    obs::CausalSession& cs = sessions_[to];
    cs.parent = m->meta_causal_id;
    cs.merge(m->meta_causal_clock);
    if (shards_ == 1) causal_obs_.parent = m->meta_causal_id;
    sh.sink.record(now, sh.sched.current_lane(), TraceEvent::Kind::kDeliver, to, m->type,
                   m->meta_causal_id, m->meta_causal_parent);
  }
  HDS_PROF_SCOPE(obs::ProfSubsystem::kFdStep);
  procs_.at(to)->on_message(*envs_.at(to), *m);
}

Env& System::env(ProcIndex i) { return *envs_.at(i); }

std::vector<ProcIndex> System::correct_set() const {
  std::vector<ProcIndex> out;
  for (ProcIndex i = 0; i < ids_.size(); ++i) {
    if (is_correct(i)) out.push_back(i);
  }
  return out;
}

Multiset<Id> System::correct_ids() const {
  Multiset<Id> out;
  for (ProcIndex i : correct_set()) out.insert(ids_[i]);
  return out;
}

Multiset<Id> System::all_ids() const { return Multiset<Id>(ids_.begin(), ids_.end()); }

std::size_t System::alive_count_at(SimTime t) const {
  std::size_t c = 0;
  for (ProcIndex i = 0; i < ids_.size(); ++i) {
    if (is_alive_at(i, t)) ++c;
  }
  return c;
}

}  // namespace hds
