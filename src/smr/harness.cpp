#include "smr/harness.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "chaos/injector.h"
#include "consensus/harness.h"
#include "fd/impl/ohp_polling.h"
#include "sim/stacked_process.h"

namespace hds::smr {

namespace {

obs::Labels proc_labels(ProcIndex i) { return {{"proc", std::to_string(i)}}; }

}  // namespace

double latency_quantile(std::vector<SimTime> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(v[lo]) + frac * static_cast<double>(v[hi] - v[lo]);
}

SmrSimResult run_smr_sim(const SmrSimParams& p) {
  const std::size_t n = p.n;

  SystemConfig cfg;
  cfg.ids = p.ids.empty() ? ids_unique(n) : p.ids;
  if (p.full_stack) {
    cfg.timing = std::make_unique<PartialSyncTiming>(p.net);
  } else {
    cfg.timing = std::make_unique<AsyncTiming>(p.async_min, p.async_max);
  }
  cfg.crashes = p.crashes;
  cfg.seed = p.seed;
  cfg.trace_capacity = p.trace_capacity;
  cfg.metrics = p.metrics;
  cfg.queue = p.queue;
  // The oracle substrate samples sys.now() from inside dispatch (only
  // meaningful single-threaded), and chaos / interposer seams are
  // unsynchronized — all of those force one shard.
  if (p.full_stack && p.chaos == nullptr && p.link_interposer == nullptr) {
    cfg.shards = p.shards == 0 ? 1 : p.shards;
  }
  System sys(std::move(cfg));
  if (p.chaos != nullptr) p.chaos->arm(sys);
  if (p.link_interposer != nullptr) sys.set_interposer(p.link_interposer);

  std::optional<OracleHOmega> oracle;
  if (!p.full_stack) {
    oracle.emplace(GroundTruth::from(sys), [&sys] { return sys.now(); }, p.fd_stabilize, p.noise);
  }

  std::vector<SmrReplica*> reps(n);
  for (ProcIndex i = 0; i < n; ++i) {
    SmrConfig sc = p.smr;
    sc.n = n;
    sc.t = p.t;
    sc.replica = i;
    if (p.full_stack) {
      auto stack = std::make_unique<StackedProcess>();
      auto* fd = stack->add(std::make_unique<OHPPolling>());
      fd->attach_metrics(p.metrics, proc_labels(i));
      if (p.chaos != nullptr) {
        // Event-triggered fault clauses (crash-on-leader-change) observe the
        // detector's output stream, exactly as in the fig6/fig8 harnesses.
        if (FdOutputListener* l = p.chaos->trigger_listener(i, nullptr)) {
          fd->set_output_listener(l);
        }
      }
      auto rep = std::make_unique<SmrReplica>(sc, *fd, p.workload);
      rep->attach_metrics(p.metrics, proc_labels(i));
      reps[i] = stack->add(std::move(rep));
      sys.set_process(i, std::move(stack));
    } else {
      auto rep = std::make_unique<SmrReplica>(sc, oracle->handle(i), p.workload);
      rep->attach_metrics(p.metrics, proc_labels(i));
      reps[i] = rep.get();
      sys.set_process(i, std::move(rep));
    }
  }
  sys.start();

  const SimTime quiesce = p.quiesce_at > 0 ? p.quiesce_at : (p.run_for * 3) / 4;
  sys.run_until(quiesce);
  for (SmrReplica* r : reps) r->stop_workload();
  sys.run_until(p.run_for);

  const auto correct_converged = [&] {
    bool first = true;
    std::int64_t frontier = 0;
    std::uint64_t hash = 0;
    for (ProcIndex i = 0; i < n; ++i) {
      if (!sys.is_correct(i)) continue;
      const SmrReplica& r = *reps[i];
      if (r.applied_through() != r.committed_through()) return false;
      if (first) {
        frontier = r.applied_through();
        hash = r.kv().log_hash();
        first = false;
      } else if (r.applied_through() != frontier || r.kv().log_hash() != hash) {
        return false;
      }
    }
    return !first;
  };
  const SimTime limit = std::max(p.max_time, p.run_for);
  while (sys.now() < limit && !correct_converged()) {
    sys.run_until(std::min(limit, sys.now() + 250));
  }

  SmrSimResult res;
  res.converged = correct_converged();
  res.end_time = sys.now();
  res.broadcasts = sys.net_stats().broadcasts;
  res.broadcasts_by_type = sys.net_stats().broadcasts_by_type;

  std::vector<SimTime> lats;
  for (ProcIndex i = 0; i < n; ++i) {
    const SmrReplica& r = *reps[i];
    SmrReplicaStats st;
    st.correct = sys.is_correct(i);
    st.leading = r.leading();
    st.committed_through = r.committed_through();
    st.applied_through = r.applied_through();
    st.log_hash = r.kv().log_hash();
    st.state_hash = r.kv().state_hash();
    st.ops_done = r.workload().ops_done();
    st.ops_applied = r.kv().ops_applied();
    st.ops_deduped = r.kv().ops_deduped();
    st.batches_committed = r.batches_committed();
    st.appends_sent = r.appends_sent();
    st.repair_appends_sent = r.repair_appends_sent();
    st.acks_sent = r.acks_sent();
    st.epochs_started = r.epochs_started();
    st.recovery_instances = r.recovery_instances();
    st.engines_created = r.instances().engines_created();
    st.records_gced = r.instances().records_gced();
    st.applied_chain = r.applied_chain();
    st.latencies = r.workload().latencies();
    if (st.correct) {
      res.ops_total += st.ops_done;
      lats.insert(lats.end(), st.latencies.begin(), st.latencies.end());
    }
    res.replicas.push_back(std::move(st));
  }
  if (res.end_time > 0) {
    res.ops_per_ktick =
        static_cast<double>(res.ops_total) * 1000.0 / static_cast<double>(res.end_time);
  }
  res.latency_p50 = latency_quantile(lats, 0.50);
  res.latency_p99 = latency_quantile(lats, 0.99);

  // Safety half: every pair of replicas (crashed included) agrees on the
  // common prefix of the applied hash chain.
  for (std::size_t a = 0; a + 1 < res.replicas.size() && res.prefix_consistent; ++a) {
    for (std::size_t b = a + 1; b < res.replicas.size(); ++b) {
      const auto& ca = res.replicas[a].applied_chain;
      const auto& cb = res.replicas[b].applied_chain;
      const std::size_t common = std::min(ca.size(), cb.size());
      if (common > 0 && ca[common - 1] != cb[common - 1]) {
        res.prefix_consistent = false;
        break;
      }
    }
  }
  return res;
}

}  // namespace hds::smr
