// SMR experiment harness: assembles a replicated-log cluster on the sim
// substrate — HΩ oracle (the HAS[t < n/2, HΩ] setting) or the full
// OHPPolling detector stack under partial synchrony — drives the closed-loop
// client workload, quiesces it, and reports throughput, commit-latency
// percentiles and the cross-replica convergence verdict.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "fd/oracles.h"
#include "obs/metrics.h"
#include "sim/system.h"
#include "sim/timing.h"
#include "smr/replica.h"
#include "smr/workload.h"

namespace hds {
namespace chaos {
class FaultInjector;
}  // namespace chaos
}  // namespace hds

namespace hds::smr {

struct SmrSimParams {
  std::size_t n = 3;
  std::size_t t = 1;
  std::vector<Id> ids;  // empty = unique identifiers 1..n
  std::vector<std::optional<CrashPlan>> crashes;

  SmrConfig smr;            // n / t / replica are filled in per process
  WorkloadConfig workload;  // per-replica clients (client ids never collide)

  SimTime run_for = 6000;
  // Workload stop instant; 0 = 3/4 of run_for. The protocol keeps running
  // after quiesce so in-flight batches land and replicas converge.
  SimTime quiesce_at = 0;
  // After run_for, keep running (in slices) until the correct replicas
  // converge or this cap hits; 0 = no linger.
  SimTime max_time = 0;

  // Substrate: false = HΩ oracle over AsyncTiming; true = OHPPolling
  // (Fig. 6 ▸ Corollary 2) over PartialSyncTiming.
  bool full_stack = false;
  SimTime fd_stabilize = 0;  // oracle mode
  OracleHOmega::Noise noise = OracleHOmega::Noise::kNone;
  SimTime async_min = 1, async_max = 8;
  PartialSyncTiming::Params net;  // full-stack mode

  std::uint64_t seed = 1;
  std::size_t trace_capacity = 0;
  obs::MetricsRegistry* metrics = nullptr;
  chaos::FaultInjector* chaos = nullptr;      // armed before start
  LinkInterposer* link_interposer = nullptr;  // wins over the injector's seam
  QueueKind queue = QueueKind::kCalendar;
  // Shard count for the conservative-synchronization engine; bit-identical
  // results at any value. Effective only in full-stack mode without chaos /
  // link_interposer: the oracle substrate reads sys.now() mid-dispatch and
  // the observer seams assume one execution thread, so those force 1.
  std::size_t shards = 1;
};

struct SmrReplicaStats {
  bool correct = false;
  bool leading = false;
  std::int64_t committed_through = 0;
  std::int64_t applied_through = 0;
  std::uint64_t log_hash = 0;
  std::uint64_t state_hash = 0;
  std::uint64_t ops_done = 0;        // closed-loop completions at this replica
  std::uint64_t ops_applied = 0;     // effective ops in the state machine
  std::uint64_t ops_deduped = 0;
  std::uint64_t batches_committed = 0;
  std::uint64_t appends_sent = 0;
  std::uint64_t repair_appends_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t epochs_started = 0;
  std::uint64_t recovery_instances = 0;
  std::uint64_t engines_created = 0;
  std::uint64_t records_gced = 0;
  std::vector<std::uint64_t> applied_chain;
  std::vector<SimTime> latencies;
};

struct SmrSimResult {
  // Every correct replica fully applied its log, and all of them hold the
  // same applied frontier and log hash.
  bool converged = false;
  // All replicas (crashed included) agree on the common prefix of their
  // applied hash chains — the safety half, meaningful even when a run is
  // cut short.
  bool prefix_consistent = true;
  std::uint64_t ops_total = 0;  // completions across correct replicas
  double ops_per_ktick = 0;     // ops_total / end_time * 1000
  double latency_p50 = 0;       // commit latency (submit → apply at origin)
  double latency_p99 = 0;
  SimTime end_time = 0;
  std::uint64_t broadcasts = 0;
  std::map<std::string, std::uint64_t> broadcasts_by_type;
  std::vector<SmrReplicaStats> replicas;
};

SmrSimResult run_smr_sim(const SmrSimParams& p);

// Exact empirical quantile (nearest-rank with interpolation); 0 on empty.
double latency_quantile(std::vector<SimTime> v, double q);

}  // namespace hds::smr
