// Core types of the SMR subsystem: client operations, proposal batches, and
// the wire bodies of the replicated-log protocol.
//
// The log separates *ordering* from *dissemination*. Consensus (the Fig. 8
// engine, one instance per log slot) only ever decides a batch identifier —
// a Value, which is all the paper's algorithm can carry — while batch bodies
// travel in the SMR messages below. A replica applies slot s once it knows
// both the committed identifier for s and the matching body.
//
// Epoch discipline (Multi-Paxos style, adapted to the broadcast-only Env):
// epoch e is owned by replica index e % n, so concurrently minted epochs
// are always distinct. A replica that has promised epoch e ignores appends,
// acks and proposals of lower epochs; commit counting is per-epoch. The
// HΩ detector only *triggers* epoch changes (it is the leader oracle);
// safety never depends on its output being right.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace hds::smr {

// One client operation. `client` is globally unique (the workload driver
// derives it from the replica index); `seq` makes the op idempotent — the
// state machine applies each (client, seq) at most once, which is what turns
// at-least-once delivery (re-forwarded ops, re-proposed batches) into
// exactly-once application.
struct SmrOp {
  std::uint64_t client = 0;
  std::int64_t seq = 0;
  std::int64_t key = 0;
  std::int64_t val = 0;
  // Payload padding: inert bytes sized by the workload's op_size knob, so
  // the wire cost of an op is honest without widening the KV model.
  std::vector<std::uint8_t> pad;
  friend bool operator==(const SmrOp&, const SmrOp&) = default;
};

// A proposal batch. `id` 0 is the reserved no-op filler (recovery decides it
// for holes); real ids pack (origin replica, origin-local sequence) so two
// replicas can never mint the same id.
struct SmrBatch {
  std::int64_t id = 0;
  std::vector<SmrOp> ops;
  friend bool operator==(const SmrBatch&, const SmrBatch&) = default;
};

inline constexpr std::int64_t kNoopBatchId = 0;

[[nodiscard]] inline std::int64_t make_batch_id(std::size_t origin_replica, std::int64_t seq) {
  return (static_cast<std::int64_t>(origin_replica) << 40) | seq;
}

// ------------------------------------------------------------- wire bodies

// One commit fact: slot s decided batch id. Commit knowledge travels as
// explicit (slot, id) records — never as a bare frontier number — because a
// committed id is unique per slot, so acting on a record is safe even when
// sender and receiver disagree about what is logged where (a bare frontier
// is not: after a competing recovery a replica can hold a different batch
// inside someone else's committed prefix). A commit record is semantically
// a batched Fig. 8 DECIDE.
struct SmrCommitRec {
  std::int64_t slot = 0;
  std::int64_t id = 0;
  friend bool operator==(const SmrCommitRec&, const SmrCommitRec&) = default;
};

// Fast path: the lease holder assigns `slot` to `batch` and broadcasts one
// APPEND. `commits` piggybacks the commit records minted since the leader's
// previous broadcast, which is how commit knowledge reaches followers
// without a dedicated message.
struct SmrAppendMsg {
  std::int64_t epoch = 0;
  std::int64_t slot = 0;
  SmrBatch batch;
  std::vector<SmrCommitRec> commits;
  friend bool operator==(const SmrAppendMsg&, const SmrAppendMsg&) = default;
};

// Periodic cumulative acknowledgement — one broadcast covers every slot
// logged so far, so ack cost amortizes over many batches. Doubles as the
// follower-to-leader op channel: `pending` carries client ops submitted at
// this replica that are not yet applied (re-included until they are; the
// state machine's dedup makes the repetition harmless).
struct SmrAckMsg {
  std::int64_t epoch = 0;
  std::uint64_t replica = 0;
  std::int64_t logged_through = 0;   // contiguous prefix committed or logged under `epoch`
  std::int64_t applied_through = 0;  // contiguous prefix applied
  std::int64_t commit_frontier = 0;  // sender's committed prefix (informational)
  std::vector<SmrCommitRec> commits;  // a recent window of commit records
  std::vector<SmrOp> pending;
  friend bool operator==(const SmrAckMsg&, const SmrAckMsg&) = default;
};

// Epoch change, phase 1: the would-be leader of `epoch` asks for promises.
// `from_slot` is the first slot it considers in doubt (its frontier + 1).
struct SmrNewEpochMsg {
  std::int64_t epoch = 0;
  std::int64_t from_slot = 0;
  std::uint64_t replica = 0;
  friend bool operator==(const SmrNewEpochMsg&, const SmrNewEpochMsg&) = default;
};

// One logged slot reported in a promise: the batch, the epoch it was logged
// under, and whether the promiser already knows it committed.
struct SmrLogRec {
  std::int64_t slot = 0;
  std::int64_t epoch = 0;
  bool committed = false;
  SmrBatch batch;
  friend bool operator==(const SmrLogRec&, const SmrLogRec&) = default;
};

// Epoch change, phase 2: a promise not to take part in lower epochs, plus
// the promiser's uncommitted suffix (bodies included, so the new leader
// learns batches it never saw).
struct SmrPromiseMsg {
  std::int64_t epoch = 0;
  std::uint64_t replica = 0;
  std::int64_t frontier = 0;  // promiser's committed prefix
  std::vector<SmrLogRec> entries;
  friend bool operator==(const SmrPromiseMsg&, const SmrPromiseMsg&) = default;
};

// Recovery proposal: the new leader's chosen batch for an in-doubt slot.
// Every replica that accepts it creates the slot's Fig. 8 instance with
// exactly this value as its proposal, so the instance's validity pins the
// decision to the chosen (safe) batch.
struct SmrProposeMsg {
  std::int64_t epoch = 0;
  std::int64_t slot = 0;
  SmrBatch batch;
  friend bool operator==(const SmrProposeMsg&, const SmrProposeMsg&) = default;
};

inline constexpr const char* kSmrAppendType = "SMR_APPEND";
inline constexpr const char* kSmrAckType = "SMR_ACK";
inline constexpr const char* kSmrNewEpochType = "SMR_NEW_EPOCH";
inline constexpr const char* kSmrPromiseType = "SMR_PROMISE";
inline constexpr const char* kSmrProposeType = "SMR_PROPOSE";

}  // namespace hds::smr
