// The deterministic KV state machine every replica applies decided batches
// to, and the convergence fingerprints the tests and the cluster verifier
// compare across replicas.
//
// Determinism contract: the state after applying a batch sequence is a pure
// function of that sequence. The per-client sequence filter makes
// application idempotent (exactly-once semantics over an at-least-once
// log), and the order-sensitive mixing in apply() makes any reordering of
// effective ops visible in both the state hash and the log hash.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "smr/types.h"

namespace hds::smr {

class KvStateMachine {
 public:
  // Applies one decided batch at `slot`. Ops whose (client, seq) were
  // already applied are skipped (duplicates from re-forwarding or
  // re-proposal). Returns the ops that took effect this call.
  std::vector<SmrOp> apply(std::int64_t slot, const SmrBatch& batch);

  // Rolling FNV-1a over every applied (slot, batch id, effective op) — the
  // cross-replica convergence fingerprint. Two replicas with equal hashes
  // applied the same effective sequence.
  [[nodiscard]] std::uint64_t log_hash() const { return log_hash_; }

  // Hash of the current key/value map alone (order-free digest of state).
  [[nodiscard]] std::uint64_t state_hash() const;

  [[nodiscard]] std::uint64_t ops_applied() const { return ops_applied_; }
  [[nodiscard]] std::uint64_t ops_deduped() const { return ops_deduped_; }
  [[nodiscard]] std::size_t keys() const { return kv_.size(); }

  [[nodiscard]] std::int64_t get(std::int64_t key) const;
  [[nodiscard]] std::int64_t applied_seq(std::uint64_t client) const;

 private:
  std::map<std::int64_t, std::int64_t> kv_;
  std::map<std::uint64_t, std::int64_t> last_seq_;  // per-client dedup floor
  std::uint64_t log_hash_ = 14695981039346656037ULL;  // FNV offset basis
  std::uint64_t ops_applied_ = 0;
  std::uint64_t ops_deduped_ = 0;
};

}  // namespace hds::smr
