#include "smr/replica.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "consensus/messages.h"

namespace hds::smr {

// Per-slot Env wrapper handed to the Fig. 8 engines: forwards everything to
// the real Env but records which slot owns each timer the engine arms, so
// the replica can route timer fires back to the right engine. Engines never
// retain the Env beyond a call, so rebinding per call is safe.
class SmrReplica::SlotEnv final : public Env {
 public:
  SlotEnv(SmrReplica* owner, std::int64_t slot) : owner_(owner), slot_(slot) {}

  void bind(Env& real) { real_ = &real; }

  [[nodiscard]] Id self_id() const override { return real_->self_id(); }
  void broadcast(Message m) override { real_->broadcast(std::move(m)); }
  TimerId set_timer(SimTime delay) override {
    const TimerId id = real_->set_timer(delay);
    owner_->slot_timers_[id] = slot_;
    return id;
  }
  [[nodiscard]] SimTime local_now() const override { return real_->local_now(); }

 private:
  SmrReplica* owner_;
  std::int64_t slot_;
  Env* real_ = nullptr;
};

SmrReplica::SmrReplica(SmrConfig cfg, const HOmegaHandle& fd, WorkloadConfig wl)
    : cfg_(cfg),
      fd_(&fd),
      driver_(wl, cfg.replica),
      im_(InstanceManager::Config{cfg.n, cfg.t, cfg.guard_poll, 128}) {}

SmrReplica::~SmrReplica() = default;

void SmrReplica::attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels) {
  if (reg == nullptr) {
    m_ops_applied_ = m_ops_deduped_ = m_batches_ = m_appends_ = m_repair_appends_ = nullptr;
    m_acks_ = m_epoch_changes_ = m_recovery_instances_ = m_instances_gced_ = nullptr;
    m_commit_frontier_ = m_applied_frontier_ = m_inflight_ = m_leading_ = nullptr;
    m_commit_latency_ = m_batch_ops_ = nullptr;
    return;
  }
  m_ops_applied_ = &reg->counter("smr_ops_applied_total", labels);
  m_ops_deduped_ = &reg->counter("smr_ops_deduped_total", labels);
  m_batches_ = &reg->counter("smr_batches_committed_total", labels);
  m_appends_ = &reg->counter("smr_appends_total", labels);
  m_repair_appends_ = &reg->counter("smr_repair_appends_total", labels);
  m_acks_ = &reg->counter("smr_acks_total", labels);
  m_epoch_changes_ = &reg->counter("smr_epoch_changes_total", labels);
  m_recovery_instances_ = &reg->counter("smr_recovery_instances_total", labels);
  m_instances_gced_ = &reg->counter("smr_instances_gced_total", labels);
  m_commit_frontier_ = &reg->gauge("smr_commit_frontier", labels);
  m_applied_frontier_ = &reg->gauge("smr_applied_frontier", labels);
  m_inflight_ = &reg->gauge("smr_instances_inflight", labels);
  m_leading_ = &reg->gauge("smr_leading", labels);
  m_commit_latency_ = &reg->histogram("smr_commit_latency", obs::latency_buckets(), labels);
  m_batch_ops_ = &reg->histogram("smr_batch_ops", obs::size_buckets(), labels);
}

void SmrReplica::on_start(Env& env) {
  const SimTime now = env.local_now();
  peers_.assign(cfg_.n, PeerState{});
  for (PeerState& p : peers_) p.heard_at = now;
  enqueue_local(driver_.start(now));
  lease_timer_ = env.set_timer(cfg_.lease_poll);
  // Acks staggered by replica index so the periodic broadcasts of n
  // replicas don't land on the same tick.
  ack_timer_ = env.set_timer(cfg_.ack_interval + static_cast<SimTime>(cfg_.replica));
  obs::set(m_leading_, 0);
}

void SmrReplica::on_message(Env& env, const Message& m) {
  if (m.type == kSmrAppendType) {
    if (const auto* b = m.as<SmrAppendMsg>()) on_append(env, *b);
  } else if (m.type == kSmrAckType) {
    if (const auto* b = m.as<SmrAckMsg>()) on_ack(env, *b);
  } else if (m.type == kSmrNewEpochType) {
    if (const auto* b = m.as<SmrNewEpochMsg>()) on_new_epoch(env, *b);
  } else if (m.type == kSmrPromiseType) {
    if (const auto* b = m.as<SmrPromiseMsg>()) on_promise(env, *b);
  } else if (m.type == kSmrProposeType) {
    if (const auto* b = m.as<SmrProposeMsg>()) on_propose(env, *b);
  } else if (m.type == kDecideType) {
    if (const auto* b = m.as<DecideMsg>()) {
      const std::int64_t s = b->instance;
      if (s <= applied_through_) return;
      InstanceManager::Slot& rec = im_.slot(s);
      if (rec.committed) return;
      if (rec.engine != nullptr) {
        rec.engine->on_message(slot_env(s, env), m);
        pump_engine(env, s);
      } else {
        on_decide(env, s, b->v);
      }
    }
  } else if (m.type == kCoordType) {
    if (const auto* b = m.as<CoordMsg>()) route_consensus(env, m, b->instance);
  } else if (m.type == kPh0Type) {
    if (const auto* b = m.as<Ph0Msg>()) route_consensus(env, m, b->instance);
  } else if (m.type == kPh1Type) {
    if (const auto* b = m.as<Ph1Msg>()) route_consensus(env, m, b->instance);
  } else if (m.type == kPh2Type) {
    if (const auto* b = m.as<Ph2Msg>()) route_consensus(env, m, b->instance);
  }
  // Anything else belongs to other components of the stack (FD traffic).
}

void SmrReplica::on_timer(Env& env, TimerId id) {
  if (id == lease_timer_) {
    lease_tick(env);
    return;
  }
  if (id == ack_timer_) {
    ack_tick(env);
    return;
  }
  if (id == batch_timer_) {
    batch_tick(env);
    return;
  }
  const auto it = slot_timers_.find(id);
  if (it == slot_timers_.end()) return;
  const std::int64_t s = it->second;
  slot_timers_.erase(it);
  const InstanceManager::Slot* rec = im_.find(s);
  if (rec == nullptr || rec->engine == nullptr) return;  // slot settled meanwhile
  im_.slot(s).engine->on_timer(slot_env(s, env), id);
  pump_engine(env, s);
}

// ------------------------------------------------------------ plumbing

Env& SmrReplica::slot_env(std::int64_t slot, Env& real) {
  std::unique_ptr<SlotEnv>& up = slot_envs_[slot];
  if (up == nullptr) up = std::make_unique<SlotEnv>(this, slot);
  up->bind(real);
  return *up;
}

void SmrReplica::route_consensus(Env& env, const Message& m, std::int64_t instance) {
  if (instance <= applied_through_) return;
  const InstanceManager::Slot* rec = im_.find(instance);
  if (rec != nullptr && rec->committed) return;
  if (rec != nullptr && rec->engine != nullptr) {
    im_.slot(instance).engine->on_message(slot_env(instance, env), m);
    pump_engine(env, instance);
    return;
  }
  im_.buffer_message(instance, m);
}

void SmrReplica::pump_engine(Env& env, std::int64_t slot) {
  InstanceManager::Slot& rec = im_.slot(slot);
  if (rec.engine == nullptr || !rec.engine->done() || rec.decision_taken) return;
  rec.decision_taken = true;
  const Value v = rec.engine->decision().value;
  settle_decided(env, slot, v);
  advance_commit_frontier();
  apply_ready(env);
  maybe_finish_recovery_decisions(env);
}

// -------------------------------------------------------- epoch machinery

void SmrReplica::observe_epoch(std::int64_t e) {
  if (e > promised_epoch_) promised_epoch_ = e;
  if (e > current_epoch_) {
    current_epoch_ = e;
    obs::inc(m_epoch_changes_);
    if (leading_ && epoch_owner(e) != cfg_.replica) step_down();
    if (recovering_ && e > recovery_epoch_) {
      recovering_ = false;
      recovery_proposed_ = false;
      promises_.clear();
      recovery_pending_.clear();
    }
  }
}

void SmrReplica::step_down() {
  leading_ = false;
  recovering_ = false;
  recovery_proposed_ = false;
  promises_.clear();
  recovery_pending_.clear();
  // In-flight ops are re-batched (or re-forwarded) later; the state
  // machine's dedup makes the retry exactly-once.
  inflight_ops_.clear();
  obs::set(m_leading_, 0);
}

void SmrReplica::lease_tick(Env& env) {
  const HOmegaOut h = fd_->h_omega();
  // Lead only while uniquely carrying the HΩ leader identifier: with
  // multiplicity > 1 several homonyms would all claim the lease.
  const bool want = h.leader != kBottomId && h.leader == env.self_id() && h.multiplicity == 1;
  const SimTime now = env.local_now();
  if (!want) {
    if (leading_ || recovering_) step_down();
  } else if (!leading_ && !recovering_) {
    start_epoch(env);
  } else if (recovering_ && now - recovery_started_ >= 8 * cfg_.lease_poll) {
    // Recovery stalled (lost messages, slow peers): re-broadcast its
    // current phase. Receivers treat the duplicates idempotently.
    recovery_started_ = now;
    if (!recovery_proposed_) {
      env.broadcast(make_message(kSmrNewEpochType,
                                 SmrNewEpochMsg{recovery_epoch_, recovery_from_, cfg_.replica}));
    } else {
      for (const std::int64_t s : recovery_pending_) {
        const InstanceManager::Slot* rec = im_.find(s);
        if (rec != nullptr && rec->has_entry) {
          env.broadcast(
              make_message(kSmrProposeType, SmrProposeMsg{recovery_epoch_, s, rec->batch}));
        }
      }
    }
  }
  lease_timer_ = env.set_timer(cfg_.lease_poll);
}

void SmrReplica::start_epoch(Env& env) {
  // Smallest epoch above everything observed that this replica owns.
  const std::int64_t n = static_cast<std::int64_t>(cfg_.n);
  std::int64_t e = std::max(promised_epoch_, current_epoch_) + 1;
  e += (static_cast<std::int64_t>(cfg_.replica) - (e % n) + n) % n;
  promised_epoch_ = e;
  current_epoch_ = e;
  recovering_ = true;
  recovery_proposed_ = false;
  recovery_epoch_ = e;
  recovery_from_ = committed_through_ + 1;
  recovery_started_ = env.local_now();
  promises_.clear();
  recovery_pending_.clear();
  ++epochs_started_;
  obs::inc(m_epoch_changes_);
  env.broadcast(make_message(kSmrNewEpochType, SmrNewEpochMsg{e, recovery_from_, cfg_.replica}));
}

void SmrReplica::on_new_epoch(Env& env, const SmrNewEpochMsg& ne) {
  if (ne.epoch < promised_epoch_) return;  // promise discipline
  observe_epoch(ne.epoch);
  // Promise: report every logged slot from the asker's frontier up —
  // including committed ones, so a leader that fell behind catches up.
  SmrPromiseMsg pr{ne.epoch, cfg_.replica, committed_through_, {}};
  for (auto it = im_.lower_bound(ne.from_slot); it != im_.end(); ++it) {
    const InstanceManager::Slot& rec = it->second;
    if (rec.has_entry) {
      pr.entries.push_back(SmrLogRec{it->first, rec.epoch, rec.committed, rec.batch});
    }
  }
  env.broadcast(make_message(kSmrPromiseType, std::move(pr)));
}

void SmrReplica::on_promise(Env& env, const SmrPromiseMsg& pr) {
  if (!recovering_ || pr.epoch != recovery_epoch_) return;  // not collecting this epoch
  promises_.emplace(pr.replica, pr);  // first promise per replica wins
  // Entries the promiser knows committed are settled facts — adopt them.
  for (const SmrLogRec& lr : pr.entries) {
    if (!lr.committed || lr.slot <= committed_through_) continue;
    InstanceManager::Slot& rec = im_.slot(lr.slot);
    if (rec.committed) continue;
    rec.has_entry = true;
    rec.batch = lr.batch;
    rec.epoch = lr.epoch;
    rec.decided_known = true;
    rec.decided_id = lr.batch.id;
    note_committed(lr.slot);
  }
  advance_commit_frontier();
  apply_ready(env);
  if (recovering_ && !recovery_proposed_ && promises_.size() >= quorum()) finish_recovery(env);
}

void SmrReplica::finish_recovery(Env& env) {
  recovery_proposed_ = true;
  // Chosen batch per in-doubt slot: highest logging epoch across the
  // promise quorum and our own log (the Paxos phase-1 rule); unreported
  // slots become no-ops.
  std::map<std::int64_t, SmrLogRec> chosen;
  std::int64_t top = committed_through_;
  const auto consider = [&](std::int64_t slot, std::int64_t epoch, const SmrBatch& batch) {
    if (slot <= committed_through_) return;
    top = std::max(top, slot);
    auto [it, fresh] = chosen.emplace(slot, SmrLogRec{slot, epoch, false, batch});
    if (!fresh && epoch > it->second.epoch) it->second = SmrLogRec{slot, epoch, false, batch};
  };
  for (const auto& [r, pr] : promises_) {
    for (const SmrLogRec& lr : pr.entries) consider(lr.slot, lr.epoch, lr.batch);
  }
  for (auto it = im_.lower_bound(committed_through_ + 1); it != im_.end(); ++it) {
    if (it->second.has_entry) consider(it->first, it->second.epoch, it->second.batch);
  }
  recovery_top_ = top;
  for (std::int64_t s = committed_through_ + 1; s <= top; ++s) {
    InstanceManager::Slot& rec = im_.slot(s);
    if (rec.committed) continue;
    SmrBatch b;  // id 0 = no-op filler for holes
    const auto it = chosen.find(s);
    if (it != chosen.end()) b = it->second.batch;
    rec.has_entry = true;
    rec.batch = b;
    rec.epoch = recovery_epoch_;
    env.broadcast(make_message(kSmrProposeType, SmrProposeMsg{recovery_epoch_, s, b}));
    im_.get_or_create(s, b.id, *fd_, slot_env(s, env));
    ++recovery_instances_;
    obs::inc(m_recovery_instances_);
    recovery_pending_.insert(s);
  }
  // An instance may decide synchronously (n − t = 1); consume now.
  const std::set<std::int64_t> pending = recovery_pending_;
  for (const std::int64_t s : pending) pump_engine(env, s);
  advance_commit_frontier();
  apply_ready(env);
  maybe_finish_recovery_decisions(env);
}

void SmrReplica::maybe_finish_recovery_decisions(Env& env) {
  if (recovering_ && recovery_proposed_ && recovery_pending_.empty()) become_leader(env);
}

void SmrReplica::become_leader(Env& env) {
  leading_ = true;
  recovering_ = false;
  recovery_proposed_ = false;
  promises_.clear();
  recovery_pending_.clear();
  inflight_ops_.clear();
  next_slot_ = std::max(committed_through_, recovery_top_);
  commits_broadcast_through_ = committed_through_;
  obs::set(m_leading_, 1);
  if (batch_timer_ == 0) batch_timer_ = env.set_timer(cfg_.batch_interval);
  flush_batches(env);
}

void SmrReplica::on_propose(Env& env, const SmrProposeMsg& pp) {
  if (pp.epoch < promised_epoch_) return;  // promise discipline: a stale
  // recovery cannot reach its n−t phase-1 threshold and wedges harmlessly
  observe_epoch(pp.epoch);
  if (pp.slot <= applied_through_) return;
  InstanceManager::Slot& rec = im_.slot(pp.slot);
  if (!rec.committed) {
    if (!(rec.decided_known && rec.decided_id != pp.batch.id)) {
      rec.has_entry = true;
      rec.batch = pp.batch;
      rec.epoch = pp.epoch;
      if (rec.decided_known) note_committed(pp.slot);
    }
    // Propose exactly the leader's choice: first creation wins, so a
    // duplicate or a concurrent creation cannot change the proposal.
    im_.get_or_create(pp.slot, pp.batch.id, *fd_, slot_env(pp.slot, env));
    pump_engine(env, pp.slot);
  }
  advance_commit_frontier();
  apply_ready(env);
}

// ---------------------------------------------------------- fast path

void SmrReplica::on_append(Env& env, const SmrAppendMsg& a) {
  const bool fresh = a.epoch >= promised_epoch_;
  if (fresh) {
    observe_epoch(a.epoch);
    peers_[epoch_owner(a.epoch)].heard_at = env.local_now();
  }
  // Commit records settle slots regardless of the carrying epoch:
  // commitment is final, and a repair append from a deposed (or
  // never-leading) peer is tagged with whatever epoch that peer last saw.
  // The promise discipline below only guards UNCOMMITTED entries.
  for (const SmrCommitRec& cr : a.commits) settle_decided(env, cr.slot, cr.id);
  if (a.slot > applied_through_) {
    InstanceManager::Slot& rec = im_.slot(a.slot);
    if (!rec.committed) {
      const bool matches_decision = rec.decided_known && rec.decided_id == a.batch.id;
      const bool contradicts_decision = rec.decided_known && rec.decided_id != a.batch.id;
      if (matches_decision || (fresh && !contradicts_decision)) {
        rec.has_entry = true;
        rec.batch = a.batch;
        rec.epoch = a.epoch;
        if (rec.decided_known) note_committed(a.slot);
      }
    }
  }
  advance_commit_frontier();
  apply_ready(env);
  maybe_finish_recovery_decisions(env);
}

void SmrReplica::on_ack(Env& env, const SmrAckMsg& a) {
  if (a.replica < peers_.size()) {
    PeerState& p = peers_[a.replica];
    p.heard_at = env.local_now();
    p.applied_through = std::max(p.applied_through, a.applied_through);
    p.epoch = a.epoch;
    p.logged_through = a.logged_through;  // commit counting re-checks the epoch
  }
  apply_commit_records(env, a.commits);
  if (a.epoch > promised_epoch_) observe_epoch(a.epoch);
  if (leading_) {
    for (const SmrOp& op : a.pending) {
      if (kv_.applied_seq(op.client) >= op.seq) continue;
      const auto key = std::make_pair(op.client, op.seq);
      if (inflight_ops_.count(key) > 0) continue;
      forwarded_.emplace(key, op);
    }
    try_commit_by_acks();
  }
  advance_commit_frontier();
  apply_ready(env);
}

std::int64_t SmrReplica::self_logged_through() const {
  std::int64_t s = committed_through_;
  while (true) {
    const InstanceManager::Slot* rec = im_.find(s + 1);
    if (rec == nullptr) break;
    if (!(rec->committed || (rec->has_entry && rec->epoch == current_epoch_))) break;
    ++s;
  }
  return s;
}

void SmrReplica::ack_tick(Env& env) {
  SmrAckMsg a;
  a.epoch = current_epoch_;
  a.replica = cfg_.replica;
  a.logged_through = self_logged_through();
  a.applied_through = applied_through_;
  a.commit_frontier = committed_through_;
  a.commits =
      commit_records_since(committed_through_ - static_cast<std::int64_t>(cfg_.max_inflight));
  if (!leading_) {
    // The follower→leader op channel: re-included until applied; the state
    // machine's dedup makes the repetition exactly-once.
    for (const auto& [key, op] : local_pending_) {
      if (a.pending.size() >= cfg_.max_forward) break;
      a.pending.push_back(op);
    }
  }
  env.broadcast(make_message(kSmrAckType, std::move(a)));
  ++acks_sent_;
  obs::inc(m_acks_);
  // Repair is NOT a leader privilege: it only ever re-sends entries that
  // are committed locally, and committed content is final no matter who
  // carries it. Tying repair to the lease would leave a trailing peer
  // stranded whenever HΩ is between leaders — exactly the quiet period
  // after a churny run when repair matters most.
  repair_peers(env);
  ack_timer_ = env.set_timer(cfg_.ack_interval);
}

void SmrReplica::batch_tick(Env& env) {
  if (!leading_) {
    batch_timer_ = 0;  // re-armed by become_leader
    return;
  }
  flush_batches(env);
  batch_timer_ = env.set_timer(cfg_.batch_interval);
}

void SmrReplica::flush_batches(Env& env) {
  if (!leading_) return;
  while (im_.open_above(committed_through_) < cfg_.max_inflight) {
    SmrBatch b;
    const auto gather = [&](const auto& pool) {
      for (const auto& [key, op] : pool) {
        if (b.ops.size() >= cfg_.max_batch_ops) break;
        if (inflight_ops_.count(key) > 0) continue;
        if (kv_.applied_seq(key.first) >= key.second) continue;
        b.ops.push_back(op);
      }
    };
    gather(local_pending_);
    if (b.ops.size() < cfg_.max_batch_ops) gather(forwarded_);
    if (b.ops.empty()) break;
    b.id = make_batch_id(cfg_.replica, ++batch_seq_);
    const std::int64_t s = ++next_slot_;
    InstanceManager::Slot& rec = im_.slot(s);
    rec.has_entry = true;
    rec.batch = b;
    rec.epoch = current_epoch_;
    for (const SmrOp& op : b.ops) inflight_ops_.insert({op.client, op.seq});
    SmrAppendMsg ap{current_epoch_, s, b, commit_records_since(commits_broadcast_through_)};
    commits_broadcast_through_ = committed_through_;
    env.broadcast(make_message(kSmrAppendType, std::move(ap)));
    ++appends_sent_;
    obs::inc(m_appends_);
  }
  try_commit_by_acks();
  apply_ready(env);
}

void SmrReplica::try_commit_by_acks() {
  if (!leading_) return;
  while (true) {
    const std::int64_t s = committed_through_ + 1;
    const InstanceManager::Slot* rec = im_.find(s);
    if (rec == nullptr) break;
    if (rec->committed) {
      ++committed_through_;
      continue;
    }
    if (!rec->has_entry || rec->epoch != current_epoch_) break;
    std::size_t have = 1;  // self: the entry is logged at the current epoch
    for (std::size_t r = 0; r < peers_.size(); ++r) {
      if (r == cfg_.replica) continue;
      if (peers_[r].epoch == current_epoch_ && peers_[r].logged_through >= s) ++have;
    }
    if (have < quorum()) break;
    note_committed(s);
    ++committed_through_;
  }
  obs::set(m_commit_frontier_, committed_through_);
}

// ------------------------------------------------------ commit and apply

void SmrReplica::note_committed(std::int64_t slot) {
  InstanceManager::Slot& rec = im_.slot(slot);
  if (rec.committed) return;
  rec.committed = true;
  if (rec.batch.id != kNoopBatchId) {
    ++batches_committed_;
    obs::inc(m_batches_);
    obs::observe(m_batch_ops_, static_cast<std::int64_t>(rec.batch.ops.size()));
  }
}

void SmrReplica::settle_decided(Env& env, std::int64_t slot, std::int64_t id) {
  (void)env;
  if (slot <= applied_through_) return;
  InstanceManager::Slot& rec = im_.slot(slot);
  recovery_pending_.erase(slot);
  if (rec.committed) return;
  rec.decided_known = true;
  rec.decided_id = id;
  if (id == kNoopBatchId) {
    rec.has_entry = true;
    rec.batch = SmrBatch{};
    note_committed(slot);
  } else if (rec.has_entry && rec.batch.id == id) {
    note_committed(slot);
  } else if (rec.has_entry) {
    // Our logged body lost; drop it and wait for the committed one (a
    // repair append carries body + commit record together).
    rec.has_entry = false;
    rec.batch = SmrBatch{};
  }
}

void SmrReplica::apply_commit_records(Env& env, const std::vector<SmrCommitRec>& recs) {
  for (const SmrCommitRec& cr : recs) settle_decided(env, cr.slot, cr.id);
  if (!recs.empty()) {
    advance_commit_frontier();
    apply_ready(env);
    maybe_finish_recovery_decisions(env);
  }
}

std::vector<SmrCommitRec> SmrReplica::commit_records_since(std::int64_t from) const {
  std::vector<SmrCommitRec> out;
  for (auto it = im_.lower_bound(std::max<std::int64_t>(from, 0) + 1);
       it != im_.end() && it->first <= committed_through_; ++it) {
    if (it->second.committed) out.push_back(SmrCommitRec{it->first, it->second.batch.id});
  }
  return out;
}

void SmrReplica::advance_commit_frontier() {
  while (true) {
    const InstanceManager::Slot* rec = im_.find(committed_through_ + 1);
    if (rec == nullptr || !rec->committed) break;
    ++committed_through_;
  }
  obs::set(m_commit_frontier_, committed_through_);
}

void SmrReplica::apply_ready(Env& env) {
  while (true) {
    const std::int64_t s = applied_through_ + 1;
    const InstanceManager::Slot* recp = im_.find(s);
    if (recp == nullptr || !recp->committed || !recp->has_entry) break;
    const SmrBatch batch = recp->batch;
    const std::vector<SmrOp> effective = kv_.apply(s, batch);
    applied_chain_.push_back(kv_.log_hash());
    ++applied_through_;
    obs::inc(m_ops_applied_, effective.size());
    obs::inc(m_ops_deduped_, batch.ops.size() - effective.size());
    for (const SmrOp& op : batch.ops) {
      const auto key = std::make_pair(op.client, op.seq);
      inflight_ops_.erase(key);
      local_pending_.erase(key);
      forwarded_.erase(key);
    }
    const SimTime now = env.local_now();
    for (const SmrOp& op : effective) {
      // Apply at the origin replica is the client's ack: completes the
      // closed loop and records the commit latency.
      const std::size_t before = driver_.latencies().size();
      const std::optional<SmrOp> next = driver_.on_applied(op.client, op.seq, now);
      if (driver_.latencies().size() > before) {
        obs::observe(m_commit_latency_, driver_.latencies().back());
      }
      if (next.has_value()) enqueue_local({*next});
    }
  }
  obs::set(m_applied_frontier_, applied_through_);
  obs::set(m_inflight_, static_cast<std::int64_t>(im_.open_above(committed_through_)));
  collect_garbage(env.local_now());
}

void SmrReplica::collect_garbage(SimTime now) {
  // The erase frontier follows the slowest live peer, so a laggard (or a
  // supervised respawn) can still be repaired from the retained log. A peer
  // silent for peer_stale stops holding the frontier back.
  std::int64_t learned = applied_through_;
  for (std::size_t r = 0; r < peers_.size(); ++r) {
    if (r == cfg_.replica) continue;
    const PeerState& p = peers_[r];
    if (cfg_.peer_stale > 0 && now - p.heard_at > cfg_.peer_stale) continue;
    learned = std::min(learned, p.applied_through);
  }
  const std::int64_t keep = (applied_through_ - learned) + cfg_.gc_keep;
  const std::size_t erased = im_.gc(applied_through_, keep);
  if (erased > 0) obs::inc(m_instances_gced_, erased);
  while (!slot_envs_.empty() && slot_envs_.begin()->first <= applied_through_) {
    slot_envs_.erase(slot_envs_.begin());
  }
}

void SmrReplica::repair_peers(Env& env) {
  const SimTime now = env.local_now();
  std::set<std::int64_t> needed;
  for (std::size_t r = 0; r < peers_.size(); ++r) {
    if (r == cfg_.replica) continue;
    PeerState& p = peers_[r];
    if (cfg_.peer_stale > 0 && now - p.heard_at > cfg_.peer_stale) continue;  // dead
    if (p.heard_at == p.last_repair_heard) continue;  // no fresh ack; report in flight
    p.last_repair_heard = p.heard_at;
    if (p.applied_through >= committed_through_ ||
        p.applied_through != p.last_repair_applied) {
      // Caught up, or still making progress on its own.
      p.last_repair_applied = p.applied_through;
      p.stall_strikes = 0;
      continue;
    }
    // A fresh ack with no progress can be an honest race (the commit
    // records it needed were in flight when it was sent), so stalled means
    // TWO consecutive fresh acks with the frontier sat still.
    if (++p.stall_strikes < 2) continue;
    const std::int64_t hi = std::min(
        committed_through_, p.applied_through + static_cast<std::int64_t>(cfg_.repair_window));
    for (std::int64_t s = p.applied_through + 1; s <= hi; ++s) needed.insert(s);
  }
  for (const std::int64_t s : needed) {
    const InstanceManager::Slot* rec = im_.find(s);
    if (rec == nullptr || !rec->committed || !rec->has_entry) continue;
    SmrAppendMsg ap{current_epoch_, s, rec->batch, {SmrCommitRec{s, rec->batch.id}}};
    env.broadcast(make_message(kSmrAppendType, std::move(ap)));
    ++repair_appends_sent_;
    obs::inc(m_repair_appends_);
  }
}

void SmrReplica::on_decide(Env& env, std::int64_t slot, Value decided) {
  settle_decided(env, slot, decided);
  advance_commit_frontier();
  apply_ready(env);
  maybe_finish_recovery_decisions(env);
}

void SmrReplica::enqueue_local(std::vector<SmrOp> ops) {
  for (SmrOp& op : ops) {
    const auto key = std::make_pair(op.client, op.seq);
    local_pending_.emplace(key, std::move(op));
  }
}

}  // namespace hds::smr
