// Closed-loop client workload driver.
//
// Each simulated client keeps exactly one operation outstanding: it submits,
// waits until its replica *applies* the op (commit + apply is the client's
// ack), records the end-to-end latency, and immediately submits the next.
// Throughput is therefore load-generated the way a saturated service sees
// it: clients / commit-latency, not an open-loop firehose.
//
// Determinism: op streams are pure functions of (seed, replica, client) via
// the derived-RNG convention, so a run is reproducible across substrates
// and job counts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "smr/types.h"

namespace hds::smr {

struct WorkloadConfig {
  std::size_t clients = 8;       // closed-loop clients at this replica
  std::size_t op_size = 0;       // payload padding bytes per op
  std::int64_t key_space = 256;  // keys are drawn from [0, key_space)
  // Key skew: with probability `hot_prob` the key is drawn from the first
  // `hot_keys` keys (a cheap two-level approximation of a skewed access
  // distribution); 0 disables.
  double hot_prob = 0.0;
  std::int64_t hot_keys = 8;
  std::uint64_t seed = 1;
};

// Client identifiers pack (replica index, client index); kClientStride keeps
// them globally unique across replicas.
inline constexpr std::uint64_t kClientStride = 1u << 20;

class WorkloadDriver {
 public:
  WorkloadDriver(WorkloadConfig cfg, std::size_t replica);

  // The initial op of every client (call once, at start).
  std::vector<SmrOp> start(SimTime now);

  // Notifies the driver that (client, seq) was applied at `now`. Returns
  // the client's next op while the driver is running, nullopt after stop()
  // or for ops this driver does not own.
  std::optional<SmrOp> on_applied(std::uint64_t client, std::int64_t seq, SimTime now);

  // Stops issuing new ops (quiesce phase); in-flight ops still complete.
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::uint64_t ops_done() const { return ops_done_; }
  // Completed-op latencies in local time units, in completion order.
  [[nodiscard]] const std::vector<SimTime>& latencies() const { return latencies_; }

 private:
  struct Client {
    Rng rng;
    std::int64_t next_seq = 1;
    std::int64_t inflight_seq = 0;  // 0 = nothing outstanding
    SimTime submitted_at = 0;
  };

  SmrOp make_op(std::size_t c, SimTime now);

  WorkloadConfig cfg_;
  std::size_t replica_;
  std::vector<Client> clients_;
  std::vector<SimTime> latencies_;
  std::uint64_t ops_done_ = 0;
  bool stopped_ = false;
};

}  // namespace hds::smr
