#include "smr/kv.h"

namespace hds::smr {

namespace {

inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the value's 8 bytes.
  for (int b = 0; b < 8; ++b) {
    h = (h ^ ((v >> (8 * b)) & 0xFF)) * kFnvPrime;
  }
  return h;
}

}  // namespace

std::vector<SmrOp> KvStateMachine::apply(std::int64_t slot, const SmrBatch& batch) {
  std::vector<SmrOp> effective;
  log_hash_ = mix(log_hash_, static_cast<std::uint64_t>(slot));
  log_hash_ = mix(log_hash_, static_cast<std::uint64_t>(batch.id));
  for (const SmrOp& op : batch.ops) {
    auto [it, fresh] = last_seq_.try_emplace(op.client, 0);
    if (!fresh && op.seq <= it->second) {
      ++ops_deduped_;
      continue;
    }
    it->second = op.seq;
    // Order-sensitive write: a different application order of the same ops
    // yields a different value, so divergence can never hide in the state.
    std::int64_t& cell = kv_[op.key];
    cell = static_cast<std::int64_t>(static_cast<std::uint64_t>(cell) * kFnvPrime) + op.val;
    log_hash_ = mix(log_hash_, op.client);
    log_hash_ = mix(log_hash_, static_cast<std::uint64_t>(op.seq));
    log_hash_ = mix(log_hash_, static_cast<std::uint64_t>(op.key));
    log_hash_ = mix(log_hash_, static_cast<std::uint64_t>(op.val));
    ++ops_applied_;
    effective.push_back(op);
  }
  return effective;
}

std::uint64_t KvStateMachine::state_hash() const {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& [k, v] : kv_) {
    h = mix(h, static_cast<std::uint64_t>(k));
    h = mix(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

std::int64_t KvStateMachine::get(std::int64_t key) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? 0 : it->second;
}

std::int64_t KvStateMachine::applied_seq(std::uint64_t client) const {
  auto it = last_seq_.find(client);
  return it == last_seq_.end() ? 0 : it->second;
}

}  // namespace hds::smr
