#include "smr/workload.h"

namespace hds::smr {

WorkloadDriver::WorkloadDriver(WorkloadConfig cfg, std::size_t replica)
    : cfg_(cfg), replica_(replica) {
  clients_.reserve(cfg_.clients);
  for (std::size_t c = 0; c < cfg_.clients; ++c) {
    clients_.push_back(Client{
        Rng::derived(cfg_.seed, replica * kClientStride + c), 1, 0, 0});
  }
}

SmrOp WorkloadDriver::make_op(std::size_t c, SimTime now) {
  Client& cl = clients_[c];
  SmrOp op;
  op.client = static_cast<std::uint64_t>(replica_) * kClientStride + c;
  op.seq = cl.next_seq++;
  const bool hot = cfg_.hot_prob > 0.0 && cl.rng.chance(cfg_.hot_prob);
  const std::int64_t space = hot ? std::max<std::int64_t>(1, cfg_.hot_keys)
                                 : std::max<std::int64_t>(1, cfg_.key_space);
  op.key = cl.rng.uniform(0, space - 1);
  op.val = cl.rng.uniform(1, 1'000'000);
  op.pad.assign(cfg_.op_size, static_cast<std::uint8_t>(op.seq & 0xFF));
  cl.inflight_seq = op.seq;
  cl.submitted_at = now;
  return op;
}

std::vector<SmrOp> WorkloadDriver::start(SimTime now) {
  std::vector<SmrOp> out;
  if (stopped_) return out;
  out.reserve(clients_.size());
  for (std::size_t c = 0; c < clients_.size(); ++c) out.push_back(make_op(c, now));
  return out;
}

std::optional<SmrOp> WorkloadDriver::on_applied(std::uint64_t client, std::int64_t seq,
                                                SimTime now) {
  const std::uint64_t base = static_cast<std::uint64_t>(replica_) * kClientStride;
  if (client < base || client >= base + clients_.size()) return std::nullopt;
  Client& cl = clients_[client - base];
  if (cl.inflight_seq == 0 || seq < cl.inflight_seq) return std::nullopt;  // stale duplicate
  latencies_.push_back(now - cl.submitted_at);
  ++ops_done_;
  cl.inflight_seq = 0;
  if (stopped_) return std::nullopt;
  return make_op(client - base, now);
}

}  // namespace hds::smr
