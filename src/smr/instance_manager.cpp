#include "smr/instance_manager.h"

#include <utility>

namespace hds::smr {

const InstanceManager::Slot* InstanceManager::find(std::int64_t s) const {
  auto it = slots_.find(s);
  return it == slots_.end() ? nullptr : &it->second;
}

MajorityHOmegaConsensus* InstanceManager::get_or_create(std::int64_t s, Value proposal,
                                                        const HOmegaHandle& fd, Env& env) {
  Slot& rec = slots_[s];
  if (rec.engine != nullptr) return rec.engine.get();
  MajorityConsensusConfig cfg;
  cfg.n = cfg_.n;
  cfg.t = cfg_.t;
  cfg.proposal = proposal;
  cfg.guard_poll = cfg_.guard_poll;
  cfg.instance = s;
  rec.engine = std::make_unique<MajorityHOmegaConsensus>(cfg, fd);
  ++engines_created_;
  rec.engine->on_start(env);
  // Replay what arrived before the engine existed; the engine's own
  // instance filter re-checks each message, so a stray buffer entry is
  // harmless.
  std::vector<Message> pending = std::move(rec.buffered);
  rec.buffered.clear();
  for (const Message& m : pending) rec.engine->on_message(env, m);
  return rec.engine.get();
}

bool InstanceManager::buffer_message(std::int64_t s, const Message& m) {
  Slot& rec = slots_[s];
  if (rec.committed || rec.buffered.size() >= cfg_.max_buffered) return false;
  rec.buffered.push_back(m);
  return true;
}

std::size_t InstanceManager::gc(std::int64_t frontier, std::int64_t keep) {
  std::size_t erased = 0;
  for (auto it = slots_.begin(); it != slots_.end() && it->first <= frontier;) {
    Slot& rec = it->second;
    rec.engine.reset();
    rec.buffered.clear();
    rec.buffered.shrink_to_fit();
    if (it->first <= frontier - keep) {
      it = slots_.erase(it);
      ++erased;
      ++records_gced_;
    } else {
      ++it;
    }
  }
  return erased;
}

std::size_t InstanceManager::open_above(std::int64_t frontier) const {
  std::size_t open = 0;
  for (auto it = slots_.upper_bound(frontier); it != slots_.end(); ++it) {
    if (it->second.has_entry || it->second.engine != nullptr) ++open;
  }
  return open;
}

std::int64_t InstanceManager::max_slot() const {
  return slots_.empty() ? 0 : slots_.rbegin()->first;
}

}  // namespace hds::smr
