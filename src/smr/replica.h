// SmrReplica — one node of the client-facing replicated log.
//
// Steady state (the lease fast path): the replica that uniquely carries the
// HΩ leader identifier holds the lease for its epoch. It batches client
// operations and broadcasts ONE SMR_APPEND per batch; followers log the
// entries and answer with periodic *cumulative* SMR_ACKs, so the per-batch
// message cost converges to one broadcast. A batch commits once n−t
// replicas have it logged under the lease epoch (majority quorum, the same
// t < n/2 envelope as Fig. 8); commit knowledge piggybacks on the next
// append and on acks.
//
// Leader change (the consensus slow path): when HΩ moves, the new unique
// carrier mints a fresh epoch (epochs are owned by replica index modulo n,
// so concurrent minters never collide), collects n−t promises carrying the
// promisers' uncommitted suffixes, picks the safe batch per in-doubt slot
// (highest logging epoch — the Paxos phase-1 rule; quorum intersection
// guarantees any fast-path-committed batch is seen), and then settles every
// such slot through a full Fig. 8 consensus instance: the chosen batch is
// announced via SMR_PROPOSE and every participant proposes exactly it, so
// the instance's validity pins the decision while its agreement makes the
// outcome unconditional — even two replicas that both believe they lead
// cannot split a slot, because they feed the same instance.
//
// Convergence therefore never rests on the detector being right: HΩ only
// decides *when* the fast path runs. Promise discipline (reject lower
// epochs) plus per-epoch commit counting protect the fast path, and Fig. 8
// agreement protects every slot a leader change ever touched.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "fd/interfaces.h"
#include "obs/metrics.h"
#include "sim/process.h"
#include "smr/instance_manager.h"
#include "smr/kv.h"
#include "smr/types.h"
#include "smr/workload.h"

namespace hds::smr {

struct SmrConfig {
  std::size_t n = 0;        // replica count
  std::size_t t = 0;        // crash bound, t < n/2
  std::size_t replica = 0;  // this replica's index (deployment config, like n/t)

  SimTime batch_interval = 4;   // leader flush period
  SimTime ack_interval = 32;    // cumulative ack / forward period (>> batch_interval:
                                // this gap is what amortizes acks to ~0 per batch)
  SimTime lease_poll = 8;       // HΩ re-evaluation period
  SimTime guard_poll = 4;       // recovery engines' FD poll period

  std::size_t max_batch_ops = 32;  // ops per batch
  std::size_t max_inflight = 64;   // open slots above the commit frontier
  std::int64_t gc_keep = 256;      // applied slots retained for repair
  SimTime peer_stale = 0;          // exclude peers silent this long from the GC
                                   // frontier (0 = never exclude)
  std::size_t repair_window = 64;  // committed entries re-broadcast per repair tick
  std::size_t max_forward = 128;   // pending ops piggybacked per follower ack
};

class SmrReplica final : public Process {
 public:
  SmrReplica(SmrConfig cfg, const HOmegaHandle& fd, WorkloadConfig wl);
  ~SmrReplica() override;

  // Registers the smr_* instruments. Call before the system starts; null
  // detaches.
  void attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels = {});

  // Quiesce: stop issuing new client ops; the protocol keeps running so
  // in-flight batches commit and replicas converge.
  void stop_workload() { driver_.stop(); }

  void on_start(Env& env) override;
  void on_message(Env& env, const Message& m) override;
  void on_timer(Env& env, TimerId id) override;

  // ---- read-side (results, admin, verification) ----
  [[nodiscard]] std::int64_t committed_through() const { return committed_through_; }
  [[nodiscard]] std::int64_t applied_through() const { return applied_through_; }
  [[nodiscard]] const KvStateMachine& kv() const { return kv_; }
  [[nodiscard]] const WorkloadDriver& workload() const { return driver_; }
  [[nodiscard]] const InstanceManager& instances() const { return im_; }
  [[nodiscard]] bool leading() const { return leading_; }
  [[nodiscard]] std::int64_t current_epoch() const { return current_epoch_; }
  [[nodiscard]] std::uint64_t batches_committed() const { return batches_committed_; }
  [[nodiscard]] std::uint64_t appends_sent() const { return appends_sent_; }
  [[nodiscard]] std::uint64_t repair_appends_sent() const { return repair_appends_sent_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::uint64_t epochs_started() const { return epochs_started_; }
  [[nodiscard]] std::uint64_t recovery_instances() const { return recovery_instances_; }
  // Hash chain: applied_chain()[k] = log hash after applying slot k+1 — the
  // prefix-consistency fingerprint the determinism and chaos checks compare.
  [[nodiscard]] const std::vector<std::uint64_t>& applied_chain() const { return applied_chain_; }

 private:
  class SlotEnv;

  struct PeerState {
    std::int64_t applied_through = 0;
    std::int64_t logged_through = 0;
    std::int64_t epoch = 0;
    SimTime heard_at = 0;
    std::int64_t last_repair_applied = -1;  // progress marker for repair pacing
    SimTime last_repair_heard = -1;         // ack freshness marker for repair pacing
    int stall_strikes = 0;                  // consecutive fresh acks without progress
  };

  [[nodiscard]] std::size_t epoch_owner(std::int64_t e) const {
    return static_cast<std::size_t>(e % static_cast<std::int64_t>(cfg_.n));
  }
  [[nodiscard]] std::size_t quorum() const { return cfg_.n - cfg_.t; }
  [[nodiscard]] std::int64_t self_logged_through() const;

  Env& slot_env(std::int64_t slot, Env& real);
  void pump_engine(Env& env, std::int64_t slot);
  void route_consensus(Env& env, const Message& m, std::int64_t instance);

  void on_append(Env& env, const SmrAppendMsg& a);
  void on_ack(Env& env, const SmrAckMsg& a);
  void on_new_epoch(Env& env, const SmrNewEpochMsg& ne);
  void on_promise(Env& env, const SmrPromiseMsg& pr);
  void on_propose(Env& env, const SmrProposeMsg& pp);
  void on_decide(Env& env, std::int64_t slot, Value decided);

  void lease_tick(Env& env);
  void ack_tick(Env& env);
  void batch_tick(Env& env);

  void start_epoch(Env& env);
  void finish_recovery(Env& env);
  void become_leader(Env& env);
  void step_down();

  void observe_epoch(std::int64_t e);  // adopt a higher epoch seen on any message
  void note_committed(std::int64_t slot);
  // A known decision (Fig. 8 DECIDE or a piggybacked commit record) for
  // `slot`: commit on id match, drop a conflicting logged body.
  void settle_decided(Env& env, std::int64_t slot, std::int64_t id);
  void apply_commit_records(Env& env, const std::vector<SmrCommitRec>& recs);
  void advance_commit_frontier();
  void try_commit_by_acks();
  void apply_ready(Env& env);
  void collect_garbage(SimTime now);
  void flush_batches(Env& env);
  void repair_peers(Env& env);
  void enqueue_local(std::vector<SmrOp> ops);
  [[nodiscard]] std::vector<SmrCommitRec> commit_records_since(std::int64_t from) const;
  void maybe_finish_recovery_decisions(Env& env);

  SmrConfig cfg_;
  const HOmegaHandle* fd_;
  WorkloadDriver driver_;
  InstanceManager im_;
  KvStateMachine kv_;

  // Epoch state.
  std::int64_t promised_epoch_ = 0;  // highest epoch promised/observed
  std::int64_t current_epoch_ = 0;   // epoch whose appends we accept
  bool leading_ = false;
  bool recovering_ = false;
  bool recovery_proposed_ = false;  // phase 2 (PROPOSE) already broadcast
  std::int64_t recovery_epoch_ = 0;
  std::int64_t recovery_from_ = 1;
  std::int64_t recovery_top_ = 0;  // highest slot recovery settled or re-proposed
  SimTime recovery_started_ = 0;
  std::map<std::uint64_t, SmrPromiseMsg> promises_;
  std::set<std::int64_t> recovery_pending_;  // slots awaiting their instance's decision

  // Log frontiers.
  std::int64_t committed_through_ = 0;
  std::int64_t applied_through_ = 0;
  std::int64_t next_slot_ = 0;   // last slot this leader assigned
  std::int64_t batch_seq_ = 0;   // origin-local batch id sequence
  std::int64_t commits_broadcast_through_ = 0;  // commit records already piggybacked

  // Client ops: local = this replica's clients, forwarded = received from
  // follower acks (leader only). Keyed by (client, seq) so re-forwarding
  // cannot duplicate a pending entry.
  std::map<std::pair<std::uint64_t, std::int64_t>, SmrOp> local_pending_;
  std::map<std::pair<std::uint64_t, std::int64_t>, SmrOp> forwarded_;
  std::set<std::pair<std::uint64_t, std::int64_t>> inflight_ops_;  // batched, unapplied

  std::vector<PeerState> peers_;

  // Timers.
  TimerId lease_timer_ = 0;
  TimerId ack_timer_ = 0;
  TimerId batch_timer_ = 0;
  std::map<TimerId, std::int64_t> slot_timers_;
  std::map<std::int64_t, std::unique_ptr<SlotEnv>> slot_envs_;

  // Results / instruments.
  std::vector<std::uint64_t> applied_chain_;
  std::uint64_t batches_committed_ = 0;
  std::uint64_t appends_sent_ = 0;
  std::uint64_t repair_appends_sent_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t epochs_started_ = 0;
  std::uint64_t recovery_instances_ = 0;

  obs::Counter* m_ops_applied_ = nullptr;
  obs::Counter* m_ops_deduped_ = nullptr;
  obs::Counter* m_batches_ = nullptr;
  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_repair_appends_ = nullptr;
  obs::Counter* m_acks_ = nullptr;
  obs::Counter* m_epoch_changes_ = nullptr;
  obs::Counter* m_recovery_instances_ = nullptr;
  obs::Counter* m_instances_gced_ = nullptr;
  obs::Gauge* m_commit_frontier_ = nullptr;
  obs::Gauge* m_applied_frontier_ = nullptr;
  obs::Gauge* m_inflight_ = nullptr;
  obs::Gauge* m_leading_ = nullptr;
  obs::Histogram* m_commit_latency_ = nullptr;
  obs::Histogram* m_batch_ops_ = nullptr;
};

}  // namespace hds::smr
