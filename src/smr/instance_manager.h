// InstanceManager — the per-slot lifecycle of the replicated log.
//
// One record per log slot, holding the logged batch (with the epoch it was
// logged under), commit state, and — only when a leader change put the slot
// in doubt — a live Fig. 8 consensus engine deciding the slot's batch id.
// The get-or-create entry point is modeled on the RedisGears consensus
// instance registry: the first creation for an id wins, every later call
// returns the existing instance untouched, so concurrent recoveries cannot
// fork a slot's engine.
//
// Consensus messages that arrive before their slot's engine exists (a
// perfectly ordinary interleaving: a peer's recovery PROPOSE may still be in
// flight) are buffered per slot, bounded, and replayed into the engine at
// creation.
//
// GC discipline: a slot becomes collectable only once it is at or below the
// learned commit frontier (its outcome is then fixed forever). Engines are
// dropped as soon as their slot commits; the log record itself is retained
// for a configurable repair window behind the frontier, then erased. Slots
// above the frontier are never touched, decided or not.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "consensus/majority_homega.h"
#include "sim/message.h"
#include "sim/process.h"
#include "smr/types.h"

namespace hds::smr {

class InstanceManager {
 public:
  struct Config {
    std::size_t n = 0;          // replica count (the engines' n)
    std::size_t t = 0;          // crash bound (the engines' t)
    SimTime guard_poll = 4;     // engine FD re-evaluation period
    std::size_t max_buffered = 128;  // per-slot pre-creation message buffer
  };

  struct Slot {
    bool has_entry = false;       // a batch is logged here
    SmrBatch batch;
    std::int64_t epoch = 0;       // epoch the batch was logged under
    bool committed = false;
    bool decided_known = false;   // a Fig. 8 decision for this slot is known
    std::int64_t decided_id = kNoopBatchId;
    bool decision_taken = false;  // the engine's decision was consumed
    std::unique_ptr<MajorityHOmegaConsensus> engine;
    std::vector<Message> buffered;  // consensus msgs awaiting the engine
  };

  explicit InstanceManager(Config cfg) : cfg_(cfg) {}

  // The slot record, created empty on first touch / looked up afterwards.
  Slot& slot(std::int64_t s) { return slots_[s]; }
  [[nodiscard]] const Slot* find(std::int64_t s) const;
  [[nodiscard]] bool contains(std::int64_t s) const { return slots_.count(s) > 0; }

  // Get-or-create of the slot's consensus engine. On creation the engine is
  // configured with instance = slot, proposes `proposal`, is started on
  // `env`, and consumes any buffered messages; on a later call the existing
  // engine is returned as-is (the proposal argument is ignored — first
  // creation wins).
  MajorityHOmegaConsensus* get_or_create(std::int64_t s, Value proposal, const HOmegaHandle& fd,
                                         Env& env);

  // Buffers a consensus message for a slot whose engine does not exist yet.
  // Returns false (and drops the message) when the buffer is full or the
  // slot already committed — a late message for a settled slot is noise.
  bool buffer_message(std::int64_t s, const Message& m);

  // Drops engines of slots at or below `frontier` (their outcome is fixed)
  // and erases records at or below `frontier - keep` (past the repair
  // window). Never touches a slot above the frontier. Returns the number of
  // records erased.
  std::size_t gc(std::int64_t frontier, std::int64_t keep);

  // Slots above `frontier` holding an entry or an engine — the leader's
  // in-flight pipeline occupancy.
  [[nodiscard]] std::size_t open_above(std::int64_t frontier) const;

  [[nodiscard]] std::int64_t max_slot() const;
  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] std::uint64_t engines_created() const { return engines_created_; }
  [[nodiscard]] std::uint64_t records_gced() const { return records_gced_; }

  // Iteration (repair scans, promise building).
  [[nodiscard]] auto begin() const { return slots_.begin(); }
  [[nodiscard]] auto end() const { return slots_.end(); }
  [[nodiscard]] auto lower_bound(std::int64_t s) const { return slots_.lower_bound(s); }

 private:
  Config cfg_;
  std::map<std::int64_t, Slot> slots_;
  std::uint64_t engines_created_ = 0;
  std::uint64_t records_gced_ = 0;
};

}  // namespace hds::smr
