// Time-indexed value history, used to record failure-detector outputs so the
// spec checkers can evaluate the paper's temporal properties over a run.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/types.h"

namespace hds {

template <typename V>
class Trajectory {
 public:
  // Records that the variable holds `v` from time `t` on. Consecutive equal
  // values are coalesced so last_change() reflects real changes.
  void record(SimTime t, V v) {
    if (!points_.empty()) {
      if (t < points_.back().first) throw std::invalid_argument("Trajectory: time went backwards");
      if (points_.back().second == v) return;
    }
    points_.emplace_back(t, std::move(v));
  }

  [[nodiscard]] bool empty() const { return points_.empty(); }

  // Value in effect at time t (the last record at or before t).
  [[nodiscard]] const V& at(SimTime t) const {
    auto it = std::upper_bound(points_.begin(), points_.end(), t,
                               [](SimTime when, const auto& p) { return when < p.first; });
    if (it == points_.begin()) throw std::out_of_range("Trajectory::at: before first record");
    return std::prev(it)->second;
  }

  [[nodiscard]] const V& final() const {
    if (points_.empty()) throw std::out_of_range("Trajectory::final: empty");
    return points_.back().second;
  }

  // Time of the last recorded change.
  [[nodiscard]] SimTime last_change() const {
    if (points_.empty()) throw std::out_of_range("Trajectory::last_change: empty");
    return points_.back().first;
  }

  [[nodiscard]] const std::vector<std::pair<SimTime, V>>& points() const { return points_; }

  // One maximal run of a value, clipped to a query window; end is exclusive.
  struct Segment {
    SimTime begin = 0;
    SimTime end = 0;
    V value{};

    friend bool operator==(const Segment&, const Segment&) = default;
  };

  // Piecewise-constant view of the half-open window [from, to): one segment
  // per recorded run of a value, clipped to the window. The value is
  // undefined before the first record, so the view starts at
  // max(from, first record); an empty trajectory, a window ending at or
  // before the first record, or from >= to all yield no segments. Zero-length
  // pieces (same-time overwrites) are dropped, and because record() coalesces
  // equal consecutive values, adjacent segments always carry distinct values.
  [[nodiscard]] std::vector<Segment> segments(SimTime from, SimTime to) const {
    std::vector<Segment> out;
    if (points_.empty() || from >= to) return out;
    // Start from the last record at or before `from` (or the first record).
    auto it = std::upper_bound(points_.begin(), points_.end(), from,
                               [](SimTime when, const auto& p) { return when < p.first; });
    std::size_t i = it == points_.begin() ? 0 : static_cast<std::size_t>(it - points_.begin()) - 1;
    for (; i < points_.size(); ++i) {
      const SimTime b = std::max(from, points_[i].first);
      if (b >= to) break;
      const SimTime e = i + 1 < points_.size() ? std::min(to, points_[i + 1].first) : to;
      if (b >= e) continue;  // same-time overwrite: superseded within one instant
      out.push_back(Segment{b, e, points_[i].second});
    }
    return out;
  }

 private:
  std::vector<std::pair<SimTime, V>> points_;
};

}  // namespace hds
