// Time-indexed value history, used to record failure-detector outputs so the
// spec checkers can evaluate the paper's temporal properties over a run.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/types.h"

namespace hds {

template <typename V>
class Trajectory {
 public:
  // Records that the variable holds `v` from time `t` on. Consecutive equal
  // values are coalesced so last_change() reflects real changes.
  void record(SimTime t, V v) {
    if (!points_.empty()) {
      if (t < points_.back().first) throw std::invalid_argument("Trajectory: time went backwards");
      if (points_.back().second == v) return;
    }
    points_.emplace_back(t, std::move(v));
  }

  [[nodiscard]] bool empty() const { return points_.empty(); }

  // Value in effect at time t (the last record at or before t).
  [[nodiscard]] const V& at(SimTime t) const {
    auto it = std::upper_bound(points_.begin(), points_.end(), t,
                               [](SimTime when, const auto& p) { return when < p.first; });
    if (it == points_.begin()) throw std::out_of_range("Trajectory::at: before first record");
    return std::prev(it)->second;
  }

  [[nodiscard]] const V& final() const {
    if (points_.empty()) throw std::out_of_range("Trajectory::final: empty");
    return points_.back().second;
  }

  // Time of the last recorded change.
  [[nodiscard]] SimTime last_change() const {
    if (points_.empty()) throw std::out_of_range("Trajectory::last_change: empty");
    return points_.back().first;
  }

  [[nodiscard]] const std::vector<std::pair<SimTime, V>>& points() const { return points_; }

 private:
  std::vector<std::pair<SimTime, V>> points_;
};

}  // namespace hds
