// Quorum labels for the HSigma / ASigma detector families.
//
// A label is an opaque token: detectors only ever compare labels for equality
// and use them as map keys (the paper's S(x) is "the processes that ever put
// x in h_labels"). Different algorithms mint labels from different raw
// material — Fig. 7 uses the received identifier multiset itself, Figs. 1-2
// use identifier sets, Lemma 3 uses a count of bottoms — so Label provides
// one canonical constructor per provenance and a total order.
#pragma once

#include <compare>
#include <ostream>
#include <set>
#include <string>

#include "common/multiset.h"
#include "common/types.h"

namespace hds {

class Label {
 public:
  Label() = default;

  // Fig. 7: the label of a quorum is the identifier multiset observed in a
  // synchronous step.
  static Label of_multiset(const Multiset<Id>& m);

  // Figs. 1-2 (Theorem 1): labels are sets s of identifiers with id(p) in s.
  static Label of_set(const std::set<Id>& s);

  // Lemma 3 (AP -> HSigma): the label "bottom^y" minted from a count.
  static Label of_count(std::size_t y);

  // Theorem 3 (ASigma -> HSigma): carries an ASigma label through unchanged.
  static Label of_asigma(std::uint64_t raw);

  // Free-form label for oracles and tests.
  static Label of_text(std::string text);

  // Rehydrates a label from its canonical repr — the wire codec's inverse
  // of repr(). Must never be fed anything but a repr produced by a Label.
  static Label from_repr(std::string repr) { return Label(std::move(repr)); }

  [[nodiscard]] const std::string& repr() const { return repr_; }

  friend bool operator==(const Label&, const Label&) = default;
  friend auto operator<=>(const Label&, const Label&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Label& l) { return os << l.repr_; }

 private:
  explicit Label(std::string repr) : repr_(std::move(repr)) {}
  std::string repr_;
};

}  // namespace hds
