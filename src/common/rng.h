// Deterministic random source for the simulator and workload generators.
//
// Every run is parameterized by a single seed so that any test failure or
// benchmark row can be replayed exactly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace hds {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  // Uniform real in [0, 1).
  double uniform01();

  // Bernoulli trial.
  bool chance(double p);

  // Uniformly chosen index in [0, n).
  std::size_t index(std::size_t n);

  // Derives an independent child generator (for per-process streams).
  Rng fork();

  // An independent generator for stream `stream` of base seed `seed`
  // (splitmix64 finalizer over the pair). The parallel experiment engine
  // gives task k the stream-k generator, so a task's draws depend only on
  // (seed, k) — never on which worker thread ran it or in what order.
  static Rng derived(std::uint64_t seed, std::uint64_t stream);

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hds
