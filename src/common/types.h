// Core scalar types shared by every module.
//
// Terminology follows the paper: the system has n processes Pi = {0..n-1}
// (ProcIndex is a formalization/simulation device, never visible to the
// algorithms), and each process carries an identifier Id that need not be
// unique (homonymy). An anonymous system is the special case where every
// process carries kBottomId.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

namespace hds {

// Process identifier. Several processes may share one (homonyms).
using Id = std::uint64_t;

// The "default" identifier (the paper's bottom, used by anonymous systems).
inline constexpr Id kBottomId = 0;

// Index of a process in Pi. Only the simulator, oracles and checkers use it.
using ProcIndex = std::size_t;

// Consensus proposal/decision value. The paper's bottom is represented as
// std::nullopt wherever an estimate may be undefined.
using Value = std::int64_t;
using MaybeValue = std::optional<Value>;

// Simulated time, in abstract ticks. The global clock of the model; processes
// may only observe durations through their Env (timeouts), never the absolute
// value.
using SimTime = std::int64_t;
inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

// One-shot timer identifier, local to a process.
using TimerId = std::uint64_t;

// Round number in the consensus algorithms and in the Fig. 6 polling
// protocol.
using Round = std::int64_t;

}  // namespace hds
