#include "common/rng.h"

#include <stdexcept>

namespace hds {

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: empty range");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: empty range");
  return static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::fork() { return Rng(engine_()); }

}  // namespace hds
