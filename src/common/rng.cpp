#include "common/rng.h"

#include <stdexcept>

namespace hds {

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: empty range");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: empty range");
  return static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::fork() { return Rng(engine_()); }

Rng Rng::derived(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return Rng(z);
}

}  // namespace hds
