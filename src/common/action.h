// Action: a move-only callable of signature void() with small-buffer
// optimization, the event payload of the discrete-event scheduler.
//
// std::function heap-allocates most capturing closures; the simulator
// schedules one closure per timer and per broadcast fan-out group, so that
// allocation sits on the hottest path of every run. Action stores captures
// of up to kInlineBytes (48 bytes — enough for {pointer, shared_ptr,
// vector} fan-out closures) inline in the event record and only falls back
// to the heap beyond that. Dispatch is two raw function pointers (invoke +
// manage), no virtual tables, no RTTI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace hds {

class Action {
 public:
  // Inline capture budget. Chosen to fit the largest hot closure in the
  // simulator: Network's fan-out group {Network*, shared_ptr<const Message>,
  // std::vector<ProcIndex>} = 8 + 16 + 24 bytes.
  static constexpr std::size_t kInlineBytes = 48;

  Action() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Action> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Action(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      manage_ = [](Op op, void* self, void* other) {
        auto* fn = static_cast<Fn*>(self);
        if (op == Op::kMoveTo) ::new (other) Fn(std::move(*fn));
        fn->~Fn();
      };
    } else {
      heap_ = new Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      manage_ = [](Op op, void* self, void* other) {
        if (op == Op::kMoveTo) {
          *static_cast<void**>(other) = self;  // steal the heap object
        } else {
          delete static_cast<Fn*>(self);
        }
      };
      on_heap_ = true;
    }
  }

  Action(Action&& rhs) noexcept { move_from(rhs); }

  Action& operator=(Action&& rhs) noexcept {
    if (this != &rhs) {
      reset();
      move_from(rhs);
    }
    return *this;
  }

  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;

  ~Action() { reset(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  // True when the stored callable lives in the inline buffer (introspection
  // for tests and the allocation-counting benchmark).
  [[nodiscard]] bool is_inline() const { return invoke_ != nullptr && !on_heap_; }

  void operator()() { invoke_(target()); }

 private:
  enum class Op : std::uint8_t { kMoveTo, kDestroy };
  using Invoke = void (*)(void*);
  using Manage = void (*)(Op, void* self, void* other);

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  void* target() { return on_heap_ ? heap_ : static_cast<void*>(buf_); }

  void reset() {
    if (invoke_ != nullptr) manage_(Op::kDestroy, target(), nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
    on_heap_ = false;
  }

  // Precondition: *this is empty. Leaves rhs empty.
  void move_from(Action& rhs) noexcept {
    if (rhs.invoke_ == nullptr) return;
    invoke_ = rhs.invoke_;
    manage_ = rhs.manage_;
    on_heap_ = rhs.on_heap_;
    if (on_heap_) {
      rhs.manage_(Op::kMoveTo, rhs.heap_, &heap_);
    } else {
      rhs.manage_(Op::kMoveTo, rhs.buf_, buf_);
    }
    rhs.invoke_ = nullptr;
    rhs.manage_ = nullptr;
    rhs.on_heap_ = false;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* heap_ = nullptr;
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  bool on_heap_ = false;
};

}  // namespace hds
