// Fixed-capacity single-producer / single-consumer mailbox.
//
// The sharded simulator keeps one mailbox per directed shard pair (s, d):
// only shard s's worker pushes and only shard d's drain (which runs on one
// thread at a window barrier) pops, so the lock-free fast path needs exactly
// the SPSC guarantee. The ring is bounded; when a burst outruns capacity the
// producer falls back to a mutex-guarded spill vector rather than blocking
// mid-window (the consumer drains ring first, then spill, preserving push
// order). Spills are counted so runs can report mailbox pressure.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace hds {

template <typename T>
class SpscMailbox {
 public:
  // Capacity is rounded up to a power of two; one slot is sacrificed to
  // distinguish full from empty.
  explicit SpscMailbox(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscMailbox(SpscMailbox&&) = delete;
  SpscMailbox& operator=(SpscMailbox&&) = delete;

  // Producer side. Never blocks: overflow diverts to the spill vector.
  void push(T v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail <= mask_) {  // one free slot remains
      ring_[head & mask_] = std::move(v);
      head_.store(head + 1, std::memory_order_release);
    } else {
      std::lock_guard<std::mutex> lock(spill_mu_);
      spill_.push_back(std::move(v));
      ++spills_;
    }
  }

  // Consumer side: moves everything pushed so far into `out` (appended),
  // ring first then spill, i.e. push order.
  void drain_into(std::vector<T>& out) {
    const std::size_t head = head_.load(std::memory_order_acquire);
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    while (tail != head) {
      out.push_back(std::move(ring_[tail & mask_]));
      ++tail;
    }
    tail_.store(tail, std::memory_order_release);
    if (spills_.load(std::memory_order_relaxed) > drained_spills_) {
      std::lock_guard<std::mutex> lock(spill_mu_);
      for (T& v : spill_) out.push_back(std::move(v));
      drained_spills_ += spill_.size();
      spill_.clear();
    }
  }

  // Total pushes that missed the ring over the mailbox lifetime.
  [[nodiscard]] std::uint64_t spills() const { return spills_.load(std::memory_order_relaxed); }

 private:
  std::vector<T> ring_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> head_{0};  // next write index (producer-owned)
  std::atomic<std::size_t> tail_{0};  // next read index (consumer-owned)
  std::mutex spill_mu_;
  std::vector<T> spill_;
  std::atomic<std::uint64_t> spills_{0};
  std::uint64_t drained_spills_ = 0;  // consumer-only
};

}  // namespace hds
