#include "common/multiset.h"

#include "common/types.h"

namespace hds {

// Anchor the common instantiation in one translation unit so every user of
// Multiset<Id> shares it.
template class Multiset<Id>;

}  // namespace hds
