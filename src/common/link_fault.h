// Link-level fault-interposition seam shared by both substrates.
//
// A LinkInterposer sees every per-destination copy at the moment it is put
// on the wire and returns a verdict: drop it, inflate its latency, or
// inject trailing duplicate copies. The simulator's Network and the thread
// runtime's mailbox path both consult an installed interposer; when none is
// installed the cost is a single null check, so runs without a fault plan
// pay nothing. The chaos subsystem (src/chaos/) is the intended
// implementation — this header exists so neither engine depends on it.
//
// Call context: the simulator calls from the event loop (single-threaded);
// the thread runtime calls from whichever node thread is broadcasting.
// Implementations must synchronize internally and be deterministic as a
// function of (seed, call order) so failing runs replay exactly.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"

namespace hds {

struct CopyVerdict {
  bool drop = false;             // the copy never reaches the destination
  SimTime extra_delay = 0;       // added to the substrate's delivery latency
  std::size_t duplicates = 0;    // extra copies injected behind the original
  SimTime duplicate_spread = 0;  // each duplicate trails the original by [1, spread]
};

class LinkInterposer {
 public:
  virtual ~LinkInterposer() = default;

  // Fate of one copy of a `type` message sent at `now` on link from -> to.
  virtual CopyVerdict on_copy(SimTime now, ProcIndex from, ProcIndex to,
                              const std::string& type) = 0;
};

}  // namespace hds
