// Multiset (bag) algebra over ordered element types.
//
// The paper manipulates multisets of process identifiers throughout: I(S) is
// the multiset of identities of a set S of processes, mult_I(i) the
// multiplicity of identity i in I, and the HSigma quorum conditions are
// phrased as sub-multiset inclusion. This header provides that algebra with
// value semantics and total ordering (so multisets can key maps and serve as
// labels, as in the Fig. 7 detector).
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace hds {

template <typename T>
class Multiset {
 public:
  using CountMap = std::map<T, std::size_t>;

  Multiset() = default;

  // Builds the multiset of a range (with repetitions preserved).
  template <typename It>
  Multiset(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  Multiset(std::initializer_list<T> init) : Multiset(init.begin(), init.end()) {}

  static Multiset with_copies(const T& value, std::size_t count) {
    Multiset m;
    m.insert(value, count);
    return m;
  }

  void insert(const T& value, std::size_t count = 1) {
    if (count == 0) return;
    counts_[value] += count;
    size_ += count;
  }

  // Removes one instance; removing an absent element is a logic error.
  void erase_one(const T& value) {
    auto it = counts_.find(value);
    if (it == counts_.end()) throw std::out_of_range("Multiset::erase_one: absent element");
    if (--it->second == 0) counts_.erase(it);
    --size_;
  }

  void clear() {
    counts_.clear();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t distinct_size() const { return counts_.size(); }

  // The paper's mult_I(i): number of instances of `value`.
  [[nodiscard]] std::size_t multiplicity(const T& value) const {
    auto it = counts_.find(value);
    return it == counts_.end() ? 0 : it->second;
  }

  [[nodiscard]] bool contains(const T& value) const { return multiplicity(value) > 0; }

  // Smallest element (used by the Observation 1 / Corollary 2 leader rule).
  [[nodiscard]] const T& min() const {
    if (empty()) throw std::out_of_range("Multiset::min: empty multiset");
    return counts_.begin()->first;
  }

  // Sub-multiset inclusion: every element of *this appears in `other` with at
  // least the same multiplicity.
  [[nodiscard]] bool is_subset_of(const Multiset& other) const {
    if (size_ > other.size_) return false;
    for (const auto& [v, c] : counts_) {
      if (other.multiplicity(v) < c) return false;
    }
    return true;
  }

  // Multiset union taking per-element max of multiplicities.
  [[nodiscard]] Multiset union_max(const Multiset& other) const {
    Multiset out = *this;
    for (const auto& [v, c] : other.counts_) {
      auto& cur = out.counts_[v];
      if (c > cur) {
        out.size_ += c - cur;
        cur = c;
      } else if (cur == 0) {
        out.counts_.erase(v);
      }
    }
    return out;
  }

  // Additive union (sum of multiplicities).
  [[nodiscard]] Multiset sum(const Multiset& other) const {
    Multiset out = *this;
    for (const auto& [v, c] : other.counts_) out.insert(v, c);
    return out;
  }

  // Per-element min of multiplicities.
  [[nodiscard]] Multiset intersection(const Multiset& other) const {
    Multiset out;
    for (const auto& [v, c] : counts_) {
      std::size_t m = std::min(c, other.multiplicity(v));
      if (m > 0) out.insert(v, m);
    }
    return out;
  }

  [[nodiscard]] bool intersects(const Multiset& other) const {
    for (const auto& [v, c] : counts_) {
      (void)c;
      if (other.contains(v)) return true;
    }
    return false;
  }

  // Expansion into a sorted vector with repetitions.
  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (const auto& [v, c] : counts_) {
      for (std::size_t k = 0; k < c; ++k) out.push_back(v);
    }
    return out;
  }

  [[nodiscard]] const CountMap& counts() const { return counts_; }

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << *this;
    return os.str();
  }

  friend bool operator==(const Multiset& a, const Multiset& b) {
    return a.size_ == b.size_ && a.counts_ == b.counts_;
  }
  friend auto operator<=>(const Multiset& a, const Multiset& b) { return a.counts_ <=> b.counts_; }

  friend std::ostream& operator<<(std::ostream& os, const Multiset& m) {
    os << '{';
    bool first = true;
    for (const auto& [v, c] : m.counts_) {
      for (std::size_t k = 0; k < c; ++k) {
        if (!first) os << ',';
        os << v;
        first = false;
      }
    }
    return os << '}';
  }

 private:
  CountMap counts_;
  std::size_t size_ = 0;
};

}  // namespace hds
