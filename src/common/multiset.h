// Multiset (bag) algebra over ordered element types.
//
// The paper manipulates multisets of process identifiers throughout: I(S) is
// the multiset of identities of a set S of processes, mult_I(i) the
// multiplicity of identity i in I, and the HSigma quorum conditions are
// phrased as sub-multiset inclusion. This header provides that algebra with
// value semantics and total ordering (so multisets can key maps and serve as
// labels, as in the Fig. 7 detector).
//
// Storage is a policy: the default FlatStore keeps (value, count) entries in
// a sorted std::vector — the working sets here are identifier bags of at
// most a few dozen distinct values, where a contiguous scan beats a
// node-based tree on every operation. MapStore is the original std::map
// backend, kept as the semantics reference; the property suite cross-checks
// every operation against it. Both stores iterate entries in ascending value
// order, which the algebra below exploits with linear merges.
#pragma once

#include <algorithm>
#include <compare>
#include <cstddef>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hds {

namespace detail {

// synth-three-way: <=> when the type has it, otherwise derived from <.
struct SynthThreeWay {
  template <typename U>
  constexpr std::weak_ordering operator()(const U& a, const U& b) const {
    if constexpr (std::three_way_comparable<U>) {
      return a <=> b;
    } else {
      if (a < b) return std::weak_ordering::less;
      if (b < a) return std::weak_ordering::greater;
      return std::weak_ordering::equivalent;
    }
  }
};

}  // namespace detail

// Sorted-flat-vector storage: entries() is a std::vector<std::pair<T, n>>
// ordered by value. The default backend.
template <typename T>
class FlatStore {
 public:
  using Entry = std::pair<T, std::size_t>;
  using Entries = std::vector<Entry>;

  [[nodiscard]] const Entries& entries() const { return entries_; }
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  // Pointer to the count of `v`, or null when absent.
  [[nodiscard]] const std::size_t* find(const T& v) const {
    auto it = lower(v);
    return it != entries_.end() && !(v < it->first) ? &it->second : nullptr;
  }
  [[nodiscard]] std::size_t* find(const T& v) {
    auto it = lower(v);
    return it != entries_.end() && !(v < it->first) ? &it->second : nullptr;
  }

  // Count reference for `v`, inserting a zero entry when absent.
  [[nodiscard]] std::size_t& at_or_insert(const T& v) {
    auto it = lower(v);
    if (it == entries_.end() || v < it->first) it = entries_.insert(it, Entry{v, 0});
    return it->second;
  }

  // Precondition: `v` is present.
  void erase(const T& v) { entries_.erase(lower(v)); }

  // Precondition: `v` is greater than every stored value (merge-building).
  void append(const T& v, std::size_t count) { entries_.emplace_back(v, count); }

 private:
  [[nodiscard]] typename Entries::iterator lower(const T& v) {
    return std::lower_bound(entries_.begin(), entries_.end(), v,
                            [](const Entry& e, const T& x) { return e.first < x; });
  }
  [[nodiscard]] typename Entries::const_iterator lower(const T& v) const {
    return std::lower_bound(entries_.begin(), entries_.end(), v,
                            [](const Entry& e, const T& x) { return e.first < x; });
  }

  Entries entries_;
};

// The original std::map storage, kept as the behavioral reference.
template <typename T>
class MapStore {
 public:
  using Entries = std::map<T, std::size_t>;

  [[nodiscard]] const Entries& entries() const { return entries_; }
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  [[nodiscard]] const std::size_t* find(const T& v) const {
    auto it = entries_.find(v);
    return it == entries_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t* find(const T& v) {
    auto it = entries_.find(v);
    return it == entries_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t& at_or_insert(const T& v) { return entries_[v]; }

  void erase(const T& v) { entries_.erase(v); }

  void append(const T& v, std::size_t count) { entries_.emplace_hint(entries_.end(), v, count); }

 private:
  Entries entries_;
};

template <typename T, typename Store = FlatStore<T>>
class Multiset {
 public:
  using CountMap = typename Store::Entries;

  Multiset() = default;

  // Builds the multiset of a range (with repetitions preserved).
  template <typename It>
  Multiset(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  Multiset(std::initializer_list<T> init) : Multiset(init.begin(), init.end()) {}

  static Multiset with_copies(const T& value, std::size_t count) {
    Multiset m;
    m.insert(value, count);
    return m;
  }

  void insert(const T& value, std::size_t count = 1) {
    if (count == 0) return;
    store_.at_or_insert(value) += count;
    size_ += count;
  }

  // Removes one instance; removing an absent element is a logic error.
  void erase_one(const T& value) {
    std::size_t* c = store_.find(value);
    if (c == nullptr) throw std::out_of_range("Multiset::erase_one: absent element");
    if (--*c == 0) store_.erase(value);
    --size_;
  }

  void clear() {
    store_.clear();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t distinct_size() const { return store_.entry_count(); }

  // The paper's mult_I(i): number of instances of `value`.
  [[nodiscard]] std::size_t multiplicity(const T& value) const {
    const std::size_t* c = store_.find(value);
    return c == nullptr ? 0 : *c;
  }

  [[nodiscard]] bool contains(const T& value) const { return multiplicity(value) > 0; }

  // Smallest element (used by the Observation 1 / Corollary 2 leader rule).
  [[nodiscard]] const T& min() const {
    if (empty()) throw std::out_of_range("Multiset::min: empty multiset");
    return store_.entries().begin()->first;
  }

  // Sub-multiset inclusion: every element of *this appears in `other` with at
  // least the same multiplicity. Linear merge over the two sorted ranges.
  [[nodiscard]] bool is_subset_of(const Multiset& other) const {
    if (size_ > other.size_) return false;
    auto b = other.store_.entries().begin();
    const auto b_end = other.store_.entries().end();
    for (const auto& [v, c] : store_.entries()) {
      while (b != b_end && b->first < v) ++b;
      if (b == b_end || v < b->first || b->second < c) return false;
    }
    return true;
  }

  // Multiset union taking per-element max of multiplicities.
  [[nodiscard]] Multiset union_max(const Multiset& other) const {
    return merge(other, [](std::size_t a, std::size_t b) { return std::max(a, b); });
  }

  // Additive union (sum of multiplicities).
  [[nodiscard]] Multiset sum(const Multiset& other) const {
    return merge(other, [](std::size_t a, std::size_t b) { return a + b; });
  }

  // Per-element min of multiplicities.
  [[nodiscard]] Multiset intersection(const Multiset& other) const {
    return merge(other, [](std::size_t a, std::size_t b) { return std::min(a, b); });
  }

  [[nodiscard]] bool intersects(const Multiset& other) const {
    auto a = store_.entries().begin();
    auto b = other.store_.entries().begin();
    const auto a_end = store_.entries().end();
    const auto b_end = other.store_.entries().end();
    while (a != a_end && b != b_end) {
      if (a->first < b->first) {
        ++a;
      } else if (b->first < a->first) {
        ++b;
      } else {
        return true;
      }
    }
    return false;
  }

  // Expansion into a sorted vector with repetitions.
  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (const auto& [v, c] : store_.entries()) {
      for (std::size_t k = 0; k < c; ++k) out.push_back(v);
    }
    return out;
  }

  // Sorted (value, count) entries — a std::vector of pairs for the flat
  // backend, a std::map for the map backend; both iterate identically.
  [[nodiscard]] const CountMap& counts() const { return store_.entries(); }

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << *this;
    return os.str();
  }

  friend bool operator==(const Multiset& a, const Multiset& b) {
    return a.size_ == b.size_ &&
           std::equal(a.store_.entries().begin(), a.store_.entries().end(),
                      b.store_.entries().begin(), b.store_.entries().end(),
                      [](const auto& x, const auto& y) {
                        return x.first == y.first && x.second == y.second;
                      });
  }

  // Lexicographic over the sorted (value, count) entries — the same total
  // order the std::map backend's container comparison produced.
  friend std::weak_ordering operator<=>(const Multiset& a, const Multiset& b) {
    return std::lexicographical_compare_three_way(
        a.store_.entries().begin(), a.store_.entries().end(), b.store_.entries().begin(),
        b.store_.entries().end(), [](const auto& x, const auto& y) -> std::weak_ordering {
          const std::weak_ordering k = detail::SynthThreeWay{}(x.first, y.first);
          if (k != std::weak_ordering::equivalent) return k;
          return detail::SynthThreeWay{}(x.second, y.second);
        });
  }

  friend std::ostream& operator<<(std::ostream& os, const Multiset& m) {
    os << '{';
    bool first = true;
    for (const auto& [v, c] : m.store_.entries()) {
      for (std::size_t k = 0; k < c; ++k) {
        if (!first) os << ',';
        os << v;
        first = false;
      }
    }
    return os << '}';
  }

 private:
  // Linear merge of the two sorted entry ranges; `combine(a, b)` maps the two
  // multiplicities (0 when absent) to the result's, with 0 dropping the entry.
  template <typename Combine>
  [[nodiscard]] Multiset merge(const Multiset& other, Combine combine) const {
    Multiset out;
    auto a = store_.entries().begin();
    auto b = other.store_.entries().begin();
    const auto a_end = store_.entries().end();
    const auto b_end = other.store_.entries().end();
    while (a != a_end || b != b_end) {
      const T* v;
      std::size_t ca = 0;
      std::size_t cb = 0;
      if (b == b_end || (a != a_end && a->first < b->first)) {
        v = &a->first;
        ca = a->second;
        ++a;
      } else if (a == a_end || b->first < a->first) {
        v = &b->first;
        cb = b->second;
        ++b;
      } else {
        v = &a->first;
        ca = a->second;
        cb = b->second;
        ++a;
        ++b;
      }
      const std::size_t c = combine(ca, cb);
      if (c > 0) {
        out.store_.append(*v, c);
        out.size_ += c;
      }
    }
    return out;
  }

  Store store_;
  std::size_t size_ = 0;
};

// The std::map-backed reference variant (property tests cross-check every
// operation of the default flat backend against it).
template <typename T>
using MapMultiset = Multiset<T, MapStore<T>>;

}  // namespace hds
