#include "common/label.h"

#include <sstream>

namespace hds {

Label Label::of_multiset(const Multiset<Id>& m) { return Label("ms:" + m.to_string()); }

Label Label::of_set(const std::set<Id>& s) {
  std::ostringstream os;
  os << "set:{";
  bool first = true;
  for (Id v : s) {
    if (!first) os << ',';
    os << v;
    first = false;
  }
  os << '}';
  return Label(os.str());
}

Label Label::of_count(std::size_t y) { return Label("cnt:" + std::to_string(y)); }

Label Label::of_asigma(std::uint64_t raw) { return Label("as:" + std::to_string(raw)); }

Label Label::of_text(std::string text) { return Label("txt:" + std::move(text)); }

}  // namespace hds
