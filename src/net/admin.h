// hds-admin-v1: the request/response side of a node's admin UDP channel.
//
// The telemetry plane (obs/telemetry.h) is fire-and-forget push from node to
// launcher; this is the pull direction — an operator (hds_top, a curl-ish
// script, the CI smoke) asks a node a question and gets an answer:
//
//   request  {"schema":"hds-admin-v1","verb":"STATS"|"STATUS","req":<id>}
//   response {"schema":"hds-admin-v1","req":<id>,"chunk":i,"chunks":n,
//             "body":"<payload slice>"}            (one datagram per chunk)
//   error    {"schema":"hds-admin-v1","req":<id>,"error":"<message>"}
//
// The payload is plain text reassembled from the body slices in chunk order
// — Prometheus exposition for STATS, a JSON document for STATUS; the
// envelope does not care. Requests are idempotent reads, so the client's
// only recovery is re-asking: it retransmits the same request id until the
// response completes or the deadline passes, and a duplicate or stale
// response datagram is filtered by that id.
//
// Chunk-loss hardening: the server memoizes the rendered datagrams per
// (client endpoint, req id). A re-ask of the same request therefore resends
// the IDENTICAL chunks instead of re-running the handler — without this, a
// moving payload (STATS counters advance between asks) could change size or
// content between incarnations, and chunks accumulated across retries would
// either never converge or reassemble a torn snapshot. The cache holds the
// last few requests per server (clients use fresh ids per request, so depth
// covers retransmits only).
//
// The server owns one socket and one thread; verbs dispatch to a
// caller-supplied handler. Handlers run on the admin thread, never on a
// node's data path — the health plane stays an observer here too.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/udp.h"
#include "obs/json.h"

namespace hds::net {

inline constexpr const char* kAdminSchema = "hds-admin-v1";
// Body slice per response datagram, before JSON escaping. Escaping at worst
// doubles it; with the envelope that still sits well inside the 64 KiB
// datagram cap.
inline constexpr std::size_t kAdminChunkBytes = 24000;

// Splits `payload` into response envelopes for `req`. Always at least one
// chunk (an empty payload is a valid answer).
[[nodiscard]] std::vector<std::string> admin_response_datagrams(std::uint64_t req,
                                                               const std::string& payload);

class AdminServer {
 public:
  // Returns the payload for a verb; throw to produce an error response.
  using Handler = std::function<std::string(const std::string& verb, const obs::Json& request)>;

  AdminServer() = default;
  ~AdminServer() { stop(); }
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Binds (port 0 = ephemeral) and starts the service thread.
  void start(const UdpEndpoint& bind, Handler handler);
  void stop();

  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }
  [[nodiscard]] std::uint16_t port() const { return sock_.local_port(); }

  // Test hook: return true to drop the outgoing response datagram (req id,
  // datagram index within the response). Deterministic loss for the chunked
  // retry tests; install before start(). Runs on the service thread.
  using DropHook = std::function<bool(std::uint64_t req, std::size_t index)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  // Handler invocations since start — re-asks answered from the response
  // cache do not count, which is exactly what the hardening test asserts.
  [[nodiscard]] std::uint64_t handler_calls() const {
    return handler_calls_.load(std::memory_order_relaxed);
  }

 private:
  void serve();

  UdpSocket sock_;
  Handler handler_;
  DropHook drop_hook_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> handler_calls_{0};

  // Rendered response datagrams per (client endpoint, req), FIFO-bounded.
  // Touched only by the service thread.
  struct CachedResponse {
    std::string peer;  // host:port
    std::uint64_t req = 0;
    std::vector<std::string> datagrams;
  };
  std::deque<CachedResponse> response_cache_;
  static constexpr std::size_t kResponseCacheDepth = 16;
};

class AdminClient {
 public:
  AdminClient();

  // Sends `verb` to `ep` and reassembles the chunked response. nullopt on
  // timeout or an error response (see last_error()). Retransmits the request
  // every `retry_ms` until `timeout_ms` expires.
  [[nodiscard]] std::optional<std::string> request(const UdpEndpoint& ep, const std::string& verb,
                                                   int timeout_ms = 2000, int retry_ms = 250);

  [[nodiscard]] const std::string& last_error() const { return last_error_; }

 private:
  UdpSocket sock_;
  std::uint64_t next_req_ = 1;
  std::string last_error_;
};

}  // namespace hds::net
