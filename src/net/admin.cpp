#include "net/admin.h"

#include <chrono>
#include <map>
#include <utility>
#include <vector>

#include "obs/profiler.h"

namespace hds::net {

using obs::Json;

std::vector<std::string> admin_response_datagrams(std::uint64_t req, const std::string& payload) {
  const std::size_t chunks =
      payload.empty() ? 1 : (payload.size() + kAdminChunkBytes - 1) / kAdminChunkBytes;
  std::vector<std::string> out;
  out.reserve(chunks);
  for (std::size_t i = 0; i < chunks; ++i) {
    Json env = Json::object();
    env["schema"] = kAdminSchema;
    env["req"] = req;
    env["chunk"] = i;
    env["chunks"] = chunks;
    env["body"] = payload.substr(i * kAdminChunkBytes, kAdminChunkBytes);
    out.push_back(env.dump());
  }
  return out;
}

void AdminServer::start(const UdpEndpoint& bind, Handler handler) {
  if (running()) return;
  handler_ = std::move(handler);
  response_cache_.clear();
  handler_calls_.store(0, std::memory_order_relaxed);
  sock_.open(bind, /*recv_timeout_ms=*/100);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
}

void AdminServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  sock_.close();
}

void AdminServer::serve() {
  std::vector<std::uint8_t> buf;
  UdpEndpoint peer;
  while (running_.load(std::memory_order_acquire)) {
    const auto len = sock_.recv_from(buf, peer);
    if (!len.has_value() || *len == 0) continue;
    HDS_PROF_SCOPE(obs::ProfSubsystem::kAdmin);
    const std::string peer_key = peer.host + ":" + std::to_string(peer.port);
    std::uint64_t req = 0;
    const std::vector<std::string>* replies = nullptr;
    std::vector<std::string> fresh;
    try {
      const Json j = Json::parse(std::string(buf.begin(), buf.end()));
      if (j.string_or("schema", "") != kAdminSchema) continue;  // not ours: drop
      req = static_cast<std::uint64_t>(j.number_or("req", 0));
      // Retransmit of a request already answered: resend the memoized
      // datagrams verbatim. Re-running the handler would produce a fresh
      // snapshot whose chunking may differ, tearing the client's
      // cross-retry chunk accumulation.
      for (const CachedResponse& c : response_cache_) {
        if (c.req == req && c.peer == peer_key) {
          replies = &c.datagrams;
          break;
        }
      }
      if (replies == nullptr) {
        const Json* verb = j.find("verb");
        if (verb == nullptr || !verb->is_string()) throw std::runtime_error("missing verb");
        handler_calls_.fetch_add(1, std::memory_order_relaxed);
        fresh = admin_response_datagrams(req, handler_(verb->str(), j));
        if (response_cache_.size() >= kResponseCacheDepth) response_cache_.pop_front();
        response_cache_.push_back(CachedResponse{peer_key, req, std::move(fresh)});
        replies = &response_cache_.back().datagrams;
      }
    } catch (const std::exception& e) {
      // Errors are not cached: a transient handler failure should not pin a
      // request id to its error for the rest of the retry window.
      Json err = Json::object();
      err["schema"] = kAdminSchema;
      err["req"] = req;
      err["error"] = std::string(e.what());
      fresh = {err.dump()};
      replies = &fresh;
    }
    for (std::size_t i = 0; i < replies->size(); ++i) {
      if (drop_hook_ && drop_hook_(req, i)) continue;
      const std::string& r = (*replies)[i];
      (void)sock_.send_to(peer, reinterpret_cast<const std::uint8_t*>(r.data()), r.size());
    }
  }
}

AdminClient::AdminClient() { sock_.open(UdpEndpoint{"127.0.0.1", 0}, /*recv_timeout_ms=*/50); }

std::optional<std::string> AdminClient::request(const UdpEndpoint& ep, const std::string& verb,
                                                int timeout_ms, int retry_ms) {
  last_error_.clear();
  const std::uint64_t req = next_req_++;
  Json q = Json::object();
  q["schema"] = kAdminSchema;
  q["verb"] = verb;
  q["req"] = req;
  const std::string wire = q.dump();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  auto next_send = std::chrono::steady_clock::time_point::min();

  std::map<std::size_t, std::string> got;
  std::size_t chunks = 0;
  std::vector<std::uint8_t> buf;
  while (std::chrono::steady_clock::now() < deadline) {
    if (std::chrono::steady_clock::now() >= next_send) {
      (void)sock_.send_to(ep, reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size());
      next_send = std::chrono::steady_clock::now() + std::chrono::milliseconds(retry_ms);
    }
    const auto len = sock_.recv(buf);
    if (!len.has_value() || *len == 0) continue;
    Json j;
    try {
      j = Json::parse(std::string(buf.begin(), buf.end()));
    } catch (const obs::JsonParseError&) {
      continue;
    }
    if (j.string_or("schema", "") != kAdminSchema) continue;
    if (static_cast<std::uint64_t>(j.number_or("req", 0)) != req) continue;  // stale
    if (const Json* err = j.find("error"); err != nullptr && err->is_string()) {
      last_error_ = err->str();
      return std::nullopt;
    }
    const Json* body = j.find("body");
    if (body == nullptr || !body->is_string()) continue;
    const auto chunk = static_cast<std::size_t>(j.number_or("chunk", 0));
    const auto total = static_cast<std::size_t>(j.number_or("chunks", 1));
    if (total == 0 || chunk >= total) continue;
    if (chunks == 0) chunks = total;
    if (total != chunks) continue;  // response from a different incarnation
    got[chunk] = body->str();
    if (got.size() == chunks) {
      std::string payload;
      for (const auto& [i, part] : got) {
        (void)i;
        payload += part;
      }
      return payload;
    }
  }
  last_error_ = "timeout waiting for " + verb + " from " + ep.host + ":" + std::to_string(ep.port);
  return std::nullopt;
}

}  // namespace hds::net
