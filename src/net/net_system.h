// UDP cluster substrate: runs ONE local process of an n-process deployment
// over real sockets, with the same Env contract as sim::System and
// rt::RtSystem (Env time units are milliseconds here, as on the thread
// runtime). Peers are other OS processes (or other NetSystem instances in
// the same process — each owns its own socket), so a cluster of hds_node
// daemons and an in-process test harness use identical code.
//
// Concurrency discipline mirrors rt::RtSystem: the local process's state is
// touched only by its node thread; query() posts a closure into the node
// mailbox and waits. Three internal threads (four with reliability on):
//   - node:   time-ordered mailbox dispatch (handlers, timers, queries);
//   - recv:   recvfrom -> split_batch -> decode_frame -> mailbox;
//   - sender: per-destination batching (flush on size or time budget),
//             plus interposer-injected delays and duplicates;
//   - rel:    ARQ retransmission/ack timer (only when reliability is on).
//
// Startup barrier: UDP gives no retransmission and several stacks (Fig. 8)
// tolerate zero message loss, so a datagram fired at a peer whose socket is
// not yet bound would wedge the run. await_peers() exchanges HELLO /
// HELLO-ACK control frames until every peer has been heard from; call it
// after construction (the socket binds and the recv thread starts in the
// constructor) and before start().
//
// Reliability: cfg.reliability.enabled routes every data frame through a
// per-link ARQ channel (net/reliable.h) — sequence numbers, piggybacked
// cum+selective acks, RTT-estimated retransmission — which un-wedges
// Fig. 8's non-retransmitting quorum waits under datagram loss. The fault
// interposer is consulted per TRANSMISSION ATTEMPT (retransmits included),
// i.e. loss injection sits below the ARQ exactly like a lossy wire. Off by
// default, with frames byte-identical to plain v1 when off.
//
// Crash-restart: cfg.epoch is this process incarnation's number (0 for a
// first boot). A respawned node (epoch > 0) runs the barrier with REJOIN
// probes instead of HELLO — peers answer REJOIN-ACK mid-run, flush the
// restarted link's ARQ state, and re-send whatever the dead incarnation
// never acked.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/link_fault.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/reliable.h"
#include "net/udp.h"
#include "obs/causal.h"
#include "obs/metrics.h"
#include "sim/process.h"
#include "sim/tracelog.h"

namespace hds::net {

struct NetPeer {
  Id id = 0;  // homonymous identifier of the process at this endpoint
  UdpEndpoint ep;
};

struct NetConfig {
  // Index of the local process within `peers` (the cluster-wide indexing
  // that plays the role ProcIndex plays on the other substrates).
  ProcIndex self = 0;
  std::vector<NetPeer> peers;
  std::uint64_t seed = 1;
  // Send batching: frames to one destination coalesce into one datagram,
  // flushed when the batch reaches max_batch_bytes or has waited
  // flush_interval_ms. batching=false sends one frame per datagram.
  bool batching = true;
  SimTime flush_interval_ms = 1;
  std::size_t max_batch_bytes = 1400;
  // recvfrom poll timeout; bounds shutdown latency, not delivery latency.
  int recv_timeout_ms = 50;
  obs::MetricsRegistry* metrics = nullptr;
  // ARQ layer (net/reliable.h). Disabled by default: frames stay
  // byte-identical to plain v1 and no rel thread is spawned.
  RelConfig reliability;
  // Incarnation number of this process; > 0 switches the startup barrier to
  // REJOIN probes and makes peers flush this node's per-link ARQ state.
  std::uint64_t epoch = 0;
  // > 0 enables the structured event log + causal stamping: every local
  // broadcast mints a lineage id (node index folded into the high bits so
  // ids are cluster-unique) that crosses the socket via the v1 codec's
  // trace-context extension. 0 keeps frames byte-identical to plain v1.
  std::size_t trace_capacity = 0;
};

// Counter parity with NetworkStats / RtNetworkStats, plus the transport
// quantities that only exist once real datagrams are involved.
struct NetNetworkStats {
  std::uint64_t broadcasts = 0;         // local broadcast() invocations
  std::uint64_t copies_sent = 0;        // frames handed to the sender (incl. duplicates)
  std::uint64_t copies_delivered = 0;   // handler ran at the local process
  std::uint64_t copies_lost_link = 0;   // interposer drops + sendto failures
  std::uint64_t copies_duplicated = 0;  // extra copies injected by a fault plan
  std::uint64_t bytes_sent = 0;         // datagram payload bytes handed to the kernel
  std::uint64_t bytes_received = 0;     // datagram payload bytes received
  std::uint64_t packets_sent = 0;       // datagrams handed to the kernel
  std::uint64_t packets_received = 0;   // datagrams received
  std::uint64_t decode_errors = 0;      // malformed frames/batches rejected
  std::map<std::string, std::uint64_t> broadcasts_by_type;
};

class NetSystem {
 public:
  // Binds the socket (throws std::system_error on failure) and starts the
  // recv + sender threads. peers[self].ep.port == 0 binds an ephemeral
  // port, reported by local_port() — the in-process test pattern.
  explicit NetSystem(NetConfig cfg);
  ~NetSystem();

  NetSystem(const NetSystem&) = delete;
  NetSystem& operator=(const NetSystem&) = delete;

  [[nodiscard]] std::uint16_t local_port() const;
  [[nodiscard]] std::size_t n() const { return peers_.size(); }
  [[nodiscard]] ProcIndex self() const { return self_; }
  [[nodiscard]] Id id_of(ProcIndex i) const { return peers_.at(i).id; }

  // Lets in-process harnesses wire ephemeral ports together before the
  // barrier: rebinds peer i's destination endpoint. Only before start().
  void set_peer_endpoint(ProcIndex i, const UdpEndpoint& ep);

  void set_process(std::unique_ptr<Process> p);

  // Installs a fault-plan interposer consulted on every outgoing copy
  // (from = self index). Install before start(); must be thread-safe and
  // outlive the system. Verdict times are milliseconds.
  void set_interposer(LinkInterposer* li);

  // Blocks until a control frame has been received from every peer, sending
  // HELLO probes the whole time. Returns false on timeout.
  bool await_peers(std::chrono::milliseconds timeout);

  // Starts the node thread and delivers on_start. Messages received before
  // start() queue up and are dispatched after on_start.
  void start();

  // Crashes the LOCAL process (remote crashes are remote kill -9).
  void crash();
  [[nodiscard]] bool is_crashed() const;

  // Runs `fn` on the node thread against the local process and returns the
  // result (same contract as RtSystem::query, restricted to self).
  template <typename F>
  auto query(F&& fn) -> decltype(fn(std::declval<Process&>())) {
    using R = decltype(fn(std::declval<Process&>()));
    std::promise<R> prom;
    auto fut = prom.get_future();
    post_task([&prom, fn = std::forward<F>(fn)](Process& p) mutable {
      if constexpr (std::is_void_v<R>) {
        fn(p);
        prom.set_value();
      } else {
        prom.set_value(fn(p));
      }
    });
    return fut.get();
  }

  // Polls `pred` on the caller thread until it holds or timeout.
  bool wait_for(const std::function<bool()>& pred, std::chrono::milliseconds timeout,
                std::chrono::milliseconds poll = std::chrono::milliseconds(5));

  [[nodiscard]] NetNetworkStats net_stats();

  // ARQ counters; all zero when reliability is off.
  [[nodiscard]] RelStats rel_stats();
  [[nodiscard]] bool reliable() const { return rel_ != nullptr; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_num_; }

  // ---- causal tracing / telemetry surface (all thread-safe) ----
  [[nodiscard]] bool trace_enabled() const { return trace_.enabled(); }
  // Events recorded since the caller's cursor (start at 0), for incremental
  // telemetry streaming; advances the cursor.
  std::vector<TraceEvent> drain_trace(std::uint64_t& cursor);
  [[nodiscard]] std::vector<TraceEvent> trace_events();
  [[nodiscard]] std::uint64_t trace_dropped();
  // Wall-clock instant (µs since the Unix epoch) at which this node's local
  // millisecond clock (now_ms() == 0, the trace timestamps) started. The
  // cluster launcher uses it to rebase per-node traces onto one timeline.
  [[nodiscard]] std::int64_t epoch_wall_us() const { return epoch_wall_us_; }

  // Stops and joins all three threads; closes the socket. Idempotent.
  void stop();

 private:
  class Node;

  // One frame awaiting its send instant (interposer extra_delay /
  // duplicate trail); heap-ordered by (at, seq).
  struct SendItem {
    std::chrono::steady_clock::time_point at;
    std::uint64_t seq = 0;
    ProcIndex to = 0;
    std::vector<std::uint8_t> frame;
  };

  void post_task(std::function<void(Process&)> task);
  void note_delivered();
  // Causal hooks, called on the node thread only (the only dispatch
  // context): see causal_ below.
  void note_start();
  void note_timer_fire(std::uint64_t armed_parent);
  void note_causal_delivery(const Message& m);
  void broadcast_from_self(const Message& m);
  void flush_batch(ProcIndex to);
  void enqueue_send(std::chrono::steady_clock::time_point at, ProcIndex to,
                    std::vector<std::uint8_t> frame);
  void send_control(std::uint8_t tag, ProcIndex to);
  void send_control(std::uint8_t tag, ProcIndex to, const std::vector<std::uint8_t>& body);
  void recv_loop();
  void sender_loop();
  void rel_loop();
  // Runs each ARQ output (retransmission / standalone ack) through the
  // interposer and the send queue; callable from any thread.
  void dispatch_rel_sends(std::vector<RelSend> sends);
  void handle_frame(const std::uint8_t* data, std::size_t len);
  [[nodiscard]] SimTime now_ms() const;

  ProcIndex self_;
  // ids are immutable after construction; the endpoints may be rewired by
  // set_peer_endpoint() while the recv thread is already acking, so
  // endpoint reads on send paths go through ep_mu_.
  std::vector<NetPeer> peers_;
  mutable std::mutex ep_mu_;
  bool batching_;
  SimTime flush_interval_ms_;
  std::size_t max_batch_bytes_;
  std::chrono::steady_clock::time_point epoch_;
  std::int64_t epoch_wall_us_ = 0;

  // Causal state is written only by the node thread (broadcast, delivery,
  // timer and start dispatch all happen there); the trace ring is written by
  // the node thread and drained by telemetry callers under trace_mu_.
  obs::CausalSession causal_;
  mutable std::mutex trace_mu_;
  TraceLog trace_{0};

  UdpSocket sock_;

  std::mutex rng_mu_;
  Rng rng_;

  LinkInterposer* interposer_ = nullptr;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_broadcasts_ = nullptr;
  obs::Counter* m_copies_delivered_ = nullptr;
  obs::Counter* m_copies_lost_link_ = nullptr;
  obs::Counter* m_copies_duplicated_ = nullptr;
  obs::Counter* m_bytes_sent_ = nullptr;
  obs::Counter* m_bytes_received_ = nullptr;
  obs::Counter* m_packets_sent_ = nullptr;
  obs::Counter* m_packets_received_ = nullptr;
  obs::Counter* m_decode_errors_ = nullptr;
  obs::Histogram* m_batch_frames_ = nullptr;  // frames per sent datagram
  obs::Histogram* m_batch_bytes_ = nullptr;   // payload bytes per sent datagram

  std::mutex stats_mu_;
  NetNetworkStats stats_;

  // Peer barrier state (recv thread writes, await_peers reads).
  std::mutex peers_mu_;
  std::condition_variable peers_cv_;
  std::vector<bool> heard_from_;

  // Sender state: a time-ordered frame queue plus per-destination pending
  // batches with flush deadlines.
  struct PendingBatch;
  std::mutex send_mu_;
  std::condition_variable send_cv_;
  std::vector<std::unique_ptr<PendingBatch>> pending_;  // one slot per peer
  std::uint64_t send_seq_ = 0;
  std::vector<SendItem> send_queue_;  // heap ordered by (at, seq)
  std::atomic<bool> stop_flag_{false};

  // ARQ state; null when reliability is off (the send/recv paths then skip
  // every rel branch, keeping the off configuration byte-identical).
  std::unique_ptr<ReliableChannel> rel_;
  std::uint64_t epoch_num_ = 0;
  std::mutex rel_wake_mu_;
  std::condition_variable rel_cv_;

  std::unique_ptr<Node> node_;
  std::thread recv_thread_;
  std::thread send_thread_;
  std::thread rel_thread_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace hds::net
