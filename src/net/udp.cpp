#include "net/udp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace hds::net {

namespace {

sockaddr_in to_sockaddr(const UdpEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    throw std::system_error(EINVAL, std::generic_category(),
                            "UdpSocket: bad IPv4 address " + ep.host);
  }
  return addr;
}

[[noreturn]] void fail(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

UdpSocket::~UdpSocket() { close(); }

void UdpSocket::open(const UdpEndpoint& ep, int recv_timeout_ms) {
  if (fd_ >= 0) throw std::logic_error("UdpSocket: already open");
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) fail("UdpSocket: socket");
  // A burst of n^2 reply broadcasts can outrun a default-sized buffer;
  // ask for headroom (the kernel may clamp; best effort).
  const int rcvbuf = 1 << 21;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  timeval tv{};
  tv.tv_sec = recv_timeout_ms / 1000;
  tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  sockaddr_in addr = to_sockaddr(ep);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close();
    throw std::system_error(err, std::generic_category(),
                            "UdpSocket: bind " + ep.host + ":" + std::to_string(ep.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) fail("getsockname");
  local_port_ = ntohs(bound.sin_port);
}

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool UdpSocket::send_to(const UdpEndpoint& ep, const std::uint8_t* data, std::size_t len) {
  if (fd_ < 0) return false;
  sockaddr_in addr = to_sockaddr(ep);
  const ssize_t n =
      ::sendto(fd_, data, len, 0, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  return n == static_cast<ssize_t>(len);
}

std::optional<std::size_t> UdpSocket::recv(std::vector<std::uint8_t>& buf) {
  if (fd_ < 0) return std::nullopt;
  buf.resize(64 * 1024);
  const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0, nullptr, nullptr);
  if (n < 0) return std::nullopt;  // timeout or transient error: caller re-polls
  buf.resize(static_cast<std::size_t>(n));
  return static_cast<std::size_t>(n);
}

std::optional<std::size_t> UdpSocket::recv_from(std::vector<std::uint8_t>& buf, UdpEndpoint& from) {
  if (fd_ < 0) return std::nullopt;
  buf.resize(64 * 1024);
  sockaddr_in peer{};
  socklen_t peer_len = sizeof(peer);
  const ssize_t n =
      ::recvfrom(fd_, buf.data(), buf.size(), 0, reinterpret_cast<sockaddr*>(&peer), &peer_len);
  if (n < 0) return std::nullopt;
  buf.resize(static_cast<std::size_t>(n));
  char host[INET_ADDRSTRLEN] = {};
  if (inet_ntop(AF_INET, &peer.sin_addr, host, sizeof(host)) != nullptr) from.host = host;
  from.port = ntohs(peer.sin_port);
  return static_cast<std::size_t>(n);
}

}  // namespace hds::net
