#include "net/codec.h"

namespace hds::net {

std::uint32_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint32_t h = 0x811C9DC5u;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x01000193u;
  }
  return h;
}

void CodecRegistry::add(BodyCodec c) {
  if (c.tag >= kCtrlTagFirst) throw std::logic_error("codec tag in control range");
  if (by_type_.count(c.type) != 0) throw std::logic_error("duplicate codec type " + c.type);
  if (by_tag_.count(c.tag) != 0) {
    throw std::logic_error("duplicate codec tag " + std::to_string(c.tag));
  }
  auto [it, ok] = by_type_.emplace(c.type, std::move(c));
  (void)ok;
  by_tag_[it->second.tag] = &it->second;
}

const BodyCodec* CodecRegistry::by_type(const std::string& type) const {
  auto it = by_type_.find(type);
  return it == by_type_.end() ? nullptr : &it->second;
}

const BodyCodec* CodecRegistry::by_tag(std::uint8_t tag) const {
  auto it = by_tag_.find(tag);
  return it == by_tag_.end() ? nullptr : it->second;
}

std::vector<const BodyCodec*> CodecRegistry::all() const {
  std::vector<const BodyCodec*> out;
  out.reserve(by_tag_.size());
  for (const auto& [tag, c] : by_tag_) {
    (void)tag;
    out.push_back(c);
  }
  return out;
}

namespace {

std::vector<std::uint8_t> finish_frame(std::uint8_t tag, ProcIndex sender_index, Id sender_id,
                                       const std::vector<std::uint8_t>& body,
                                       const Message* traced = nullptr) {
  WireWriter w;
  w.u8(kWireMagic0);
  w.u8(kWireMagic1);
  const bool tracing = traced != nullptr && traced->meta_causal_id != 0;
  w.u8(tracing ? static_cast<std::uint8_t>(kWireVersion | kWireTracedFlag) : kWireVersion);
  w.u8(tag);
  w.varint(sender_index);
  w.varint(sender_id);
  if (tracing) {
    w.varint(traced->meta_causal_id);
    w.varint(traced->meta_causal_parent);
    w.varint(traced->meta_causal_clock);
  }
  w.varint(body.size());
  w.bytes(body.data(), body.size());
  const std::uint32_t sum = fnv1a(w.data().data(), w.size());
  w.u32_fixed(sum);
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const CodecRegistry& reg, const Message& m,
                                       ProcIndex sender_index, Id sender_id) {
  const BodyCodec* c = reg.by_type(m.type);
  if (c == nullptr) throw CodecError("no codec registered for type " + m.type);
  WireWriter body;
  c->encode(m.body, body);
  return finish_frame(c->tag, sender_index, sender_id, body.data(), &m);
}

std::vector<std::uint8_t> encode_control_frame(std::uint8_t tag, ProcIndex sender_index,
                                               Id sender_id) {
  if (tag < kCtrlTagFirst) throw std::logic_error("control frame with codec-range tag");
  return finish_frame(tag, sender_index, sender_id, {});
}

std::vector<std::uint8_t> encode_control_frame(std::uint8_t tag, ProcIndex sender_index,
                                               Id sender_id,
                                               const std::vector<std::uint8_t>& body) {
  if (tag < kCtrlTagFirst) throw std::logic_error("control frame with codec-range tag");
  return finish_frame(tag, sender_index, sender_id, body);
}

std::optional<ControlBody> peek_control_body(const std::uint8_t* data, std::size_t len) {
  if (len < 4 + 4 || data[0] != kWireMagic0 || data[1] != kWireMagic1 ||
      (data[2] & kWireVersionMask) != kWireVersion || data[3] < kCtrlTagFirst) {
    return std::nullopt;
  }
  try {
    WireReader r(data + 4, len - 4 - 4);
    r.varint();  // sender index
    r.varint();  // sender id
    if ((data[2] & kWireTracedFlag) != 0) {
      for (int i = 0; i < 3; ++i) r.varint();
    }
    if ((data[2] & kWireRelFlag) != 0) {
      for (int i = 0; i < 6; ++i) r.varint();
    }
    const std::uint64_t body_len = r.varint();
    if (body_len != r.remaining()) return std::nullopt;
    return ControlBody{r.cursor(), static_cast<std::size_t>(body_len)};
  } catch (const CodecError&) {
    return std::nullopt;
  }
}

std::optional<std::uint8_t> peek_tag(const std::uint8_t* data, std::size_t len) {
  if (len < 4 || data[0] != kWireMagic0 || data[1] != kWireMagic1 ||
      (data[2] & kWireVersionMask) != kWireVersion) {
    return std::nullopt;
  }
  return data[3];
}

Message decode_frame(const CodecRegistry& reg, const std::uint8_t* data, std::size_t len) {
  if (len < 4 + 4) throw CodecError("frame shorter than header + checksum");
  if (data[0] != kWireMagic0 || data[1] != kWireMagic1) throw CodecError("bad frame magic");
  if ((data[2] & kWireVersionMask) != kWireVersion) {
    throw CodecError("unsupported frame version " + std::to_string(data[2]));
  }
  const bool tracing = (data[2] & kWireTracedFlag) != 0;
  const std::uint32_t want = fnv1a(data, len - 4);
  WireReader tail(data + len - 4, 4);
  if (tail.u32_fixed() != want) throw CodecError("checksum mismatch");

  WireReader r(data + 4, len - 4 - 4);
  const std::uint8_t tag = data[3];
  const std::uint64_t sender_index = r.varint();
  const std::uint64_t sender_id = r.varint();
  (void)sender_id;  // the id rides for wire-level debugging; bodies carry
                    // whatever identity the algorithm needs, per the model
  std::uint64_t causal_id = 0;
  std::uint64_t causal_parent = 0;
  std::uint64_t causal_clock = 0;
  if (tracing) {
    causal_id = r.varint();
    causal_parent = r.varint();
    causal_clock = r.varint();
    if (causal_id == 0) throw CodecError("traced frame with zero lineage id");
  }
  if ((data[2] & kWireRelFlag) != 0) {
    // ARQ transport header: consumed here so framing stays validated; the
    // transport reads the values from the raw bytes via rel_peek() before
    // deciding whether this Message may be delivered.
    for (int i = 0; i < 6; ++i) r.varint();
  }
  const std::uint64_t body_len = r.varint();
  if (body_len != r.remaining()) throw CodecError("body length disagrees with frame length");
  if (tag >= kCtrlTagFirst) {
    Message m;
    m.type = "CTRL";
    m.meta_sender = static_cast<ProcIndex>(sender_index);
    return m;
  }
  const BodyCodec* c = reg.by_tag(tag);
  if (c == nullptr) throw CodecError("unknown body tag " + std::to_string(tag));
  WireReader body(r.cursor(), static_cast<std::size_t>(body_len));
  std::any value = c->decode(body);
  if (body.remaining() != 0) throw CodecError("trailing bytes after body");
  Message m;
  m.type = c->type;
  m.body = std::move(value);
  m.meta_sender = static_cast<ProcIndex>(sender_index);
  m.meta_causal_id = causal_id;
  m.meta_causal_parent = causal_parent;
  m.meta_causal_clock = causal_clock;
  return m;
}

std::size_t frame_overhead(ProcIndex sender_index, Id sender_id) {
  // magic(2) + version + tag + the sender varints + the trailing checksum.
  return 4 + varint_size(sender_index) + varint_size(sender_id) + 4;
}

std::size_t encoded_body_size(const BodyCodec& c, const Message& m) {
  WireWriter w{WireWriter::CountOnly{}};
  c.encode(m.body, w);
  return w.size();
}

std::optional<std::size_t> encoded_frame_size(const CodecRegistry& reg, const Message& m,
                                              ProcIndex sender_index, Id sender_id) {
  const BodyCodec* c = reg.by_type(m.type);
  if (c == nullptr) return std::nullopt;
  const std::size_t body = encoded_body_size(*c, m);
  return frame_overhead(sender_index, sender_id) + varint_size(body) + body;
}

// ------------------------------------------------------------- batching

void BatchWriter::add(const std::vector<std::uint8_t>& frame) {
  WireWriter w;
  w.varint(frame.size());
  w.bytes(frame.data(), frame.size());
  const auto& piece = w.data();
  frames_bytes_.insert(frames_bytes_.end(), piece.begin(), piece.end());
  ++count_;
}

std::size_t BatchWriter::wire_size() const {
  WireWriter header;
  header.u8(kWireMagic0);
  header.u8(kBatchMagic1);
  header.u8(kWireVersion);
  header.varint(count_);
  return header.size() + frames_bytes_.size();
}

std::vector<std::uint8_t> BatchWriter::take() {
  WireWriter w;
  w.u8(kWireMagic0);
  w.u8(kBatchMagic1);
  w.u8(kWireVersion);
  w.varint(count_);
  w.bytes(frames_bytes_.data(), frames_bytes_.size());
  frames_bytes_.clear();
  count_ = 0;
  return w.take();
}

std::vector<FrameView> split_batch(const std::uint8_t* data, std::size_t len) {
  WireReader r(data, len);
  if (r.u8() != kWireMagic0 || r.u8() != kBatchMagic1) throw CodecError("bad batch magic");
  const std::uint8_t version = r.u8();
  if (version != kWireVersion) {
    throw CodecError("unsupported batch version " + std::to_string(version));
  }
  const std::uint64_t count = r.varint();
  // A frame costs at least its length prefix byte; an absurd count is
  // rejected before any allocation sized by it.
  if (count > r.remaining()) throw CodecError("batch count exceeds payload");
  std::vector<FrameView> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t flen = r.varint();
    if (flen > r.remaining()) throw CodecError("frame length exceeds batch payload");
    out.push_back(FrameView{r.cursor(), static_cast<std::size_t>(flen)});
    r.skip(static_cast<std::size_t>(flen));
  }
  if (r.remaining() != 0) throw CodecError("trailing bytes after batch frames");
  return out;
}

}  // namespace hds::net
