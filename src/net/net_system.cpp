#include "net/net_system.h"

#include "obs/profiler.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "net/codec.h"

namespace hds::net {

namespace {
using Clock = std::chrono::steady_clock;
}

// The local process: mailbox (time-ordered) and dispatch thread, the same
// discipline as RtSystem's per-node state (handlers run only here).
class NetSystem::Node {
 public:
  explicit Node(NetSystem& sys) : sys_(sys), env_(*this) {}

  void install(std::unique_ptr<Process> p) { proc_ = std::move(p); }
  [[nodiscard]] bool installed() const { return proc_ != nullptr; }

  // on_start is enqueued at `front` (the system's epoch, which precedes
  // every possible delivery timestamp) BEFORE the thread spins up, so
  // frames that arrived during the peer barrier dispatch after it.
  void start(Clock::time_point front) {
    enqueue(front, Task{[this](Process& p, Env& e) {
      sys_.note_start();
      HDS_PROF_SCOPE(obs::ProfSubsystem::kFdStep);
      p.on_start(e);
    }});
    thread_ = std::jthread([this](std::stop_token st) { run(st); });
  }

  void crash() {
    {
      std::lock_guard lk(mu_);
      crashed_ = true;
      queue_ = {};
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool crashed() const {
    std::lock_guard lk(mu_);
    return crashed_;
  }

  bool deliver(Clock::time_point at, std::shared_ptr<const Message> m) {
    return enqueue(at, Task{[this, m = std::move(m)](Process& p, Env& e) {
      sys_.note_causal_delivery(*m);
      HDS_PROF_SCOPE(obs::ProfSubsystem::kFdStep);
      p.on_message(e, *m);
      sys_.note_delivered();
    }});
  }

  void post(std::function<void(Process&)> fn) {
    enqueue(Clock::now(), Task{[fn = std::move(fn)](Process& p, Env&) { fn(p); }});
  }

  void request_stop() {
    thread_.request_stop();
    cv_.notify_all();
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct Task {
    std::function<void(Process&, Env&)> run;
  };
  struct Item {
    Clock::time_point at;
    std::uint64_t seq;
    Task task;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  class NodeEnv final : public Env {
   public:
    explicit NodeEnv(Node& node) : node_(node) {}
    [[nodiscard]] Id self_id() const override {
      return node_.sys_.peers_.at(node_.sys_.self_).id;
    }
    void broadcast(Message m) override { node_.sys_.broadcast_from_self(m); }
    TimerId set_timer(SimTime delay) override {
      const TimerId id = node_.next_timer_++;
      // Arming happens on the node thread, so this reads the lineage of the
      // event the handler is currently dispatching.
      const std::uint64_t armed_parent = node_.sys_.causal_.parent;
      node_.enqueue(Clock::now() + std::chrono::milliseconds(delay),
                    Task{[this, id, armed_parent](Process& p, Env& e) {
                      node_.sys_.note_timer_fire(armed_parent);
                      HDS_PROF_SCOPE(obs::ProfSubsystem::kFdStep);
                      p.on_timer(e, id);
                    }});
      return id;
    }
    [[nodiscard]] SimTime local_now() const override { return node_.sys_.now_ms(); }

   private:
    Node& node_;
  };

  bool enqueue(Clock::time_point at, Task task) {
    {
      std::lock_guard lk(mu_);
      if (crashed_) return false;
      queue_.push(Item{at, seq_++, std::move(task)});
    }
    cv_.notify_all();
    return true;
  }

  void run(std::stop_token st) {
    for (;;) {
      Task task;
      {
        std::unique_lock lk(mu_);
        for (;;) {
          if (st.stop_requested() || crashed_) return;
          if (!queue_.empty()) {
            const auto at = queue_.top().at;
            if (at <= Clock::now()) break;
            cv_.wait_until(lk, at);
          } else {
            cv_.wait(lk);
          }
        }
        task = queue_.top().task;
        queue_.pop();
      }
      task.run(*proc_, env_);
    }
  }

  NetSystem& sys_;
  NodeEnv env_;
  std::unique_ptr<Process> proc_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  std::uint64_t seq_ = 0;
  TimerId next_timer_ = 1;
  bool crashed_ = false;
  std::jthread thread_;
};

// Frames accumulating toward one destination; deadline is armed when the
// first frame lands in an empty batch.
struct NetSystem::PendingBatch {
  BatchWriter w;
  Clock::time_point deadline{};
};

NetSystem::NetSystem(NetConfig cfg)
    : self_(cfg.self),
      peers_(std::move(cfg.peers)),
      batching_(cfg.batching),
      flush_interval_ms_(cfg.flush_interval_ms),
      max_batch_bytes_(cfg.max_batch_bytes),
      epoch_(Clock::now()),
      trace_(cfg.trace_capacity),
      rng_(cfg.seed),
      metrics_(cfg.metrics) {
  epoch_wall_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  causal_.base = obs::causal_node_base(self_);
  if (peers_.empty()) throw std::invalid_argument("NetSystem: need at least one peer");
  if (self_ >= peers_.size()) throw std::invalid_argument("NetSystem: self out of range");
  if (flush_interval_ms_ < 0) throw std::invalid_argument("NetSystem: bad flush interval");
  if (max_batch_bytes_ == 0) throw std::invalid_argument("NetSystem: bad max batch bytes");

  if (metrics_ != nullptr) {
    m_broadcasts_ = &metrics_->counter("udp_broadcasts_total");
    m_copies_delivered_ = &metrics_->counter("udp_copies_delivered_total");
    m_copies_lost_link_ = &metrics_->counter("udp_copies_lost_link_total");
    m_copies_duplicated_ = &metrics_->counter("udp_copies_duplicated_total");
    m_bytes_sent_ = &metrics_->counter("udp_bytes_sent_total");
    m_bytes_received_ = &metrics_->counter("udp_bytes_received_total");
    m_packets_sent_ = &metrics_->counter("udp_packets_sent_total");
    m_packets_received_ = &metrics_->counter("udp_packets_received_total");
    m_decode_errors_ = &metrics_->counter("udp_decode_errors_total");
    // Occupancy/size of DATA datagrams (control probes are excluded so the
    // batching policy's effect stays readable).
    m_batch_frames_ = &metrics_->histogram("udp_batch_frames", obs::size_buckets());
    m_batch_bytes_ = &metrics_->histogram("udp_batch_bytes", obs::exp_buckets(64, 65536));
  }

  sock_.open(peers_[self_].ep, cfg.recv_timeout_ms);
  peers_[self_].ep.port = sock_.local_port();  // resolve an ephemeral bind

  heard_from_.assign(peers_.size(), false);
  heard_from_[self_] = true;
  pending_.reserve(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    pending_.push_back(std::make_unique<PendingBatch>());
  }

  epoch_num_ = cfg.epoch;
  if (cfg.reliability.enabled) {
    RelConfig rc = cfg.reliability;
    rc.seed = cfg.seed ^ 0x9E3779B97F4A7C15ull;  // decouple jitter from protocol randomness
    rel_ = std::make_unique<ReliableChannel>(rc, self_, peers_[self_].id, peers_.size(),
                                             epoch_num_, metrics_);
  }

  node_ = std::make_unique<Node>(*this);
  recv_thread_ = std::thread([this] { recv_loop(); });
  send_thread_ = std::thread([this] { sender_loop(); });
  if (rel_ != nullptr) rel_thread_ = std::thread([this] { rel_loop(); });
}

NetSystem::~NetSystem() { stop(); }

std::uint16_t NetSystem::local_port() const { return sock_.local_port(); }

void NetSystem::set_peer_endpoint(ProcIndex i, const UdpEndpoint& ep) {
  if (started_) throw std::logic_error("NetSystem: set_peer_endpoint after start");
  if (i == self_) throw std::logic_error("NetSystem: cannot rewire self");
  std::lock_guard lk(ep_mu_);
  peers_.at(i).ep = ep;
}

void NetSystem::set_process(std::unique_ptr<Process> p) {
  if (started_) throw std::logic_error("NetSystem: set_process after start");
  node_->install(std::move(p));
}

void NetSystem::set_interposer(LinkInterposer* li) {
  if (started_) throw std::logic_error("NetSystem: set_interposer after start");
  interposer_ = li;
}

bool NetSystem::await_peers(std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    std::vector<ProcIndex> missing;
    {
      std::unique_lock lk(peers_mu_);
      for (ProcIndex i = 0; i < heard_from_.size(); ++i) {
        if (!heard_from_[i]) missing.push_back(i);
      }
      if (missing.empty()) return true;
      if (Clock::now() >= deadline) return false;
    }
    // Probe the silent peers; their socket (once bound) always acks, even
    // after they have passed their own barrier. A restarted incarnation
    // (epoch > 0) probes with REJOIN instead — HELLO's bytes are frozen and
    // carry no epoch, and peers must learn the new incarnation to flush the
    // link's ARQ state mid-run.
    for (ProcIndex i : missing) {
      if (epoch_num_ > 0) {
        send_control(kTagRejoin, i, rejoin_body(epoch_num_));
      } else {
        send_control(kTagHello, i);
      }
    }
    std::unique_lock lk(peers_mu_);
    peers_cv_.wait_for(lk, std::chrono::milliseconds(25));
  }
}

void NetSystem::start() {
  if (started_) throw std::logic_error("NetSystem: started twice");
  if (!node_->installed()) throw std::logic_error("NetSystem: process not installed");
  started_ = true;
  node_->start(epoch_);
}

void NetSystem::crash() { node_->crash(); }

bool NetSystem::is_crashed() const { return node_->crashed(); }

void NetSystem::post_task(std::function<void(Process&)> task) {
  if (node_->crashed()) throw std::runtime_error("NetSystem::query: node crashed");
  node_->post(std::move(task));
}

void NetSystem::note_delivered() {
  {
    std::lock_guard lk(stats_mu_);
    ++stats_.copies_delivered;
  }
  obs::inc(m_copies_delivered_);
}

void NetSystem::note_start() {
  if (!trace_.enabled()) return;
  HDS_PROF_SCOPE(obs::ProfSubsystem::kTraceStamp);
  const std::uint64_t sid = causal_.fresh();
  causal_.parent = sid;
  std::lock_guard lk(trace_mu_);
  trace_.record(now_ms(), TraceEvent::Kind::kStart, self_, {}, sid, 0);
}

void NetSystem::note_timer_fire(std::uint64_t armed_parent) {
  if (!trace_.enabled()) return;
  HDS_PROF_SCOPE(obs::ProfSubsystem::kTraceStamp);
  const std::uint64_t tid = causal_.fresh();
  causal_.parent = tid;
  causal_.tick();
  std::lock_guard lk(trace_mu_);
  trace_.record(now_ms(), TraceEvent::Kind::kTimer, self_, {}, tid, armed_parent);
}

void NetSystem::note_causal_delivery(const Message& m) {
  if (!trace_.enabled()) return;
  HDS_PROF_SCOPE(obs::ProfSubsystem::kTraceStamp);
  causal_.parent = m.meta_causal_id;
  causal_.merge(m.meta_causal_clock);
  std::lock_guard lk(trace_mu_);
  trace_.record(now_ms(), TraceEvent::Kind::kDeliver, self_, m.type, m.meta_causal_id,
                m.meta_causal_parent);
}

void NetSystem::broadcast_from_self(const Message& m) {
  if (node_->crashed()) return;
  Message stamped = m;
  stamped.meta_sender = self_;
  stamped.meta_sent_at = now_ms();
  if (trace_.enabled()) {
    // Stamp BEFORE encode_frame so the lineage crosses the socket in the
    // trace-context frame extension.
    stamped.meta_causal_parent = causal_.parent;
    stamped.meta_causal_id = causal_.fresh();
    stamped.meta_causal_clock = causal_.tick();
    std::lock_guard lk(trace_mu_);
    trace_.record(stamped.meta_sent_at, TraceEvent::Kind::kBroadcast, self_, stamped.type,
                  stamped.meta_causal_id, stamped.meta_causal_parent);
  }
  std::vector<std::uint8_t> frame;
  try {
    HDS_PROF_SCOPE(obs::ProfSubsystem::kCodecEncode);
    frame = encode_frame(builtin_codecs(), stamped, self_, peers_[self_].id);
  } catch (const CodecError&) {
    // A body with no registered codec cannot cross a socket; count every
    // copy as lost rather than killing the node thread (configuration bug,
    // visible in stats, analogous to an MTU blackhole).
    std::lock_guard lk(stats_mu_);
    ++stats_.broadcasts;
    ++stats_.broadcasts_by_type[stamped.type];
    stats_.copies_lost_link += peers_.size();
    obs::inc(m_copies_lost_link_, peers_.size());
    return;
  }
  const SimTime sent_ms = stamped.meta_sent_at;
  const auto now = Clock::now();
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  for (ProcIndex to = 0; to < peers_.size(); ++to) {
    // With reliability on, each destination gets its own sequenced wrap of
    // the shared inner frame; the interposer then judges the first
    // transmission attempt (a drop is recovered by the retransmit timer —
    // loss injection sits below the ARQ, like a lossy wire).
    std::vector<std::uint8_t> wrapped;
    const std::vector<std::uint8_t>* wirep = &frame;
    if (rel_ != nullptr) {
      wrapped = rel_->wrap_data(to, stamped.type, frame, now);
      wirep = &wrapped;
    }
    const std::vector<std::uint8_t>& wire = *wirep;
    CopyVerdict verdict;
    if (interposer_ != nullptr) verdict = interposer_->on_copy(sent_ms, self_, to, stamped.type);
    if (verdict.drop) {
      ++dropped;
      obs::inc(m_copies_lost_link_);
      continue;
    }
    enqueue_send(now + std::chrono::milliseconds(verdict.extra_delay), to, wire);
    ++sent;
    for (std::size_t dup = 0; dup < verdict.duplicates; ++dup) {
      SimTime trail = 1;
      if (verdict.duplicate_spread > 0) {
        std::lock_guard lk(rng_mu_);
        trail = rng_.uniform(1, verdict.duplicate_spread);
      }
      enqueue_send(now + std::chrono::milliseconds(verdict.extra_delay + trail), to, wire);
      ++sent;
      ++duplicated;
      obs::inc(m_copies_duplicated_);
    }
  }
  if (rel_ != nullptr) rel_cv_.notify_all();  // new in-flight deadlines
  {
    std::lock_guard lk(stats_mu_);
    ++stats_.broadcasts;
    ++stats_.broadcasts_by_type[stamped.type];
    stats_.copies_sent += sent;
    stats_.copies_lost_link += dropped;
    stats_.copies_duplicated += duplicated;
  }
  obs::inc(m_broadcasts_);
}

void NetSystem::enqueue_send(Clock::time_point at, ProcIndex to, std::vector<std::uint8_t> frame) {
  {
    std::lock_guard lk(send_mu_);
    send_queue_.push_back(SendItem{at, send_seq_++, to, std::move(frame)});
    std::push_heap(send_queue_.begin(), send_queue_.end(), [](const SendItem& a, const SendItem& b) {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    });
  }
  send_cv_.notify_all();
}

void NetSystem::send_control(std::uint8_t tag, ProcIndex to) {
  send_control(tag, to, std::vector<std::uint8_t>{});
}

void NetSystem::send_control(std::uint8_t tag, ProcIndex to, const std::vector<std::uint8_t>& body) {
  BatchWriter w;
  w.add(encode_control_frame(tag, self_, peers_[self_].id, body));
  const auto datagram = w.take();
  UdpEndpoint ep;
  {
    std::lock_guard lk(ep_mu_);
    ep = peers_.at(to).ep;
  }
  const bool ok = [&] {
    HDS_PROF_SCOPE(obs::ProfSubsystem::kUdpSend);
    return sock_.send_to(ep, datagram.data(), datagram.size());
  }();
  std::lock_guard lk(stats_mu_);
  if (ok) {
    ++stats_.packets_sent;
    stats_.bytes_sent += datagram.size();
    obs::inc(m_packets_sent_);
    obs::inc(m_bytes_sent_, datagram.size());
  }
}

void NetSystem::sender_loop() {
  const auto later = [](const SendItem& a, const SendItem& b) {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  };
  std::unique_lock lk(send_mu_);
  for (;;) {
    const auto now = Clock::now();
    // Move due frames into their destination batch; a full batch (or any
    // batch when batching is off) flushes immediately.
    while (!send_queue_.empty() && send_queue_.front().at <= now) {
      std::pop_heap(send_queue_.begin(), send_queue_.end(), later);
      SendItem item = std::move(send_queue_.back());
      send_queue_.pop_back();
      PendingBatch& b = *pending_[item.to];
      if (b.w.empty()) b.deadline = now + std::chrono::milliseconds(flush_interval_ms_);
      b.w.add(item.frame);
      if (!batching_ || b.w.wire_size() >= max_batch_bytes_) flush_batch(item.to);
    }
    for (ProcIndex to = 0; to < pending_.size(); ++to) {
      if (!pending_[to]->w.empty() && pending_[to]->deadline <= now) flush_batch(to);
    }
    if (stop_flag_.load(std::memory_order_relaxed)) {
      // Best-effort final flush so a crash-free shutdown loses nothing.
      for (ProcIndex to = 0; to < pending_.size(); ++to) {
        if (!pending_[to]->w.empty()) flush_batch(to);
      }
      return;
    }
    // Sleep until the next due frame or batch deadline, whichever first.
    std::optional<Clock::time_point> wake;
    if (!send_queue_.empty()) wake = send_queue_.front().at;
    for (const auto& b : pending_) {
      if (!b->w.empty() && (!wake || b->deadline < *wake)) wake = b->deadline;
    }
    if (wake) {
      send_cv_.wait_until(lk, *wake);
    } else {
      send_cv_.wait(lk);
    }
  }
}

// Called with send_mu_ held. The sendto happens under the lock: on loopback
// it is a microsecond-scale non-blocking copy, and keeping it inside makes
// the (batch -> stats) update atomic with respect to flushes.
void NetSystem::flush_batch(ProcIndex to) {
  PendingBatch& b = *pending_[to];
  const std::size_t frames = b.w.frames();
  const auto datagram = b.w.take();
  UdpEndpoint ep;
  {
    std::lock_guard lk(ep_mu_);
    ep = peers_.at(to).ep;
  }
  const bool ok = [&] {
    HDS_PROF_SCOPE(obs::ProfSubsystem::kUdpSend);
    return sock_.send_to(ep, datagram.data(), datagram.size());
  }();
  std::lock_guard lk(stats_mu_);
  if (ok) {
    ++stats_.packets_sent;
    stats_.bytes_sent += datagram.size();
    obs::inc(m_packets_sent_);
    obs::inc(m_bytes_sent_, datagram.size());
    obs::observe(m_batch_frames_, static_cast<std::int64_t>(frames));
    obs::observe(m_batch_bytes_, static_cast<std::int64_t>(datagram.size()));
  } else {
    stats_.copies_lost_link += frames;
    obs::inc(m_copies_lost_link_, frames);
  }
}

void NetSystem::rel_loop() {
  using namespace std::chrono_literals;
  while (!stop_flag_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock lk(rel_wake_mu_);
      const auto next = rel_->next_deadline();
      // Cap the sleep so deadlines armed between next_deadline() and the
      // wait (or missed notifies) are picked up promptly.
      const auto cap = Clock::now() + 50ms;
      rel_cv_.wait_until(lk, next && *next < cap ? *next : cap);
    }
    if (stop_flag_.load(std::memory_order_relaxed)) return;
    dispatch_rel_sends(rel_->tick(Clock::now()));
  }
}

void NetSystem::dispatch_rel_sends(std::vector<RelSend> sends) {
  if (sends.empty()) return;
  const auto now = Clock::now();
  const SimTime now_ms_v = now_ms();
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  for (RelSend& s : sends) {
    CopyVerdict verdict;
    if (interposer_ != nullptr) verdict = interposer_->on_copy(now_ms_v, self_, s.to, s.type);
    if (verdict.drop) {
      ++dropped;
      obs::inc(m_copies_lost_link_);
      continue;
    }
    for (std::size_t copy = 0; copy <= verdict.duplicates; ++copy) {
      SimTime trail = 0;
      if (copy > 0) {
        trail = 1;
        if (verdict.duplicate_spread > 0) {
          std::lock_guard lk(rng_mu_);
          trail = rng_.uniform(1, verdict.duplicate_spread);
        }
        ++duplicated;
        obs::inc(m_copies_duplicated_);
      }
      enqueue_send(now + std::chrono::milliseconds(verdict.extra_delay + trail), s.to, s.frame);
      ++sent;
    }
  }
  std::lock_guard lk(stats_mu_);
  stats_.copies_sent += sent;
  stats_.copies_lost_link += dropped;
  stats_.copies_duplicated += duplicated;
}

void NetSystem::recv_loop() {
  std::vector<std::uint8_t> buf;
  while (!stop_flag_.load(std::memory_order_relaxed)) {
    const auto n = sock_.recv(buf);
    if (!n) continue;  // poll timeout; re-check the stop flag
    HDS_PROF_SCOPE(obs::ProfSubsystem::kUdpRecv);
    {
      std::lock_guard lk(stats_mu_);
      ++stats_.packets_received;
      stats_.bytes_received += *n;
    }
    obs::inc(m_packets_received_);
    obs::inc(m_bytes_received_, *n);
    try {
      for (const FrameView& f : split_batch(buf.data(), *n)) handle_frame(f.data, f.len);
    } catch (const CodecError&) {
      std::lock_guard lk(stats_mu_);
      ++stats_.decode_errors;
      obs::inc(m_decode_errors_);
    }
  }
}

void NetSystem::handle_frame(const std::uint8_t* data, std::size_t len) {
  Message m;
  try {
    HDS_PROF_SCOPE(obs::ProfSubsystem::kCodecDecode);
    m = decode_frame(builtin_codecs(), data, len);
  } catch (const CodecError&) {
    std::lock_guard lk(stats_mu_);
    ++stats_.decode_errors;
    obs::inc(m_decode_errors_);
    return;
  }
  const ProcIndex from = m.meta_sender;
  const auto tag = peek_tag(data, len);
  if (tag && *tag >= kCtrlTagFirst) {
    if (from >= peers_.size()) {
      std::lock_guard lk(stats_mu_);
      ++stats_.decode_errors;
      obs::inc(m_decode_errors_);
      return;
    }
    {
      std::lock_guard lk(peers_mu_);
      heard_from_[from] = true;
    }
    peers_cv_.notify_all();
    switch (*tag) {
      case kTagHello:
        send_control(kTagHelloAck, from);
        break;
      case kTagRelAck: {
        if (rel_ == nullptr) break;
        std::optional<RelAckBody> ack;
        if (const auto body = peek_control_body(data, len)) {
          ack = parse_rel_ack_body(body->data, body->len);
        }
        if (ack) {
          rel_->on_ack(from, ack->ack_epoch, ack->ack_cum, ack->ack_bits, Clock::now());
          rel_cv_.notify_all();  // the in-flight set (and deadlines) shrank
        }
        break;
      }
      case kTagRejoin:
      case kTagRejoinAck: {
        std::optional<std::uint64_t> peer_epoch;
        if (const auto body = peek_control_body(data, len)) {
          peer_epoch = parse_rejoin_body(body->data, body->len);
        }
        if (peer_epoch && rel_ != nullptr) {
          // A higher epoch flushes the link and re-sends what the dead
          // incarnation never acked.
          dispatch_rel_sends(rel_->note_peer_epoch(from, *peer_epoch, Clock::now()));
        }
        if (*tag == kTagRejoin) send_control(kTagRejoinAck, from, rejoin_body(epoch_num_));
        break;
      }
      default:
        break;
    }
    return;
  }
  // Latency across real processes is unknowable without clock agreement;
  // stamp receive time so downstream consumers see a well-formed value.
  m.meta_sent_at = now_ms();
  m.meta_wire_bytes = len;
  if (rel_ != nullptr) {
    if (const auto h = rel_peek(data, len)) {
      if (from >= peers_.size()) {
        std::lock_guard lk(stats_mu_);
        ++stats_.decode_errors;
        obs::inc(m_decode_errors_);
        return;
      }
      const auto now = Clock::now();
      dispatch_rel_sends(rel_->note_peer_epoch(from, h->epoch, now));
      rel_->on_ack(from, h->ack_epoch, h->ack_cum, h->ack_bits, now);
      auto ready = rel_->on_data(from, *h, std::move(m), now);
      for (Message& rm : ready) {
        node_->deliver(now, std::make_shared<const Message>(std::move(rm)));
      }
      rel_cv_.notify_all();  // a delayed ack may now be armed
      return;
    }
    // A plain (unsequenced) frame from a reliability-off peer falls
    // through and delivers directly, exactly as before.
  }
  node_->deliver(Clock::now(), std::make_shared<const Message>(std::move(m)));
}

SimTime NetSystem::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - epoch_).count();
}

bool NetSystem::wait_for(const std::function<bool()>& pred, std::chrono::milliseconds timeout,
                         std::chrono::milliseconds poll) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(poll);
  }
  return pred();
}

NetNetworkStats NetSystem::net_stats() {
  std::lock_guard lk(stats_mu_);
  return stats_;
}

RelStats NetSystem::rel_stats() {
  if (rel_ == nullptr) return RelStats{};
  return rel_->stats();
}

std::vector<TraceEvent> NetSystem::drain_trace(std::uint64_t& cursor) {
  std::lock_guard lk(trace_mu_);
  return trace_.drain_since(cursor);
}

std::vector<TraceEvent> NetSystem::trace_events() {
  std::lock_guard lk(trace_mu_);
  return trace_.events();
}

std::uint64_t NetSystem::trace_dropped() {
  std::lock_guard lk(trace_mu_);
  return trace_.dropped();
}

void NetSystem::stop() {
  if (stopped_) return;
  stopped_ = true;
  node_->request_stop();
  node_->join();
  stop_flag_.store(true, std::memory_order_relaxed);
  send_cv_.notify_all();
  rel_cv_.notify_all();
  if (rel_thread_.joinable()) rel_thread_.join();
  if (send_thread_.joinable()) send_thread_.join();
  if (recv_thread_.joinable()) recv_thread_.join();
  sock_.close();
}

}  // namespace hds::net
