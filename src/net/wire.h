// Wire-level primitives for the v1 binary codec: a growable byte writer and
// a bounds-checked reader over varints (LEB128), zigzag-signed integers,
// length-prefixed strings, and little-endian fixed words, plus the FNV-1a
// checksum the frame format carries.
//
// Every malformed-input path throws CodecError — readers never read past
// `end`, never trust an embedded length before checking it against the
// remaining bytes, and cap varints at their maximal encoded width — so a
// truncated or corrupted frame is rejected without undefined behaviour
// (the codec fuzz test runs these paths under ASan/UBSan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hds::net {

class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error("wire codec: " + what) {}
};

// Encoded width of an unsigned LEB128 varint, without encoding it.
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Encoded width of a zigzag-mapped signed varint.
[[nodiscard]] constexpr std::size_t svarint_size(std::int64_t v) {
  return varint_size((static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

class WireWriter {
 public:
  // Tag selecting the counting mode: the writer materializes nothing and
  // only tracks size(). This is how the substrates estimate per-broadcast
  // wire bytes without allocating or copying on the hot path.
  struct CountOnly {};

  WireWriter() = default;
  explicit WireWriter(CountOnly) : counting_(true) {}

  void u8(std::uint8_t v) {
    if (counting_) {
      ++count_;
      return;
    }
    buf_.push_back(v);
  }

  // Little-endian fixed 32-bit word (the checksum slot).
  void u32_fixed(std::uint32_t v) {
    if (counting_) {
      count_ += 4;
      return;
    }
    buf_.push_back(static_cast<std::uint8_t>(v & 0xFF));
    buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
    buf_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
    buf_.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
  }

  // Unsigned LEB128.
  void varint(std::uint64_t v) {
    if (counting_) {
      count_ += varint_size(v);
      return;
    }
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  // Zigzag-mapped signed integer (small magnitudes of either sign stay short).
  void svarint(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63));
  }

  void bytes(const void* data, std::size_t len) {
    if (counting_) {
      count_ += len;
      return;
    }
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  // Length-prefixed string.
  void str(const std::string& s) {
    varint(s.size());
    bytes(s.data(), s.size());
  }

  // In counting mode data() is always empty; use size().
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return counting_ ? count_ : buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t count_ = 0;
  bool counting_ = false;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t len) : p_(data), end_(data + len) {}

  [[nodiscard]] std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  [[nodiscard]] const std::uint8_t* cursor() const { return p_; }

  std::uint8_t u8() {
    need(1);
    return *p_++;
  }

  std::uint32_t u32_fixed() {
    need(4);
    std::uint32_t v = static_cast<std::uint32_t>(p_[0]) | (static_cast<std::uint32_t>(p_[1]) << 8) |
                      (static_cast<std::uint32_t>(p_[2]) << 16) |
                      (static_cast<std::uint32_t>(p_[3]) << 24);
    p_ += 4;
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        // The 10th byte may only contribute the top bit of a u64.
        if (shift == 63 && b > 1) throw CodecError("varint overflows 64 bits");
        return v;
      }
    }
    throw CodecError("varint longer than 10 bytes");
  }

  std::int64_t svarint() {
    const std::uint64_t z = varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  std::string str() {
    const std::uint64_t len = varint();
    if (len > remaining()) throw CodecError("string length exceeds remaining bytes");
    std::string s(reinterpret_cast<const char*>(p_), static_cast<std::size_t>(len));
    p_ += len;
    return s;
  }

  void skip(std::size_t len) {
    need(len);
    p_ += len;
  }

 private:
  void need(std::size_t len) const {
    if (remaining() < len) throw CodecError("truncated input");
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// FNV-1a 32-bit, the frame checksum (cheap, endian-free, catches the
// truncation/bit-rot class of faults; not cryptographic).
[[nodiscard]] std::uint32_t fnv1a(const std::uint8_t* data, std::size_t len);

}  // namespace hds::net
