#include "net/reliable.h"

#include <algorithm>

namespace hds::net {

namespace {

std::chrono::milliseconds ms(SimTime t) { return std::chrono::milliseconds(t); }

double ms_between(RelTime from, RelTime to) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(to - from).count();
}

// Offset of the body-length varint inside a well-formed frame — the splice
// point for the ARQ extension. Throws CodecError on malformation.
std::size_t body_len_offset(const std::uint8_t* data, std::size_t len) {
  if (len < 4 + 4 || data[0] != kWireMagic0 || data[1] != kWireMagic1 ||
      (data[2] & kWireVersionMask) != kWireVersion) {
    throw CodecError("rel: not a v1 frame");
  }
  WireReader r(data + 4, len - 4 - 4);
  r.varint();  // sender index
  r.varint();  // sender id
  if ((data[2] & kWireTracedFlag) != 0) {
    for (int i = 0; i < 3; ++i) r.varint();
  }
  return len - 4 - r.remaining();
}

}  // namespace

std::vector<std::uint8_t> rel_wrap(const std::vector<std::uint8_t>& inner, const RelHeader& h) {
  if ((inner.size() > 2) && (inner[2] & kWireRelFlag) != 0) {
    throw CodecError("rel_wrap: frame already wrapped");
  }
  const std::size_t split = body_len_offset(inner.data(), inner.size());
  WireWriter w;
  w.u8(inner[0]);
  w.u8(inner[1]);
  w.u8(static_cast<std::uint8_t>(inner[2] | kWireRelFlag));
  w.bytes(inner.data() + 3, split - 3);  // tag + sender varints + trace extension
  w.varint(h.epoch);
  w.varint(h.seq);
  w.varint(h.lost_floor);
  w.varint(h.ack_epoch);
  w.varint(h.ack_cum);
  w.varint(h.ack_bits);
  // body length + body, then a fresh checksum over the new byte string.
  w.bytes(inner.data() + split, inner.size() - 4 - split);
  w.u32_fixed(fnv1a(w.data().data(), w.size()));
  return w.take();
}

std::optional<RelHeader> rel_peek(const std::uint8_t* data, std::size_t len) {
  if (len < 4 + 4 || data[0] != kWireMagic0 || data[1] != kWireMagic1 ||
      (data[2] & kWireVersionMask) != kWireVersion || (data[2] & kWireRelFlag) == 0) {
    return std::nullopt;
  }
  try {
    WireReader r(data + 4, len - 4 - 4);
    r.varint();  // sender index
    r.varint();  // sender id
    if ((data[2] & kWireTracedFlag) != 0) {
      for (int i = 0; i < 3; ++i) r.varint();
    }
    RelHeader h;
    h.epoch = r.varint();
    h.seq = r.varint();
    h.lost_floor = r.varint();
    h.ack_epoch = r.varint();
    h.ack_cum = r.varint();
    h.ack_bits = r.varint();
    return h;
  } catch (const CodecError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> rel_ack_body(const RelAckBody& b) {
  WireWriter w;
  w.varint(b.ack_epoch);
  w.varint(b.ack_cum);
  w.varint(b.ack_bits);
  return w.take();
}

std::optional<RelAckBody> parse_rel_ack_body(const std::uint8_t* data, std::size_t len) {
  try {
    WireReader r(data, len);
    RelAckBody b;
    b.ack_epoch = r.varint();
    b.ack_cum = r.varint();
    b.ack_bits = r.varint();
    if (r.remaining() != 0) return std::nullopt;
    return b;
  } catch (const CodecError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> rejoin_body(std::uint64_t epoch) {
  WireWriter w;
  w.varint(epoch);
  return w.take();
}

std::optional<std::uint64_t> parse_rejoin_body(const std::uint8_t* data, std::size_t len) {
  try {
    WireReader r(data, len);
    const std::uint64_t e = r.varint();
    if (r.remaining() != 0) return std::nullopt;
    return e;
  } catch (const CodecError&) {
    return std::nullopt;
  }
}

// ---------------------------------------------------------------- channel

ReliableChannel::ReliableChannel(RelConfig cfg, ProcIndex self, Id self_id, std::size_t n,
                                 std::uint64_t self_epoch, obs::MetricsRegistry* metrics)
    : cfg_(cfg),
      self_(self),
      self_id_(self_id),
      self_epoch_(self_epoch),
      send_(n),
      recv_(n),
      rng_(cfg.seed) {
  if (cfg_.window == 0 || cfg_.reorder_buffer == 0) {
    throw std::invalid_argument("ReliableChannel: zero window");
  }
  if (metrics != nullptr) {
    m_data_sent_ = &metrics->counter("rel_data_sent_total");
    m_retransmits_ = &metrics->counter("rel_retransmits_total");
    m_acked_ = &metrics->counter("rel_acked_total");
    m_window_drops_ = &metrics->counter("rel_window_drops_total");
    m_reorder_drops_ = &metrics->counter("rel_reorder_drops_total");
    m_acks_sent_ = &metrics->counter("rel_acks_sent_total");
    m_acks_received_ = &metrics->counter("rel_acks_received_total");
    m_dup_frames_ = &metrics->counter("rel_dup_frames_total");
    m_out_of_order_ = &metrics->counter("rel_out_of_order_total");
    m_skipped_lost_ = &metrics->counter("rel_skipped_lost_total");
    m_delivered_ = &metrics->counter("rel_delivered_total");
    m_stale_epoch_ = &metrics->counter("rel_stale_epoch_drops_total");
    m_epoch_flushes_ = &metrics->counter("rel_epoch_flushes_total");
    m_requeued_ = &metrics->counter("rel_requeued_total");
    m_rtt_ms_ = &metrics->histogram("rel_rtt_ms", obs::latency_buckets());
  }
}

SimTime ReliableChannel::current_rto(const SendLink& s) const {
  if (!s.have_rtt) return cfg_.rto_initial_ms;
  const auto rto = static_cast<SimTime>(s.srtt_ms + 4.0 * s.rttvar_ms + 0.5);
  return std::clamp(rto, cfg_.rto_min_ms, cfg_.rto_max_ms);
}

std::uint64_t ReliableChannel::ack_bits_of(const RecvLink& r) {
  std::uint64_t bits = 0;
  for (auto it = r.ooo.begin(); it != r.ooo.end(); ++it) {
    const std::uint64_t off = it->first - r.cum;  // >= 1 by invariant
    if (off == 0 || off > 64) continue;
    bits |= std::uint64_t{1} << (off - 1);
  }
  return bits;
}

RelHeader ReliableChannel::header_for(ProcIndex to, std::uint64_t seq, const SendLink& s) {
  RecvLink& r = recv_[to];
  RelHeader h;
  h.epoch = self_epoch_;
  h.seq = seq;
  h.lost_floor = s.lost_floor;
  h.ack_epoch = r.epoch;
  h.ack_cum = r.cum;
  h.ack_bits = ack_bits_of(r);
  r.ack_pending = false;  // fully conveyed by the piggyback
  return h;
}

void ReliableChannel::update_rtt(SendLink& s, double sample_ms) {
  if (!s.have_rtt) {
    s.srtt_ms = sample_ms;
    s.rttvar_ms = sample_ms / 2.0;
    s.have_rtt = true;
  } else {
    s.rttvar_ms = 0.75 * s.rttvar_ms + 0.25 * std::abs(s.srtt_ms - sample_ms);
    s.srtt_ms = 0.875 * s.srtt_ms + 0.125 * sample_ms;
  }
  obs::observe(m_rtt_ms_, static_cast<std::int64_t>(sample_ms + 0.5));
}

std::vector<std::uint8_t> ReliableChannel::wrap_data(ProcIndex to, const std::string& type,
                                                     const std::vector<std::uint8_t>& inner,
                                                     RelTime now) {
  std::lock_guard lk(mu_);
  SendLink& s = send_.at(to);
  if (s.window.size() >= cfg_.window) {
    // Graceful degradation: abandon the oldest frame and advance the lost
    // floor so the peer's cumulative ack can move past the hole.
    if (!s.window.front().sacked) {
      ++st_.window_drops;
      obs::inc(m_window_drops_);
    }
    s.lost_floor = s.window.front().seq;
    s.window.pop_front();
  }
  Inflight f;
  f.seq = s.next_seq++;
  f.type = type;
  f.inner = inner;
  f.first_sent = now;
  f.rto_ms = current_rto(s);
  f.next_due = now + ms(f.rto_ms);
  const RelHeader h = header_for(to, f.seq, s);
  auto wire = rel_wrap(inner, h);
  s.window.push_back(std::move(f));
  ++st_.data_sent;
  obs::inc(m_data_sent_);
  return wire;
}

void ReliableChannel::drain_ready(RecvLink& r, std::vector<Message>& out) {
  while (!r.ooo.empty()) {
    auto it = r.ooo.begin();
    if (it->first <= r.cum) {
      // Released by a lost-floor jump: received past frames deliver in
      // sequence order even though the cum already covers them.
      out.push_back(std::move(it->second));
    } else if (it->first == r.cum + 1) {
      ++r.cum;
      out.push_back(std::move(it->second));
    } else {
      break;
    }
    r.ooo.erase(it);
    ++st_.delivered;
    obs::inc(m_delivered_);
  }
}

std::vector<Message> ReliableChannel::on_data(ProcIndex from, const RelHeader& h, Message m,
                                              RelTime now) {
  std::lock_guard lk(mu_);
  RecvLink& r = recv_.at(from);
  std::vector<Message> out;
  if (h.epoch != r.epoch) {
    // note_peer_epoch runs before on_data, so a mismatch means a stale
    // incarnation's datagram still in flight — discard it.
    ++st_.stale_epoch_drops;
    obs::inc(m_stale_epoch_);
    return out;
  }
  if (h.lost_floor > r.cum) {
    // The peer gave up on everything at or below the floor; count the seqs
    // that never arrived (the parked ones deliver below).
    std::uint64_t skipped = h.lost_floor - r.cum;
    for (const auto& [seq, parked] : r.ooo) {
      (void)parked;
      if (seq > r.cum && seq <= h.lost_floor) --skipped;
    }
    st_.skipped_lost += skipped;
    obs::inc(m_skipped_lost_, skipped);
    r.cum = h.lost_floor;
    drain_ready(r, out);
  }
  if (h.seq <= r.cum || r.ooo.count(h.seq) != 0) {
    ++st_.dup_frames;
    obs::inc(m_dup_frames_);
  } else if (h.seq == r.cum + 1) {
    ++r.cum;
    out.push_back(std::move(m));
    ++st_.delivered;
    obs::inc(m_delivered_);
    drain_ready(r, out);
  } else if (r.ooo.size() >= cfg_.reorder_buffer) {
    // Park buffer full: drop; the peer's retransmission covers it once the
    // gap closes and space frees up.
    ++st_.reorder_drops;
    obs::inc(m_reorder_drops_);
  } else {
    r.ooo.emplace(h.seq, std::move(m));
    ++st_.out_of_order;
    obs::inc(m_out_of_order_);
  }
  // Always (re-)arm the delayed ack — even duplicates mean the peer is
  // missing our ack state.
  if (!r.ack_pending) {
    r.ack_pending = true;
    r.ack_due = now + ms(cfg_.ack_delay_ms);
  }
  return out;
}

void ReliableChannel::on_ack(ProcIndex from, std::uint64_t ack_epoch, std::uint64_t ack_cum,
                             std::uint64_t ack_bits, RelTime now) {
  std::lock_guard lk(mu_);
  if (ack_epoch != self_epoch_) {
    // Meant for a previous incarnation of this node; its seq space is gone.
    ++st_.stale_epoch_drops;
    obs::inc(m_stale_epoch_);
    return;
  }
  SendLink& s = send_.at(from);
  ++st_.acks_received;
  obs::inc(m_acks_received_);
  while (!s.window.empty() && s.window.front().seq <= ack_cum) {
    const Inflight& f = s.window.front();
    if (f.attempts == 1) {
      // Karn's rule: a retransmitted frame's ack is ambiguous, never a sample.
      update_rtt(s, ms_between(f.first_sent, now));
    }
    ++st_.acked;
    obs::inc(m_acked_);
    s.window.pop_front();
  }
  for (Inflight& f : s.window) {
    if (f.sacked || f.seq <= ack_cum || f.seq > ack_cum + 64) continue;
    if ((ack_bits >> (f.seq - ack_cum - 1) & 1) != 0) {
      f.sacked = true;
      ++st_.acked;
      obs::inc(m_acked_);
    }
  }
}

std::vector<RelSend> ReliableChannel::note_peer_epoch(ProcIndex peer, std::uint64_t epoch,
                                                      RelTime now) {
  std::lock_guard lk(mu_);
  std::vector<RelSend> out;
  RecvLink& r = recv_.at(peer);
  if (epoch <= r.epoch) return out;
  ++st_.epoch_flushes;
  obs::inc(m_epoch_flushes_);
  // Receiver direction: the peer's sequence space starts over.
  r = RecvLink{};
  r.epoch = epoch;
  // Sender direction: fresh seqs, RTT, and floor for the new incarnation —
  // but whatever the dead one never acked must still get through, so the
  // payloads are re-queued (the new process may have consumed some of them
  // in its previous life; consensus bodies tolerate replay, and a missed
  // DECIDE is exactly what the re-queue exists to deliver).
  SendLink& s = send_.at(peer);
  std::deque<Inflight> old;
  old.swap(s.window);
  s = SendLink{};
  for (Inflight& f : old) {
    Inflight fresh;
    fresh.seq = s.next_seq++;
    fresh.type = std::move(f.type);
    fresh.inner = std::move(f.inner);
    fresh.first_sent = now;
    fresh.rto_ms = current_rto(s);
    fresh.next_due = now + ms(fresh.rto_ms);
    const RelHeader h = header_for(peer, fresh.seq, s);
    out.push_back(RelSend{peer, fresh.type, rel_wrap(fresh.inner, h)});
    s.window.push_back(std::move(fresh));
    ++st_.requeued;
    obs::inc(m_requeued_);
  }
  return out;
}

std::vector<RelSend> ReliableChannel::tick(RelTime now) {
  std::lock_guard lk(mu_);
  std::vector<RelSend> out;
  for (ProcIndex p = 0; p < send_.size(); ++p) {
    SendLink& s = send_[p];
    // Retry budget exhausted at the head: give up and advance the floor so
    // the link degrades instead of wedging.
    while (!s.window.empty() && s.window.front().attempts > cfg_.max_retransmits) {
      if (!s.window.front().sacked) {
        ++st_.window_drops;
        obs::inc(m_window_drops_);
      }
      s.lost_floor = s.window.front().seq;
      s.window.pop_front();
    }
    for (Inflight& f : s.window) {
      if (f.sacked || f.next_due > now) continue;
      if (f.attempts >= cfg_.max_retransmits) {
        // Out of budget mid-window; parked at max RTO until it reaches the
        // head and the give-up path above runs.
        f.attempts = cfg_.max_retransmits + 1;
        f.next_due = now + ms(cfg_.rto_max_ms);
        continue;
      }
      ++f.attempts;
      f.rto_ms = std::min<SimTime>(f.rto_ms * 2, cfg_.rto_max_ms);
      const SimTime jitter = rng_.uniform(0, std::max<SimTime>(1, f.rto_ms / 4));
      f.next_due = now + ms(f.rto_ms + jitter);
      ++st_.retransmits;
      obs::inc(m_retransmits_);
      out.push_back(RelSend{p, f.type, rel_wrap(f.inner, header_for(p, f.seq, s))});
    }
  }
  for (ProcIndex p = 0; p < recv_.size(); ++p) {
    RecvLink& r = recv_[p];
    if (!r.ack_pending || r.ack_due > now) continue;
    r.ack_pending = false;
    ++st_.acks_sent;
    obs::inc(m_acks_sent_);
    const RelAckBody body{r.epoch, r.cum, ack_bits_of(r)};
    out.push_back(
        RelSend{p, "REL_ACK", encode_control_frame(kTagRelAck, self_, self_id_, rel_ack_body(body))});
  }
  return out;
}

std::optional<RelTime> ReliableChannel::next_deadline() {
  std::lock_guard lk(mu_);
  std::optional<RelTime> next;
  for (const SendLink& s : send_) {
    for (const Inflight& f : s.window) {
      if (f.sacked) continue;
      if (!next || f.next_due < *next) next = f.next_due;
    }
  }
  for (const RecvLink& r : recv_) {
    if (r.ack_pending && (!next || r.ack_due < *next)) next = r.ack_due;
  }
  return next;
}

RelStats ReliableChannel::stats() {
  std::lock_guard lk(mu_);
  return st_;
}

// --------------------------------------------------------------- emulator

CopyVerdict ReliableLinkEmulator::on_copy(SimTime now, ProcIndex from, ProcIndex to,
                                          const std::string& type) {
  CopyVerdict v = inner_.on_copy(now, from, to, type);
  dedup_suppressed_ += v.duplicates;
  v.duplicates = 0;
  v.duplicate_spread = 0;
  if (!v.drop) return v;
  SimTime delay = v.extra_delay;
  SimTime rto = cfg_.rto_base_ms;
  for (int attempt = 1; attempt < cfg_.max_attempts; ++attempt) {
    delay += rto;
    rto = std::min<SimTime>(rto * 2, cfg_.rto_max_ms);
    CopyVerdict retry = inner_.on_copy(now + delay, from, to, type);
    dedup_suppressed_ += retry.duplicates;
    if (!retry.drop) {
      ++recovered_;
      return CopyVerdict{false, delay + retry.extra_delay, 0, 0};
    }
  }
  ++given_up_;
  return CopyVerdict{true, 0, 0, 0};
}

}  // namespace hds::net
