// Per-peer-link ARQ between the v1 codec and the UDP socket: the paper's
// algorithms assume reliable channels, this layer manufactures them out of
// lossy datagrams.
//
// Sender side, per directed link self -> peer:
//   - every wrapped data frame gets a 1-based sequence number and sits in a
//     bounded in-flight window until acknowledged;
//   - retransmission is driven by a Jacobson-estimated RTO (SRTT + 4*RTTVAR,
//     clamped to [rto_min, rto_max]) with exponential backoff plus seeded
//     jitter; RTT samples follow Karn's rule (only frames never
//     retransmitted time the link);
//   - when the window overflows or a frame exhausts its retry budget the
//     OLDEST frame is abandoned and the link's "lost floor" advances —
//     the floor rides every later frame so the receiver skips the abandoned
//     sequence numbers instead of wedging its cumulative ack (graceful
//     degradation, not silent deadlock).
//
// Receiver side, per directed link peer -> self:
//   - frames at cum+1 deliver immediately; frames past a gap park in a
//     bounded reorder buffer; frames at or below cum (or already parked)
//     are duplicates and are dropped, so delivery above the layer is
//     exactly-once and in order;
//   - acks are cumulative plus a 64-bit selective bitmap over
//     cum+1..cum+64, piggybacked on every reverse-direction data frame and
//     flushed as a standalone kTagRelAck control frame after ack_delay_ms
//     when the reverse direction is idle.
//
// Crash-restart: a process incarnation carries an epoch (bumped by the
// hds_cluster supervisor on every respawn). Frames and acks are stamped
// with the sender's epoch and the epoch being acked; seeing a higher epoch
// for a peer flushes both directions of that link — unacked payloads are
// re-queued under fresh sequence numbers so the new incarnation still
// receives what its predecessor never acknowledged — and anything stamped
// with a stale epoch is discarded.
//
// The wire encoding is a version-gated extension (kWireRelFlag) exactly
// like the trace context: reliability off never sets the flag and frames
// stay byte-identical to plain v1 (the golden fixtures pin both layouts).
//
// The channel is substrate-passive: it never touches a socket or a clock.
// Callers pass `now` in and send whatever the calls return, which is what
// makes the property tests deterministic (virtual time, scripted loss).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/link_fault.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/codec.h"
#include "obs/metrics.h"
#include "sim/message.h"

namespace hds::net {

using RelTime = std::chrono::steady_clock::time_point;

// The 6-varint ARQ extension spliced into a v1 frame (see codec.h layout).
struct RelHeader {
  std::uint64_t epoch = 0;       // sender incarnation
  std::uint64_t seq = 0;         // per-link sequence number, 1-based
  std::uint64_t lost_floor = 0;  // receiver may skip every seq <= this
  std::uint64_t ack_epoch = 0;   // destination incarnation the acks refer to
  std::uint64_t ack_cum = 0;     // reverse direction: all seqs <= this held
  std::uint64_t ack_bits = 0;    // reverse direction: bitmap ack_cum+1..+64
};

// Splices the ARQ header into an encoded v1 frame (after the sender varints
// and any trace extension, before the body length) and recomputes the
// checksum. Throws CodecError if `inner` is not a well-formed frame.
std::vector<std::uint8_t> rel_wrap(const std::vector<std::uint8_t>& inner, const RelHeader& h);

// Reads the ARQ header back out of a frame; nullopt when the frame does not
// carry kWireRelFlag or is malformed. Does not validate the checksum —
// decode_frame does, and the transport runs it first.
std::optional<RelHeader> rel_peek(const std::uint8_t* data, std::size_t len);

// Standalone-ack body (rides a kTagRelAck control frame).
struct RelAckBody {
  std::uint64_t ack_epoch = 0;
  std::uint64_t ack_cum = 0;
  std::uint64_t ack_bits = 0;
};
std::vector<std::uint8_t> rel_ack_body(const RelAckBody& b);
std::optional<RelAckBody> parse_rel_ack_body(const std::uint8_t* data, std::size_t len);

// Rejoin / rejoin-ack body: the sender's incarnation epoch.
std::vector<std::uint8_t> rejoin_body(std::uint64_t epoch);
std::optional<std::uint64_t> parse_rejoin_body(const std::uint8_t* data, std::size_t len);

struct RelConfig {
  bool enabled = false;
  std::size_t window = 128;          // in-flight frames per link before drop-oldest
  std::size_t reorder_buffer = 256;  // parked out-of-order frames per link
  SimTime rto_initial_ms = 100;      // before the first RTT sample
  SimTime rto_min_ms = 20;
  SimTime rto_max_ms = 2000;
  SimTime ack_delay_ms = 15;  // standalone-ack latency when the link is idle
  int max_retransmits = 30;   // retry budget per frame, then lost-floor give-up
  std::uint64_t seed = 1;     // retransmission jitter
};

// Counter snapshot; every field also has a rel_* metrics-registry series.
struct RelStats {
  std::uint64_t data_sent = 0;          // first transmissions wrapped
  std::uint64_t retransmits = 0;        // timer-driven re-sends
  std::uint64_t acked = 0;              // in-flight frames confirmed
  std::uint64_t window_drops = 0;       // drop-oldest + retry-budget give-ups
  std::uint64_t reorder_drops = 0;      // reorder buffer overflow (retransmit covers)
  std::uint64_t acks_sent = 0;          // standalone ACK frames emitted
  std::uint64_t acks_received = 0;      // ack payloads processed
  std::uint64_t dup_frames = 0;         // receiver-side duplicates suppressed
  std::uint64_t out_of_order = 0;       // frames parked past a gap
  std::uint64_t skipped_lost = 0;       // seqs skipped via a peer's lost floor
  std::uint64_t delivered = 0;          // in-order messages handed up
  std::uint64_t stale_epoch_drops = 0;  // frames/acks from a dead incarnation
  std::uint64_t epoch_flushes = 0;      // per-link flushes on an epoch bump
  std::uint64_t requeued = 0;           // unacked payloads re-sent after a flush
};

// One frame the caller should transmit: retransmissions carry the original
// message type (so fault interposers judge them like any other copy);
// standalone acks carry type "REL_ACK".
struct RelSend {
  ProcIndex to = 0;
  std::string type;
  std::vector<std::uint8_t> frame;
};

class ReliableChannel {
 public:
  ReliableChannel(RelConfig cfg, ProcIndex self, Id self_id, std::size_t n,
                  std::uint64_t self_epoch, obs::MetricsRegistry* metrics);

  [[nodiscard]] std::uint64_t self_epoch() const { return self_epoch_; }

  // Sender: assigns the next sequence number on self -> to, records the
  // frame in-flight, and returns the wrapped wire bytes for the first
  // transmission attempt (with the reverse direction's acks piggybacked).
  std::vector<std::uint8_t> wrap_data(ProcIndex to, const std::string& type,
                                      const std::vector<std::uint8_t>& inner, RelTime now);

  // Receiver: folds an arrived data frame's ARQ header in. Returns the
  // messages now deliverable, in order (possibly empty: duplicate, stale
  // epoch, or parked past a gap). Call note_peer_epoch and on_ack first.
  std::vector<Message> on_data(ProcIndex from, const RelHeader& h, Message m, RelTime now);

  // Ack payload from `from` (piggybacked or standalone). Ignored unless it
  // acks this incarnation.
  void on_ack(ProcIndex from, std::uint64_t ack_epoch, std::uint64_t ack_cum,
              std::uint64_t ack_bits, RelTime now);

  // Peer announced incarnation `epoch` (REJOIN frame or any data frame). A
  // higher epoch than known flushes both directions of the link; the
  // returned frames are the unacked payloads re-wrapped for the new
  // incarnation — transmit them now. No-op when the epoch is not news.
  std::vector<RelSend> note_peer_epoch(ProcIndex peer, std::uint64_t epoch, RelTime now);

  // Due retransmissions and standalone acks; call when next_deadline is due.
  std::vector<RelSend> tick(RelTime now);

  // Earliest instant tick() has work; nullopt when fully idle.
  [[nodiscard]] std::optional<RelTime> next_deadline();

  [[nodiscard]] RelStats stats();

 private:
  struct Inflight {
    std::uint64_t seq = 0;
    std::string type;
    std::vector<std::uint8_t> inner;  // unwrapped v1 frame; re-wrapped per attempt
    RelTime first_sent{};
    RelTime next_due{};
    SimTime rto_ms = 0;
    int attempts = 1;
    bool sacked = false;  // selectively acked; held until cum covers it
  };
  struct SendLink {
    std::uint64_t next_seq = 1;
    std::uint64_t lost_floor = 0;
    std::deque<Inflight> window;  // ascending seq
    double srtt_ms = 0;
    double rttvar_ms = 0;
    bool have_rtt = false;
  };
  struct RecvLink {
    std::uint64_t epoch = 0;  // last incarnation seen for this peer
    std::uint64_t cum = 0;    // delivered (or floor-skipped) through here
    std::map<std::uint64_t, Message> ooo;
    bool ack_pending = false;
    RelTime ack_due{};
  };

  [[nodiscard]] SimTime current_rto(const SendLink& s) const;
  [[nodiscard]] static std::uint64_t ack_bits_of(const RecvLink& r);
  // Builds the header for (to, seq) and marks the piggybacked acks as sent.
  RelHeader header_for(ProcIndex to, std::uint64_t seq, const SendLink& s);
  void update_rtt(SendLink& s, double sample_ms);
  void drain_ready(RecvLink& r, std::vector<Message>& out);

  mutable std::mutex mu_;
  RelConfig cfg_;
  ProcIndex self_;
  Id self_id_;
  std::uint64_t self_epoch_;
  std::vector<SendLink> send_;
  std::vector<RecvLink> recv_;
  Rng rng_;
  RelStats st_;

  obs::Counter* m_data_sent_ = nullptr;
  obs::Counter* m_retransmits_ = nullptr;
  obs::Counter* m_acked_ = nullptr;
  obs::Counter* m_window_drops_ = nullptr;
  obs::Counter* m_reorder_drops_ = nullptr;
  obs::Counter* m_acks_sent_ = nullptr;
  obs::Counter* m_acks_received_ = nullptr;
  obs::Counter* m_dup_frames_ = nullptr;
  obs::Counter* m_out_of_order_ = nullptr;
  obs::Counter* m_skipped_lost_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_stale_epoch_ = nullptr;
  obs::Counter* m_epoch_flushes_ = nullptr;
  obs::Counter* m_requeued_ = nullptr;
  obs::Histogram* m_rtt_ms_ = nullptr;
};

// Mirrors the ARQ layer's recovery semantics behind the LinkInterposer seam
// so the deterministic sim can run the SAME chaos plans a reliable cluster
// survives: a copy the inner interposer would drop is re-judged at
// retransmission-spaced future instants until an attempt gets through (the
// verdict's extra delay accumulates the recovery time), and injected
// duplicates are suppressed (the dedup window would discard them anyway).
// After max_attempts the copy is dropped for real — the same bounded
// retry budget / lost-floor degradation the live layer applies.
//
// Consumes no randomness of its own, so a chaos case replays byte-identically.
class ReliableLinkEmulator final : public LinkInterposer {
 public:
  struct Config {
    SimTime rto_base_ms = 8;
    SimTime rto_max_ms = 1024;
    int max_attempts = 12;  // cumulative backoff spans > 4s, past any GST
  };
  explicit ReliableLinkEmulator(LinkInterposer& inner) : inner_(inner) {}
  ReliableLinkEmulator(LinkInterposer& inner, Config cfg) : inner_(inner), cfg_(cfg) {}

  CopyVerdict on_copy(SimTime now, ProcIndex from, ProcIndex to, const std::string& type) override;

  [[nodiscard]] std::uint64_t recovered() const { return recovered_; }
  [[nodiscard]] std::uint64_t dedup_suppressed() const { return dedup_suppressed_; }
  [[nodiscard]] std::uint64_t given_up() const { return given_up_; }

 private:
  LinkInterposer& inner_;
  Config cfg_;
  std::uint64_t recovered_ = 0;
  std::uint64_t dedup_suppressed_ = 0;
  std::uint64_t given_up_ = 0;
};

}  // namespace hds::net
