// Minimal POSIX UDP socket wrapper (IPv4), enough for the cluster
// substrate: bind, sendto, recvfrom-with-timeout. Throws std::system_error
// on setup failures; data-path errors are returned, not thrown (a dropped
// datagram is a normal event for this transport).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hds::net {

struct UdpEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  friend bool operator==(const UdpEndpoint&, const UdpEndpoint&) = default;
};

class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  // Binds to `ep` (port 0 = ephemeral; local_port() reports the outcome)
  // and arms a receive timeout so recv() polls rather than blocks forever.
  void open(const UdpEndpoint& ep, int recv_timeout_ms = 100);
  void close();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }

  // True when the full datagram was handed to the kernel. Oversized or
  // transient failures return false (counted by the caller as wire loss).
  bool send_to(const UdpEndpoint& ep, const std::uint8_t* data, std::size_t len);

  // One datagram, or nullopt on timeout / transient error. `buf` is resized
  // to the received length (max 64 KiB).
  std::optional<std::size_t> recv(std::vector<std::uint8_t>& buf);

  // Same, also reporting the sender — for request/response services (the
  // admin channel) that must address a reply.
  std::optional<std::size_t> recv_from(std::vector<std::uint8_t>& buf, UdpEndpoint& from);

 private:
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
};

}  // namespace hds::net
