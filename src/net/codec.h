// The v1 frame format and the per-message-type codec registry.
//
// A frame carries exactly one Message across a process boundary:
//
//   offset 0   u8      magic 'H'
//          1   u8      magic 'S'
//          2   u8      version (1), OR'd with kWireTracedFlag (0x80) when
//                      the optional trace-context extension is present
//          3   u8      body type tag (see codecs_builtin.cpp; >= 0xF0 are
//                      transport-control frames that never reach a Process)
//          4   varint  sender node index (instrumentation -> meta_sender;
//                      protocol code never reads it, matching the model's
//                      "the receiver cannot identify the link")
//          ..  varint  sender identifier (the homonymous id/label)
//          [traced frames only — the causal context, obs/causal.h:]
//          ..  varint  lineage id of this send
//          ..  varint  lineage id of the causing event
//          ..  varint  Lamport clock at the send
//          [end of extension]
//          [reliable frames only — the ARQ header, net/reliable.h; marked
//           by kWireRelFlag (0x40) in the version byte:]
//          ..  varint  sender incarnation epoch
//          ..  varint  per-link sequence number (1-based)
//          ..  varint  lost floor (receiver may skip every seq <= this)
//          ..  varint  acked epoch (the destination incarnation being acked)
//          ..  varint  cumulative ack for the reverse direction
//          ..  varint  selective-ack bitmap over ack_cum+1 .. ack_cum+64
//          [end of extension]
//          ..  varint  body length in bytes
//          ..  bytes   body (encoded by the tag's registered codec)
//          ..  u32le   FNV-1a checksum of every preceding byte
//
// Frames sent with tracing off carry a bare version byte and are
// byte-identical to pre-extension v1 frames (the golden fixtures pin this).
//
// A datagram coalesces frames (send batching):
//
//   u8 'H', u8 'B', u8 version, varint frame count,
//   then per frame: varint frame length, frame bytes.
//
// The layout is frozen by the golden fixtures under tests/wire/ — an
// incompatible edit must bump kWireVersion and regenerate them.
//
// The registry maps a Message::type string to a (tag, encode, decode)
// triple. Bodies travel as std::any exactly as they do in-process; the
// registered functions are the only place that knows the concrete struct.
// builtin_codecs() covers every FD and consensus body in the library, so
// any stack the harness can assemble can cross a socket unchanged.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/wire.h"
#include "sim/message.h"

namespace hds::net {

inline constexpr std::uint8_t kWireMagic0 = 'H';
inline constexpr std::uint8_t kWireMagic1 = 'S';
inline constexpr std::uint8_t kBatchMagic1 = 'B';
inline constexpr std::uint8_t kWireVersion = 1;
// Version-byte flag marking the optional causal trace-context extension
// (3 varints between the sender-id varint and the body-length varint). A
// frame is traced iff the Message carried a nonzero meta_causal_id.
inline constexpr std::uint8_t kWireTracedFlag = 0x80;
// Version-byte flag marking the optional ARQ header (6 varints right before
// the body-length varint). Plain frames stay byte-identical to pre-extension
// v1 — reliability off never sets the flag.
inline constexpr std::uint8_t kWireRelFlag = 0x40;
inline constexpr std::uint8_t kWireVersionMask = 0x3F;

// Transport-control tags (handled by the substrate, never dispatched to a
// Process; HELLO/HELLO-ACK bodies are empty, the ARQ-era tags carry small
// varint bodies parsed by net/reliable.h helpers).
inline constexpr std::uint8_t kCtrlTagFirst = 0xF0;
inline constexpr std::uint8_t kTagHello = 0xF0;      // peer-barrier probe
inline constexpr std::uint8_t kTagHelloAck = 0xF1;   // probe answer
inline constexpr std::uint8_t kTagRelAck = 0xF2;     // standalone ARQ ack
inline constexpr std::uint8_t kTagRejoin = 0xF3;     // restart barrier probe (carries epoch)
inline constexpr std::uint8_t kTagRejoinAck = 0xF4;  // rejoin answer (carries epoch)

struct BodyCodec {
  std::uint8_t tag = 0;
  std::string type;  // Message::type routing string
  std::function<void(const std::any& body, WireWriter&)> encode;
  std::function<std::any(WireReader&)> decode;
};

class CodecRegistry {
 public:
  // Throws std::logic_error on a duplicate tag or type, or a control-range
  // tag — registration bugs, not wire faults.
  void add(BodyCodec c);

  [[nodiscard]] const BodyCodec* by_type(const std::string& type) const;
  [[nodiscard]] const BodyCodec* by_tag(std::uint8_t tag) const;
  [[nodiscard]] std::vector<const BodyCodec*> all() const;

 private:
  std::map<std::string, BodyCodec> by_type_;
  std::map<std::uint8_t, const BodyCodec*> by_tag_;
};

// The registry covering every message body in the library (Figs. 3-9, AP,
// heartbeats). Built once, immutable afterwards, safe to share across
// threads.
const CodecRegistry& builtin_codecs();

// One frame. Throws CodecError when the type has no registered codec.
// When m.meta_causal_id != 0 the frame carries the trace-context extension.
std::vector<std::uint8_t> encode_frame(const CodecRegistry& reg, const Message& m,
                                       ProcIndex sender_index, Id sender_id);

// Inverse. Validates magic, version, tag, length, and checksum; fills
// meta_sender from the header and meta_causal_* from the trace-context
// extension when present. Throws CodecError on any malformation.
Message decode_frame(const CodecRegistry& reg, const std::uint8_t* data, std::size_t len);

// A control frame (tag >= kCtrlTagFirst) with an empty body.
std::vector<std::uint8_t> encode_control_frame(std::uint8_t tag, ProcIndex sender_index,
                                               Id sender_id);

// A control frame carrying a raw body (the ARQ ack / rejoin payloads). The
// body is NOT run through the codec registry; net/reliable.h owns its layout.
std::vector<std::uint8_t> encode_control_frame(std::uint8_t tag, ProcIndex sender_index,
                                               Id sender_id, const std::vector<std::uint8_t>& body);

// Locates the body bytes of an already-checksum-validated control frame
// (call decode_frame first; it validates the envelope but deliberately does
// not expose control bodies to Process code). Returns nullopt on any
// malformation instead of throwing — the recv path treats that as a decode
// error it has already counted.
struct ControlBody {
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
};
std::optional<ControlBody> peek_control_body(const std::uint8_t* data, std::size_t len);

// Peeks the type tag of an encoded frame without validating the rest.
std::optional<std::uint8_t> peek_tag(const std::uint8_t* data, std::size_t len);

// Encoded v1 frame size of `m` as sent by (sender_index, sender_id);
// nullopt when the type is unregistered. This is what the sim/rt substrates
// use to estimate byte costs comparably with the UDP substrate. Computed by
// a counting encoder — nothing is materialized, nothing allocates.
// Deliberately the UNTRACED frame size (the causal extension is excluded)
// so byte accounting stays identical with tracing on or off.
std::optional<std::size_t> encoded_frame_size(const CodecRegistry& reg, const Message& m,
                                              ProcIndex sender_index, Id sender_id);

// Decomposed pieces of encoded_frame_size, for byte meters that memoize the
// per-sender envelope and the per-type codec resolution (sim/rt substrates):
// frame size = frame_overhead + varint_size(body) + body.
std::size_t frame_overhead(ProcIndex sender_index, Id sender_id);
std::size_t encoded_body_size(const BodyCodec& c, const Message& m);

// ------------------------------------------------------------- batching

// Accumulates frames into one datagram payload.
class BatchWriter {
 public:
  void add(const std::vector<std::uint8_t>& frame);
  [[nodiscard]] std::size_t frames() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  // Size of the datagram that take() would produce right now.
  [[nodiscard]] std::size_t wire_size() const;
  // Finishes the datagram (header + frames) and resets the writer.
  std::vector<std::uint8_t> take();

 private:
  std::vector<std::uint8_t> frames_bytes_;  // already length-prefixed
  std::size_t count_ = 0;
};

// Splits a received datagram back into frames (views into `data`). Throws
// CodecError on a malformed envelope; individual frames are NOT validated
// here (decode_frame does that per frame, so one corrupt frame cannot take
// down its batch-mates before the envelope is walked).
struct FrameView {
  const std::uint8_t* data;
  std::size_t len;
};
std::vector<FrameView> split_batch(const std::uint8_t* data, std::size_t len);

}  // namespace hds::net
