// Builtin body codecs: one registration per message type in the library,
// kept next to the wire format they freeze. Tag numbers are part of the v1
// wire contract (golden fixtures pin them) — append new types with fresh
// tags, never renumber.
#include <set>

#include "common/label.h"
#include "consensus/messages.h"
#include "fd/impl/alive_ranker.h"
#include "fd/impl/ap_sync.h"
#include "fd/impl/homega_heartbeat.h"
#include "fd/impl/hsigma_sync.h"
#include "fd/impl/ohp_polling.h"
#include "net/codec.h"
#include "smr/types.h"

namespace hds::net {

namespace {

template <typename T>
const T& body_as(const std::any& body) {
  const T* p = std::any_cast<T>(&body);
  if (p == nullptr) throw CodecError("body type does not match registered codec");
  return *p;
}

void put_maybe(WireWriter& w, const MaybeValue& v) {
  w.u8(v.has_value() ? 1 : 0);
  if (v.has_value()) w.svarint(*v);
}

MaybeValue get_maybe(WireReader& r) {
  const std::uint8_t has = r.u8();
  if (has > 1) throw CodecError("bad optional marker");
  if (has == 0) return std::nullopt;
  return r.svarint();
}

// Length-prefixed label collection: varint count, then each label's
// canonical repr as a length-prefixed string (Fig. 7 labels are identifier
// multisets rendered through Label::of_multiset; the repr is the identity).
void put_labels(WireWriter& w, const std::set<Label>& labels) {
  w.varint(labels.size());
  for (const Label& l : labels) w.str(l.repr());
}

std::set<Label> get_labels(WireReader& r) {
  const std::uint64_t count = r.varint();
  if (count > r.remaining()) throw CodecError("label count exceeds remaining bytes");
  std::set<Label> out;
  for (std::uint64_t i = 0; i < count; ++i) out.insert(Label::from_repr(r.str()));
  return out;
}

// --- SMR nested frames (smr/types.h) ---

void put_smr_op(WireWriter& w, const smr::SmrOp& op) {
  w.varint(op.client);
  w.svarint(op.seq);
  w.svarint(op.key);
  w.svarint(op.val);
  w.varint(op.pad.size());
  for (const std::uint8_t b : op.pad) w.u8(b);
}

smr::SmrOp get_smr_op(WireReader& r) {
  smr::SmrOp op;
  op.client = r.varint();
  op.seq = r.svarint();
  op.key = r.svarint();
  op.val = r.svarint();
  const std::uint64_t pad = r.varint();
  if (pad > r.remaining()) throw CodecError("op padding exceeds remaining bytes");
  op.pad.reserve(pad);
  for (std::uint64_t i = 0; i < pad; ++i) op.pad.push_back(r.u8());
  return op;
}

void put_smr_ops(WireWriter& w, const std::vector<smr::SmrOp>& ops) {
  w.varint(ops.size());
  for (const smr::SmrOp& op : ops) put_smr_op(w, op);
}

std::vector<smr::SmrOp> get_smr_ops(WireReader& r) {
  const std::uint64_t count = r.varint();
  if (count > r.remaining()) throw CodecError("op count exceeds remaining bytes");
  std::vector<smr::SmrOp> ops;
  ops.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) ops.push_back(get_smr_op(r));
  return ops;
}

void put_smr_batch(WireWriter& w, const smr::SmrBatch& b) {
  w.svarint(b.id);
  put_smr_ops(w, b.ops);
}

smr::SmrBatch get_smr_batch(WireReader& r) {
  smr::SmrBatch b;
  b.id = r.svarint();
  b.ops = get_smr_ops(r);
  return b;
}

void put_smr_commits(WireWriter& w, const std::vector<smr::SmrCommitRec>& recs) {
  w.varint(recs.size());
  for (const smr::SmrCommitRec& c : recs) {
    w.svarint(c.slot);
    w.svarint(c.id);
  }
}

std::vector<smr::SmrCommitRec> get_smr_commits(WireReader& r) {
  const std::uint64_t count = r.varint();
  if (count > r.remaining()) throw CodecError("commit count exceeds remaining bytes");
  std::vector<smr::SmrCommitRec> recs;
  recs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    smr::SmrCommitRec c;
    c.slot = r.svarint();
    c.id = r.svarint();
    recs.push_back(c);
  }
  return recs;
}

template <typename T>
BodyCodec codec(std::uint8_t tag, const char* type, void (*enc)(const T&, WireWriter&),
                T (*dec)(WireReader&)) {
  BodyCodec c;
  c.tag = tag;
  c.type = type;
  c.encode = [enc](const std::any& body, WireWriter& w) { enc(body_as<T>(body), w); };
  c.decode = [dec](WireReader& r) -> std::any { return dec(r); };
  return c;
}

CodecRegistry build() {
  CodecRegistry reg;

  // --- failure-detector bodies ---
  reg.add(codec<AliveMsg>(
      1, AliveRanker::kMsgType, [](const AliveMsg& m, WireWriter& w) { w.varint(m.id); },
      [](WireReader& r) { return AliveMsg{r.varint()}; }));
  reg.add(codec<ApAliveMsg>(
      2, APSyncProcess::kMsgType, [](const ApAliveMsg&, WireWriter&) {},
      [](WireReader&) { return ApAliveMsg{}; }));
  reg.add(codec<HeartbeatMsg>(
      3, HOmegaHeartbeat::kMsgType,
      [](const HeartbeatMsg& m, WireWriter& w) {
        w.varint(m.id);
        w.svarint(m.seq);
      },
      [](WireReader& r) {
        HeartbeatMsg m;
        m.id = r.varint();
        m.seq = r.svarint();
        return m;
      }));
  reg.add(codec<IdentMsg>(
      4, HSigmaSyncProcess::kMsgType, [](const IdentMsg& m, WireWriter& w) { w.varint(m.id); },
      [](WireReader& r) { return IdentMsg{r.varint()}; }));
  reg.add(codec<PollingMsg>(
      5, OHPPolling::kPollType,
      [](const PollingMsg& m, WireWriter& w) {
        w.svarint(m.r);
        w.varint(m.id);
      },
      [](WireReader& r) {
        PollingMsg m;
        m.r = r.svarint();
        m.id = r.varint();
        return m;
      }));
  reg.add(codec<PollReplyMsg>(
      6, OHPPolling::kReplyType,
      [](const PollReplyMsg& m, WireWriter& w) {
        w.svarint(m.lo);
        w.svarint(m.hi);
        w.varint(m.to_id);
        w.varint(m.from_id);
      },
      [](WireReader& r) {
        PollReplyMsg m;
        m.lo = r.svarint();
        m.hi = r.svarint();
        m.to_id = r.varint();
        m.from_id = r.varint();
        return m;
      }));

  // --- consensus bodies (Figs. 8 and 9) ---
  reg.add(codec<CoordMsg>(
      7, kCoordType,
      [](const CoordMsg& m, WireWriter& w) {
        w.varint(m.id);
        w.svarint(m.r);
        w.svarint(m.est);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        CoordMsg m;
        m.id = r.varint();
        m.r = r.svarint();
        m.est = r.svarint();
        m.instance = r.svarint();
        return m;
      }));
  reg.add(codec<Ph0Msg>(
      8, kPh0Type,
      [](const Ph0Msg& m, WireWriter& w) {
        w.svarint(m.r);
        w.svarint(m.est);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        Ph0Msg m;
        m.r = r.svarint();
        m.est = r.svarint();
        m.instance = r.svarint();
        return m;
      }));
  reg.add(codec<Ph1Msg>(
      9, kPh1Type,
      [](const Ph1Msg& m, WireWriter& w) {
        w.svarint(m.r);
        w.svarint(m.est);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        Ph1Msg m;
        m.r = r.svarint();
        m.est = r.svarint();
        m.instance = r.svarint();
        return m;
      }));
  reg.add(codec<Ph2Msg>(
      10, kPh2Type,
      [](const Ph2Msg& m, WireWriter& w) {
        w.svarint(m.r);
        put_maybe(w, m.est2);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        Ph2Msg m;
        m.r = r.svarint();
        m.est2 = get_maybe(r);
        m.instance = r.svarint();
        return m;
      }));
  reg.add(codec<DecideMsg>(
      11, kDecideType,
      [](const DecideMsg& m, WireWriter& w) {
        w.svarint(m.v);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        DecideMsg m;
        m.v = r.svarint();
        m.instance = r.svarint();
        return m;
      }));
  reg.add(codec<Ph1QMsg>(
      12, kPh1QType,
      [](const Ph1QMsg& m, WireWriter& w) {
        w.varint(m.id);
        w.svarint(m.r);
        w.svarint(m.sr);
        put_labels(w, m.labels);
        w.svarint(m.est);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        Ph1QMsg m;
        m.id = r.varint();
        m.r = r.svarint();
        m.sr = r.svarint();
        m.labels = get_labels(r);
        m.est = r.svarint();
        m.instance = r.svarint();
        return m;
      }));
  reg.add(codec<Ph2QMsg>(
      13, kPh2QType,
      [](const Ph2QMsg& m, WireWriter& w) {
        w.varint(m.id);
        w.svarint(m.r);
        w.svarint(m.sr);
        put_labels(w, m.labels);
        put_maybe(w, m.est2);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        Ph2QMsg m;
        m.id = r.varint();
        m.r = r.svarint();
        m.sr = r.svarint();
        m.labels = get_labels(r);
        m.est2 = get_maybe(r);
        m.instance = r.svarint();
        return m;
      }));

  // --- replicated-log bodies (src/smr/) ---
  reg.add(codec<smr::SmrAppendMsg>(
      14, smr::kSmrAppendType,
      [](const smr::SmrAppendMsg& m, WireWriter& w) {
        w.svarint(m.epoch);
        w.svarint(m.slot);
        put_smr_batch(w, m.batch);
        put_smr_commits(w, m.commits);
      },
      [](WireReader& r) {
        smr::SmrAppendMsg m;
        m.epoch = r.svarint();
        m.slot = r.svarint();
        m.batch = get_smr_batch(r);
        m.commits = get_smr_commits(r);
        return m;
      }));
  reg.add(codec<smr::SmrAckMsg>(
      15, smr::kSmrAckType,
      [](const smr::SmrAckMsg& m, WireWriter& w) {
        w.svarint(m.epoch);
        w.varint(m.replica);
        w.svarint(m.logged_through);
        w.svarint(m.applied_through);
        w.svarint(m.commit_frontier);
        put_smr_commits(w, m.commits);
        put_smr_ops(w, m.pending);
      },
      [](WireReader& r) {
        smr::SmrAckMsg m;
        m.epoch = r.svarint();
        m.replica = r.varint();
        m.logged_through = r.svarint();
        m.applied_through = r.svarint();
        m.commit_frontier = r.svarint();
        m.commits = get_smr_commits(r);
        m.pending = get_smr_ops(r);
        return m;
      }));
  reg.add(codec<smr::SmrNewEpochMsg>(
      16, smr::kSmrNewEpochType,
      [](const smr::SmrNewEpochMsg& m, WireWriter& w) {
        w.svarint(m.epoch);
        w.svarint(m.from_slot);
        w.varint(m.replica);
      },
      [](WireReader& r) {
        smr::SmrNewEpochMsg m;
        m.epoch = r.svarint();
        m.from_slot = r.svarint();
        m.replica = r.varint();
        return m;
      }));
  reg.add(codec<smr::SmrPromiseMsg>(
      17, smr::kSmrPromiseType,
      [](const smr::SmrPromiseMsg& m, WireWriter& w) {
        w.svarint(m.epoch);
        w.varint(m.replica);
        w.svarint(m.frontier);
        w.varint(m.entries.size());
        for (const smr::SmrLogRec& e : m.entries) {
          w.svarint(e.slot);
          w.svarint(e.epoch);
          w.u8(e.committed ? 1 : 0);
          put_smr_batch(w, e.batch);
        }
      },
      [](WireReader& r) {
        smr::SmrPromiseMsg m;
        m.epoch = r.svarint();
        m.replica = r.varint();
        m.frontier = r.svarint();
        const std::uint64_t count = r.varint();
        if (count > r.remaining()) throw CodecError("entry count exceeds remaining bytes");
        m.entries.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          smr::SmrLogRec e;
          e.slot = r.svarint();
          e.epoch = r.svarint();
          const std::uint8_t c = r.u8();
          if (c > 1) throw CodecError("bad committed marker");
          e.committed = c == 1;
          e.batch = get_smr_batch(r);
          m.entries.push_back(std::move(e));
        }
        return m;
      }));
  reg.add(codec<smr::SmrProposeMsg>(
      18, smr::kSmrProposeType,
      [](const smr::SmrProposeMsg& m, WireWriter& w) {
        w.svarint(m.epoch);
        w.svarint(m.slot);
        put_smr_batch(w, m.batch);
      },
      [](WireReader& r) {
        smr::SmrProposeMsg m;
        m.epoch = r.svarint();
        m.slot = r.svarint();
        m.batch = get_smr_batch(r);
        return m;
      }));

  return reg;
}

}  // namespace

const CodecRegistry& builtin_codecs() {
  static const CodecRegistry reg = build();
  return reg;
}

}  // namespace hds::net
