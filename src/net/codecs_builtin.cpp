// Builtin body codecs: one registration per message type in the library,
// kept next to the wire format they freeze. Tag numbers are part of the v1
// wire contract (golden fixtures pin them) — append new types with fresh
// tags, never renumber.
#include <set>

#include "common/label.h"
#include "consensus/messages.h"
#include "fd/impl/alive_ranker.h"
#include "fd/impl/ap_sync.h"
#include "fd/impl/homega_heartbeat.h"
#include "fd/impl/hsigma_sync.h"
#include "fd/impl/ohp_polling.h"
#include "net/codec.h"

namespace hds::net {

namespace {

template <typename T>
const T& body_as(const std::any& body) {
  const T* p = std::any_cast<T>(&body);
  if (p == nullptr) throw CodecError("body type does not match registered codec");
  return *p;
}

void put_maybe(WireWriter& w, const MaybeValue& v) {
  w.u8(v.has_value() ? 1 : 0);
  if (v.has_value()) w.svarint(*v);
}

MaybeValue get_maybe(WireReader& r) {
  const std::uint8_t has = r.u8();
  if (has > 1) throw CodecError("bad optional marker");
  if (has == 0) return std::nullopt;
  return r.svarint();
}

// Length-prefixed label collection: varint count, then each label's
// canonical repr as a length-prefixed string (Fig. 7 labels are identifier
// multisets rendered through Label::of_multiset; the repr is the identity).
void put_labels(WireWriter& w, const std::set<Label>& labels) {
  w.varint(labels.size());
  for (const Label& l : labels) w.str(l.repr());
}

std::set<Label> get_labels(WireReader& r) {
  const std::uint64_t count = r.varint();
  if (count > r.remaining()) throw CodecError("label count exceeds remaining bytes");
  std::set<Label> out;
  for (std::uint64_t i = 0; i < count; ++i) out.insert(Label::from_repr(r.str()));
  return out;
}

template <typename T>
BodyCodec codec(std::uint8_t tag, const char* type, void (*enc)(const T&, WireWriter&),
                T (*dec)(WireReader&)) {
  BodyCodec c;
  c.tag = tag;
  c.type = type;
  c.encode = [enc](const std::any& body, WireWriter& w) { enc(body_as<T>(body), w); };
  c.decode = [dec](WireReader& r) -> std::any { return dec(r); };
  return c;
}

CodecRegistry build() {
  CodecRegistry reg;

  // --- failure-detector bodies ---
  reg.add(codec<AliveMsg>(
      1, AliveRanker::kMsgType, [](const AliveMsg& m, WireWriter& w) { w.varint(m.id); },
      [](WireReader& r) { return AliveMsg{r.varint()}; }));
  reg.add(codec<ApAliveMsg>(
      2, APSyncProcess::kMsgType, [](const ApAliveMsg&, WireWriter&) {},
      [](WireReader&) { return ApAliveMsg{}; }));
  reg.add(codec<HeartbeatMsg>(
      3, HOmegaHeartbeat::kMsgType,
      [](const HeartbeatMsg& m, WireWriter& w) {
        w.varint(m.id);
        w.svarint(m.seq);
      },
      [](WireReader& r) {
        HeartbeatMsg m;
        m.id = r.varint();
        m.seq = r.svarint();
        return m;
      }));
  reg.add(codec<IdentMsg>(
      4, HSigmaSyncProcess::kMsgType, [](const IdentMsg& m, WireWriter& w) { w.varint(m.id); },
      [](WireReader& r) { return IdentMsg{r.varint()}; }));
  reg.add(codec<PollingMsg>(
      5, OHPPolling::kPollType,
      [](const PollingMsg& m, WireWriter& w) {
        w.svarint(m.r);
        w.varint(m.id);
      },
      [](WireReader& r) {
        PollingMsg m;
        m.r = r.svarint();
        m.id = r.varint();
        return m;
      }));
  reg.add(codec<PollReplyMsg>(
      6, OHPPolling::kReplyType,
      [](const PollReplyMsg& m, WireWriter& w) {
        w.svarint(m.lo);
        w.svarint(m.hi);
        w.varint(m.to_id);
        w.varint(m.from_id);
      },
      [](WireReader& r) {
        PollReplyMsg m;
        m.lo = r.svarint();
        m.hi = r.svarint();
        m.to_id = r.varint();
        m.from_id = r.varint();
        return m;
      }));

  // --- consensus bodies (Figs. 8 and 9) ---
  reg.add(codec<CoordMsg>(
      7, kCoordType,
      [](const CoordMsg& m, WireWriter& w) {
        w.varint(m.id);
        w.svarint(m.r);
        w.svarint(m.est);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        CoordMsg m;
        m.id = r.varint();
        m.r = r.svarint();
        m.est = r.svarint();
        m.instance = r.svarint();
        return m;
      }));
  reg.add(codec<Ph0Msg>(
      8, kPh0Type,
      [](const Ph0Msg& m, WireWriter& w) {
        w.svarint(m.r);
        w.svarint(m.est);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        Ph0Msg m;
        m.r = r.svarint();
        m.est = r.svarint();
        m.instance = r.svarint();
        return m;
      }));
  reg.add(codec<Ph1Msg>(
      9, kPh1Type,
      [](const Ph1Msg& m, WireWriter& w) {
        w.svarint(m.r);
        w.svarint(m.est);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        Ph1Msg m;
        m.r = r.svarint();
        m.est = r.svarint();
        m.instance = r.svarint();
        return m;
      }));
  reg.add(codec<Ph2Msg>(
      10, kPh2Type,
      [](const Ph2Msg& m, WireWriter& w) {
        w.svarint(m.r);
        put_maybe(w, m.est2);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        Ph2Msg m;
        m.r = r.svarint();
        m.est2 = get_maybe(r);
        m.instance = r.svarint();
        return m;
      }));
  reg.add(codec<DecideMsg>(
      11, kDecideType,
      [](const DecideMsg& m, WireWriter& w) {
        w.svarint(m.v);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        DecideMsg m;
        m.v = r.svarint();
        m.instance = r.svarint();
        return m;
      }));
  reg.add(codec<Ph1QMsg>(
      12, kPh1QType,
      [](const Ph1QMsg& m, WireWriter& w) {
        w.varint(m.id);
        w.svarint(m.r);
        w.svarint(m.sr);
        put_labels(w, m.labels);
        w.svarint(m.est);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        Ph1QMsg m;
        m.id = r.varint();
        m.r = r.svarint();
        m.sr = r.svarint();
        m.labels = get_labels(r);
        m.est = r.svarint();
        m.instance = r.svarint();
        return m;
      }));
  reg.add(codec<Ph2QMsg>(
      13, kPh2QType,
      [](const Ph2QMsg& m, WireWriter& w) {
        w.varint(m.id);
        w.svarint(m.r);
        w.svarint(m.sr);
        put_labels(w, m.labels);
        put_maybe(w, m.est2);
        w.svarint(m.instance);
      },
      [](WireReader& r) {
        Ph2QMsg m;
        m.id = r.varint();
        m.r = r.svarint();
        m.sr = r.svarint();
        m.labels = get_labels(r);
        m.est2 = get_maybe(r);
        m.instance = r.svarint();
        return m;
      }));

  return reg;
}

}  // namespace

const CodecRegistry& builtin_codecs() {
  static const CodecRegistry reg = build();
  return reg;
}

}  // namespace hds::net
