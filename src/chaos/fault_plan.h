// FaultPlan — the composable fault-injection DSL of the chaos subsystem.
//
// A plan is a conjunction of clauses. Link clauses shape message copies in
// flight (partitions with heal times, asymmetric delay inflation, targeted
// loss, bounded duplication, reordering jitter); crash clauses remove
// processes, either at a fixed instant or *triggered by the run itself*
// through FdOutputListener events ("crash each newly elected HΩ leader, up
// to k times", "crash a member of the first HΣ quorum output"). Plans
// serialize to/from JSON (obs::Json) so a failing plan can be shrunk and
// committed as a replayable repro.
//
// The clause fields are deliberately overloaded across kinds (one struct,
// one JSON schema, trivial delta-debugging); the per-kind meaning of each
// field is documented at the field.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "obs/json.h"

namespace hds::chaos {

enum class ClauseKind : std::uint8_t {
  // --- link clauses (consulted per copy by the interposer) ---
  kPartition,  // drop every matching copy while active
  kLoss,       // drop matching copies with probability `prob`
  kDelay,      // inflate matching copies' delivery by `delay`
  kReorder,    // add uniform jitter in [0, delay] to matching copies
  kDuplicate,  // with probability `prob`, inject `count` extra copies
               // trailing the original by up to `delay`
  // --- crash clauses (effectors on the process set) ---
  kCrashAt,              // crash process `proc` at time `at`
  kCrashOnLeaderChange,  // crash a carrier of each newly elected HΩ leader
                         // (matching `target_id` when set), up to `count`
  kCrashOnQuorum,        // crash a member of each newly output HΣ quorum
                         // label, up to `count`
};

[[nodiscard]] const char* kind_name(ClauseKind k);
// Throws std::invalid_argument on an unknown name.
[[nodiscard]] ClauseKind kind_from_name(const std::string& name);
[[nodiscard]] bool is_link_kind(ClauseKind k);
[[nodiscard]] bool is_trigger_kind(ClauseKind k);  // event-triggered crash

// Selects directed links (from, to). Empty src/dst lists are wildcards;
// dst_id != kBottomId additionally requires the receiver to carry that
// identifier (targeting a label class rather than an index set).
struct LinkSelector {
  std::vector<ProcIndex> src;
  std::vector<ProcIndex> dst;
  Id dst_id = kBottomId;

  [[nodiscard]] bool matches(ProcIndex from, ProcIndex to, const std::vector<Id>& ids) const;
  [[nodiscard]] obs::Json to_json() const;
  static LinkSelector from_json(const obs::Json& j);
  friend bool operator==(const LinkSelector&, const LinkSelector&) = default;
};

struct FaultClause {
  ClauseKind kind = ClauseKind::kPartition;
  // Active window [from, until); until = -1 means "never heals".
  SimTime from = 0;
  SimTime until = -1;
  LinkSelector links;     // link kinds only
  double prob = 1.0;      // kLoss / kDuplicate firing probability
  SimTime delay = 0;      // kDelay: added latency; kReorder: jitter bound;
                          // kDuplicate: duplicate trailing spread
  std::size_t count = 1;  // kDuplicate: extra copies per firing;
                          // trigger kinds: total crash budget
  ProcIndex proc = 0;     // kCrashAt: victim index
  SimTime at = 0;         // kCrashAt: crash instant
  Id target_id = kBottomId;  // kCrashOnLeaderChange: only leaders with this
                             // identifier (kBottomId = any leader)

  [[nodiscard]] bool active_at(SimTime t) const {
    return t >= from && (until < 0 || t < until);
  }
  [[nodiscard]] obs::Json to_json() const;
  static FaultClause from_json(const obs::Json& j);
  friend bool operator==(const FaultClause&, const FaultClause&) = default;
};

struct FaultPlan {
  std::vector<FaultClause> clauses;

  [[nodiscard]] bool empty() const { return clauses.empty(); }
  [[nodiscard]] bool has_triggers() const;
  [[nodiscard]] bool has_crashes() const;  // any crash clause, incl. triggers
  // Total number of crashes the plan can inject (kCrashAt count as 1 each,
  // triggers contribute their budgets).
  [[nodiscard]] std::size_t crash_budget() const;
  // Latest instant at which any link clause is still active: 0 when there
  // are no link clauses, -1 when one never heals, else max until.
  [[nodiscard]] SimTime link_faults_end() const;

  [[nodiscard]] obs::Json to_json() const;
  static FaultPlan from_json(const obs::Json& j);
  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace hds::chaos
