#include "chaos/runner.h"

#include <algorithm>
#include <optional>
#include <set>
#include <stdexcept>

#include "chaos/injector.h"
#include "consensus/harness.h"
#include "net/reliable.h"
#include "obs/monitor.h"
#include "smr/harness.h"

namespace hds::chaos {

const char* stack_name(StackKind s) {
  switch (s) {
    case StackKind::kFig6: return "fig6";
    case StackKind::kFig8: return "fig8";
    case StackKind::kFig9: return "fig9";
    case StackKind::kSmr: return "smr";
  }
  return "?";
}

StackKind stack_from_name(const std::string& name) {
  for (StackKind s : {StackKind::kFig6, StackKind::kFig8, StackKind::kFig9, StackKind::kSmr}) {
    if (name == stack_name(s)) return s;
  }
  throw std::invalid_argument("ChaosCase: unknown stack '" + name + "'");
}

obs::Json ChaosCase::to_json() const {
  obs::Json j = obs::Json::object();
  j["stack"] = stack_name(stack);
  j["n"] = n;
  j["distinct"] = distinct;
  j["crash_k"] = crash_k;
  j["crash_at"] = crash_at;
  j["gst"] = gst;
  j["delta"] = delta;
  j["run_for"] = run_for;
  j["max_time"] = max_time;
  j["seed"] = seed;
  if (reliable) j["reliable"] = true;
  j["plan"] = plan.to_json();
  return j;
}

ChaosCase ChaosCase::from_json(const obs::Json& j) {
  ChaosCase c;
  const obs::Json* stack = j.find("stack");
  if (stack == nullptr) throw std::invalid_argument("ChaosCase: missing stack");
  c.stack = stack_from_name(stack->str());
  c.n = static_cast<std::size_t>(j.number_or("n", 6));
  c.distinct = static_cast<std::size_t>(j.number_or("distinct", 3));
  c.crash_k = static_cast<std::size_t>(j.number_or("crash_k", 0));
  c.crash_at = static_cast<SimTime>(j.number_or("crash_at", 0));
  c.gst = static_cast<SimTime>(j.number_or("gst", 200));
  c.delta = static_cast<SimTime>(j.number_or("delta", 3));
  c.run_for = static_cast<SimTime>(j.number_or("run_for", 5000));
  c.max_time = static_cast<SimTime>(j.number_or("max_time", 60'000));
  c.seed = static_cast<std::uint64_t>(j.number_or("seed", 1));
  if (const obs::Json* rel = j.find("reliable")) c.reliable = rel->boolean();
  if (const obs::Json* plan = j.find("plan")) c.plan = FaultPlan::from_json(*plan);
  return c;
}

std::vector<std::string> ChaosOutcome::violation_tags() const {
  std::set<std::string> tags;
  for (const std::string& v : violations) tags.insert(v.substr(0, v.find(':')));
  return {tags.begin(), tags.end()};
}

// ------------------------------------------------------- admissibility

namespace {

// Rationale per stack (the envelope inside which the paper's theorems
// apply, so every checker is expected to pass):
//
//  fig6 (HPS): link faults must heal by GST (the model only allows
//  loss/arbitrary delay *before* GST); all crashes — planned, scheduled and
//  trigger-budgeted — must happen in the first half of the run so the
//  eventual checks have a convergence tail; at least 2 processes survive.
//
//  fig8 (HPS[t < n/2]): total crashes within the algorithm's t; link
//  clauses may only *delay* or *reorder*, and must heal by GST. With
//  `reliable` off, no duplication (the homonymous consensus layers count
//  messages — processes cannot tell senders apart, so duplication is
//  outside the model) and no loss/partition either: Fig. 8 is an HAS
//  algorithm (reliable links) — its quorum waits never retransmit, so
//  adversarial pre-GST loss can permanently wedge a round once more than t
//  processes miss a phase quorum (tests/repros/fig8_loss_wedge.json, a
//  fuzzer finding long kept as a known-wedge artifact). With `reliable` on
//  the case runs behind the ARQ emulator, which retransmits through loss
//  and suppresses duplicates — restoring the HAS assumption — so kLoss and
//  kDuplicate clauses (healing by GST as ever) join the envelope and the
//  wedge repro flips to "decides". Partitions stay out: a total cut is not
//  loss the ARQ layer is meant to beat, it is a different model.
//
//  fig9 (synchronous): no link clauses at all (every copy must arrive
//  within the known bound delta); crashes are otherwise free — the stack
//  tolerates any number of crashes short of leaving fewer than 2 alive.
bool admissible_fig6(const ChaosCase& c) {
  if (c.run_for < 2000 || c.gst < 1 || c.gst > c.run_for / 4 || c.delta < 1) return false;
  const SimTime mid = c.run_for / 2;
  if (c.crash_k + c.plan.crash_budget() > c.n - 2) return false;
  if (c.crash_k > 0 && (c.crash_at < 1 || c.crash_at > mid)) return false;
  const SimTime lfe = c.plan.link_faults_end();
  if (lfe < 0 || lfe > c.gst) return false;
  for (const FaultClause& cl : c.plan.clauses) {
    if (cl.kind == ClauseKind::kCrashAt && (cl.at < 1 || cl.at > mid || cl.proc >= c.n)) {
      return false;
    }
    if (is_trigger_kind(cl.kind) && (cl.until < 1 || cl.until > mid)) return false;
    if (cl.kind == ClauseKind::kCrashOnQuorum) return false;  // no HΣ in this stack
  }
  return true;
}

bool admissible_fig8(const ChaosCase& c) {
  if (c.max_time < 20'000 || c.gst < 1 || c.gst > 2000 || c.delta < 1) return false;
  const std::size_t t_known = (c.n - 1) / 2;
  if (c.crash_k + c.plan.crash_budget() > t_known) return false;
  if (c.crash_k > 0 && (c.crash_at < 1 || c.crash_at > c.max_time / 4)) return false;
  const SimTime lfe = c.plan.link_faults_end();
  if (lfe < 0 || lfe > c.gst) return false;
  for (const FaultClause& cl : c.plan.clauses) {
    if (cl.kind == ClauseKind::kPartition) return false;
    if (!c.reliable && (cl.kind == ClauseKind::kDuplicate || cl.kind == ClauseKind::kLoss)) {
      return false;
    }
    if (cl.kind == ClauseKind::kCrashAt && (cl.at < 1 || cl.at > c.max_time / 4 || cl.proc >= c.n)) {
      return false;
    }
    if (cl.kind == ClauseKind::kCrashOnQuorum) return false;  // no HΣ in this stack
  }
  return true;
}

// smr (HPS[t < n/2]): the replicated log rides the fig8 stack — recovery
// settles in-doubt slots through Fig. 8 instances — so it inherits the fig8
// link envelope verbatim (delay/reorder healing by GST; loss/duplication
// only behind the ARQ emulator; partitions never). Crashes must land inside
// the load window (first half of run_for) so the convergence linger has a
// clean tail, and max_time must leave room for that linger.
bool admissible_smr(const ChaosCase& c) {
  if (c.run_for < 4000 || c.gst < 1 || c.gst > c.run_for / 4 || c.delta < 1) return false;
  if (c.max_time < 2 * c.run_for) return false;
  const std::size_t t_known = (c.n - 1) / 2;
  if (c.crash_k + c.plan.crash_budget() > t_known) return false;
  const SimTime mid = c.run_for / 2;
  if (c.crash_k > 0 && (c.crash_at < 1 || c.crash_at > mid)) return false;
  const SimTime lfe = c.plan.link_faults_end();
  if (lfe < 0 || lfe > c.gst) return false;
  for (const FaultClause& cl : c.plan.clauses) {
    if (cl.kind == ClauseKind::kPartition) return false;
    if (!c.reliable && (cl.kind == ClauseKind::kDuplicate || cl.kind == ClauseKind::kLoss)) {
      return false;
    }
    if (cl.kind == ClauseKind::kCrashAt && (cl.at < 1 || cl.at > mid || cl.proc >= c.n)) {
      return false;
    }
    if (is_trigger_kind(cl.kind) && (cl.until < 1 || cl.until > mid)) return false;
    if (cl.kind == ClauseKind::kCrashOnQuorum) return false;  // no HΣ in this stack
  }
  return true;
}

bool admissible_fig9(const ChaosCase& c) {
  if (c.max_time < 20'000 || c.delta < 1 || c.delta > 10) return false;
  if (c.crash_k + c.plan.crash_budget() > c.n - 2) return false;
  if (c.crash_k > 0 && (c.crash_at < 1 || c.crash_at > c.max_time / 4)) return false;
  for (const FaultClause& cl : c.plan.clauses) {
    if (is_link_kind(cl.kind)) return false;  // synchronous model: none allowed
    if (cl.kind == ClauseKind::kCrashAt && (cl.at < 1 || cl.at > c.max_time / 4 || cl.proc >= c.n)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool admissible(const ChaosCase& c) {
  if (c.n < 4 || c.n > 16 || c.distinct < 1 || c.distinct > c.n) return false;
  for (const FaultClause& cl : c.plan.clauses) {
    if (cl.prob < 0.0 || cl.prob > 1.0 || cl.delay < 0 || cl.from < 0) return false;
  }
  switch (c.stack) {
    case StackKind::kFig6: return admissible_fig6(c);
    case StackKind::kFig8: return admissible_fig8(c);
    case StackKind::kFig9: return admissible_fig9(c);
    case StackKind::kSmr: return admissible_smr(c);
  }
  return false;
}

// ------------------------------------------------------------ execution

namespace {

void add_monitor_violations(const obs::OnlineMonitor& mon, std::vector<std::string>& out) {
  std::set<std::string> seen;
  for (const obs::MonitorEvent& e : mon.events()) {
    if (e.severity != obs::MonitorEvent::Severity::kViolation) continue;
    if (!seen.insert(e.rule).second) continue;  // first event per rule suffices
    out.push_back("monitor-" + e.rule + ": proc=" + std::to_string(e.proc) +
                  " at=" + std::to_string(e.at) + " " + e.detail);
  }
}

// Base HPS environment for chaos runs. `lossy` adds ambient pre-GST message
// loss; fig6 can take it (the polling FD retransmits every period), but
// fig8 runs delay-only — its consensus layer inherits Fig. 8's reliable-link
// (HAS) assumption, and even ambient loss can wedge a quorum wait at small n
// (the fuzzer found n=4 empty-plan cases wedged by 5% loss alone).
PartialSyncTiming::Params hps_net(const ChaosCase& c, bool lossy) {
  PartialSyncTiming::Params net;
  net.gst = c.gst;
  net.delta = c.delta;
  net.pre_gst_loss = lossy ? 0.05 : 0.0;
  net.pre_gst_max_delay = 3 * c.delta;
  return net;
}

}  // namespace

ChaosOutcome run_chaos_case(const ChaosCase& c, std::size_t trace_capacity,
                            std::size_t shards) {
  const std::vector<Id> ids = ids_homonymous(c.n, c.distinct, c.seed);
  const auto crashes =
      c.crash_k > 0 ? crashes_last_k(c.n, c.crash_k, c.crash_at) : crashes_none(c.n);
  FaultInjector inj(c.plan, ids, c.seed ^ 0x9e3779b97f4a7c15ULL);
  ChaosOutcome out;

  switch (c.stack) {
    case StackKind::kFig6: {
      // The monitor judges against construction-time ground truth, so it is
      // only attached when the plan injects no crashes of its own (planned
      // crash_k crashes are known in advance; injected ones are not).
      std::optional<obs::OnlineMonitor> mon;
      if (!c.plan.has_crashes()) {
        obs::MonitorConfig mc;
        mc.gt = ground_truth_of(ids, crashes);
        mc.watch_from = c.run_for - 400;
        mon.emplace(std::move(mc));
      }
      Fig6Params p;
      p.ids = ids;
      p.crashes = crashes;
      p.net = hps_net(c, /*lossy=*/true);
      p.seed = c.seed;
      p.run_for = c.run_for;
      p.stable_window = 400;
      p.monitor = mon ? &*mon : nullptr;
      p.chaos = &inj;
      p.shards = shards;
      p.trace_capacity = trace_capacity;
      Fig6Result res = run_fig6(p);
      if (!res.ohp_check) out.violations.push_back("ohp: " + res.ohp_check.detail);
      if (!res.homega_check) out.violations.push_back("homega: " + res.homega_check.detail);
      if (mon) add_monitor_violations(*mon, out.violations);
      out.trace_events = std::move(res.trace_events);
      out.trace_dropped = res.trace_dropped;
      break;
    }
    case StackKind::kFig8: {
      Fig8FullStackParams p;
      p.ids = ids;
      p.t_known = (c.n - 1) / 2;
      p.crashes = crashes;
      p.net = hps_net(c, /*lossy=*/false);
      p.seed = c.seed;
      p.max_time = c.max_time;
      // Reliable mode: the ARQ emulator sits between the substrate and the
      // injector, re-judging dropped copies at backed-off future instants
      // (retransmission) and suppressing injected duplicates — the sim
      // mirror of net/reliable.h. It draws no randomness of its own, so
      // replay determinism is untouched.
      std::optional<net::ReliableLinkEmulator> rel;
      p.chaos = &inj;  // crash effectors + trigger listeners always live here
      if (c.reliable) {
        rel.emplace(inj);
        p.link_interposer = &*rel;  // emulator owns the link seam, wraps inj
      }
      p.shards = shards;
      p.trace_capacity = trace_capacity;
      ConsensusRunResult res = run_fig8_full_stack(p);
      if (!res.check) out.violations.push_back("consensus: " + res.check.detail);
      if (!res.all_correct_decided) {
        out.violations.push_back("liveness: not all correct processes decided by t=" +
                                 std::to_string(res.end_time));
      }
      out.trace_events = std::move(res.trace_events);
      out.trace_dropped = res.trace_dropped;
      break;
    }
    case StackKind::kFig9: {
      // watch_from is pushed past any horizon: under an arbitrary crash
      // schedule only the ungated safety rule (quorum-disjoint) is
      // meaningful, and it is exactly the one that catches HΣ violations
      // online.
      obs::MonitorConfig mc;
      mc.gt = ground_truth_of(ids, crashes);
      mc.watch_from = kSimTimeMax;
      obs::OnlineMonitor mon(std::move(mc));
      Fig9FullStackParams p;
      p.ids = ids;
      p.crashes = crashes;
      p.delta = c.delta;
      p.seed = c.seed;
      p.max_time = c.max_time;
      p.monitor = &mon;
      p.chaos = &inj;
      p.check_hsigma_safety = true;
      p.shards = shards;
      p.trace_capacity = trace_capacity;
      ConsensusRunResult res = run_fig9_full_stack(p);
      if (!res.check) out.violations.push_back("consensus: " + res.check.detail);
      if (!res.all_correct_decided) {
        out.violations.push_back("liveness: not all correct processes decided by t=" +
                                 std::to_string(res.end_time));
      }
      if (!res.hsigma_safety_check) {
        out.violations.push_back("hsigma-safety: " + res.hsigma_safety_check.detail);
      }
      add_monitor_violations(mon, out.violations);
      out.trace_events = std::move(res.trace_events);
      out.trace_dropped = res.trace_dropped;
      break;
    }
    case StackKind::kSmr: {
      smr::SmrSimParams p;
      p.n = c.n;
      p.t = (c.n - 1) / 2;
      p.ids = ids;
      p.crashes = crashes;
      p.full_stack = true;
      p.net = hps_net(c, /*lossy=*/false);
      p.seed = c.seed;
      p.run_for = c.run_for;
      p.max_time = c.max_time;
      p.workload.clients = 4;
      p.shards = shards;
      p.trace_capacity = trace_capacity;
      std::optional<net::ReliableLinkEmulator> rel;
      p.chaos = &inj;
      if (c.reliable) {
        rel.emplace(inj);
        p.link_interposer = &*rel;
      }
      smr::SmrSimResult res = run_smr_sim(p);
      if (!res.prefix_consistent) {
        out.violations.push_back(
            "smr-prefix: applied hash chains diverge on a common prefix — two replicas "
            "applied different batches at the same slot");
      }
      if (!res.converged) {
        out.violations.push_back("smr-liveness: correct replicas did not converge by t=" +
                                 std::to_string(res.end_time));
      }
      break;
    }
  }

  const InjectorStats st = inj.stats();
  out.injected_crashes = st.crashes_injected;
  out.copies_dropped = st.copies_dropped;
  out.ok = out.violations.empty();
  return out;
}

// ------------------------------------------------------------ generators

namespace {

LinkSelector random_selector(Rng& rng, std::size_t n) {
  LinkSelector sel;
  if (rng.chance(0.5)) sel.src.push_back(rng.index(n));
  if (rng.chance(0.5)) sel.dst.push_back(rng.index(n));
  return sel;
}

FaultClause random_link_clause(Rng& rng, const ChaosCase& c, std::vector<ClauseKind> pool) {
  FaultClause cl;
  cl.kind = pool[rng.index(pool.size())];
  cl.from = rng.uniform(0, c.gst / 2);
  cl.until = cl.from + 1 + rng.uniform(0, c.gst - cl.from - 1);
  cl.links = random_selector(rng, c.n);
  switch (cl.kind) {
    case ClauseKind::kLoss: cl.prob = 0.3 + 0.7 * rng.uniform01(); break;
    case ClauseKind::kDelay: cl.delay = 1 + rng.uniform(0, 3 * c.delta); break;
    case ClauseKind::kReorder: cl.delay = 1 + rng.uniform(0, 2 * c.delta); break;
    case ClauseKind::kDuplicate:
      cl.prob = 0.3 + 0.7 * rng.uniform01();
      cl.count = 1 + rng.index(2);
      cl.delay = 1 + rng.uniform(0, c.delta);
      break;
    default: break;
  }
  return cl;
}

}  // namespace

ChaosCase random_admissible_case(Rng& rng, StackKind stack) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    ChaosCase c;
    c.stack = stack;
    c.n = 4 + rng.index(4);  // 4..7
    c.distinct = 2 + rng.index(c.n - 1);
    c.seed = 1 + static_cast<std::uint64_t>(rng.uniform(0, 1'000'000));
    c.delta = 2 + rng.uniform(0, 3);
    const bool load_window = stack == StackKind::kFig6 || stack == StackKind::kSmr;
    const SimTime crash_horizon = load_window ? c.run_for / 2 : c.max_time / 4;
    std::size_t crash_budget;  // crashes left to hand out
    std::vector<ClauseKind> link_pool;
    if (stack == StackKind::kFig9) {
      crash_budget = c.n - 2;
    } else {
      c.gst = 100 + rng.uniform(0, 200);
      crash_budget = stack == StackKind::kFig6 ? c.n - 2 : (c.n - 1) / 2;
      link_pool = {ClauseKind::kDelay, ClauseKind::kReorder};
      if (stack == StackKind::kFig6) {
        link_pool.push_back(ClauseKind::kPartition);
        link_pool.push_back(ClauseKind::kLoss);
        link_pool.push_back(ClauseKind::kDuplicate);
      } else if (rng.chance(0.5)) {
        // Half the fig8/smr sweep runs behind the ARQ emulator, where loss
        // and duplication join the envelope (the admissibility rules admit
        // them only when c.reliable is set).
        c.reliable = true;
        link_pool.push_back(ClauseKind::kLoss);
        link_pool.push_back(ClauseKind::kDuplicate);
      }
    }
    if (rng.chance(0.4) && crash_budget > 0) {
      c.crash_k = 1 + rng.index(std::min<std::size_t>(crash_budget, 2));
      c.crash_at = 1 + rng.uniform(0, crash_horizon - 1);
      crash_budget -= c.crash_k;
    }
    const std::size_t n_clauses = rng.index(4);  // 0..3
    for (std::size_t k = 0; k < n_clauses; ++k) {
      const bool want_crash = crash_budget > 0 && rng.chance(0.35);
      if (want_crash) {
        FaultClause cl;
        if (stack == StackKind::kFig9 && rng.chance(0.3)) {
          cl.kind = ClauseKind::kCrashOnQuorum;
        } else if (rng.chance(0.5)) {
          cl.kind = ClauseKind::kCrashOnLeaderChange;
        } else {
          cl.kind = ClauseKind::kCrashAt;
        }
        if (cl.kind == ClauseKind::kCrashAt) {
          cl.proc = rng.index(c.n);
          cl.at = 1 + rng.uniform(0, crash_horizon - 1);
          crash_budget -= 1;
        } else {
          cl.count = 1;
          cl.until = load_window ? 1 + rng.uniform(0, c.run_for / 2 - 1) : c.max_time / 2;
          crash_budget -= 1;
        }
        c.plan.clauses.push_back(cl);
      } else if (!link_pool.empty()) {
        c.plan.clauses.push_back(random_link_clause(rng, c, link_pool));
      }
    }
    if (admissible(c)) return c;
  }
  throw std::logic_error("random_admissible_case: generator failed to satisfy the envelope");
}

ChaosCase violation_demo_case() {
  ChaosCase c;
  c.stack = StackKind::kFig9;
  c.n = 5;
  c.distinct = 5;  // unique identifiers 1..5
  c.delta = 3;
  c.max_time = 40'000;
  c.seed = 7;
  // The violation core: a never-healing two-way partition {0,1} | {2,3,4}
  // in a stack whose model forbids link faults. Each camp's Fig. 7 adapter
  // only ever hears its own side, so the two camps mint disjoint quora —
  // an HΣ safety violation the spec checker and the monitor both catch.
  FaultClause a_to_b;
  a_to_b.kind = ClauseKind::kPartition;
  a_to_b.links.src = {0, 1};
  a_to_b.links.dst = {2, 3, 4};
  FaultClause b_to_a;
  b_to_a.kind = ClauseKind::kPartition;
  b_to_a.links.src = {2, 3, 4};
  b_to_a.links.dst = {0, 1};
  c.plan.clauses.push_back(a_to_b);
  c.plan.clauses.push_back(b_to_a);
  // Decoys for the shrinker to strip. They must be clauses this stack
  // *tolerates* — and in the synchronous model that means crash clauses
  // (fig9 withstands any number of crashes), not link clauses (any link
  // shaping violates the known bound and would be a violation core of its
  // own).
  FaultClause decoy_crash;
  decoy_crash.kind = ClauseKind::kCrashAt;
  decoy_crash.proc = 4;
  decoy_crash.at = 5000;
  FaultClause decoy_leader;
  decoy_leader.kind = ClauseKind::kCrashOnLeaderChange;
  decoy_leader.count = 1;
  decoy_leader.until = 10'000;
  FaultClause decoy_quorum;
  decoy_quorum.kind = ClauseKind::kCrashOnQuorum;
  decoy_quorum.count = 1;
  decoy_quorum.until = 10'000;
  c.plan.clauses.push_back(decoy_crash);
  c.plan.clauses.push_back(decoy_leader);
  c.plan.clauses.push_back(decoy_quorum);
  return c;
}

// ---------------------------------------------------------------- repros

obs::Json repro_to_json(const ChaosCase& c, const ChaosOutcome& outcome) {
  obs::Json j = obs::Json::object();
  j["schema"] = "hds-chaos-repro-v1";
  j["case"] = c.to_json();
  obs::Json expect = obs::Json::object();
  expect["violated"] = !outcome.ok;
  obs::Json tags = obs::Json::array();
  for (const std::string& t : outcome.violation_tags()) tags.push_back(t);
  expect["tags"] = std::move(tags);
  j["expect"] = std::move(expect);
  return j;
}

Repro parse_repro(const obs::Json& j) {
  const obs::Json* schema = j.find("schema");
  if (schema == nullptr || schema->str() != "hds-chaos-repro-v1") {
    throw std::invalid_argument("repro: unsupported schema");
  }
  const obs::Json* c = j.find("case");
  if (c == nullptr) throw std::invalid_argument("repro: missing case");
  Repro r;
  r.c = ChaosCase::from_json(*c);
  if (const obs::Json* expect = j.find("expect")) {
    if (const obs::Json* v = expect->find("violated")) r.violated = v->boolean();
    if (const obs::Json* tags = expect->find("tags")) {
      for (const auto& t : tags->items()) r.tags.push_back(t.str());
    }
  }
  return r;
}

ReplayResult replay_repro(const Repro& r, std::size_t trace_capacity) {
  ReplayResult res;
  res.outcome = run_chaos_case(r.c, trace_capacity);
  res.match = (!res.outcome.ok == r.violated) && res.outcome.violation_tags() == r.tags;
  return res;
}

}  // namespace hds::chaos
