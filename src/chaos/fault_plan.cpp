#include "chaos/fault_plan.h"

#include <algorithm>
#include <stdexcept>

namespace hds::chaos {

const char* kind_name(ClauseKind k) {
  switch (k) {
    case ClauseKind::kPartition: return "partition";
    case ClauseKind::kLoss: return "loss";
    case ClauseKind::kDelay: return "delay";
    case ClauseKind::kReorder: return "reorder";
    case ClauseKind::kDuplicate: return "duplicate";
    case ClauseKind::kCrashAt: return "crash-at";
    case ClauseKind::kCrashOnLeaderChange: return "crash-on-leader-change";
    case ClauseKind::kCrashOnQuorum: return "crash-on-quorum";
  }
  return "?";
}

ClauseKind kind_from_name(const std::string& name) {
  for (ClauseKind k :
       {ClauseKind::kPartition, ClauseKind::kLoss, ClauseKind::kDelay, ClauseKind::kReorder,
        ClauseKind::kDuplicate, ClauseKind::kCrashAt, ClauseKind::kCrashOnLeaderChange,
        ClauseKind::kCrashOnQuorum}) {
    if (name == kind_name(k)) return k;
  }
  throw std::invalid_argument("FaultClause: unknown kind '" + name + "'");
}

bool is_link_kind(ClauseKind k) {
  switch (k) {
    case ClauseKind::kPartition:
    case ClauseKind::kLoss:
    case ClauseKind::kDelay:
    case ClauseKind::kReorder:
    case ClauseKind::kDuplicate: return true;
    default: return false;
  }
}

bool is_trigger_kind(ClauseKind k) {
  return k == ClauseKind::kCrashOnLeaderChange || k == ClauseKind::kCrashOnQuorum;
}

bool LinkSelector::matches(ProcIndex from, ProcIndex to, const std::vector<Id>& ids) const {
  if (!src.empty() && std::find(src.begin(), src.end(), from) == src.end()) return false;
  if (!dst.empty() && std::find(dst.begin(), dst.end(), to) == dst.end()) return false;
  if (dst_id != kBottomId && (to >= ids.size() || ids[to] != dst_id)) return false;
  return true;
}

namespace {

obs::Json indices_to_json(const std::vector<ProcIndex>& v) {
  obs::Json a = obs::Json::array();
  for (ProcIndex i : v) a.push_back(i);
  return a;
}

std::vector<ProcIndex> indices_from_json(const obs::Json* j) {
  std::vector<ProcIndex> out;
  if (j == nullptr || !j->is_array()) return out;
  for (const auto& e : j->items()) out.push_back(static_cast<ProcIndex>(e.integer()));
  return out;
}

}  // namespace

obs::Json LinkSelector::to_json() const {
  obs::Json j = obs::Json::object();
  if (!src.empty()) j["src"] = indices_to_json(src);
  if (!dst.empty()) j["dst"] = indices_to_json(dst);
  if (dst_id != kBottomId) j["dst_id"] = dst_id;
  return j;
}

LinkSelector LinkSelector::from_json(const obs::Json& j) {
  LinkSelector s;
  s.src = indices_from_json(j.find("src"));
  s.dst = indices_from_json(j.find("dst"));
  s.dst_id = static_cast<Id>(j.number_or("dst_id", 0));
  return s;
}

obs::Json FaultClause::to_json() const {
  obs::Json j = obs::Json::object();
  j["kind"] = kind_name(kind);
  if (from != 0) j["from"] = from;
  if (until != -1) j["until"] = until;
  if (is_link_kind(kind)) {
    obs::Json sel = links.to_json();
    if (!sel.fields().empty()) j["links"] = std::move(sel);
  }
  if (prob != 1.0) j["prob"] = prob;
  if (delay != 0) j["delay"] = delay;
  if (count != 1) j["count"] = count;
  if (kind == ClauseKind::kCrashAt) {
    j["proc"] = proc;
    j["at"] = at;
  }
  if (target_id != kBottomId) j["target_id"] = target_id;
  return j;
}

FaultClause FaultClause::from_json(const obs::Json& j) {
  FaultClause c;
  const obs::Json* kind = j.find("kind");
  if (kind == nullptr) throw std::invalid_argument("FaultClause: missing kind");
  c.kind = kind_from_name(kind->str());
  c.from = static_cast<SimTime>(j.number_or("from", 0));
  c.until = static_cast<SimTime>(j.number_or("until", -1));
  if (const obs::Json* sel = j.find("links")) c.links = LinkSelector::from_json(*sel);
  c.prob = j.number_or("prob", 1.0);
  c.delay = static_cast<SimTime>(j.number_or("delay", 0));
  c.count = static_cast<std::size_t>(j.number_or("count", 1));
  c.proc = static_cast<ProcIndex>(j.number_or("proc", 0));
  c.at = static_cast<SimTime>(j.number_or("at", 0));
  c.target_id = static_cast<Id>(j.number_or("target_id", 0));
  if (c.prob < 0.0 || c.prob > 1.0) throw std::invalid_argument("FaultClause: prob out of range");
  if (c.delay < 0 || c.at < 0) throw std::invalid_argument("FaultClause: negative time");
  return c;
}

bool FaultPlan::has_triggers() const {
  return std::any_of(clauses.begin(), clauses.end(),
                     [](const FaultClause& c) { return is_trigger_kind(c.kind); });
}

bool FaultPlan::has_crashes() const {
  return std::any_of(clauses.begin(), clauses.end(),
                     [](const FaultClause& c) { return !is_link_kind(c.kind); });
}

std::size_t FaultPlan::crash_budget() const {
  std::size_t total = 0;
  for (const FaultClause& c : clauses) {
    if (c.kind == ClauseKind::kCrashAt) total += 1;
    else if (is_trigger_kind(c.kind)) total += c.count;
  }
  return total;
}

SimTime FaultPlan::link_faults_end() const {
  SimTime end = 0;
  for (const FaultClause& c : clauses) {
    if (!is_link_kind(c.kind)) continue;
    if (c.until < 0) return -1;
    end = std::max(end, c.until);
  }
  return end;
}

obs::Json FaultPlan::to_json() const {
  obs::Json arr = obs::Json::array();
  for (const FaultClause& c : clauses) arr.push_back(c.to_json());
  obs::Json j = obs::Json::object();
  j["clauses"] = std::move(arr);
  return j;
}

FaultPlan FaultPlan::from_json(const obs::Json& j) {
  FaultPlan plan;
  const obs::Json* arr = j.find("clauses");
  if (arr == nullptr || !arr->is_array()) {
    throw std::invalid_argument("FaultPlan: missing clauses array");
  }
  for (const auto& e : arr->items()) plan.clauses.push_back(FaultClause::from_json(e));
  return plan;
}

}  // namespace hds::chaos
