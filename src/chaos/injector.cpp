#include "chaos/injector.h"

#include <algorithm>
#include <chrono>

#include "rt/runtime.h"
#include "sim/system.h"

namespace hds::chaos {

// Forwards every FD output change to the harness's own listener (the online
// monitor), then lets the injector evaluate its trigger clauses. The
// forward-first order matters: the monitor must see the change that caused
// a crash, not a truncated run.
class FaultInjector::ChainListener final : public FdOutputListener {
 public:
  ChainListener(FaultInjector& inj, FdOutputListener* inner) : inj_(inj), inner_(inner) {}

  void on_trusted_change(SimTime at, const Multiset<Id>& h) override {
    if (inner_ != nullptr) inner_->on_trusted_change(at, h);
  }
  void on_homega_change(SimTime at, const HOmegaOut& out) override {
    if (inner_ != nullptr) inner_->on_homega_change(at, out);
    inj_.on_homega_event(at, out);
  }
  void on_hsigma_change(SimTime at, const HSigmaSnapshot& snap) override {
    if (inner_ != nullptr) inner_->on_hsigma_change(at, snap);
    inj_.on_hsigma_event(at, snap);
  }
  void on_sigma_change(SimTime at, const Multiset<Id>& t) override {
    if (inner_ != nullptr) inner_->on_sigma_change(at, t);
  }

 private:
  FaultInjector& inj_;
  FdOutputListener* inner_;
};

FaultInjector::FaultInjector(FaultPlan plan, std::vector<Id> ids, std::uint64_t seed)
    : plan_(std::move(plan)),
      ids_(std::move(ids)),
      rng_(seed),
      budget_used_(plan_.clauses.size(), 0),
      leaders_punished_(plan_.clauses.size()),
      quora_punished_(plan_.clauses.size()) {}

FaultInjector::~FaultInjector() = default;

CopyVerdict FaultInjector::on_copy(SimTime now, ProcIndex from, ProcIndex to,
                                   const std::string& /*type*/) {
  CopyVerdict v;
  std::lock_guard lk(mu_);
  for (const FaultClause& c : plan_.clauses) {
    if (!is_link_kind(c.kind) || !c.active_at(now)) continue;
    if (!c.links.matches(from, to, ids_)) continue;
    switch (c.kind) {
      case ClauseKind::kPartition:
        v.drop = true;
        break;
      case ClauseKind::kLoss:
        if (rng_.chance(c.prob)) v.drop = true;
        break;
      case ClauseKind::kDelay:
        v.extra_delay += c.delay;
        break;
      case ClauseKind::kReorder:
        if (c.delay > 0) v.extra_delay += rng_.uniform(0, c.delay);
        break;
      case ClauseKind::kDuplicate:
        if (rng_.chance(c.prob)) {
          v.duplicates += c.count;
          v.duplicate_spread = std::max(v.duplicate_spread, c.delay);
        }
        break;
      default:
        break;
    }
    if (v.drop) break;  // a dropped copy needs no further shaping
  }
  if (v.drop) {
    ++stats_.copies_dropped;
    v.extra_delay = 0;
    v.duplicates = 0;
  } else {
    if (v.extra_delay > 0) ++stats_.copies_delayed;
    stats_.copies_duplicated += v.duplicates;
  }
  return v;
}

void FaultInjector::arm(System& sys) {
  sys.set_interposer(this);
  crash_fn_ = [&sys](ProcIndex i, const std::string& why) { sys.inject_crash(i, why); };
  alive_fn_ = [&sys](ProcIndex i) { return sys.is_alive(i); };
  for (const FaultClause& c : plan_.clauses) {
    if (c.kind != ClauseKind::kCrashAt) continue;
    const ProcIndex victim = c.proc;
    sys.scheduler().at(c.at, [&sys, victim] { sys.inject_crash(victim, "chaos:crash-at"); });
  }
}

void FaultInjector::arm(RtSystem& sys) {
  sys.set_interposer(this);
  crash_fn_ = [&sys](ProcIndex i, const std::string&) { sys.crash(i); };
  alive_fn_ = [&sys](ProcIndex i) { return !sys.is_crashed(i); };
  std::vector<std::pair<SimTime, ProcIndex>> at_clauses;
  for (const FaultClause& c : plan_.clauses) {
    if (c.kind == ClauseKind::kCrashAt) at_clauses.emplace_back(c.at, c.proc);
  }
  if (at_clauses.empty()) return;
  std::sort(at_clauses.begin(), at_clauses.end());
  // Clause times are milliseconds from arm() on this substrate. The thread
  // captures &sys: construct the injector before the RtSystem (or stop the
  // system before destroying the injector) so joining is safe.
  rt_crash_thread_ = std::jthread([this, &sys, at_clauses](std::stop_token st) {
    using Clock = std::chrono::steady_clock;
    const auto epoch = Clock::now();
    for (const auto& [at, victim] : at_clauses) {
      const auto deadline = epoch + std::chrono::milliseconds(at);
      while (Clock::now() < deadline) {
        if (st.stop_requested()) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (st.stop_requested()) return;
      sys.crash(victim);
      std::lock_guard lk(mu_);
      ++stats_.crashes_injected;
      stats_.crash_log.push_back("crash-at victim=" + std::to_string(victim) +
                                 " at=" + std::to_string(at));
    }
  });
}

FdOutputListener* FaultInjector::trigger_listener(ProcIndex /*i*/, FdOutputListener* inner) {
  if (!plan_.has_triggers()) return inner;
  listeners_.push_back(std::make_unique<ChainListener>(*this, inner));
  return listeners_.back().get();
}

ProcIndex FaultInjector::lowest_alive_carrier(Id id) const {
  for (ProcIndex i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id && alive_fn_ && alive_fn_(i)) return i;
  }
  return static_cast<ProcIndex>(-1);
}

void FaultInjector::crash_now(ProcIndex victim, const std::string& why, SimTime at) {
  if (crash_fn_) crash_fn_(victim, why);
  std::lock_guard lk(mu_);
  ++stats_.crashes_injected;
  stats_.crash_log.push_back(why + " victim=" + std::to_string(victim) +
                             " at=" + std::to_string(at));
}

void FaultInjector::on_homega_event(SimTime at, const HOmegaOut& out) {
  if (out.leader == kBottomId && out.multiplicity == 0) return;
  std::vector<std::pair<ProcIndex, std::string>> todo;
  {
    std::lock_guard lk(mu_);
    for (std::size_t ci = 0; ci < plan_.clauses.size(); ++ci) {
      const FaultClause& c = plan_.clauses[ci];
      if (c.kind != ClauseKind::kCrashOnLeaderChange || !c.active_at(at)) continue;
      if (c.target_id != kBottomId && c.target_id != out.leader) continue;
      if (budget_used_[ci] >= c.count) continue;
      if (!leaders_punished_[ci].insert(out.leader).second) continue;  // already hit
      ++budget_used_[ci];
      todo.emplace_back(0, "chaos:crash-on-leader-change");
    }
  }
  for (auto& [victim, why] : todo) {
    victim = lowest_alive_carrier(out.leader);
    if (victim == static_cast<ProcIndex>(-1)) continue;
    crash_now(victim, why, at);
  }
}

void FaultInjector::on_hsigma_event(SimTime at, const HSigmaSnapshot& snap) {
  if (snap.quora.empty()) return;
  std::vector<std::pair<Id, std::string>> todo;
  {
    std::lock_guard lk(mu_);
    for (std::size_t ci = 0; ci < plan_.clauses.size(); ++ci) {
      const FaultClause& c = plan_.clauses[ci];
      if (c.kind != ClauseKind::kCrashOnQuorum || !c.active_at(at)) continue;
      for (const auto& [label, members] : snap.quora) {
        if (budget_used_[ci] >= c.count) break;
        if (members.empty()) continue;
        if (!quora_punished_[ci].insert(label).second) continue;  // already hit
        ++budget_used_[ci];
        todo.emplace_back(members.min(), "chaos:crash-on-quorum");
      }
    }
  }
  for (const auto& [id, why] : todo) {
    const ProcIndex victim = lowest_alive_carrier(id);
    if (victim == static_cast<ProcIndex>(-1)) continue;
    crash_now(victim, why, at);
  }
}

InjectorStats FaultInjector::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

}  // namespace hds::chaos
