#include "chaos/shrink.h"

#include <algorithm>
#include <stdexcept>

namespace hds::chaos {

namespace {

bool tags_intersect(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  return std::any_of(a.begin(), a.end(), [&b](const std::string& t) {
    return std::find(b.begin(), b.end(), t) != b.end();
  });
}

}  // namespace

ShrinkResult shrink_case(const ChaosCase& failing, std::size_t max_runs) {
  ShrinkResult res;
  res.reduced = failing;
  res.outcome = run_chaos_case(failing);
  res.runs = 1;
  if (res.outcome.ok) {
    throw std::invalid_argument("shrink_case: the input case does not violate anything");
  }
  const std::vector<std::string> orig_tags = res.outcome.violation_tags();

  // Probe one candidate; on success it becomes the new best.
  auto try_candidate = [&](const ChaosCase& cand) {
    if (res.runs >= max_runs) return false;
    ++res.runs;
    ChaosOutcome o = run_chaos_case(cand);
    if (o.ok || !tags_intersect(o.violation_tags(), orig_tags)) return false;
    res.reduced = cand;
    res.outcome = std::move(o);
    return true;
  };

  // Pass 1: greedy clause removal to a fixpoint. Removing any single clause
  // restarts the scan, so the loop terminates with a 1-minimal clause set
  // (no single clause can be dropped).
  bool changed = true;
  while (changed && res.runs < max_runs) {
    changed = false;
    for (std::size_t i = 0; i < res.reduced.plan.clauses.size(); ++i) {
      ChaosCase cand = res.reduced;
      cand.plan.clauses.erase(cand.plan.clauses.begin() + static_cast<std::ptrdiff_t>(i));
      if (try_candidate(cand)) {
        changed = true;
        break;
      }
    }
  }

  // Pass 2: drop the planned crash schedule if the plan alone still fails.
  if (res.reduced.crash_k > 0) {
    ChaosCase cand = res.reduced;
    cand.crash_k = 0;
    cand.crash_at = 0;
    try_candidate(cand);
  }

  // Pass 3: halve numeric clause constants while the failure persists.
  for (std::size_t i = 0; i < res.reduced.plan.clauses.size(); ++i) {
    while (res.reduced.plan.clauses[i].delay > 1 && res.runs < max_runs) {
      ChaosCase cand = res.reduced;
      cand.plan.clauses[i].delay /= 2;
      if (!try_candidate(cand)) break;
    }
    while (res.reduced.plan.clauses[i].count > 1 && res.runs < max_runs) {
      ChaosCase cand = res.reduced;
      cand.plan.clauses[i].count /= 2;
      if (!try_candidate(cand)) break;
    }
  }

  return res;
}

}  // namespace hds::chaos
