// FaultInjector — executes a FaultPlan against either substrate.
//
// The injector is a LinkInterposer (link clauses are applied per copy, on
// the simulator's Network or the thread runtime's broadcast path) plus a
// set of effectors for the crash clauses: fixed-instant crashes are
// scheduled through the substrate's own mechanism, and event-triggered
// crashes ride the FdOutputListener hooks — the injector chains itself in
// front of whatever listener the harness already installs (the online
// monitor), observes real FD output changes, and crashes a victim when a
// trigger clause matches.
//
// Determinism: all randomness (loss, duplication, jitter) comes from one
// seeded Rng owned by the injector; on the simulator the whole run is
// therefore a pure function of (case config, plan, seed). Thread safety:
// every mutable member is guarded by one mutex, because on the rt substrate
// on_copy and the listener callbacks arrive on node threads. Crash
// effectors are invoked outside the lock (lock order: injector mutex before
// any substrate lock, never the reverse).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "chaos/fault_plan.h"
#include "common/label.h"
#include "common/link_fault.h"
#include "common/rng.h"
#include "common/types.h"
#include "fd/output_hooks.h"

namespace hds {
class System;
class RtSystem;
}  // namespace hds

namespace hds::chaos {

struct InjectorStats {
  std::uint64_t copies_dropped = 0;
  std::uint64_t copies_delayed = 0;
  std::uint64_t copies_duplicated = 0;
  std::uint64_t crashes_injected = 0;
  std::vector<std::string> crash_log;  // "rule victim=<idx> at=<t>"
};

class FaultInjector final : public LinkInterposer {
 public:
  // `ids` is the run's identity vector (needed for label-class selectors and
  // trigger victim selection).
  FaultInjector(FaultPlan plan, std::vector<Id> ids, std::uint64_t seed);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // LinkInterposer: applies every active matching link clause to the copy.
  CopyVerdict on_copy(SimTime now, ProcIndex from, ProcIndex to,
                      const std::string& type) override;

  // Attaches to a substrate: installs the interposer and the crash
  // effectors, and schedules kCrashAt clauses. Call before start(); the
  // injector must outlive the system (declare it before the system, or on
  // the rt substrate *construct* it first so destruction joins the crash
  // thread after the system stopped).
  void arm(System& sys);
  void arm(RtSystem& sys);

  // Listener chaining for process i: returns a listener that forwards every
  // event to `inner` (may be null) and then evaluates trigger clauses.
  // Returns `inner` unchanged when the plan has no trigger clauses. The
  // returned listener is owned by the injector.
  FdOutputListener* trigger_listener(ProcIndex i, FdOutputListener* inner);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] InjectorStats stats() const;

 private:
  class ChainListener;

  void on_homega_event(SimTime at, const HOmegaOut& out);
  void on_hsigma_event(SimTime at, const HSigmaSnapshot& snap);
  // Lowest-index alive carrier of `id`; SIZE_MAX when none.
  ProcIndex lowest_alive_carrier(Id id) const;
  void crash_now(ProcIndex victim, const std::string& why, SimTime at);

  FaultPlan plan_;
  std::vector<Id> ids_;

  mutable std::mutex mu_;
  Rng rng_;
  InjectorStats stats_;
  std::vector<std::size_t> budget_used_;        // per clause
  std::vector<std::set<Id>> leaders_punished_;  // per clause (leader triggers)
  std::vector<std::set<Label>> quora_punished_;  // per clause (quorum triggers)
  std::vector<std::unique_ptr<ChainListener>> listeners_;

  // Substrate effectors (set by arm()).
  std::function<void(ProcIndex, const std::string&)> crash_fn_;
  std::function<bool(ProcIndex)> alive_fn_;
  std::jthread rt_crash_thread_;  // kCrashAt driver on the rt substrate
};

}  // namespace hds::chaos
