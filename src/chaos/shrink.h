// Delta-debugging shrinker for failing chaos cases.
//
// Given a case whose run violates at least one property, produce a smaller
// case that still violates — fewer clauses first (greedy single-clause
// removal to a fixpoint), then simpler configuration (drop planned
// crashes), then smaller clause constants (halve delays and duplicate
// counts). A candidate is accepted when its violation-tag set still
// intersects the original's: the shrunken repro must fail *for the same
// reason*, not for a new one the shrinking introduced.
//
// Every probe is one deterministic simulator run; `max_runs` bounds the
// total work. The result carries the reduced case, its outcome, and the
// number of runs spent.
#pragma once

#include <cstddef>

#include "chaos/runner.h"

namespace hds::chaos {

struct ShrinkResult {
  ChaosCase reduced;
  ChaosOutcome outcome;   // outcome of the reduced case
  std::size_t runs = 0;   // simulator runs spent (including the initial one)
};

// Precondition: run_chaos_case(failing) reports at least one violation
// (throws std::invalid_argument otherwise).
ShrinkResult shrink_case(const ChaosCase& failing, std::size_t max_runs = 200);

}  // namespace hds::chaos
