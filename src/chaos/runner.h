// Chaos runner: executes a FaultPlan against a named detector/consensus
// stack and validates the run with the spec checkers and the online
// monitor.
//
// A ChaosCase is the full, replayable description of one adversarial run:
// stack, topology (n, distinct identifiers), planned crash schedule,
// synchrony parameters, seed, and the fault plan. `admissible()` defines
// the envelope inside which the paper's properties are *supposed* to hold
// for each stack (e.g. injected link faults must heal by GST in HPS; the
// synchronous Fig. 9 stack admits no link faults at all; crash budgets
// respect each algorithm's resilience). The fuzzer sweeps random admissible
// cases and flags any violation; deliberately inadmissible cases are how
// the demo and the negative tests prove the checkers actually catch
// violations.
//
// Failing cases serialize as `hds-chaos-repro-v1` JSON documents together
// with the violation tags they produced; replaying a repro re-runs the case
// and compares tags (the simulator is deterministic, so a committed repro
// must reproduce exactly).
#pragma once

#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "common/rng.h"
#include "common/types.h"
#include "obs/json.h"
#include "sim/tracelog.h"

namespace hds::chaos {

enum class StackKind : std::uint8_t {
  kFig6,  // Fig. 6 detectors alone in HPS (◇HP̄ + HΩ checks)
  kFig8,  // full stack Fig. 6 ▸ Corollary 2 ▸ Fig. 8 in HPS[t < n/2]
  kFig9,  // full stack Fig. 6 + Fig. 7-adapter ▸ Fig. 9, synchronous
  kSmr,   // replicated log over the fig8 stack (lease fast path + per-slot
          // Fig. 8 recovery) serving closed-loop client traffic in HPS
};

[[nodiscard]] const char* stack_name(StackKind s);
[[nodiscard]] StackKind stack_from_name(const std::string& name);

struct ChaosCase {
  StackKind stack = StackKind::kFig6;
  std::size_t n = 6;
  std::size_t distinct = 3;  // identifiers: ids_homonymous(n, distinct, seed)
  std::size_t crash_k = 0;   // planned crashes (last k processes)
  SimTime crash_at = 0;
  SimTime gst = 200;     // HPS stacks
  SimTime delta = 3;     // post-GST bound (HPS) / known bound (fig9)
  SimTime run_for = 5000;     // fig6 horizon
  SimTime max_time = 60'000;  // consensus horizon
  std::uint64_t seed = 1;
  // Fig. 8 only: run the case behind the reliable-delivery emulator
  // (net::ReliableLinkEmulator wraps the fault injector), mirroring a real
  // deployment with the ARQ layer on. Widens the admissible envelope to
  // include pre-GST loss and duplication clauses — the emulator retransmits
  // through loss and suppresses duplicates, restoring the reliable-link
  // (HAS) assumption Fig. 8 needs. Serialized only when true, so existing
  // repro files and their byte-exact fixtures are untouched.
  bool reliable = false;
  FaultPlan plan;

  [[nodiscard]] obs::Json to_json() const;
  static ChaosCase from_json(const obs::Json& j);
  friend bool operator==(const ChaosCase&, const ChaosCase&) = default;
};

struct ChaosOutcome {
  bool ok = true;
  // "tag: detail" per failed property; tag identifies the checker
  // ("ohp", "homega", "consensus", "liveness", "hsigma-safety",
  // "monitor-<rule>").
  std::vector<std::string> violations;
  std::uint64_t injected_crashes = 0;
  std::uint64_t copies_dropped = 0;
  // The run's retained event log (with causal lineage) when the case ran
  // with trace_capacity > 0 — feed obs::causal_chain to explain a finding
  // by its message ancestry — plus the ring's eviction count.
  std::vector<TraceEvent> trace_events;
  std::uint64_t trace_dropped = 0;

  // Sorted, de-duplicated tags (prefix of each violation before ':').
  [[nodiscard]] std::vector<std::string> violation_tags() const;
};

// True when the case stays inside the stack's assumption envelope, i.e.
// every property check is *expected* to pass. See the rules in runner.cpp.
[[nodiscard]] bool admissible(const ChaosCase& c);

// trace_capacity > 0 turns on the simulator's causal trace ring for the run
// and returns the retained events in the outcome. 0 (the fuzzer's sweep
// default) keeps the hot path allocation-free.
//
// `shards` is plumbed into every stack's harness params. The harness forces
// injector-backed runs onto one shard today (the chaos and monitor seams
// assume a single execution thread), so the knob changes wall-clock, never
// bytes: outcomes and repro tags stay identical at any value.
ChaosOutcome run_chaos_case(const ChaosCase& c, std::size_t trace_capacity = 0,
                            std::size_t shards = 1);

// Uniformly random case drawn inside the admissible envelope of `stack`.
ChaosCase random_admissible_case(Rng& rng, StackKind stack);

// Deliberately inadmissible case: a never-healing partition splits the
// synchronous Fig. 9 stack into two camps with disjoint HΣ quora, plus
// decoy clauses for the shrinker to strip. Guaranteed to violate.
ChaosCase violation_demo_case();

// ---- repro files (schema "hds-chaos-repro-v1") ----

struct Repro {
  ChaosCase c;
  bool violated = false;
  std::vector<std::string> tags;  // expected violation tags
};

[[nodiscard]] obs::Json repro_to_json(const ChaosCase& c, const ChaosOutcome& outcome);
[[nodiscard]] Repro parse_repro(const obs::Json& j);

struct ReplayResult {
  bool match = false;  // observed tags == expected tags
  ChaosOutcome outcome;
};

// trace_capacity as in run_chaos_case; tracing never perturbs the schedule,
// so a replay matches its recorded tags with or without it.
ReplayResult replay_repro(const Repro& r, std::size_t trace_capacity = 0);

}  // namespace hds::chaos
