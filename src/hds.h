// Umbrella header: the whole public surface of the library.
//
//   #include "hds.h"
//
// For finer-grained builds include the individual module headers instead;
// every header under src/ is self-contained.
#pragma once

#include "common/label.h"          // IWYU pragma: export
#include "common/multiset.h"       // IWYU pragma: export
#include "common/rng.h"            // IWYU pragma: export
#include "common/trajectory.h"     // IWYU pragma: export
#include "common/types.h"          // IWYU pragma: export

#include "sim/message.h"           // IWYU pragma: export
#include "sim/process.h"           // IWYU pragma: export
#include "sim/scheduler.h"         // IWYU pragma: export
#include "sim/stacked_process.h"   // IWYU pragma: export
#include "sim/sync_system.h"       // IWYU pragma: export
#include "sim/system.h"            // IWYU pragma: export
#include "sim/timing.h"            // IWYU pragma: export
#include "sim/tracelog.h"          // IWYU pragma: export

#include "rt/runtime.h"            // IWYU pragma: export

#include "fd/ground_truth.h"       // IWYU pragma: export
#include "fd/interfaces.h"         // IWYU pragma: export
#include "fd/oracles.h"            // IWYU pragma: export

#include "fd/impl/alive_ranker.h"      // IWYU pragma: export
#include "fd/impl/ap_sync.h"           // IWYU pragma: export
#include "fd/impl/homega_heartbeat.h"  // IWYU pragma: export
#include "fd/impl/hsigma_sync.h"       // IWYU pragma: export
#include "fd/impl/ohp_polling.h"       // IWYU pragma: export

#include "fd/reduce/ap_to_asigma.h"
#include "fd/reduce/ap_to_hsigma.h"       // IWYU pragma: export
#include "fd/reduce/ap_to_ohp.h"          // IWYU pragma: export
#include "fd/reduce/asigma_to_hsigma.h"   // IWYU pragma: export
#include "fd/reduce/classical_corner.h"   // IWYU pragma: export
#include "fd/reduce/hsigma_to_sigma.h"    // IWYU pragma: export
#include "fd/reduce/ohp_to_homega.h"      // IWYU pragma: export
#include "fd/reduce/sigma_to_hsigma.h"    // IWYU pragma: export

#include "consensus/flood_sync.h"            // IWYU pragma: export
#include "consensus/harness.h"               // IWYU pragma: export
#include "consensus/majority_homega.h"       // IWYU pragma: export
#include "consensus/messages.h"              // IWYU pragma: export
#include "consensus/quorum_homega_hsigma.h"  // IWYU pragma: export

#include "spec/consensus_checkers.h"  // IWYU pragma: export
#include "spec/fd_checkers.h"         // IWYU pragma: export
