#include "fd/interfaces.h"

#include <limits>

namespace hds {

std::size_t rank_of(Id i, const std::vector<Id>& alive_list) {
  for (std::size_t k = 0; k < alive_list.size(); ++k) {
    if (alive_list[k] == i) return k + 1;
  }
  return std::numeric_limits<std::size_t>::max();
}

}  // namespace hds
