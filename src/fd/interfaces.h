// Failure-detector class interfaces.
//
// One handle type per failure-detector class from the paper (Section 3). A
// handle is the per-process view: it exposes exactly the variables the class
// definition gives to that process and nothing else. Implementations are
// either oracles (fd/oracles.h, ground-truth driven, for studying the
// consensus algorithms in HAS[...] where the detector is *given*), real
// message-passing algorithms (fd/impl/), or reductions wrapping another
// handle (fd/reduce/).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/label.h"
#include "common/multiset.h"
#include "common/types.h"

namespace hds {

// ◇HP̄ — eventually outputs forever the multiset I(Correct). Homonymous
// counterpart of the complement-of-P detector ◇P̄.
class OHPHandle {
 public:
  virtual ~OHPHandle() = default;
  [[nodiscard]] virtual Multiset<Id> h_trusted() const = 0;
};

// HΩ — eventually the same pair (leader identifier of a correct process,
// number of correct processes carrying it) at every correct process.
struct HOmegaOut {
  Id leader = kBottomId;
  std::size_t multiplicity = 0;
  friend bool operator==(const HOmegaOut&, const HOmegaOut&) = default;
};

class HOmegaHandle {
 public:
  virtual ~HOmegaHandle() = default;
  [[nodiscard]] virtual HOmegaOut h_omega() const = 0;
};

// HΣ — the homonymous quorum detector: h_quora is a set of (label,
// identifier-multiset) pairs, h_labels the labels whose quora this process
// participates in. One snapshot carries both variables.
struct HSigmaSnapshot {
  std::set<Label> labels;
  std::map<Label, Multiset<Id>> quora;
  friend bool operator==(const HSigmaSnapshot&, const HSigmaSnapshot&) = default;
};

class HSigmaHandle {
 public:
  virtual ~HSigmaHandle() = default;
  [[nodiscard]] virtual HSigmaSnapshot snapshot() const = 0;
};

// Σ — the classical quorum detector [Delporte-Gallet et al.]; trusted is a
// multiset of identifiers per the paper's footnote 6 (in a unique-id system
// every multiplicity is 1).
class SigmaHandle {
 public:
  virtual ~SigmaHandle() = default;
  [[nodiscard]] virtual Multiset<Id> trusted() const = 0;
};

// Class S (the paper's Definition 1, written with a calligraphic letter):
// a sequence of identifiers such that eventually the correct processes
// permanently occupy the prefix. Defined only for unique-id systems.
class RankerHandle {
 public:
  virtual ~RankerHandle() = default;
  // Front of the vector = rank 1.
  [[nodiscard]] virtual std::vector<Id> alive_list() const = 0;
};

// rank(i, alive) per Definition 1: 1-based position, or SIZE_MAX if absent.
std::size_t rank_of(Id i, const std::vector<Id>& alive_list);

// AP — anonymous perfect detector [Bonnet & Raynal]: an upper bound on the
// number of alive processes, eventually exactly |Correct|.
class APHandle {
 public:
  virtual ~APHandle() = default;
  [[nodiscard]] virtual std::size_t anap() const = 0;
};

// AΣ — anonymous quorum detector: pairs (label, count).
struct ASigmaPair {
  std::uint64_t label = 0;
  std::size_t count = 0;
  friend bool operator==(const ASigmaPair&, const ASigmaPair&) = default;
};

class ASigmaHandle {
 public:
  virtual ~ASigmaHandle() = default;
  [[nodiscard]] virtual std::vector<ASigmaPair> a_sigma() const = 0;
};

// AΩ — anonymous leader: eventually exactly one correct process holds true.
class AOmegaHandle {
 public:
  virtual ~AOmegaHandle() = default;
  [[nodiscard]] virtual bool a_leader() const = 0;
};

// Ω — the classical eventual leader [Chandra, Hadzilacos & Toueg]:
// eventually the same correct process identifier at every correct process.
// Meaningful in unique-id systems.
class OmegaHandle {
 public:
  virtual ~OmegaHandle() = default;
  [[nodiscard]] virtual Id leader() const = 0;
};

// ◇P̄ — the complement of the eventually perfect detector: eventually
// outputs permanently the *set* of correct identifiers. Unique-id systems.
class OPbarHandle {
 public:
  virtual ~OPbarHandle() = default;
  [[nodiscard]] virtual std::set<Id> trusted_set() const = 0;
};

}  // namespace hds
