#include "fd/oracles.h"

#include <stdexcept>

#include "sim/sync_system.h"
#include "sim/system.h"

namespace hds {

namespace {

// Deterministic mixing for pseudo-random (but replayable) oracle noise.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL +
                    c * 0x94d049bb133111ebULL + 0x2545f4914f6cdd1dULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

void require_some_correct(const GroundTruth& gt) {
  for (bool c : gt.correct) {
    if (c) return;
  }
  throw std::invalid_argument("oracle: at least one correct process required");
}

}  // namespace

// ---------------------------------------------------------------- OracleHOmega

class OracleHOmega::H final : public HOmegaHandle {
 public:
  H(const OracleHOmega& o, ProcIndex p) : o_(o), p_(p) {}
  [[nodiscard]] HOmegaOut h_omega() const override {
    const SimTime t = o_.now_();
    if (t >= o_.stabilize_at_ || o_.noise_ == Noise::kNone) return o_.stable_;
    // Rotating, per-process-divergent leaders with bogus multiplicities.
    const std::uint64_t h = mix(p_, static_cast<std::uint64_t>(t / 3), 17);
    return HOmegaOut{o_.gt_.ids[h % o_.gt_.n()], 1 + static_cast<std::size_t>(h % 3)};
  }

 private:
  const OracleHOmega& o_;
  ProcIndex p_;
};

OracleHOmega::OracleHOmega(GroundTruth gt, ClockFn now, SimTime stabilize_at, Noise noise)
    : gt_(std::move(gt)), now_(std::move(now)), stabilize_at_(stabilize_at), noise_(noise) {
  require_some_correct(gt_);
  const Multiset<Id> correct = gt_.correct_ids();
  stable_ = HOmegaOut{correct.min(), correct.multiplicity(correct.min())};
  for (ProcIndex p = 0; p < gt_.n(); ++p) handles_.push_back(std::make_unique<H>(*this, p));
}

// ------------------------------------------------------------------- OracleOHP

class OracleOHP::H final : public OHPHandle {
 public:
  H(const OracleOHP& o, ProcIndex p) : o_(o), p_(p) {}
  [[nodiscard]] Multiset<Id> h_trusted() const override {
    const SimTime t = o_.now_();
    if (t >= o_.stabilize_at_ || o_.noise_ == Noise::kNone) return o_.gt_.correct_ids();
    const std::uint64_t h = mix(p_, static_cast<std::uint64_t>(t / 2), 23);
    if (h % 2 == 0) return o_.gt_.all_ids();
    return Multiset<Id>{o_.gt_.ids[h % o_.gt_.n()]};
  }

 private:
  const OracleOHP& o_;
  ProcIndex p_;
};

OracleOHP::OracleOHP(GroundTruth gt, ClockFn now, SimTime stabilize_at, Noise noise)
    : gt_(std::move(gt)), now_(std::move(now)), stabilize_at_(stabilize_at), noise_(noise) {
  require_some_correct(gt_);
  for (ProcIndex p = 0; p < gt_.n(); ++p) handles_.push_back(std::make_unique<H>(*this, p));
}

// ---------------------------------------------------------------- OracleHSigma

class OracleHSigma::H final : public HSigmaHandle {
 public:
  H(const OracleHSigma& o, ProcIndex p) : o_(o), p_(p) {}
  [[nodiscard]] HSigmaSnapshot snapshot() const override {
    static const Label kAll = Label::of_text("all");
    static const Label kCorrect = Label::of_text("correct");
    HSigmaSnapshot s;
    s.labels.insert(kAll);
    s.quora.emplace(kAll, o_.gt_.all_ids());
    if (o_.now_() >= o_.stabilize_at_) {
      if (o_.gt_.correct[p_]) s.labels.insert(kCorrect);
      s.quora.emplace(kCorrect, o_.gt_.correct_ids());
    }
    return s;
  }

 private:
  const OracleHSigma& o_;
  ProcIndex p_;
};

OracleHSigma::OracleHSigma(GroundTruth gt, ClockFn now, SimTime stabilize_at)
    : gt_(std::move(gt)), now_(std::move(now)), stabilize_at_(stabilize_at) {
  require_some_correct(gt_);
  for (ProcIndex p = 0; p < gt_.n(); ++p) handles_.push_back(std::make_unique<H>(*this, p));
}

// ----------------------------------------------------------------- OracleSigma

class OracleSigma::H final : public SigmaHandle {
 public:
  H(const OracleSigma& o, ProcIndex p) : o_(o), p_(p) {}
  [[nodiscard]] Multiset<Id> trusted() const override {
    const SimTime t = o_.now_();
    if (o_.mode_ == Mode::kCoarse) {
      return t >= o_.stabilize_at_ ? o_.gt_.correct_ids() : o_.gt_.all_ids();
    }
    // kPivot: always contains the pivot (pairwise intersection guaranteed);
    // faulty ids may appear before stabilization only.
    Multiset<Id> out;
    out.insert(o_.pivot_);
    const bool stable = t >= o_.stabilize_at_;
    for (ProcIndex q = 0; q < o_.gt_.n(); ++q) {
      if (o_.gt_.ids[q] == o_.pivot_) continue;
      if (stable && !o_.gt_.correct[q]) continue;
      if (mix(p_, static_cast<std::uint64_t>(t / 5), q) % 2 == 0) out.insert(o_.gt_.ids[q]);
    }
    return out;
  }

 private:
  const OracleSigma& o_;
  ProcIndex p_;
};

OracleSigma::OracleSigma(GroundTruth gt, ClockFn now, SimTime stabilize_at, Mode mode)
    : gt_(std::move(gt)), now_(std::move(now)), stabilize_at_(stabilize_at), mode_(mode) {
  require_some_correct(gt_);
  pivot_ = gt_.correct_ids().min();
  for (ProcIndex p = 0; p < gt_.n(); ++p) handles_.push_back(std::make_unique<H>(*this, p));
}

// -------------------------------------------------------------------- OracleAP

class OracleAP::H final : public APHandle {
 public:
  H(const OracleAP& o, ProcIndex p) : o_(o), p_(p) {}
  [[nodiscard]] std::size_t anap() const override {
    const SimTime t = o_.now_();
    if (t >= o_.stabilize_at_) return o_.gt_.correct_ids().size();
    if (o_.alive_count_) return o_.alive_count_(t);
    return o_.gt_.n();
  }

 private:
  const OracleAP& o_;
  ProcIndex p_;
};

OracleAP::OracleAP(GroundTruth gt, ClockFn now, SimTime stabilize_at,
                   std::function<std::size_t(SimTime)> alive_count)
    : gt_(std::move(gt)),
      now_(std::move(now)),
      stabilize_at_(stabilize_at),
      alive_count_(std::move(alive_count)) {
  require_some_correct(gt_);
  for (ProcIndex p = 0; p < gt_.n(); ++p) handles_.push_back(std::make_unique<H>(*this, p));
}

// ---------------------------------------------------------------- OracleASigma

class OracleASigma::H final : public ASigmaHandle {
 public:
  H(const OracleASigma& o, ProcIndex p) : o_(o), p_(p) {}
  [[nodiscard]] std::vector<ASigmaPair> a_sigma() const override {
    std::vector<ASigmaPair> out{{0, o_.gt_.n()}};
    if (o_.now_() >= o_.stabilize_at_ && o_.gt_.correct[p_]) {
      out.push_back({1, o_.gt_.correct_ids().size()});
    }
    return out;
  }

 private:
  const OracleASigma& o_;
  ProcIndex p_;
};

OracleASigma::OracleASigma(GroundTruth gt, ClockFn now, SimTime stabilize_at)
    : gt_(std::move(gt)), now_(std::move(now)), stabilize_at_(stabilize_at) {
  require_some_correct(gt_);
  for (ProcIndex p = 0; p < gt_.n(); ++p) handles_.push_back(std::make_unique<H>(*this, p));
}

// ---------------------------------------------------------------- OracleAOmega

class OracleAOmega::H final : public AOmegaHandle {
 public:
  H(const OracleAOmega& o, ProcIndex p) : o_(o), p_(p) {}
  [[nodiscard]] bool a_leader() const override {
    const SimTime t = o_.now_();
    if (t >= o_.stabilize_at_) return p_ == o_.stable_leader_;
    return mix(p_, static_cast<std::uint64_t>(t / 4), 31) % o_.gt_.n() == 0;
  }

 private:
  const OracleAOmega& o_;
  ProcIndex p_;
};

OracleAOmega::OracleAOmega(GroundTruth gt, ClockFn now, SimTime stabilize_at)
    : gt_(std::move(gt)), now_(std::move(now)), stabilize_at_(stabilize_at) {
  require_some_correct(gt_);
  stable_leader_ = gt_.correct_indices().front();
  for (ProcIndex p = 0; p < gt_.n(); ++p) handles_.push_back(std::make_unique<H>(*this, p));
}

}  // namespace hds
