// The run's ground truth: identities and correctness of every process.
// Available only to oracles, spec checkers and benchmarks — never to the
// algorithms (the paper's Pi is a formalization device).
#pragma once

#include <vector>

#include "common/multiset.h"
#include "common/types.h"

namespace hds {

class System;
class SyncSystem;

struct GroundTruth {
  std::vector<Id> ids;
  std::vector<bool> correct;

  [[nodiscard]] std::size_t n() const { return ids.size(); }
  [[nodiscard]] Multiset<Id> all_ids() const { return Multiset<Id>(ids.begin(), ids.end()); }
  [[nodiscard]] Multiset<Id> correct_ids() const;
  [[nodiscard]] std::vector<ProcIndex> correct_indices() const;
  [[nodiscard]] std::size_t correct_count() const;

  static GroundTruth from(const System& sys);
  static GroundTruth from(const SyncSystem& sys);
};

}  // namespace hds
