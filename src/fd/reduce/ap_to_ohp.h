// Lemma 2: ◇HP̄ from AP in an anonymous asynchronous system, without
// communication. h_trusted is a multiset of anap default identifiers;
// once AP converges to |Correct| this is exactly I(Correct) (every
// anonymous process carries bottom).
#pragma once

#include <limits>

#include "common/multiset.h"
#include "common/types.h"
#include "fd/interfaces.h"

namespace hds {

class ApToOhp final : public OHPHandle {
 public:
  explicit ApToOhp(const APHandle& src) : src_(&src) {}

  [[nodiscard]] Multiset<Id> h_trusted() const override {
    const std::size_t y = src_->anap();
    // Before AP's first estimate (our implementation's "infinity"
    // bootstrap) ◇HP̄ may output anything; the empty multiset is simplest.
    if (y == std::numeric_limits<std::size_t>::max()) return {};
    return Multiset<Id>::with_copies(kBottomId, y);
  }

 private:
  const APHandle* src_;
};

}  // namespace hds
