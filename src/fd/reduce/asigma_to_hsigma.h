// Theorem 3: HΣ from AΣ in an anonymous asynchronous system, without
// communication. Every AΣ pair (x, y) becomes the HΣ pair
// (x, bottom^y) — a multiset of y default identifiers — with label x added
// to h_labels; a same-label pair is replaced (AΣ monotonicity guarantees y
// only shrinks, preserving HΣ monotonicity).
#pragma once

#include "common/multiset.h"
#include "common/types.h"
#include "fd/interfaces.h"

namespace hds {

class ASigmaToHSigma final : public HSigmaHandle {
 public:
  explicit ASigmaToHSigma(const ASigmaHandle& src) : src_(&src) {}

  [[nodiscard]] HSigmaSnapshot snapshot() const override;

 private:
  const ASigmaHandle* src_;
  // Labels accumulate across samples (h_labels must be monotone even if the
  // underlying AΣ output momentarily omits a pair).
  mutable HSigmaSnapshot state_;
};

}  // namespace hds
