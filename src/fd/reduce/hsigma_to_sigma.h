// Figure 4 (Theorem 2): building Σ from an HΣ detector in an asynchronous
// system with unique identifiers and unknown membership.
//
// Every process broadcasts LABELS(id(p), D.h_labels) forever, accumulating
// idents[x] = identifiers known to carry label x. Whenever some pair
// (x, m) of D.h_quora is fully explained (m ⊆ idents[x]), the candidate
// multisets are ranked by a class-S detector (Fig. 3) and trusted is set to
// the candidate whose worst-ranked identifier is best — eventually a set of
// correct processes only.
#pragma once

#include <map>
#include <set>

#include "common/multiset.h"
#include "common/trajectory.h"
#include "common/types.h"
#include "fd/interfaces.h"
#include "fd/output_hooks.h"
#include "obs/metrics.h"
#include "sim/process.h"

namespace hds {

struct LabelsMsg {
  Id id;
  std::set<Label> labels;
};

class HSigmaToSigma final : public Process, public SigmaHandle {
 public:
  static constexpr const char* kMsgType = "LABELS";

  // `hsigma` is the D ∈ HΣ being transformed; `ranker` the auxiliary class-S
  // detector X (typically an AliveRanker stacked on the same node).
  HSigmaToSigma(const HSigmaHandle& hsigma, const RankerHandle& ranker, SimTime period = 3);

  void on_start(Env& env) override;
  void on_message(Env& env, const Message& m) override;
  void on_timer(Env& env, TimerId id) override;

  // SigmaHandle. Empty until the first candidate quorum is explained
  // (Σ's properties are evaluated from the first assignment on).
  [[nodiscard]] Multiset<Id> trusted() const override { return trusted_; }

  [[nodiscard]] const Trajectory<Multiset<Id>>& trace() const { return trace_; }

  // Per-reduction overhead: LABELS broadcasts and their approximate wire
  // size, under reduction="hsigma_to_sigma" (merged into `labels`).
  void attach_metrics(obs::MetricsRegistry* reg, obs::Labels labels = {});

  // Fires at every real `trusted` change. Null detaches.
  void set_output_listener(FdOutputListener* l) { listener_ = l; }

 private:
  void tick(Env& env);

  const HSigmaHandle& hsigma_;
  const RankerHandle& ranker_;
  SimTime period_;
  std::map<Label, std::set<Id>> idents_;
  Multiset<Id> trusted_;
  Trajectory<Multiset<Id>> trace_;
  FdOutputListener* listener_ = nullptr;
  obs::Counter* m_msgs_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
};

}  // namespace hds
