// AP → AΣ (a solid arrow of the paper's Figure 5, due to Bonnet & Raynal):
// each observed value y of anap becomes the AΣ pair (y, y) — label y,
// quorum size y — accumulated across observations. Safety mirrors Lemma 3:
// AP over-approximates the alive count, so for y ≥ y' every y-sized carrier
// set of label y intersects every y'-sized one (the carrier sets are nested
// along the crash order). Completes the anonymous corner of Figure 5
// alongside Lemmas 2-3.
#pragma once

#include <limits>
#include <map>

#include "fd/interfaces.h"

namespace hds {

class ApToASigma final : public ASigmaHandle {
 public:
  explicit ApToASigma(const APHandle& src) : src_(&src) {}

  [[nodiscard]] std::vector<ASigmaPair> a_sigma() const override {
    const std::size_t y = src_->anap();
    if (y != std::numeric_limits<std::size_t>::max()) seen_[y] = y;
    std::vector<ASigmaPair> out;
    out.reserve(seen_.size());
    for (const auto& [label, count] : seen_) {
      out.push_back(ASigmaPair{static_cast<std::uint64_t>(label), count});
    }
    return out;
  }

 private:
  const APHandle* src_;
  mutable std::map<std::size_t, std::size_t> seen_;  // label -> count (equal)
};

}  // namespace hds
