// Observation 1: HΩ from ◇HP̄ without any communication — the leader is the
// smallest identifier in h_trusted, with its multiplicity. While h_trusted
// is empty the process falls back to naming itself (HΩ constrains only the
// eventual output).
#pragma once

#include "common/multiset.h"
#include "common/types.h"
#include "fd/interfaces.h"

namespace hds {

class OhpToHOmega final : public HOmegaHandle {
 public:
  OhpToHOmega(const OHPHandle& src, Id fallback) : src_(&src), fallback_(fallback) {}

  [[nodiscard]] HOmegaOut h_omega() const override {
    const Multiset<Id> trusted = src_->h_trusted();
    if (trusted.empty()) return HOmegaOut{fallback_, 1};
    return HOmegaOut{trusted.min(), trusted.multiplicity(trusted.min())};
  }

 private:
  const OHPHandle* src_;
  Id fallback_;
};

}  // namespace hds
