#include "fd/reduce/hsigma_to_sigma.h"

#include <limits>

namespace hds {

namespace {

// m ⊆ idents[x] with unique identifiers: every instance has multiplicity 1
// and its identifier is a known carrier of the label.
bool explained(const Multiset<Id>& m, const std::set<Id>& carriers) {
  for (const auto& [i, c] : m.counts()) {
    if (c != 1 || !carriers.contains(i)) return false;
  }
  return !m.empty();
}

}  // namespace

HSigmaToSigma::HSigmaToSigma(const HSigmaHandle& hsigma, const RankerHandle& ranker,
                             SimTime period)
    : hsigma_(hsigma), ranker_(ranker), period_(period) {}

void HSigmaToSigma::attach_metrics(obs::MetricsRegistry* reg, obs::Labels labels) {
  if (reg == nullptr) {
    m_msgs_ = nullptr;
    m_bytes_ = nullptr;
    return;
  }
  labels.emplace("reduction", "hsigma_to_sigma");
  m_msgs_ = &reg->counter("reduce_msgs_total", labels);
  m_bytes_ = &reg->counter("reduce_bytes_total", labels);
}

void HSigmaToSigma::on_start(Env& env) { tick(env); }

void HSigmaToSigma::on_timer(Env& env, TimerId) { tick(env); }

void HSigmaToSigma::tick(Env& env) {
  const HSigmaSnapshot snap = hsigma_.snapshot();
  // Line 5: publish our current label set.
  env.broadcast(make_message(kMsgType, LabelsMsg{env.self_id(), snap.labels}));
  obs::inc(m_msgs_);
  if (m_bytes_ != nullptr) {
    std::uint64_t bytes = sizeof(Id);
    for (const Label& x : snap.labels) bytes += x.repr().size();
    m_bytes_->inc(bytes);
  }
  // Lines 6-8: pick among explained candidates the multiset whose
  // worst-ranked member sits highest in X.alive.
  const std::vector<Id> alive = ranker_.alive_list();
  const Multiset<Id>* best = nullptr;
  std::size_t best_rank = std::numeric_limits<std::size_t>::max();
  for (const auto& [x, m] : snap.quora) {
    auto it = idents_.find(x);
    if (it == idents_.end() || !explained(m, it->second)) continue;
    std::size_t worst = 0;
    for (const auto& [i, c] : m.counts()) {
      (void)c;
      worst = std::max(worst, rank_of(i, alive));
    }
    if (worst < best_rank || (worst == best_rank && best != nullptr && m < *best)) {
      best = &m;
      best_rank = worst;
    }
  }
  if (best != nullptr) {
    const bool changed = !(*best == trusted_);
    trusted_ = *best;
    trace_.record(env.local_now(), trusted_);
    if (changed && listener_ != nullptr) listener_->on_sigma_change(env.local_now(), trusted_);
  }
  env.set_timer(period_);
}

void HSigmaToSigma::on_message(Env&, const Message& m) {
  if (m.type != kMsgType) return;
  const auto* body = m.as<LabelsMsg>();
  if (body == nullptr) return;
  // Lines 13-17: idents[x] <- idents[x] U {i}.
  for (const Label& x : body->labels) idents_[x].insert(body->id);
}

}  // namespace hds
